// Quickstart: build a graph, partition it into 8 parts, inspect the result.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mlpart"
)

func main() {
	// Build a 64x64 2D mesh by hand through the public builder API — the
	// kind of graph that arises from a finite-element discretization.
	const side = 64
	b := mlpart.NewGraphBuilder(side * side)
	id := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < side {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Partition into 8 parts with the paper's recommended configuration
	// (heavy-edge matching, GGGP, BKLGR refinement). A nil *Options picks
	// those defaults; set fields to experiment with other schemes.
	res, err := mlpart.Partition(g, 8, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8-way edge-cut: %d (perfect row slices would cut %d)\n",
		res.EdgeCut, 7*side)
	fmt.Printf("balance: %.3f (1.0 = perfect)\n", res.Balance())
	fmt.Printf("part weights: %v\n", res.PartWeights)

	// The partition vector assigns each vertex a part in 0..7.
	fmt.Printf("vertex 0 -> part %d, vertex %d -> part %d\n",
		res.Where[0], g.NumVertices()-1, res.Where[g.NumVertices()-1])

	// Every run with the same Options.Seed is identical; change the seed
	// for a different (equally good) partition.
	res2, _ := mlpart.Partition(g, 8, &mlpart.Options{Seed: 7})
	fmt.Printf("another seed: edge-cut %d\n", res2.EdgeCut)
}
