// Parallel sparse matrix-vector multiplication, the motivating application
// of the paper's introduction: assigning matrix rows to p processors is a
// graph partitioning problem, and the edge-cut of the partition bounds the
// communication volume of every SpMV iteration. This example partitions a
// 2D finite-element matrix for 16 processors with the multilevel scheme and
// compares the resulting per-iteration communication against a naive block
// (contiguous-rows) assignment, then runs both through a simulated
// iterative solve to show the traffic difference.
//
// Run with:
//
//	go run ./examples/spmv
package main

import (
	"fmt"
	"log"

	"mlpart"
)

const processors = 16

func main() {
	g, err := mlpart.GenerateWorkload("4ELT", 0.3)
	if err != nil {
		log.Fatal(err)
	}
	n := g.NumVertices()
	fmt.Printf("matrix: %d rows, %d off-diagonal nonzeros, %d processors\n",
		n, 2*g.NumEdges(), processors)

	// Naive assignment: contiguous blocks of rows.
	naive := make([]int, n)
	for v := 0; v < n; v++ {
		naive[v] = v * processors / n
	}

	// Multilevel assignment.
	res, err := mlpart.Partition(g, processors, &mlpart.Options{Seed: 3, Parallel: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s %12s %16s %14s\n", "assignment", "edge-cut", "comm volume", "max per-proc")
	for _, row := range []struct {
		name  string
		where []int
	}{
		{"block-rows", naive},
		{"multilevel", res.Where},
	} {
		vol, maxProc := commVolume(g, row.where)
		fmt.Printf("%-12s %12d %16d %14d\n",
			row.name, mlpart.EdgeCut(g, row.where), vol, maxProc)
	}

	// Simulate 10 iterations of an iterative solver: every iteration each
	// processor must fetch the x-values of off-processor neighbor rows.
	iters := 10
	volNaive, _ := commVolume(g, naive)
	volML, _ := commVolume(g, res.Where)
	fmt.Printf("\nafter %d SpMV iterations: %d words moved with block rows, %d with multilevel (%.1fx less)\n",
		iters, iters*volNaive, iters*volML, float64(volNaive)/float64(volML))
}

// commVolume counts, for an SpMV with rows assigned by `where`, the total
// number of x-vector entries that must cross processor boundaries per
// iteration (each boundary vertex is sent once to each neighboring
// processor that needs it), plus the maximum volume handled by one
// processor.
func commVolume(g *mlpart.Graph, where []int) (total, maxPerProc int) {
	perProc := make(map[int]int)
	seen := make(map[[2]int]bool) // (vertex, destination processor)
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if where[u] == where[v] {
				continue
			}
			key := [2]int{v, where[u]}
			if seen[key] {
				continue
			}
			seen[key] = true
			total++
			perProc[where[v]]++
		}
	}
	for _, c := range perProc {
		if c > maxPerProc {
			maxPerProc = c
		}
	}
	return total, maxPerProc
}
