// Sparse direct solver pipeline: order a 3D stiffness matrix with
// multilevel nested dissection and with multiple minimum degree, then
// compare the symbolic Cholesky cost of the two orderings — the workflow
// of §4.3 of the paper, where the ordering determines both the work of a
// serial factorization and the concurrency available to a parallel one.
//
// Run with:
//
//	go run ./examples/ordering
package main

import (
	"fmt"
	"log"
	"time"

	"mlpart"
)

func main() {
	// The adjacency structure of a 3D hexahedral stiffness matrix (the
	// BCSSTK30-class workload of the paper's Table 1).
	g, err := mlpart.GenerateWorkload("BC30", 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix: order %d, %d off-diagonal nonzeros\n",
		g.NumVertices(), 2*g.NumEdges())

	// Ordering 1: multilevel nested dissection (this library's algorithm).
	t0 := time.Now()
	ndPerm, ndIperm, err := mlpart.NestedDissection(g, &mlpart.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ndTime := time.Since(t0)
	nd, err := mlpart.AnalyzeOrdering(g, ndPerm)
	if err != nil {
		log.Fatal(err)
	}

	// Ordering 2: multiple minimum degree (the serial-solver standard).
	t0 = time.Now()
	mdPerm, _ := mlpart.MinimumDegree(g)
	mdTime := time.Since(t0)
	md, err := mlpart.AnalyzeOrdering(g, mdPerm)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-6s %14s %16s %12s %10s\n", "order", "nnz(L)", "opcount", "tree height", "time")
	fmt.Printf("%-6s %14d %16.4g %12d %9.3fs\n",
		"MLND", nd.FactorNonzeros, nd.OperationCount, nd.TreeHeight, ndTime.Seconds())
	fmt.Printf("%-6s %14d %16.4g %12d %9.3fs\n",
		"MMD", md.FactorNonzeros, md.OperationCount, md.TreeHeight, mdTime.Seconds())

	fmt.Printf("\nserial factorization work:  MMD needs %.2fx the operations of MLND\n",
		md.OperationCount/nd.OperationCount)
	fmt.Printf("parallel factorization:     MLND's elimination tree is %.1fx shallower\n",
		float64(md.TreeHeight)/float64(nd.TreeHeight))

	// In a real solver the permutation is applied to the matrix before
	// factorization: row i of the permuted matrix is row ndPerm[i] of the
	// original, and original row v lands at position ndIperm[v].
	v := g.NumVertices() / 2
	fmt.Printf("\nexample: original row %d is eliminated at position %d\n", v, ndIperm[v])
}
