// Adaptive load balancing: a solver partitions its mesh once, computes,
// and then adaptive refinement concentrates work in one region. Instead of
// repartitioning from scratch (which moves most of the data), Repartition
// restores balance with minimal migration from the incumbent placement.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"mlpart"
)

func main() {
	g, err := mlpart.GenerateWorkload("4ELT", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	const k = 16
	initial, err := mlpart.Partition(g, k, &mlpart.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial: %d vertices on %d procs, cut %d, balance %.3f\n",
		g.NumVertices(), k, initial.EdgeCut, initial.Balance())

	// The solver adapts: one corner of the mesh becomes 6x more expensive.
	n := g.NumVertices()
	for v := 0; v < n/5; v++ {
		g.Vwgt[v] = 6
	}
	stale, _ := mlpart.EvaluatePartition(g, initial.Where, k)
	fmt.Printf("after adaptation: balance degraded to %.3f\n\n", stale.Balance)

	// Option 1: repartition from scratch — good cut, massive migration.
	fresh, err := mlpart.Partition(g, k, &mlpart.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	migFresh := 0
	for v := range fresh.Where {
		if fresh.Where[v] != initial.Where[v] {
			migFresh += g.Vwgt[v]
		}
	}

	// Option 2: adapt the incumbent partition.
	adapted, err := mlpart.Repartition(g, k, initial.Where, &mlpart.RepartitionOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	total := g.TotalVertexWeight()
	fmt.Printf("%-14s %10s %10s %14s\n", "strategy", "cut", "balance", "migrated")
	fmt.Printf("%-14s %10d %10.3f %9d (%2.0f%%)\n", "from scratch",
		fresh.EdgeCut, fresh.Balance(), migFresh, 100*float64(migFresh)/float64(total))
	bal := 0.0
	maxw := 0
	for _, w := range adapted.PartWeights {
		if w > maxw {
			maxw = w
		}
	}
	bal = float64(k*maxw) / float64(total)
	fmt.Printf("%-14s %10d %10.3f %9d (%2.0f%%)\n", "Repartition",
		adapted.EdgeCut, bal, adapted.MigratedWeight,
		100*float64(adapted.MigratedWeight)/float64(total))
}
