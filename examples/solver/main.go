// End-to-end sparse solver: the two solution paths of the paper's
// introduction, both driven by the multilevel partitioner.
//
//  1. Direct: order the matrix with multilevel nested dissection, factor it
//     with sparse Cholesky, solve by substitution. The ordering decides the
//     fill and operation count (compare against the natural order).
//  2. Iterative: conjugate gradients, with the SpMV parallelized by
//     assigning rows to workers via a multilevel partition.
//
// Run with:
//
//	go run ./examples/solver
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"mlpart"
)

func main() {
	// A 2D finite-element stiffness-like system: Laplacian + I of a
	// triangulated mesh (SPD by construction).
	g, err := mlpart.GenerateWorkload("4ELT", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	n := g.NumVertices()
	m := mlpart.NewLaplacianMatrix(g, 1.0)
	fmt.Printf("system: n=%d, nnz=%d\n", n, n+2*g.NumEdges())

	// Manufactured solution so both paths can be checked exactly.
	rng := rand.New(rand.NewSource(1))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	m.MulVec(xTrue, b)

	// --- Direct path ---------------------------------------------------
	fmt.Println("\ndirect solve (sparse Cholesky):")
	perm, _, err := mlpart.NestedDissection(g, &mlpart.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	for name, p := range map[string][]int{"natural order": identity(n), "MLND order": perm} {
		t0 := time.Now()
		f, err := mlpart.FactorizeSPD(m, p)
		if err != nil {
			log.Fatal(err)
		}
		x := f.Solve(b)
		fmt.Printf("  %-14s nnz(L)=%-9d err=%.2e  %.3fs\n",
			name, f.NnzL(), maxErr(x, xTrue), time.Since(t0).Seconds())
	}

	// --- Iterative path -------------------------------------------------
	fmt.Println("\niterative solve (CG, Jacobi-preconditioned):")
	for _, workers := range []int{1, 8} {
		t0 := time.Now()
		res, err := mlpart.SolveCG(m, b, &mlpart.CGOptions{
			Jacobi:  true,
			Workers: workers,
			Seed:    3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  workers=%-2d  iters=%-5d rel.residual=%.2e err=%.2e  %.3fs\n",
			workers, res.Iterations, res.Residual, maxErr(res.X, xTrue), time.Since(t0).Seconds())
	}
	fmt.Println("\nthe multilevel partition keeps per-iteration communication low")
	fmt.Println("(see examples/spmv for the communication-volume comparison)")
}

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func maxErr(x, y []float64) float64 {
	m := 0.0
	for i := range x {
		if e := math.Abs(x[i] - y[i]); e > m {
			m = e
		}
	}
	return m
}
