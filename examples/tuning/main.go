// Tuning: sweep every (matching scheme x refinement policy) combination of
// the multilevel algorithm on one workload — the kind of exploration behind
// the paper's Tables 2 and 4 — and print the edge-cut / time grid, showing
// why HEM + BKLGR is the recommended default.
//
// Run with:
//
//	go run ./examples/tuning [workload]
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"mlpart"
)

func main() {
	name := "BRCK"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	g, err := mlpart.GenerateWorkload(name, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d vertices, %d edges; 32-way partitions\n\n",
		name, g.NumVertices(), g.NumEdges())

	matchings := []string{mlpart.MatchRM, mlpart.MatchHEM, mlpart.MatchLEM, mlpart.MatchHCM}
	refinements := []string{
		mlpart.RefineNone, mlpart.RefineGR, mlpart.RefineKLR,
		mlpart.RefineBGR, mlpart.RefineBKLR, mlpart.RefineBKLGR,
	}

	fmt.Printf("%-8s", "")
	for _, r := range refinements {
		fmt.Printf(" %16s", r)
	}
	fmt.Println()
	type cell struct {
		cut int
		dur time.Duration
	}
	best := cell{cut: int(^uint(0) >> 1)}
	var bestM, bestR string
	for _, m := range matchings {
		fmt.Printf("%-8s", m)
		for _, r := range refinements {
			t0 := time.Now()
			res, err := mlpart.Partition(g, 32, &mlpart.Options{
				Matching: m, Refinement: r, Seed: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			c := cell{res.EdgeCut, time.Since(t0)}
			fmt.Printf(" %9d/%5.2fs", c.cut, c.dur.Seconds())
			// Track the best refined cut (NONE excluded: it isolates
			// coarsening quality, it is not a practical configuration).
			if r != mlpart.RefineNone && c.cut < best.cut {
				best, bestM, bestR = c, m, r
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nbest refined configuration here: %s + %s (cut %d in %.2fs)\n",
		bestM, bestR, best.cut, best.dur.Seconds())
	fmt.Println("the paper recommends HEM + BKLGR as the best quality/time balance")
}
