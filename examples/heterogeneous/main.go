// Heterogeneous load balancing: partition a mesh for a machine whose
// processors have different speeds, so each processor should receive work
// proportional to its speed rather than an equal share. PartitionWeighted
// takes arbitrary positive target fractions.
//
// Run with:
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"mlpart"
)

func main() {
	g, err := mlpart.GenerateWorkload("ROTR", 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	// A machine with two fast nodes (4 units of speed each), two regular
	// nodes (2 units) and two slow nodes (1 unit).
	speeds := []float64{4, 4, 2, 2, 1, 1}
	res, err := mlpart.PartitionWeighted(g, speeds, &mlpart.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	total := 0
	for _, w := range res.PartWeights {
		total += w
	}
	speedSum := 0.0
	for _, s := range speeds {
		speedSum += s
	}
	fmt.Printf("%-6s %8s %10s %10s %10s\n", "proc", "speed", "target", "assigned", "rel.err")
	for p, s := range speeds {
		target := float64(total) * s / speedSum
		got := float64(res.PartWeights[p])
		fmt.Printf("%-6d %8.0f %10.0f %10.0f %9.1f%%\n",
			p, s, target, got, 100*(got-target)/target)
	}
	fmt.Printf("\nedge-cut: %d\n", res.EdgeCut)

	// The per-processor finish time is work/speed; with proportional
	// targets every processor finishes together.
	worst := 0.0
	for p, s := range speeds {
		if t := float64(res.PartWeights[p]) / s; t > worst {
			worst = t
		}
	}
	ideal := float64(total) / speedSum
	fmt.Printf("makespan: %.0f vs ideal %.0f (%.1f%% overhead)\n",
		worst, ideal, 100*(worst-ideal)/ideal)
}
