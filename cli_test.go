package mlpart_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"mlpart"
)

// runTool builds-and-runs one of the repository's commands via `go run`,
// returning combined output. These are end-to-end tests of the CLI layer;
// they are skipped with -short to keep the inner loop fast.
func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIPartitionGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	out := runTool(t, "./cmd/mlpart", "-k", "8", "-gen", "4ELT", "-scale", "0.05", "-stats")
	for _, want := range []string{"8-way partition", "edge-cut", "comm-volume"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIGraphgenThenPartitionAndOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	dir := t.TempDir()
	runTool(t, "./cmd/graphgen", "-scale", "0.05", "-dir", dir, "BC28")
	graphFile := filepath.Join(dir, "BC28.graph")
	if _, err := os.Stat(graphFile); err != nil {
		t.Fatal(err)
	}
	partFile := filepath.Join(dir, "out.part")
	out := runTool(t, "./cmd/mlpart", "-k", "4", "-o", partFile, graphFile)
	if !strings.Contains(out, "4-way partition") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	data, err := os.ReadFile(partFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(strings.TrimSpace(string(data)))
	for _, l := range lines {
		if l != "0" && l != "1" && l != "2" && l != "3" {
			t.Fatalf("bad part id %q in partition file", l)
		}
	}
	out = runTool(t, "./cmd/mlorder", graphFile)
	for _, want := range []string{"MLND", "MMD", "opcount"} {
		if !strings.Contains(out, want) {
			t.Errorf("mlorder output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIGraphgenMatrixMarket(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	dir := t.TempDir()
	runTool(t, "./cmd/graphgen", "-scale", "0.05", "-dir", dir, "-format", "mtx", "LS34")
	mtx := filepath.Join(dir, "LS34.mtx")
	out := runTool(t, "./cmd/mlpart", "-k", "2", mtx)
	if !strings.Contains(out, "2-way partition") {
		t.Fatalf("mtx input not handled:\n%s", out)
	}
}

func TestCLIMlbenchSingleTable(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	out := runTool(t, "./cmd/mlbench", "-table", "3", "-scale", "0.03")
	for _, want := range []string{"Table 3", "HEM", "LEM"} {
		if !strings.Contains(out, want) {
			t.Errorf("mlbench output missing %q", want)
		}
	}
}

// TestCLITraceJSONRoundTrip runs `mlpart -trace -json` and decodes every
// stdout line: per-level trace events (one well-formed event per level,
// plus initial/pass/project/phase events) followed by one result object.
func TestCLITraceJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	cmd := exec.Command("go", "run", "./cmd/mlpart",
		"-gen", "4ELT", "-scale", "0.05", "-k", "4", "-seed", "7", "-trace", "-json")
	cmd.Dir = "."
	stdout, err := cmd.Output()
	if err != nil {
		t.Fatalf("mlpart -trace -json: %v", err)
	}
	kinds := map[string]int{}
	// The final line is the shared wire schema's PartitionResponse — the
	// same object POST /v1/partition returns (see wire.go).
	var result mlpart.PartitionResponse
	lines := strings.Split(strings.TrimSpace(string(stdout)), "\n")
	levelsSeen := map[int]bool{}
	for i, line := range lines {
		var ev mlpart.TraceEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("stdout line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if ev.Kind != "" {
			kinds[string(ev.Kind)]++
			if ev.Kind == "level" {
				if ev.Vertices <= 0 {
					t.Errorf("level event with no vertices: %s", line)
				}
				levelsSeen[ev.Level] = true
			}
		}
		if i == len(lines)-1 {
			if err := json.Unmarshal([]byte(line), &result); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, k := range []string{"level", "initial", "refine_pass", "project", "phase"} {
		if kinds[k] == 0 {
			t.Errorf("no %q events on stdout (saw %v)", k, kinds)
		}
	}
	// Every level index 0..max must have produced an event.
	for l := 0; l < len(levelsSeen); l++ {
		if !levelsSeen[l] {
			t.Errorf("missing level event for level %d", l)
		}
	}
	if result.Kind != mlpart.WireKindResult || result.K != 4 || result.EdgeCut <= 0 {
		t.Errorf("bad final result line: %+v", result)
	}
	if result.Vertices <= 0 || len(result.PartWeights) != 4 || result.ElapsedNS <= 0 {
		t.Errorf("result line missing wire fields: %+v", result)
	}
}

// TestCLITimeoutExitStatus checks the distinct exit status for deadline
// expiry (3, not the generic 1).
func TestCLITimeoutExitStatus(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	bin := filepath.Join(t.TempDir(), "mlpart.bin")
	build := exec.Command("go", "build", "-o", bin, "./cmd/mlpart")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-gen", "4ELT", "-scale", "0.4", "-k", "64", "-ncuts", "16", "-timeout", "1ms")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Skip("machine fast enough to finish before the deadline")
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("unexpected error type %T: %v", err, err)
	}
	if ee.ExitCode() != 3 {
		t.Errorf("exit code = %d, want 3\n%s", ee.ExitCode(), out)
	}
	if !strings.Contains(string(out), "deadline") {
		t.Errorf("stderr should mention the deadline:\n%s", out)
	}
}

// TestCLIBinaryFormat drives the `.csrb` path end to end: graphgen emits
// the binary format, mlpart partitions it via mmap, -convert translates
// both directions, and the text and binary inputs produce the identical
// partition line.
func TestCLIBinaryFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	dir := t.TempDir()
	runTool(t, "./cmd/graphgen", "-scale", "0.05", "-dir", dir, "-format", "csrb", "BC28")
	csrb := filepath.Join(dir, "BC28.csrb")
	if _, err := os.Stat(csrb); err != nil {
		t.Fatal(err)
	}

	outBin := runTool(t, "./cmd/mlpart", "-k", "4", "-seed", "3", csrb)
	if !strings.Contains(outBin, "4-way partition") {
		t.Fatalf("csrb input not handled:\n%s", outBin)
	}

	// Convert binary -> text, partition the text file: identical result.
	graphFile := filepath.Join(dir, "BC28.graph")
	runTool(t, "./cmd/mlpart", "-convert", graphFile, csrb)
	outTxt := runTool(t, "./cmd/mlpart", "-k", "4", "-seed", "3", graphFile)
	cutLine := func(out string) string {
		for _, l := range strings.Split(out, "\n") {
			if strings.Contains(l, "edge-cut") {
				// Strip the timing field; it varies run to run.
				return l[:strings.Index(l, ", time")]
			}
		}
		t.Fatalf("no edge-cut line in output:\n%s", out)
		return ""
	}
	if cutLine(outBin) != cutLine(outTxt) {
		t.Errorf("binary and text inputs disagree:\n%s\nvs\n%s", outBin, outTxt)
	}

	// Convert text -> binary: the round-tripped file partitions the same.
	csrb2 := filepath.Join(dir, "BC28rt.csrb")
	runTool(t, "./cmd/mlpart", "-convert", csrb2, graphFile)
	outRT := runTool(t, "./cmd/mlpart", "-k", "4", "-seed", "3", csrb2)
	if cutLine(outRT) != cutLine(outTxt) {
		t.Errorf("round-tripped csrb disagrees:\n%s\nvs\n%s", outRT, outTxt)
	}
}

func TestCLIOrderingFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	out := runTool(t, "./cmd/mlpart", "-gen", "4ELT", "-scale", "0.05",
		"-k", "4", "-ordering", "bfs-block")
	if !strings.Contains(out, "4-way partition") {
		t.Fatalf("-ordering run failed:\n%s", out)
	}
}

func TestCLIWeightedAndDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	out := runTool(t, "./cmd/mlpart", "-gen", "4ELT", "-scale", "0.05", "-weighted", "3,1")
	if !strings.Contains(out, "2-way partition") {
		t.Fatalf("weighted run failed:\n%s", out)
	}
	out = runTool(t, "./cmd/mlpart", "-gen", "4ELT", "-scale", "0.05", "-k", "8", "-direct")
	if !strings.Contains(out, "8-way partition") {
		t.Fatalf("direct run failed:\n%s", out)
	}
}
