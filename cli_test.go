package mlpart_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runTool builds-and-runs one of the repository's commands via `go run`,
// returning combined output. These are end-to-end tests of the CLI layer;
// they are skipped with -short to keep the inner loop fast.
func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIPartitionGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	out := runTool(t, "./cmd/mlpart", "-k", "8", "-gen", "4ELT", "-scale", "0.05", "-stats")
	for _, want := range []string{"8-way partition", "edge-cut", "comm-volume"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIGraphgenThenPartitionAndOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	dir := t.TempDir()
	runTool(t, "./cmd/graphgen", "-scale", "0.05", "-dir", dir, "BC28")
	graphFile := filepath.Join(dir, "BC28.graph")
	if _, err := os.Stat(graphFile); err != nil {
		t.Fatal(err)
	}
	partFile := filepath.Join(dir, "out.part")
	out := runTool(t, "./cmd/mlpart", "-k", "4", "-o", partFile, graphFile)
	if !strings.Contains(out, "4-way partition") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	data, err := os.ReadFile(partFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(strings.TrimSpace(string(data)))
	for _, l := range lines {
		if l != "0" && l != "1" && l != "2" && l != "3" {
			t.Fatalf("bad part id %q in partition file", l)
		}
	}
	out = runTool(t, "./cmd/mlorder", graphFile)
	for _, want := range []string{"MLND", "MMD", "opcount"} {
		if !strings.Contains(out, want) {
			t.Errorf("mlorder output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIGraphgenMatrixMarket(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	dir := t.TempDir()
	runTool(t, "./cmd/graphgen", "-scale", "0.05", "-dir", dir, "-format", "mtx", "LS34")
	mtx := filepath.Join(dir, "LS34.mtx")
	out := runTool(t, "./cmd/mlpart", "-k", "2", mtx)
	if !strings.Contains(out, "2-way partition") {
		t.Fatalf("mtx input not handled:\n%s", out)
	}
}

func TestCLIMlbenchSingleTable(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	out := runTool(t, "./cmd/mlbench", "-table", "3", "-scale", "0.03")
	for _, want := range []string{"Table 3", "HEM", "LEM"} {
		if !strings.Contains(out, want) {
			t.Errorf("mlbench output missing %q", want)
		}
	}
}

func TestCLIWeightedAndDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	out := runTool(t, "./cmd/mlpart", "-gen", "4ELT", "-scale", "0.05", "-weighted", "3,1")
	if !strings.Contains(out, "2-way partition") {
		t.Fatalf("weighted run failed:\n%s", out)
	}
	out = runTool(t, "./cmd/mlpart", "-gen", "4ELT", "-scale", "0.05", "-k", "8", "-direct")
	if !strings.Contains(out, "8-way partition") {
		t.Fatalf("direct run failed:\n%s", out)
	}
}
