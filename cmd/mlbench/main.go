// Command mlbench regenerates every table and figure of the paper's
// evaluation (§4): Tables 1-4 and Figures 1-5. Each experiment runs the
// same sweep the paper reports, on the synthetic Table 1 workload suite,
// and prints the corresponding rows or data series.
//
// Usage:
//
//	mlbench -table 2            # matching-scheme comparison (Table 2)
//	mlbench -figure 5           # ordering comparison (Figure 5)
//	mlbench -levels 4ELT        # per-level V-cycle breakdown of one workload
//	mlbench -all                # everything
//	mlbench -all -scale 0.1     # faster, smaller workloads
//
// Absolute numbers depend on the host and the synthetic workloads; the
// quantities to compare with the paper are the relative ones (ratios,
// which scheme wins where). See EXPERIMENTS.md for the recorded shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mlpart/internal/experiments"
	"mlpart/internal/matgen"
	"mlpart/internal/multilevel"
)

func main() {
	table := flag.Int("table", 0, "reproduce Table N (1-4)")
	figure := flag.Int("figure", 0, "reproduce Figure N (1-5)")
	all := flag.Bool("all", false, "reproduce every table and figure")
	scale := flag.Float64("scale", 0.15, "workload scale (1.0 = laptop-sized; smaller is faster)")
	seed := flag.Int64("seed", 0, "random seed")
	k := flag.Int("k", 32, "parts for Tables 2-4")
	figK := flag.Int("figk", 64, "parts for Figure 4 run-time comparison")
	ncuts := flag.Int("ncuts", 0, "best-of-N bisections for Figure 4's \"ours\" (quality for time)")
	workers := flag.Int("workers", 0, "parallel coarsening workers for Figure 4's \"ours\" (>1 enables)")
	parallel := flag.Bool("parallel", false, "run Figure 4's \"ours\" with concurrent subgraphs and NCuts trials")
	preset := flag.String("preset", "", "quality preset for -levels and Figure 4's \"ours\": fast, eco, strong")
	ablation := flag.Bool("ablation", false, "run the design-choice ablation sweeps of DESIGN.md")
	levels := flag.String("levels", "", "print the per-level V-cycle breakdown for the named workload")
	flag.Parse()

	if !*all && *table == 0 && *figure == 0 && !*ablation && *levels == "" {
		fmt.Fprintln(os.Stderr, "mlbench: pass -table N, -figure N, -levels NAME, -ablation or -all (see -h)")
		os.Exit(1)
	}

	if *levels != "" {
		banner(fmt.Sprintf("Per-level breakdown: %s, %d-way direct multilevel", *levels, *k))
		w, err := matgen.Generate(*levels, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlbench:", err)
			os.Exit(1)
		}
		rows, res, err := experiments.Levels(w.Graph, *k, multilevel.Options{Seed: *seed, Preset: mustPreset(*preset)})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlbench:", err)
			os.Exit(1)
		}
		experiments.PrintLevels(os.Stdout, rows)
		fmt.Printf("final edge-cut %d, balance %.3f\n", res.EdgeCut, res.Balance())
	}
	run := func(want int, sel *int) bool { return *all || *sel == want }

	if run(1, table) {
		banner("Table 1: workload suite (synthetic analogs)")
		experiments.PrintTable1(os.Stdout, matgen.Suite(matgen.AllNames(), *scale))
	}
	if run(2, table) {
		banner(fmt.Sprintf("Table 2: matching schemes, %d-way edge-cut and phase times", *k))
		ws := matgen.Suite(experiments.Table2Names(), *scale)
		experiments.PrintTable2(os.Stdout, experiments.Table2(ws, *k, *seed))
	}
	if run(3, table) {
		banner(fmt.Sprintf("Table 3: %d-way edge-cut with NO refinement", *k))
		ws := matgen.Suite(experiments.Table2Names(), *scale)
		experiments.PrintTable3(os.Stdout, experiments.Table3(ws, *k, *seed))
	}
	if run(4, table) {
		banner(fmt.Sprintf("Table 4: refinement policies, %d-way edge-cut and refine time", *k))
		ws := matgen.Suite(experiments.Table2Names(), *scale)
		experiments.PrintTable4(os.Stdout, experiments.Table4(ws, *k, *seed))
	}

	figKs := []int{64, 128, 256}
	if run(1, figure) {
		banner("Figure 1: our multilevel vs MSB (edge-cut ratio)")
		ws := matgen.Suite(experiments.FigureNames(), *scale)
		experiments.PrintCutRatios(os.Stdout, experiments.CutRatios(ws, figKs, experiments.MSB, *seed))
	}
	if run(2, figure) {
		banner("Figure 2: our multilevel vs MSB-KL (edge-cut ratio)")
		ws := matgen.Suite(experiments.FigureNames(), *scale)
		experiments.PrintCutRatios(os.Stdout, experiments.CutRatios(ws, figKs, experiments.MSBKL, *seed))
	}
	if run(3, figure) {
		banner("Figure 3: our multilevel vs Chaco-ML (edge-cut ratio)")
		ws := matgen.Suite(experiments.FigureNames(), *scale)
		experiments.PrintCutRatios(os.Stdout, experiments.CutRatios(ws, figKs, experiments.ChacoML, *seed))
	}
	if run(4, figure) {
		banner(fmt.Sprintf("Figure 4: run time relative to ours (%d-way)", *figK))
		ws := matgen.Suite(experiments.FigureNames(), *scale)
		opts := multilevel.Options{
			Seed:           *seed,
			NCuts:          *ncuts,
			CoarsenWorkers: *workers,
			Parallel:       *parallel,
			Preset:         mustPreset(*preset),
		}
		experiments.PrintRuntimes(os.Stdout, experiments.RuntimesOpts(ws, *figK, opts))
	}
	if run(5, figure) {
		banner("Figure 5: ordering quality, MMD and SND relative to MLND")
		ws := matgen.Suite(experiments.OrderingNames(), *scale)
		experiments.PrintOrdering(os.Stdout, experiments.Ordering(ws, *seed))
	}
	if *all || *ablation {
		banner(fmt.Sprintf("Ablations: design-choice sweeps (%d-way)", *k))
		ws := matgen.Suite([]string{"BRCK", "4ELT"}, *scale)
		experiments.PrintAblations(os.Stdout, experiments.Ablations(ws, *k, *seed))
	}
}

// mustPreset parses the -preset flag value, exiting with a usage error on
// an unknown name.
func mustPreset(s string) multilevel.Preset {
	p, err := multilevel.ParsePreset(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlbench:", err)
		os.Exit(2)
	}
	return p
}

func banner(s string) {
	fmt.Printf("\n=== %s === (%s)\n", s, time.Now().Format(time.TimeOnly))
}
