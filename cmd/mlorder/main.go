// Command mlorder computes fill-reducing orderings of the symmetric sparse
// matrix whose adjacency structure is the input graph, and compares
// multilevel nested dissection (MLND) against multiple minimum degree
// (MMD): factor nonzeros, factorization operation count and elimination
// tree height (the paper's §4.3 evaluation). The MLND permutation can be
// written with -o.
//
// Usage:
//
//	mlorder [-seed 0] [-parallel] [-timeout 30s] [-o out.perm] graph.file
//	mlorder -gen BC30                 # on a generated workload
//
// With -timeout the MLND ordering is abandoned at the next dissection step
// once the deadline passes, and the process exits with status 3 (distinct
// from status 1 for other errors).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mlpart"
)

// exitTimeout is the exit status for context deadline/cancellation,
// matching cmd/mlpart's convention.
const exitTimeout = 3

func main() {
	seed := flag.Int64("seed", 0, "random seed")
	parallel := flag.Bool("parallel", false, "order independent subgraphs concurrently")
	out := flag.String("o", "", "write the MLND permutation to this file")
	gen := flag.String("gen", "", "generate the named synthetic workload instead of reading a file")
	scale := flag.Float64("scale", 0.25, "workload scale when -gen is used")
	timeout := flag.Duration("timeout", 0, "abandon the MLND ordering after this long (exit status 3)")
	faultPlan := flag.String("faults", os.Getenv("MLPART_FAULTS"), "deterministic fault-injection plan (see docs/RELIABILITY.md)")
	flag.Parse()

	g, name, err := loadGraph(*gen, *scale)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("matrix %s: order %d, %d off-diagonal nonzeros\n",
		name, g.NumVertices(), 2*g.NumEdges())

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	t0 := time.Now()
	perm, _, err := mlpart.NestedDissectionCtx(ctx, g, &mlpart.Options{Seed: *seed, Parallel: *parallel, FaultPlan: *faultPlan})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "mlorder:", err)
			os.Exit(exitTimeout)
		}
		fatal(err)
	}
	tMLND := time.Since(t0)
	nd, err := mlpart.AnalyzeOrdering(g, perm)
	if err != nil {
		fatal(err)
	}

	t0 = time.Now()
	mdPerm, _ := mlpart.MinimumDegree(g)
	tMMD := time.Since(t0)
	md, err := mlpart.AnalyzeOrdering(g, mdPerm)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%-6s %14s %16s %8s %10s\n", "order", "nnz(L)", "opcount", "height", "time")
	fmt.Printf("%-6s %14d %16.4g %8d %9.3fs\n", "MLND", nd.FactorNonzeros, nd.OperationCount, nd.TreeHeight, tMLND.Seconds())
	fmt.Printf("%-6s %14d %16.4g %8d %9.3fs\n", "MMD", md.FactorNonzeros, md.OperationCount, md.TreeHeight, tMMD.Seconds())
	fmt.Printf("MMD/MLND opcount ratio: %.2f (above 1.0 favors MLND)\n",
		md.OperationCount/nd.OperationCount)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		for _, v := range perm {
			fmt.Fprintln(w, v)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("MLND permutation written to %s\n", *out)
	}
}

func loadGraph(gen string, scale float64) (*mlpart.Graph, string, error) {
	if gen != "" {
		g, err := mlpart.GenerateWorkload(gen, scale)
		return g, gen, err
	}
	if flag.NArg() != 1 {
		return nil, "", fmt.Errorf("usage: mlorder [flags] graph.file (or -gen NAME); see -h")
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	var g *mlpart.Graph
	if strings.HasSuffix(path, ".mtx") {
		g, err = mlpart.ReadMatrixMarket(bufio.NewReader(f))
	} else {
		g, err = mlpart.ReadGraph(bufio.NewReader(f))
	}
	return g, path, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlorder:", err)
	os.Exit(1)
}
