// Command graphgen writes the synthetic workloads standing in for the
// paper's Table 1 matrices to METIS graph files (or MatrixMarket / binary
// CSR with -format).
//
// Usage:
//
//	graphgen -list                      # list workload names
//	graphgen -scale 0.25 4ELT BC30      # write 4ELT.graph and BC30.graph
//	graphgen -scale 0.25 -all -dir out  # write the full suite
//	graphgen -format csrb 4ELT          # write 4ELT.csrb (zero-copy binary)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mlpart"
)

func main() {
	scale := flag.Float64("scale", 0.25, "workload scale (1.0 = laptop-sized)")
	all := flag.Bool("all", false, "generate the full Table 1 suite")
	list := flag.Bool("list", false, "list workload names and exit")
	dir := flag.String("dir", ".", "output directory")
	format := flag.String("format", "metis", "output format: metis, mtx or csrb (binary CSR)")
	quiet := flag.Bool("q", false, "suppress the per-file progress lines (for scripts)")
	flag.Parse()

	if *format != "metis" && *format != "mtx" && *format != "csrb" {
		fmt.Fprintf(os.Stderr, "graphgen: unknown format %q\n", *format)
		os.Exit(1)
	}

	if *list {
		for _, n := range mlpart.WorkloadNames() {
			fmt.Println(n)
		}
		return
	}
	names := flag.Args()
	if *all {
		names = mlpart.WorkloadNames()
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "graphgen: no workloads named; use -all, -list or name them (see -h)")
		os.Exit(1)
	}
	for _, name := range names {
		g, err := mlpart.GenerateWorkload(name, *scale)
		if err != nil {
			fatal(err)
		}
		ext := ".graph"
		switch *format {
		case "mtx":
			ext = ".mtx"
		case "csrb":
			ext = ".csrb"
		}
		path := filepath.Join(*dir, name+ext)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		switch *format {
		case "mtx":
			err = mlpart.WriteMatrixMarket(w, g)
		case "csrb":
			err = mlpart.WriteBinaryGraph(w, g)
		default:
			err = mlpart.WriteGraph(w, g)
		}
		if err != nil {
			fatal(err)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Printf("%-8s n=%-8d m=%-9d -> %s\n", name, g.NumVertices(), g.NumEdges(), path)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
