// Command mlpart partitions a graph in METIS format into k parts with the
// multilevel scheme and reports the edge-cut, balance and timing. The
// partition vector (one part id per line, in vertex order) can be written
// with -o.
//
// Usage:
//
//	mlpart -k 32 [-match HEM] [-init GGGP] [-refine BKLGR] [-seed 0]
//	       [-max-cluster-weight N] [-lp-rounds N]
//	       [-parallel] [-ncuts 4] [-coarsen-workers 4] [-refine-workers 4] [-direct]
//	       [-weighted 4,2,1,1] [-ordering degree] [-stats] [-trace] [-json]
//	       [-timeout 30s] [-o out.part] graph.file(.graph, .mtx or .csrb)
//
// With -gen NAME the input file is replaced by a generated workload (see
// mlpart.WorkloadNames), e.g. `mlpart -k 32 -gen 4ELT`.
//
// -match accepts any registered coarsening scheme (run -help for the live
// list): the matching family (RM, HEM, LEM, HCM) plus the aggregation
// scheme GCLP, whose cluster size cap and round count are tuned with
// -max-cluster-weight and -lp-rounds.
//
// A `.csrb` input is the binary CSR format (docs/WIRE.md), memory-mapped
// and decoded zero-copy. With -convert OUT the loaded graph is written to
// OUT — format chosen by extension: .graph (METIS), .mtx (MatrixMarket)
// or .csrb — and the process exits without partitioning, so
// `mlpart -convert g.csrb g.graph` and `mlpart -convert g.graph g.csrb`
// translate between the text and binary formats.
//
// With -trace, every hierarchy level, initial cut, refinement pass,
// projection and phase timing is emitted as one JSON line while the
// partitioner runs (to stderr, or to stdout with -json). With -json the
// final summary is a JSON object instead of prose. With -timeout the run
// is abandoned at the next level boundary once the deadline passes, and
// the process exits with status 3 (distinct from status 1 for other
// errors).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"mlpart"
)

// exitTimeout is the exit status for context deadline/cancellation, kept
// distinct from 1 (general errors) so scripts can tell "too slow" from
// "wrong input".
const exitTimeout = 3

// schemeSummary renders the registered coarsening schemes for -match's help
// text, so new schemes show up in -help without touching this file.
func schemeSummary() string {
	var b strings.Builder
	for i, s := range mlpart.CoarseningSchemes() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s (%s)", s.Name, s.Family)
	}
	return b.String()
}

func main() {
	k := flag.Int("k", 2, "number of parts")
	match := flag.String("match", "HEM", "coarsening scheme: "+schemeSummary())
	maxClusterWeight := flag.Int("max-cluster-weight", 0, "GCLP only: cluster weight cap (0 = derived from the coarsening target)")
	lpRounds := flag.Int("lp-rounds", 0, "GCLP only: label-propagation rounds per level (0 = default)")
	init := flag.String("init", "GGGP", "initial partitioner: GGGP, GGP, SBP")
	ref := flag.String("refine", "BKLGR", "refinement: NONE, GR, KLR, BGR, BKLR, BKLGR, BKWAY")
	preset := flag.String("preset", "", "quality preset: fast (1 cycle), eco (2), strong (4); empty = fast")
	cycles := flag.Int("cycles", 0, "explicit multilevel cycle count (overrides -preset)")
	seed := flag.Int64("seed", 0, "random seed (fixed seed => fixed result)")
	parallel := flag.Bool("parallel", false, "partition independent subgraphs (and NCuts trials) concurrently")
	ncuts := flag.Int("ncuts", 0, "run each bisection this many times with independent seeds, keep the best cut")
	coarsenWorkers := flag.Int("coarsen-workers", 0, "compute matchings with this many parallel workers (>1 enables)")
	refineWorkers := flag.Int("refine-workers", 0, "parallel propose workers for -refine BKWAY (result is identical for any count)")
	parallelDepth := flag.Int("parallel-depth", 0, "recursion levels that fan out when -parallel (0 = default 4)")
	parallelMinVerts := flag.Int("parallel-minverts", 0, "smallest subgraph that fans out when -parallel (0 = default 2000)")
	out := flag.String("o", "", "write the partition vector to this file")
	stats := flag.Bool("stats", false, "print extended quality metrics (comm volume, connectivity, ...)")
	direct := flag.Bool("direct", false, "use direct multilevel k-way instead of recursive bisection")
	weighted := flag.String("weighted", "", "comma-separated target fractions (overrides -k), e.g. 4,2,1,1")
	ordering := flag.String("ordering", "", "relabel vertices at ingest for locality: none, degree, bfs-block")
	convert := flag.String("convert", "", "write the loaded graph to this file (format by extension: .graph, .mtx, .csrb) and exit")
	gen := flag.String("gen", "", "generate the named synthetic workload instead of reading a file")
	scale := flag.Float64("scale", 0.25, "workload scale when -gen is used")
	doTrace := flag.Bool("trace", false, "emit per-level trace events as JSON lines while partitioning")
	asJSON := flag.Bool("json", false, "write the summary (and -trace events) as JSON on stdout")
	timeout := flag.Duration("timeout", 0, "abandon the run after this long (exit status 3)")
	faultPlan := flag.String("faults", os.Getenv("MLPART_FAULTS"), "deterministic fault-injection plan (see docs/RELIABILITY.md)")
	flag.Parse()

	g, name, closer, err := loadGraph(*gen, *scale)
	if err != nil {
		fatal(err)
	}
	if closer != nil {
		defer closer.Close()
	}
	if !*asJSON {
		fmt.Printf("graph %s: %d vertices, %d edges\n", name, g.NumVertices(), g.NumEdges())
	}

	if *convert != "" {
		if err := writeGraphFile(*convert, g); err != nil {
			fatal(err)
		}
		if !*asJSON {
			fmt.Printf("graph written to %s\n", *convert)
		}
		return
	}

	opts := &mlpart.Options{
		Coarsening: &mlpart.CoarseningOptions{
			Scheme:           *match,
			MaxClusterWeight: *maxClusterWeight,
			LPRounds:         *lpRounds,
		},
		InitPart:            *init,
		Refinement:          *ref,
		Seed:                *seed,
		Parallel:            *parallel,
		NCuts:               *ncuts,
		CoarsenWorkers:      *coarsenWorkers,
		RefineWorkers:       *refineWorkers,
		Preset:              *preset,
		Cycles:              *cycles,
		ParallelDepth:       *parallelDepth,
		ParallelMinVertices: *parallelMinVerts,
		Ordering:            *ordering,
		FaultPlan:           *faultPlan,
	}
	// Trace events go to stdout when the whole run is JSON (one uniform
	// stream), to stderr otherwise (keeping stdout for the prose summary).
	var traceOut *bufio.Writer
	if *doTrace {
		dst := os.Stderr
		if *asJSON {
			dst = os.Stdout
		}
		traceOut = bufio.NewWriter(dst)
		opts.Tracer = mlpart.NewJSONTracer(traceOut)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	t0 := time.Now()
	var res *mlpart.Partitioning
	switch {
	case *weighted != "":
		var fractions []float64
		for _, tok := range strings.Split(*weighted, ",") {
			f, perr := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if perr != nil {
				fatal(fmt.Errorf("bad -weighted fraction %q: %v", tok, perr))
			}
			fractions = append(fractions, f)
		}
		*k = len(fractions)
		res, err = mlpart.PartitionWeightedCtx(ctx, g, fractions, opts)
	case *direct:
		res, err = mlpart.PartitionDirectKWayCtx(ctx, g, *k, opts)
	default:
		res, err = mlpart.PartitionCtx(ctx, g, *k, opts)
	}
	if traceOut != nil {
		traceOut.Flush()
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "mlpart:", err)
			os.Exit(exitTimeout)
		}
		fatal(err)
	}
	elapsed := time.Since(t0)

	if *asJSON {
		// The summary is the wire schema's PartitionResponse — the same
		// object POST /v1/partition returns — so clients can switch
		// between the CLI and the daemon without remapping fields.
		summary := mlpart.PartitionResponse{
			Kind: mlpart.WireKindResult, SchemaVersion: mlpart.SchemaVersion, Graph: name,
			Vertices: g.NumVertices(), Edges: g.NumEdges(),
			K: *k, EdgeCut: res.EdgeCut, Balance: res.Balance(),
			PartWeights: res.PartWeights, Cycles: res.Cycles,
			ElapsedNS: elapsed.Nanoseconds(),
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(summary); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("%d-way partition: edge-cut %d, balance %.3f, time %.3fs\n",
			*k, res.EdgeCut, res.Balance(), elapsed.Seconds())
		if res.Cycles > 1 {
			fmt.Printf("cycles completed: %d\n", res.Cycles)
		}
		fmt.Printf("part weights: %v\n", res.PartWeights)
	}
	if *stats {
		report, err := mlpart.EvaluatePartition(g, res.Where, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		for _, p := range res.Where {
			fmt.Fprintln(w, p)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if !*asJSON {
			fmt.Printf("partition vector written to %s\n", *out)
		}
	}
}

// loadGraph loads the input graph. A non-nil closer (the `.csrb` mmap
// path) must be held open for the graph's lifetime.
func loadGraph(gen string, scale float64) (*mlpart.Graph, string, io.Closer, error) {
	if gen != "" {
		g, err := mlpart.GenerateWorkload(gen, scale)
		return g, gen, nil, err
	}
	if flag.NArg() != 1 {
		return nil, "", nil, fmt.Errorf("usage: mlpart [flags] graph.file (or -gen NAME); see -h")
	}
	path := flag.Arg(0)
	if strings.HasSuffix(path, ".csrb") {
		g, closer, err := mlpart.OpenBinaryGraph(path)
		return g, path, closer, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", nil, err
	}
	defer f.Close()
	var g *mlpart.Graph
	if strings.HasSuffix(path, ".mtx") {
		g, err = mlpart.ReadMatrixMarket(bufio.NewReader(f))
	} else {
		g, err = mlpart.ReadGraph(bufio.NewReader(f))
	}
	return g, path, nil, err
}

// writeGraphFile writes g to path in the format its extension names.
func writeGraphFile(path string, g *mlpart.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	switch {
	case strings.HasSuffix(path, ".mtx"):
		err = mlpart.WriteMatrixMarket(w, g)
	case strings.HasSuffix(path, ".csrb"):
		err = mlpart.WriteBinaryGraph(w, g)
	default:
		err = mlpart.WriteGraph(w, g)
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	// Entry-point errors already carry the package prefix; don't print
	// "mlpart: mlpart: ...".
	fmt.Fprintln(os.Stderr, "mlpart:", strings.TrimPrefix(err.Error(), "mlpart: "))
	os.Exit(1)
}
