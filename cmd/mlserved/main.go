// Command mlserved runs the multilevel partitioner as a long-lived HTTP
// daemon: POST a graph in CSR form as JSON and get a deterministic
// partition, ordering or repartition back, with bounded concurrency,
// load shedding and a fingerprint-keyed result cache.
//
// Usage:
//
//	mlserved [-addr :8080] [-workers 0] [-queue 0] [-cache 256]
//	         [-timeout 60s] [-drain 30s] [-ready-grace 0s] [-max-body 67108864]
//	         [-jobs 1024] [-job-ttl 10m] [-faults ""]
//
// Endpoints (see docs/SERVICE.md and docs/RELIABILITY.md):
//
//	POST /v1/partition    k-way / weighted / direct k-way partition
//	POST /v1/order        nested-dissection fill-reducing ordering
//	POST /v1/repartition  adaptive repartitioning with minimal migration
//	POST /v1/jobs         asynchronous submission (202 + poll URL)
//	POST /v1/jobs/batch   submit many jobs in one request
//	GET  /v1/jobs/{id}    poll job state / fetch the finished result
//	DELETE /v1/jobs/{id}  cancel a queued or running job
//	GET  /healthz         liveness probe (200 for the process lifetime)
//	GET  /readyz          readiness probe (503 while draining)
//	GET  /varz            counters, queue depth, cache, jobs and latency stats
//
// On SIGTERM or SIGINT the daemon flips /readyz to 503, waits -ready-grace
// for load balancers to observe the flip, stops accepting connections,
// drains in-flight requests and running async jobs for up to -drain, then
// exits 0; a second signal aborts immediately.
//
// -faults installs a deterministic fault-injection plan (defaults to the
// MLPART_FAULTS environment variable) for chaos drills; see
// docs/RELIABILITY.md for the grammar.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mlpart/internal/faults"
	"mlpart/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent computations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue beyond running work (0 = 4x workers, -1 = none)")
	cacheSize := flag.Int("cache", 256, "result cache entries (-1 disables)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request compute ceiling")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget for in-flight requests")
	readyGrace := flag.Duration("ready-grace", 0, "wait after flipping /readyz to 503 before closing the listener")
	maxBody := flag.Int64("max-body", 64<<20, "request body limit in bytes")
	jobCap := flag.Int("jobs", 1024, "async job store capacity (-1 sheds every /v1/jobs submission)")
	jobTTL := flag.Duration("job-ttl", 10*time.Minute, "finished job retention before eviction")
	faultPlan := flag.String("faults", os.Getenv("MLPART_FAULTS"), "deterministic fault-injection plan (chaos drills; see docs/RELIABILITY.md)")
	flag.Parse()

	inj, err := faults.Parse(*faultPlan)
	if err != nil {
		log.Fatalf("mlserved: -faults: %v", err)
	}
	if inj != nil {
		log.Printf("mlserved: fault injection active: %q", *faultPlan)
	}
	srv := service.New(service.Config{
		Workers:       *workers,
		QueueSize:     *queue,
		CacheSize:     *cacheSize,
		Timeout:       *timeout,
		MaxBodyBytes:  *maxBody,
		JobCapacity:   *jobCap,
		JobTTL:        *jobTTL,
		FaultInjector: inj,
	})
	cfg := srv.Config()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGTERM/SIGINT triggers a graceful drain; a second signal (the
	// context is already done, so NotifyContext restores default
	// handling) kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("mlserved listening on %s (workers=%d queue=%d cache=%d timeout=%s jobs=%d job-ttl=%s)",
		*addr, cfg.Workers, cfg.QueueSize, cfg.CacheSize, cfg.Timeout, *jobCap, *jobTTL)

	select {
	case err := <-errc:
		log.Fatalf("mlserved: %v", err)
	case <-ctx.Done():
	}
	stop()
	// Flip readiness first so load balancers stop routing here, give them
	// the grace window to notice, then close the listener and drain.
	srv.BeginDrain()
	if *readyGrace > 0 {
		log.Printf("mlserved: /readyz now 503, waiting %s for traffic to move", *readyGrace)
		time.Sleep(*readyGrace)
	}
	log.Printf("mlserved: draining in-flight requests (up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "mlserved: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	// Async jobs outlive their submission requests, so Shutdown returning
	// does not mean the workers are idle: wait for running jobs within
	// whatever remains of the drain budget.
	if err := srv.WaitJobs(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "mlserved: drain incomplete: running jobs remain: %v\n", err)
		os.Exit(1)
	}
	log.Printf("mlserved: jobs drained")
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("mlserved: %v", err)
	}
	log.Printf("mlserved: drained, bye")
}
