// Command mlserved runs the multilevel partitioner as a long-lived HTTP
// daemon: POST a graph in CSR form as JSON and get a deterministic
// partition, ordering or repartition back, with bounded concurrency,
// load shedding and a fingerprint-keyed result cache.
//
// Usage:
//
//	mlserved [-addr :8080] [-workers 0] [-queue 0] [-cache 256]
//	         [-timeout 60s] [-drain 30s] [-max-body 67108864]
//
// Endpoints (see docs/SERVICE.md for the API reference):
//
//	POST /v1/partition    k-way / weighted / direct k-way partition
//	POST /v1/order        nested-dissection fill-reducing ordering
//	POST /v1/repartition  adaptive repartitioning with minimal migration
//	GET  /healthz         liveness probe
//	GET  /varz            counters, queue depth, cache and latency stats
//
// On SIGTERM or SIGINT the daemon stops accepting connections, drains
// in-flight requests for up to -drain, then exits 0; a second signal
// aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mlpart/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent computations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue beyond running work (0 = 4x workers, -1 = none)")
	cacheSize := flag.Int("cache", 256, "result cache entries (-1 disables)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request compute ceiling")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget for in-flight requests")
	maxBody := flag.Int64("max-body", 64<<20, "request body limit in bytes")
	flag.Parse()

	srv := service.New(service.Config{
		Workers:      *workers,
		QueueSize:    *queue,
		CacheSize:    *cacheSize,
		Timeout:      *timeout,
		MaxBodyBytes: *maxBody,
	})
	cfg := srv.Config()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGTERM/SIGINT triggers a graceful drain; a second signal (the
	// context is already done, so NotifyContext restores default
	// handling) kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("mlserved listening on %s (workers=%d queue=%d cache=%d timeout=%s)",
		*addr, cfg.Workers, cfg.QueueSize, cfg.CacheSize, cfg.Timeout)

	select {
	case err := <-errc:
		log.Fatalf("mlserved: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("mlserved: draining in-flight requests (up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "mlserved: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("mlserved: %v", err)
	}
	log.Printf("mlserved: drained, bye")
}
