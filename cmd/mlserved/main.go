// Command mlserved runs the multilevel partitioner as a long-lived HTTP
// daemon: POST a graph in CSR form as JSON and get a deterministic
// partition, ordering or repartition back, with bounded concurrency,
// load shedding and a fingerprint-keyed result cache.
//
// Usage:
//
//	mlserved [-addr :8080] [-workers 0] [-queue 0] [-cache 256]
//	         [-timeout 60s] [-drain 30s] [-ready-grace 0s] [-max-body 67108864]
//	         [-jobs 1024] [-job-ttl 10m] [-max-batch 256]
//	         [-state-dir ""] [-max-sessions 64] [-session-bytes 268435456]
//	         [-resident-bytes 1073741824] [-delta-max 4096] [-session-ttl 30m]
//	         [-snapshot-every 64] [-faults ""]
//
// Endpoints (see docs/SERVICE.md and docs/RELIABILITY.md):
//
//	POST /v1/partition    k-way / weighted / direct k-way partition
//	POST /v1/order        nested-dissection fill-reducing ordering
//	POST /v1/repartition  adaptive repartitioning with minimal migration
//	POST /v1/jobs         asynchronous submission (202 + poll URL)
//	POST /v1/jobs/batch   submit many jobs in one request
//	GET  /v1/jobs/{id}    poll job state / fetch the finished result
//	DELETE /v1/jobs/{id}  cancel a queued or running job
//	POST /v1/graphs       create a resident graph session
//	GET  /v1/graphs/{id}  inspect a session (POST .../edges, .../repartition)
//	GET  /healthz         liveness probe (200 for the process lifetime)
//	GET  /readyz          readiness probe (503 while draining)
//	GET  /varz            counters, queue depth, cache, jobs and latency stats
//
// -state-dir makes graph sessions durable: each session keeps an
// append-only delta log plus periodic snapshots there and is recovered
// on startup, so a SIGKILL'd daemon comes back with byte-identical
// partitions.
//
// On SIGTERM or SIGINT the daemon flips /readyz to 503, waits -ready-grace
// for load balancers to observe the flip, stops accepting connections,
// drains in-flight requests and running async jobs for up to -drain, then
// exits 0; a second signal aborts immediately.
//
// -faults installs a deterministic fault-injection plan (defaults to the
// MLPART_FAULTS environment variable) for chaos drills; see
// docs/RELIABILITY.md for the grammar.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mlpart/internal/faults"
	"mlpart/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent computations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue beyond running work (0 = 4x workers, -1 = none)")
	cacheSize := flag.Int("cache", 256, "result cache entries (-1 disables)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request compute ceiling")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget for in-flight requests")
	readyGrace := flag.Duration("ready-grace", 0, "wait after flipping /readyz to 503 before closing the listener")
	maxBody := flag.Int64("max-body", 64<<20, "request body limit in bytes")
	jobCap := flag.Int("jobs", 1024, "async job store capacity (-1 sheds every /v1/jobs submission)")
	jobTTL := flag.Duration("job-ttl", 10*time.Minute, "finished job retention before eviction")
	maxBatch := flag.Int("max-batch", 256, "max entries per /v1/jobs/batch submission (-1 = unlimited)")
	stateDir := flag.String("state-dir", "", "session durability directory (empty = memory-only sessions)")
	maxSessions := flag.Int("max-sessions", 64, "resident graph session limit (-1 disables the session API)")
	sessionBytes := flag.Int64("session-bytes", 256<<20, "per-session resident memory budget in bytes")
	residentBytes := flag.Int64("resident-bytes", 1<<30, "total session resident memory budget in bytes")
	deltaMax := flag.Int("delta-max", 4096, "max ops per session delta batch")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "idle window before a durable session is evicted to disk")
	snapshotEvery := flag.Int("snapshot-every", 64, "delta-log records between session snapshot compactions")
	faultPlan := flag.String("faults", os.Getenv("MLPART_FAULTS"), "deterministic fault-injection plan (chaos drills; see docs/RELIABILITY.md)")
	flag.Parse()

	inj, err := faults.Parse(*faultPlan)
	if err != nil {
		log.Fatalf("mlserved: -faults: %v", err)
	}
	if inj != nil {
		log.Printf("mlserved: fault injection active: %q", *faultPlan)
	}
	srv, err := service.New(service.Config{
		Workers:          *workers,
		QueueSize:        *queue,
		CacheSize:        *cacheSize,
		Timeout:          *timeout,
		MaxBodyBytes:     *maxBody,
		JobCapacity:      *jobCap,
		JobTTL:           *jobTTL,
		MaxBatchJobs:     *maxBatch,
		StateDir:         *stateDir,
		MaxSessions:      *maxSessions,
		MaxSessionBytes:  *sessionBytes,
		MaxResidentBytes: *residentBytes,
		MaxDeltaOps:      *deltaMax,
		SessionTTL:       *sessionTTL,
		SnapshotEvery:    *snapshotEvery,
		FaultInjector:    inj,
	})
	if err != nil {
		log.Fatalf("mlserved: %v", err)
	}
	cfg := srv.Config()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGTERM/SIGINT triggers a graceful drain; a second signal (the
	// context is already done, so NotifyContext restores default
	// handling) kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// Idle-session sweeper: durable sessions past their TTL are flushed
	// to disk and dropped from memory on a timer, not just under
	// admission pressure.
	if *maxSessions >= 0 && *sessionTTL > 0 {
		go func() {
			t := time.NewTicker(*sessionTTL / 2)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if n := srv.SweepSessions(); n > 0 {
						log.Printf("mlserved: evicted %d idle session(s)", n)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("mlserved listening on %s (workers=%d queue=%d cache=%d timeout=%s jobs=%d job-ttl=%s)",
		*addr, cfg.Workers, cfg.QueueSize, cfg.CacheSize, cfg.Timeout, *jobCap, *jobTTL)

	select {
	case err := <-errc:
		log.Fatalf("mlserved: %v", err)
	case <-ctx.Done():
	}
	stop()
	// Flip readiness first so load balancers stop routing here, give them
	// the grace window to notice, then close the listener and drain.
	srv.BeginDrain()
	if *readyGrace > 0 {
		log.Printf("mlserved: /readyz now 503, waiting %s for traffic to move", *readyGrace)
		time.Sleep(*readyGrace)
	}
	log.Printf("mlserved: draining in-flight requests (up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "mlserved: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	// Async jobs outlive their submission requests, so Shutdown returning
	// does not mean the workers are idle: wait for running jobs within
	// whatever remains of the drain budget.
	if err := srv.WaitJobs(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "mlserved: drain incomplete: running jobs remain: %v\n", err)
		os.Exit(1)
	}
	log.Printf("mlserved: jobs drained")
	// Flush session snapshots last: every delta and repair that made it
	// through the drain is on disk before the process exits.
	if err := srv.CloseSessions(); err != nil {
		fmt.Fprintf(os.Stderr, "mlserved: session flush incomplete: %v\n", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("mlserved: %v", err)
	}
	log.Printf("mlserved: drained, bye")
}
