#!/bin/sh
# Run the full benchmark suite with allocation reporting and save a JSON
# snapshot (one go-test event per line) as BENCH_<date>.json in the repo
# root. Compare snapshots across commits to track the allocs/op and ns/op
# of the paper-table benchmarks.
#
# Usage:
#   scripts/bench.sh                          # full suite, 1 iteration each
#   BENCHTIME=5x scripts/bench.sh             # more iterations
#   BENCH=Table4 scripts/bench.sh             # subset by regexp
#   BENCH=Cycles scripts/bench.sh             # preset group: BenchmarkCycles
#                                             # (fast vs eco vs strong on the
#                                             # Table-2 FE3D mesh; edgecut
#                                             # must fall, ns/op may grow by
#                                             # the cycle multiple)
#   BENCH=Ingest scripts/bench.sh             # ingest group: BenchmarkIngest
#                                             # (JSON vs METIS vs binary CSR,
#                                             # docs/WIRE.md) + the service
#                                             # end-to-end ServiceIngest pair
#   BENCH=CoarseningFamilies scripts/bench.sh # coarsening-family group:
#                                             # HEM (matching) vs GCLP
#                                             # (aggregation) at k=32 on the
#                                             # FE3D mesh and the SOC
#                                             # power-law graph; reports
#                                             # edgecut, imbalance, hierarchy
#                                             # depth and shrink/level
#   OUT=BENCH_5.json scripts/bench.sh         # snapshot filename override
#   scripts/bench.sh --compare old.json       # also print the delta table
#                                             # (ns/op, allocs/op) vs old.json
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
BENCH="${BENCH:-.}"
OUT="${OUT:-BENCH_$(date +%Y%m%d).json}"

BASELINE=""
if [ "${1:-}" = "--compare" ]; then
    [ $# -ge 2 ] || { echo "bench.sh: --compare needs a baseline snapshot" >&2; exit 2; }
    BASELINE="$2"
    [ -f "$BASELINE" ] || { echo "bench.sh: baseline $BASELINE not found" >&2; exit 2; }
fi

go test -json -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" . ./internal/... >"$OUT"

grep -c '"Action":"output"' "$OUT" >/dev/null || {
    echo "bench.sh: no benchmark output captured" >&2
    exit 1
}
echo "benchmark snapshot written to $OUT"

if [ -n "$BASELINE" ]; then
    echo "== benchcmp vs $BASELINE"
    go run ./scripts/benchcmp "$BASELINE" "$OUT"
fi
