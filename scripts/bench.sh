#!/bin/sh
# Run the full benchmark suite with allocation reporting and save a JSON
# snapshot (one go-test event per line) as BENCH_<date>.json in the repo
# root. Compare snapshots across commits to track the allocs/op and ns/op
# of the paper-table benchmarks.
#
# Usage:
#   scripts/bench.sh                 # full suite, 1 iteration per benchmark
#   BENCHTIME=5x scripts/bench.sh    # more iterations
#   BENCH=Table4 scripts/bench.sh    # subset by regexp
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
BENCH="${BENCH:-.}"
OUT="BENCH_$(date +%Y%m%d).json"

go test -json -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" . ./internal/... >"$OUT"

grep -c '"Action":"output"' "$OUT" >/dev/null || {
    echo "bench.sh: no benchmark output captured" >&2
    exit 1
}
echo "benchmark snapshot written to $OUT"
