// Command benchcmp compares two benchmark snapshots produced by
// scripts/bench.sh (go test -json -bench output, one event per line) and
// prints a benchstat-style delta table for ns/op and allocs/op:
//
//	go run ./scripts/benchcmp old.json new.json
//
// Benchmarks present in only one snapshot are listed separately. The exit
// code is 0 regardless of deltas unless -fail-over is set to a percentage,
// in which case any ns/op regression beyond it exits 1 — CI runs without
// the flag so the comparison stays a report, never a gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	nsOp      float64
	allocsOp  float64
	hasAllocs bool
}

type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches a complete benchmark result line after the per-package
// output has been reassembled: name, iteration count, ns/op, and the rest
// of the measurements.
var benchLine = regexp.MustCompile(`(?m)^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

var allocsRe = regexp.MustCompile(`([0-9.]+) allocs/op`)

func readSnapshot(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	// go test -json splits benchmark lines across output events
	// arbitrarily, so reassemble the full output text per package first.
	outputs := map[string]*strings.Builder{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise
		}
		if ev.Action != "output" {
			continue
		}
		b := outputs[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			outputs[ev.Package] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	res := map[string]result{}
	for pkg, b := range outputs {
		for _, m := range benchLine.FindAllStringSubmatch(b.String(), -1) {
			name := pkg + "." + m[1]
			nsOp, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			r := result{nsOp: nsOp}
			if am := allocsRe.FindStringSubmatch(m[3]); am != nil {
				r.allocsOp, _ = strconv.ParseFloat(am[1], 64)
				r.hasAllocs = true
			}
			res[name] = r
		}
	}
	return res, nil
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func main() {
	failOver := flag.Float64("fail-over", 0,
		"exit 1 if any ns/op regression exceeds this percentage (0 disables)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-fail-over N] old.json new.json")
		os.Exit(2)
	}
	old, err := readSnapshot(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	cur, err := readSnapshot(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}

	var common, onlyOld, onlyNew []string
	for name := range old {
		if _, ok := cur[name]; ok {
			common = append(common, name)
		} else {
			onlyOld = append(onlyOld, name)
		}
	}
	for name := range cur {
		if _, ok := old[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	sort.Strings(common)
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)

	if len(common) == 0 {
		fmt.Println("benchcmp: no common benchmarks")
	} else {
		fmt.Printf("%-60s %14s %14s %8s %10s\n",
			"benchmark", "old ns/op", "new ns/op", "delta", "allocs/op")
		for _, name := range common {
			o, n := old[name], cur[name]
			alloc := "-"
			if o.hasAllocs && n.hasAllocs {
				alloc = fmt.Sprintf("%.0f→%.0f", o.allocsOp, n.allocsOp)
			}
			fmt.Printf("%-60s %14.0f %14.0f %+7.1f%% %10s\n",
				name, o.nsOp, n.nsOp, pct(o.nsOp, n.nsOp), alloc)
		}
	}
	for _, name := range onlyOld {
		fmt.Printf("%-60s only in %s\n", name, flag.Arg(0))
	}
	for _, name := range onlyNew {
		fmt.Printf("%-60s only in %s\n", name, flag.Arg(1))
	}

	if *failOver > 0 {
		for _, name := range common {
			if d := pct(old[name].nsOp, cur[name].nsOp); d > *failOver {
				fmt.Fprintf(os.Stderr, "benchcmp: %s regressed %.1f%% (limit %.1f%%)\n",
					name, d, *failOver)
				os.Exit(1)
			}
		}
	}
}
