#!/bin/sh
# Local CI: the same gate .github/workflows/ci.yml runs. Fails on
# unformatted files, vet findings, build or test failures, and data races
# in the concurrent packages (parallel coarsening, parallel NCuts /
# recursive bisection, k-way refinement).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrent packages)"
go test -race ./internal/coarsen/ ./internal/multilevel/ ./internal/kway/

echo "CI OK"
