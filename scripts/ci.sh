#!/bin/sh
# Local CI: the same gate .github/workflows/ci.yml runs. Fails on
# unformatted files, vet findings, build or test failures, and data races
# in the concurrent packages (parallel coarsening, parallel NCuts /
# recursive bisection, k-way refinement).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrent packages, parity + fuzz seeds)"
go test -race ./internal/coarsen/ ./internal/multilevel/ ./internal/kway/ \
    ./internal/trace/ ./internal/graph/ ./internal/service/ ./internal/jobs/ \
    ./internal/sessions/

echo "== chaos (fault-injection suite under -race, multiple seeds)"
for seed in 1 7 42; do
    echo "-- CHAOS_SEED=$seed"
    CHAOS_SEED=$seed go test -race -run 'Chaos' -count=1 \
        ./internal/service/ ./internal/multilevel/ ./internal/sessions/
done

echo "== service smoke (live daemon vs CLI, async batch jobs, healthz, readyz drain, cache, SIGTERM, session kill-and-recover)"
go run ./scripts/servicesmoke

echo "== perf report (refine + ingest + cycle + coarsening benchmarks vs committed baseline, non-fatal)"
perf_now="$(mktemp)"
if go test -json -run '^$' -bench 'BenchmarkRefineKWay|BenchmarkRefinePolicies' \
    -benchmem -benchtime 3x ./internal/refine/ >"$perf_now" 2>/dev/null &&
    go test -json -run '^$' -bench 'BenchmarkIngest$' \
        -benchmem -benchtime 3x . >>"$perf_now" 2>/dev/null &&
    go test -json -run '^$' -bench 'BenchmarkCycles' \
        -benchmem -benchtime 1x . >>"$perf_now" 2>/dev/null &&
    go test -json -run '^$' -bench 'BenchmarkCoarseningFamilies' \
        -benchmem -benchtime 1x . >>"$perf_now" 2>/dev/null; then
    # Report-only: machine variance makes ns/op deltas advisory in CI. To
    # gate locally, add -fail-over 25 to the benchcmp invocation.
    go run ./scripts/benchcmp scripts/perf_baseline.json "$perf_now" || true
else
    echo "perf report skipped: benchmark run failed" >&2
fi
rm -f "$perf_now"

echo "== fuzz smoke (graph readers + binary decoder + session delta log)"
go test -fuzz '^FuzzRead$' -fuzztime 10s -run '^$' ./internal/graph/
go test -fuzz '^FuzzReadMatrixMarket$' -fuzztime 10s -run '^$' ./internal/graph/
go test -fuzz '^FuzzDecodeBinary$' -fuzztime 10s -run '^$' ./internal/graph/
go test -fuzz '^FuzzDeltaLog$' -fuzztime 10s -run '^$' ./internal/sessions/

echo "CI OK"
