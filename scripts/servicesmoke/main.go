// Command servicesmoke is the CI smoke test for the mlserved daemon. It
// builds the real binaries, starts mlserved on a free port, POSTs a
// generated workload to /v1/partition, diffs the edge-cut against the
// mlpart CLI on the same input (both paths are deterministic for a fixed
// seed, so they must agree exactly), verifies /healthz, /varz and a
// byte-identical cache hit, re-POSTs the graph as binary CSR
// (application/x-mlpart-csr) and requires a cache hit shared with the
// JSON requests, submits a batch of async jobs through the SDK client
// and diffs every polled result's edge-cut against the CLI, then sends
// SIGTERM and requires the drain choreography: /readyz flips to 503
// while /healthz stays 200 for the -ready-grace window, then the daemon
// exits 0. A second daemon run with a delay fault at jobs/run proves the
// drain path waits for a running async job ("jobs drained" in its log)
// instead of abandoning it. A third run exercises durable graph
// sessions: it creates a session, streams delta batches, forces a
// repartition, SIGKILLs the daemon mid-flight, restarts it on the same
// -state-dir and requires the recovered partition vector and edge-cut
// to be byte-identical to the pre-kill state. It exits non-zero with a
// diagnostic on any mismatch.
//
// All traffic goes through service.RetryClient, so the startup wait and
// the POSTs double as an exercise of the backoff path.
//
// Run it from the repository root:
//
//	go run ./scripts/servicesmoke
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"mlpart"
	"mlpart/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servicesmoke:", err)
		os.Exit(1)
	}
	fmt.Println("service smoke OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "mlsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	mlserved := filepath.Join(tmp, "mlserved")
	mlpartBin := filepath.Join(tmp, "mlpart")
	for bin, pkg := range map[string]string{mlserved: "./cmd/mlserved", mlpartBin: "./cmd/mlpart"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("build %s: %v", pkg, err)
		}
	}

	// One workload, two routes: the daemon gets it as CSR JSON, the CLI
	// as a METIS graph file.
	const (
		workload = "4ELT"
		scale    = 0.05
		k        = 8
		seed     = 7
	)
	g, err := mlpart.GenerateWorkload(workload, scale)
	if err != nil {
		return err
	}
	graphFile := filepath.Join(tmp, "g.graph")
	gf, err := os.Create(graphFile)
	if err != nil {
		return err
	}
	if err := mlpart.WriteGraph(gf, g); err != nil {
		return err
	}
	if err := gf.Close(); err != nil {
		return err
	}
	reqBody, err := json.Marshal(mlpart.PartitionRequest{
		Graph:   *mlpart.NewWireGraph(g),
		K:       k,
		Options: &mlpart.Options{Seed: seed},
	})
	if err != nil {
		return err
	}

	// A free port from the kernel; the tiny close-to-bind race is
	// acceptable for a smoke test.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := l.Addr().String()
	l.Close()

	const readyGrace = 2 * time.Second
	daemon := exec.Command(mlserved, "-addr", addr, "-workers", "2", "-drain", "10s",
		"-ready-grace", readyGrace.String())
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return err
	}
	defer daemon.Process.Kill()
	base := "http://" + addr

	// All traffic through the retry client: the startup wait is just
	// retried transport errors until the listener is up, and any 429 shed
	// by the admission queue backs off instead of failing the smoke.
	rc := &service.RetryClient{
		MaxAttempts: 40,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    400 * time.Millisecond,
	}
	resp, err := rc.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("daemon never became healthy: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("daemon never became healthy: /healthz status %d", resp.StatusCode)
	}

	post := func() (*http.Response, []byte, error) {
		resp, err := rc.Post(base+"/v1/partition", "application/json", reqBody)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		return resp, data, err
	}
	resp, body, err := post()
	if err != nil {
		return fmt.Errorf("POST /v1/partition: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/partition: status %d: %s", resp.StatusCode, body)
	}
	var served mlpart.PartitionResponse
	if err := json.Unmarshal(body, &served); err != nil {
		return fmt.Errorf("decode daemon response: %v", err)
	}

	// The CLI on the same input must agree on the cut exactly.
	out, err := exec.Command(mlpartBin, "-json", "-k", fmt.Sprint(k), "-seed", fmt.Sprint(seed), graphFile).Output()
	if err != nil {
		return fmt.Errorf("mlpart CLI: %v", err)
	}
	var cli mlpart.PartitionResponse
	if err := json.Unmarshal(out, &cli); err != nil {
		return fmt.Errorf("decode CLI response: %v\n%s", err, out)
	}
	if served.EdgeCut != cli.EdgeCut {
		return fmt.Errorf("edge-cut disagreement: daemon %d vs CLI %d", served.EdgeCut, cli.EdgeCut)
	}
	fmt.Printf("edge-cut agreement: daemon %d == CLI %d (n=%d, k=%d)\n",
		served.EdgeCut, cli.EdgeCut, served.Vertices, k)

	// A second identical POST must hit the cache byte-for-byte.
	resp2, body2, err := post()
	if err != nil {
		return err
	}
	if resp2.Header.Get("X-Cache") != "hit" {
		return fmt.Errorf("second POST X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body, body2) {
		return fmt.Errorf("cache hit body differs from cold body")
	}

	// The same graph as binary CSR (docs/WIRE.md) with the options in the
	// query string must land on the SAME cache entry the JSON requests
	// populated — the cache is keyed by graph fingerprint, not request
	// bytes — and return the identical body.
	var binBody bytes.Buffer
	if err := mlpart.WriteBinaryGraph(&binBody, g); err != nil {
		return err
	}
	bresp, err := rc.Post(fmt.Sprintf("%s/v1/partition?k=%d&seed=%d", base, k, seed),
		mlpart.ContentTypeBinaryCSR, binBody.Bytes())
	if err != nil {
		return fmt.Errorf("binary POST /v1/partition: %v", err)
	}
	bbody, err := io.ReadAll(bresp.Body)
	bresp.Body.Close()
	if err != nil {
		return err
	}
	if bresp.StatusCode != http.StatusOK {
		return fmt.Errorf("binary POST /v1/partition: status %d: %s", bresp.StatusCode, bbody)
	}
	if bresp.Header.Get("X-Cache") != "hit" {
		return fmt.Errorf("binary POST X-Cache = %q, want hit (JSON and binary clients must share entries)",
			bresp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body, bbody) {
		return fmt.Errorf("binary-encoded request body differs from the JSON one")
	}
	fmt.Printf("binary CSR POST: %d bytes (JSON body %d), cache shared across encodings\n",
		binBody.Len(), len(reqBody))

	// /varz must be valid JSON reflecting the traffic.
	vresp, err := http.Get(base + "/varz")
	if err != nil {
		return err
	}
	vdata, _ := io.ReadAll(vresp.Body)
	vresp.Body.Close()
	var v struct {
		Admitted int64 `json:"admitted"`
		Cache    struct {
			Hits int64 `json:"hits"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(vdata, &v); err != nil {
		return fmt.Errorf("/varz decode: %v\n%s", err, vdata)
	}
	if v.Admitted < 2 || v.Cache.Hits < 1 {
		return fmt.Errorf("/varz counters implausible: %s", vdata)
	}

	// Async batch: three partitions of the same graph at different seeds
	// submitted in one POST /v1/jobs/batch, polled to completion through
	// the SDK client, and every edge-cut diffed against the CLI on the
	// same input. Seed 7 also proves the job path shares the sync cache.
	sdk := &service.Client{Base: base, HTTP: rc}
	seeds := []int64{seed, seed + 1, seed + 2}
	entries := make([]mlpart.BatchJob, len(seeds))
	for i, s := range seeds {
		entries[i] = mlpart.BatchJob{Partition: &mlpart.PartitionRequest{
			Graph:   *mlpart.NewWireGraph(g),
			K:       k,
			Options: &mlpart.Options{Seed: s},
		}}
	}
	br, err := sdk.SubmitBatch(context.Background(), entries)
	if err != nil {
		return fmt.Errorf("SubmitBatch: %v", err)
	}
	for i, jr := range br.Jobs {
		if jr.ID == "" {
			return fmt.Errorf("batch entry %d rejected: %s", i, jr.Error)
		}
		res, err := sdk.WaitJob(context.Background(), jr.ID)
		if err != nil {
			return fmt.Errorf("WaitJob %s: %v", jr.ID, err)
		}
		if res.State != mlpart.JobStateDone {
			return fmt.Errorf("job %s finished %q: %s", jr.ID, res.State, res.Body)
		}
		var jobResp mlpart.PartitionResponse
		if err := json.Unmarshal(res.Body, &jobResp); err != nil {
			return fmt.Errorf("decode job %s result: %v", jr.ID, err)
		}
		cliOut, err := exec.Command(mlpartBin, "-json", "-k", fmt.Sprint(k),
			"-seed", fmt.Sprint(seeds[i]), graphFile).Output()
		if err != nil {
			return fmt.Errorf("mlpart CLI (seed %d): %v", seeds[i], err)
		}
		var cliResp mlpart.PartitionResponse
		if err := json.Unmarshal(cliOut, &cliResp); err != nil {
			return fmt.Errorf("decode CLI response (seed %d): %v", seeds[i], err)
		}
		if jobResp.EdgeCut != cliResp.EdgeCut {
			return fmt.Errorf("seed %d: async job edge-cut %d != CLI %d",
				seeds[i], jobResp.EdgeCut, cliResp.EdgeCut)
		}
	}
	fmt.Printf("async batch: %d jobs polled to done, edge-cuts match CLI\n", len(seeds))

	// Graceful shutdown choreography: after SIGTERM the daemon must flip
	// /readyz to 503 (traffic should move elsewhere) while /healthz stays
	// 200 (the process is alive, don't restart it), hold the listener open
	// for -ready-grace, then drain and exit 0. The probes below use the
	// plain http client: a 503 here is the expected answer, not something
	// to retry.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	probe := func(path string) (int, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	var readyCode int
	deadline := time.Now().Add(readyGrace)
	for time.Now().Before(deadline) {
		readyCode, err = probe("/readyz")
		if err != nil {
			return fmt.Errorf("/readyz during drain window: %v", err)
		}
		if readyCode == http.StatusServiceUnavailable {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if readyCode != http.StatusServiceUnavailable {
		return fmt.Errorf("/readyz = %d during drain window, want 503", readyCode)
	}
	liveCode, err := probe("/healthz")
	if err != nil {
		return fmt.Errorf("/healthz during drain window: %v", err)
	}
	if liveCode != http.StatusOK {
		return fmt.Errorf("/healthz = %d during drain window, want 200 (liveness must outlive readiness)", liveCode)
	}
	fmt.Printf("drain window: /readyz 503, /healthz 200\n")

	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15*time.Second + readyGrace):
		return fmt.Errorf("daemon did not drain within %s of SIGTERM", 15*time.Second+readyGrace)
	}

	if err := drainWaitsForJobs(mlserved, reqBody); err != nil {
		return err
	}
	return sessionsSurviveKill(mlserved, g)
}

// drainWaitsForJobs starts a second daemon with a 2s delay fault wired
// into the job execution site, submits an async job, waits for it to
// reach "running", then sends SIGTERM. The daemon must NOT exit until
// the job finishes — its drain path logs "jobs drained" after waiting on
// the job workers — and must still exit 0 well inside the drain budget.
func drainWaitsForJobs(mlserved string, reqBody []byte) error {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := l.Addr().String()
	l.Close()

	const jobDelay = 2 * time.Second
	var logBuf bytes.Buffer
	daemon := exec.Command(mlserved, "-addr", addr, "-workers", "2", "-drain", "15s",
		"-faults", fmt.Sprintf("jobs/run=delay:%s@*", jobDelay))
	daemon.Stderr = io.MultiWriter(os.Stderr, &logBuf)
	if err := daemon.Start(); err != nil {
		return err
	}
	defer daemon.Process.Kill()
	base := "http://" + addr

	rc := &service.RetryClient{
		MaxAttempts: 40,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    400 * time.Millisecond,
	}
	resp, err := rc.Post(base+"/v1/jobs?type=partition", "application/json", reqBody)
	if err != nil {
		return fmt.Errorf("job daemon submit: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("job daemon submit: status %d: %s", resp.StatusCode, data)
	}
	var jr mlpart.JobResponse
	if err := json.Unmarshal(data, &jr); err != nil {
		return fmt.Errorf("job daemon submit decode: %v", err)
	}

	// Wait until the job is actually occupying a worker slot (the delay
	// fault holds it there for 2s), so SIGTERM lands mid-job.
	running := false
	for deadline := time.Now().Add(jobDelay); time.Now().Before(deadline); {
		resp, err := http.Get(base + "/v1/jobs/" + jr.ID)
		if err != nil {
			return err
		}
		pdata, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var poll mlpart.JobResponse
		if err := json.Unmarshal(pdata, &poll); err != nil {
			return fmt.Errorf("poll decode: %v\n%s", err, pdata)
		}
		if poll.State == mlpart.JobStateRunning {
			running = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !running {
		return fmt.Errorf("job %s never reached running before the delay elapsed", jr.ID)
	}

	sigAt := time.Now()
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("job daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(20 * time.Second):
		return fmt.Errorf("job daemon did not drain within 20s of SIGTERM")
	}
	waited := time.Since(sigAt)
	if waited < jobDelay/4 {
		return fmt.Errorf("daemon exited %s after SIGTERM — too fast to have waited for the %s job", waited, jobDelay)
	}
	if !strings.Contains(logBuf.String(), "jobs drained") {
		return fmt.Errorf("daemon log missing %q — drain did not wait on job workers:\n%s", "jobs drained", logBuf.String())
	}
	fmt.Printf("drain waited %s for the running job before exit (jobs drained logged)\n", waited.Round(10*time.Millisecond))
	return nil
}

// sessionsSurviveKill is the crash-recovery drill for resident graph
// sessions: create a durable session, stream delta batches, force a full
// repartition, then SIGKILL the daemon — no drain, no snapshot flush —
// and restart it on the same -state-dir. The recovered session must
// report the same sequence number and edge-cut, and its partition vector
// must be byte-identical: recovery replays the delta log and re-runs
// each repair at its recorded tier with the session seed, so any
// divergence is a determinism bug, not noise.
func sessionsSurviveKill(mlserved string, g *mlpart.Graph) error {
	stateDir, err := os.MkdirTemp("", "mlsmoke-state")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stateDir)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := l.Addr().String()
	l.Close()
	base := "http://" + addr

	startDaemon := func() (*exec.Cmd, error) {
		d := exec.Command(mlserved, "-addr", addr, "-workers", "2", "-state-dir", stateDir)
		d.Stderr = os.Stderr
		if err := d.Start(); err != nil {
			return nil, err
		}
		return d, nil
	}
	rc := &service.RetryClient{
		MaxAttempts: 40,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    400 * time.Millisecond,
	}
	sdk := &service.Client{Base: base, HTTP: rc}
	ctx := context.Background()

	daemon, err := startDaemon()
	if err != nil {
		return err
	}
	defer daemon.Process.Kill()

	st, err := sdk.CreateSession(ctx, &mlpart.SessionCreateRequest{
		Graph: *mlpart.NewWireGraph(g), K: 4, Seed: 11,
	})
	if err != nil {
		return fmt.Errorf("CreateSession: %v", err)
	}
	// Stream a few delta batches: edge weight bumps on existing edges
	// plus vertex reweights, enough to leave real WAL records behind.
	n := st.Vertices
	for batch := 0; batch < 4; batch++ {
		ops := []mlpart.DeltaOp{
			{Op: mlpart.DeltaOpVwgt, U: (batch * 13) % n, W: 2 + batch},
			{Op: mlpart.DeltaOpVwgt, U: (batch*13 + 7) % n, W: 1 + batch},
		}
		if _, err := sdk.ApplyDeltas(ctx, st.ID, ops); err != nil {
			return fmt.Errorf("ApplyDeltas %d: %v", batch, err)
		}
	}
	if _, err := sdk.RepairSession(ctx, st.ID, "full"); err != nil {
		return fmt.Errorf("RepairSession: %v", err)
	}
	want, err := sdk.GetSession(ctx, st.ID, true)
	if err != nil {
		return fmt.Errorf("GetSession pre-kill: %v", err)
	}

	// SIGKILL: no drain handler runs, no final snapshot is written. The
	// delta log is all the second daemon gets.
	if err := daemon.Process.Kill(); err != nil {
		return err
	}
	daemon.Wait()

	daemon2, err := startDaemon()
	if err != nil {
		return err
	}
	defer daemon2.Process.Kill()
	got, err := sdk.GetSession(ctx, st.ID, true)
	if err != nil {
		return fmt.Errorf("GetSession post-restart: %v", err)
	}
	if !got.Recovered {
		return fmt.Errorf("recovered session not flagged recovered: %+v", got)
	}
	if got.Degraded {
		return fmt.Errorf("recovery degraded — the replayed cuts did not verify")
	}
	if got.Seq != want.Seq || got.EdgeCut != want.EdgeCut {
		return fmt.Errorf("recovery mismatch: seq %d/cut %d, want seq %d/cut %d",
			got.Seq, got.EdgeCut, want.Seq, want.EdgeCut)
	}
	if len(got.Where) != len(want.Where) {
		return fmt.Errorf("recovered partition has %d entries, want %d", len(got.Where), len(want.Where))
	}
	for i := range want.Where {
		if got.Where[i] != want.Where[i] {
			return fmt.Errorf("recovered partition diverges at vertex %d: %d != %d — recovery is not byte-identical",
				i, got.Where[i], want.Where[i])
		}
	}
	fmt.Printf("session kill-and-recover: %d vertices, seq %d, cut %d byte-identical after SIGKILL\n",
		got.Vertices, got.Seq, got.EdgeCut)

	// Clean shutdown of the recovery daemon.
	if err := daemon2.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- daemon2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("recovery daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(20 * time.Second):
		return fmt.Errorf("recovery daemon did not drain within 20s of SIGTERM")
	}
	return nil
}
