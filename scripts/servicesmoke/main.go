// Command servicesmoke is the CI smoke test for the mlserved daemon. It
// builds the real binaries, starts mlserved on a free port, POSTs a
// generated workload to /v1/partition, diffs the edge-cut against the
// mlpart CLI on the same input (both paths are deterministic for a fixed
// seed, so they must agree exactly), verifies /healthz, /varz and a
// byte-identical cache hit, re-POSTs the graph as binary CSR
// (application/x-mlpart-csr) and requires a cache hit shared with the
// JSON requests, then sends SIGTERM and requires the drain
// choreography: /readyz flips to 503 while /healthz stays 200 for the
// -ready-grace window, then the daemon exits 0. It exits non-zero with a
// diagnostic on any mismatch.
//
// All traffic goes through service.RetryClient, so the startup wait and
// the POSTs double as an exercise of the backoff path.
//
// Run it from the repository root:
//
//	go run ./scripts/servicesmoke
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"mlpart"
	"mlpart/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servicesmoke:", err)
		os.Exit(1)
	}
	fmt.Println("service smoke OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "mlsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	mlserved := filepath.Join(tmp, "mlserved")
	mlpartBin := filepath.Join(tmp, "mlpart")
	for bin, pkg := range map[string]string{mlserved: "./cmd/mlserved", mlpartBin: "./cmd/mlpart"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("build %s: %v", pkg, err)
		}
	}

	// One workload, two routes: the daemon gets it as CSR JSON, the CLI
	// as a METIS graph file.
	const (
		workload = "4ELT"
		scale    = 0.05
		k        = 8
		seed     = 7
	)
	g, err := mlpart.GenerateWorkload(workload, scale)
	if err != nil {
		return err
	}
	graphFile := filepath.Join(tmp, "g.graph")
	gf, err := os.Create(graphFile)
	if err != nil {
		return err
	}
	if err := mlpart.WriteGraph(gf, g); err != nil {
		return err
	}
	if err := gf.Close(); err != nil {
		return err
	}
	reqBody, err := json.Marshal(mlpart.PartitionRequest{
		Graph:   *mlpart.NewWireGraph(g),
		K:       k,
		Options: &mlpart.Options{Seed: seed},
	})
	if err != nil {
		return err
	}

	// A free port from the kernel; the tiny close-to-bind race is
	// acceptable for a smoke test.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := l.Addr().String()
	l.Close()

	const readyGrace = 2 * time.Second
	daemon := exec.Command(mlserved, "-addr", addr, "-workers", "2", "-drain", "10s",
		"-ready-grace", readyGrace.String())
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return err
	}
	defer daemon.Process.Kill()
	base := "http://" + addr

	// All traffic through the retry client: the startup wait is just
	// retried transport errors until the listener is up, and any 429 shed
	// by the admission queue backs off instead of failing the smoke.
	rc := &service.RetryClient{
		MaxAttempts: 40,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    400 * time.Millisecond,
	}
	resp, err := rc.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("daemon never became healthy: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("daemon never became healthy: /healthz status %d", resp.StatusCode)
	}

	post := func() (*http.Response, []byte, error) {
		resp, err := rc.Post(base+"/v1/partition", "application/json", reqBody)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		return resp, data, err
	}
	resp, body, err := post()
	if err != nil {
		return fmt.Errorf("POST /v1/partition: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/partition: status %d: %s", resp.StatusCode, body)
	}
	var served mlpart.PartitionResponse
	if err := json.Unmarshal(body, &served); err != nil {
		return fmt.Errorf("decode daemon response: %v", err)
	}

	// The CLI on the same input must agree on the cut exactly.
	out, err := exec.Command(mlpartBin, "-json", "-k", fmt.Sprint(k), "-seed", fmt.Sprint(seed), graphFile).Output()
	if err != nil {
		return fmt.Errorf("mlpart CLI: %v", err)
	}
	var cli mlpart.PartitionResponse
	if err := json.Unmarshal(out, &cli); err != nil {
		return fmt.Errorf("decode CLI response: %v\n%s", err, out)
	}
	if served.EdgeCut != cli.EdgeCut {
		return fmt.Errorf("edge-cut disagreement: daemon %d vs CLI %d", served.EdgeCut, cli.EdgeCut)
	}
	fmt.Printf("edge-cut agreement: daemon %d == CLI %d (n=%d, k=%d)\n",
		served.EdgeCut, cli.EdgeCut, served.Vertices, k)

	// A second identical POST must hit the cache byte-for-byte.
	resp2, body2, err := post()
	if err != nil {
		return err
	}
	if resp2.Header.Get("X-Cache") != "hit" {
		return fmt.Errorf("second POST X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body, body2) {
		return fmt.Errorf("cache hit body differs from cold body")
	}

	// The same graph as binary CSR (docs/WIRE.md) with the options in the
	// query string must land on the SAME cache entry the JSON requests
	// populated — the cache is keyed by graph fingerprint, not request
	// bytes — and return the identical body.
	var binBody bytes.Buffer
	if err := mlpart.WriteBinaryGraph(&binBody, g); err != nil {
		return err
	}
	bresp, err := rc.Post(fmt.Sprintf("%s/v1/partition?k=%d&seed=%d", base, k, seed),
		mlpart.ContentTypeBinaryCSR, binBody.Bytes())
	if err != nil {
		return fmt.Errorf("binary POST /v1/partition: %v", err)
	}
	bbody, err := io.ReadAll(bresp.Body)
	bresp.Body.Close()
	if err != nil {
		return err
	}
	if bresp.StatusCode != http.StatusOK {
		return fmt.Errorf("binary POST /v1/partition: status %d: %s", bresp.StatusCode, bbody)
	}
	if bresp.Header.Get("X-Cache") != "hit" {
		return fmt.Errorf("binary POST X-Cache = %q, want hit (JSON and binary clients must share entries)",
			bresp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body, bbody) {
		return fmt.Errorf("binary-encoded request body differs from the JSON one")
	}
	fmt.Printf("binary CSR POST: %d bytes (JSON body %d), cache shared across encodings\n",
		binBody.Len(), len(reqBody))

	// /varz must be valid JSON reflecting the traffic.
	vresp, err := http.Get(base + "/varz")
	if err != nil {
		return err
	}
	vdata, _ := io.ReadAll(vresp.Body)
	vresp.Body.Close()
	var v struct {
		Admitted int64 `json:"admitted"`
		Cache    struct {
			Hits int64 `json:"hits"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(vdata, &v); err != nil {
		return fmt.Errorf("/varz decode: %v\n%s", err, vdata)
	}
	if v.Admitted < 2 || v.Cache.Hits < 1 {
		return fmt.Errorf("/varz counters implausible: %s", vdata)
	}

	// Graceful shutdown choreography: after SIGTERM the daemon must flip
	// /readyz to 503 (traffic should move elsewhere) while /healthz stays
	// 200 (the process is alive, don't restart it), hold the listener open
	// for -ready-grace, then drain and exit 0. The probes below use the
	// plain http client: a 503 here is the expected answer, not something
	// to retry.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	probe := func(path string) (int, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	var readyCode int
	deadline := time.Now().Add(readyGrace)
	for time.Now().Before(deadline) {
		readyCode, err = probe("/readyz")
		if err != nil {
			return fmt.Errorf("/readyz during drain window: %v", err)
		}
		if readyCode == http.StatusServiceUnavailable {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if readyCode != http.StatusServiceUnavailable {
		return fmt.Errorf("/readyz = %d during drain window, want 503", readyCode)
	}
	liveCode, err := probe("/healthz")
	if err != nil {
		return fmt.Errorf("/healthz during drain window: %v", err)
	}
	if liveCode != http.StatusOK {
		return fmt.Errorf("/healthz = %d during drain window, want 200 (liveness must outlive readiness)", liveCode)
	}
	fmt.Printf("drain window: /readyz 503, /healthz 200\n")

	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15*time.Second + readyGrace):
		return fmt.Errorf("daemon did not drain within %s of SIGTERM", 15*time.Second+readyGrace)
	}
	return nil
}
