package mlpart_test

import (
	"encoding/json"
	"strings"
	"testing"

	"mlpart"
)

// TestEffectiveCoarsening pins the canonicalization rules: the deprecated
// matching alias and the structured block resolve to one canonical scheme
// name, disagreement and misapplied GCLP knobs are errors.
func TestEffectiveCoarsening(t *testing.T) {
	cases := []struct {
		name       string
		opts       mlpart.Options
		wantScheme string
		wantErr    string
	}{
		{name: "zero value defaults to HEM",
			opts: mlpart.Options{}, wantScheme: mlpart.MatchHEM},
		{name: "matching alias",
			opts:       mlpart.Options{Matching: "hcm"},
			wantScheme: mlpart.MatchHCM},
		{name: "structured scheme",
			opts:       mlpart.Options{Coarsening: &mlpart.CoarseningOptions{Scheme: "Gclp"}},
			wantScheme: mlpart.MatchGCLP},
		{name: "both set and agreeing",
			opts: mlpart.Options{
				Matching:   "hem",
				Coarsening: &mlpart.CoarseningOptions{Scheme: "HEM"},
			},
			wantScheme: mlpart.MatchHEM},
		{name: "both set and disagreeing",
			opts: mlpart.Options{
				Matching:   mlpart.MatchHEM,
				Coarsening: &mlpart.CoarseningOptions{Scheme: mlpart.MatchRM},
			},
			wantErr: "disagree"},
		{name: "unknown scheme",
			opts:    mlpart.Options{Coarsening: &mlpart.CoarseningOptions{Scheme: "GCL"}},
			wantErr: "unknown"},
		{name: "GCLP knobs allowed under GCLP",
			opts: mlpart.Options{Coarsening: &mlpart.CoarseningOptions{
				Scheme: "gclp", MaxClusterWeight: 64, LPRounds: 4,
			}},
			wantScheme: mlpart.MatchGCLP},
		{name: "GCLP knobs rejected under matching scheme",
			opts: mlpart.Options{Coarsening: &mlpart.CoarseningOptions{
				Scheme: mlpart.MatchHEM, MaxClusterWeight: 64,
			}},
			wantErr: "apply only to GCLP"},
		{name: "negative cluster weight",
			opts: mlpart.Options{Coarsening: &mlpart.CoarseningOptions{
				Scheme: "GCLP", MaxClusterWeight: -1,
			}},
			wantErr: "max_cluster_weight"},
		{name: "negative rounds",
			opts: mlpart.Options{Coarsening: &mlpart.CoarseningOptions{
				Scheme: "GCLP", LPRounds: -2,
			}},
			wantErr: "lp_rounds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			co, err := tc.opts.EffectiveCoarsening()
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				// Validate must surface the same failure.
				if verr := tc.opts.Validate(); verr == nil {
					t.Error("Validate() = nil for invalid coarsening config")
				}
				return
			}
			if err != nil {
				t.Fatalf("EffectiveCoarsening: %v", err)
			}
			if co.Scheme != tc.wantScheme {
				t.Errorf("scheme = %q, want %q", co.Scheme, tc.wantScheme)
			}
			if verr := tc.opts.Validate(); verr != nil {
				t.Errorf("Validate: %v", verr)
			}
		})
	}
}

// TestCoarseningSchemesRegistry checks the exported registry covers both
// families and matches the Match* constants.
func TestCoarseningSchemesRegistry(t *testing.T) {
	schemes := mlpart.CoarseningSchemes()
	if len(schemes) != 5 {
		t.Fatalf("got %d schemes, want 5", len(schemes))
	}
	families := map[string]string{}
	for _, s := range schemes {
		if s.Description == "" {
			t.Errorf("%s: empty description", s.Name)
		}
		families[s.Name] = s.Family
	}
	for _, name := range []string{mlpart.MatchRM, mlpart.MatchHEM, mlpart.MatchLEM, mlpart.MatchHCM} {
		if families[name] != mlpart.FamilyMatching {
			t.Errorf("%s family = %q, want %q", name, families[name], mlpart.FamilyMatching)
		}
	}
	if families[mlpart.MatchGCLP] != mlpart.FamilyAggregation {
		t.Errorf("GCLP family = %q, want %q", families[mlpart.MatchGCLP], mlpart.FamilyAggregation)
	}
}

// TestCapabilitiesResponseWire checks the capabilities document round-trips
// JSON with the expected kind, schema version and registry-backed lists.
func TestCapabilitiesResponseWire(t *testing.T) {
	cr := mlpart.NewCapabilitiesResponse()
	if cr.Kind != mlpart.WireKindCapabilities || cr.SchemaVersion != mlpart.SchemaVersion {
		t.Fatalf("kind/version: %q/%d", cr.Kind, cr.SchemaVersion)
	}
	data, err := json.Marshal(cr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"kind":"capabilities"`, `"coarsening_schemes"`, `"family":"aggregation"`,
		`"init_methods"`, `"refinements"`, `"presets"`, `"orderings"`,
		`"workloads"`, `"fault_sites"`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("marshaled capabilities missing %s", want)
		}
	}
	var back mlpart.CapabilitiesResponse
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.CoarseningSchemes) != len(mlpart.CoarseningSchemes()) {
		t.Errorf("round-trip lost schemes: %d", len(back.CoarseningSchemes))
	}
}

// TestCoarseningWireRoundTrip checks CoarseningOptions crosses the wire
// and that the deprecated matching field still marshals independently.
func TestCoarseningWireRoundTrip(t *testing.T) {
	o := &mlpart.Options{
		Seed: 9,
		Coarsening: &mlpart.CoarseningOptions{
			Scheme: "GCLP", MaxClusterWeight: 32, LPRounds: 5,
		},
	}
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"coarsening":{"scheme":"GCLP","max_cluster_weight":32,"lp_rounds":5}`) {
		t.Errorf("unexpected encoding: %s", data)
	}
	var back mlpart.Options
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Coarsening == nil || *back.Coarsening != *o.Coarsening {
		t.Errorf("round-trip: %+v", back.Coarsening)
	}
}
