// Package mlpart is a from-scratch Go implementation of the multilevel
// graph partitioning schemes of Karypis & Kumar, "Multilevel Graph
// Partitioning Schemes" (ICPP 1995) — the algorithms that became METIS.
//
// The package partitions the vertices of a weighted undirected graph into k
// parts of roughly equal weight while minimizing the weight of edges that
// cross parts, and computes fill-reducing orderings of symmetric sparse
// matrices by multilevel nested dissection. The multilevel scheme works in
// three phases:
//
//  1. Coarsening: the graph is repeatedly shrunk by collapsing the pairs of
//     a maximal matching (heavy-edge matching by default) into multinodes.
//  2. Initial partitioning: the few-hundred-vertex coarsest graph is split
//     by greedy graph growing (GGGP by default).
//  3. Uncoarsening: the partition is projected back level by level and
//     refined with boundary Kernighan-Lin variants (BKLGR by default).
//
// Every phase algorithm evaluated in the paper is available through
// Options, as are the paper's baselines (multilevel spectral bisection,
// Chaco-ML, multiple minimum degree) via the experiment harness in
// cmd/mlbench.
//
// Quick start:
//
//	g, _ := mlpart.NewGraphFromCSR(xadj, adjncy, nil, nil)
//	res, _ := mlpart.Partition(g, 8, nil)
//	fmt.Println(res.EdgeCut, res.PartWeights)
package mlpart

import (
	"context"
	"fmt"
	"io"
	"time"

	"mlpart/internal/coarsen"
	"mlpart/internal/faults"
	"mlpart/internal/graph"
	"mlpart/internal/initpart"
	"mlpart/internal/matgen"
	"mlpart/internal/metrics"
	"mlpart/internal/mmd"
	"mlpart/internal/multilevel"
	"mlpart/internal/ordering"
	"mlpart/internal/refine"
	"mlpart/internal/sparse"
	"mlpart/internal/trace"
)

// Graph is a weighted undirected graph in CSR form; see NewGraphFromCSR
// and NewGraphBuilder for construction.
type Graph = graph.Graph

// GraphBuilder accumulates edges and produces a validated Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph with n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// NewGraphFromCSR wraps CSR arrays (xadj of length n+1, adjncy/adjwgt of
// length xadj[n], vwgt of length n) in a validated Graph. vwgt and adjwgt
// may be nil for unit weights.
func NewGraphFromCSR(xadj, adjncy, adjwgt, vwgt []int) (*Graph, error) {
	return graph.FromCSR(xadj, adjncy, adjwgt, vwgt)
}

// ReadGraph decodes a graph in METIS graph-file format.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// WriteGraph encodes a graph in METIS graph-file format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// ReadMatrixMarket decodes the adjacency structure of a square sparse
// matrix in MatrixMarket coordinate format (the SuiteSparse collection's
// format); see the package-level documentation of internal/graph for the
// symmetrization and weight-rounding rules.
func ReadMatrixMarket(r io.Reader) (*Graph, error) { return graph.ReadMatrixMarket(r) }

// WriteMatrixMarket encodes g as a symmetric integer MatrixMarket file.
func WriteMatrixMarket(w io.Writer, g *Graph) error { return graph.WriteMatrixMarket(w, g) }

// WriteDOT encodes g in Graphviz DOT format; when where is non-nil,
// vertices are colored by part and cut edges drawn dashed. For small
// graphs and documentation.
func WriteDOT(w io.Writer, g *Graph, where []int) error { return graph.WriteDOT(w, g, where) }

// WriteBinaryGraph encodes g in the binary CSR wire format ("csrb"): the
// zero-copy ingest format shared by `.csrb` files, graphgen output and the
// daemon's Content-Type: application/x-mlpart-csr request bodies. The
// byte-level layout is documented in docs/WIRE.md.
func WriteBinaryGraph(w io.Writer, g *Graph) error { return graph.EncodeBinary(w, g) }

// WriteBinaryGraphPart is WriteBinaryGraph with an optional partition
// vector (length n, nil to omit) appended as an extra section; the
// repartition endpoint reads its incumbent partition from it.
func WriteBinaryGraphPart(w io.Writer, g *Graph, part []int) error {
	return graph.EncodeBinaryPart(w, g, part)
}

// DecodeBinaryGraph decodes a binary CSR payload. When the encoded word
// width matches the host the returned Graph aliases data without copying;
// the caller must keep data alive and unmodified for the Graph's lifetime.
// Validation is a single fused pass over the sections.
func DecodeBinaryGraph(data []byte) (*Graph, error) { return graph.DecodeBinary(data) }

// DecodeBinaryGraphPart is DecodeBinaryGraph plus the optional partition
// section; part is nil when the payload carries none.
func DecodeBinaryGraphPart(data []byte) (*Graph, []int, error) {
	return graph.DecodeBinaryPart(data)
}

// OpenBinaryGraph memory-maps (copy-on-write; falls back to a plain read
// where mmap is unavailable) a `.csrb` file and decodes it zero-copy. The
// returned closer releases the mapping and must outlive every use of the
// Graph.
func OpenBinaryGraph(path string) (*Graph, io.Closer, error) { return graph.OpenBinaryFile(path) }

// GenerateWorkload builds one of the named synthetic workloads standing in
// for the paper's Table 1 matrices (see internal/matgen); scale 1.0 gives
// laptop-sized graphs, smaller values shrink them. WorkloadNames lists the
// valid names.
func GenerateWorkload(name string, scale float64) (*Graph, error) {
	w, err := matgen.Generate(name, scale)
	if err != nil {
		return nil, err
	}
	return w.Graph, nil
}

// WorkloadNames lists the names accepted by GenerateWorkload.
func WorkloadNames() []string { return matgen.AllNames() }

// Coarsening scheme names accepted by CoarseningOptions.Scheme (and the
// deprecated Options.Matching alias). RM/HEM/LEM/HCM are the paper's
// pairwise matchings; GCLP is the aggregation-family extension. Names are
// case-insensitive on every input surface; these consts are the canonical
// spellings.
const (
	MatchRM   = "RM"   // random matching
	MatchHEM  = "HEM"  // heavy-edge matching (default; the paper's choice)
	MatchLEM  = "LEM"  // light-edge matching
	MatchHCM  = "HCM"  // heavy-clique matching
	MatchGCLP = "GCLP" // size-constrained label-propagation clustering
)

// Coarsening scheme families reported by CoarseningScheme.Family.
const (
	// FamilyMatching marks the pairwise matchings (RM, HEM, LEM, HCM):
	// each coarsening level at best halves the vertex count.
	FamilyMatching = coarsen.FamilyMatching
	// FamilyAggregation marks cluster coarseners (GCLP): a level can shrink
	// the graph by an arbitrary factor bounded by the cluster weight cap,
	// which is what keeps power-law graphs coarsening where matchings stall.
	FamilyAggregation = coarsen.FamilyAggregation
)

// CoarseningScheme describes one coarsening scheme: canonical name, a
// one-line description and its family (FamilyMatching or
// FamilyAggregation). It is coarsen.SchemeInfo re-exported.
type CoarseningScheme = coarsen.SchemeInfo

// CoarseningSchemes lists every supported coarsening scheme. CLI help, the
// mlbench tables and the daemon's /v1/capabilities endpoint all render this
// registry, so SDK users can discover schemes instead of hardcoding names.
func CoarseningSchemes() []CoarseningScheme { return coarsen.AllSchemes() }

// Initial-partitioning method names accepted by Options.InitPart.
const (
	InitGGGP = "GGGP" // greedy graph growing (default; the paper's choice)
	InitGGP  = "GGP"  // BFS graph growing
	InitSBP  = "SBP"  // spectral bisection of the coarsest graph
)

// Ordering scheme names accepted by Options.Ordering.
const (
	// OrderingNone leaves the vertex labeling untouched (default).
	OrderingNone = graph.OrderNone
	// OrderingDegree relabels by nondecreasing degree before partitioning.
	OrderingDegree = graph.OrderDegree
	// OrderingBFSBlock relabels in per-component BFS visitation order
	// before partitioning.
	OrderingBFSBlock = graph.OrderBFSBlock
)

// Quality preset names accepted by Options.Preset. Fast is one multilevel
// cycle (the historical behavior and the default); eco and strong run
// extra V-cycles, each coarsening the graph *respecting* the current
// partition, skipping initial partitioning, and refining the seeded
// partition with the boundary k-way engine on the way back up. Extra
// cycles trade latency for edge-cut roughly linearly and stay
// bit-identical across RefineWorkers counts.
const (
	PresetFast   = "fast"   // 1 cycle (default)
	PresetEco    = "eco"    // 2 cycles: one partition-seeded extra V-cycle
	PresetStrong = "strong" // 4 cycles, best-of-N with derived per-cycle seeds
)

// Refinement policy names accepted by Options.Refinement.
const (
	RefineNone  = "NONE"  // no refinement (projection only)
	RefineGR    = "GR"    // greedy (one KL pass)
	RefineKLR   = "KLR"   // Kernighan-Lin to convergence
	RefineBGR   = "BGR"   // boundary greedy
	RefineBKLR  = "BKLR"  // boundary Kernighan-Lin
	RefineBKLGR = "BKLGR" // hybrid (default; the paper's choice)
	RefineBKWAY = "BKWAY" // boundary k-way engine on the direct k-way path
)

// CoarseningOptions selects the coarsening scheme and its per-scheme knobs
// — the structured replacement for the deprecated stringly-typed
// Options.Matching. The zero value means MatchHEM with default knobs.
type CoarseningOptions struct {
	// Scheme is the coarsening scheme: MatchRM, MatchHEM, MatchLEM,
	// MatchHCM or MatchGCLP (case-insensitive). Empty means MatchHEM.
	Scheme string `json:"scheme,omitempty"`
	// MaxClusterWeight caps one GCLP cluster's total vertex weight. 0
	// derives the cap from the graph — total vertex weight divided by
	// CoarsenTo — which guarantees the coarsest graph keeps roughly
	// CoarsenTo vertices however aggressively clusters grow. Only
	// meaningful for MatchGCLP; rejected as nonzero for other schemes so a
	// typo'd configuration fails loudly instead of silently doing nothing.
	MaxClusterWeight int `json:"max_cluster_weight,omitempty"`
	// LPRounds bounds GCLP's label-propagation rounds per level (0 means
	// 8; propagation also stops early once no vertex moves). Only
	// meaningful for MatchGCLP, like MaxClusterWeight.
	LPRounds int `json:"lp_rounds,omitempty"`
}

// Options configures partitioning and ordering. The zero value (and a nil
// *Options) is the configuration the paper recommends: HEM coarsening to
// 100 vertices, GGGP initial partitioning with 5 trials, BKLGR refinement,
// 5% imbalance tolerance, seed 0.
//
// Options is part of the wire schema shared by `mlpart -json` and the
// mlserved HTTP daemon (see wire.go and docs/SERVICE.md): every field
// except Tracer round-trips through JSON under the tags below.
type Options struct {
	// Matching is the coarsening scheme: MatchRM, MatchHEM, MatchLEM,
	// MatchHCM or MatchGCLP. Empty means MatchHEM.
	//
	// Deprecated: use Coarsening, which also carries the per-scheme knobs.
	// Matching remains a permanent wire alias (docs/SERVICE.md documents
	// the deprecation policy): it canonicalizes into the same effective
	// configuration, produces identical service cache keys, and when both
	// fields are set they must agree. New code should set Coarsening only.
	Matching string `json:"matching,omitempty"`
	// Coarsening selects the coarsening scheme and its knobs. Nil defers to
	// the deprecated Matching field, or MatchHEM when that is empty too.
	Coarsening *CoarseningOptions `json:"coarsening,omitempty"`
	// InitPart is the coarsest-graph partitioner: InitGGGP, InitGGP or
	// InitSBP. Empty means InitGGGP.
	InitPart string `json:"init_part,omitempty"`
	// Refinement is the uncoarsening policy: RefineNone, RefineGR,
	// RefineKLR, RefineBGR, RefineBKLR, RefineBKLGR or RefineBKWAY. Empty
	// means RefineBKLGR. RefineBKWAY selects the boundary k-way engine on
	// the direct k-way path (PartitionDirectKWay and the KWayRefine
	// post-pass) and behaves like RefineBKLGR during recursive bisection.
	Refinement string `json:"refinement,omitempty"`
	// CoarsenTo is the coarsest-graph size (0 means 100).
	CoarsenTo int `json:"coarsen_to,omitempty"`
	// Ubfactor is the allowed imbalance: each part may weigh up to
	// Ubfactor times its target (0 means 1.05).
	Ubfactor float64 `json:"ubfactor,omitempty"`
	// Seed drives all randomized choices; equal seeds give identical
	// results.
	Seed int64 `json:"seed,omitempty"`
	// Parallel runs independent subproblems of recursive bisection and
	// nested dissection on separate goroutines, and the NCuts trials of
	// each bisection concurrently; results are unchanged.
	Parallel bool `json:"parallel,omitempty"`
	// ParallelDepth bounds how many recursion levels fan out onto new
	// goroutines when Parallel is set (0 means 4, i.e. at most 16
	// concurrent branches). Deeper subproblems run sequentially.
	ParallelDepth int `json:"parallel_depth,omitempty"`
	// ParallelMinVertices is the smallest subgraph that still fans out
	// when Parallel is set (0 means 2000).
	ParallelMinVertices int `json:"parallel_min_vertices,omitempty"`
	// KWayRefine runs an extra direct k-way refinement pass over the
	// assembled partition after recursive bisection (never worsens the
	// edge-cut; costs one extra sweep over the graph per pass).
	KWayRefine bool `json:"kway_refine,omitempty"`
	// NCuts runs every bisection this many times with independent seeds
	// and keeps the best cut, trading time for quality; <=1 means once.
	NCuts int `json:"ncuts,omitempty"`
	// CoarsenWorkers > 1 computes matchings with the parallel handshake
	// algorithm on that many workers during coarsening; deterministic for
	// a fixed seed regardless of worker count, but the matching differs
	// from the sequential default.
	CoarsenWorkers int `json:"coarsen_workers,omitempty"`
	// RefineWorkers > 1 fans the propose phase of RefineBKWAY boundary
	// k-way refinement out over that many workers. Pure scheduling: the
	// partition is bit-identical for every worker count (proposals are
	// chunk-independent, commits serial). <= 1 refines serially.
	RefineWorkers int `json:"refine_workers,omitempty"`
	// Preset selects the quality/latency trade: PresetFast (or "") is one
	// multilevel cycle, PresetEco adds one partition-seeded extra V-cycle,
	// PresetStrong runs four cycles best-of-N. Applies to Partition and
	// PartitionDirectKWay; PartitionWeighted and NestedDissection ignore
	// it. A failed extra cycle degrades to the best completed partition
	// (see Partitioning.Degradations), never a hard error.
	Preset string `json:"preset,omitempty"`
	// Cycles, when > 0, overrides the preset's cycle count directly
	// (1 behaves like PresetFast). 0 defers to Preset.
	Cycles int `json:"cycles,omitempty"`
	// Ordering relabels the vertices at ingest for memory locality before
	// the multilevel engine runs: OrderingNone (or ""), OrderingDegree or
	// OrderingBFSBlock. The engine partitions the permuted graph and every
	// output (Where, perm, iperm) is inverse-mapped back to the caller's
	// original labeling, so only the traversal order — and therefore the
	// cut a seed-driven heuristic converges to — can differ, never the
	// meaning of the result.
	Ordering string `json:"ordering,omitempty"`
	// CompressGraph enables indistinguishable-vertex compression before
	// NestedDissection: groups of vertices with identical closed
	// neighborhoods (multiple degrees of freedom per mesh node) collapse
	// into weighted supervertices, shrinking every later phase. It has no
	// effect on Partition.
	CompressGraph bool `json:"compress_graph,omitempty"`
	// Tracer, when non-nil, receives typed per-level events while the
	// partitioner runs: hierarchy levels as they are built, the initial
	// cut, every refinement pass, every projection, and per-phase wall
	// time. Use a TraceCollector to gather events in memory or
	// NewJSONTracer to stream them as JSON lines. The tracer must be safe
	// for concurrent use when Parallel is set; results are bit-identical
	// with or without one. Tracer does not cross the wire; the daemon's
	// per-request ?trace=1 capture installs one server-side.
	Tracer Tracer `json:"-"`
	// FaultPlan is a deterministic fault-injection plan (see ParseFaultPlan
	// for the grammar) applied to this run's named sites; empty means the
	// MLPART_FAULTS environment plan (normally none). Like Tracer it does
	// not cross the wire: fault injection is an operator capability, not a
	// client one.
	FaultPlan string `json:"-"`
	// FaultInjector, when non-nil, takes precedence over FaultPlan. Sharing
	// one injector across runs shares its per-site hit counters, which is
	// how "fire on the Nth call" plans span multiple requests.
	FaultInjector *FaultInjector `json:"-"`
}

// FaultInjector fires deterministic faults (panics, errors, delays) at the
// partitioner's named sites; see ParseFaultPlan. It is faults.Injector
// re-exported. A nil injector is valid and costs one nil check per site.
type FaultInjector = faults.Injector

// ParseFaultPlan compiles a fault-injection plan: semicolon-separated
// directives, each `seed=N` or `site=kind[@trigger]` with kind one of
// `panic`, `error`, `delay:<duration>` and trigger `N` (the Nth hit, the
// default 1), `N+` (the Nth hit onward), `pF` (probability F per hit) or
// `*` (every hit). An empty plan returns a nil injector. Site names are
// listed by FaultSites.
func ParseFaultPlan(plan string) (*FaultInjector, error) { return faults.Parse(plan) }

// FaultSites lists the named injection sites, sorted.
func FaultSites() []string { return faults.Sites() }

// Degradation records one graceful-degradation fallback taken during a
// run; see Partitioning.Degradations. It is trace.Degradation re-exported.
type Degradation = trace.Degradation

// Tracer receives structured events from the partitioner; see
// Options.Tracer. It is trace.Tracer re-exported.
type Tracer = trace.Tracer

// TraceEvent is one structured observation from the partitioner (a level
// built, an initial cut, a refinement pass, a projection, or a phase
// timing); see its Kind field.
type TraceEvent = trace.Event

// TraceCollector is a Tracer that gathers events in memory, safe for
// concurrent use.
type TraceCollector = trace.Collector

// NewJSONTracer returns a Tracer that writes each event as one JSON line
// to w, safe for concurrent use.
func NewJSONTracer(w io.Writer) Tracer { return trace.NewJSONTracer(w) }

// EffectiveCoarsening canonicalizes the coarsening configuration: the
// structured Coarsening field, the deprecated Matching alias, or the
// default when neither is set. The result always carries the canonical
// upper-case scheme name, so two spellings of the same configuration
// compare equal — the service cache key is built from this value, which is
// how `matching` and `coarsening` requests share cache entries.
//
// Rules: a nil receiver or empty configuration means MatchHEM. When both
// Matching and Coarsening.Scheme are set they must agree (after
// normalization); disagreeing fields are an error, not a silent
// precedence. GCLP-only knobs (MaxClusterWeight, LPRounds) must be zero
// for the matching-family schemes and never negative.
func (o *Options) EffectiveCoarsening() (CoarseningOptions, error) {
	var eff CoarseningOptions
	name := ""
	if o != nil {
		name = o.Matching
		if o.Coarsening != nil {
			eff = *o.Coarsening
			if eff.Scheme != "" {
				name = eff.Scheme
			}
			if o.Matching != "" && o.Coarsening.Scheme != "" {
				ms, err := coarsen.ParseScheme(o.Matching)
				if err != nil {
					return eff, err
				}
				cs, err := coarsen.ParseScheme(o.Coarsening.Scheme)
				if err != nil {
					return eff, err
				}
				if ms != cs {
					return eff, fmt.Errorf("matching %q and coarsening.scheme %q disagree; set only coarsening", o.Matching, o.Coarsening.Scheme)
				}
			}
		}
	}
	if name == "" {
		name = MatchHEM
	}
	s, err := coarsen.ParseScheme(name)
	if err != nil {
		return eff, err
	}
	eff.Scheme = s.String()
	if eff.MaxClusterWeight < 0 {
		return eff, fmt.Errorf("coarsening.max_cluster_weight = %d, want >= 0", eff.MaxClusterWeight)
	}
	if eff.LPRounds < 0 {
		return eff, fmt.Errorf("coarsening.lp_rounds = %d, want >= 0", eff.LPRounds)
	}
	if s != coarsen.GCLP && (eff.MaxClusterWeight != 0 || eff.LPRounds != 0) {
		return eff, fmt.Errorf("coarsening knobs max_cluster_weight/lp_rounds apply only to %s, not %s", MatchGCLP, eff.Scheme)
	}
	return eff, nil
}

// toML converts public options to the internal configuration.
func (o *Options) toML() (multilevel.Options, error) {
	ml := multilevel.Options{}
	if o == nil {
		return ml, nil
	}
	ml.CoarsenTo = o.CoarsenTo
	ml.Ubfactor = o.Ubfactor
	ml.Seed = o.Seed
	ml.Parallel = o.Parallel
	ml.ParallelDepth = o.ParallelDepth
	ml.ParallelMinVertices = o.ParallelMinVertices
	ml.KWayRefine = o.KWayRefine
	ml.NCuts = o.NCuts
	ml.CoarsenWorkers = o.CoarsenWorkers
	ml.RefineWorkers = o.RefineWorkers
	ml.Tracer = o.Tracer
	if o.FaultInjector != nil {
		ml.Injector = o.FaultInjector
	} else if o.FaultPlan != "" {
		inj, err := faults.Parse(o.FaultPlan)
		if err != nil {
			return ml, err
		}
		ml.Injector = inj
	}
	co, err := o.EffectiveCoarsening()
	if err != nil {
		return ml, err
	}
	if o.Matching != "" || o.Coarsening != nil {
		s, err := coarsen.ParseScheme(co.Scheme)
		if err != nil {
			return ml, err
		}
		ml = ml.WithMatching(s)
		ml.MaxClusterWeight = co.MaxClusterWeight
		ml.LPRounds = co.LPRounds
	}
	if o.InitPart != "" {
		m, err := initpart.ParseMethod(o.InitPart)
		if err != nil {
			return ml, err
		}
		ml.InitMethod = m
	}
	if o.Refinement != "" {
		p, err := refine.ParsePolicy(o.Refinement)
		if err != nil {
			return ml, err
		}
		ml = ml.WithRefinement(p)
	}
	if o.Preset != "" {
		p, err := multilevel.ParsePreset(o.Preset)
		if err != nil {
			return ml, err
		}
		ml.Preset = p
	}
	ml.Cycles = o.Cycles
	return ml, nil
}

// EffectiveCycles resolves Preset and Cycles into the number of multilevel
// cycles a partition will run: an explicit Cycles wins, else fast=1,
// eco=2, strong=4. Option spellings with equal effective cycle counts
// produce identical partitions, which is why the service cache keys on
// this value rather than the raw preset string. Invalid options resolve
// to 1 (Validate reports them properly).
func (o *Options) EffectiveCycles() int {
	ml, err := o.toML()
	if err != nil {
		return 1
	}
	return ml.CycleCount()
}

// Validate reports whether the options are well-formed without running
// anything: unknown algorithm names, negative counts, imbalance factors
// below 1 and invalid FaultPlan strings are rejected with the same error
// the entry points would return. A nil receiver (the default
// configuration) is always valid. Servers should call it before accepting
// a request so a malformed configuration is a client error, never an
// internal one.
func (o *Options) Validate() error {
	if o == nil {
		return nil
	}
	ml, err := o.toML()
	if err != nil {
		return fmt.Errorf("mlpart: %w", err)
	}
	if err := ml.Validate(); err != nil {
		return fmt.Errorf("mlpart: %w", err)
	}
	if _, err := graph.ParseOrdering(o.Ordering); err != nil {
		return fmt.Errorf("mlpart: %w", err)
	}
	return nil
}

// Partitioning is the result of a k-way partition.
type Partitioning struct {
	// Where[v] is the part (0..k-1) assigned to vertex v.
	Where []int
	// EdgeCut is the total weight of edges whose endpoints lie in
	// different parts — the objective the paper minimizes.
	EdgeCut int
	// PartWeights[p] is the total vertex weight of part p.
	PartWeights []int
	// Cycles is the number of multilevel cycles that completed (1 under
	// the fast preset; see Options.Preset). A count below the preset's
	// target means cancellation or a degraded cycle stopped iteration at
	// the best completed partition.
	Cycles int
	// Degradations lists every graceful-degradation fallback the run took
	// (HCM matching stall -> HEM, SBP non-convergence -> GGGP, abandoned
	// refinement pass -> projected partition), in order. Empty on a clean
	// run; a non-empty list means the partition is valid and balanced but
	// may have a worse cut than a clean run would produce.
	Degradations []Degradation
}

// Balance returns k*max(PartWeights)/total; 1.0 is a perfect balance.
func (p *Partitioning) Balance() float64 {
	tot, maxw := 0, 0
	for _, w := range p.PartWeights {
		tot += w
		if w > maxw {
			maxw = w
		}
	}
	if tot == 0 {
		return 1
	}
	return float64(len(p.PartWeights)) * float64(maxw) / float64(tot)
}

// Partition divides g into k parts by recursive multilevel bisection,
// minimizing the edge-cut subject to the balance tolerance. opts may be
// nil for the paper's recommended configuration.
func Partition(g *Graph, k int, opts *Options) (*Partitioning, error) {
	return PartitionCtx(context.Background(), g, k, opts)
}

// PartitionCtx is Partition with cancellation: ctx is checked at every
// level boundary of each multilevel V-cycle and at every recursion step,
// and a wrapped ctx.Err() is returned once it fires. With a
// never-cancelled ctx the result is identical to Partition's.
func PartitionCtx(ctx context.Context, g *Graph, k int, opts *Options) (*Partitioning, error) {
	ml, err := optsOrDefault(opts)
	if err != nil {
		return nil, err
	}
	ml.Context = ctx
	gp, perm, err := applyOrdering(g, opts)
	if err != nil {
		return nil, err
	}
	res, err := multilevel.Partition(gp, k, ml)
	if err != nil {
		return nil, err
	}
	return &Partitioning{
		Where:        unpermuteWhere(res.Where, perm),
		EdgeCut:      res.EdgeCut,
		PartWeights:  res.PartWeights,
		Cycles:       res.Stats.Cycles,
		Degradations: res.Stats.Degradations,
	}, nil
}

// PartitionWeighted divides g into len(fractions) parts where part p
// receives approximately fractions[p] of the total vertex weight — for
// heterogeneous targets such as processors of different speeds. Fractions
// must be positive and are normalized internally.
func PartitionWeighted(g *Graph, fractions []float64, opts *Options) (*Partitioning, error) {
	return PartitionWeightedCtx(context.Background(), g, fractions, opts)
}

// PartitionWeightedCtx is PartitionWeighted with cancellation, mirroring
// PartitionCtx.
func PartitionWeightedCtx(ctx context.Context, g *Graph, fractions []float64, opts *Options) (*Partitioning, error) {
	ml, err := optsOrDefault(opts)
	if err != nil {
		return nil, err
	}
	ml.Context = ctx
	gp, perm, err := applyOrdering(g, opts)
	if err != nil {
		return nil, err
	}
	res, err := multilevel.PartitionWeighted(gp, fractions, ml)
	if err != nil {
		return nil, err
	}
	return &Partitioning{
		Where:        unpermuteWhere(res.Where, perm),
		EdgeCut:      res.EdgeCut,
		PartWeights:  res.PartWeights,
		Cycles:       res.Stats.Cycles,
		Degradations: res.Stats.Degradations,
	}, nil
}

// PartitionDirectKWay divides g into k parts with the direct multilevel
// k-way scheme: one coarsening pass, a k-way split of the coarsest graph,
// and k-way refinement at every uncoarsening level. It is substantially
// faster than Partition for large k at comparable quality (the follow-up
// direction of the paper's authors; provided as an extension).
func PartitionDirectKWay(g *Graph, k int, opts *Options) (*Partitioning, error) {
	return PartitionDirectKWayCtx(context.Background(), g, k, opts)
}

// PartitionDirectKWayCtx is PartitionDirectKWay with cancellation,
// mirroring PartitionCtx.
func PartitionDirectKWayCtx(ctx context.Context, g *Graph, k int, opts *Options) (*Partitioning, error) {
	ml, err := optsOrDefault(opts)
	if err != nil {
		return nil, err
	}
	ml.Context = ctx
	gp, perm, err := applyOrdering(g, opts)
	if err != nil {
		return nil, err
	}
	res, err := multilevel.PartitionKWay(gp, k, ml)
	if err != nil {
		return nil, err
	}
	return &Partitioning{
		Where:        unpermuteWhere(res.Where, perm),
		EdgeCut:      res.EdgeCut,
		PartWeights:  res.PartWeights,
		Cycles:       res.Stats.Cycles,
		Degradations: res.Stats.Degradations,
	}, nil
}

// Bisect splits g into two parts of equal target weight and returns the
// 2-way Partitioning.
func Bisect(g *Graph, opts *Options) (*Partitioning, error) {
	return BisectCtx(context.Background(), g, opts)
}

// BisectCtx is Bisect with cancellation, mirroring PartitionCtx. It is the
// k = 2 case of PartitionCtx — one engine path, one set of recovery and
// cancellation semantics — and produces the identical partition.
func BisectCtx(ctx context.Context, g *Graph, opts *Options) (*Partitioning, error) {
	return PartitionCtx(ctx, g, 2, opts)
}

// EdgeCut returns the edge-cut of an arbitrary partition vector of g; use
// it to evaluate externally produced partitions.
func EdgeCut(g *Graph, where []int) int { return refine.ComputeCut(g, where) }

// PartitionReport summarizes partition quality beyond the edge-cut:
// communication volume, boundary size, balance, part adjacency and
// per-part connectivity.
type PartitionReport = metrics.Report

// EvaluatePartition computes a PartitionReport for any partition vector
// with parts in 0..k-1, whether produced by this package or externally.
func EvaluatePartition(g *Graph, where []int, k int) (*PartitionReport, error) {
	return metrics.Evaluate(g, where, k)
}

// NestedDissection computes a fill-reducing ordering of the symmetric
// matrix whose adjacency structure is g, using multilevel nested dissection
// (MLND). It returns perm (perm[i] = the vertex eliminated i-th) and iperm
// (its inverse: iperm[v] = the position of v in the elimination order).
func NestedDissection(g *Graph, opts *Options) (perm, iperm []int, err error) {
	return NestedDissectionCtx(context.Background(), g, opts)
}

// NestedDissectionCtx is NestedDissection with cancellation: ctx is checked
// at every dissection step and V-cycle level boundary, and a wrapped
// ctx.Err() is returned once it fires. With a never-cancelled ctx the
// ordering is identical to NestedDissection's.
func NestedDissectionCtx(ctx context.Context, g *Graph, opts *Options) (perm, iperm []int, err error) {
	ml, err := optsOrDefault(opts)
	if err != nil {
		return nil, nil, err
	}
	// The dissection re-raises panics captured on its worker goroutines
	// (and a failed bisection escalates as a panic); recover here so
	// library callers always see an error, never a crash.
	defer func() {
		if r := recover(); r != nil {
			perm, iperm, err = nil, nil, fmt.Errorf("mlpart: %w", faults.AsPanic("mlpart/ordering", r))
		}
	}()
	gp, rperm, err := applyOrdering(g, opts)
	if err != nil {
		return nil, nil, err
	}
	o := ordering.Options{ML: ml, Seed: ml.Seed, Parallel: ml.Parallel}
	if opts != nil && opts.CompressGraph {
		perm, err = ordering.MLNDCompressedCtx(ctx, gp, o)
	} else {
		perm, err = ordering.MLNDCtx(ctx, gp, o)
	}
	if err != nil {
		return nil, nil, err
	}
	if rperm != nil {
		// perm is an elimination order in relabeled ids; translate each
		// entry back to the caller's labeling (inv[new] = old).
		inv := make([]int, len(rperm))
		for old, nw := range rperm {
			inv[nw] = old
		}
		for i, v := range perm {
			perm[i] = inv[v]
		}
	}
	return perm, sparse.InversePerm(perm), nil
}

// MinimumDegree computes a fill-reducing ordering with the multiple
// minimum degree algorithm (the serial baseline the paper compares MLND
// against). Returns perm and iperm as in NestedDissection.
func MinimumDegree(g *Graph) (perm, iperm []int) {
	perm = mmd.Order(g)
	return perm, sparse.InversePerm(perm)
}

// OrderingStats reports the symbolic Cholesky cost of factoring the matrix
// with adjacency structure g under a given elimination order.
type OrderingStats struct {
	// FactorNonzeros is nnz(L), counting the diagonal.
	FactorNonzeros int64 `json:"factor_nonzeros"`
	// OperationCount is the factorization flop count (sum of squared
	// column counts), the measure the paper's Figure 5 compares.
	OperationCount float64 `json:"operation_count"`
	// TreeHeight is the elimination tree height; lower means more
	// concurrency for parallel factorization.
	TreeHeight int `json:"tree_height"`
}

// AnalyzeOrdering symbolically factors g under perm and reports the cost.
func AnalyzeOrdering(g *Graph, perm []int) (*OrderingStats, error) {
	a, err := sparse.Analyze(g, perm)
	if err != nil {
		return nil, err
	}
	return &OrderingStats{
		FactorNonzeros: a.NnzL,
		OperationCount: a.Flops,
		TreeHeight:     a.Height,
	}, nil
}

// applyOrdering relabels g per opts.Ordering and returns the graph the
// engine should run on plus the permutation used (perm[old] = new; nil
// when no relabeling happened, in which case the returned graph is g
// itself). The relabel is recorded as a KindPhase "relabel" trace event
// carrying the scheme name and wall time.
func applyOrdering(g *Graph, opts *Options) (*Graph, []int, error) {
	if opts == nil || opts.Ordering == "" {
		return g, nil, nil
	}
	scheme, err := graph.ParseOrdering(opts.Ordering)
	if err != nil {
		return nil, nil, fmt.Errorf("mlpart: %w", err)
	}
	start := time.Now()
	perm, err := graph.RelabelPerm(g, scheme)
	if err != nil {
		return nil, nil, fmt.Errorf("mlpart: %w", err)
	}
	if perm == nil {
		return g, nil, nil
	}
	gp := graph.Permute(g, perm)
	if opts.Tracer != nil {
		opts.Tracer.Event(trace.Event{
			Kind:      trace.KindPhase,
			Phase:     "relabel",
			Algorithm: scheme,
			Vertices:  g.NumVertices(),
			Edges:     g.NumEdges(),
			ElapsedNS: time.Since(start).Nanoseconds(),
		})
	}
	return gp, perm, nil
}

// unpermuteWhere maps a partition vector computed on the relabeled graph
// back to the caller's labeling: where[old] = whereP[perm[old]]. A nil
// perm returns whereP unchanged.
func unpermuteWhere(whereP, perm []int) []int {
	if perm == nil {
		return whereP
	}
	where := make([]int, len(whereP))
	for old, nw := range perm {
		where[old] = whereP[nw]
	}
	return where
}

func optsOrDefault(opts *Options) (multilevel.Options, error) {
	if opts == nil {
		opts = &Options{}
	}
	ml, err := opts.toML()
	if err != nil {
		return ml, fmt.Errorf("mlpart: %w", err)
	}
	return ml, nil
}
