package mlpart

import (
	"fmt"
	"math"

	"mlpart/internal/kway"
)

// RepartitionOptions configures Repartition. Like Options it is part of
// the wire schema shared by the CLI and the mlserved daemon (wire.go).
type RepartitionOptions struct {
	// Ubfactor is the balance target per part (0 means 1.05). Values in
	// (0, 1) are rejected: a part can never weigh less than its target
	// times one.
	Ubfactor float64 `json:"ubfactor,omitempty"`
	// MigrationWeight trades cut quality against data movement: higher
	// values keep more vertices in their incumbent part (0 means 1.0).
	// Negative values are rejected.
	MigrationWeight float64 `json:"migration_weight,omitempty"`
	// Seed orders the rebalancing sweeps deterministically.
	Seed int64 `json:"seed,omitempty"`
}

// Validate rejects option values that would silently misbehave inside the
// rebalancing sweeps (an Ubfactor below 1 makes every part overweight; a
// negative MigrationWeight rewards churn). A nil receiver (the default
// configuration) is always valid; like (*Options).Validate it lets servers
// classify a malformed configuration as a client error up front.
func (o *RepartitionOptions) Validate() error {
	if o == nil {
		return nil
	}
	if math.IsNaN(o.Ubfactor) || math.IsInf(o.Ubfactor, 0) {
		return fmt.Errorf("mlpart: RepartitionOptions.Ubfactor = %v, want a finite value", o.Ubfactor)
	}
	if o.Ubfactor != 0 && o.Ubfactor < 1 {
		return fmt.Errorf("mlpart: RepartitionOptions.Ubfactor = %v, want >= 1 (or 0 for the default 1.05)", o.Ubfactor)
	}
	if math.IsNaN(o.MigrationWeight) || math.IsInf(o.MigrationWeight, 0) {
		return fmt.Errorf("mlpart: RepartitionOptions.MigrationWeight = %v, want a finite value", o.MigrationWeight)
	}
	if o.MigrationWeight < 0 {
		return fmt.Errorf("mlpart: RepartitionOptions.MigrationWeight = %v, want >= 0 (0 means the default 1.0)", o.MigrationWeight)
	}
	return nil
}

// RepartitionResult is the outcome of adapting a partition.
type RepartitionResult struct {
	// Where is the adapted partition vector.
	Where []int
	// EdgeCut is the adapted partition's cut.
	EdgeCut int
	// PartWeights are the adapted part weights under the graph's current
	// vertex weights.
	PartWeights []int
	// MigratedWeight is the total vertex weight assigned to a different
	// part than in the incumbent partition — the data that must move.
	MigratedWeight int
}

// Repartition adapts an existing k-way partition to the graph's *current*
// vertex weights — the dynamic load-balancing step of adaptive
// computations, where per-vertex work changes after an initial placement
// (e.g. adaptive mesh refinement). Unlike calling Partition from scratch,
// it minimizes the weight that migrates away from the incumbent placement
// oldWhere while restoring balance and keeping the cut low.
//
// oldWhere must assign every vertex a part in [0, k). It is not modified.
func Repartition(g *Graph, k int, oldWhere []int, opts *RepartitionOptions) (*RepartitionResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("mlpart: k = %d, want >= 1", k)
	}
	if len(oldWhere) != g.NumVertices() {
		return nil, fmt.Errorf("mlpart: len(oldWhere) = %d, want n = %d", len(oldWhere), g.NumVertices())
	}
	for v, p := range oldWhere {
		if p < 0 || p >= k {
			return nil, fmt.Errorf("mlpart: oldWhere[%d] = %d, want a part in [0,%d)", v, p, k)
		}
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts == nil {
		opts = &RepartitionOptions{}
	}
	where := append([]int(nil), oldWhere...)
	p := kway.NewPartition(g, k, where)
	kway.Rebalance(p, oldWhere, kway.RebalanceOptions{
		Ubfactor:        opts.Ubfactor,
		MigrationWeight: opts.MigrationWeight,
		Seed:            opts.Seed,
	})
	// Recover cut quality lost to the diffusion moves; greedy k-way
	// refinement respects the balance the rebalance just established.
	kway.Refine(p, kway.Options{Ubfactor: opts.Ubfactor, Seed: opts.Seed})
	migrated := 0
	for v, w := range p.Where {
		if w != oldWhere[v] {
			migrated += g.Vwgt[v]
		}
	}
	return &RepartitionResult{
		Where:          p.Where,
		EdgeCut:        p.Cut,
		PartWeights:    p.Pwgt,
		MigratedWeight: migrated,
	}, nil
}
