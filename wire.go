package mlpart

// This file is the single source of truth for the JSON wire schema shared
// by the `mlpart -json` CLI mode and the mlserved HTTP daemon
// (internal/service, cmd/mlserved): a client that can parse one can parse
// the other without remapping fields. Options and RepartitionOptions
// complete the schema; see their declarations for the option tags.

// SchemaVersion is the version of the /v1 wire schema. Every response
// object — results and errors, from the daemon and from `mlpart -json`
// alike — carries it in its "schema_version" field so clients can detect
// incompatible changes mechanically instead of by breakage. The version
// only increments on breaking changes (a removed or re-typed field);
// additive fields ship under the same version. docs/SERVICE.md states the
// full versioning and deprecation policy.
const SchemaVersion = 1

// Request body encodings accepted by the daemon's compute endpoints. A
// request with any other Content-Type is rejected with 415 Unsupported
// Media Type. Responses are always JSON.
const (
	// ContentTypeJSON is the default encoding: a JSON request object
	// (PartitionRequest, OrderRequest or RepartitionRequest). An absent
	// Content-Type means JSON.
	ContentTypeJSON = "application/json"
	// ContentTypeBinaryCSR is the zero-copy encoding: the body is a binary
	// CSR payload (WriteBinaryGraph / WriteBinaryGraphPart; layout in
	// docs/WIRE.md) and the non-graph request fields travel as URL query
	// parameters instead (see docs/SERVICE.md).
	ContentTypeBinaryCSR = "application/x-mlpart-csr"
)

// Wire kind discriminators: every response object carries one in its
// "kind" field, and the CLI -trace stream uses the trace event kinds
// alongside them.
const (
	// WireKindResult tags a PartitionResponse.
	WireKindResult = "result"
	// WireKindOrder tags an OrderResponse.
	WireKindOrder = "order_result"
	// WireKindRepartition tags a RepartitionResponse.
	WireKindRepartition = "repartition_result"
	// WireKindError tags an ErrorResponse.
	WireKindError = "error"
	// WireKindJob tags a JobResponse.
	WireKindJob = "job"
	// WireKindBatch tags a BatchResponse.
	WireKindBatch = "batch"
	// WireKindSession tags a SessionResponse.
	WireKindSession = "session"
	// WireKindSessionList tags a SessionListResponse.
	WireKindSessionList = "session_list"
	// WireKindCapabilities tags a CapabilitiesResponse.
	WireKindCapabilities = "capabilities"
)

// Job lifecycle states as they appear in JobResponse.State. A job is
// active while "queued" or "running"; "done", "failed" and "canceled"
// are terminal. See docs/SERVICE.md for the polling contract.
const (
	JobStateQueued   = "queued"
	JobStateRunning  = "running"
	JobStateDone     = "done"
	JobStateFailed   = "failed"
	JobStateCanceled = "canceled"
)

// Job types accepted by POST /v1/jobs?type= and BatchJob.Type.
const (
	JobTypePartition   = "partition"
	JobTypeOrder       = "order"
	JobTypeRepartition = "repartition"
)

// Partition methods accepted by PartitionRequest.Method.
const (
	// MethodRecursive is multilevel recursive bisection (the default).
	MethodRecursive = "recursive"
	// MethodKWay is the direct multilevel k-way scheme.
	MethodKWay = "kway"
)

// WireGraph is a graph in CSR form as it crosses the wire: the same four
// arrays NewGraphFromCSR accepts. Adjwgt and Vwgt may be omitted for unit
// weights.
type WireGraph struct {
	Xadj   []int `json:"xadj"`
	Adjncy []int `json:"adjncy"`
	Adjwgt []int `json:"adjwgt,omitempty"`
	Vwgt   []int `json:"vwgt,omitempty"`
}

// NewWireGraph copies g into its wire form.
func NewWireGraph(g *Graph) *WireGraph {
	return &WireGraph{
		Xadj:   append([]int(nil), g.Xadj...),
		Adjncy: append([]int(nil), g.Adjncy...),
		Adjwgt: append([]int(nil), g.Adjwgt...),
		Vwgt:   append([]int(nil), g.Vwgt...),
	}
}

// ToGraph validates the CSR arrays and returns the in-memory Graph.
func (w *WireGraph) ToGraph() (*Graph, error) {
	return NewGraphFromCSR(w.Xadj, w.Adjncy, w.Adjwgt, w.Vwgt)
}

// PartitionRequest asks for a k-way partition of Graph. Exactly one of K
// (with Method "" / MethodRecursive / MethodKWay) or Fractions (weighted
// parts, implies recursive bisection) selects the scheme.
type PartitionRequest struct {
	Graph WireGraph `json:"graph"`
	// K is the number of parts (ignored when Fractions is set).
	K int `json:"k,omitempty"`
	// Fractions are per-part target weight fractions for heterogeneous
	// parts; when non-empty the partition is len(Fractions)-way.
	Fractions []float64 `json:"fractions,omitempty"`
	// Method selects the scheme: "" or MethodRecursive for recursive
	// bisection, MethodKWay for direct k-way. Incompatible with Fractions.
	Method  string   `json:"method,omitempty"`
	Options *Options `json:"options,omitempty"`
	// TimeoutMS bounds the computation; the server clamps it to its own
	// per-request ceiling. 0 means the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// OrderRequest asks for a fill-reducing nested-dissection ordering.
type OrderRequest struct {
	Graph   WireGraph `json:"graph"`
	Options *Options  `json:"options,omitempty"`
	// Analyze additionally runs the symbolic Cholesky analysis of the
	// ordering (fill, opcount, tree height) and returns it in the
	// response.
	Analyze   bool  `json:"analyze,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// RepartitionRequest asks to adapt an existing partition Where to the
// graph's current vertex weights, minimizing migration.
type RepartitionRequest struct {
	Graph WireGraph `json:"graph"`
	K     int       `json:"k"`
	// Where is the incumbent partition vector, length n, parts in [0, K).
	Where     []int               `json:"where"`
	Options   *RepartitionOptions `json:"options,omitempty"`
	TimeoutMS int64               `json:"timeout_ms,omitempty"`
}

// PartitionResponse is the result object of a partition, emitted
// identically by `mlpart -json` and POST /v1/partition. The CLI omits
// Where (it goes to -o) and the daemon omits Graph and ElapsedNS (timing
// travels in the X-Compute-Ns header so that cached replies stay
// byte-identical to cold ones).
type PartitionResponse struct {
	Kind string `json:"kind"`
	// SchemaVersion is always SchemaVersion (1); see the constant.
	SchemaVersion int     `json:"schema_version"`
	Graph         string  `json:"graph,omitempty"`
	Vertices      int     `json:"vertices"`
	Edges         int     `json:"edges"`
	K             int     `json:"k"`
	EdgeCut       int     `json:"edge_cut"`
	Balance       float64 `json:"balance"`
	PartWeights   []int   `json:"part_weights"`
	Where         []int   `json:"where,omitempty"`
	// Cycles is the number of multilevel cycles that completed (1 under
	// the default fast preset; see Options.Preset). Additive field, same
	// schema version.
	Cycles int `json:"cycles,omitempty"`
	// Degradations lists the graceful-degradation fallbacks the run took;
	// empty (and omitted) on a clean run. A degraded result is valid and
	// balanced but may have a worse cut than a clean run would produce.
	Degradations []Degradation `json:"degradations,omitempty"`
	ElapsedNS    int64         `json:"elapsed_ns,omitempty"`
}

// OrderResponse is the result object of a nested-dissection ordering.
type OrderResponse struct {
	Kind          string `json:"kind"`
	SchemaVersion int    `json:"schema_version"`
	Vertices      int    `json:"vertices"`
	Edges         int    `json:"edges"`
	// Perm[i] is the vertex eliminated i-th; Iperm is its inverse.
	Perm      []int          `json:"perm"`
	Iperm     []int          `json:"iperm"`
	Analysis  *OrderingStats `json:"analysis,omitempty"`
	ElapsedNS int64          `json:"elapsed_ns,omitempty"`
}

// RepartitionResponse is the result object of an adaptive repartition.
type RepartitionResponse struct {
	Kind           string `json:"kind"`
	SchemaVersion  int    `json:"schema_version"`
	Vertices       int    `json:"vertices"`
	Edges          int    `json:"edges"`
	K              int    `json:"k"`
	EdgeCut        int    `json:"edge_cut"`
	PartWeights    []int  `json:"part_weights"`
	Where          []int  `json:"where"`
	MigratedWeight int    `json:"migrated_weight"`
	ElapsedNS      int64  `json:"elapsed_ns,omitempty"`
}

// ErrorResponse is the body of every non-2xx daemon reply.
type ErrorResponse struct {
	Kind          string `json:"kind"`
	SchemaVersion int    `json:"schema_version"`
	Error         string `json:"error"`
}

// JobResponse describes an asynchronous job's state. POST /v1/jobs
// returns it with 202 Accepted; GET /v1/jobs/{id} returns it while the
// job is active or canceled. Once the job is terminal with a result,
// GET replays the stored wire body (a PartitionResponse, OrderResponse,
// RepartitionResponse or ErrorResponse — byte-identical to what the
// synchronous endpoint would have sent) instead, tagged with an
// X-Job-State header. Additive type, same schema version.
type JobResponse struct {
	Kind          string `json:"kind"` // WireKindJob
	SchemaVersion int    `json:"schema_version"`
	// ID is the job's identifier, unique within one daemon boot.
	ID string `json:"id"`
	// Type is the computation kind: JobTypePartition, JobTypeOrder or
	// JobTypeRepartition.
	Type string `json:"type"`
	// State is one of the JobState constants.
	State string `json:"state"`
	// Coalesced is true when this submission matched an already-active
	// identical job and shares its execution (and id).
	Coalesced bool `json:"coalesced,omitempty"`
	// RetryAfterMS is the server's polling hint: wait at least this long
	// before the next GET. Present only while the job is active.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Error is the short failure text of a failed or canceled job.
	Error string `json:"error,omitempty"`
}

// BatchJob is one entry of a BatchRequest. Type selects the computation
// and exactly one of the matching request fields must be set.
type BatchJob struct {
	// Type is JobTypePartition (default when empty), JobTypeOrder or
	// JobTypeRepartition.
	Type        string              `json:"type,omitempty"`
	Partition   *PartitionRequest   `json:"partition,omitempty"`
	Order       *OrderRequest       `json:"order,omitempty"`
	Repartition *RepartitionRequest `json:"repartition,omitempty"`
}

// BatchRequest submits many jobs in one POST /v1/jobs/batch call,
// amortizing per-request ingest and admission overhead. Jobs are
// admitted independently: a full store sheds individual entries (their
// BatchResponse slot carries the error) without failing the batch.
type BatchRequest struct {
	Jobs []BatchJob `json:"jobs"`
}

// BatchResponse is the reply to a batch submission: one entry per
// submitted job, in request order.
type BatchResponse struct {
	Kind          string `json:"kind"` // WireKindBatch
	SchemaVersion int    `json:"schema_version"`
	// Jobs[i] describes the i-th submission. A shed or invalid entry has
	// an empty ID and a non-empty Error.
	Jobs []JobResponse `json:"jobs"`
}

// Delta op names for SessionDeltaRequest entries.
const (
	// DeltaOpAdd inserts the undirected edge (U,V) with weight W, or
	// reweights it if present.
	DeltaOpAdd = "add"
	// DeltaOpRemove deletes the undirected edge (U,V); it must exist.
	DeltaOpRemove = "remove"
	// DeltaOpVwgt sets vertex U's weight to W.
	DeltaOpVwgt = "vwgt"
)

// DeltaOp is one graph mutation inside a session delta batch.
type DeltaOp struct {
	// Op is DeltaOpAdd, DeltaOpRemove or DeltaOpVwgt.
	Op string `json:"op"`
	U  int    `json:"u"`
	V  int    `json:"v,omitempty"`
	W  int    `json:"w,omitempty"`
}

// SessionCreateRequest registers a resident graph session via
// POST /v1/graphs (JSON form; the csrb form ships the graph as the body
// with k/seed/ubfactor in the query string). The session id is the
// graph's content fingerprint, so identical graphs collide (409) rather
// than duplicate.
type SessionCreateRequest struct {
	Graph WireGraph `json:"graph"`
	K     int       `json:"k"`
	// Seed fixes every repair of this session deterministically (crash
	// recovery replays repairs with it).
	Seed int64 `json:"seed,omitempty"`
	// Ubfactor is the balance target (0 means 1.05).
	Ubfactor float64 `json:"ubfactor,omitempty"`
}

// SessionDeltaRequest applies one atomic batch of graph mutations via
// POST /v1/graphs/{id}/edges. The server bounds len(Ops); oversized
// batches get 413.
type SessionDeltaRequest struct {
	Ops []DeltaOp `json:"ops"`
}

// SessionRepairRequest asks for an explicit repartition of a session
// via POST /v1/graphs/{id}/repartition. Mode is "auto" (or empty) for
// the drift ladder's choice, or "boundary", "full", "vcycle" to force a
// tier.
type SessionRepairRequest struct {
	Mode string `json:"mode,omitempty"`
}

// SessionResponse describes a resident graph session. Where is present
// on GET ?where=true and on repartition replies.
type SessionResponse struct {
	Kind          string `json:"kind"` // WireKindSession
	SchemaVersion int    `json:"schema_version"`
	// ID is the session id ("g" + 16 hex digits of the fingerprint).
	ID          string  `json:"id"`
	Vertices    int     `json:"vertices"`
	Edges       int     `json:"edges"`
	K           int     `json:"k"`
	EdgeCut     int     `json:"edge_cut"`
	BaselineCut int     `json:"baseline_cut"`
	Balance     float64 `json:"balance"`
	PartWeights []int   `json:"part_weights,omitempty"`
	Where       []int   `json:"where,omitempty"`
	// Seq is the session's durable sequence number (delta batches plus
	// explicit repairs).
	Seq uint64 `json:"seq"`
	// Deltas is the number of delta batches applied this residency.
	Deltas int64 `json:"deltas"`
	// ResidentBytes is the session's estimated memory footprint.
	ResidentBytes int64 `json:"resident_bytes"`
	// LastRepair names the tier of the most recent successful repair:
	// "none", "boundary", "full" or "vcycle".
	LastRepair string `json:"last_repair"`
	// RepairFailed reports the most recent repair attempt failed and its
	// drift is still pending.
	RepairFailed bool `json:"repair_failed,omitempty"`
	// Recovered reports this session was rebuilt from the state dir.
	Recovered bool `json:"recovered,omitempty"`
	// Degraded reports recovery could not verify the delta log and fell
	// back to a fresh V-cycle.
	Degraded bool `json:"degraded,omitempty"`
}

// SessionListResponse is the reply to GET /v1/graphs.
type SessionListResponse struct {
	Kind          string            `json:"kind"` // WireKindSessionList
	SchemaVersion int               `json:"schema_version"`
	Sessions      []SessionResponse `json:"sessions"`
}

// SchemeCapability describes one coarsening scheme in a
// CapabilitiesResponse: the canonical name clients should send, a one-line
// description, and the scheme family (FamilyMatching or FamilyAggregation).
type SchemeCapability struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Family      string `json:"family"`
}

// CapabilitiesResponse is the reply to GET /v1/capabilities: the server's
// supported algorithm names, so SDK clients discover valid option values
// instead of hardcoding strings. Additive type, same schema version.
type CapabilitiesResponse struct {
	Kind          string `json:"kind"` // WireKindCapabilities
	SchemaVersion int    `json:"schema_version"`
	// CoarseningSchemes lists the values CoarseningOptions.Scheme (and the
	// deprecated Options.Matching alias) accepts, with family metadata.
	CoarseningSchemes []SchemeCapability `json:"coarsening_schemes"`
	// InitMethods lists the Options.InitPart values.
	InitMethods []string `json:"init_methods"`
	// Refinements lists the Options.Refinement values.
	Refinements []string `json:"refinements"`
	// Presets lists the Options.Preset values.
	Presets []string `json:"presets"`
	// Orderings lists the Options.Ordering values ("" also means
	// OrderingNone).
	Orderings []string `json:"orderings"`
	// Workloads lists the names GenerateWorkload accepts.
	Workloads []string `json:"workloads"`
	// FaultSites lists the named fault-injection sites (operator surface;
	// fault plans never cross the wire, but ops tooling introspects them).
	FaultSites []string `json:"fault_sites"`
}

// NewCapabilitiesResponse builds the capabilities document from the same
// registries the engine itself resolves names against, so the endpoint can
// never drift from what the server actually accepts.
func NewCapabilitiesResponse() *CapabilitiesResponse {
	infos := CoarseningSchemes()
	schemes := make([]SchemeCapability, len(infos))
	for i, info := range infos {
		schemes[i] = SchemeCapability{
			Name:        info.Name,
			Description: info.Description,
			Family:      info.Family,
		}
	}
	return &CapabilitiesResponse{
		Kind:              WireKindCapabilities,
		SchemaVersion:     SchemaVersion,
		CoarseningSchemes: schemes,
		InitMethods:       []string{InitGGGP, InitGGP, InitSBP},
		Refinements: []string{
			RefineNone, RefineGR, RefineKLR, RefineBGR,
			RefineBKLR, RefineBKLGR, RefineBKWAY,
		},
		Presets:    []string{PresetFast, PresetEco, PresetStrong},
		Orderings:  []string{OrderingNone, OrderingDegree, OrderingBFSBlock},
		Workloads:  WorkloadNames(),
		FaultSites: FaultSites(),
	}
}
