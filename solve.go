package mlpart

import (
	"mlpart/internal/solver"
	"mlpart/internal/sparse"
)

// Matrix is a symmetric sparse matrix over a Graph's adjacency structure,
// suitable for the direct and iterative solvers below.
type Matrix = sparse.Matrix

// CholeskyFactor is a sparse Cholesky factorization; its Solve method
// solves A x = b.
type CholeskyFactor = sparse.CholFactor

// NewLaplacianMatrix builds the graph Laplacian of g shifted by +shift on
// the diagonal; any shift > 0 makes it symmetric positive definite, the
// standard model problem for testing orderings and solvers.
func NewLaplacianMatrix(g *Graph, shift float64) *Matrix {
	return sparse.NewLaplacian(g, shift)
}

// FactorizeSPD computes the sparse Cholesky factorization of m under the
// elimination order perm (for example one produced by NestedDissection —
// the better the ordering, the fewer nonzeros and operations the factor
// costs). It fails if a pivot is non-positive.
func FactorizeSPD(m *Matrix, perm []int) (*CholeskyFactor, error) {
	return sparse.Factorize(m, perm)
}

// CGOptions configures SolveCG.
type CGOptions struct {
	// Tol is the relative residual target (0 means 1e-8).
	Tol float64
	// MaxIter bounds the iterations (0 means 10n).
	MaxIter int
	// Jacobi enables diagonal preconditioning.
	Jacobi bool
	// Workers > 1 runs the matrix-vector products in parallel, with matrix
	// rows assigned to workers by a multilevel partition of the matrix
	// graph (the paper's motivating application). The numeric result is
	// identical to the serial solve.
	Workers int
	// Seed drives the partition when Workers > 1.
	Seed int64
	// Tracer, when non-nil, observes the multilevel partition that assigns
	// matrix rows to workers (see Options.Tracer). It has no effect when
	// Workers <= 1.
	Tracer Tracer
}

// CGResult reports the outcome of SolveCG.
type CGResult struct {
	X          []float64
	Iterations int
	Residual   float64
	Converged  bool
}

// SolveCG solves A x = b by conjugate gradients.
func SolveCG(m *Matrix, b []float64, opts *CGOptions) (*CGResult, error) {
	if opts == nil {
		opts = &CGOptions{}
	}
	sopts := solver.Options{Tol: opts.Tol, MaxIter: opts.MaxIter, Jacobi: opts.Jacobi}
	if opts.Workers > 1 {
		part, err := Partition(m.G, opts.Workers, &Options{Seed: opts.Seed, Tracer: opts.Tracer})
		if err != nil {
			return nil, err
		}
		layout, err := solver.NewLayout(part.Where, opts.Workers)
		if err != nil {
			return nil, err
		}
		sopts.Layout = layout
	}
	res, err := solver.CG(m, b, sopts)
	if err != nil {
		return nil, err
	}
	return &CGResult{
		X:          res.X,
		Iterations: res.Iterations,
		Residual:   res.Residual,
		Converged:  res.Converged,
	}, nil
}
