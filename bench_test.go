// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablation benches for the design choices called out in DESIGN.md.
// Each benchmark reports the relevant quality metric (edge-cut or opcount)
// alongside time, so `go test -bench=.` reproduces both axes the paper
// compares. cmd/mlbench prints the same data in the paper's table layouts.
package mlpart_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"mlpart"
	"mlpart/internal/chaco"
	"mlpart/internal/coarsen"
	"mlpart/internal/experiments"
	"mlpart/internal/graph"
	"mlpart/internal/matgen"
	"mlpart/internal/mmd"
	"mlpart/internal/multilevel"
	"mlpart/internal/ordering"
	"mlpart/internal/refine"
	"mlpart/internal/sparse"
	"mlpart/internal/spectral"
	"mlpart/internal/trace"
)

// benchScale keeps the benchmark workloads small enough that the full
// suite completes in minutes; cmd/mlbench runs the full-size sweeps.
const benchScale = 0.08

// benchGraph is the representative 3D FE workload used by the per-phase
// benchmarks (the paper's BRACK2 class).
func benchGraph(b *testing.B) *matgen.Named {
	b.Helper()
	w, err := matgen.Generate("BRCK", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return &w
}

// BenchmarkTable1Suite measures generating the full Table 1 workload suite.
func BenchmarkTable1Suite(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ws := matgen.Suite(matgen.AllNames(), benchScale)
		if len(ws) != len(matgen.AllNames()) {
			b.Fatal("suite incomplete")
		}
	}
}

// BenchmarkTable2Matching reproduces Table 2: a 32-way partition per
// matching scheme (GGGP init, BKLGR refinement), reporting the edge-cut.
func BenchmarkTable2Matching(b *testing.B) {
	b.ReportAllocs()
	w := benchGraph(b)
	for _, s := range experiments.TableSchemes() {
		b.Run(s.String(), func(b *testing.B) {
			b.ReportAllocs()
			var cut int
			for i := 0; i < b.N; i++ {
				res, err := multilevel.Partition(w.Graph, 32,
					multilevel.Options{Seed: 1}.WithMatching(s))
				if err != nil {
					b.Fatal(err)
				}
				cut = res.EdgeCut
			}
			b.ReportMetric(float64(cut), "edgecut")
		})
	}
}

// BenchmarkTable3NoRefine reproduces Table 3: the same sweep with
// refinement disabled, isolating coarsening quality.
func BenchmarkTable3NoRefine(b *testing.B) {
	b.ReportAllocs()
	w := benchGraph(b)
	for _, s := range experiments.TableSchemes() {
		b.Run(s.String(), func(b *testing.B) {
			b.ReportAllocs()
			var cut int
			for i := 0; i < b.N; i++ {
				res, err := multilevel.Partition(w.Graph, 32,
					multilevel.Options{Seed: 1}.
						WithMatching(s).
						WithRefinement(refine.NoRefine))
				if err != nil {
					b.Fatal(err)
				}
				cut = res.EdgeCut
			}
			b.ReportMetric(float64(cut), "edgecut")
		})
	}
}

// BenchmarkTable4Refine reproduces Table 4: a 32-way partition per
// refinement policy (HEM coarsening, GGGP init).
func BenchmarkTable4Refine(b *testing.B) {
	b.ReportAllocs()
	w := benchGraph(b)
	for _, p := range []refine.Policy{refine.GR, refine.KLR, refine.BGR, refine.BKLR, refine.BKLGR} {
		b.Run(p.String(), func(b *testing.B) {
			b.ReportAllocs()
			var cut int
			for i := 0; i < b.N; i++ {
				res, err := multilevel.Partition(w.Graph, 32,
					multilevel.Options{Seed: 1}.WithRefinement(p))
				if err != nil {
					b.Fatal(err)
				}
				cut = res.EdgeCut
			}
			b.ReportMetric(float64(cut), "edgecut")
		})
	}
}

// levelTracer records hierarchy-level trace events so the coarsening
// benchmark can report per-level shrink ratios; goroutine-safe because
// parallel phases may emit concurrently.
type levelTracer struct {
	mu    sync.Mutex
	verts []int
}

func (lt *levelTracer) Event(e trace.Event) {
	if e.Kind != trace.KindLevel {
		return
	}
	lt.mu.Lock()
	lt.verts = append(lt.verts, e.Vertices)
	lt.mu.Unlock()
}

// BenchmarkCoarseningFamilies compares the two coarsening families at
// k=32 on the two workload classes they target: HEM (matching) against
// GCLP (aggregation) on a 3D finite-element mesh and on a power-law
// social graph. Each run reports the edge-cut, the final imbalance, the
// hierarchy depth and the geometric-mean per-level shrink ratio, and logs
// the raw per-level vertex counts — the mesh rows show matching is
// already near its 2x-per-level optimum there, the social rows show
// label-propagation collapsing hubs whole where pairwise matching stalls.
func BenchmarkCoarseningFamilies(b *testing.B) {
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"FE3D", matgen.FE3DTetra(12, 12, 12, 7)},
		{"SOC", matgen.SocialNetwork(16384, 4, 23)},
	}
	for _, w := range workloads {
		for _, s := range []coarsen.Scheme{coarsen.HEM, coarsen.GCLP} {
			b.Run(w.name+"/"+s.String(), func(b *testing.B) {
				b.ReportAllocs()
				var cut int
				var imbal float64
				var levels []int
				for i := 0; i < b.N; i++ {
					lt := &levelTracer{}
					res, err := multilevel.PartitionKWay(w.g, 32,
						multilevel.Options{Seed: 1, Tracer: lt}.WithMatching(s))
					if err != nil {
						b.Fatal(err)
					}
					cut = res.EdgeCut
					maxw, total := 0, 0
					for _, pw := range res.PartWeights {
						total += pw
						if pw > maxw {
							maxw = pw
						}
					}
					imbal = float64(maxw) * float64(len(res.PartWeights)) / float64(total)
					levels = lt.verts
				}
				b.ReportMetric(float64(cut), "edgecut")
				b.ReportMetric(imbal, "imbalance")
				if n := len(levels); n > 1 {
					b.ReportMetric(float64(n-1), "levels")
					ratio := math.Pow(float64(levels[0])/float64(levels[n-1]), 1/float64(n-1))
					b.ReportMetric(ratio, "shrink/level")
					b.Logf("%s/%s per-level vertices: %v", w.name, s, levels)
				}
			})
		}
	}
}

// figureBench runs our algorithm and one baseline to a 64-way partition,
// reporting both cuts — the data behind one bar of Figures 1-3.
func figureBench(b *testing.B, baseline experiments.Baseline) {
	w := benchGraph(b)
	const k = 64
	b.Run("Ours", func(b *testing.B) {
		b.ReportAllocs()
		var cut int
		for i := 0; i < b.N; i++ {
			res, err := multilevel.Partition(w.Graph, k, multilevel.Options{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			cut = res.EdgeCut
		}
		b.ReportMetric(float64(cut), "edgecut")
	})
	b.Run(baseline.String(), func(b *testing.B) {
		b.ReportAllocs()
		var cut int
		for i := 0; i < b.N; i++ {
			var where []int
			switch baseline {
			case experiments.MSB:
				where = spectral.MSBPartition(w.Graph, k, spectral.MSBOptions{}, rand.New(rand.NewSource(1)))
			case experiments.MSBKL:
				where = spectral.MSBPartition(w.Graph, k, spectral.MSBOptions{KL: true}, rand.New(rand.NewSource(1)))
			case experiments.ChacoML:
				where = chaco.Partition(w.Graph, k, chaco.Options{}, 1)
			}
			cut = refine.ComputeCut(w.Graph, where)
		}
		b.ReportMetric(float64(cut), "edgecut")
	})
}

// BenchmarkFigure1VsMSB reproduces Figure 1: ours vs multilevel spectral
// bisection (quality via the edgecut metric, speed via ns/op — Figure 4's
// axis for the same pair).
func BenchmarkFigure1VsMSB(b *testing.B) { figureBench(b, experiments.MSB) }

// BenchmarkFigure2VsMSBKL reproduces Figure 2: ours vs MSB-KL.
func BenchmarkFigure2VsMSBKL(b *testing.B) { figureBench(b, experiments.MSBKL) }

// BenchmarkFigure3VsChacoML reproduces Figure 3: ours vs Chaco-ML.
func BenchmarkFigure3VsChacoML(b *testing.B) { figureBench(b, experiments.ChacoML) }

// BenchmarkFigure4Runtime reproduces Figure 4 directly: the wall-clock of
// each partitioner on the same 64-way problem; relative ns/op values are
// the figure's bars.
func BenchmarkFigure4Runtime(b *testing.B) {
	b.ReportAllocs()
	w := benchGraph(b)
	const k = 64
	b.Run("Ours", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := multilevel.Partition(w.Graph, k, multilevel.Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Best-of-4 bisections, serial vs parallel trials: both pick the same
	// cuts (the trials have order-independent derived seeds), so the pair
	// measures the wall-clock speedup of concurrent NCuts alone.
	b.Run("OursNCuts4Serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := multilevel.Partition(w.Graph, k, multilevel.Options{Seed: 1, NCuts: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("OursNCuts4Parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := multilevel.Partition(w.Graph, k, multilevel.Options{Seed: 1, NCuts: 4, Parallel: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ChacoML", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			chaco.Partition(w.Graph, k, chaco.Options{}, 1)
		}
	})
	b.Run("MSB", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spectral.MSBPartition(w.Graph, k, spectral.MSBOptions{}, rand.New(rand.NewSource(1)))
		}
	})
	b.Run("MSBKL", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spectral.MSBPartition(w.Graph, k, spectral.MSBOptions{KL: true}, rand.New(rand.NewSource(1)))
		}
	})
}

// BenchmarkFigure5Ordering reproduces Figure 5: the three fill-reducing
// orderings of the same stiffness matrix, reporting the factorization
// opcount each produces.
func BenchmarkFigure5Ordering(b *testing.B) {
	b.ReportAllocs()
	w, err := matgen.Generate("BC30", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	report := func(b *testing.B, perm []int) {
		a, err := sparse.Analyze(w.Graph, perm)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Flops, "opcount")
	}
	b.Run("MLND", func(b *testing.B) {
		b.ReportAllocs()
		var perm []int
		for i := 0; i < b.N; i++ {
			perm = ordering.MLND(w.Graph, ordering.Options{Seed: 1})
		}
		report(b, perm)
	})
	b.Run("MMD", func(b *testing.B) {
		b.ReportAllocs()
		var perm []int
		for i := 0; i < b.N; i++ {
			perm = mmd.Order(w.Graph)
		}
		report(b, perm)
	})
	b.Run("SND", func(b *testing.B) {
		b.ReportAllocs()
		var perm []int
		for i := 0; i < b.N; i++ {
			perm = ordering.SND(w.Graph, ordering.Options{Seed: 1})
		}
		report(b, perm)
	})
}

// BenchmarkAblationMatching isolates coarsening: HEM vs RM at fixed
// (BKLGR) refinement on a bisection, the comparison behind the paper's
// choice of HEM.
func BenchmarkAblationMatching(b *testing.B) {
	b.ReportAllocs()
	w := benchGraph(b)
	for _, s := range []coarsen.Scheme{coarsen.RM, coarsen.HEM} {
		b.Run(s.String(), func(b *testing.B) {
			b.ReportAllocs()
			var cut int
			for i := 0; i < b.N; i++ {
				bis, _ := multilevel.Bisect(w.Graph, 0,
					multilevel.Options{Seed: 1}.WithMatching(s),
					rand.New(rand.NewSource(1)))
				cut = bis.Cut
			}
			b.ReportMetric(float64(cut), "edgecut")
		})
	}
}

// BenchmarkAblationBoundary isolates the boundary optimization: KLR vs
// BKLR at fixed HEM coarsening.
func BenchmarkAblationBoundary(b *testing.B) {
	b.ReportAllocs()
	w := benchGraph(b)
	for _, p := range []refine.Policy{refine.KLR, refine.BKLR} {
		b.Run(p.String(), func(b *testing.B) {
			b.ReportAllocs()
			var cut int
			for i := 0; i < b.N; i++ {
				bis, _ := multilevel.Bisect(w.Graph, 0,
					multilevel.Options{Seed: 1}.WithRefinement(p),
					rand.New(rand.NewSource(1)))
				cut = bis.Cut
			}
			b.ReportMetric(float64(cut), "edgecut")
		})
	}
}

// BenchmarkAblationTrials varies the GGGP trial count (the paper uses 5).
func BenchmarkAblationTrials(b *testing.B) {
	b.ReportAllocs()
	w := benchGraph(b)
	for _, trials := range []int{1, 5, 10} {
		b.Run(fmt.Sprintf("trials=%d", trials), func(b *testing.B) {
			b.ReportAllocs()
			var cut int
			for i := 0; i < b.N; i++ {
				res, err := multilevel.Partition(w.Graph, 32,
					multilevel.Options{Seed: 1, InitTrials: trials})
				if err != nil {
					b.Fatal(err)
				}
				cut = res.EdgeCut
			}
			b.ReportMetric(float64(cut), "edgecut")
		})
	}
}

// BenchmarkAblationCoarsestSize varies where coarsening stops (the paper
// coarsens to ~100 vertices).
func BenchmarkAblationCoarsestSize(b *testing.B) {
	b.ReportAllocs()
	w := benchGraph(b)
	for _, ct := range []int{50, 100, 200} {
		b.Run(fmt.Sprintf("coarsenTo=%d", ct), func(b *testing.B) {
			b.ReportAllocs()
			var cut int
			for i := 0; i < b.N; i++ {
				res, err := multilevel.Partition(w.Graph, 32,
					multilevel.Options{Seed: 1, CoarsenTo: ct})
				if err != nil {
					b.Fatal(err)
				}
				cut = res.EdgeCut
			}
			b.ReportMetric(float64(cut), "edgecut")
		})
	}
}

// BenchmarkAblationStopRule varies the refinement stop window x (the paper
// uses x = 50).
func BenchmarkAblationStopRule(b *testing.B) {
	b.ReportAllocs()
	w := benchGraph(b)
	for _, x := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("x=%d", x), func(b *testing.B) {
			b.ReportAllocs()
			var cut int
			for i := 0; i < b.N; i++ {
				res, err := multilevel.Partition(w.Graph, 32,
					multilevel.Options{Seed: 1, StopWindow: x})
				if err != nil {
					b.Fatal(err)
				}
				cut = res.EdgeCut
			}
			b.ReportMetric(float64(cut), "edgecut")
		})
	}
}

// BenchmarkAblationParallelKway compares sequential and parallel recursive
// k-way decomposition (identical results, different wall-clock).
func BenchmarkAblationParallelKway(b *testing.B) {
	b.ReportAllocs()
	w, err := matgen.Generate("WAVE", 0.2)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []bool{false, true} {
		name := "sequential"
		if par {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := multilevel.Partition(w.Graph, 64,
					multilevel.Options{Seed: 1, Parallel: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBoundaryKWay is the boundary-refinement acceptance benchmark:
// a 32-way partition of a ~125k-vertex 3D FE mesh, comparing the recursive
// KLR baseline against the direct k-way scheme with the boundary BKWAY
// engine, serial and with parallel propose passes. The parallel and serial
// BKWAY rows produce identical partitions (identical edgecut metric); the
// ns/op ratio between RecursiveKLR and DirectBKWAYParallel is the headline
// speedup in docs/PERFORMANCE.md.
func BenchmarkBoundaryKWay(b *testing.B) {
	g := matgen.FE3DTetra(50, 50, 50, 3)
	const k = 32
	run := func(b *testing.B, f func() (*multilevel.Result, error)) {
		b.ReportAllocs()
		var cut int
		for i := 0; i < b.N; i++ {
			res, err := f()
			if err != nil {
				b.Fatal(err)
			}
			cut = res.EdgeCut
		}
		b.ReportMetric(float64(cut), "edgecut")
	}
	b.Run("RecursiveKLR", func(b *testing.B) {
		run(b, func() (*multilevel.Result, error) {
			return multilevel.Partition(g, k,
				multilevel.Options{Seed: 1}.WithRefinement(refine.KLR))
		})
	})
	b.Run("DirectBKWAYSerial", func(b *testing.B) {
		run(b, func() (*multilevel.Result, error) {
			return multilevel.PartitionKWay(g, k,
				multilevel.Options{Seed: 1}.WithRefinement(refine.BKWAY))
		})
	})
	b.Run("DirectBKWAYParallel", func(b *testing.B) {
		run(b, func() (*multilevel.Result, error) {
			return multilevel.PartitionKWay(g, k,
				multilevel.Options{Seed: 1, RefineWorkers: runtime.NumCPU()}.
					WithRefinement(refine.BKWAY))
		})
	})
}

// BenchmarkCycles is the iterated-multilevel acceptance benchmark: a
// 32-way partition of the same ~125k-vertex 3D FE mesh under each quality
// preset. Fast is one V-cycle; eco and strong re-coarsen respecting the
// incumbent partition and re-refine (2 and 4 cycles). The edgecut metric
// must fall monotonically fast -> eco -> strong while ns/op stays within
// roughly the cycle-count multiple of fast — extra cycles skip initial
// partitioning, so they are cheaper than the first. The fast/strong
// edgecut and ns/op pairs feed the preset table in docs/PERFORMANCE.md.
func BenchmarkCycles(b *testing.B) {
	g := matgen.FE3DTetra(50, 50, 50, 3)
	const k = 32
	for _, tc := range []struct {
		name   string
		preset multilevel.Preset
	}{
		{"Fast", multilevel.PresetFast},
		{"Eco", multilevel.PresetEco},
		{"Strong", multilevel.PresetStrong},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var cut int
			for i := 0; i < b.N; i++ {
				res, err := multilevel.PartitionKWay(g, k,
					multilevel.Options{Seed: 1, Preset: tc.preset}.
						WithRefinement(refine.BKWAY))
				if err != nil {
					b.Fatal(err)
				}
				cut = res.EdgeCut
			}
			b.ReportMetric(float64(cut), "edgecut")
		})
	}
}

// BenchmarkIngest is the zero-copy ingest acceptance benchmark: the same
// ~125k-vertex 3D FE mesh decoded from each wire encoding. JSON and METIS
// text re-tokenize every number; the binary CSR decode aliases the payload
// buffer (one fused validation pass, ≤1 graph-sized allocation), and the
// mmap variant adds only the mapping syscall. The JSON/Binary ns/op ratio
// is the headline number in docs/PERFORMANCE.md's ingest table.
func BenchmarkIngest(b *testing.B) {
	g := matgen.FE3DTetra(50, 50, 50, 3)
	wantFP := g.Fingerprint()

	jsonBody, err := json.Marshal(mlpart.NewWireGraph(g))
	if err != nil {
		b.Fatal(err)
	}
	var metisBuf bytes.Buffer
	if err := mlpart.WriteGraph(&metisBuf, g); err != nil {
		b.Fatal(err)
	}
	var binBuf bytes.Buffer
	if err := mlpart.WriteBinaryGraph(&binBuf, g); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "g.csrb")
	if err := os.WriteFile(path, binBuf.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}

	check := func(b *testing.B, got *mlpart.Graph) {
		b.Helper()
		if got == nil || got.Fingerprint() != wantFP {
			b.Fatal("decoded graph does not match the source")
		}
	}

	b.Run("JSON", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(jsonBody)))
		var got *mlpart.Graph
		for i := 0; i < b.N; i++ {
			var wg mlpart.WireGraph
			if err := json.Unmarshal(jsonBody, &wg); err != nil {
				b.Fatal(err)
			}
			if got, err = wg.ToGraph(); err != nil {
				b.Fatal(err)
			}
		}
		check(b, got)
	})
	b.Run("METIS", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(metisBuf.Len()))
		var got *mlpart.Graph
		for i := 0; i < b.N; i++ {
			if got, err = mlpart.ReadGraph(bytes.NewReader(metisBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
		check(b, got)
	})
	b.Run("Binary", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(binBuf.Len()))
		var got *mlpart.Graph
		for i := 0; i < b.N; i++ {
			if got, err = mlpart.DecodeBinaryGraph(binBuf.Bytes()); err != nil {
				b.Fatal(err)
			}
		}
		check(b, got)
	})
	b.Run("BinaryMmap", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(binBuf.Len()))
		for i := 0; i < b.N; i++ {
			got, closer, err := mlpart.OpenBinaryGraph(path)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				check(b, got)
			}
			if err := closer.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRelabel prices the Ordering preprocessing option: computing and
// applying each relabeling permutation on the 125k-vertex bench mesh.
func BenchmarkRelabel(b *testing.B) {
	g := matgen.FE3DTetra(50, 50, 50, 3)
	for _, ord := range []string{mlpart.OrderingDegree, mlpart.OrderingBFSBlock} {
		b.Run(ord, func(b *testing.B) {
			b.ReportAllocs()
			var cut int
			for i := 0; i < b.N; i++ {
				res, err := mlpart.PartitionDirectKWay(g, 32, &mlpart.Options{
					Seed: 1, Refinement: mlpart.RefineBKWAY, Ordering: ord,
				})
				if err != nil {
					b.Fatal(err)
				}
				cut = res.EdgeCut
			}
			b.ReportMetric(float64(cut), "edgecut")
		})
	}
}

// BenchmarkAblationDirectKWay compares recursive bisection with the direct
// multilevel k-way extension at k=64 (quality via edgecut, speed via
// ns/op): the direct scheme coarsens once instead of k-1 times.
func BenchmarkAblationDirectKWay(b *testing.B) {
	b.ReportAllocs()
	w := benchGraph(b)
	const k = 64
	b.Run("recursive", func(b *testing.B) {
		b.ReportAllocs()
		var cut int
		for i := 0; i < b.N; i++ {
			res, err := multilevel.Partition(w.Graph, k, multilevel.Options{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			cut = res.EdgeCut
		}
		b.ReportMetric(float64(cut), "edgecut")
	})
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		var cut int
		for i := 0; i < b.N; i++ {
			res, err := multilevel.PartitionKWay(w.Graph, k, multilevel.Options{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			cut = res.EdgeCut
		}
		b.ReportMetric(float64(cut), "edgecut")
	})
}
