package mlpart

import (
	"math"
	"math/rand"
	"testing"
)

func spdSystem(t *testing.T) (*Matrix, []float64, []float64) {
	t.Helper()
	g := testMesh(t)
	m := NewLaplacianMatrix(g, 1)
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(1))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	m.MulVec(xTrue, b)
	return m, b, xTrue
}

func TestFactorizeSPDWithMLNDOrdering(t *testing.T) {
	m, b, xTrue := spdSystem(t)
	g := m.G
	perm, _, err := NestedDissection(g, &Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	f, err := FactorizeSPD(m, perm)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve(b)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("direct solve error %g at %d", math.Abs(x[i]-xTrue[i]), i)
		}
	}
	// MLND fill must not exceed natural-order fill on a mesh.
	natural := make([]int, g.NumVertices())
	for i := range natural {
		natural[i] = i
	}
	fn, err := FactorizeSPD(m, natural)
	if err != nil {
		t.Fatal(err)
	}
	if f.NnzL() > fn.NnzL() {
		t.Errorf("MLND fill %d worse than natural %d", f.NnzL(), fn.NnzL())
	}
}

func TestSolveCGSerialAndParallel(t *testing.T) {
	m, b, xTrue := spdSystem(t)
	serial, err := SolveCG(m, b, &CGOptions{Jacobi: true})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Converged {
		t.Fatal("CG did not converge")
	}
	par, err := SolveCG(m, b, &CGOptions{Jacobi: true, Workers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Iterations != par.Iterations {
		t.Fatalf("worker parallelism changed iteration count: %d vs %d",
			serial.Iterations, par.Iterations)
	}
	for i := range serial.X {
		if serial.X[i] != par.X[i] {
			t.Fatal("worker parallelism changed the numeric result")
		}
	}
	for i := range xTrue {
		if math.Abs(serial.X[i]-xTrue[i]) > 1e-5 {
			t.Fatalf("CG error %g at %d", math.Abs(serial.X[i]-xTrue[i]), i)
		}
	}
}

func TestSolveCGNilOptions(t *testing.T) {
	m, b, _ := spdSystem(t)
	res, err := SolveCG(m, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("default CG did not converge")
	}
}

func TestFactorizeSPDRejectsSingular(t *testing.T) {
	g := testMesh(t)
	m := NewLaplacianMatrix(g, 0) // singular
	perm := make([]int, g.NumVertices())
	for i := range perm {
		perm[i] = i
	}
	if _, err := FactorizeSPD(m, perm); err == nil {
		t.Fatal("singular matrix factorized")
	}
}
