package mlpart_test

import (
	"testing"

	"mlpart"
	"mlpart/internal/matgen"
)

// TestFullScaleSuite generates the complete Table 1 suite at scale 1.0
// (the documented laptop-sized configuration) and sanity-checks every
// graph plus one partition per structural class. Skipped with -short.
func TestFullScaleSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale suite generation is slow")
	}
	representative := map[string]bool{
		"BC31": true, "BRCK": true, "4ELT": true, "FINC": true,
		"MAP": true, "MEM": true, "BSP10": true,
	}
	for _, name := range matgen.AllNames() {
		w, err := matgen.Generate(name, 1.0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g := w.Graph
		n := g.NumVertices()
		if n < 1000 || n > 300000 {
			t.Errorf("%s: scale-1.0 size %d outside the documented range", name, n)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !g.IsConnected() {
			t.Errorf("%s: disconnected at full scale", name)
		}
		if !representative[name] {
			continue
		}
		res, err := mlpart.Partition(g, 32, &mlpart.Options{Seed: 1, Parallel: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.EdgeCut != mlpart.EdgeCut(g, res.Where) {
			t.Errorf("%s: cut inconsistent", name)
		}
		report, err := mlpart.EvaluatePartition(g, res.Where, 32)
		if err != nil {
			t.Fatal(err)
		}
		if report.EmptyParts > 0 || report.Balance > 1.5 {
			t.Errorf("%s: degenerate partition %s", name, report)
		}
	}
}

// TestSeedSweepStress partitions and orders one irregular workload under
// many seeds, checking invariants on each run. Skipped with -short.
func TestSeedSweepStress(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is slow")
	}
	g, err := mlpart.GenerateWorkload("COPT", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		res, err := mlpart.Partition(g, 16, &mlpart.Options{Seed: seed, KWayRefine: seed%2 == 0})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.EdgeCut != mlpart.EdgeCut(g, res.Where) {
			t.Fatalf("seed %d: cut mismatch", seed)
		}
		perm, _, err := mlpart.NestedDissection(g, &mlpart.Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := mlpart.AnalyzeOrdering(g, perm); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
