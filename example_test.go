package mlpart_test

import (
	"fmt"

	"mlpart"
)

// Build a small ring graph and split it in two: the optimal bisection of a
// ring cuts exactly two edges.
func ExamplePartition() {
	const n = 16
	b := mlpart.NewGraphBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	res, err := mlpart.Partition(g, 2, &mlpart.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("edge-cut:", res.EdgeCut)
	fmt.Println("weights:", res.PartWeights)
	// Output:
	// edge-cut: 2
	// weights: [8 8]
}

// Order a path graph for factorization: nested dissection numbers the
// middle separator vertex last, so no fill is created beyond the structure.
func ExampleNestedDissection() {
	const n = 7
	b := mlpart.NewGraphBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	g, _ := b.Build()
	perm, _, err := mlpart.NestedDissection(g, &mlpart.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	stats, _ := mlpart.AnalyzeOrdering(g, perm)
	// A path factors with zero fill under a good ordering: nnz(L) = 2n-1.
	fmt.Println("nnz(L):", stats.FactorNonzeros)
	// Output:
	// nnz(L): 13
}

// Evaluate an externally produced partition.
func ExampleEvaluatePartition() {
	b := mlpart.NewGraphBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g, _ := b.Build()
	report, err := mlpart.EvaluatePartition(g, []int{0, 0, 1, 1}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("cut:", report.EdgeCut, "boundary:", report.BoundaryVertices)
	// Output:
	// cut: 1 boundary: 2
}

// Solve a small SPD system directly with a fill-reducing ordering.
func ExampleFactorizeSPD() {
	b := mlpart.NewGraphBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, _ := b.Build()
	m := mlpart.NewLaplacianMatrix(g, 1) // tridiagonal [2 -1; -1 3 -1; -1 2]
	perm, _, _ := mlpart.NestedDissection(g, nil)
	f, err := mlpart.FactorizeSPD(m, perm)
	if err != nil {
		panic(err)
	}
	x := f.Solve([]float64{1, 1, 1})
	fmt.Printf("%.3f %.3f %.3f\n", x[0], x[1], x[2])
	// Output:
	// 1.000 1.000 1.000
}
