package mlpart_test

import (
	"testing"

	"mlpart"
	"mlpart/internal/matgen"
	"mlpart/internal/mmd"
	"mlpart/internal/ordering"
	"mlpart/internal/sparse"
)

// TestFullPipelineAllWorkloads runs the complete partition + ordering
// pipeline on every Table 1 workload class at small scale, checking the
// structural invariants everywhere. This is the end-to-end safety net for
// the whole repository.
func TestFullPipelineAllWorkloads(t *testing.T) {
	for _, name := range matgen.AllNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g, err := mlpart.GenerateWorkload(name, 0.04)
			if err != nil {
				t.Fatal(err)
			}
			n := g.NumVertices()
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}

			// 8-way partition.
			res, err := mlpart.Partition(g, 8, &mlpart.Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.EdgeCut != mlpart.EdgeCut(g, res.Where) {
				t.Error("cut inconsistent")
			}
			report, err := mlpart.EvaluatePartition(g, res.Where, 8)
			if err != nil {
				t.Fatal(err)
			}
			if report.EmptyParts > 0 {
				t.Errorf("empty parts: %s", report)
			}
			// Balance within tolerance (irregular graphs get extra slack
			// from the max-vertex-weight allowance at coarse levels).
			if report.Balance > 1.5 {
				t.Errorf("balance %v", report.Balance)
			}

			// MLND ordering + symbolic factorization.
			perm, iperm, err := mlpart.NestedDissection(g, &mlpart.Options{Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range perm {
				if iperm[v] != i {
					t.Fatal("iperm wrong")
				}
			}
			st, err := mlpart.AnalyzeOrdering(g, perm)
			if err != nil {
				t.Fatal(err)
			}
			if st.FactorNonzeros < int64(n) {
				t.Error("factor impossibly small")
			}
		})
	}
}

// TestOrderingConsistencyAcrossAlgorithms checks the three orderings are
// all valid permutations producing consistent analyses on one graph.
func TestOrderingConsistencyAcrossAlgorithms(t *testing.T) {
	g, err := mlpart.GenerateWorkload("COPT", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	perms := map[string][]int{
		"MLND": ordering.MLND(g, ordering.Options{Seed: 1}),
		"SND":  ordering.SND(g, ordering.Options{Seed: 1}),
		"RCM":  ordering.RCM(g),
		"MMD":  mmd.Order(g),
	}
	for name, perm := range perms {
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("%s: not a permutation", name)
			}
			seen[v] = true
		}
		if _, err := sparse.Analyze(g, perm); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// RCM minimizes bandwidth, not fill; it must at least beat identity on
	// bandwidth while MMD/MLND beat it on flops.
	if bw := ordering.Bandwidth(g, perms["RCM"]); bw >= n/2 {
		t.Errorf("RCM bandwidth %d of %d", bw, n)
	}
	rcm, _ := sparse.Analyze(g, perms["RCM"])
	mlnd, _ := sparse.Analyze(g, perms["MLND"])
	if mlnd.Flops > rcm.Flops {
		t.Errorf("MLND flops %.3g worse than RCM %.3g on a 3D mesh", mlnd.Flops, rcm.Flops)
	}
}
