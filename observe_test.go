package mlpart_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"mlpart"
)

// TestTracerPublic checks the public tracing surface: events arrive, cover
// every kind the engine emits, and attaching a tracer does not change the
// partition.
func TestTracerPublic(t *testing.T) {
	g, err := mlpart.GenerateWorkload("4ELT", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := mlpart.Partition(g, 4, &mlpart.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var col mlpart.TraceCollector
	traced, err := mlpart.Partition(g, 4, &mlpart.Options{Seed: 42, Tracer: &col})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Where, traced.Where) || plain.EdgeCut != traced.EdgeCut {
		t.Error("tracer changed the partition")
	}
	kinds := map[string]int{}
	for _, ev := range col.Events() {
		kinds[string(ev.Kind)]++
	}
	for _, k := range []string{"level", "initial", "refine_pass", "project", "phase"} {
		if kinds[k] == 0 {
			t.Errorf("no %q events observed (saw %v)", k, kinds)
		}
	}
}

// TestJSONTracerRoundTrip streams events as JSON lines and decodes every
// line back into a TraceEvent: each must be well-formed with a known kind.
func TestJSONTracerRoundTrip(t *testing.T) {
	g, err := mlpart.GenerateWorkload("4ELT", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := mlpart.Partition(g, 4, &mlpart.Options{Seed: 42, Tracer: mlpart.NewJSONTracer(&buf)}); err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{"level": true, "initial": true, "refine_pass": true, "project": true, "phase": true}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev mlpart.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", lines+1, err)
		}
		if !known[string(ev.Kind)] {
			t.Errorf("line %d has unknown kind %q", lines+1, ev.Kind)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Error("JSON tracer wrote no events")
	}
}

// TestCtxVariantsCancel checks all *Ctx entry points surface ctx.Err() once
// the context is cancelled up front.
func TestCtxVariantsCancel(t *testing.T) {
	g, err := mlpart.GenerateWorkload("4ELT", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mlpart.PartitionCtx(ctx, g, 4, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("PartitionCtx: err = %v, want context.Canceled", err)
	}
	if _, err := mlpart.PartitionWeightedCtx(ctx, g, []float64{1, 2}, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("PartitionWeightedCtx: err = %v, want context.Canceled", err)
	}
	if _, err := mlpart.PartitionDirectKWayCtx(ctx, g, 4, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("PartitionDirectKWayCtx: err = %v, want context.Canceled", err)
	}
	if _, err := mlpart.BisectCtx(ctx, g, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("BisectCtx: err = %v, want context.Canceled", err)
	}
	if _, _, err := mlpart.NestedDissectionCtx(ctx, g, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("NestedDissectionCtx: err = %v, want context.Canceled", err)
	}
	if _, _, err := mlpart.NestedDissectionCtx(ctx, g, &mlpart.Options{CompressGraph: true}); !errors.Is(err, context.Canceled) {
		t.Errorf("NestedDissectionCtx(compressed): err = %v, want context.Canceled", err)
	}
}

// TestCtxVariantsMatchPlain checks the *Ctx entry points with a live
// context reproduce the plain results exactly.
func TestCtxVariantsMatchPlain(t *testing.T) {
	g, err := mlpart.GenerateWorkload("4ELT", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opts := &mlpart.Options{Seed: 9}

	plain, err := mlpart.Partition(g, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := mlpart.PartitionCtx(ctx, g, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Where, withCtx.Where) {
		t.Error("PartitionCtx differs from Partition")
	}

	p1, _, err := mlpart.NestedDissection(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := mlpart.NestedDissectionCtx(ctx, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Error("NestedDissectionCtx differs from NestedDissection")
	}
}

// TestCtxDeadlineMidRun cancels during a run (rather than before it) and
// checks the deadline error surfaces instead of a partial result.
func TestCtxDeadlineMidRun(t *testing.T) {
	g, err := mlpart.GenerateWorkload("4ELT", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// A deadline this tight cannot finish 64 parts of a large mesh; the
	// partitioner must notice at a level boundary and bail out.
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	res, err := mlpart.PartitionCtx(ctx, g, 64, &mlpart.Options{Seed: 1, NCuts: 4})
	if err == nil {
		t.Skip("machine fast enough to finish before the deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Error("got a partial result alongside the error")
	}
}
