package refine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/graph"
	"mlpart/internal/matgen"
)

func randomWhere(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	where := make([]int, n)
	for i := range where {
		where[i] = rng.Intn(2)
	}
	return where
}

func TestNewBisectionComputesState(t *testing.T) {
	// Path 0-1-2-3 split in the middle: cut 1, boundary {1, 2}.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	bis := NewBisection(g, []int{0, 0, 1, 1})
	if bis.Cut != 1 {
		t.Fatalf("cut = %d, want 1", bis.Cut)
	}
	if bis.Pwgt != [2]int{2, 2} {
		t.Fatalf("pwgt = %v", bis.Pwgt)
	}
	if !bis.IsBoundary(1) || !bis.IsBoundary(2) || bis.IsBoundary(0) || bis.IsBoundary(3) {
		t.Fatal("boundary flags wrong")
	}
	if bis.Gain(1) != 0 { // ED=1 (to 2), ID=1 (to 0)
		t.Fatalf("gain(1) = %d, want 0", bis.Gain(1))
	}
	if err := bis.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveMaintainsInvariants(t *testing.T) {
	g := matgen.Mesh2DTri(10, 10, 0, 1)
	bis := NewBisection(g, randomWhere(g.NumVertices(), 2))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		v := rng.Intn(g.NumVertices())
		bis.Move(v, nil)
		if i%50 == 0 {
			if err := bis.Verify(); err != nil {
				t.Fatalf("after %d moves: %v", i, err)
			}
		}
	}
	if err := bis.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveIsInvolution(t *testing.T) {
	g := matgen.Grid2D(6, 6)
	where := randomWhere(g.NumVertices(), 4)
	bis := NewBisection(g, append([]int(nil), where...))
	cut0 := bis.Cut
	bis.Move(7, nil)
	bis.Move(7, nil)
	if bis.Cut != cut0 {
		t.Fatalf("double move changed cut: %d -> %d", cut0, bis.Cut)
	}
	if err := bis.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeCutMatchesBisection(t *testing.T) {
	g := matgen.FE3DTetra(5, 5, 5, 5)
	where := randomWhere(g.NumVertices(), 6)
	bis := NewBisection(g, where)
	if got := ComputeCut(g, where); got != bis.Cut {
		t.Fatalf("ComputeCut = %d, Bisection.Cut = %d", got, bis.Cut)
	}
}

func allPolicies() []Policy { return []Policy{GR, KLR, BGR, BKLR, BKLGR} }

func TestRefineNeverWorsensCut(t *testing.T) {
	g := matgen.Mesh2DTri(20, 20, 0.02, 7)
	for _, p := range allPolicies() {
		where := randomWhere(g.NumVertices(), 8)
		bis := NewBisection(g, where)
		before := bis.Cut
		after := Refine(bis, p, Options{})
		if after > before {
			t.Errorf("%v: cut worsened %d -> %d", p, before, after)
		}
		if err := bis.Verify(); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
}

func TestRefineImprovesRandomPartition(t *testing.T) {
	// A random bisection of a mesh cuts ~half the edges; any KL-family
	// refinement should cut that dramatically.
	g := matgen.Grid2D(30, 30)
	for _, p := range allPolicies() {
		bis := NewBisection(g, randomWhere(g.NumVertices(), 9))
		before := bis.Cut
		after := Refine(bis, p, Options{})
		if after >= before*3/4 {
			t.Errorf("%v: weak improvement %d -> %d", p, before, after)
		}
	}
}

func TestRefineRespectsBalance(t *testing.T) {
	g := matgen.Mesh2DTri(25, 25, 0, 10)
	for _, p := range allPolicies() {
		// Start balanced; refinement must keep each side within tolerance.
		n := g.NumVertices()
		where := make([]int, n)
		for i := n / 2; i < n; i++ {
			where[i] = 1
		}
		bis := NewBisection(g, where)
		Refine(bis, p, Options{Ubfactor: 1.1})
		if bal := bis.Balance(); bal > 1.12 {
			t.Errorf("%v: balance %v exceeds tolerance", p, bal)
		}
	}
}

func TestNoRefineIsNoop(t *testing.T) {
	g := matgen.Grid2D(8, 8)
	where := randomWhere(g.NumVertices(), 11)
	bis := NewBisection(g, append([]int(nil), where...))
	before := bis.Cut
	if after := Refine(bis, NoRefine, Options{}); after != before {
		t.Fatalf("NoRefine changed cut %d -> %d", before, after)
	}
}

func TestKLRAtLeastAsGoodAsGR(t *testing.T) {
	// On average, multi-pass refinement is at least as good as one pass
	// from the same start. Compare exactly from identical partitions.
	g := matgen.FE3DTetra(7, 7, 7, 12)
	worse := 0
	for seed := int64(0); seed < 10; seed++ {
		w := randomWhere(g.NumVertices(), seed)
		a := NewBisection(g, append([]int(nil), w...))
		b := NewBisection(g, append([]int(nil), w...))
		cutGR := Refine(a, GR, Options{})
		cutKLR := Refine(b, KLR, Options{})
		if cutKLR > cutGR {
			worse++
		}
	}
	if worse > 0 {
		t.Fatalf("KLR worse than GR from the same start in %d/10 trials", worse)
	}
}

func TestProjectPreservesCut(t *testing.T) {
	// Build a tiny 2-level hierarchy by hand: contract pairs (2i, 2i+1).
	g := matgen.Grid2D(8, 8)
	n := g.NumVertices()
	cmap := make([]int, n)
	for v := 0; v < n; v++ {
		cmap[v] = v / 2
	}
	// Coarse graph with matching vertex weights (only Where/Cut needed by
	// Project, but build a real coarse graph for a faithful test).
	cb := graph.NewBuilder(n / 2)
	for v := 0; v < n; v++ {
		adj := g.Neighbors(v)
		for _, u := range adj {
			if cmap[u] != cmap[v] && cmap[v] < cmap[u] {
				cb.AddEdge(cmap[v], cmap[u])
			}
		}
	}
	cg := cb.MustBuild()
	for i := range cg.Vwgt {
		cg.Vwgt[i] = 2
	}
	cwhere := randomWhere(cg.NumVertices(), 13)
	coarse := NewBisection(cg, cwhere)
	fine := Project(g, cmap, coarse)
	// The projected cut equals the fine cut of the projected vector.
	want := ComputeCut(g, fine.Where)
	if fine.Cut != want {
		t.Fatalf("projected cut %d, want %d", fine.Cut, want)
	}
	for v := 0; v < n; v++ {
		if fine.Where[v] != cwhere[cmap[v]] {
			t.Fatal("projection assigned wrong part")
		}
	}
	if err := fine.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestForceBalance(t *testing.T) {
	g := matgen.Grid2D(12, 12)
	n := g.NumVertices()
	// Grossly unbalanced: 10 vertices on side 1.
	where := make([]int, n)
	for i := 0; i < 10; i++ {
		where[i] = 1
	}
	bis := NewBisection(g, where)
	ForceBalance(bis, Options{Ubfactor: 1.05})
	if bal := bis.Balance(); bal > 1.2 {
		t.Fatalf("balance = %v after ForceBalance", bal)
	}
	if err := bis.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestGainBuckets(t *testing.T) {
	b := NewGainBuckets(10, 5)
	b.Insert(0, 3)
	b.Insert(1, -2)
	b.Insert(2, 5)
	b.Insert(3, 3)
	if b.Empty() {
		t.Fatal("empty after inserts")
	}
	v, ok := b.PopMax()
	if !ok || v != 2 {
		t.Fatalf("popMax = %d, want 2", v)
	}
	v, _ = b.PopMax()
	if v != 0 && v != 3 {
		t.Fatalf("popMax = %d, want 0 or 3", v)
	}
	b.Update(1, 4)
	v, _ = b.PopMax()
	if v != 1 {
		t.Fatalf("popMax after update = %d, want 1", v)
	}
	b.Remove(0)
	b.Remove(3)
	if !b.Empty() {
		t.Fatal("not empty after removals")
	}
	if _, ok := b.PopMax(); ok {
		t.Fatal("popMax succeeded on empty structure")
	}
}

func TestGainBucketsClamping(t *testing.T) {
	b := NewGainBuckets(4, 2)
	b.Insert(0, 100) // clamped to +2 bucket, but gain value retained
	b.Insert(1, -77)
	if b.gain[0] != 100 {
		t.Fatalf("stored gain = %d, want 100", b.gain[0])
	}
	v, _ := b.PopMax()
	if v != 0 {
		t.Fatalf("popMax = %d, want 0", v)
	}
	v, _ = b.PopMax()
	if v != 1 {
		t.Fatalf("popMax = %d, want 1", v)
	}
}

func TestGainBucketsReset(t *testing.T) {
	b := NewGainBuckets(4, 3)
	b.Insert(0, 1)
	b.Insert(1, 2)
	b.Reset()
	if !b.Empty() || b.Contains(0) {
		t.Fatal("reset did not clear")
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, p := range append(allPolicies(), NoRefine) {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip failed for %v", p)
		}
	}
	if _, err := ParsePolicy("zzz"); err == nil {
		t.Fatal("ParsePolicy accepted bogus input")
	}
}

// Property: on random graphs with random partitions, every policy yields a
// cut no worse than the start, consistent incremental state, and balance
// within tolerance when starting balanced.
func TestRefinePropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := matgen.FE3DTetra(5, 5, 4, seed)
		n := g.NumVertices()
		where := make([]int, n)
		for i := n / 2; i < n; i++ {
			where[i] = 1
		}
		for _, p := range allPolicies() {
			bis := NewBisection(g, append([]int(nil), where...))
			before := bis.Cut
			after := Refine(bis, p, Options{})
			if after > before || bis.Verify() != nil {
				return false
			}
			if ComputeCut(g, bis.Where) != after {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineWithTargetWeights(t *testing.T) {
	// Ask for a 1:3 split and verify refinement honors it.
	g := matgen.Grid2D(20, 20)
	n := g.NumVertices()
	where := make([]int, n)
	for i := n / 4; i < n; i++ {
		where[i] = 1
	}
	bis := NewBisection(g, where)
	tp := [2]int{n / 4, 3 * n / 4}
	Refine(bis, BKLR, Options{TargetPwgt: tp, Ubfactor: 1.1})
	if bis.Pwgt[0] > tp[0]*12/10 || bis.Pwgt[1] > tp[1]*12/10 {
		t.Fatalf("pwgt %v strays from target %v", bis.Pwgt, tp)
	}
}
