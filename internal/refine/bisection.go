// Package refine implements the uncoarsening/refinement phase of the
// multilevel scheme (§3.3 of the paper): a two-way partition state with
// incremental gain bookkeeping, the Kernighan-Lin/Fiduccia-Mattheyses pass
// engine, and the five refinement policies the paper evaluates — GR, KLR,
// BGR, BKLR and the hybrid BKLGR.
package refine

import (
	"fmt"

	"mlpart/internal/graph"
	"mlpart/internal/workspace"
)

// Bisection is a 2-way partition of a graph together with the incremental
// state refinement needs: per-part weights, per-vertex internal and
// external degrees, the current edge-cut, and the boundary vertex set.
//
// For a vertex v in part p, ID[v] is the total weight of edges to vertices
// in p and ED[v] the total weight of edges to the other part. The gain of
// moving v is ED[v] - ID[v], and v is a boundary vertex iff ED[v] > 0.
type Bisection struct {
	G *graph.Graph
	// Where[v] is 0 or 1.
	Where []int
	// Pwgt[p] is the total vertex weight of part p.
	Pwgt [2]int
	// ID and ED are the weighted internal and external degrees.
	ID, ED []int
	// Cut is the current edge-cut (sum of weights of crossing edges).
	Cut int

	// Boundary set with O(1) insert/remove/membership.
	bndList  []int
	bndIndex []int // position of v in bndList, or -1
}

// NewBisection builds the full refinement state for the partition `where`
// of g. where is retained, not copied.
func NewBisection(g *graph.Graph, where []int) *Bisection {
	return NewBisectionWS(g, where, nil)
}

// NewBisectionWS is NewBisection drawing the state arrays from ws (a nil ws
// allocates). A pooled bisection is returned to ws with Release, or turned
// into an ordinary heap-owned one with Detach before it escapes the call
// tree that owns ws.
func NewBisectionWS(g *graph.Graph, where []int, ws *workspace.Workspace) *Bisection {
	n := g.NumVertices()
	b := &Bisection{
		G:        g,
		Where:    where,
		ID:       ws.IntFilled(n, 0),
		ED:       ws.IntFilled(n, 0),
		bndIndex: ws.IntFilled(n, -1),
		bndList:  ws.Int(n)[:0],
	}
	for v := 0; v < n; v++ {
		b.Pwgt[where[v]] += g.Vwgt[v]
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		for i, u := range adj {
			if where[u] == where[v] {
				b.ID[v] += wgt[i]
			} else {
				b.ED[v] += wgt[i]
			}
		}
		b.Cut += b.ED[v]
		if b.ED[v] > 0 {
			b.bndInsert(v)
		}
	}
	b.Cut /= 2
	return b
}

// Release returns the bisection's arrays — including Where — to ws; b must
// not be used afterwards. Only call it when every array was either drawn
// from the workspace or is otherwise dead. A no-op for a nil ws.
func (b *Bisection) Release(ws *workspace.Workspace) {
	if ws == nil {
		return
	}
	ws.PutInt(b.Where)
	ws.PutInt(b.ID)
	ws.PutInt(b.ED)
	ws.PutInt(b.bndIndex)
	ws.PutInt(b.bndList)
	b.Where, b.ID, b.ED, b.bndIndex, b.bndList = nil, nil, nil, nil, nil
}

// Detach copies b into freshly allocated arrays, releases the pooled ones
// to ws, and returns the copy — the escape hatch that upholds the pooling
// invariant (no workspace buffer outlives the call tree that obtained it)
// for the bisection a caller keeps. With a nil ws, b is returned unchanged.
func (b *Bisection) Detach(ws *workspace.Workspace) *Bisection {
	if ws == nil {
		return b
	}
	nb := &Bisection{
		G:        b.G,
		Where:    append([]int(nil), b.Where...),
		Pwgt:     b.Pwgt,
		ID:       append([]int(nil), b.ID...),
		ED:       append([]int(nil), b.ED...),
		Cut:      b.Cut,
		bndList:  append([]int(nil), b.bndList...),
		bndIndex: append([]int(nil), b.bndIndex...),
	}
	b.Release(ws)
	return nb
}

// Gain returns the decrease in edge-cut if v moved to the other part.
func (b *Bisection) Gain(v int) int { return b.ED[v] - b.ID[v] }

// IsBoundary reports whether v has at least one edge crossing the cut.
func (b *Bisection) IsBoundary(v int) bool { return b.bndIndex[v] >= 0 }

// Boundary returns the current boundary vertices as a shared slice; callers
// must not modify it and must not hold it across moves.
func (b *Bisection) Boundary() []int { return b.bndList }

func (b *Bisection) bndInsert(v int) {
	if b.bndIndex[v] >= 0 {
		return
	}
	b.bndIndex[v] = len(b.bndList)
	b.bndList = append(b.bndList, v)
}

func (b *Bisection) bndRemove(v int) {
	i := b.bndIndex[v]
	if i < 0 {
		return
	}
	last := len(b.bndList) - 1
	b.bndList[i] = b.bndList[last]
	b.bndIndex[b.bndList[i]] = i
	b.bndList = b.bndList[:last]
	b.bndIndex[v] = -1
}

// Move transfers v to the other part, updating part weights, the cut, its
// own and its neighbors' degrees, and the boundary set. It returns the new
// cut. onGainChange, when non-nil, is invoked for every neighbor whose gain
// changed (after the update), letting refinement keep its priority
// structure in sync.
func (b *Bisection) Move(v int, onGainChange func(u int)) int {
	from := b.Where[v]
	to := 1 - from
	b.Where[v] = to
	b.Pwgt[from] -= b.G.Vwgt[v]
	b.Pwgt[to] += b.G.Vwgt[v]
	b.Cut -= b.Gain(v)
	// v's internal and external degrees swap.
	b.ID[v], b.ED[v] = b.ED[v], b.ID[v]
	if b.ED[v] > 0 {
		b.bndInsert(v)
	} else {
		b.bndRemove(v)
	}
	adj := b.G.Neighbors(v)
	wgt := b.G.EdgeWeights(v)
	for i, u := range adj {
		w := wgt[i]
		if b.Where[u] == to {
			// u gained an internal neighbor.
			b.ID[u] += w
			b.ED[u] -= w
		} else {
			b.ID[u] -= w
			b.ED[u] += w
		}
		if b.ED[u] > 0 {
			b.bndInsert(u)
		} else {
			b.bndRemove(u)
		}
		if onGainChange != nil {
			onGainChange(u)
		}
	}
	return b.Cut
}

// Balance returns max(Pwgt) / (total/2): 1.0 is perfect, larger is worse.
func (b *Bisection) Balance() float64 {
	tot := b.Pwgt[0] + b.Pwgt[1]
	if tot == 0 {
		return 1
	}
	maxw := b.Pwgt[0]
	if b.Pwgt[1] > maxw {
		maxw = b.Pwgt[1]
	}
	return 2 * float64(maxw) / float64(tot)
}

// Verify recomputes all incremental state from scratch and returns an error
// if any field is inconsistent. For tests.
func (b *Bisection) Verify() error {
	fresh := NewBisection(b.G, append([]int(nil), b.Where...))
	if fresh.Cut != b.Cut {
		return fmt.Errorf("refine: cut %d, recomputed %d", b.Cut, fresh.Cut)
	}
	if fresh.Pwgt != b.Pwgt {
		return fmt.Errorf("refine: pwgt %v, recomputed %v", b.Pwgt, fresh.Pwgt)
	}
	for v := range b.Where {
		if fresh.ID[v] != b.ID[v] || fresh.ED[v] != b.ED[v] {
			return fmt.Errorf("refine: degrees of %d: id/ed %d/%d, recomputed %d/%d",
				v, b.ID[v], b.ED[v], fresh.ID[v], fresh.ED[v])
		}
		if fresh.IsBoundary(v) != b.IsBoundary(v) {
			return fmt.Errorf("refine: boundary flag of %d inconsistent", v)
		}
	}
	return nil
}

// Project carries a coarse bisection up to the fine graph it was contracted
// from: fine vertex v inherits the part of its multinode cmap[v]. The
// projected partition has the same cut and part weights by construction
// (the contraction invariant); the returned state is rebuilt on the fine
// graph so refinement can proceed.
func Project(fine *graph.Graph, cmap []int, coarse *Bisection) *Bisection {
	return ProjectWS(fine, cmap, coarse, nil)
}

// ProjectWS is Project drawing the fine-level state from ws (a nil ws
// allocates). The coarse bisection is still intact afterwards; the caller
// typically Releases it once the projection is built.
func ProjectWS(fine *graph.Graph, cmap []int, coarse *Bisection, ws *workspace.Workspace) *Bisection {
	n := fine.NumVertices()
	where := ws.Int(n)
	for v := 0; v < n; v++ {
		where[v] = coarse.Where[cmap[v]]
	}
	return NewBisectionWS(fine, where, ws)
}

// ComputeCut returns the edge-cut of an arbitrary k-way partition vector
// without building refinement state.
func ComputeCut(g *graph.Graph, where []int) int {
	cut := 0
	for v := 0; v < g.NumVertices(); v++ {
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		for i, u := range adj {
			if where[u] != where[v] {
				cut += wgt[i]
			}
		}
	}
	return cut / 2
}
