package refine

import "mlpart/internal/workspace"

// GainBuckets is the bucket priority structure of Fiduccia-Mattheyses:
// an array of doubly-linked vertex lists indexed by gain, supporting O(1)
// insert, remove and update, and amortized O(1) extract-max. The paper's
// implementation uses a hash table with the same operations; buckets are
// the standard choice when gains are small integers bounded by the maximum
// weighted degree.
type GainBuckets struct {
	offset int   // gains live in [-offset, +offset]
	heads  []int // heads[g+offset] = first vertex with gain g, or -1
	next   []int // next[v] = following vertex in v's bucket, or -1
	prev   []int // prev[v] = preceding vertex, or -1 (head)
	gain   []int // current gain of each inserted vertex
	in     []bool
	maxPtr int // index into heads at or above the maximum nonempty bucket
	n      int // number of inserted vertices
}

// NewGainBuckets sizes the structure for nvtxs vertices whose gains are
// bounded by maxGain in absolute value.
func NewGainBuckets(nvtxs, maxGain int) *GainBuckets {
	b := &GainBuckets{}
	b.Init(nvtxs, maxGain, nil)
	return b
}

// Init (re)builds b in place for nvtxs vertices whose gains are bounded by
// maxGain in absolute value, drawing the backing arrays from ws (a nil ws
// allocates). Pair with Free; refinement calls Init/Free once per pass, so
// pooling here removes the dominant per-pass allocations.
func (b *GainBuckets) Init(nvtxs, maxGain int, ws *workspace.Workspace) {
	if maxGain < 1 {
		maxGain = 1
	}
	b.offset = maxGain
	b.heads = ws.IntFilled(2*maxGain+1, -1)
	b.next = ws.Int(nvtxs)
	b.prev = ws.Int(nvtxs)
	b.gain = ws.Int(nvtxs)
	b.in = ws.Bool(nvtxs)
	b.maxPtr = 0
	b.n = 0
}

// Free returns the backing arrays to ws; b must not be used again until the
// next Init. A no-op for a nil ws.
func (b *GainBuckets) Free(ws *workspace.Workspace) {
	if ws == nil {
		return
	}
	ws.PutInt(b.heads)
	ws.PutInt(b.next)
	ws.PutInt(b.prev)
	ws.PutInt(b.gain)
	ws.PutBool(b.in)
	b.heads, b.next, b.prev, b.gain, b.in = nil, nil, nil, nil, nil
}

// reset empties the structure in O(inserted) by walking nothing — callers
// track their own inserted sets; this clears everything in O(buckets+n).
func (b *GainBuckets) Reset() {
	for i := range b.heads {
		b.heads[i] = -1
	}
	for i := range b.in {
		b.in[i] = false
	}
	b.maxPtr = 0
	b.n = 0
}

func (b *GainBuckets) clamp(g int) int {
	if g > b.offset {
		g = b.offset
	}
	if g < -b.offset {
		g = -b.offset
	}
	return g
}

// insert adds v with the given gain. v must not already be inserted.
func (b *GainBuckets) Insert(v, gain int) {
	idx := b.clamp(gain) + b.offset
	b.gain[v] = gain
	b.prev[v] = -1
	b.next[v] = b.heads[idx]
	if b.heads[idx] >= 0 {
		b.prev[b.heads[idx]] = v
	}
	b.heads[idx] = v
	b.in[v] = true
	if idx > b.maxPtr {
		b.maxPtr = idx
	}
	b.n++
}

// remove deletes v if present; it is a no-op otherwise.
func (b *GainBuckets) Remove(v int) {
	if !b.in[v] {
		return
	}
	idx := b.clamp(b.gain[v]) + b.offset
	if b.prev[v] >= 0 {
		b.next[b.prev[v]] = b.next[v]
	} else {
		b.heads[idx] = b.next[v]
	}
	if b.next[v] >= 0 {
		b.prev[b.next[v]] = b.prev[v]
	}
	b.in[v] = false
	b.n--
}

// update changes v's gain, repositioning it; v must be inserted.
func (b *GainBuckets) Update(v, gain int) {
	b.Remove(v)
	b.Insert(v, gain)
}

// contains reports whether v is currently inserted.
func (b *GainBuckets) Contains(v int) bool { return b.in[v] }

// empty reports whether no vertices are inserted.
func (b *GainBuckets) Empty() bool { return b.n == 0 }

// popMax removes and returns a vertex of maximum gain. ok is false when the
// structure is empty.
func (b *GainBuckets) PopMax() (v int, ok bool) {
	if b.n == 0 {
		return -1, false
	}
	for b.maxPtr > 0 && b.heads[b.maxPtr] < 0 {
		b.maxPtr--
	}
	// maxPtr can undershoot after removals followed by inserts into lower
	// buckets only; scan down defensively.
	for i := b.maxPtr; i >= 0; i-- {
		if b.heads[i] >= 0 {
			b.maxPtr = i
			v = b.heads[i]
			b.Remove(v)
			return v, true
		}
	}
	return -1, false
}
