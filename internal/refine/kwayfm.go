// Boundary k-way refinement (the BKWAY policy): the paper's §3.3 insight —
// only boundary vertices ever move, so restricting the search to the
// boundary buys KL-quality cuts at a fraction of the cost — applied to the
// direct k-way path. Where kway.Refine sweeps every vertex of the graph on
// every pass, this engine maintains an explicit boundary set plus a
// per-vertex best-move structure (best target partition and gain) and only
// ever touches boundary vertices.
//
// Each pass is a propose/commit protocol:
//
//  1. Snapshot: the current boundary is captured and permuted with a
//     pass-derived seed.
//  2. Propose (parallelizable): for every snapshot vertex, the best
//     admissible target partition and its gain are computed against the
//     start-of-pass state and recorded in the best-move arrays. Proposals
//     read shared state but write only their own vertex's slot, so the
//     phase splits across a worker pool without locks.
//  3. Commit (serial, in snapshot order): every proposal is re-validated
//     against the live state — the gain is recomputed, the balance
//     constraint re-checked — and applied only if still profitable.
//
// Because proposals are independent of how the snapshot is chunked across
// workers and commits happen in one fixed order, the result is
// bit-identical for every worker count: Workers=0 is the deterministic
// golden reference and Workers=N is the same partition, faster.
package refine

import (
	"sync"
	"time"

	"mlpart/internal/faults"
	"mlpart/internal/kway"
	"mlpart/internal/trace"
	"mlpart/internal/workspace"
)

// KWayOptions configures boundary k-way refinement (RefineKWay).
type KWayOptions struct {
	// MaxPasses bounds the number of propose/commit passes (0 means 8).
	MaxPasses int
	// Ubfactor is the allowed imbalance per part (0 means 1.05).
	Ubfactor float64
	// Seed drives the per-pass visit permutations; a fixed seed fixes the
	// result bit-for-bit.
	Seed int64
	// Workers is the propose-phase fan-out; <= 1 proposes serially. The
	// result is bit-identical for every worker count — commits are always
	// serial in snapshot order — so Workers is a scheduling knob, never a
	// quality one.
	Workers int
	// Workspace, when non-nil, supplies pooled scratch for every array the
	// engine needs; the move loop then runs allocation-free in steady
	// state. Results are identical either way.
	Workspace *workspace.Workspace
	// Level is the hierarchy level reported in trace events (engine-set).
	Level int
	// Tracer, when non-nil, receives one KindPass event per pass with the
	// boundary size, moves and resulting cut. Results are bit-identical
	// with or without a tracer.
	Tracer trace.Tracer
	// Counters, when non-nil, accumulates pass and move totals.
	Counters *trace.Counters
	// Injector, when non-nil, is consulted at every pass boundary
	// (faults.SiteKWayPass); an injected error abandons the remaining
	// passes, keeping the moves committed so far.
	Injector *faults.Injector
}

func (o KWayOptions) withDefaults() KWayOptions {
	if o.MaxPasses <= 0 {
		o.MaxPasses = 8
	}
	if o.Ubfactor <= 1 {
		o.Ubfactor = 1.05
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// splitmix64 is the per-pass permutation generator: a tiny value-type PRNG
// so the move loop stays allocation-free (math/rand.New allocates).
type splitmix64 struct{ x uint64 }

func (s *splitmix64) next() uint64 {
	s.x += 0x9E3779B97F4A7C15
	z := s.x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). The modulo bias is negligible at any
// boundary size this engine sees and keeps the draw branch-free.
func (s *splitmix64) intn(n int) int {
	return int(s.next() % uint64(n))
}

// kwayRefiner is the engine state: the boundary hash over the k-way
// partition plus the per-vertex best-move structure. Every array is pooled.
type kwayRefiner struct {
	p *kway.Partition
	// ext[v] is the total weight of v's edges that cross parts; v is a
	// boundary vertex iff ext[v] > 0.
	ext []int
	// Boundary set with O(1) insert/remove/membership.
	bndList  []int
	bndIndex []int
	// Best-move structure: bestTo[v] is the proposed target partition of
	// boundary vertex v (-1 when no admissible move exists) and
	// bestGain[v] the cut improvement of that move under the state it was
	// proposed against.
	bestTo   []int
	bestGain []int
}

func (r *kwayRefiner) bndInsert(v int) {
	if r.bndIndex[v] >= 0 {
		return
	}
	r.bndIndex[v] = len(r.bndList)
	r.bndList = append(r.bndList, v)
}

func (r *kwayRefiner) bndRemove(v int) {
	i := r.bndIndex[v]
	if i < 0 {
		return
	}
	last := len(r.bndList) - 1
	r.bndList[i] = r.bndList[last]
	r.bndIndex[r.bndList[i]] = i
	r.bndList = r.bndList[:last]
	r.bndIndex[v] = -1
}

// bndFix re-derives v's boundary membership from ext[v].
func (r *kwayRefiner) bndFix(v int) {
	if r.ext[v] > 0 {
		r.bndInsert(v)
	} else {
		r.bndRemove(v)
	}
}

// RefineKWay runs boundary k-way refinement on p in place and returns the
// final cut. See the package comment of this file for the propose/commit
// protocol; the result is deterministic for a fixed seed and identical for
// every Workers value.
func RefineKWay(p *kway.Partition, opts KWayOptions) int {
	opts = opts.withDefaults()
	g := p.G
	n := g.NumVertices()
	k := p.K
	if n == 0 || k < 2 {
		return p.Cut
	}
	tot := g.TotalVertexWeight()
	target := tot / k
	maxVwgt := 0
	for _, w := range g.Vwgt {
		if w > maxVwgt {
			maxVwgt = w
		}
	}
	// Same slackened tolerance as kway.Refine: the imbalance factor, never
	// tighter than one maximum vertex above target (heavy multinodes on
	// coarse levels must stay movable).
	limit := int(opts.Ubfactor * float64(target))
	if lim2 := target + maxVwgt; lim2 > limit {
		limit = lim2
	}

	ws := opts.Workspace
	if ws == nil {
		ws = workspace.Get()
		defer workspace.Put(ws)
	}
	// r stays a stack value: the propose workers are named functions taking
	// explicit arguments, never closures over r, so the serial move loop
	// runs without a single heap allocation in steady state.
	r := kwayRefiner{
		p:        p,
		ext:      ws.Int(n),
		bndIndex: ws.IntFilled(n, -1),
		bndList:  ws.Int(n)[:0],
		bestTo:   ws.Int(n),
		bestGain: ws.Int(n),
	}
	// Initial boundary build: one sweep over the edges.
	for v := 0; v < n; v++ {
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		e := 0
		pv := p.Where[v]
		for i, u := range adj {
			if p.Where[u] != pv {
				e += wgt[i]
			}
		}
		r.ext[v] = e
		if e > 0 {
			r.bndInsert(v)
		}
	}

	// order holds the permuted boundary snapshot of the current pass; the
	// per-worker degree scratch lives in two W*k slabs with monotonically
	// increasing stamps so it never needs clearing between passes.
	order := ws.Int(n)
	workers := opts.Workers
	edSlab := ws.Int(workers * k)
	seenSlab := ws.IntFilled(workers*k, 0)
	stamps := ws.IntFilled(workers, 0)
	rng := splitmix64{x: uint64(opts.Seed)*0x9E3779B97F4A7C15 + 0x94D049BB133111EB}

	for pass := 0; pass < opts.MaxPasses; pass++ {
		if ierr := opts.Injector.Fire(faults.SiteKWayPass); ierr != nil {
			// Abandon the remaining passes; everything committed so far is
			// a valid, balanced partition.
			break
		}
		bsize := len(r.bndList)
		if bsize == 0 {
			break
		}
		var t0 time.Time
		if opts.Tracer != nil {
			t0 = time.Now()
		}

		// Snapshot and permute the boundary (Fisher-Yates on a copy, so
		// mid-pass boundary churn cannot perturb the visit order).
		snap := order[:bsize]
		copy(snap, r.bndList)
		for i := bsize - 1; i > 0; i-- {
			j := rng.intn(i + 1)
			snap[i], snap[j] = snap[j], snap[i]
		}

		// Propose: each worker fills the best-move slots of its chunk. The
		// phase only reads shared state, so chunking never changes results.
		w := workers
		if maxW := bsize/512 + 1; w > maxW {
			w = maxW
		}
		if w <= 1 {
			kwayPropose(p, r.bestTo, r.bestGain, snap, edSlab[:k], seenSlab[:k], &stamps[0], limit)
		} else {
			r.proposeParallel(snap, w, k, edSlab, seenSlab, stamps, limit)
		}

		// Commit serially in snapshot order, re-validating every proposal
		// against the live state.
		moves, posGain := r.commit(snap, edSlab[:k], seenSlab[:k], &stamps[0], limit)

		if opts.Counters != nil {
			opts.Counters.RefinePasses++
			opts.Counters.RefineMoves += moves
			opts.Counters.PositiveGainMoves += posGain
		}
		if opts.Tracer != nil {
			opts.Tracer.Event(trace.Event{
				Kind:              trace.KindPass,
				Level:             opts.Level,
				Pass:              pass,
				Moves:             moves,
				PositiveGainMoves: posGain,
				Boundary:          bsize,
				Cut:               p.Cut,
				Algorithm:         "BKWAY",
				ElapsedNS:         time.Since(t0).Nanoseconds(),
			})
		}
		if moves == 0 {
			break
		}
	}

	ws.PutInt(r.ext)
	ws.PutInt(r.bndIndex)
	ws.PutInt(r.bndList)
	ws.PutInt(r.bestTo)
	ws.PutInt(r.bestGain)
	ws.PutInt(order)
	ws.PutInt(edSlab)
	ws.PutInt(seenSlab)
	ws.PutInt(stamps)
	return p.Cut
}

// proposeParallel fans the propose phase out over w workers, the calling
// goroutine taking the first chunk. Workers are named functions with
// explicit arguments (no closures), so the parallel machinery costs the
// serial path nothing; worker panics are captured on the worker's own
// stack and re-raised here after the join, because recover never runs
// across goroutines and an unhandled worker panic would kill the process.
func (r *kwayRefiner) proposeParallel(snap []int, w, k int, edSlab, seenSlab, stamps []int, limit int) {
	bsize := len(snap)
	chunk := (bsize + w - 1) / w
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicked any
	for wi := 1; wi < w; wi++ {
		lo := wi * chunk
		hi := lo + chunk
		if hi > bsize {
			hi = bsize
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go kwayProposeWorker(&wg, &mu, &panicked, r.p, r.bestTo, r.bestGain,
			snap[lo:hi], edSlab[wi*k:(wi+1)*k], seenSlab[wi*k:(wi+1)*k], &stamps[wi], limit)
	}
	kwayPropose(r.p, r.bestTo, r.bestGain, snap[:chunk], edSlab[:k], seenSlab[:k], &stamps[0], limit)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

func kwayProposeWorker(wg *sync.WaitGroup, mu *sync.Mutex, panicked *any,
	p *kway.Partition, bestTo, bestGain, snap, ed, seen []int, stamp *int, limit int) {
	defer wg.Done()
	defer func() {
		if rec := recover(); rec != nil {
			mu.Lock()
			if *panicked == nil {
				*panicked = rec
			}
			mu.Unlock()
		}
	}()
	kwayPropose(p, bestTo, bestGain, snap, ed, seen, stamp, limit)
}

// kwayPropose fills the best-move slots for the given snapshot vertices:
// the admissible adjacent part with the highest gain (ties broken toward
// the lighter part, then the lower part id), or -1 when no move is worth
// committing. ed/seen/stamp are the caller's private degree scratch; the
// function only reads shared partition state and writes its own vertices'
// best-move slots, which is what makes chunking result-neutral.
func kwayPropose(p *kway.Partition, bestTo, bestGain, snap, ed, seen []int, stamp *int, limit int) {
	g := p.G
	for _, v := range snap {
		bestTo[v] = -1
		from := p.Where[v]
		vw := g.Vwgt[v]
		if p.Pwgt[from]-vw <= 0 {
			// Never propose emptying a part.
			continue
		}
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		*stamp++
		s := *stamp
		for i, u := range adj {
			pu := p.Where[u]
			if seen[pu] != s {
				seen[pu] = s
				ed[pu] = 0
			}
			ed[pu] += wgt[i]
		}
		id := 0
		if seen[from] == s {
			id = ed[from]
		}
		best, bestG := -1, 0
		for i := range adj {
			to := p.Where[adj[i]]
			if to == from {
				continue
			}
			if p.Pwgt[to]+vw > limit {
				continue
			}
			gain := ed[to] - id
			var better bool
			if best < 0 {
				// First candidate: positive gain, or zero gain that
				// strictly improves the weight spread.
				better = gain > 0 || (gain == 0 && p.Pwgt[to]+vw < p.Pwgt[from])
			} else {
				better = gain > bestG ||
					(gain == bestG && (p.Pwgt[to] < p.Pwgt[best] ||
						(p.Pwgt[to] == p.Pwgt[best] && to < best)))
			}
			if better {
				best, bestG = to, gain
			}
		}
		if best >= 0 {
			bestTo[v] = best
			bestGain[v] = bestG
		}
	}
}

// commit applies the proposals in snapshot order. Each proposal's gain is
// recomputed against the live state (earlier commits of this pass may have
// changed it) and the balance constraints re-checked; a move is applied
// only if it still reduces the cut, or keeps it while strictly improving
// the weight spread. Returns the moves made and how many had positive gain.
func (r *kwayRefiner) commit(snap []int, ed, seen []int, stamp *int, limit int) (moves, posGain int) {
	p := r.p
	g := p.G
	for _, v := range snap {
		to := r.bestTo[v]
		if to < 0 {
			continue
		}
		from := p.Where[v]
		if from == to {
			continue
		}
		vw := g.Vwgt[v]
		if p.Pwgt[to]+vw > limit || p.Pwgt[from]-vw <= 0 {
			continue
		}
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		*stamp++
		s := *stamp
		totW := 0
		for i, u := range adj {
			pu := p.Where[u]
			if seen[pu] != s {
				seen[pu] = s
				ed[pu] = 0
			}
			ed[pu] += wgt[i]
			totW += wgt[i]
		}
		if seen[to] != s {
			// The proposed target is no longer adjacent; a commit would
			// only grow the cut.
			continue
		}
		id := 0
		if seen[from] == s {
			id = ed[from]
		}
		gain := ed[to] - id
		if gain < 0 || (gain == 0 && p.Pwgt[to]+vw >= p.Pwgt[from]) {
			continue
		}
		// Apply: partition vector, weights, cut, then the incremental
		// external degrees and boundary set of v and its neighbors.
		p.Where[v] = to
		p.Pwgt[from] -= vw
		p.Pwgt[to] += vw
		p.Cut -= gain
		r.ext[v] = totW - ed[to]
		r.bndFix(v)
		for i, u := range adj {
			switch p.Where[u] {
			case from:
				r.ext[u] += wgt[i]
				r.bndFix(u)
			case to:
				r.ext[u] -= wgt[i]
				r.bndFix(u)
			}
		}
		moves++
		if gain > 0 {
			posGain++
		}
	}
	return moves, posGain
}
