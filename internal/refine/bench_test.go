package refine

import (
	"math/rand"
	"testing"

	"mlpart/internal/matgen"
)

func benchBisection(b *testing.B, seed int64) (*Bisection, []int) {
	b.Helper()
	g := matgen.FE3DTetra(16, 16, 16, seed)
	n := g.NumVertices()
	where := make([]int, n)
	for i := n / 2; i < n; i++ {
		where[i] = 1
	}
	return NewBisection(g, where), where
}

func BenchmarkNewBisection(b *testing.B) {
	b.ReportAllocs()
	g := matgen.FE3DTetra(16, 16, 16, 1)
	n := g.NumVertices()
	where := make([]int, n)
	for i := n / 2; i < n; i++ {
		where[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewBisection(g, where)
	}
}

func BenchmarkMove(b *testing.B) {
	b.ReportAllocs()
	bis, _ := benchBisection(b, 2)
	rng := rand.New(rand.NewSource(3))
	n := bis.G.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bis.Move(rng.Intn(n), nil)
	}
}

func BenchmarkRefinePolicies(b *testing.B) {
	b.ReportAllocs()
	for _, p := range []Policy{GR, KLR, BGR, BKLR, BKLGR} {
		b.Run(p.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				bis, _ := benchBisection(b, 4)
				b.StartTimer()
				Refine(bis, p, Options{})
			}
		})
	}
}

func BenchmarkGainBucketsOps(b *testing.B) {
	b.ReportAllocs()
	const n = 1 << 14
	bk := NewGainBuckets(n, 64)
	rng := rand.New(rand.NewSource(5))
	for v := 0; v < n; v++ {
		bk.Insert(v, rng.Intn(129)-64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, ok := bk.PopMax()
		if !ok {
			b.StopTimer()
			for u := 0; u < n; u++ {
				bk.Insert(u, rng.Intn(129)-64)
			}
			b.StartTimer()
			continue
		}
		bk.Insert(v, rng.Intn(129)-64)
	}
}
