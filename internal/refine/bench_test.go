package refine

import (
	"fmt"
	"math/rand"
	"testing"

	"mlpart/internal/kway"
	"mlpart/internal/matgen"
	"mlpart/internal/workspace"
)

func benchBisection(b *testing.B, seed int64) (*Bisection, []int) {
	b.Helper()
	g := matgen.FE3DTetra(16, 16, 16, seed)
	n := g.NumVertices()
	where := make([]int, n)
	for i := n / 2; i < n; i++ {
		where[i] = 1
	}
	return NewBisection(g, where), where
}

func BenchmarkNewBisection(b *testing.B) {
	b.ReportAllocs()
	g := matgen.FE3DTetra(16, 16, 16, 1)
	n := g.NumVertices()
	where := make([]int, n)
	for i := n / 2; i < n; i++ {
		where[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewBisection(g, where)
	}
}

func BenchmarkMove(b *testing.B) {
	b.ReportAllocs()
	bis, _ := benchBisection(b, 2)
	rng := rand.New(rand.NewSource(3))
	n := bis.G.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bis.Move(rng.Intn(n), nil)
	}
}

func BenchmarkRefinePolicies(b *testing.B) {
	b.ReportAllocs()
	for _, p := range []Policy{GR, KLR, BGR, BKLR, BKLGR} {
		b.Run(p.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				bis, _ := benchBisection(b, 4)
				b.StartTimer()
				Refine(bis, p, Options{})
			}
		})
	}
}

// BenchmarkRefineKWay measures full boundary k-way refinement of a random
// 16-way partition of a 3D FE mesh. The partition is restored in place
// between iterations and all scratch comes from one pooled workspace, so
// the serial engine must report 0 allocs/op: the move loop allocates
// nothing in steady state. The parallel variants pay only the per-pass
// goroutine fan-out.
func BenchmarkRefineKWay(b *testing.B) {
	g := matgen.FE3DTetra(16, 16, 16, 6)
	const k = 16
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(7))
	baseWhere := make([]int, n)
	for i := range baseWhere {
		baseWhere[i] = rng.Intn(k)
	}
	for _, workers := range []int{0, 2, 4} {
		name := "serial"
		if workers > 0 {
			name = fmt.Sprintf("workers=%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			p := kway.NewPartition(g, k, append([]int(nil), baseWhere...))
			basePwgt := append([]int(nil), p.Pwgt...)
			baseCut := p.Cut
			ws := workspace.Get()
			defer workspace.Put(ws)
			opts := KWayOptions{Seed: 9, Workers: workers, Workspace: ws}
			RefineKWay(p, opts) // warm the pooled buffers to full size
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(p.Where, baseWhere)
				copy(p.Pwgt, basePwgt)
				p.Cut = baseCut
				RefineKWay(p, opts)
			}
		})
	}
}

func BenchmarkGainBucketsOps(b *testing.B) {
	b.ReportAllocs()
	const n = 1 << 14
	bk := NewGainBuckets(n, 64)
	rng := rand.New(rand.NewSource(5))
	for v := 0; v < n; v++ {
		bk.Insert(v, rng.Intn(129)-64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, ok := bk.PopMax()
		if !ok {
			b.StopTimer()
			for u := 0; u < n; u++ {
				bk.Insert(u, rng.Intn(129)-64)
			}
			b.StartTimer()
			continue
		}
		bk.Insert(v, rng.Intn(129)-64)
	}
}
