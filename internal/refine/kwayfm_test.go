package refine

import (
	"math/rand"
	"testing"

	"mlpart/internal/faults"
	"mlpart/internal/kway"
	"mlpart/internal/matgen"
	"mlpart/internal/trace"
	"mlpart/internal/workspace"
)

// randomKWhere assigns every vertex a uniform random part in [0, k).
func randomKWhere(n, k int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	where := make([]int, n)
	for i := range where {
		where[i] = rng.Intn(k)
	}
	return where
}

// verifyKWay recomputes the partition's cut and part weights from scratch
// and fails the test on any drift from the incrementally maintained state.
func verifyKWay(t *testing.T, p *kway.Partition) {
	t.Helper()
	if got := ComputeCut(p.G, p.Where); got != p.Cut {
		t.Fatalf("incremental cut %d, recomputed %d", p.Cut, got)
	}
	pwgt := make([]int, p.K)
	for v, part := range p.Where {
		if part < 0 || part >= p.K {
			t.Fatalf("Where[%d] = %d out of [0,%d)", v, part, p.K)
		}
		pwgt[part] += p.G.Vwgt[v]
	}
	for i, w := range pwgt {
		if w != p.Pwgt[i] {
			t.Fatalf("Pwgt[%d] = %d, recomputed %d", i, p.Pwgt[i], w)
		}
	}
}

func TestRefineKWayMaintainsInvariants(t *testing.T) {
	g := matgen.Mesh2DTri(20, 20, 0.02, 7)
	const k = 5
	p := kway.NewPartition(g, k, randomKWhere(g.NumVertices(), k, 3))
	before := p.Cut
	after := RefineKWay(p, KWayOptions{Seed: 1})
	if after > before {
		t.Errorf("cut worsened %d -> %d", before, after)
	}
	if after != p.Cut {
		t.Errorf("returned cut %d, state says %d", after, p.Cut)
	}
	verifyKWay(t, p)
}

func TestRefineKWayImprovesRandomPartition(t *testing.T) {
	// A random k-way assignment of a mesh cuts most edges; boundary
	// refinement should reduce that dramatically.
	g := matgen.Grid2D(30, 30)
	const k = 4
	p := kway.NewPartition(g, k, randomKWhere(g.NumVertices(), k, 9))
	before := p.Cut
	after := RefineKWay(p, KWayOptions{Seed: 2})
	if after >= before*3/4 {
		t.Errorf("weak improvement %d -> %d", before, after)
	}
	verifyKWay(t, p)
}

func TestRefineKWayDeterministicForFixedSeed(t *testing.T) {
	g := matgen.FE3DTetra(8, 8, 8, 5)
	const k = 6
	run := func() []int {
		p := kway.NewPartition(g, k, randomKWhere(g.NumVertices(), k, 11))
		RefineKWay(p, KWayOptions{Seed: 42})
		return p.Where
	}
	a, b := run(), run()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("two serial runs with the same seed diverge at vertex %d", v)
		}
	}
}

// TestRefineKWayWorkerParity is the engine's central contract: the
// partition is bit-identical for every worker count, because proposals are
// independent of how the boundary snapshot is chunked and commits are
// always serial in snapshot order. Workers is scheduling, never quality.
func TestRefineKWayWorkerParity(t *testing.T) {
	g := matgen.FE3DTetra(10, 10, 10, 5)
	const k = 8
	base := randomKWhere(g.NumVertices(), k, 13)
	run := func(workers int) ([]int, int) {
		p := kway.NewPartition(g, k, append([]int(nil), base...))
		cut := RefineKWay(p, KWayOptions{Seed: 7, Workers: workers})
		verifyKWay(t, p)
		return p.Where, cut
	}
	serialWhere, serialCut := run(0)
	for _, workers := range []int{1, 2, 3, 4, 8, 16} {
		where, cut := run(workers)
		if cut != serialCut {
			t.Errorf("Workers=%d: cut %d, serial %d", workers, cut, serialCut)
		}
		for v := range where {
			if where[v] != serialWhere[v] {
				t.Fatalf("Workers=%d: Where[%d] = %d, serial %d", workers, v, where[v], serialWhere[v])
			}
		}
	}
}

func TestRefineKWayRespectsBalance(t *testing.T) {
	g := matgen.Mesh2DTri(25, 25, 0, 10)
	const k = 5
	const ub = 1.1
	// Start from a balanced striped partition; refinement must keep every
	// part within tolerance.
	n := g.NumVertices()
	where := make([]int, n)
	for i := range where {
		where[i] = i * k / n
	}
	p := kway.NewPartition(g, k, where)
	RefineKWay(p, KWayOptions{Seed: 3, Ubfactor: ub})
	verifyKWay(t, p)
	tot := g.TotalVertexWeight()
	maxVwgt := 0
	for _, w := range g.Vwgt {
		if w > maxVwgt {
			maxVwgt = w
		}
	}
	limit := int(ub * float64(tot/k))
	if l2 := tot/k + maxVwgt; l2 > limit {
		limit = l2
	}
	for i, w := range p.Pwgt {
		if w > limit {
			t.Errorf("Pwgt[%d] = %d exceeds limit %d", i, w, limit)
		}
		if w <= 0 {
			t.Errorf("Pwgt[%d] = %d: part emptied", i, w)
		}
	}
}

func TestRefineKWayPooledMatchesAllocating(t *testing.T) {
	g := matgen.Grid2D(24, 24)
	const k = 6
	base := randomKWhere(g.NumVertices(), k, 17)
	pooled := kway.NewPartition(g, k, append([]int(nil), base...))
	plain := kway.NewPartition(g, k, append([]int(nil), base...))
	ws := workspace.Get()
	defer workspace.Put(ws)
	cutPooled := RefineKWay(pooled, KWayOptions{Seed: 5, Workspace: ws})
	cutPlain := RefineKWay(plain, KWayOptions{Seed: 5})
	if cutPooled != cutPlain {
		t.Fatalf("pooled cut %d, allocating cut %d", cutPooled, cutPlain)
	}
	for v := range pooled.Where {
		if pooled.Where[v] != plain.Where[v] {
			t.Fatalf("pooled and allocating runs diverge at vertex %d", v)
		}
	}
}

func TestRefineKWayTraceEvents(t *testing.T) {
	g := matgen.Grid2D(20, 20)
	const k = 4
	p := kway.NewPartition(g, k, randomKWhere(g.NumVertices(), k, 19))
	col := &trace.Collector{}
	ctr := &trace.Counters{}
	RefineKWay(p, KWayOptions{Seed: 1, Tracer: col, Counters: ctr, Level: 2})
	events := col.Events()
	if len(events) == 0 {
		t.Fatal("no trace events emitted")
	}
	moves := 0
	for i, e := range events {
		if e.Kind != trace.KindPass || e.Algorithm != "BKWAY" {
			t.Fatalf("event %d: kind %q algorithm %q", i, e.Kind, e.Algorithm)
		}
		if e.Level != 2 || e.Pass != i {
			t.Errorf("event %d: level %d pass %d", i, e.Level, e.Pass)
		}
		if e.Boundary <= 0 {
			t.Errorf("event %d: boundary size %d, want > 0", i, e.Boundary)
		}
		moves += e.Moves
	}
	last := events[len(events)-1]
	if last.Cut != p.Cut {
		t.Errorf("last pass reports cut %d, partition has %d", last.Cut, p.Cut)
	}
	if ctr.RefinePasses != len(events) || ctr.RefineMoves != moves {
		t.Errorf("counters passes=%d moves=%d, events say %d/%d",
			ctr.RefinePasses, ctr.RefineMoves, len(events), moves)
	}
}

// TestRefineKWayFaultInjection pins the kway/pass site contract: an
// injected error abandons the remaining passes and keeps the moves
// committed so far — always a structurally valid partition.
func TestRefineKWayFaultInjection(t *testing.T) {
	g := matgen.Grid2D(20, 20)
	const k = 4
	base := randomKWhere(g.NumVertices(), k, 23)

	// Firing on the first pass boundary means no pass runs at all.
	inj := faults.MustParse("kway/pass=error@1")
	p := kway.NewPartition(g, k, append([]int(nil), base...))
	before := p.Cut
	after := RefineKWay(p, KWayOptions{Seed: 1, Injector: inj})
	if after != before {
		t.Errorf("error at the first pass boundary still moved vertices: %d -> %d", before, after)
	}
	if inj.HitCount(faults.SiteKWayPass) != 1 {
		t.Errorf("site hit %d times, want 1", inj.HitCount(faults.SiteKWayPass))
	}

	// Firing on the second boundary keeps pass one's committed moves.
	inj2 := faults.MustParse("kway/pass=error@2")
	p2 := kway.NewPartition(g, k, append([]int(nil), base...))
	after2 := RefineKWay(p2, KWayOptions{Seed: 1, Injector: inj2})
	if after2 >= before {
		t.Errorf("one committed pass should improve a random partition: %d -> %d", before, after2)
	}
	verifyKWay(t, p2)
}

func TestRefineKWayDegenerateInputs(t *testing.T) {
	// k = 1: nothing to refine.
	g := matgen.Grid2D(5, 5)
	p := kway.NewPartition(g, 1, make([]int, g.NumVertices()))
	if cut := RefineKWay(p, KWayOptions{}); cut != 0 {
		t.Errorf("k=1 cut = %d, want 0", cut)
	}
	// One vertex per part: every vertex is boundary but no move can be
	// applied (each would empty its source part); must converge cleanly.
	p2 := kway.NewPartition(g, 25, seqWhere(g.NumVertices()))
	RefineKWay(p2, KWayOptions{Seed: 1})
	verifyKWay(t, p2)
}

func seqWhere(n int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = i
	}
	return w
}
