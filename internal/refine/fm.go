package refine

import (
	"fmt"
	"time"

	"mlpart/internal/trace"
	"mlpart/internal/workspace"
)

// Policy selects the refinement algorithm run after each projection step
// of the uncoarsening phase.
type Policy int

const (
	// NoRefine disables refinement (used by the paper's Table 3, where the
	// initial partition is projected unchanged).
	NoRefine Policy = iota
	// GR — greedy refinement — is a single Kernighan-Lin pass.
	GR
	// KLR — Kernighan-Lin refinement — iterates passes until no
	// improvement is found.
	KLR
	// BGR — boundary greedy refinement — is a single pass whose priority
	// structure holds only boundary vertices.
	BGR
	// BKLR — boundary Kernighan-Lin refinement — iterates boundary passes
	// until convergence.
	BKLR
	// BKLGR combines BKLR and BGR: BKLR while the boundary of the current
	// graph is small (< 2% of the original vertex count), BGR afterwards.
	BKLGR
	// BKWAY — boundary k-way refinement — is the direct k-way engine of
	// kwayfm.go: greedy moves restricted to an explicitly maintained
	// boundary set, with optionally parallel propose phases. On the 2-way
	// bisection path it behaves exactly like BKLGR (the boundary engine
	// needs a k-way partition object, which recursive bisection does not
	// build); the policy changes behavior only where a direct k-way
	// uncoarsening runs (Options.KWayRefine / PartitionDirectKWay).
	BKWAY
)

// String returns the policy's abbreviation as used in the paper.
func (p Policy) String() string {
	switch p {
	case NoRefine:
		return "NONE"
	case GR:
		return "GR"
	case KLR:
		return "KLR"
	case BGR:
		return "BGR"
	case BKLR:
		return "BKLR"
	case BKLGR:
		return "BKLGR"
	case BKWAY:
		return "BKWAY"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Valid reports whether p is one of the defined policies; Refine panics
// on anything else, so user-reachable entry points must gate on this.
func (p Policy) Valid() bool { return p >= NoRefine && p <= BKWAY }

// ParsePolicy converts an abbreviation to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "NONE":
		return NoRefine, nil
	case "GR":
		return GR, nil
	case "KLR":
		return KLR, nil
	case "BGR":
		return BGR, nil
	case "BKLR":
		return BKLR, nil
	case "BKLGR":
		return BKLGR, nil
	case "BKWAY":
		return BKWAY, nil
	}
	return 0, fmt.Errorf("refine: unknown refinement policy %q", s)
}

// Options configures refinement.
type Options struct {
	// StopWindow is the paper's x: a pass ends after this many consecutive
	// moves that fail to improve the edge-cut, and those moves are undone.
	// The paper reports x = 50 works well; 0 means 50.
	StopWindow int
	// MaxPasses bounds the iterated policies (KLR, BKLR); 0 means 8.
	MaxPasses int
	// Ubfactor is the allowed imbalance: each part may weigh up to
	// Ubfactor times its target. 0 means 1.05.
	Ubfactor float64
	// TargetPwgt gives the desired weight of each part. Zero means an
	// even split of the total.
	TargetPwgt [2]int
	// OrigNvtxs is the vertex count of the original (finest) graph, used
	// by BKLGR's 2% switch rule. 0 means "use the current graph's size".
	OrigNvtxs int
	// Workspace, when non-nil, supplies pooled scratch buffers (gain
	// buckets, lock flags, the move journal) so refinement passes run
	// allocation-free. Results are identical either way.
	Workspace *workspace.Workspace
	// Level is the hierarchy level reported in trace events (engine-set;
	// purely observational).
	Level int
	// Tracer, when non-nil, receives one KindPass event per FM pass.
	// Results are bit-identical with or without a tracer.
	Tracer trace.Tracer
	// Counters, when non-nil, accumulates pass and move totals across
	// calls (the cheap aggregation path used even when Tracer is nil).
	Counters *trace.Counters
}

func (o Options) withDefaults(b *Bisection) Options {
	if o.StopWindow <= 0 {
		o.StopWindow = 50
	}
	if o.MaxPasses <= 0 {
		o.MaxPasses = 8
	}
	if o.Ubfactor <= 1 {
		o.Ubfactor = 1.05
	}
	if o.TargetPwgt[0] == 0 && o.TargetPwgt[1] == 0 {
		tot := b.Pwgt[0] + b.Pwgt[1]
		o.TargetPwgt[0] = tot / 2
		o.TargetPwgt[1] = tot - tot/2
	}
	if o.OrigNvtxs <= 0 {
		o.OrigNvtxs = b.G.NumVertices()
	}
	return o
}

// maxAllowed returns the heaviest each part may become: the imbalance
// tolerance, slackened by the largest vertex weight so that coarse graphs
// (whose multinodes are heavy) are never deadlocked.
func maxAllowed(b *Bisection, o Options) [2]int {
	maxVwgt := 0
	for _, w := range b.G.Vwgt {
		if w > maxVwgt {
			maxVwgt = w
		}
	}
	var lim [2]int
	for p := 0; p < 2; p++ {
		byFactor := int(o.Ubfactor * float64(o.TargetPwgt[p]))
		bySlack := o.TargetPwgt[p] + maxVwgt
		if byFactor > bySlack {
			lim[p] = byFactor
		} else {
			lim[p] = bySlack
		}
	}
	return lim
}

// Refine runs the given policy on b in place and returns the final cut.
func Refine(b *Bisection, policy Policy, opts Options) int {
	opts = opts.withDefaults(b)
	switch policy {
	case NoRefine:
	case GR:
		fmPass(b, opts, false, 0)
	case KLR:
		iterate(b, opts, false)
	case BGR:
		fmPass(b, opts, true, 0)
	case BKLR:
		iterate(b, opts, true)
	case BKLGR:
		// The hybrid rule from §3.3: precise multi-pass boundary refinement
		// while the boundary is small relative to the original graph,
		// single-pass boundary refinement once it is large.
		if len(b.Boundary())*50 < opts.OrigNvtxs { // boundary < 2% of original n
			iterate(b, opts, true)
		} else {
			fmPass(b, opts, true, 0)
		}
	case BKWAY:
		// The boundary k-way engine (kwayfm.go) only exists on the direct
		// k-way path; on a 2-way bisection BKWAY means BKLGR, so recursive
		// bisections inside a BKWAY run still refine at full quality.
		if len(b.Boundary())*50 < opts.OrigNvtxs {
			iterate(b, opts, true)
		} else {
			fmPass(b, opts, true, 0)
		}
	default:
		panic(fmt.Sprintf("refine: invalid policy %d", policy))
	}
	return b.Cut
}

// iterate runs passes until one fails to improve the cut, or MaxPasses.
func iterate(b *Bisection, opts Options, boundaryOnly bool) {
	for pass := 0; pass < opts.MaxPasses; pass++ {
		if !fmPass(b, opts, boundaryOnly, pass) {
			break
		}
	}
}

// fmPass runs one Kernighan-Lin / Fiduccia-Mattheyses pass: vertices are
// moved one at a time by maximum gain from the side farther above its
// target weight, the best prefix of the move sequence is kept, and the
// pass ends after StopWindow consecutive non-improving moves (which are
// undone). pass is the 0-based pass number reported in trace events.
// Reports whether the cut improved.
func fmPass(b *Bisection, opts Options, boundaryOnly bool, pass int) bool {
	var t0 time.Time
	if opts.Tracer != nil {
		t0 = time.Now()
	}
	ws := opts.Workspace
	n := b.G.NumVertices()
	maxGain := b.G.MaxWeightedDegree()
	var bk0, bk1 GainBuckets
	bk0.Init(n, maxGain, ws)
	bk1.Init(n, maxGain, ws)
	buckets := [2]*GainBuckets{&bk0, &bk1}
	locked := ws.Bool(n)
	limit := maxAllowed(b, opts)

	if boundaryOnly {
		for _, v := range b.Boundary() {
			buckets[b.Where[v]].Insert(v, b.Gain(v))
		}
	} else {
		for v := 0; v < n; v++ {
			buckets[b.Where[v]].Insert(v, b.Gain(v))
		}
	}

	startCut := b.Cut
	bestCut := b.Cut
	bestDiff := balanceDiff(b, opts)
	bestIdx := 0
	// Each vertex is locked after its move, so at most n moves per pass:
	// a pooled length-n buffer never reallocates.
	moved := ws.Int(n)[:0]
	badMoves := 0
	posGain := 0

	onGainChange := func(u int) {
		if locked[u] {
			return
		}
		side := b.Where[u]
		inB := buckets[side].Contains(u)
		if boundaryOnly {
			switch {
			case inB && !b.IsBoundary(u):
				// Left the boundary; no longer a candidate.
				buckets[side].Remove(u)
			case inB:
				buckets[side].Update(u, b.Gain(u))
			case b.IsBoundary(u) && b.Gain(u) > 0:
				// Became a boundary vertex with positive gain (§3.3).
				buckets[side].Insert(u, b.Gain(u))
			}
		} else if inB {
			buckets[side].Update(u, b.Gain(u))
		}
	}

	for {
		// Move from the side farther above its target; fall back to the
		// other side when that bucket is exhausted.
		from := 0
		if b.Pwgt[1]-opts.TargetPwgt[1] > b.Pwgt[0]-opts.TargetPwgt[0] {
			from = 1
		}
		if buckets[from].Empty() {
			from = 1 - from
		}
		v, ok := buckets[from].PopMax()
		if !ok {
			break
		}
		to := 1 - from
		if b.Pwgt[to]+b.G.Vwgt[v] > limit[to] {
			// Too heavy to move; lock it out of this pass.
			locked[v] = true
			continue
		}
		locked[v] = true
		if b.Gain(v) > 0 {
			posGain++
		}
		b.Move(v, onGainChange)
		moved = append(moved, v)

		diff := balanceDiff(b, opts)
		if b.Cut < bestCut || (b.Cut == bestCut && diff < bestDiff) {
			bestCut = b.Cut
			bestDiff = diff
			bestIdx = len(moved)
			badMoves = 0
		} else {
			badMoves++
			if badMoves >= opts.StopWindow {
				break
			}
		}
	}

	nMoves := len(moved)
	// Undo the moves past the best prefix.
	for i := len(moved) - 1; i >= bestIdx; i-- {
		b.Move(moved[i], nil)
	}
	bk0.Free(ws)
	bk1.Free(ws)
	ws.PutBool(locked)
	ws.PutInt(moved)
	if opts.Counters != nil {
		opts.Counters.RefinePasses++
		opts.Counters.RefineMoves += nMoves
		opts.Counters.PositiveGainMoves += posGain
	}
	if opts.Tracer != nil {
		opts.Tracer.Event(trace.Event{
			Kind:              trace.KindPass,
			Level:             opts.Level,
			Pass:              pass,
			Moves:             nMoves,
			PositiveGainMoves: posGain,
			Cut:               b.Cut,
			Algorithm:         "FM",
			ElapsedNS:         time.Since(t0).Nanoseconds(),
		})
	}
	return bestCut < startCut
}

// balanceDiff measures deviation from the target weights.
func balanceDiff(b *Bisection, opts Options) int {
	d := b.Pwgt[0] - opts.TargetPwgt[0]
	if d < 0 {
		d = -d
	}
	return d
}

// ForceBalance moves boundary vertices (best gain first) from the heavy
// side until both parts are within the allowed maximum, ignoring cut
// degradation. It is the safety valve for initial partitions that violate
// the tolerance; refinement proper never unbalances a balanced partition.
func ForceBalance(b *Bisection, opts Options) {
	opts = opts.withDefaults(b)
	limit := maxAllowed(b, opts)
	if b.Pwgt[0] <= limit[0] && b.Pwgt[1] <= limit[1] {
		return
	}
	from := 0
	if b.Pwgt[1] > limit[1] {
		from = 1
	}
	n := b.G.NumVertices()
	var bk GainBuckets
	bk.Init(n, b.G.MaxWeightedDegree(), opts.Workspace)
	defer bk.Free(opts.Workspace)
	for _, v := range b.Boundary() {
		if b.Where[v] == from {
			bk.Insert(v, b.Gain(v))
		}
	}
	onGainChange := func(u int) {
		if b.Where[u] != from {
			if bk.Contains(u) {
				bk.Remove(u)
			}
			return
		}
		if bk.Contains(u) {
			if b.IsBoundary(u) {
				bk.Update(u, b.Gain(u))
			} else {
				bk.Remove(u)
			}
		} else if b.IsBoundary(u) {
			bk.Insert(u, b.Gain(u))
		}
	}
	for b.Pwgt[from] > limit[from] {
		v, ok := bk.PopMax()
		if !ok {
			// No boundary vertex left on the heavy side (e.g. one part is
			// empty of boundary); move any heavy-side vertex.
			v = -1
			for u := 0; u < n; u++ {
				if b.Where[u] == from {
					v = u
					break
				}
			}
			if v < 0 {
				return
			}
		}
		b.Move(v, onGainChange)
	}
}
