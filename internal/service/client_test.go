package service

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// newRetryClient returns a client with instant, recorded sleeps and a
// fixed jitter source so tests are deterministic and fast.
func newRetryClient(attempts int) (*RetryClient, *[]time.Duration) {
	var slept []time.Duration
	c := &RetryClient{
		MaxAttempts: attempts,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Rand:        rand.New(rand.NewSource(1)),
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	return c, &slept
}

func TestRetryClientRetriesTransientStatus(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	c, slept := newRetryClient(4)
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server hits = %d, want 3", got)
	}
	if len(*slept) != 2 {
		t.Fatalf("sleeps = %d, want 2", len(*slept))
	}
	// Full jitter: each delay is below its ceiling (100ms then 200ms).
	for i, max := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond} {
		if d := (*slept)[i]; d < 0 || d >= max {
			t.Errorf("sleep %d = %v, want in [0, %v)", i, d, max)
		}
	}
}

func TestRetryClientHonorsRetryAfterAsFloor(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	c, slept := newRetryClient(4)
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	resp.Body.Close()
	if len(*slept) != 1 {
		t.Fatalf("sleeps = %d, want 1", len(*slept))
	}
	// The jitter ceiling (100ms) is far below Retry-After (3s), so the
	// header must win as the floor.
	if d := (*slept)[0]; d != 3*time.Second {
		t.Errorf("sleep = %v, want 3s (Retry-After floor)", d)
	}
}

func TestRetryClientReplaysPostBody(t *testing.T) {
	var hits atomic.Int64
	var bodies []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(b))
		if hits.Add(1) == 1 {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	c, _ := newRetryClient(3)
	resp, err := c.Post(srv.URL, "application/json", []byte(`{"k":8}`))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if len(bodies) != 2 || bodies[0] != `{"k":8}` || bodies[1] != `{"k":8}` {
		t.Errorf("bodies = %q, want the same payload twice", bodies)
	}
}

func TestRetryClientReturnsLastResponseWhenExhausted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "still down")
	}))
	defer srv.Close()

	c, slept := newRetryClient(3)
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	// The final response's body must still be readable.
	b, _ := io.ReadAll(resp.Body)
	if string(b) != "still down" {
		t.Errorf("body = %q, want %q", b, "still down")
	}
	if len(*slept) != 2 {
		t.Errorf("sleeps = %d, want 2 (between 3 attempts)", len(*slept))
	}
}

func TestRetryClientDoesNotRetryClientError(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()

	c, slept := newRetryClient(4)
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if hits.Load() != 1 || len(*slept) != 0 {
		t.Errorf("hits = %d sleeps = %d, want 1 and 0 (400 is not retryable)", hits.Load(), len(*slept))
	}
}

func TestRetryClientRetriesTransportError(t *testing.T) {
	// A listener that is already closed: every attempt fails at dial time.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()

	c, slept := newRetryClient(3)
	resp, err := c.Get(url)
	if err == nil {
		resp.Body.Close()
		t.Fatal("Get succeeded against a closed listener")
	}
	if len(*slept) != 2 {
		t.Errorf("sleeps = %d, want 2 (between 3 attempts)", len(*slept))
	}
}

func TestRetryAfterParsing(t *testing.T) {
	if d := retryAfter("2"); d != 2*time.Second {
		t.Errorf("retryAfter(2) = %v, want 2s", d)
	}
	if d := retryAfter("-1"); d != 0 {
		t.Errorf("retryAfter(-1) = %v, want 0", d)
	}
	if d := retryAfter(""); d != 0 {
		t.Errorf("retryAfter(empty) = %v, want 0", d)
	}
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if d := retryAfter(future); d <= 0 || d > 10*time.Second {
		t.Errorf("retryAfter(date) = %v, want in (0, 10s]", d)
	}
	if d := retryAfter("garbage"); d != 0 {
		t.Errorf("retryAfter(garbage) = %v, want 0", d)
	}
}
