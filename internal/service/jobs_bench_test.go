package service

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mlpart"
)

// BenchmarkJobBatch compares N independent partitions submitted as N
// sequential synchronous calls against one batch submission polled to
// completion. The sequential client pays an HTTP round trip, admission
// cycle and ingest per graph and serializes on each result; the batch
// pays one submission round trip for all of them, the jobs fan out
// across the worker pool, and completed results are fetched with one GET
// each. The per-graph compute is deliberately small so the per-request
// overhead being amortized — not engine time — dominates the comparison.
// Caching is disabled so every request computes; seeds differ so nothing
// coalesces.
func BenchmarkJobBatch(b *testing.B) {
	const jobs = 32
	reqs := make([]mlpart.PartitionRequest, jobs)
	for i := range reqs {
		reqs[i] = mlpart.PartitionRequest{
			Graph:   gridGraph(12, 12),
			K:       2,
			Options: &mlpart.Options{Seed: int64(i + 1)},
		}
	}

	newBenchServer := func(b *testing.B) *httptest.Server {
		b.Helper()
		s, err := New(Config{CacheSize: -1, JobCapacity: 4 * jobs})
		if err != nil {
			b.Fatalf("New: %v", err)
		}
		ts := httptest.NewServer(s)
		b.Cleanup(ts.Close)
		return ts
	}

	b.Run("sync-sequential", func(b *testing.B) {
		ts := newBenchServer(b)
		client := ts.Client()
		bodies := make([][]byte, jobs)
		for i, r := range reqs {
			bodies[i], _ = json.Marshal(r)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			for i := range bodies {
				resp, err := client.Post(ts.URL+"/v1/partition", "application/json", strings.NewReader(string(bodies[i])))
				if err != nil {
					b.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
				drain(b, resp)
			}
		}
		b.ReportMetric(float64(jobs)*float64(b.N)/b.Elapsed().Seconds(), "graphs/s")
	})

	b.Run("batch-async", func(b *testing.B) {
		ts := newBenchServer(b)
		c := &Client{
			Base:            ts.URL,
			HTTP:            &RetryClient{Client: ts.Client()},
			PollInterval:    time.Millisecond,
			MaxPollInterval: time.Millisecond,
			Rand:            rand.New(rand.NewSource(1)),
		}
		entries := make([]mlpart.BatchJob, jobs)
		for i := range reqs {
			r := reqs[i]
			entries[i] = mlpart.BatchJob{Partition: &r}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			br, err := c.SubmitBatch(context.Background(), entries)
			if err != nil {
				b.Fatal(err)
			}
			for _, jr := range br.Jobs {
				if jr.ID == "" {
					b.Fatalf("entry shed: %s", jr.Error)
				}
				res, err := c.WaitJob(context.Background(), jr.ID)
				if err != nil {
					b.Fatal(err)
				}
				if res.State != mlpart.JobStateDone {
					b.Fatalf("job %s finished %q: %s", jr.ID, res.State, res.Body)
				}
			}
		}
		b.ReportMetric(float64(jobs)*float64(b.N)/b.Elapsed().Seconds(), "graphs/s")
	})
}

func drain(b *testing.B, resp *http.Response) {
	b.Helper()
	buf := make([]byte, 32<<10)
	for {
		_, err := resp.Body.Read(buf)
		if err != nil {
			break
		}
	}
	resp.Body.Close()
}
