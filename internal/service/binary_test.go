package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mlpart"
)

// binaryBody encodes a wire graph (and optional part vector) as a csrb
// request body.
func binaryBody(t *testing.T, wg mlpart.WireGraph, part []int) []byte {
	t.Helper()
	g, err := wg.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mlpart.WriteBinaryGraphPart(&buf, g, part); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postBinary(t *testing.T, client *http.Client, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, mlpart.ContentTypeBinaryCSR, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestBinaryPartitionMatchesJSON is the cache-sharing contract: the same
// graph and options must produce byte-identical results whether the graph
// arrives as JSON or as binary CSR, and the two encodings must share one
// cache entry (the key is the graph fingerprint, not the bytes on the
// wire).
func TestBinaryPartitionMatchesJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wg := gridGraph(16, 16)

	respJ, dataJ := postJSON(t, ts.Client(), ts.URL+"/v1/partition", mlpart.PartitionRequest{
		Graph: wg, K: 4, Options: &mlpart.Options{Seed: 7},
	})
	if respJ.StatusCode != http.StatusOK {
		t.Fatalf("json status %d: %s", respJ.StatusCode, dataJ)
	}

	respB, dataB := postBinary(t, ts.Client(),
		ts.URL+"/v1/partition?k=4&seed=7", binaryBody(t, wg, nil))
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("binary status %d: %s", respB.StatusCode, dataB)
	}
	if !bytes.Equal(dataJ, dataB) {
		t.Errorf("binary response differs from JSON response:\n%s\nvs\n%s", dataB, dataJ)
	}
	if got := respB.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("binary request after identical JSON request: X-Cache = %q, want \"hit\"", got)
	}

	var pr mlpart.PartitionResponse
	if err := json.Unmarshal(dataB, &pr); err != nil {
		t.Fatal(err)
	}
	g, err := wg.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	want, err := mlpart.Partition(g, 4, &mlpart.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if pr.EdgeCut != want.EdgeCut {
		t.Errorf("edge cut %d via binary HTTP, %d via library", pr.EdgeCut, want.EdgeCut)
	}
}

func TestBinaryPartitionOptionsFromQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wg := gridGraph(12, 12)
	g, err := wg.ToGraph()
	if err != nil {
		t.Fatal(err)
	}

	// Direct k-way with an ordering: every option travels in the query.
	resp, data := postBinary(t, ts.Client(),
		ts.URL+"/v1/partition?k=8&method=kway&seed=3&refinement=BKWAY&ordering=degree",
		binaryBody(t, wg, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var pr mlpart.PartitionResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	want, err := mlpart.PartitionDirectKWay(g, 8, &mlpart.Options{
		Seed: 3, Refinement: mlpart.RefineBKWAY, Ordering: mlpart.OrderingDegree,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pr.EdgeCut != want.EdgeCut {
		t.Errorf("edge cut %d via HTTP, %d via library", pr.EdgeCut, want.EdgeCut)
	}
	for v := range want.Where {
		if pr.Where[v] != want.Where[v] {
			t.Fatalf("where[%d] = %d via HTTP, %d via library", v, pr.Where[v], want.Where[v])
		}
	}

	// Weighted fractions.
	resp, data = postBinary(t, ts.Client(),
		ts.URL+"/v1/partition?fractions=2,1,1", binaryBody(t, wg, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fractions status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.K != 3 {
		t.Errorf("weighted K = %d, want 3", pr.K)
	}
}

func TestBinaryOrderEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wg := gridGraph(10, 10)
	resp, data := postBinary(t, ts.Client(),
		ts.URL+"/v1/order?seed=5&analyze=1", binaryBody(t, wg, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var or mlpart.OrderResponse
	if err := json.Unmarshal(data, &or); err != nil {
		t.Fatal(err)
	}
	if or.Kind != mlpart.WireKindOrder || len(or.Perm) != 100 || or.Analysis == nil {
		t.Fatalf("unexpected order response: kind=%q len(perm)=%d analysis=%v",
			or.Kind, len(or.Perm), or.Analysis)
	}
	g, err := wg.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	wantPerm, _, err := mlpart.NestedDissection(g, &mlpart.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantPerm {
		if or.Perm[i] != wantPerm[i] {
			t.Fatalf("perm[%d] = %d via HTTP, %d via library", i, or.Perm[i], wantPerm[i])
		}
	}
}

func TestBinaryRepartitionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wg := gridGraph(8, 8)
	// Incumbent: left/right halves.
	where := make([]int, 64)
	for v := range where {
		if v%8 >= 4 {
			where[v] = 1
		}
	}
	resp, data := postBinary(t, ts.Client(),
		ts.URL+"/v1/repartition?k=2&seed=1", binaryBody(t, wg, where))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var rr mlpart.RepartitionResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Kind != mlpart.WireKindRepartition || rr.K != 2 || len(rr.Where) != 64 {
		t.Fatalf("unexpected repartition response: %+v", rr)
	}

	// A binary repartition body without a part section is a client error.
	resp, data = postBinary(t, ts.Client(),
		ts.URL+"/v1/repartition?k=2", binaryBody(t, wg, nil))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing part section: status %d, want 400: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "part section") {
		t.Errorf("error does not mention the part section: %s", data)
	}
}

func TestUnsupportedMediaType(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, ep := range []string{"/v1/partition", "/v1/order", "/v1/repartition"} {
		resp, err := ts.Client().Post(ts.URL+ep, "text/plain", strings.NewReader("hello"))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("%s: status %d, want 415: %s", ep, resp.StatusCode, data)
		}
		var er mlpart.ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil {
			t.Fatalf("%s: 415 body is not a wire error: %v\n%s", ep, err, data)
		}
		if er.Kind != mlpart.WireKindError || er.SchemaVersion != mlpart.SchemaVersion {
			t.Errorf("%s: malformed error response: %+v", ep, er)
		}
	}
	if got := s.met.unsupportedMedia.Load(); got != 3 {
		t.Errorf("unsupportedMedia counter = %d, want 3", got)
	}

	// The counter is exported through /varz.
	resp, err := ts.Client().Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var v struct {
		UnsupportedMedia int64 `json:"unsupported_media_type"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v.UnsupportedMedia != 3 {
		t.Errorf("/varz unsupported_media_type = %d, want 3", v.UnsupportedMedia)
	}
}

// TestMixedEncodingClientsShareCache hammers one server with concurrent
// JSON and binary clients asking for the same partition; run under -race
// it checks the decode paths and the shared cache for data races, and
// functionally it checks that every client sees the identical result.
func TestMixedEncodingClientsShareCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wg := gridGraph(12, 12)
	jsonBody, err := json.Marshal(mlpart.PartitionRequest{
		Graph: wg, K: 4, Options: &mlpart.Options{Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	binBody := binaryBody(t, wg, nil)

	const clients = 8
	cuts := make([]int, clients)
	var wgrp sync.WaitGroup
	for c := 0; c < clients; c++ {
		wgrp.Add(1)
		go func(c int) {
			defer wgrp.Done()
			for i := 0; i < 4; i++ {
				var resp *http.Response
				var err error
				var data []byte
				// Retry 429s: the default-sized pool may legitimately shed
				// under 8 concurrent clients; shedding is not a failure.
				for attempt := 0; attempt < 100; attempt++ {
					if (c+i)%2 == 0 {
						resp, err = ts.Client().Post(ts.URL+"/v1/partition",
							mlpart.ContentTypeJSON, bytes.NewReader(jsonBody))
					} else {
						resp, err = ts.Client().Post(ts.URL+"/v1/partition?k=4&seed=9",
							mlpart.ContentTypeBinaryCSR, bytes.NewReader(binBody))
					}
					if err != nil {
						t.Errorf("client %d: %v", c, err)
						return
					}
					var rerr error
					data, rerr = io.ReadAll(resp.Body)
					resp.Body.Close()
					if rerr != nil {
						t.Errorf("client %d: %v", c, rerr)
						return
					}
					if resp.StatusCode != http.StatusTooManyRequests {
						break
					}
					time.Sleep(5 * time.Millisecond)
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d: %s", c, resp.StatusCode, data)
					return
				}
				var pr mlpart.PartitionResponse
				if err := json.Unmarshal(data, &pr); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				cuts[c] = pr.EdgeCut
			}
		}(c)
	}
	wgrp.Wait()
	for c := 1; c < clients; c++ {
		if cuts[c] != cuts[0] {
			t.Fatalf("client %d saw cut %d, client 0 saw %d", c, cuts[c], cuts[0])
		}
	}
}

// TestBinaryBadBodies spot-checks that corrupted binary payloads are
// client errors (400), never 5xx.
func TestBinaryBadBodies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	good := binaryBody(t, gridGraph(4, 4), nil)
	for name, body := range map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)-5],
		"garbage":   []byte("not a csrb payload at all"),
	} {
		resp, data := postBinary(t, ts.Client(), ts.URL+"/v1/partition?k=2", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, resp.StatusCode, data)
		}
	}
}
