package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"mlpart"
)

// RetryClient wraps an http.Client with bounded retries for talking to
// this daemon (or any service with the same shedding discipline):
// transport errors and the transient statuses 429, 502, 503 and 504 are
// retried with full-jitter exponential backoff, honoring a Retry-After
// header as the floor of the next delay; every other response returns
// immediately. Full jitter (a uniform draw from [0, ceiling) rather than
// the ceiling itself) keeps a fleet of shed clients from re-arriving in
// lockstep and re-saturating the queue they were just shed from.
//
// The daemon's endpoints are deterministic and idempotent, so replaying a
// request is always safe; do not use this client against services where a
// POST has side effects that must happen at most once.
//
// The zero value is usable. Retrying a request with a body requires
// req.GetBody, which http.NewRequest sets for the common in-memory body
// types (bytes.Reader, bytes.Buffer, strings.Reader).
type RetryClient struct {
	// Client performs the individual attempts; nil means
	// http.DefaultClient.
	Client *http.Client
	// MaxAttempts is the total number of tries including the first
	// (0 means 4).
	MaxAttempts int
	// BaseDelay is the backoff ceiling before the first retry; it doubles
	// per retry up to MaxDelay (0 means 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling (0 means 2s).
	MaxDelay time.Duration
	// Rand supplies the jitter; nil seeds one from the clock on first
	// use. Fix it for deterministic tests.
	Rand *rand.Rand
	// Sleep waits between attempts; nil means time.Sleep. Tests stub it
	// to run instantly and record the chosen delays.
	Sleep func(time.Duration)

	mu sync.Mutex // guards Rand
}

// retryableStatus reports whether a status code signals a transient
// condition worth retrying: shed (429), or a dying/restarting backend
// behind a proxy (502, 503, 504).
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Do performs req with retries. It returns the first non-retryable
// response, or — once attempts are exhausted — the last response (body
// unread) or transport error as-is, so callers inspect the final outcome
// exactly as they would an http.Client's.
func (c *RetryClient) Do(req *http.Request) (*http.Response, error) {
	hc := c.Client
	if hc == nil {
		hc = http.DefaultClient
	}
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 4
	}
	sleep := c.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	for attempt := 1; ; attempt++ {
		if attempt > 1 && req.Body != nil {
			if req.GetBody == nil {
				// Cannot replay the body; the previous outcome stands.
				return hc.Do(req)
			}
			body, err := req.GetBody()
			if err != nil {
				return nil, err
			}
			req.Body = body
		}
		resp, err := hc.Do(req)
		if err == nil && !retryableStatus(resp.StatusCode) {
			return resp, nil
		}
		if attempt >= attempts {
			return resp, err
		}
		delay := c.jitter(attempt)
		if err == nil {
			if ra := retryAfter(resp.Header.Get("Retry-After")); ra > delay {
				delay = ra
			}
			// Drain a bounded amount so the connection can be reused.
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}
		sleep(delay)
	}
}

// Get issues a GET with retries.
func (c *RetryClient) Get(url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(req)
}

// Post issues a POST with retries; body is held in memory so every
// attempt replays it identically.
func (c *RetryClient) Post(url, contentType string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	return c.Do(req)
}

// jitter draws a full-jitter delay: uniform in [0, ceiling) where the
// ceiling is BaseDelay doubled per completed attempt, capped at MaxDelay.
func (c *RetryClient) jitter(attempt int) time.Duration {
	base := c.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxd := c.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	ceiling := base
	for i := 1; i < attempt && ceiling < maxd; i++ {
		ceiling *= 2
	}
	if ceiling > maxd {
		ceiling = maxd
	}
	c.mu.Lock()
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	d := time.Duration(c.Rand.Float64() * float64(ceiling))
	c.mu.Unlock()
	return d
}

// Client is the SDK for a daemon: it speaks the asynchronous job API —
// submit, poll to completion, cancel, batch — over a RetryClient, with
// jittered polling that honors the server's Retry-After hints. The zero
// value plus a Base URL is usable:
//
//	c := &service.Client{Base: "http://localhost:8080"}
//	jr, err := c.SubmitJob(ctx, mlpart.JobTypePartition, &mlpart.PartitionRequest{...})
//	res, err := c.WaitJob(ctx, jr.ID)   // res.Body is the PartitionResponse bytes
type Client struct {
	// Base is the daemon's base URL ("http://host:port"), no trailing
	// path.
	Base string
	// HTTP performs the requests; nil means a zero RetryClient (default
	// backoff over http.DefaultClient). Submissions go through its retry
	// loop (replayable bodies, 429/503 backoff); polls do not — a poll is
	// its own retry loop.
	HTTP *RetryClient
	// PollInterval is the poll delay when the server sends no hint
	// (0 means 100ms).
	PollInterval time.Duration
	// MaxPollInterval caps the server's hint (0 means 5s).
	MaxPollInterval time.Duration
	// Rand supplies the poll jitter; nil seeds one from the clock on
	// first use. Fix it for deterministic tests.
	Rand *rand.Rand

	mu sync.Mutex // guards Rand
}

// JobResult is a finished job as observed by WaitJob.
type JobResult struct {
	ID string
	// State is mlpart.JobStateDone, JobStateFailed or JobStateCanceled.
	State string
	// Status is the HTTP status of the replayed wire reply (200 for done,
	// the original error status for failed, 0 for canceled).
	Status int
	// Body is the raw wire body: a result object for done jobs, an
	// ErrorResponse for failed ones, nil for canceled.
	Body []byte
}

func (c *Client) retry() *RetryClient {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &RetryClient{}
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// decodeJobResponse parses a JobResponse reply, turning a wire error
// into a Go error.
func decodeJobResponse(resp *http.Response, want int) (*mlpart.JobResponse, error) {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != want {
		var we mlpart.ErrorResponse
		if json.Unmarshal(body, &we) == nil && we.Error != "" {
			return nil, fmt.Errorf("%s: %s", resp.Status, we.Error)
		}
		return nil, fmt.Errorf("unexpected status %s", resp.Status)
	}
	var jr mlpart.JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		return nil, fmt.Errorf("bad job response: %v", err)
	}
	return &jr, nil
}

// postJSON marshals v and POSTs it through the retry loop with a
// replayable body.
func (c *Client) postJSON(ctx context.Context, url string, v any) (*http.Response, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", mlpart.ContentTypeJSON)
	return c.retry().Do(req)
}

// SubmitJob submits one asynchronous job. typ is one of the
// mlpart.JobType constants and req the matching request object
// (*mlpart.PartitionRequest, *mlpart.OrderRequest or
// *mlpart.RepartitionRequest). It returns the accepted job's
// JobResponse; poll it with WaitJob.
func (c *Client) SubmitJob(ctx context.Context, typ string, req any) (*mlpart.JobResponse, error) {
	url := c.url("/v1/jobs")
	if typ != "" {
		url += "?type=" + typ
	}
	resp, err := c.postJSON(ctx, url, req)
	if err != nil {
		return nil, err
	}
	return decodeJobResponse(resp, http.StatusAccepted)
}

// SubmitBatch submits many jobs in one call. The returned
// BatchResponse has one entry per submission in request order; entries
// that were shed or invalid carry their error in place.
func (c *Client) SubmitBatch(ctx context.Context, entries []mlpart.BatchJob) (*mlpart.BatchResponse, error) {
	resp, err := c.postJSON(ctx, c.url("/v1/jobs/batch"), mlpart.BatchRequest{Jobs: entries})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusAccepted {
		var we mlpart.ErrorResponse
		if json.Unmarshal(body, &we) == nil && we.Error != "" {
			return nil, fmt.Errorf("%s: %s", resp.Status, we.Error)
		}
		return nil, fmt.Errorf("unexpected status %s", resp.Status)
	}
	var br mlpart.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		return nil, fmt.Errorf("bad batch response: %v", err)
	}
	return &br, nil
}

// CancelJob cancels the job (DELETE). The returned JobResponse reports
// the job's resulting state — "canceled" if the cancellation landed, a
// terminal state if the job had already finished.
func (c *Client) CancelJob(ctx context.Context, id string) (*mlpart.JobResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.url("/v1/jobs/"+id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.retry().Do(req)
	if err != nil {
		return nil, err
	}
	return decodeJobResponse(resp, http.StatusOK)
}

// WaitJob polls the job until it reaches a terminal state, honoring the
// server's retry hints with jitter so a fleet of waiting clients does
// not poll in lockstep. Failed jobs are returned as a JobResult (State
// "failed", Body the wire error), not a Go error: transport problems are
// errors, job outcomes are results.
func (c *Client) WaitJob(ctx context.Context, id string) (*JobResult, error) {
	// Polls bypass the RetryClient: a failed job replays its stored
	// reply under the original error status (e.g. 504), which the retry
	// loop would misread as a transient condition and hammer.
	hc := c.retry().Client
	if hc == nil {
		hc = http.DefaultClient
	}
	url := c.url("/v1/jobs/" + id)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		resp, err := hc.Do(req)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if st := resp.Header.Get("X-Job-State"); st != "" {
			if st == mlpart.JobStateCanceled {
				return &JobResult{ID: id, State: st}, nil
			}
			return &JobResult{ID: id, State: st, Status: resp.StatusCode, Body: body}, nil
		}
		hint := c.PollInterval
		if hint <= 0 {
			hint = 100 * time.Millisecond
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var jr mlpart.JobResponse
			if err := json.Unmarshal(body, &jr); err != nil {
				return nil, fmt.Errorf("bad job response: %v", err)
			}
			if jr.RetryAfterMS > 0 {
				hint = time.Duration(jr.RetryAfterMS) * time.Millisecond
			}
		case retryableStatus(resp.StatusCode):
			if ra := retryAfter(resp.Header.Get("Retry-After")); ra > hint {
				hint = ra
			}
		default:
			var we mlpart.ErrorResponse
			if json.Unmarshal(body, &we) == nil && we.Error != "" {
				return nil, fmt.Errorf("%s: %s", resp.Status, we.Error)
			}
			return nil, fmt.Errorf("unexpected status %s", resp.Status)
		}
		if err := c.sleepJittered(ctx, hint); err != nil {
			return nil, err
		}
	}
}

// sleepJittered waits the hint plus up to half again as much jitter,
// respecting the hint as a floor (Retry-After semantics) and
// MaxPollInterval as the hint's ceiling.
func (c *Client) sleepJittered(ctx context.Context, hint time.Duration) error {
	maxp := c.MaxPollInterval
	if maxp <= 0 {
		maxp = 5 * time.Second
	}
	if hint > maxp {
		hint = maxp
	}
	c.mu.Lock()
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	d := hint + time.Duration(c.Rand.Float64()*float64(hint)/2)
	c.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfter parses a Retry-After header: delay-seconds or an HTTP date.
func retryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// Capabilities fetches the server's supported algorithm names from
// GET /v1/capabilities: coarsening schemes (with family metadata), initial
// partitioners, refinements, presets, orderings and workloads. The document
// is static for a given server build, so callers may fetch once and reuse.
func (c *Client) Capabilities(ctx context.Context) (*mlpart.CapabilitiesResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/capabilities"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.retry().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var we mlpart.ErrorResponse
		if json.Unmarshal(body, &we) == nil && we.Error != "" {
			return nil, fmt.Errorf("%s: %s", resp.Status, we.Error)
		}
		return nil, fmt.Errorf("unexpected status %s", resp.Status)
	}
	var cr mlpart.CapabilitiesResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		return nil, fmt.Errorf("bad capabilities response: %v", err)
	}
	return &cr, nil
}

// --- resident graph sessions ---

// decodeSessionResponse parses a SessionResponse reply, turning a wire
// error into a Go error.
func decodeSessionResponse(resp *http.Response, want int) (*mlpart.SessionResponse, error) {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != want {
		var we mlpart.ErrorResponse
		if json.Unmarshal(body, &we) == nil && we.Error != "" {
			return nil, fmt.Errorf("%s: %s", resp.Status, we.Error)
		}
		return nil, fmt.Errorf("unexpected status %s", resp.Status)
	}
	var sr mlpart.SessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return nil, fmt.Errorf("bad session response: %v", err)
	}
	return &sr, nil
}

// CreateSession registers a resident graph session and returns its
// state; the session id is the graph's content fingerprint, so creating
// the same graph twice fails with a 409 error.
func (c *Client) CreateSession(ctx context.Context, req *mlpart.SessionCreateRequest) (*mlpart.SessionResponse, error) {
	resp, err := c.postJSON(ctx, c.url("/v1/graphs"), req)
	if err != nil {
		return nil, err
	}
	return decodeSessionResponse(resp, http.StatusCreated)
}

// ApplyDeltas applies one atomic batch of graph mutations to a session.
// The batch either applies in full (the returned state reflects it and
// the triggered repair) or not at all.
func (c *Client) ApplyDeltas(ctx context.Context, id string, ops []mlpart.DeltaOp) (*mlpart.SessionResponse, error) {
	resp, err := c.postJSON(ctx, c.url("/v1/graphs/"+id+"/edges"), mlpart.SessionDeltaRequest{Ops: ops})
	if err != nil {
		return nil, err
	}
	return decodeSessionResponse(resp, http.StatusOK)
}

// RepairSession runs an explicit repartition of a session. Mode is
// "auto" (or empty) for the drift ladder's choice, or "boundary",
// "full", "vcycle" to force a tier. The reply includes the partition
// vector.
func (c *Client) RepairSession(ctx context.Context, id, mode string) (*mlpart.SessionResponse, error) {
	resp, err := c.postJSON(ctx, c.url("/v1/graphs/"+id+"/repartition"), mlpart.SessionRepairRequest{Mode: mode})
	if err != nil {
		return nil, err
	}
	return decodeSessionResponse(resp, http.StatusOK)
}

// GetSession fetches a session's state; withWhere includes the
// partition vector.
func (c *Client) GetSession(ctx context.Context, id string, withWhere bool) (*mlpart.SessionResponse, error) {
	url := c.url("/v1/graphs/" + id)
	if withWhere {
		url += "?where=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.retry().Do(req)
	if err != nil {
		return nil, err
	}
	return decodeSessionResponse(resp, http.StatusOK)
}

// DeleteSession drops a session from memory and disk.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.url("/v1/graphs/"+id), nil)
	if err != nil {
		return err
	}
	resp, err := c.retry().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var we mlpart.ErrorResponse
		if json.Unmarshal(body, &we) == nil && we.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, we.Error)
		}
		return fmt.Errorf("unexpected status %s", resp.Status)
	}
	return nil
}
