package service

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// RetryClient wraps an http.Client with bounded retries for talking to
// this daemon (or any service with the same shedding discipline):
// transport errors and the transient statuses 429, 502, 503 and 504 are
// retried with full-jitter exponential backoff, honoring a Retry-After
// header as the floor of the next delay; every other response returns
// immediately. Full jitter (a uniform draw from [0, ceiling) rather than
// the ceiling itself) keeps a fleet of shed clients from re-arriving in
// lockstep and re-saturating the queue they were just shed from.
//
// The daemon's endpoints are deterministic and idempotent, so replaying a
// request is always safe; do not use this client against services where a
// POST has side effects that must happen at most once.
//
// The zero value is usable. Retrying a request with a body requires
// req.GetBody, which http.NewRequest sets for the common in-memory body
// types (bytes.Reader, bytes.Buffer, strings.Reader).
type RetryClient struct {
	// Client performs the individual attempts; nil means
	// http.DefaultClient.
	Client *http.Client
	// MaxAttempts is the total number of tries including the first
	// (0 means 4).
	MaxAttempts int
	// BaseDelay is the backoff ceiling before the first retry; it doubles
	// per retry up to MaxDelay (0 means 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling (0 means 2s).
	MaxDelay time.Duration
	// Rand supplies the jitter; nil seeds one from the clock on first
	// use. Fix it for deterministic tests.
	Rand *rand.Rand
	// Sleep waits between attempts; nil means time.Sleep. Tests stub it
	// to run instantly and record the chosen delays.
	Sleep func(time.Duration)

	mu sync.Mutex // guards Rand
}

// retryableStatus reports whether a status code signals a transient
// condition worth retrying: shed (429), or a dying/restarting backend
// behind a proxy (502, 503, 504).
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Do performs req with retries. It returns the first non-retryable
// response, or — once attempts are exhausted — the last response (body
// unread) or transport error as-is, so callers inspect the final outcome
// exactly as they would an http.Client's.
func (c *RetryClient) Do(req *http.Request) (*http.Response, error) {
	hc := c.Client
	if hc == nil {
		hc = http.DefaultClient
	}
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 4
	}
	sleep := c.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	for attempt := 1; ; attempt++ {
		if attempt > 1 && req.Body != nil {
			if req.GetBody == nil {
				// Cannot replay the body; the previous outcome stands.
				return hc.Do(req)
			}
			body, err := req.GetBody()
			if err != nil {
				return nil, err
			}
			req.Body = body
		}
		resp, err := hc.Do(req)
		if err == nil && !retryableStatus(resp.StatusCode) {
			return resp, nil
		}
		if attempt >= attempts {
			return resp, err
		}
		delay := c.jitter(attempt)
		if err == nil {
			if ra := retryAfter(resp.Header.Get("Retry-After")); ra > delay {
				delay = ra
			}
			// Drain a bounded amount so the connection can be reused.
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}
		sleep(delay)
	}
}

// Get issues a GET with retries.
func (c *RetryClient) Get(url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(req)
}

// Post issues a POST with retries; body is held in memory so every
// attempt replays it identically.
func (c *RetryClient) Post(url, contentType string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	return c.Do(req)
}

// jitter draws a full-jitter delay: uniform in [0, ceiling) where the
// ceiling is BaseDelay doubled per completed attempt, capped at MaxDelay.
func (c *RetryClient) jitter(attempt int) time.Duration {
	base := c.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxd := c.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	ceiling := base
	for i := 1; i < attempt && ceiling < maxd; i++ {
		ceiling *= 2
	}
	if ceiling > maxd {
		ceiling = maxd
	}
	c.mu.Lock()
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	d := time.Duration(c.Rand.Float64() * float64(ceiling))
	c.mu.Unlock()
	return d
}

// retryAfter parses a Retry-After header: delay-seconds or an HTTP date.
func retryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}
