package service

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"mlpart"
	"mlpart/internal/faults"
)

// sdk returns an SDK client for a test server with fast, deterministic
// polling.
func sdk(ts interface{ Client() *http.Client }, base string) *Client {
	return &Client{
		Base:            base,
		HTTP:            &RetryClient{Client: ts.Client(), Sleep: func(time.Duration) {}},
		PollInterval:    2 * time.Millisecond,
		MaxPollInterval: 2 * time.Millisecond,
		Rand:            rand.New(rand.NewSource(1)),
	}
}

func TestJobSubmitPollDoneParity(t *testing.T) {
	// Caching disabled: both paths must actually compute, and determinism
	// alone must make the bodies byte-identical.
	_, ts := newTestServer(t, Config{CacheSize: -1})
	c := sdk(ts, ts.URL)
	wg := gridGraph(16, 16)

	cases := []struct {
		typ     string
		syncURL string
		req     any
	}{
		{mlpart.JobTypePartition, "/v1/partition",
			mlpart.PartitionRequest{Graph: wg, K: 4, Options: &mlpart.Options{Seed: 7}}},
		{mlpart.JobTypeOrder, "/v1/order",
			mlpart.OrderRequest{Graph: wg, Options: &mlpart.Options{Seed: 7}, Analyze: true}},
		{mlpart.JobTypeRepartition, "/v1/repartition",
			mlpart.RepartitionRequest{Graph: wg, K: 2, Where: alternating(256, 2)}},
	}
	for _, tc := range cases {
		t.Run(tc.typ, func(t *testing.T) {
			resp, syncBody := postJSON(t, ts.Client(), ts.URL+tc.syncURL, tc.req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("sync status %d: %s", resp.StatusCode, syncBody)
			}
			jr, err := c.SubmitJob(context.Background(), tc.typ, tc.req)
			if err != nil {
				t.Fatalf("SubmitJob: %v", err)
			}
			if jr.Kind != mlpart.WireKindJob || jr.ID == "" || jr.Type != tc.typ {
				t.Fatalf("bad job response: %+v", jr)
			}
			res, err := c.WaitJob(context.Background(), jr.ID)
			if err != nil {
				t.Fatalf("WaitJob: %v", err)
			}
			if res.State != mlpart.JobStateDone || res.Status != http.StatusOK {
				t.Fatalf("job finished %q (%d): %s", res.State, res.Status, res.Body)
			}
			if string(res.Body) != string(syncBody) {
				t.Fatalf("async result differs from sync result:\nasync: %s\nsync:  %s", res.Body, syncBody)
			}
		})
	}
}

// alternating returns a length-n vector cycling over k parts.
func alternating(n, k int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = i % k
	}
	return w
}

func TestJobCacheSharedWithSync(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	c := sdk(ts, ts.URL)
	req := mlpart.PartitionRequest{Graph: gridGraph(12, 12), K: 2, Options: &mlpart.Options{Seed: 3}}

	resp, syncBody := postJSON(t, ts.Client(), ts.URL+"/v1/partition", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync status %d", resp.StatusCode)
	}
	// The identical submission completes at submit time from the shared
	// result cache: the 202 already reports state done.
	jr, err := c.SubmitJob(context.Background(), mlpart.JobTypePartition, req)
	if err != nil {
		t.Fatal(err)
	}
	if jr.State != mlpart.JobStateDone {
		t.Fatalf("state = %q, want done at submission (cache hit)", jr.State)
	}
	res, err := c.WaitJob(context.Background(), jr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Body) != string(syncBody) {
		t.Fatalf("cached job body differs from sync body")
	}
	if s.met.started.Load() != 1 {
		t.Fatalf("started = %d, want 1 (job must not recompute)", s.met.started.Load())
	}
}

func TestJobCancelWhileRunning(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	c := sdk(ts, ts.URL)
	entered := make(chan struct{}, 1)
	s.hookCompute = func(ctx context.Context) {
		entered <- struct{}{}
		<-ctx.Done()
	}

	jr, err := c.SubmitJob(context.Background(), mlpart.JobTypePartition,
		mlpart.PartitionRequest{Graph: gridGraph(16, 16), K: 4})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // the job holds the worker slot

	cr, err := c.CancelJob(context.Background(), jr.ID)
	if err != nil {
		t.Fatalf("CancelJob: %v", err)
	}
	if cr.State != mlpart.JobStateCanceled {
		t.Fatalf("state after cancel = %q", cr.State)
	}
	res, err := c.WaitJob(context.Background(), jr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != mlpart.JobStateCanceled || res.Body != nil {
		t.Fatalf("WaitJob after cancel: %+v", res)
	}
	// The runner unwinds (engine sees the canceled context) and the
	// worker slot frees for new work.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.WaitJobs(ctx); err != nil {
		t.Fatalf("runner did not unwind after cancel: %v", err)
	}
	if got := s.met.canceled.Load(); got != 1 {
		t.Errorf("canceled = %d, want 1", got)
	}
}

func TestJobCancelWhileQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	c := sdk(ts, ts.URL)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.hookCompute = func(ctx context.Context) {
		entered <- struct{}{}
		<-release
	}

	a, err := c.SubmitJob(context.Background(), mlpart.JobTypePartition,
		mlpart.PartitionRequest{Graph: gridGraph(16, 16), K: 4, Options: &mlpart.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // job A occupies the only worker
	b, err := c.SubmitJob(context.Background(), mlpart.JobTypePartition,
		mlpart.PartitionRequest{Graph: gridGraph(16, 16), K: 4, Options: &mlpart.Options{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if b.State != mlpart.JobStateQueued {
		t.Fatalf("job B state = %q, want queued behind the held worker", b.State)
	}
	cr, err := c.CancelJob(context.Background(), b.ID)
	if err != nil || cr.State != mlpart.JobStateCanceled {
		t.Fatalf("cancel queued job: state=%v err=%v", cr, err)
	}
	close(release)
	res, err := c.WaitJob(context.Background(), a.ID)
	if err != nil || res.State != mlpart.JobStateDone {
		t.Fatalf("job A: %+v, %v", res, err)
	}
	// B never started: the runner's Start was refused after the cancel.
	if got := s.met.started.Load(); got != 1 {
		t.Errorf("started = %d, want 1 (canceled job must never start)", got)
	}
}

func TestJobTTLEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{JobTTL: 50 * time.Millisecond})
	c := sdk(ts, ts.URL)
	jr, err := c.SubmitJob(context.Background(), mlpart.JobTypePartition,
		mlpart.PartitionRequest{Graph: gridGraph(8, 8), K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitJob(context.Background(), jr.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + jr.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			break // evicted
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still observable long past its TTL (status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestJobCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	c := sdk(ts, ts.URL)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.hookCompute = func(ctx context.Context) {
		entered <- struct{}{}
		<-release
	}
	req := mlpart.PartitionRequest{Graph: gridGraph(16, 16), K: 4, Options: &mlpart.Options{Seed: 7}}

	a, err := c.SubmitJob(context.Background(), mlpart.JobTypePartition, req)
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	dup, err := c.SubmitJob(context.Background(), mlpart.JobTypePartition, req)
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Coalesced || dup.ID != a.ID {
		t.Fatalf("duplicate submission not coalesced: %+v (want id %s)", dup, a.ID)
	}
	close(release)
	ra, err := c.WaitJob(context.Background(), a.ID)
	if err != nil || ra.State != mlpart.JobStateDone {
		t.Fatalf("job: %+v, %v", ra, err)
	}
	if got := s.met.started.Load(); got != 1 {
		t.Errorf("started = %d, want 1 (one execution for both submissions)", got)
	}
	if got := s.met.jobsCoalesced.Load(); got != 1 {
		t.Errorf("jobsCoalesced = %d, want 1", got)
	}
	// With the job finished, the key is released: a re-submission is a
	// fresh job (served from the cache, but under its own id).
	fresh, err := c.SubmitJob(context.Background(), mlpart.JobTypePartition, req)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Coalesced || fresh.ID == a.ID {
		t.Fatalf("finished job absorbed a new submission: %+v", fresh)
	}
}

func TestJobShed429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, JobCapacity: 2})
	c := sdk(ts, ts.URL)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.hookCompute = func(ctx context.Context) {
		entered <- struct{}{}
		<-release
	}
	defer close(release)

	submit := func(seed int64) (*http.Response, []byte) {
		body, _ := json.Marshal(mlpart.PartitionRequest{
			Graph: gridGraph(16, 16), K: 4, Options: &mlpart.Options{Seed: seed},
		})
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data := make([]byte, 4096)
		n, _ := resp.Body.Read(data)
		return resp, data[:n]
	}
	if resp, data := submit(1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: %d %s", resp.StatusCode, data)
	}
	<-entered
	if resp, data := submit(2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submission: %d %s", resp.StatusCode, data)
	}
	// Capacity 2 is now held entirely by active jobs: shed.
	resp, data := submit(3)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submission = %d, want 429: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed reply missing Retry-After")
	}
	if got := s.met.jobsShed.Load(); got != 1 {
		t.Errorf("jobsShed = %d, want 1", got)
	}
	_ = c
}

func TestJobDeadlineFails504(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	c := sdk(ts, ts.URL)
	s.hookCompute = func(ctx context.Context) { <-ctx.Done() }

	jr, err := c.SubmitJob(context.Background(), mlpart.JobTypePartition,
		mlpart.PartitionRequest{Graph: gridGraph(16, 16), K: 4, TimeoutMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.WaitJob(context.Background(), jr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != mlpart.JobStateFailed || res.Status != http.StatusGatewayTimeout {
		t.Fatalf("deadline job: state=%q status=%d body=%s", res.State, res.Status, res.Body)
	}
	var we mlpart.ErrorResponse
	if err := json.Unmarshal(res.Body, &we); err != nil || we.Kind != mlpart.WireKindError {
		t.Fatalf("failed job must replay a wire error: %s", res.Body)
	}
}

func TestJobBatch(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheSize: -1})
	c := sdk(ts, ts.URL)
	wg := gridGraph(16, 16)

	resp, syncBody := postJSON(t, ts.Client(), ts.URL+"/v1/partition",
		mlpart.PartitionRequest{Graph: wg, K: 4, Options: &mlpart.Options{Seed: 7}})
	if resp.StatusCode != http.StatusOK {
		t.Fatal("sync partition failed")
	}

	br, err := c.SubmitBatch(context.Background(), []mlpart.BatchJob{
		{Partition: &mlpart.PartitionRequest{Graph: wg, K: 4, Options: &mlpart.Options{Seed: 7}}},
		{Order: &mlpart.OrderRequest{Graph: wg, Options: &mlpart.Options{Seed: 7}}}, // type inferred from the field
		{Type: mlpart.JobTypePartition}, // invalid: missing request field
	})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if br.Kind != mlpart.WireKindBatch || len(br.Jobs) != 3 {
		t.Fatalf("batch response: %+v", br)
	}
	if br.Jobs[0].ID == "" || br.Jobs[1].ID == "" {
		t.Fatalf("valid entries must be admitted: %+v", br.Jobs)
	}
	if br.Jobs[1].Type != mlpart.JobTypeOrder {
		t.Fatalf("entry 1 type = %q, want inferred %q", br.Jobs[1].Type, mlpart.JobTypeOrder)
	}
	if br.Jobs[2].ID != "" || br.Jobs[2].Error == "" {
		t.Fatalf("invalid entry must carry its error in place: %+v", br.Jobs[2])
	}
	res, err := c.WaitJob(context.Background(), br.Jobs[0].ID)
	if err != nil || res.State != mlpart.JobStateDone {
		t.Fatalf("batch job 0: %+v, %v", res, err)
	}
	if string(res.Body) != string(syncBody) {
		t.Fatal("batch-submitted job result differs from sync result")
	}
	if res2, err := c.WaitJob(context.Background(), br.Jobs[1].ID); err != nil || res2.State != mlpart.JobStateDone {
		t.Fatalf("batch job 1: %+v, %v", res2, err)
	}
	_ = s
}

func TestJobDrainRefusesAndWaits(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	c := sdk(ts, ts.URL)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.hookCompute = func(ctx context.Context) {
		entered <- struct{}{}
		<-release
	}

	jr, err := c.SubmitJob(context.Background(), mlpart.JobTypePartition,
		mlpart.PartitionRequest{Graph: gridGraph(16, 16), K: 4})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	s.BeginDrain()

	// New submissions are refused while draining.
	body, _ := json.Marshal(mlpart.PartitionRequest{Graph: gridGraph(8, 8), K: 2})
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining = %d, want 503", resp.StatusCode)
	}

	// WaitJobs blocks on the running job...
	short, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.WaitJobs(short); err == nil {
		t.Fatal("WaitJobs returned while a job was still running")
	}
	// ...and returns once it finishes.
	close(release)
	ctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s.WaitJobs(ctx); err != nil {
		t.Fatalf("WaitJobs after release: %v", err)
	}
	if res, err := c.WaitJob(context.Background(), jr.ID); err != nil || res.State != mlpart.JobStateDone {
		t.Fatalf("drained job must finish: %+v, %v", res, err)
	}
}

func TestJobTraceEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	c := sdk(ts, ts.URL)
	body, _ := json.Marshal(mlpart.PartitionRequest{Graph: gridGraph(16, 16), K: 4})
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs?trace=1", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var jr mlpart.JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	res, err := c.WaitJob(context.Background(), jr.ID)
	if err != nil || res.State != mlpart.JobStateDone {
		t.Fatalf("traced job: %+v, %v", res, err)
	}
	var env struct {
		Result json.RawMessage     `json:"result"`
		Trace  []mlpart.TraceEvent `json:"trace"`
	}
	if err := json.Unmarshal(res.Body, &env); err != nil {
		t.Fatalf("traced job body is not the trace envelope: %v\n%s", err, res.Body)
	}
	if len(env.Result) == 0 || len(env.Trace) == 0 {
		t.Fatalf("empty trace envelope: %s", res.Body)
	}
	jobEvents := 0
	for _, e := range env.Trace {
		if string(e.Kind) == "job" {
			jobEvents++
			if e.Job != jr.ID {
				t.Errorf("job event carries id %q, want %q", e.Job, jr.ID)
			}
		}
	}
	if jobEvents != 2 {
		t.Errorf("job lifecycle events = %d, want 2 (started, done)", jobEvents)
	}
}

func TestVarzJobsAndVersionFields(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	c := sdk(ts, ts.URL)
	jr, err := c.SubmitJob(context.Background(), mlpart.JobTypePartition,
		mlpart.PartitionRequest{Graph: gridGraph(8, 8), K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitJob(context.Background(), jr.ID); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v varz
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.SchemaVersion != mlpart.SchemaVersion {
		t.Errorf("schema_version = %d", v.SchemaVersion)
	}
	if v.BuildVersion == "" {
		t.Error("build_version missing")
	}
	if v.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v", v.UptimeSeconds)
	}
	if v.Jobs.Submitted != 1 || v.Jobs.Done != 1 {
		t.Errorf("jobs varz: %+v", v.Jobs)
	}
	if v.Jobs.RunLatency.Count != 1 {
		t.Errorf("run latency count = %d, want 1", v.Jobs.RunLatency.Count)
	}
	if v.Jobs.Capacity != 1024 || v.Jobs.TTLMS != (10*time.Minute).Milliseconds() {
		t.Errorf("jobs store defaults: %+v", v.Jobs)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h histogram
	h.observe(time.Millisecond)
	h.observe(30 * time.Second) // past the last finite pow2 bound (~8.4s)
	v := h.varz()
	if v.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1", v.Overflow)
	}
	if v.Count != 2 {
		t.Fatalf("count = %d, want 2", v.Count)
	}
	if len(v.Bucket) == 0 || v.Bucket[len(v.Bucket)-1]+v.Overflow != v.Count {
		t.Fatalf("bucket mass %v + overflow %d != count %d", v.Bucket, v.Overflow, v.Count)
	}
}

func TestChaosJobPanic(t *testing.T) {
	s, ts := newTestServer(t, Config{
		FaultInjector: faults.MustParse("jobs/run=panic@1"),
	})
	c := sdk(ts, ts.URL)
	jr, err := c.SubmitJob(context.Background(), mlpart.JobTypePartition,
		mlpart.PartitionRequest{Graph: gridGraph(16, 16), K: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.WaitJob(context.Background(), jr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != mlpart.JobStateFailed || res.Status != http.StatusInternalServerError {
		t.Fatalf("poisoned job: state=%q status=%d", res.State, res.Status)
	}
	var we mlpart.ErrorResponse
	if err := json.Unmarshal(res.Body, &we); err != nil || !strings.Contains(we.Error, "incident") {
		t.Fatalf("failed job must replay the incident error: %s", res.Body)
	}
	if got := s.met.panicsRecovered.Load(); got != 1 {
		t.Errorf("panicsRecovered = %d, want 1", got)
	}
	// The daemon survives: the next job (rule exhausted) succeeds.
	jr2, err := c.SubmitJob(context.Background(), mlpart.JobTypePartition,
		mlpart.PartitionRequest{Graph: gridGraph(16, 16), K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res2, err := c.WaitJob(context.Background(), jr2.ID); err != nil || res2.State != mlpart.JobStateDone {
		t.Fatalf("daemon did not recover: %+v, %v", res2, err)
	}
}

func TestChaosJobInjectedError(t *testing.T) {
	s, ts := newTestServer(t, Config{
		FaultInjector: faults.MustParse("jobs/run=error@1"),
	})
	c := sdk(ts, ts.URL)
	jr, err := c.SubmitJob(context.Background(), mlpart.JobTypePartition,
		mlpart.PartitionRequest{Graph: gridGraph(16, 16), K: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.WaitJob(context.Background(), jr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != mlpart.JobStateFailed || res.Status != http.StatusInternalServerError {
		t.Fatalf("injected error job: state=%q status=%d body=%s", res.State, res.Status, res.Body)
	}
	if got := s.met.errors.Load(); got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
	if got := s.met.panicsRecovered.Load(); got != 0 {
		t.Errorf("panicsRecovered = %d, want 0 (error, not panic)", got)
	}
}
