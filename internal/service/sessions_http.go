package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"time"

	"mlpart"
	"mlpart/internal/sessions"
)

// The resident graph session API. A session pins a graph in memory with
// an incumbent partition; streaming delta batches mutate it in place and
// the drift ladder repairs the partition incrementally instead of
// repartitioning from scratch on every change.
//
//	GET    /v1/graphs                      list resident sessions
//	POST   /v1/graphs                      create (JSON or csrb body) → 201 + id
//	GET    /v1/graphs/{id}[?where=1]       inspect (optionally with the vector)
//	POST   /v1/graphs/{id}/edges           apply one atomic delta batch
//	POST   /v1/graphs/{id}/repartition     explicit repair (auto or forced tier)
//	DELETE /v1/graphs/{id}                 drop the session (memory and disk)
//
// Sessions bypass the admission queue — the manager's session-count and
// resident-byte budgets are their admission control — but creation,
// deltas and repairs wait for the same worker slots as synchronous
// requests, so the pool's concurrency bound holds across all three APIs.
// Mutating requests are refused with 503 while draining; reads and
// deletes keep working so operators can inspect and shed state.

// epSessions is the /varz endpoint name of the session API.
const epSessions = "sessions"

// sessionWire renders a manager state snapshot as the wire response.
func sessionWire(st *sessions.State) mlpart.SessionResponse {
	return mlpart.SessionResponse{
		Kind:          mlpart.WireKindSession,
		SchemaVersion: mlpart.SchemaVersion,
		ID:            st.ID,
		Vertices:      st.Vertices,
		Edges:         st.Edges,
		K:             st.K,
		EdgeCut:       st.Cut,
		BaselineCut:   st.BaselineCut,
		Balance:       st.Balance,
		PartWeights:   st.PartWeights,
		Where:         st.Where,
		Seq:           st.Seq,
		Deltas:        st.Deltas,
		ResidentBytes: st.ResidentBytes,
		LastRepair:    st.LastRepair,
		RepairFailed:  st.RepairFailed,
		Recovered:     st.Recovered,
		Degraded:      st.Degraded,
	}
}

// writeSession writes a SessionResponse (or list) reply.
func writeSession(w http.ResponseWriter, status int, resp any) {
	b, err := json.Marshal(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	writeBody(w, status, append(b, '\n'))
}

// sessionFailure maps a manager error to its HTTP reply. Typed budget
// and lookup failures carry their own statuses; anything else falls
// through to computeFailure, so an injected fault or recovered panic
// inside a session gets the same 500-plus-incident treatment as the
// compute endpoints.
func (s *Server) sessionFailure(w http.ResponseWriter, err error) {
	var oe *sessions.OpError
	switch {
	case errors.As(err, &oe):
		s.met.badReqs.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, sessions.ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, sessions.ErrExists):
		writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, sessions.ErrBatchTooLarge), errors.Is(err, sessions.ErrSessionBytes):
		writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
	case errors.Is(err, sessions.ErrTooManySessions), errors.Is(err, sessions.ErrResidentBytes):
		s.met.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
	default:
		status, incident, body := s.computeFailure(err)
		if incident != "" {
			w.Header().Set("X-Incident-Id", incident)
		}
		writeBody(w, status, body)
	}
}

// sessionSlot blocks for a worker slot under the server's compute
// ceiling; the returned release func is non-nil exactly when acquisition
// succeeded (failure has already been written to w).
func (s *Server) sessionSlot(w http.ResponseWriter, r *http.Request) func() {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	if err := s.pool.acquire(ctx); err != nil {
		cancel()
		s.finishAborted(w, r, err)
		return nil
	}
	s.met.inFlight.Add(1)
	s.met.started.Add(1)
	return func() {
		s.met.inFlight.Add(-1)
		s.pool.release()
		cancel()
	}
}

// serveSessions is GET (list) / POST (create) /v1/graphs.
func (s *Server) serveSessions(w http.ResponseWriter, r *http.Request) {
	if s.sessions == nil {
		writeError(w, http.StatusNotFound, "session API disabled (max sessions < 0)")
		return
	}
	epm := s.met.endpoints[epSessions]
	epm.requests.Add(1)
	start := time.Now()
	switch r.Method {
	case http.MethodGet:
		resp := mlpart.SessionListResponse{
			Kind:          mlpart.WireKindSessionList,
			SchemaVersion: mlpart.SchemaVersion,
			Sessions:      []mlpart.SessionResponse{},
		}
		for _, st := range s.sessions.List() {
			resp.Sessions = append(resp.Sessions, sessionWire(st))
		}
		writeSession(w, http.StatusOK, resp)
		epm.completed.Add(1)
		epm.latency.observe(time.Since(start))
	case http.MethodPost:
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "draining: not accepting new sessions")
			return
		}
		isBinary, err := binaryRequest(r)
		if err != nil {
			s.met.unsupportedMedia.Add(1)
			writeError(w, http.StatusUnsupportedMediaType,
				"%v (want %q or %q)", err, mlpart.ContentTypeJSON, mlpart.ContentTypeBinaryCSR)
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		var g *mlpart.Graph
		var cfg sessions.Config
		if isBinary {
			data, rerr := io.ReadAll(r.Body)
			if rerr != nil {
				s.met.badReqs.Add(1)
				writeError(w, http.StatusBadRequest, "read body: %v", rerr)
				return
			}
			if g, err = mlpart.DecodeBinaryGraph(data); err != nil {
				s.met.badReqs.Add(1)
				writeError(w, http.StatusBadRequest, "bad graph: %v", err)
				return
			}
			q := r.URL.Query()
			if err := queryInt(q, "k", &cfg.K); err == nil {
				err = queryInt64(q, "seed", &cfg.Seed)
			}
			if err == nil {
				err = queryFloat(q, "ubfactor", &cfg.Ubfactor)
			}
			if err != nil {
				s.met.badReqs.Add(1)
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
		} else {
			var req mlpart.SessionCreateRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				s.met.badReqs.Add(1)
				writeError(w, http.StatusBadRequest, "bad request body: %v", err)
				return
			}
			if g, err = req.Graph.ToGraph(); err != nil {
				s.met.badReqs.Add(1)
				writeError(w, http.StatusBadRequest, "bad graph: %v", err)
				return
			}
			cfg = sessions.Config{K: req.K, Seed: req.Seed, Ubfactor: req.Ubfactor}
		}
		// The initial partition is a full V-cycle: real compute, so it
		// takes a worker slot like any synchronous request.
		release := s.sessionSlot(w, r)
		if release == nil {
			return
		}
		st, cerr := s.sessions.Create(g, cfg)
		release()
		if cerr != nil {
			s.sessionFailure(w, cerr)
			return
		}
		w.Header().Set("Location", "/v1/graphs/"+st.ID)
		writeSession(w, http.StatusCreated, sessionWire(st))
		epm.completed.Add(1)
		epm.latency.observe(time.Since(start))
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "%s requires GET or POST", r.URL.Path)
	}
}

// serveSessionByID routes /v1/graphs/{id}, /v1/graphs/{id}/edges and
// /v1/graphs/{id}/repartition.
func (s *Server) serveSessionByID(w http.ResponseWriter, r *http.Request) {
	if s.sessions == nil {
		writeError(w, http.StatusNotFound, "session API disabled (max sessions < 0)")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/graphs/")
	id, sub := rest, ""
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		id, sub = rest[:i], rest[i+1:]
	}
	if id == "" {
		writeError(w, http.StatusNotFound, "no such resource %q", r.URL.Path)
		return
	}
	epm := s.met.endpoints[epSessions]
	epm.requests.Add(1)
	start := time.Now()
	done := func() {
		epm.completed.Add(1)
		epm.latency.observe(time.Since(start))
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			st, err := s.sessions.Get(id, r.URL.Query().Get("where") == "1")
			if err != nil {
				s.sessionFailure(w, err)
				return
			}
			writeSession(w, http.StatusOK, sessionWire(st))
			done()
		case http.MethodDelete:
			if err := s.sessions.Delete(id); err != nil {
				s.sessionFailure(w, err)
				return
			}
			w.WriteHeader(http.StatusNoContent)
			done()
		default:
			w.Header().Set("Allow", "GET, DELETE")
			writeError(w, http.StatusMethodNotAllowed, "%s requires GET or DELETE", r.URL.Path)
		}
	case "edges":
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "%s requires POST", r.URL.Path)
			return
		}
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "draining: not accepting session deltas")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		var req mlpart.SessionDeltaRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.met.badReqs.Add(1)
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		ops := make([]sessions.Op, len(req.Ops))
		for i, op := range req.Ops {
			ops[i] = sessions.Op(op)
		}
		release := s.sessionSlot(w, r)
		if release == nil {
			return
		}
		st, err := s.sessions.Apply(id, ops)
		release()
		if err != nil {
			s.sessionFailure(w, err)
			return
		}
		writeSession(w, http.StatusOK, sessionWire(st))
		done()
	case "repartition":
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "%s requires POST", r.URL.Path)
			return
		}
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "draining: not accepting session repairs")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		var req mlpart.SessionRepairRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			s.met.badReqs.Add(1)
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		release := s.sessionSlot(w, r)
		if release == nil {
			return
		}
		st, err := s.sessions.Repair(id, req.Mode)
		release()
		if err != nil {
			s.sessionFailure(w, err)
			return
		}
		writeSession(w, http.StatusOK, sessionWire(st))
		done()
	default:
		writeError(w, http.StatusNotFound, "no such resource %q", r.URL.Path)
	}
}
