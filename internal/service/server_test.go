package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mlpart"
)

// gridGraph returns a rows x cols 4-connected grid as a wire graph.
func gridGraph(rows, cols int) mlpart.WireGraph {
	b := mlpart.NewGraphBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return *mlpart.NewWireGraph(g)
}

func postJSON(t *testing.T, client *http.Client, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestPartitionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wg := gridGraph(16, 16)
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/partition", mlpart.PartitionRequest{
		Graph: wg, K: 4, Options: &mlpart.Options{Seed: 7},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var pr mlpart.PartitionResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatalf("decode: %v\n%s", err, data)
	}
	if pr.Kind != mlpart.WireKindResult || pr.K != 4 || pr.Vertices != 256 {
		t.Fatalf("unexpected response: %+v", pr)
	}
	if len(pr.Where) != 256 || len(pr.PartWeights) != 4 {
		t.Fatalf("where/part_weights lengths: %d, %d", len(pr.Where), len(pr.PartWeights))
	}
	// The daemon must agree exactly with the library for the same input.
	g, err := wg.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	want, err := mlpart.Partition(g, 4, &mlpart.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if pr.EdgeCut != want.EdgeCut {
		t.Errorf("edge cut %d via HTTP, %d via library", pr.EdgeCut, want.EdgeCut)
	}
	if got := mlpart.EdgeCut(g, pr.Where); got != pr.EdgeCut {
		t.Errorf("reported cut %d but where evaluates to %d", pr.EdgeCut, got)
	}
}

func TestPartitionMethodsAndFractions(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wg := gridGraph(12, 12)

	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/partition", mlpart.PartitionRequest{
		Graph: wg, K: 8, Method: mlpart.MethodKWay,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("kway status %d: %s", resp.StatusCode, data)
	}

	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/partition", mlpart.PartitionRequest{
		Graph: wg, Fractions: []float64{2, 1, 1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("weighted status %d: %s", resp.StatusCode, data)
	}
	var pr mlpart.PartitionResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.K != 3 {
		t.Errorf("weighted K = %d, want 3", pr.K)
	}
}

func TestOrderEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wg := gridGraph(10, 10)
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/order", mlpart.OrderRequest{
		Graph: wg, Analyze: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var or mlpart.OrderResponse
	if err := json.Unmarshal(data, &or); err != nil {
		t.Fatal(err)
	}
	if or.Kind != mlpart.WireKindOrder {
		t.Fatalf("kind = %q", or.Kind)
	}
	n := 100
	seen := make([]bool, n)
	if len(or.Perm) != n || len(or.Iperm) != n {
		t.Fatalf("perm/iperm lengths %d/%d, want %d", len(or.Perm), len(or.Iperm), n)
	}
	for i, v := range or.Perm {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("perm is not a permutation at %d: %d", i, v)
		}
		seen[v] = true
		if or.Iperm[v] != i {
			t.Fatalf("iperm[%d] = %d, want %d", v, or.Iperm[v], i)
		}
	}
	if or.Analysis == nil || or.Analysis.FactorNonzeros <= 0 {
		t.Fatalf("analysis missing or empty: %+v", or.Analysis)
	}
}

func TestRepartitionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wg := gridGraph(10, 10)
	// A balanced incumbent whose vertex weights then shift: left column
	// of parts gets 4x heavier, so restoring balance forces migration.
	g, err := wg.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	initial, err := mlpart.Partition(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v, p := range initial.Where {
		if p == 0 {
			wg.Vwgt[v] = 4
		}
	}
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/repartition", mlpart.RepartitionRequest{
		Graph: wg, K: 2, Where: initial.Where,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var rr mlpart.RepartitionResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Kind != mlpart.WireKindRepartition || rr.K != 2 {
		t.Fatalf("unexpected response: kind=%q k=%d", rr.Kind, rr.K)
	}
	if rr.MigratedWeight <= 0 {
		t.Errorf("expected migration away from the all-zero incumbent, got %d", rr.MigratedWeight)
	}
	if len(rr.Where) != 100 {
		t.Errorf("len(where) = %d", len(rr.Where))
	}
}

func TestBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		url  string
		body string
	}{
		{"malformed JSON", "/v1/partition", `{"graph":`},
		{"invalid graph", "/v1/partition", `{"graph":{"xadj":[0,1],"adjncy":[0]},"k":2}`},
		{"bad method name", "/v1/partition", `{"graph":{"xadj":[0],"adjncy":[]},"k":2,"method":"sorcery"}`},
		{"k zero", "/v1/partition", `{"graph":{"xadj":[0,0],"adjncy":[]}}`},
		{"fractions with kway", "/v1/partition", `{"graph":{"xadj":[0,0],"adjncy":[]},"fractions":[1,1],"method":"kway"}`},
		{"bad repartition ubfactor", "/v1/repartition", `{"graph":{"xadj":[0,0],"adjncy":[]},"k":1,"where":[0],"options":{"ubfactor":0.5}}`},
		// Malformed Options must be classified at decode time — a 400, not
		// a 500 from deep inside the engine (Options.Validate up front).
		{"unknown matching scheme", "/v1/partition", `{"graph":{"xadj":[0,0],"adjncy":[]},"k":1,"options":{"matching":"XYZ"}}`},
		{"unknown refinement policy", "/v1/partition", `{"graph":{"xadj":[0,0],"adjncy":[]},"k":1,"options":{"refinement":"FMPP"}}`},
		{"ubfactor below one", "/v1/partition", `{"graph":{"xadj":[0,0],"adjncy":[]},"k":1,"options":{"ubfactor":0.5}}`},
		{"negative ncuts", "/v1/partition", `{"graph":{"xadj":[0,0],"adjncy":[]},"k":1,"options":{"ncuts":-1}}`},
		{"negative refine workers", "/v1/partition", `{"graph":{"xadj":[0,0],"adjncy":[]},"k":1,"options":{"refine_workers":-2}}`},
		{"bad order options", "/v1/order", `{"graph":{"xadj":[0,0],"adjncy":[]},"options":{"init_part":"QQQ"}}`},
		{"negative migration weight", "/v1/repartition", `{"graph":{"xadj":[0,0],"adjncy":[]},"k":1,"where":[0],"options":{"migration_weight":-1}}`},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, data)
		}
		var er mlpart.ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil || er.Kind != mlpart.WireKindError || er.Error == "" {
			t.Errorf("%s: not an error object: %s", tc.name, data)
		}
		if er.SchemaVersion != mlpart.SchemaVersion {
			t.Errorf("%s: schema_version = %d, want %d", tc.name, er.SchemaVersion, mlpart.SchemaVersion)
		}
	}
	if got := s.met.badReqs.Load(); got != int64(len(cases)) {
		t.Errorf("bad_requests = %d, want %d", got, len(cases))
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/partition")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on compute endpoint: status %d, want 405", resp.StatusCode)
	}
}

// TestResponsesCarrySchemaVersion pins that every /v1 result object — all
// three endpoints — reports the wire schema version.
func TestResponsesCarrySchemaVersion(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wg := gridGraph(8, 8)

	check := func(name string, data []byte) {
		t.Helper()
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v, ok := m["schema_version"]; !ok || v != float64(mlpart.SchemaVersion) {
			t.Errorf("%s: schema_version = %v, want %d (%s)", name, v, mlpart.SchemaVersion, data)
		}
	}

	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/partition", mlpart.PartitionRequest{Graph: wg, K: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partition: status %d: %s", resp.StatusCode, data)
	}
	check("partition", data)

	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/order", mlpart.OrderRequest{Graph: wg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("order: status %d: %s", resp.StatusCode, data)
	}
	check("order", data)

	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/repartition", mlpart.RepartitionRequest{
		Graph: wg, K: 2, Where: make([]int, 64),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repartition: status %d: %s", resp.StatusCode, data)
	}
	check("repartition", data)
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(data)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, data)
	}
}

func TestCacheHitByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := mlpart.PartitionRequest{Graph: gridGraph(14, 14), K: 4, Options: &mlpart.Options{Seed: 3}}

	resp1, cold := postJSON(t, ts.Client(), ts.URL+"/v1/partition", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", resp1.StatusCode, cold)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("cold X-Cache = %q, want miss", got)
	}

	resp2, warm := postJSON(t, ts.Client(), ts.URL+"/v1/partition", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d: %s", resp2.StatusCode, warm)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("warm X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cache hit differs from cold result:\ncold: %s\nwarm: %s", cold, warm)
	}

	// A fresh server (empty cache) must produce the same bytes again:
	// cached replies are indistinguishable from recomputation.
	_, ts2 := newTestServer(t, Config{})
	resp3, fresh := postJSON(t, ts2.Client(), ts2.URL+"/v1/partition", req)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("fresh status %d", resp3.StatusCode)
	}
	if !bytes.Equal(cold, fresh) {
		t.Fatalf("fresh server result differs from original cold result")
	}
}

func TestCacheCanonicalization(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	wg := gridGraph(12, 12)
	// Explicit defaults and omitted options must share one cache entry;
	// the scheduling-only Parallel knob must not split it either.
	reqs := []mlpart.PartitionRequest{
		{Graph: wg, K: 2},
		{Graph: wg, K: 2, Options: &mlpart.Options{Matching: "HEM", Ubfactor: 1.05, CoarsenTo: 100}},
		{Graph: wg, K: 2, Options: &mlpart.Options{Parallel: true}},
	}
	for i, req := range reqs {
		resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/partition", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("req %d: status %d: %s", i, resp.StatusCode, data)
		}
	}
	if hits := s.met.cacheHits.Load(); hits != 2 {
		t.Errorf("cache hits = %d, want 2 (canonicalization should unify all three requests)", hits)
	}
	if size := s.cache.len(); size != 1 {
		t.Errorf("cache size = %d, want 1", size)
	}
	// A different seed is a different result: must miss.
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/partition",
		mlpart.PartitionRequest{Graph: wg, K: 2, Options: &mlpart.Options{Seed: 9}})
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("different seed X-Cache = %q, want miss", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should have survived")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c should be present")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestQueueFullSheds429(t *testing.T) {
	// One worker, no queue: while the first request holds the worker
	// slot, any second request must be shed with 429 + Retry-After.
	s, ts := newTestServer(t, Config{Workers: 1, QueueSize: -1})
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	s.hookCompute = func(context.Context) {
		entered <- struct{}{}
		<-block
	}

	firstDone := make(chan error, 1)
	go func() {
		resp, data := postJSONNoFatal(ts.Client(), ts.URL+"/v1/partition", mlpart.PartitionRequest{
			Graph: gridGraph(8, 8), K: 2,
		})
		if resp == nil || resp.StatusCode != http.StatusOK {
			firstDone <- fmt.Errorf("first request failed: %v %s", resp, data)
			return
		}
		firstDone <- nil
	}()
	<-entered // the first request now owns the only worker slot

	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/partition", mlpart.PartitionRequest{
		Graph: gridGraph(8, 8), K: 4,
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429 (%s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var er mlpart.ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil || er.Kind != mlpart.WireKindError {
		t.Errorf("429 body is not an error object: %s", data)
	}

	close(block)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	if got := s.met.rejected.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

// postJSONNoFatal is postJSON for goroutines (no *testing.T calls).
func postJSONNoFatal(client *http.Client, url string, req any) (*http.Response, []byte) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

func TestExpiredDeadlineNeverEntersPool(t *testing.T) {
	// A 1ns ceiling means every request's deadline has passed before the
	// worker acquisition: it must get the timeout status and the pool
	// must never start a computation.
	s, ts := newTestServer(t, Config{Workers: 2, Timeout: time.Nanosecond})
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/partition", mlpart.PartitionRequest{
		Graph: gridGraph(8, 8), K: 2,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, data)
	}
	var er mlpart.ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil || er.Kind != mlpart.WireKindError {
		t.Fatalf("504 body is not an error object: %s", data)
	}
	if got := s.met.started.Load(); got != 0 {
		t.Errorf("started = %d, want 0 (request must not enter the pool)", got)
	}
	if got := s.met.timedOut.Load(); got != 1 {
		t.Errorf("timed_out = %d, want 1", got)
	}
}

func TestClientCancelStopsComputation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	entered := make(chan struct{}, 1)
	// The hook parks the worker until the server itself observes the
	// client's disconnect (the compute context fires), making the abort
	// deterministic: the engine is then guaranteed to see a canceled
	// context at its first level-boundary check.
	s.hookCompute = func(ctx context.Context) {
		entered <- struct{}{}
		<-ctx.Done()
	}

	body, _ := json.Marshal(mlpart.PartitionRequest{Graph: gridGraph(16, 16), K: 4})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/partition", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	<-entered // request holds the worker slot
	cancel()  // client walks away
	if err := <-errc; err == nil {
		t.Fatal("expected the client side to fail after cancel")
	}

	// The engine sees the canceled context at its first level-boundary
	// check and aborts; the server records it as a cancellation, not a
	// completion.
	deadline := time.After(5 * time.Second)
	for s.met.canceled.Load() == 0 {
		select {
		case <-deadline:
			t.Fatalf("cancellation not observed: canceled=%d completed=%d",
				s.met.canceled.Load(), s.met.endpoints[epPartition].completed.Load())
		case <-time.After(time.Millisecond):
		}
	}
	if got := s.met.endpoints[epPartition].completed.Load(); got != 0 {
		t.Errorf("completed = %d, want 0 (computation must be aborted)", got)
	}
}

func TestTraceCapture(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := mlpart.PartitionRequest{Graph: gridGraph(16, 16), K: 2}
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/partition?trace=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Cache"); got != "bypass" {
		t.Errorf("trace X-Cache = %q, want bypass", got)
	}
	var env struct {
		Result mlpart.PartitionResponse `json:"result"`
		Trace  []mlpart.TraceEvent      `json:"trace"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("decode envelope: %v\n%s", err, data)
	}
	if env.Result.Kind != mlpart.WireKindResult {
		t.Errorf("result kind = %q", env.Result.Kind)
	}
	if len(env.Trace) == 0 {
		t.Error("trace=1 returned no events")
	}
	kinds := map[string]bool{}
	for _, ev := range env.Trace {
		kinds[string(ev.Kind)] = true
	}
	for _, want := range []string{"level", "initial", "phase"} {
		if !kinds[want] {
			t.Errorf("trace missing %q events (got kinds %v)", want, kinds)
		}
	}

	// The traced run must not have polluted the cache.
	resp2, _ := postJSON(t, ts.Client(), ts.URL+"/v1/partition", req)
	if got := resp2.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("post-trace X-Cache = %q, want miss (trace must bypass the cache)", got)
	}
}

func TestVarz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3, QueueSize: 5, CacheSize: 10})
	req := mlpart.PartitionRequest{Graph: gridGraph(10, 10), K: 2}
	postJSON(t, ts.Client(), ts.URL+"/v1/partition", req)
	postJSON(t, ts.Client(), ts.URL+"/v1/partition", req) // cache hit

	resp, err := ts.Client().Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("varz status %d", resp.StatusCode)
	}
	var v varz
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("varz decode: %v\n%s", err, data)
	}
	if v.Workers != 3 || v.QueueCapacity != 5 {
		t.Errorf("workers/queue = %d/%d, want 3/5", v.Workers, v.QueueCapacity)
	}
	if v.Admitted != 2 || v.Cache.Hits != 1 || v.Cache.Misses != 1 {
		t.Errorf("admitted=%d hits=%d misses=%d, want 2/1/1", v.Admitted, v.Cache.Hits, v.Cache.Misses)
	}
	ep := v.Endpoints[epPartition]
	if ep.Requests != 2 || ep.Completed != 2 {
		t.Errorf("partition endpoint: %+v", ep)
	}
	if ep.Latency.Count != 2 || ep.Latency.SumNS <= 0 {
		t.Errorf("latency histogram: %+v", ep.Latency)
	}
	if v.InFlight != 0 || v.QueueDepth != 0 {
		t.Errorf("in_flight=%d queue_depth=%d, want 0/0 at rest", v.InFlight, v.QueueDepth)
	}
}
