package service

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestCacheConcurrentEviction hammers one small LRU with many writers and
// readers over a key space far larger than the capacity, so evictions
// happen constantly under contention (run with -race in CI). Invariants:
// the capacity is never exceeded, and any body a reader observes is
// byte-identical to what was stored for that key — never torn, never
// cross-wired to another key's body.
func TestCacheConcurrentEviction(t *testing.T) {
	const (
		capacity = 8
		keys     = 64
		writers  = 8
		readers  = 8
		rounds   = 500
	)
	c := newResultCache(capacity)
	body := func(k int) []byte { return []byte(fmt.Sprintf("body-for-key-%03d", k)) }
	key := func(k int) string { return fmt.Sprintf("key-%03d", k) }

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (w*31 + i) % keys
				c.put(key(k), body(k))
				if got := c.len(); got > capacity {
					t.Errorf("cache len %d exceeds capacity %d", got, capacity)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (r*17 + i) % keys
				if b, ok := c.get(key(k)); ok && !bytes.Equal(b, body(k)) {
					t.Errorf("key %d replayed wrong body %q", k, b)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	if got := c.len(); got > capacity {
		t.Fatalf("final cache len %d exceeds capacity %d", got, capacity)
	}
	// Whatever survived must still replay byte-identically.
	hits := 0
	for k := 0; k < keys; k++ {
		if b, ok := c.get(key(k)); ok {
			hits++
			if !bytes.Equal(b, body(k)) {
				t.Errorf("surviving key %d has wrong body %q", k, b)
			}
		}
	}
	if hits == 0 || hits > capacity {
		t.Errorf("surviving entries = %d, want in [1, %d]", hits, capacity)
	}
}
