package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"mlpart"
)

// TestServiceLoadMixed is the acceptance load test: 8 concurrent clients
// each fire 51 mixed partition/order/repartition requests at a
// deliberately small server (2 workers, queue of 2) so that admission
// control, queueing, cache hits and 429 shedding all happen while the
// race detector watches. Every request either succeeds or is shed with
// 429 and retried; nothing may be dropped, panic, or return an
// inconsistent body — identical requests must produce byte-identical
// responses whether computed or cached.
func TestServiceLoadMixed(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	s, ts := newTestServer(t, Config{Workers: 2, QueueSize: 2, CacheSize: 64})

	const (
		clients     = 8
		perClient   = 51
		maxAttempts = 200
	)

	grids := []mlpart.WireGraph{gridGraph(8, 8), gridGraph(12, 12), gridGraph(16, 16)}
	incumbent := make([]int, 144) // alternating stripes for the 12x12 repartitions
	for v := range incumbent {
		incumbent[v] = (v / 12) % 2
	}

	// makeRequest derives a deterministic (path, body) for request i of
	// client c; the small parameter space guarantees repeats across
	// clients, exercising the cache under contention.
	makeRequest := func(c, i int) (string, []byte) {
		switch i % 3 {
		case 0:
			body, _ := json.Marshal(mlpart.PartitionRequest{
				Graph: grids[i%len(grids)],
				K:     2 + (i+c)%3,
				Options: &mlpart.Options{
					Seed: int64(i % 4),
				},
			})
			return "/v1/partition", body
		case 1:
			body, _ := json.Marshal(mlpart.OrderRequest{
				Graph:   grids[(i+1)%len(grids)],
				Analyze: i%2 == 0,
			})
			return "/v1/order", body
		default:
			body, _ := json.Marshal(mlpart.RepartitionRequest{
				Graph: grids[1],
				K:     2,
				Where: incumbent,
				Options: &mlpart.RepartitionOptions{
					Seed: int64(i % 2),
				},
			})
			return "/v1/repartition", body
		}
	}

	var (
		mu        sync.Mutex
		responses = map[string][]byte{} // path+body -> first body seen
		shed      int
	)
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < perClient; i++ {
				path, body := makeRequest(c, i)
				var resp *http.Response
				var data []byte
				ok := false
				for attempt := 0; attempt < maxAttempts; attempt++ {
					resp, data = postJSONNoFatal(client, ts.URL+path, json.RawMessage(body))
					if resp == nil {
						errc <- fmt.Errorf("client %d req %d: connection dropped", c, i)
						return
					}
					if resp.StatusCode == http.StatusTooManyRequests {
						mu.Lock()
						shed++
						mu.Unlock()
						time.Sleep(time.Duration(1+attempt%5) * time.Millisecond)
						continue
					}
					if resp.StatusCode != http.StatusOK {
						errc <- fmt.Errorf("client %d req %d %s: status %d: %s", c, i, path, resp.StatusCode, data)
						return
					}
					ok = true
					break
				}
				if !ok {
					errc <- fmt.Errorf("client %d req %d: still shed after %d attempts", c, i, maxAttempts)
					return
				}
				key := path + string(body)
				mu.Lock()
				if prev, seen := responses[key]; seen {
					if !bytes.Equal(prev, data) {
						mu.Unlock()
						errc <- fmt.Errorf("client %d req %d %s: response differs from earlier identical request", c, i, path)
						return
					}
				} else {
					responses[key] = data
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	total := s.met.admitted.Load() + s.met.rejected.Load()
	if completed := sumCompleted(s); completed != clients*perClient {
		t.Errorf("completed = %d, want %d (admitted+rejected=%d, shed=%d)",
			completed, clients*perClient, total, shed)
	}
	if s.met.errors.Load() != 0 {
		t.Errorf("internal errors: %d", s.met.errors.Load())
	}
	if int64(shed) != s.met.rejected.Load() {
		t.Errorf("client-observed 429s (%d) != server rejected counter (%d)", shed, s.met.rejected.Load())
	}
	if s.met.cacheHits.Load() == 0 {
		t.Error("load test produced no cache hits; parameter space too wide?")
	}
	t.Logf("load: admitted=%d rejected=%d cache hits=%d misses=%d",
		s.met.admitted.Load(), s.met.rejected.Load(),
		s.met.cacheHits.Load(), s.met.cacheMisses.Load())
}

func sumCompleted(s *Server) int {
	total := int64(0)
	for _, ep := range s.met.endpoints {
		total += ep.completed.Load()
	}
	return int(total)
}
