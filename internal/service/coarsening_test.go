package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"mlpart"
)

// TestCapabilitiesEndpoint checks GET /v1/capabilities returns the live
// registry document: every coarsening scheme with its family, plus the
// init / refinement / preset / workload / fault-site lists.
func TestCapabilitiesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/v1/capabilities")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var cr mlpart.CapabilitiesResponse
	if err := json.Unmarshal(data, &cr); err != nil {
		t.Fatalf("decode: %v\n%s", err, data)
	}
	if cr.Kind != mlpart.WireKindCapabilities {
		t.Errorf("kind = %q, want %q", cr.Kind, mlpart.WireKindCapabilities)
	}
	if len(cr.CoarseningSchemes) != len(mlpart.CoarseningSchemes()) {
		t.Fatalf("got %d coarsening schemes, registry has %d",
			len(cr.CoarseningSchemes), len(mlpart.CoarseningSchemes()))
	}
	families := map[string]string{}
	for _, s := range cr.CoarseningSchemes {
		if s.Description == "" {
			t.Errorf("scheme %s: empty description", s.Name)
		}
		families[s.Name] = s.Family
	}
	if families[mlpart.MatchHEM] != mlpart.FamilyMatching {
		t.Errorf("HEM family = %q, want %q", families[mlpart.MatchHEM], mlpart.FamilyMatching)
	}
	if families[mlpart.MatchGCLP] != mlpart.FamilyAggregation {
		t.Errorf("GCLP family = %q, want %q", families[mlpart.MatchGCLP], mlpart.FamilyAggregation)
	}
	if len(cr.InitMethods) == 0 || len(cr.Refinements) == 0 || len(cr.Presets) == 0 ||
		len(cr.Orderings) == 0 || len(cr.Workloads) == 0 || len(cr.FaultSites) == 0 {
		t.Errorf("capability lists incomplete: %+v", cr)
	}

	// The SDK client wraps the same endpoint.
	c := sdk(ts, ts.URL)
	got, err := c.Capabilities(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.CoarseningSchemes) != len(cr.CoarseningSchemes) {
		t.Errorf("SDK capabilities disagree with raw endpoint")
	}

	// Read-only endpoint: POST is rejected.
	resp2, err := ts.Client().Post(ts.URL+"/v1/capabilities", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/capabilities: status %d, want 405", resp2.StatusCode)
	}
}

// TestCoarseningAliasSharesCache is the deprecation contract for the
// `matching` field: a request phrased with the structured `coarsening`
// block must hit the cache entry created by the legacy alias and return a
// byte-identical response (and vice versa for case variants).
func TestCoarseningAliasSharesCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wg := gridGraph(16, 16)

	respA, dataA := postJSON(t, ts.Client(), ts.URL+"/v1/partition", mlpart.PartitionRequest{
		Graph: wg, K: 4, Options: &mlpart.Options{Seed: 7, Matching: mlpart.MatchHEM},
	})
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("matching request: status %d: %s", respA.StatusCode, dataA)
	}
	if got := respA.Header.Get("X-Cache"); got == "hit" {
		t.Fatalf("first request: X-Cache = %q, want miss", got)
	}

	for _, scheme := range []string{"HEM", "hem"} {
		respB, dataB := postJSON(t, ts.Client(), ts.URL+"/v1/partition", mlpart.PartitionRequest{
			Graph: wg, K: 4, Options: &mlpart.Options{
				Seed:       7,
				Coarsening: &mlpart.CoarseningOptions{Scheme: scheme},
			},
		})
		if respB.StatusCode != http.StatusOK {
			t.Fatalf("coarsening %q: status %d: %s", scheme, respB.StatusCode, dataB)
		}
		if got := respB.Header.Get("X-Cache"); got != "hit" {
			t.Errorf("coarsening %q after matching request: X-Cache = %q, want hit", scheme, got)
		}
		if !bytes.Equal(dataA, dataB) {
			t.Errorf("coarsening %q response differs from matching response:\n%s\nvs\n%s",
				scheme, dataB, dataA)
		}
	}
}

// TestGCLPPartitionAndCacheKey checks GCLP requests work end to end and
// that the GCLP knobs are part of the cache identity (different cap =>
// different entry), while a repeat with identical knobs hits. The explicit
// caps are chosen so GCLP finishes without a stall on this grid: a stalled
// run records a GCLP->HEM degradation and degraded responses are
// deliberately never cached.
func TestGCLPPartitionAndCacheKey(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wg := gridGraph(16, 16)
	req := func(mcw int) mlpart.PartitionRequest {
		return mlpart.PartitionRequest{
			Graph: wg, K: 4, Options: &mlpart.Options{
				Seed:       7,
				Coarsening: &mlpart.CoarseningOptions{Scheme: mlpart.MatchGCLP, MaxClusterWeight: mcw},
			},
		}
	}
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/partition", req(8))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GCLP: status %d: %s", resp.StatusCode, data)
	}
	var pr mlpart.PartitionResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Where) != 256 {
		t.Fatalf("where length %d", len(pr.Where))
	}

	resp2, _ := postJSON(t, ts.Client(), ts.URL+"/v1/partition", req(8))
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("identical GCLP request: X-Cache = %q, want hit", got)
	}
	resp3, data3 := postJSON(t, ts.Client(), ts.URL+"/v1/partition", req(32))
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("GCLP mcw=32: status %d: %s", resp3.StatusCode, data3)
	}
	if got := resp3.Header.Get("X-Cache"); got == "hit" {
		t.Errorf("different max_cluster_weight: X-Cache = hit, want miss")
	}
}

// TestUnknownSchemeRejected checks that a bogus scheme (or misapplied GCLP
// knobs) is a client error — 400, never 500 — on every entry point: the
// synchronous JSON endpoints, the async job submission, and the binary CSR
// query path.
func TestUnknownSchemeRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wg := gridGraph(8, 8)
	bad := &mlpart.Options{Matching: "BOGUS"}

	check := func(name string, resp *http.Response, data []byte) {
		t.Helper()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, resp.StatusCode, data)
		}
		var er mlpart.ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
			t.Errorf("%s: malformed error body: %s", name, data)
		}
	}

	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/partition", mlpart.PartitionRequest{
		Graph: wg, K: 2, Options: bad,
	})
	check("partition", resp, data)

	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/order", mlpart.OrderRequest{
		Graph: wg, Options: bad,
	})
	check("order", resp, data)

	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/jobs?type=partition", mlpart.PartitionRequest{
		Graph: wg, K: 2, Options: bad,
	})
	check("jobs", resp, data)

	resp, data = postBinary(t, ts.Client(),
		ts.URL+"/v1/partition?k=2&coarsening=BOGUS", binaryBody(t, wg, nil))
	check("binary query", resp, data)

	// Scheme disagreement between the alias and the structured field.
	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/partition", mlpart.PartitionRequest{
		Graph: wg, K: 2, Options: &mlpart.Options{
			Matching:   mlpart.MatchHEM,
			Coarsening: &mlpart.CoarseningOptions{Scheme: mlpart.MatchRM},
		},
	})
	check("alias disagreement", resp, data)

	// GCLP-only knobs on a matching scheme.
	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/partition", mlpart.PartitionRequest{
		Graph: wg, K: 2, Options: &mlpart.Options{
			Coarsening: &mlpart.CoarseningOptions{Scheme: mlpart.MatchHEM, LPRounds: 4},
		},
	})
	check("knobs on matching scheme", resp, data)

	resp, data = postBinary(t, ts.Client(),
		ts.URL+"/v1/partition?k=2&coarsening=GCLP&lp_rounds=-1", binaryBody(t, wg, nil))
	check("negative knob", resp, data)
}
