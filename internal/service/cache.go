package service

import (
	"container/list"
	"sync"
)

// resultCache is a mutex-guarded LRU of encoded response bodies keyed by
// the request's content key (graph fingerprint + canonicalized options;
// see cacheKey in handlers.go). Every partition the engine computes is
// deterministic for a fixed seed, so a hit can be replayed byte-for-byte
// without recomputation.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache returns a cache holding at most max entries; max <= 0
// disables caching (get always misses, put is a no-op).
func newResultCache(max int) *resultCache {
	return &resultCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached body for key and refreshes its recency. The
// returned slice is shared: callers must not modify it.
func (c *resultCache) get(key string) ([]byte, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting the least recently used entry when
// full. The caller must not modify body afterwards.
func (c *resultCache) put(key string, body []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// A concurrent identical request already stored the (identical)
		// result; just refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, body: body})
	c.items[key] = el
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the current number of entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
