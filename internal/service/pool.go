package service

import "context"

// pool implements the server's two-stage admission control:
//
//   - admit has capacity workers+queue. A request that cannot take an
//     admission token immediately is shed with 429: the server never
//     buffers unbounded work.
//   - work has capacity workers. An admitted request waits here (the
//     "queue") until a worker slot frees or its deadline fires; at most
//     `workers` computations run concurrently regardless of how many
//     connections net/http accepts.
//
// Both stages are plain buffered channels, so the fast path is one
// channel send each and the deadline path is a select.
type pool struct {
	admit chan struct{}
	work  chan struct{}
}

func newPool(workers, queue int) *pool {
	return &pool{
		admit: make(chan struct{}, workers+queue),
		work:  make(chan struct{}, workers),
	}
}

// tryAdmit claims an admission token without blocking; false means the
// server is saturated and the request must be shed.
func (p *pool) tryAdmit() bool {
	select {
	case p.admit <- struct{}{}:
		return true
	default:
		return false
	}
}

// releaseAdmit returns an admission token.
func (p *pool) releaseAdmit() { <-p.admit }

// acquire claims a worker slot, waiting until one frees or ctx fires. An
// already-expired ctx returns its error without consuming a slot, so a
// request whose deadline passed while queued never enters the pool.
func (p *pool) acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case p.work <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a worker slot.
func (p *pool) release() { <-p.work }

// workers returns the worker-slot capacity.
func (p *pool) workers() int { return cap(p.work) }

// queueCapacity returns the number of requests that may wait beyond the
// running ones.
func (p *pool) queueCapacity() int { return cap(p.admit) - cap(p.work) }
