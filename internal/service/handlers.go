package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"mlpart"
	"mlpart/internal/faults"
)

// Endpoint names as they appear in /varz.
const (
	epPartition   = "partition"
	epOrder       = "order"
	epRepartition = "repartition"
)

// job is one decoded, validated compute request.
type job interface {
	// key returns the result-cache key; ok=false disables caching for
	// this request.
	key() (string, bool)
	// timeoutMS is the client's requested budget (0 = server default).
	timeoutMS() int64
	// run computes the response object. tr and inj may be nil;
	// implementations must honor ctx (directly or via the engine's
	// level-boundary checks) and thread inj into the computation.
	run(ctx context.Context, tr mlpart.Tracer, inj *mlpart.FaultInjector) (any, error)
}

// presetJob is implemented by jobs that carry a quality preset (see
// mlpart.Options.Preset); serveCompute counts each accepted request under
// its preset in /varz.
type presetJob interface{ preset() string }

type decodeFunc func(dec *json.Decoder) (job, error)

// binaryDecodeFunc decodes a binary CSR request body; the non-graph
// request fields arrive as URL query parameters.
type binaryDecodeFunc func(data []byte, q url.Values) (job, error)

// codec is one endpoint's pair of request decoders, selected by the
// request's Content-Type.
type codec struct {
	json   decodeFunc
	binary binaryDecodeFunc
}

// serveCompute is the shared request path of the three compute
// endpoints: admission control, decode, cache lookup, worker acquisition
// under the request deadline, compute, cache fill, reply.
func (s *Server) serveCompute(w http.ResponseWriter, r *http.Request, ep string, c codec) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "%s requires POST", r.URL.Path)
		return
	}
	epm := s.met.endpoints[ep]
	epm.requests.Add(1)
	start := time.Now()

	// Content negotiation happens before admission: an unsupported media
	// type is a protocol error the daemon can refuse without spending a
	// queue slot, and its own counter separates "client speaks the wrong
	// encoding" from generic bad requests in /varz.
	isBinary, err := binaryRequest(r)
	if err != nil {
		s.met.unsupportedMedia.Add(1)
		writeError(w, http.StatusUnsupportedMediaType,
			"%v (want %q or %q)", err, mlpart.ContentTypeJSON, mlpart.ContentTypeBinaryCSR)
		return
	}

	// Stage 1: admission. No token, no work — shed immediately so load
	// beyond workers+queue degrades into fast 429s, not memory growth.
	if !s.pool.tryAdmit() {
		s.met.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"saturated: %d computing and up to %d queued; retry later",
			s.pool.workers(), s.pool.queueCapacity())
		return
	}
	s.met.admitted.Add(1)
	defer s.pool.releaseAdmit()
	s.met.queued.Add(1)
	inQueue := true
	dequeue := func() {
		if inQueue {
			inQueue = false
			s.met.queued.Add(-1)
		}
	}
	defer dequeue()

	// Decoding (including the zero-copy binary decode and its fused
	// validation) runs here, outside the worker slot: a malformed body
	// never costs compute capacity.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var j job
	if isBinary {
		data, rerr := io.ReadAll(r.Body)
		if rerr != nil {
			s.met.badReqs.Add(1)
			writeError(w, http.StatusBadRequest, "read body: %v", rerr)
			return
		}
		j, err = c.binary(data, r.URL.Query())
	} else {
		j, err = c.json(json.NewDecoder(r.Body))
	}
	if err != nil {
		s.met.badReqs.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if pj, ok := j.(presetJob); ok {
		s.met.countPreset(pj.preset())
	}
	wantTrace := r.URL.Query().Get("trace") == "1"

	// Cache lookup. Tracing bypasses the cache in both directions: its
	// events describe one particular execution.
	key, cacheable := j.key()
	cacheable = cacheable && !wantTrace
	if cacheable {
		if body, ok := s.cache.get(key); ok {
			s.met.cacheHits.Add(1)
			epm.completed.Add(1)
			epm.latency.observe(time.Since(start))
			writeResult(w, body, "hit", 0)
			return
		}
		s.met.cacheMisses.Add(1)
	}

	// Per-request deadline: the client's budget, clamped by the server
	// ceiling; the context also fires when the client disconnects.
	timeout := s.cfg.Timeout
	if ms := j.timeoutMS(); ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Stage 2: wait for a worker slot. A request whose deadline already
	// passed (or passes while queued) aborts here without ever entering
	// the pool.
	if err := s.pool.acquire(ctx); err != nil {
		s.finishAborted(w, r, err)
		return
	}
	dequeue()
	s.met.inFlight.Add(1)
	defer func() {
		s.met.inFlight.Add(-1)
		s.pool.release()
	}()
	if s.hookCompute != nil {
		s.hookCompute(ctx)
	}
	s.met.started.Add(1)

	var collector *mlpart.TraceCollector
	var tracer mlpart.Tracer
	if wantTrace {
		collector = &mlpart.TraceCollector{}
		tracer = collector
	}

	computeStart := time.Now()
	resp, err := s.runGuarded(ctx, j, tracer)
	computeNS := time.Since(computeStart).Nanoseconds()
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.finishAborted(w, r, err)
			return
		}
		status, incident, ebody := s.computeFailure(err)
		if incident != "" {
			w.Header().Set("X-Incident-Id", incident)
		}
		writeBody(w, status, ebody)
		return
	}
	if degradedResponse(resp) {
		// A degraded result is valid but execution-specific (it reflects
		// transient fault state); count it and keep it out of the cache so
		// a later identical request gets a clean run.
		s.met.degraded.Add(1)
		cacheable = false
	}

	body, err := json.Marshal(resp)
	if err != nil {
		s.met.errors.Add(1)
		writeError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	body = append(body, '\n')
	if cacheable {
		s.cache.put(key, body)
	}
	epm.completed.Add(1)
	epm.latency.observe(time.Since(start))

	if wantTrace {
		env := struct {
			Result json.RawMessage     `json:"result"`
			Trace  []mlpart.TraceEvent `json:"trace"`
		}{
			Result: json.RawMessage(bytes.TrimRight(body, "\n")),
			Trace:  collector.Events(),
		}
		tb, err := json.Marshal(env)
		if err != nil {
			s.met.errors.Add(1)
			writeError(w, http.StatusInternalServerError, "encode trace: %v", err)
			return
		}
		writeResult(w, append(tb, '\n'), "bypass", computeNS)
		return
	}
	writeResult(w, body, "miss", computeNS)
}

// runGuarded is the worker-path panic boundary: the injector's
// service/worker site fires first (so operators can poison the worker path
// itself), then the job runs with any panic — injected or organic —
// recovered into a typed *faults.PanicError instead of unwinding into
// net/http, whose own recover would kill the connection without a reply.
func (s *Server) runGuarded(ctx context.Context, j job, tr mlpart.Tracer) (resp any, err error) {
	err = faults.Boundary(faults.SiteServiceWorker, func() error {
		if ierr := s.inj.Fire(faults.SiteServiceWorker); ierr != nil {
			return ierr
		}
		var rerr error
		resp, rerr = j.run(ctx, tr, s.inj)
		return rerr
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// computeFailure maps a non-context compute error to the HTTP status and
// encoded wire error body the daemon replies with, bumping the same
// counters and incident log whether the computation ran synchronously or
// as an asynchronous job — a failed job replays byte-for-byte the error
// the synchronous endpoint would have sent.
//
// A recovered panic or an injected infrastructure fault is the server's
// failure, not the client's: 500 with an incident id, detail logged
// server-side — the poisoned request must not take the daemon down.
// Everything else the engine rejects is a client error: 400.
func (s *Server) computeFailure(err error) (status int, incident string, body []byte) {
	var pe *faults.PanicError
	if errors.As(err, &pe) {
		s.met.panicsRecovered.Add(1)
		s.met.errors.Add(1)
		id := s.nextIncident()
		log.Printf("mlserved: incident %s: recovered panic at %s: %v\n%s", id, pe.Site, pe.Value, pe.Stack)
		return http.StatusInternalServerError, id,
			errorBody("internal error (incident %s): the request could not be completed", id)
	}
	var ie *faults.InjectedError
	if errors.As(err, &ie) {
		s.met.errors.Add(1)
		id := s.nextIncident()
		log.Printf("mlserved: incident %s: %v", id, err)
		return http.StatusInternalServerError, id,
			errorBody("internal error (incident %s): %v", id, err)
	}
	s.met.badReqs.Add(1)
	return http.StatusBadRequest, "", errorBody("%v", err)
}

// degradedResponse reports whether a computed response took a
// graceful-degradation fallback.
func degradedResponse(resp any) bool {
	pr, ok := resp.(*mlpart.PartitionResponse)
	return ok && len(pr.Degradations) > 0
}

// finishAborted handles a context-terminated request: a vanished client
// gets nothing (and a "canceled" count), a live one gets 504.
func (s *Server) finishAborted(w http.ResponseWriter, r *http.Request, err error) {
	if r.Context().Err() != nil {
		s.met.canceled.Add(1)
		return
	}
	s.met.timedOut.Add(1)
	writeError(w, http.StatusGatewayTimeout, "deadline exceeded: %v", err)
}

// writeResult writes a 200 with the (already encoded) result body. The
// cache status and compute time travel as headers so that cached bodies
// stay byte-identical to cold ones.
func writeResult(w http.ResponseWriter, body []byte, cacheStatus string, computeNS int64) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheStatus)
	if computeNS > 0 {
		w.Header().Set("X-Compute-Ns", strconv.FormatInt(computeNS, 10))
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// binaryRequest classifies the request's Content-Type: false for JSON
// (the default when the header is absent), true for the binary CSR
// encoding, an error for anything else — which serveCompute turns into
// 415 Unsupported Media Type.
func binaryRequest(r *http.Request) (bool, error) {
	ctype := r.Header.Get("Content-Type")
	if ctype == "" {
		return false, nil
	}
	mt, _, err := mime.ParseMediaType(ctype)
	if err != nil {
		return false, fmt.Errorf("unparseable Content-Type %q", ctype)
	}
	switch mt {
	case mlpart.ContentTypeJSON:
		return false, nil
	case mlpart.ContentTypeBinaryCSR:
		return true, nil
	}
	return false, fmt.Errorf("unsupported Content-Type %q", mt)
}

// Query-parameter parsers for the binary request path. Each leaves dst
// untouched when the parameter is absent, so zero values keep meaning
// "server default" exactly as an omitted JSON field does.

func queryInt(q url.Values, name string, dst *int) error {
	s := q.Get(name)
	if s == "" {
		return nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("query %s=%q: not an integer", name, s)
	}
	*dst = v
	return nil
}

func queryInt64(q url.Values, name string, dst *int64) error {
	s := q.Get(name)
	if s == "" {
		return nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return fmt.Errorf("query %s=%q: not an integer", name, s)
	}
	*dst = v
	return nil
}

func queryFloat(q url.Values, name string, dst *float64) error {
	s := q.Get(name)
	if s == "" {
		return nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("query %s=%q: not a number", name, s)
	}
	*dst = v
	return nil
}

func queryBool(q url.Values, name string, dst *bool) error {
	s := q.Get(name)
	if s == "" {
		return nil
	}
	v, err := strconv.ParseBool(s)
	if err != nil {
		return fmt.Errorf("query %s=%q: not a boolean", name, s)
	}
	*dst = v
	return nil
}

// optionsFromQuery builds the mlpart.Options of a binary request from URL
// query parameters, one parameter per JSON option tag. Unknown parameters
// are ignored (they may belong to the endpoint, like k or method).
func optionsFromQuery(q url.Values) (*mlpart.Options, error) {
	o := &mlpart.Options{
		Matching:   q.Get("matching"),
		InitPart:   q.Get("init_part"),
		Refinement: q.Get("refinement"),
		Preset:     q.Get("preset"),
		Ordering:   q.Get("ordering"),
	}
	// The structured coarsening options travel as flat parameters; any of
	// the three present materializes the object (Validate then enforces the
	// same rules as the JSON form, e.g. GCLP-only knobs).
	if q.Get("coarsening") != "" || q.Get("max_cluster_weight") != "" || q.Get("lp_rounds") != "" {
		co := &mlpart.CoarseningOptions{Scheme: q.Get("coarsening")}
		if err := queryInt(q, "max_cluster_weight", &co.MaxClusterWeight); err != nil {
			return nil, err
		}
		if err := queryInt(q, "lp_rounds", &co.LPRounds); err != nil {
			return nil, err
		}
		o.Coarsening = co
	}
	for name, dst := range map[string]*int{
		"coarsen_to":            &o.CoarsenTo,
		"parallel_depth":        &o.ParallelDepth,
		"parallel_min_vertices": &o.ParallelMinVertices,
		"ncuts":                 &o.NCuts,
		"coarsen_workers":       &o.CoarsenWorkers,
		"refine_workers":        &o.RefineWorkers,
		"cycles":                &o.Cycles,
	} {
		if err := queryInt(q, name, dst); err != nil {
			return nil, err
		}
	}
	if err := queryFloat(q, "ubfactor", &o.Ubfactor); err != nil {
		return nil, err
	}
	if err := queryInt64(q, "seed", &o.Seed); err != nil {
		return nil, err
	}
	for name, dst := range map[string]*bool{
		"parallel":       &o.Parallel,
		"kway_refine":    &o.KWayRefine,
		"compress_graph": &o.CompressGraph,
	} {
		if err := queryBool(q, name, dst); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// cloneOptions returns a private copy of o (nil means defaults) so the
// server can install a per-request tracer without mutating the client's
// decoded options.
func cloneOptions(o *mlpart.Options) *mlpart.Options {
	c := mlpart.Options{}
	if o != nil {
		c = *o
	}
	return &c
}

// canonicalOptions renders the result-affecting options in defaulted
// form: requests that spell the defaults explicitly share cache entries
// with requests that omit them, and the scheduling-only knobs (Parallel,
// ParallelDepth, ParallelMinVertices, RefineWorkers — parity-tested to
// not change results) are excluded entirely. The preset/cycles pair is
// canonicalized to the *effective* cycle count, so preset=strong and
// cycles=4 share an entry while fast and strong never alias.
func canonicalOptions(o *mlpart.Options) string {
	cyc := o.EffectiveCycles()
	c := mlpart.Options{}
	if o != nil {
		c = *o
	}
	// The matching/coarsening pair canonicalizes through EffectiveCoarsening,
	// so the deprecated `matching` alias and the structured `coarsening`
	// field produce identical keys (and share cache entries). Validate
	// rejects unparseable configurations before any key is built; the
	// fallback below only keeps an impossible call stable.
	co, err := o.EffectiveCoarsening()
	if err != nil {
		co = mlpart.CoarseningOptions{Scheme: c.Matching}
	}
	if c.InitPart == "" {
		c.InitPart = mlpart.InitGGGP
	}
	if c.Refinement == "" {
		c.Refinement = mlpart.RefineBKLGR
	}
	if c.CoarsenTo == 0 {
		c.CoarsenTo = 100
	}
	if c.Ubfactor == 0 {
		c.Ubfactor = 1.05
	}
	if c.NCuts <= 1 {
		c.NCuts = 1
	}
	if c.CoarsenWorkers <= 1 {
		c.CoarsenWorkers = 1
	}
	if c.Ordering == "" {
		c.Ordering = mlpart.OrderingNone
	}
	key := fmt.Sprintf("m=%s i=%s r=%s ct=%d ub=%.17g s=%d kr=%t nc=%d cw=%d cg=%t ord=%s cyc=%d",
		co.Scheme, c.InitPart, c.Refinement, c.CoarsenTo, c.Ubfactor,
		c.Seed, c.KWayRefine, c.NCuts, c.CoarsenWorkers, c.CompressGraph, c.Ordering, cyc)
	if co.Scheme == mlpart.MatchGCLP {
		// GCLP's knobs change the result, so they join the key — but only
		// for GCLP, keeping every matching-family key byte-identical to
		// what previous releases produced.
		key += fmt.Sprintf(" mcw=%d lpr=%d", co.MaxClusterWeight, co.LPRounds)
	}
	return key
}

// hashInts is FNV-1a over an int slice (for the repartition key's
// incumbent vector).
func hashInts(xs []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range xs {
		x := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	return h
}

// --- /v1/partition ---

type partitionJob struct {
	req mlpart.PartitionRequest
	g   *mlpart.Graph
}

// newPartitionJob validates the non-graph fields shared by the JSON and
// binary encodings and builds the job.
func newPartitionJob(req mlpart.PartitionRequest, g *mlpart.Graph) (job, error) {
	if err := req.Options.Validate(); err != nil {
		return nil, fmt.Errorf("bad options: %v", err)
	}
	switch req.Method {
	case "", mlpart.MethodRecursive, mlpart.MethodKWay:
	default:
		return nil, fmt.Errorf("unknown method %q (want %q or %q)",
			req.Method, mlpart.MethodRecursive, mlpart.MethodKWay)
	}
	if len(req.Fractions) > 0 && req.Method == mlpart.MethodKWay {
		return nil, fmt.Errorf("fractions are incompatible with method %q", mlpart.MethodKWay)
	}
	if len(req.Fractions) == 0 && req.K < 1 {
		return nil, fmt.Errorf("k = %d, want >= 1 (or non-empty fractions)", req.K)
	}
	return &partitionJob{req: req, g: g}, nil
}

func decodePartition(dec *json.Decoder) (job, error) {
	var req mlpart.PartitionRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("bad request body: %v", err)
	}
	g, err := req.Graph.ToGraph()
	if err != nil {
		return nil, fmt.Errorf("bad graph: %v", err)
	}
	return newPartitionJob(req, g)
}

func decodePartitionBinary(data []byte, q url.Values) (job, error) {
	g, err := mlpart.DecodeBinaryGraph(data)
	if err != nil {
		return nil, fmt.Errorf("bad graph: %v", err)
	}
	var req mlpart.PartitionRequest
	if req.Options, err = optionsFromQuery(q); err != nil {
		return nil, err
	}
	if err := queryInt(q, "k", &req.K); err != nil {
		return nil, err
	}
	req.Method = q.Get("method")
	if fr := q.Get("fractions"); fr != "" {
		for _, part := range strings.Split(fr, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return nil, fmt.Errorf("query fractions=%q: bad fraction %q", fr, part)
			}
			req.Fractions = append(req.Fractions, f)
		}
	}
	if err := queryInt64(q, "timeout_ms", &req.TimeoutMS); err != nil {
		return nil, err
	}
	return newPartitionJob(req, g)
}

func (j *partitionJob) timeoutMS() int64 { return j.req.TimeoutMS }

// preset reports the request's quality preset for the varz counters,
// normalized by effective cycle count so `cycles=4` with no preset counts
// as strong and a custom count lands in its own bucket.
func (j *partitionJob) preset() string {
	switch j.req.Options.EffectiveCycles() {
	case 1:
		return mlpart.PresetFast
	case 2:
		return mlpart.PresetEco
	case 4:
		return mlpart.PresetStrong
	}
	return "custom"
}

func (j *partitionJob) key() (string, bool) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|fp=%016x|%s|", epPartition, j.g.Fingerprint(), canonicalOptions(j.req.Options))
	if len(j.req.Fractions) > 0 {
		// Fractions are normalized by the engine; normalize the key the
		// same way so (2,1) and (4,2) share an entry.
		sum := 0.0
		for _, f := range j.req.Fractions {
			sum += f
		}
		sb.WriteString("frac=")
		for _, f := range j.req.Fractions {
			fmt.Fprintf(&sb, "%.17g,", f/sum)
		}
	} else {
		method := j.req.Method
		if method == "" {
			method = mlpart.MethodRecursive
		}
		fmt.Fprintf(&sb, "method=%s k=%d", method, j.req.K)
	}
	return sb.String(), true
}

func (j *partitionJob) run(ctx context.Context, tr mlpart.Tracer, inj *mlpart.FaultInjector) (any, error) {
	opts := cloneOptions(j.req.Options)
	opts.Tracer = tr
	opts.FaultInjector = inj
	var (
		res *mlpart.Partitioning
		err error
	)
	k := j.req.K
	switch {
	case len(j.req.Fractions) > 0:
		k = len(j.req.Fractions)
		res, err = mlpart.PartitionWeightedCtx(ctx, j.g, j.req.Fractions, opts)
	case j.req.Method == mlpart.MethodKWay:
		res, err = mlpart.PartitionDirectKWayCtx(ctx, j.g, k, opts)
	default:
		res, err = mlpart.PartitionCtx(ctx, j.g, k, opts)
	}
	if err != nil {
		return nil, err
	}
	return &mlpart.PartitionResponse{
		Kind:          mlpart.WireKindResult,
		SchemaVersion: mlpart.SchemaVersion,
		Vertices:      j.g.NumVertices(),
		Edges:         j.g.NumEdges(),
		K:             k,
		EdgeCut:       res.EdgeCut,
		Balance:       res.Balance(),
		PartWeights:   res.PartWeights,
		Where:         res.Where,
		Cycles:        res.Cycles,
		Degradations:  res.Degradations,
	}, nil
}

// --- /v1/order ---

type orderJob struct {
	req mlpart.OrderRequest
	g   *mlpart.Graph
}

// newOrderJob validates the non-graph fields shared by the JSON and
// binary encodings and builds the job.
func newOrderJob(req mlpart.OrderRequest, g *mlpart.Graph) (job, error) {
	if err := req.Options.Validate(); err != nil {
		return nil, fmt.Errorf("bad options: %v", err)
	}
	return &orderJob{req: req, g: g}, nil
}

func decodeOrder(dec *json.Decoder) (job, error) {
	var req mlpart.OrderRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("bad request body: %v", err)
	}
	g, err := req.Graph.ToGraph()
	if err != nil {
		return nil, fmt.Errorf("bad graph: %v", err)
	}
	return newOrderJob(req, g)
}

func decodeOrderBinary(data []byte, q url.Values) (job, error) {
	g, err := mlpart.DecodeBinaryGraph(data)
	if err != nil {
		return nil, fmt.Errorf("bad graph: %v", err)
	}
	var req mlpart.OrderRequest
	if req.Options, err = optionsFromQuery(q); err != nil {
		return nil, err
	}
	if err := queryBool(q, "analyze", &req.Analyze); err != nil {
		return nil, err
	}
	if err := queryInt64(q, "timeout_ms", &req.TimeoutMS); err != nil {
		return nil, err
	}
	return newOrderJob(req, g)
}

func (j *orderJob) timeoutMS() int64 { return j.req.TimeoutMS }

func (j *orderJob) key() (string, bool) {
	return fmt.Sprintf("%s|fp=%016x|%s|analyze=%t",
		epOrder, j.g.Fingerprint(), canonicalOptions(j.req.Options), j.req.Analyze), true
}

func (j *orderJob) run(ctx context.Context, tr mlpart.Tracer, inj *mlpart.FaultInjector) (any, error) {
	opts := cloneOptions(j.req.Options)
	opts.Tracer = tr
	opts.FaultInjector = inj
	perm, iperm, err := mlpart.NestedDissectionCtx(ctx, j.g, opts)
	if err != nil {
		return nil, err
	}
	resp := &mlpart.OrderResponse{
		Kind:          mlpart.WireKindOrder,
		SchemaVersion: mlpart.SchemaVersion,
		Vertices:      j.g.NumVertices(),
		Edges:         j.g.NumEdges(),
		Perm:          perm,
		Iperm:         iperm,
	}
	if j.req.Analyze {
		stats, err := mlpart.AnalyzeOrdering(j.g, perm)
		if err != nil {
			return nil, err
		}
		resp.Analysis = stats
	}
	return resp, nil
}

// --- /v1/repartition ---

type repartitionJob struct {
	req mlpart.RepartitionRequest
	g   *mlpart.Graph
}

// newRepartitionJob validates the non-graph fields shared by the JSON
// and binary encodings and builds the job.
func newRepartitionJob(req mlpart.RepartitionRequest, g *mlpart.Graph) (job, error) {
	if err := req.Options.Validate(); err != nil {
		return nil, fmt.Errorf("bad options: %v", err)
	}
	return &repartitionJob{req: req, g: g}, nil
}

func decodeRepartition(dec *json.Decoder) (job, error) {
	var req mlpart.RepartitionRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("bad request body: %v", err)
	}
	g, err := req.Graph.ToGraph()
	if err != nil {
		return nil, fmt.Errorf("bad graph: %v", err)
	}
	return newRepartitionJob(req, g)
}

func decodeRepartitionBinary(data []byte, q url.Values) (job, error) {
	g, part, err := mlpart.DecodeBinaryGraphPart(data)
	if err != nil {
		return nil, fmt.Errorf("bad graph: %v", err)
	}
	if part == nil {
		return nil, errors.New("repartition: binary body carries no part section " +
			"(encode the incumbent partition with WriteBinaryGraphPart)")
	}
	req := mlpart.RepartitionRequest{Where: part}
	if err := queryInt(q, "k", &req.K); err != nil {
		return nil, err
	}
	if err := queryInt64(q, "timeout_ms", &req.TimeoutMS); err != nil {
		return nil, err
	}
	o := &mlpart.RepartitionOptions{}
	if err := queryFloat(q, "ubfactor", &o.Ubfactor); err != nil {
		return nil, err
	}
	if err := queryFloat(q, "migration_weight", &o.MigrationWeight); err != nil {
		return nil, err
	}
	if err := queryInt64(q, "seed", &o.Seed); err != nil {
		return nil, err
	}
	req.Options = o
	return newRepartitionJob(req, g)
}

func (j *repartitionJob) timeoutMS() int64 { return j.req.TimeoutMS }

func (j *repartitionJob) key() (string, bool) {
	o := mlpart.RepartitionOptions{}
	if j.req.Options != nil {
		o = *j.req.Options
	}
	if o.Ubfactor == 0 {
		o.Ubfactor = 1.05
	}
	if o.MigrationWeight == 0 {
		o.MigrationWeight = 1
	}
	return fmt.Sprintf("%s|fp=%016x|k=%d|ub=%.17g mw=%.17g s=%d|wh=%016x",
		epRepartition, j.g.Fingerprint(), j.req.K,
		o.Ubfactor, o.MigrationWeight, o.Seed, hashInts(j.req.Where)), true
}

func (j *repartitionJob) run(ctx context.Context, _ mlpart.Tracer, _ *mlpart.FaultInjector) (any, error) {
	// Repartition is a single sweep with no level boundaries to poll, so
	// it only honors the deadline up front; it is the cheapest of the
	// three computations by a wide margin.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := mlpart.Repartition(j.g, j.req.K, j.req.Where, j.req.Options)
	if err != nil {
		return nil, err
	}
	return &mlpart.RepartitionResponse{
		Kind:           mlpart.WireKindRepartition,
		SchemaVersion:  mlpart.SchemaVersion,
		Vertices:       j.g.NumVertices(),
		Edges:          j.g.NumEdges(),
		K:              j.req.K,
		EdgeCut:        res.EdgeCut,
		PartWeights:    res.PartWeights,
		Where:          res.Where,
		MigratedWeight: res.MigratedWeight,
	}, nil
}
