package service

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets; bucket i
// counts requests with latency < 2^i microseconds. Observations past the
// last finite bound (~2^23 us ≈ 8.4s) land in a separate overflow (+Inf)
// counter rather than being folded into the last finite bucket, which
// would silently misreport an 8s request and a stuck 10-minute one as the
// same latency class.
const histBuckets = 24

// histogram is a fixed-bucket latency histogram maintained with plain
// atomics — no locks on the request path.
type histogram struct {
	buckets  [histBuckets]atomic.Int64
	overflow atomic.Int64
	count    atomic.Int64
	sumNS    atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	idx := bits.Len64(us) // 0 for 0us, grows with log2
	if idx >= histBuckets {
		h.overflow.Add(1)
	} else {
		h.buckets[idx].Add(1)
	}
	h.count.Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

// histogramVarz is the wire form of a histogram: cumulative counts per
// upper bound, in microseconds, plus the explicit +Inf bucket. The
// invariant Count == Overflow + last cumulative entry (when any finite
// observation exists) makes the overflow mass visible instead of folded
// into the top finite bound.
type histogramVarz struct {
	Count  int64   `json:"count"`
	SumNS  int64   `json:"sum_ns"`
	MeanNS int64   `json:"mean_ns"`
	Bucket []int64 `json:"buckets_le_pow2_us"`
	// Overflow is the +Inf bucket: observations past the last finite
	// power-of-two bound.
	Overflow int64 `json:"overflow"`
}

func (h *histogram) varz() histogramVarz {
	v := histogramVarz{
		Count:    h.count.Load(),
		SumNS:    h.sumNS.Load(),
		Overflow: h.overflow.Load(),
	}
	if v.Count > 0 {
		v.MeanNS = v.SumNS / v.Count
	}
	cum := int64(0)
	last := -1
	for i := histBuckets - 1; i >= 0; i-- {
		if h.buckets[i].Load() != 0 {
			last = i
			break
		}
	}
	for i := 0; i <= last; i++ {
		cum += h.buckets[i].Load()
		v.Bucket = append(v.Bucket, cum)
	}
	return v
}

// endpointMetrics aggregates per-endpoint traffic.
type endpointMetrics struct {
	requests  atomic.Int64
	completed atomic.Int64
	latency   histogram
}

// metrics is the server's whole observable state, all plain atomics so
// that /varz never contends with the request path.
type metrics struct {
	admitted atomic.Int64 // passed admission control
	rejected atomic.Int64 // shed with 429 at admission
	queued   atomic.Int64 // currently admitted but not yet computing
	inFlight atomic.Int64 // currently computing
	started  atomic.Int64 // computations actually begun (entered the pool)
	timedOut atomic.Int64 // deadline exceeded (queued or mid-compute)
	canceled atomic.Int64 // client went away mid-request
	badReqs  atomic.Int64 // malformed or invalid requests (4xx)
	errors   atomic.Int64 // internal failures (5xx)

	unsupportedMedia atomic.Int64 // requests refused with 415 (unknown Content-Type)

	panicsRecovered atomic.Int64 // worker panics converted to 500s
	degraded        atomic.Int64 // results produced via a degradation fallback

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// Per-preset request counters (fast/eco/strong, plus "custom" for an
	// explicit non-preset cycle count); bumped once per accepted partition
	// request, after validation.
	presetFast   atomic.Int64
	presetEco    atomic.Int64
	presetStrong atomic.Int64
	presetCustom atomic.Int64

	// Asynchronous job counters. Per-state occupancy lives in the job
	// store's gauges; these are the cumulative flows.
	jobsSubmitted     atomic.Int64 // accepted submissions (fresh jobs created)
	jobsCoalesced     atomic.Int64 // submissions absorbed by an identical active job
	jobsShed          atomic.Int64 // submissions refused with 429 (store full)
	jobsBatchOversize atomic.Int64 // batch submissions refused with 413 (too many entries)

	// jobQueueLatency is submit→start (time spent queued for a worker);
	// jobRunLatency is start→finish (compute time in the worker slot).
	jobQueueLatency histogram
	jobRunLatency   histogram

	endpoints map[string]*endpointMetrics
}

// countPreset bumps the counter for one accepted request's quality preset.
func (m *metrics) countPreset(p string) {
	switch p {
	case "eco":
		m.presetEco.Add(1)
	case "strong":
		m.presetStrong.Add(1)
	case "custom":
		m.presetCustom.Add(1)
	default:
		m.presetFast.Add(1)
	}
}

func newMetrics(endpoints ...string) *metrics {
	m := &metrics{endpoints: make(map[string]*endpointMetrics, len(endpoints))}
	for _, e := range endpoints {
		m.endpoints[e] = &endpointMetrics{}
	}
	return m
}

// endpointVarz is the wire form of one endpoint's counters.
type endpointVarz struct {
	Requests  int64         `json:"requests"`
	Completed int64         `json:"completed"`
	Latency   histogramVarz `json:"latency"`
}

// varz is the wire form of GET /varz.
type varz struct {
	// SchemaVersion is the wire schema version the daemon speaks
	// (mlpart.SchemaVersion).
	SchemaVersion int `json:"schema_version"`
	// BuildVersion is the daemon binary's module version as stamped by
	// the Go build ("(devel)" for a plain source build).
	BuildVersion string `json:"build_version"`
	// UptimeSeconds is the time since the Server was created.
	UptimeSeconds float64 `json:"uptime_seconds"`

	Workers       int   `json:"workers"`
	QueueCapacity int   `json:"queue_capacity"`
	QueueDepth    int64 `json:"queue_depth"`
	InFlight      int64 `json:"in_flight"`

	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Started  int64 `json:"started"`
	TimedOut int64 `json:"timed_out"`
	Canceled int64 `json:"canceled"`
	BadReqs  int64 `json:"bad_requests"`
	Errors   int64 `json:"internal_errors"`

	PanicsRecovered  int64 `json:"panics_recovered"`
	DegradedResults  int64 `json:"degraded_results"`
	UnsupportedMedia int64 `json:"unsupported_media_type"`
	Draining         bool  `json:"draining"`

	Cache struct {
		Size     int   `json:"size"`
		Capacity int   `json:"capacity"`
		Hits     int64 `json:"hits"`
		Misses   int64 `json:"misses"`
	} `json:"cache"`

	// Presets counts accepted partition requests by quality preset
	// ("custom" is an explicit cycle count that matches no preset).
	Presets struct {
		Fast   int64 `json:"fast"`
		Eco    int64 `json:"eco"`
		Strong int64 `json:"strong"`
		Custom int64 `json:"custom"`
	} `json:"presets"`

	// Jobs is the asynchronous job subsystem: store occupancy by state,
	// cumulative submission flows, and the two lifecycle latency
	// histograms (queued-for-worker and in-worker compute time).
	Jobs struct {
		Capacity int   `json:"capacity"`
		TTLMS    int64 `json:"ttl_ms"`
		// MaxBatchJobs is the per-batch entry cap; 0 means unlimited.
		MaxBatchJobs int   `json:"max_batch_jobs"`
		Submitted    int64 `json:"submitted"`
		Coalesced    int64 `json:"coalesced"`
		Shed         int64 `json:"shed"`
		// BatchOversize counts batch submissions refused with 413 for
		// exceeding MaxBatchJobs.
		BatchOversize int64 `json:"batch_oversize"`
		Expired       int64 `json:"expired"`

		Queued   int `json:"queued"`
		Running  int `json:"running"`
		Done     int `json:"done"`
		Failed   int `json:"failed"`
		Canceled int `json:"canceled"`

		QueueLatency histogramVarz `json:"queue_latency"`
		RunLatency   histogramVarz `json:"run_latency"`
	} `json:"jobs"`

	// Sessions is the resident graph session subsystem: occupancy against
	// its budgets, delta/repair flows by ladder tier, shedding, eviction
	// and crash-recovery counters. Disabled (all zero, enabled=false)
	// when the session API is off.
	Sessions struct {
		Enabled          bool  `json:"enabled"`
		Count            int   `json:"count"`
		MaxSessions      int   `json:"max_sessions"`
		ResidentBytes    int64 `json:"resident_bytes"`
		MaxResidentBytes int64 `json:"max_resident_bytes"`

		Created           int64 `json:"created"`
		Recovered         int64 `json:"recovered"`
		RecoveredDegraded int64 `json:"recovered_degraded"`
		RecoverFailures   int64 `json:"recover_failures"`
		EvictedIdle       int64 `json:"evicted_idle"`
		Deleted           int64 `json:"deleted"`

		DeltasApplied int64 `json:"deltas_applied"`
		OpsApplied    int64 `json:"ops_applied"`
		ShedBatch     int64 `json:"shed_batch"`
		ShedMemory    int64 `json:"shed_memory"`
		ApplyFailures int64 `json:"apply_failures"`

		Repairs struct {
			Boundary int64 `json:"boundary"`
			Full     int64 `json:"full"`
			VCycle   int64 `json:"vcycle"`
			Failed   int64 `json:"failed"`
		} `json:"repairs"`

		WALErrors      int64 `json:"wal_errors"`
		WALTruncations int64 `json:"wal_truncations"`
	} `json:"sessions"`

	Endpoints map[string]endpointVarz `json:"endpoints"`
}
