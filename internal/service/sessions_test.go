package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"mlpart"
	"mlpart/internal/faults"
)

func getURL(t *testing.T, client *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestSessionEndpointLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	c := &Client{Base: ts.URL, HTTP: &RetryClient{Client: ts.Client()}}
	ctx := context.Background()

	st, err := c.CreateSession(ctx, &mlpart.SessionCreateRequest{
		Graph: gridGraph(12, 12), K: 2, Seed: 7,
	})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if st.Kind != mlpart.WireKindSession || st.Vertices != 144 || st.K != 2 || st.EdgeCut <= 0 {
		t.Fatalf("bad create response: %+v", st)
	}
	if st.ID == "" || st.Where != nil {
		t.Fatalf("id %q / where %v", st.ID, st.Where)
	}

	got, err := c.GetSession(ctx, st.ID, true)
	if err != nil {
		t.Fatalf("GetSession: %v", err)
	}
	if len(got.Where) != 144 {
		t.Fatalf("where length %d", len(got.Where))
	}

	// Listing shows exactly this session.
	resp, data := getURL(t, ts.Client(), ts.URL+"/v1/graphs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d: %s", resp.StatusCode, data)
	}
	var list mlpart.SessionListResponse
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if list.Kind != mlpart.WireKindSessionList || len(list.Sessions) != 1 || list.Sessions[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}

	after, err := c.ApplyDeltas(ctx, st.ID, []mlpart.DeltaOp{
		{Op: mlpart.DeltaOpAdd, U: 0, V: 143, W: 1},
	})
	if err != nil {
		t.Fatalf("ApplyDeltas: %v", err)
	}
	if after.Seq != 1 || after.Deltas != 1 || after.LastRepair == "" {
		t.Fatalf("delta response: %+v", after)
	}

	rep, err := c.RepairSession(ctx, st.ID, "full")
	if err != nil {
		t.Fatalf("RepairSession: %v", err)
	}
	if rep.LastRepair != "full" || len(rep.Where) != 144 {
		t.Fatalf("repair response: %+v", rep)
	}

	if err := c.DeleteSession(ctx, st.ID); err != nil {
		t.Fatalf("DeleteSession: %v", err)
	}
	if _, err := c.GetSession(ctx, st.ID, false); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("get after delete: %v", err)
	}
}

func TestSessionBinaryCreate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wg := gridGraph(10, 10)
	g, err := wg.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mlpart.WriteBinaryGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/graphs?k=2&seed=5",
		mlpart.ContentTypeBinaryCSR, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st mlpart.SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Vertices != 100 || st.K != 2 {
		t.Fatalf("binary create: %+v", st)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/graphs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}
}

func TestSessionEndpointStatuses(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 1, MaxDeltaOps: 2})
	c := &Client{Base: ts.URL, HTTP: &RetryClient{Client: ts.Client()}}
	ctx := context.Background()
	client := ts.Client()

	st, err := c.CreateSession(ctx, &mlpart.SessionCreateRequest{Graph: gridGraph(8, 8), K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Same graph again → 409.
	resp, _ := postJSON(t, client, ts.URL+"/v1/graphs",
		mlpart.SessionCreateRequest{Graph: gridGraph(8, 8), K: 2, Seed: 1})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate: status %d, want 409", resp.StatusCode)
	}
	// Session count budget exhausted → 429 with Retry-After.
	resp, _ = postJSON(t, client, ts.URL+"/v1/graphs",
		mlpart.SessionCreateRequest{Graph: gridGraph(9, 9), K: 2, Seed: 1})
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("over budget: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// Invalid config → 400.
	resp, _ = postJSON(t, client, ts.URL+"/v1/graphs",
		mlpart.SessionCreateRequest{Graph: gridGraph(4, 4), K: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=1: status %d, want 400", resp.StatusCode)
	}
	// Unknown session → 404.
	resp, _ = getURL(t, client, ts.URL+"/v1/graphs/gdeadbeef00000000")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", resp.StatusCode)
	}
	// Invalid op → 400, and the batch rolled back.
	resp, _ = postJSON(t, client, ts.URL+"/v1/graphs/"+st.ID+"/edges",
		mlpart.SessionDeltaRequest{Ops: []mlpart.DeltaOp{{Op: "remove", U: 0, V: 63}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad op: status %d, want 400", resp.StatusCode)
	}
	// Oversized delta batch → 413.
	resp, _ = postJSON(t, client, ts.URL+"/v1/graphs/"+st.ID+"/edges",
		mlpart.SessionDeltaRequest{Ops: []mlpart.DeltaOp{
			{Op: "vwgt", U: 0, W: 2}, {Op: "vwgt", U: 1, W: 2}, {Op: "vwgt", U: 2, W: 2},
		}})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d, want 413", resp.StatusCode)
	}
	// Unknown repair mode → 400.
	resp, _ = postJSON(t, client, ts.URL+"/v1/graphs/"+st.ID+"/repartition",
		mlpart.SessionRepairRequest{Mode: "nonsense"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mode: status %d, want 400", resp.StatusCode)
	}
	// Unknown subresource → 404.
	resp, _ = postJSON(t, client, ts.URL+"/v1/graphs/"+st.ID+"/zap", struct{}{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bad subresource: status %d, want 404", resp.StatusCode)
	}
}

func TestSessionOversizeGraphSheds(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessionBytes: 64 << 10, MaxResidentBytes: 64 << 10})
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/graphs",
		mlpart.SessionCreateRequest{Graph: gridGraph(50, 50), K: 2, Seed: 1})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, data)
	}
}

func TestSessionAPIDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: -1})
	resp, _ := getURL(t, ts.Client(), ts.URL+"/v1/graphs")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("list: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/graphs",
		mlpart.SessionCreateRequest{Graph: gridGraph(4, 4), K: 2})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("create: status %d, want 404", resp.StatusCode)
	}
}

func TestSessionDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	c := &Client{Base: ts.URL, HTTP: &RetryClient{Client: ts.Client()}}
	st, err := c.CreateSession(context.Background(), &mlpart.SessionCreateRequest{Graph: gridGraph(6, 6), K: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.BeginDrain()
	// Mutating POSTs are refused...
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/graphs",
		mlpart.SessionCreateRequest{Graph: gridGraph(7, 7), K: 2})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/graphs/"+st.ID+"/edges",
		mlpart.SessionDeltaRequest{Ops: []mlpart.DeltaOp{{Op: "vwgt", U: 0, W: 2}}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("delta while draining: status %d", resp.StatusCode)
	}
	// ...but reads and deletes still work so clients can wind down.
	if _, err := c.GetSession(context.Background(), st.ID, false); err != nil {
		t.Fatalf("get while draining: %v", err)
	}
	if err := c.DeleteSession(context.Background(), st.ID); err != nil {
		t.Fatalf("delete while draining: %v", err)
	}
}

func TestSessionFaultIncident(t *testing.T) {
	inj := faults.MustParse(faults.SiteSessionApply + "=error@1")
	_, ts := newTestServer(t, Config{FaultInjector: inj})
	c := &Client{Base: ts.URL, HTTP: &RetryClient{Client: ts.Client()}}
	st, err := c.CreateSession(context.Background(), &mlpart.SessionCreateRequest{Graph: gridGraph(8, 8), K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/graphs/"+st.ID+"/edges",
		mlpart.SessionDeltaRequest{Ops: []mlpart.DeltaOp{{Op: "add", U: 0, V: 63, W: 1}}})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("X-Incident-Id") == "" {
		t.Fatal("no incident id on injected failure")
	}
	// The session survives the fault and the batch left no trace.
	got, err := c.GetSession(context.Background(), st.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 0 || got.EdgeCut != st.EdgeCut {
		t.Fatalf("state drifted: %+v vs %+v", got, st)
	}
}

func TestSessionVarz(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 4, MaxDeltaOps: 2})
	c := &Client{Base: ts.URL, HTTP: &RetryClient{Client: ts.Client()}}
	ctx := context.Background()
	st, err := c.CreateSession(ctx, &mlpart.SessionCreateRequest{Graph: gridGraph(8, 8), K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyDeltas(ctx, st.ID, []mlpart.DeltaOp{{Op: "add", U: 0, V: 63, W: 1}}); err != nil {
		t.Fatal(err)
	}
	// One shed batch for the counter.
	postJSON(t, ts.Client(), ts.URL+"/v1/graphs/"+st.ID+"/edges",
		mlpart.SessionDeltaRequest{Ops: []mlpart.DeltaOp{
			{Op: "vwgt", U: 0, W: 2}, {Op: "vwgt", U: 1, W: 2}, {Op: "vwgt", U: 2, W: 2},
		}})

	resp, data := getURL(t, ts.Client(), ts.URL+"/varz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("varz status %d", resp.StatusCode)
	}
	var v varz
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decode varz: %v", err)
	}
	sv := v.Sessions
	if !sv.Enabled || sv.Count != 1 || sv.MaxSessions != 4 {
		t.Fatalf("sessions varz: %+v", sv)
	}
	if sv.Created != 1 || sv.DeltasApplied != 1 || sv.OpsApplied != 1 || sv.ShedBatch != 1 {
		t.Fatalf("sessions counters: %+v", sv)
	}
	if sv.ResidentBytes <= 0 {
		t.Fatalf("resident bytes %d", sv.ResidentBytes)
	}
	if sv.Repairs.Boundary+sv.Repairs.Full+sv.Repairs.VCycle != 1 {
		t.Fatalf("repair counters: %+v", sv.Repairs)
	}
	if _, ok := v.Endpoints["sessions"]; !ok {
		t.Fatalf("no sessions endpoint block: %v", v.Endpoints)
	}
}

func TestJobsBatchCap(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchJobs: 2})
	entries := make([]mlpart.BatchJob, 3)
	for i := range entries {
		r := mlpart.PartitionRequest{Graph: gridGraph(4, 4), K: 2, Options: &mlpart.Options{Seed: int64(i + 1)}}
		entries[i] = mlpart.BatchJob{Partition: &r}
	}
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/jobs/batch", mlpart.BatchRequest{Jobs: entries})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, data)
	}
	// Two entries fit.
	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/jobs/batch", mlpart.BatchRequest{Jobs: entries[:2]})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	vresp, vdata := getURL(t, ts.Client(), ts.URL+"/varz")
	if vresp.StatusCode != http.StatusOK {
		t.Fatal("varz unavailable")
	}
	var v varz
	if err := json.Unmarshal(vdata, &v); err != nil {
		t.Fatal(err)
	}
	if v.Jobs.MaxBatchJobs != 2 || v.Jobs.BatchOversize != 1 {
		t.Fatalf("jobs varz: max_batch_jobs %d, batch_oversize %d", v.Jobs.MaxBatchJobs, v.Jobs.BatchOversize)
	}
}
