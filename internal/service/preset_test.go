package service

import (
	"net/http"
	"net/url"
	"testing"

	"mlpart"
)

// TestCachePresetKeying asserts the cache-key contract for quality
// presets: fast and strong requests never alias (a strong cut must not be
// served to a fast client, nor the reverse), while preset=strong and the
// equivalent explicit cycles=4 canonicalize to one entry.
func TestCachePresetKeying(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	wg := gridGraph(12, 12)
	post := func(o *mlpart.Options) (string, int) {
		t.Helper()
		resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/partition",
			mlpart.PartitionRequest{Graph: wg, K: 4, Options: o})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		return resp.Header.Get("X-Cache"), resp.StatusCode
	}

	if c, _ := post(&mlpart.Options{Seed: 3}); c != "miss" {
		t.Errorf("fast cold: X-Cache = %q, want miss", c)
	}
	if c, _ := post(&mlpart.Options{Seed: 3, Preset: mlpart.PresetStrong}); c != "miss" {
		t.Errorf("strong after fast: X-Cache = %q, want miss (presets must not alias)", c)
	}
	if c, _ := post(&mlpart.Options{Seed: 3, Cycles: 4}); c != "hit" {
		t.Errorf("cycles=4 after preset=strong: X-Cache = %q, want hit (same effective run)", c)
	}
	if c, _ := post(&mlpart.Options{Seed: 3, Preset: mlpart.PresetFast}); c != "hit" {
		t.Errorf("explicit fast after implicit fast: X-Cache = %q, want hit", c)
	}
	if size := s.cache.len(); size != 2 {
		t.Errorf("cache size = %d, want 2 (one fast entry, one strong entry)", size)
	}

	// Preset varz counters: 2 fast requests, 2 strong-equivalent requests.
	if got := s.met.presetFast.Load(); got != 2 {
		t.Errorf("presetFast = %d, want 2", got)
	}
	if got := s.met.presetStrong.Load(); got != 2 {
		t.Errorf("presetStrong = %d, want 2", got)
	}
	if got := s.met.presetEco.Load(); got != 0 {
		t.Errorf("presetEco = %d, want 0", got)
	}
}

// TestCanonicalOptionsCycles pins the canonical key's cycle term directly:
// preset names, explicit counts and the default all resolve through
// EffectiveCycles.
func TestCanonicalOptionsCycles(t *testing.T) {
	fast := canonicalOptions(&mlpart.Options{})
	eco := canonicalOptions(&mlpart.Options{Preset: mlpart.PresetEco})
	strong := canonicalOptions(&mlpart.Options{Preset: mlpart.PresetStrong})
	four := canonicalOptions(&mlpart.Options{Cycles: 4})
	if fast == eco || eco == strong || fast == strong {
		t.Errorf("preset keys alias: fast=%q eco=%q strong=%q", fast, eco, strong)
	}
	if strong != four {
		t.Errorf("preset=strong key %q != cycles=4 key %q", strong, four)
	}
	if nilKey := canonicalOptions(nil); nilKey != fast {
		t.Errorf("nil options key %q != default key %q", nilKey, fast)
	}
}

// TestPresetFromQuery asserts the binary-CSR query-parameter path decodes
// preset and cycles like the JSON body path.
func TestPresetFromQuery(t *testing.T) {
	q, err := url.ParseQuery("preset=eco&cycles=3&seed=7")
	if err != nil {
		t.Fatal(err)
	}
	o, err := optionsFromQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if o.Preset != mlpart.PresetEco || o.Cycles != 3 || o.Seed != 7 {
		t.Errorf("decoded %+v, want preset=eco cycles=3 seed=7", o)
	}
	if got := o.EffectiveCycles(); got != 3 {
		t.Errorf("EffectiveCycles = %d, want 3 (explicit count overrides preset)", got)
	}
}
