package service

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"mlpart"
)

// TestReadyzDrain verifies the liveness/readiness split: BeginDrain flips
// /readyz to 503 while /healthz stays 200 (a draining process is alive —
// restarting it would abort its in-flight work), and a request already in
// the pool still completes.
func TestReadyzDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, strings.TrimSpace(string(data))
	}

	if code, body := get("/readyz"); code != http.StatusOK || body != "ok" {
		t.Fatalf("before drain: /readyz = %d %q, want 200 ok", code, body)
	}

	// Park a request inside the worker pool, then start draining.
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	s.hookCompute = func(context.Context) {
		entered <- struct{}{}
		<-block
	}
	inflight := make(chan *http.Response, 1)
	go func() {
		resp, _ := postJSONNoFatal(ts.Client(), ts.URL+"/v1/partition", mlpart.PartitionRequest{
			Graph: gridGraph(8, 8), K: 2,
		})
		inflight <- resp
	}()
	<-entered

	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body != "draining" {
		t.Errorf("during drain: /readyz = %d %q, want 503 draining", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("during drain: /healthz = %d, want 200 (liveness must outlive readiness)", code)
	}

	// The in-flight request is unaffected by the readiness flip.
	close(block)
	if resp := <-inflight; resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request during drain: %+v, want 200", resp)
	}

	// BeginDrain is idempotent and sticky.
	s.BeginDrain()
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("after second BeginDrain: /readyz = %d, want 503", code)
	}
}
