package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"mlpart"
	"mlpart/internal/faults"
)

// TestChaosServiceWorkerPanic poisons exactly the first request at the
// service worker boundary: it must come back as a 500 with an incident
// id, the daemon must keep serving (the identical retry succeeds), and
// the recovery must be counted.
func TestChaosServiceWorkerPanic(t *testing.T) {
	s, ts := newTestServer(t, Config{
		FaultInjector: faults.MustParse("service/worker=panic@1"),
	})
	req := mlpart.PartitionRequest{Graph: gridGraph(12, 12), K: 4, Options: &mlpart.Options{Seed: 7}}

	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/partition", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned request: status %d, want 500 (%s)", resp.StatusCode, data)
	}
	if resp.Header.Get("X-Incident-Id") == "" {
		t.Error("poisoned request: missing X-Incident-Id header")
	}
	var er mlpart.ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil || er.Kind != mlpart.WireKindError {
		t.Errorf("500 body is not an error object: %s", data)
	}

	// The panic poisoned one request, not the daemon: the identical
	// request (trigger @1 is spent) must now succeed.
	resp2, data2 := postJSON(t, ts.Client(), ts.URL+"/v1/partition", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retry after poisoned request: status %d, want 200 (%s)", resp2.StatusCode, data2)
	}
	var pr mlpart.PartitionResponse
	if err := json.Unmarshal(data2, &pr); err != nil || len(pr.Where) != 144 {
		t.Fatalf("retry response malformed: %v %s", err, data2)
	}

	if got := s.met.panicsRecovered.Load(); got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}
}

// TestChaosEngineBisectPanic drives the panic deep into a parallel
// best-of-NCuts bisection worker goroutine: the recovery chain
// (trial goroutine capture -> engine fail -> run error -> handler 500)
// must hold across all of those layers.
func TestChaosEngineBisectPanic(t *testing.T) {
	s, ts := newTestServer(t, Config{
		FaultInjector: faults.MustParse("engine/bisect=panic@1"),
	})
	req := mlpart.PartitionRequest{Graph: gridGraph(16, 16), K: 4, Options: &mlpart.Options{
		Seed: 3, Parallel: true, NCuts: 4,
	}}

	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/partition", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned request: status %d, want 500 (%s)", resp.StatusCode, data)
	}
	if resp.Header.Get("X-Incident-Id") == "" {
		t.Error("poisoned request: missing X-Incident-Id header")
	}

	resp2, data2 := postJSON(t, ts.Client(), ts.URL+"/v1/partition", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retry after poisoned request: status %d, want 200 (%s)", resp2.StatusCode, data2)
	}

	if got := s.met.panicsRecovered.Load(); got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}
	if got := s.met.errors.Load(); got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
}

// TestChaosHammer fires probabilistic panics at the worker boundary while
// many clients hammer the daemon concurrently (run under -race in CI with
// several CHAOS_SEED values). Every response must be a clean 200 or a
// 500-with-incident — never a hang, crash or torn body — and the recovery
// counter must account for every 500.
func TestChaosHammer(t *testing.T) {
	seed := 1
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("CHAOS_SEED %q: %v", v, err)
		}
		seed = n
	}
	plan := fmt.Sprintf("seed=%d;service/worker=panic@p0.3", seed)
	s, ts := newTestServer(t, Config{
		Workers:       4,
		CacheSize:     -1, // every request must reach the worker boundary
		FaultInjector: faults.MustParse(plan),
	})

	const clients, perClient = 8, 5
	var failed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, _ := postJSONNoFatal(ts.Client(), ts.URL+"/v1/partition", mlpart.PartitionRequest{
					Graph: gridGraph(10, 10), K: 2, Options: &mlpart.Options{Seed: int64(c)},
				})
				if resp == nil {
					t.Errorf("client %d request %d: transport error", c, i)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK, http.StatusTooManyRequests:
				case http.StatusInternalServerError:
					failed.Add(1)
					if resp.Header.Get("X-Incident-Id") == "" {
						t.Errorf("client %d request %d: 500 without X-Incident-Id", c, i)
					}
				default:
					t.Errorf("client %d request %d: unexpected status %d", c, i, resp.StatusCode)
				}
			}
		}(c)
	}
	wg.Wait()

	// The daemon survived the barrage and every 500 was a counted
	// recovery, not a silent swallow.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("daemon unreachable after hammer: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz after hammer: %d", resp.StatusCode)
	}
	if got, want := s.met.panicsRecovered.Load(), failed.Load(); got != want {
		t.Errorf("panics_recovered = %d, but clients saw %d poisoned responses", got, want)
	}
	t.Logf("chaos seed %d: %d/%d requests poisoned and recovered", seed, failed.Load(), clients*perClient)
}

// TestChaosInjectedErrorIs500NotPanic: an injected *error* (not panic) at
// the worker boundary is an internal failure with an incident id but must
// not count as a recovered panic.
func TestChaosInjectedError(t *testing.T) {
	s, ts := newTestServer(t, Config{
		FaultInjector: faults.MustParse("service/worker=error@1"),
	})
	req := mlpart.PartitionRequest{Graph: gridGraph(8, 8), K: 2}

	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/partition", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (%s)", resp.StatusCode, data)
	}
	if resp.Header.Get("X-Incident-Id") == "" {
		t.Error("missing X-Incident-Id header")
	}
	if got := s.met.panicsRecovered.Load(); got != 0 {
		t.Errorf("panics_recovered = %d, want 0 (injected error is not a panic)", got)
	}
	if got := s.met.errors.Load(); got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}

	resp2, _ := postJSON(t, ts.Client(), ts.URL+"/v1/partition", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retry status %d, want 200", resp2.StatusCode)
	}
}

// TestDegradedResultNotCached: a response produced through a degradation
// fallback is valid but execution-specific; it must be counted and must
// not be replayed from the cache once the fault plan stops firing.
func TestDegradedResultNotCached(t *testing.T) {
	s, ts := newTestServer(t, Config{
		FaultInjector: faults.MustParse("coarsen/match=error@1"),
	})
	req := mlpart.PartitionRequest{Graph: gridGraph(14, 14), K: 2, Options: &mlpart.Options{
		Seed: 5, Matching: "HCM",
	}}

	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/partition", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded request: status %d, want 200 (%s)", resp.StatusCode, data)
	}
	var pr mlpart.PartitionResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Degradations) == 0 {
		t.Fatalf("response carries no degradations: %s", data)
	}
	if pr.Degradations[0].Phase != "coarsen" || pr.Degradations[0].To != "HEM" {
		t.Errorf("degradation = %+v, want coarsen HCM->HEM", pr.Degradations[0])
	}
	if got := s.met.degraded.Load(); got != 1 {
		t.Errorf("degraded_results = %d, want 1", got)
	}

	// The retry (fault spent) computes cleanly: no cache hit, and no
	// degradations in the body.
	resp2, data2 := postJSON(t, ts.Client(), ts.URL+"/v1/partition", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("clean retry: status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got == "hit" {
		t.Error("clean retry served from cache: degraded results must not be cached")
	}
	var pr2 mlpart.PartitionResponse
	if err := json.Unmarshal(data2, &pr2); err != nil {
		t.Fatal(err)
	}
	if len(pr2.Degradations) != 0 {
		t.Errorf("clean retry still reports degradations: %+v", pr2.Degradations)
	}
}
