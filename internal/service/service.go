// Package service implements partitioning-as-a-service: a stdlib-only
// HTTP JSON API over the multilevel engine, designed to run as a
// long-lived daemon (cmd/mlserved) in front of the same deterministic
// pipeline the CLI tools drive.
//
// Endpoints:
//
//	POST /v1/partition    k-way / weighted / direct k-way partition
//	POST /v1/order        multilevel nested-dissection ordering
//	POST /v1/repartition  adaptive repartitioning (minimal migration)
//	GET  /healthz         liveness probe
//	GET  /varz            queue depth, in-flight, cache and latency stats
//
// Request and response bodies are the wire schema of the root package
// (mlpart.PartitionRequest and friends) — the same objects `mlpart -json`
// emits — so clients can switch between the CLI and the daemon without
// remapping fields. See docs/SERVICE.md for the full API reference.
//
// Three properties make the engine serviceable and the server leans on
// each:
//
//   - Cancellation: every V-cycle checks its context at level boundaries
//     (PartitionCtx, NestedDissectionCtx), so per-request deadlines and
//     client disconnects abort computations mid-flight instead of
//     burning a worker.
//   - Determinism: a fixed seed fixes the result bit-for-bit, so results
//     are cacheable; the LRU result cache is keyed by
//     Graph.Fingerprint() plus the canonicalized options and replays
//     byte-identical bodies.
//   - Observability: the internal/trace event layer can be attached per
//     request (?trace=1) to return the engine's per-level events
//     alongside the result.
//
// Load discipline: at most Config.Workers computations run concurrently
// and at most Config.QueueSize more may wait; everything beyond that is
// shed immediately with 429 and a Retry-After hint, so the daemon
// degrades by refusing work, never by queueing without bound.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"mlpart"
)

// Config sizes the daemon. The zero value is production-safe: GOMAXPROCS
// workers, a 4x admission queue, a 256-entry result cache and a 60s
// compute ceiling.
type Config struct {
	// Workers is the number of concurrent computations (0 means
	// GOMAXPROCS).
	Workers int
	// QueueSize is how many admitted requests may wait for a worker
	// beyond the running ones (0 means 4*Workers, negative means no
	// queue: shed unless a worker is free).
	QueueSize int
	// CacheSize is the result cache capacity in entries (0 means 256,
	// negative disables caching).
	CacheSize int
	// Timeout is the per-request compute ceiling; requests may lower it
	// with timeout_ms but never raise it (0 means 60s).
	Timeout time.Duration
	// MaxBodyBytes bounds request bodies (0 means 64 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.QueueSize == 0:
		c.QueueSize = 4 * c.Workers
	case c.QueueSize < 0:
		c.QueueSize = 0
	}
	switch {
	case c.CacheSize == 0:
		c.CacheSize = 256
	case c.CacheSize < 0:
		c.CacheSize = 0
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// Server is the partitioning daemon's HTTP handler set. Create one with
// New and mount it on an http.Server (it implements http.Handler).
type Server struct {
	cfg   Config
	pool  *pool
	cache *resultCache
	met   *metrics
	mux   *http.ServeMux

	// hookCompute, when non-nil, runs inside the worker slot right
	// before the computation starts, with the request's compute context.
	// Tests use it to hold slots open deterministically.
	hookCompute func(ctx context.Context)
}

// New returns a Server with cfg (zero value for defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		pool:  newPool(cfg.Workers, cfg.QueueSize),
		cache: newResultCache(cfg.CacheSize),
		met:   newMetrics(epPartition, epOrder, epRepartition),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/partition", func(w http.ResponseWriter, r *http.Request) {
		s.serveCompute(w, r, epPartition, decodePartition)
	})
	s.mux.HandleFunc("/v1/order", func(w http.ResponseWriter, r *http.Request) {
		s.serveCompute(w, r, epOrder, decodeOrder)
	})
	s.mux.HandleFunc("/v1/repartition", func(w http.ResponseWriter, r *http.Request) {
		s.serveCompute(w, r, epRepartition, decodeRepartition)
	})
	s.mux.HandleFunc("/healthz", s.serveHealthz)
	s.mux.HandleFunc("/varz", s.serveVarz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) serveVarz(w http.ResponseWriter, r *http.Request) {
	m := s.met
	v := varz{
		Workers:       s.pool.workers(),
		QueueCapacity: s.pool.queueCapacity(),
		QueueDepth:    m.queued.Load(),
		InFlight:      m.inFlight.Load(),
		Admitted:      m.admitted.Load(),
		Rejected:      m.rejected.Load(),
		Started:       m.started.Load(),
		TimedOut:      m.timedOut.Load(),
		Canceled:      m.canceled.Load(),
		BadReqs:       m.badReqs.Load(),
		Errors:        m.errors.Load(),
		Endpoints:     make(map[string]endpointVarz, len(m.endpoints)),
	}
	v.Cache.Size = s.cache.len()
	v.Cache.Capacity = s.cfg.CacheSize
	v.Cache.Hits = m.cacheHits.Load()
	v.Cache.Misses = m.cacheMisses.Load()
	for name, ep := range m.endpoints {
		v.Endpoints[name] = endpointVarz{
			Requests:  ep.requests.Load(),
			Completed: ep.completed.Load(),
			Latency:   ep.latency.varz(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the wire schema's error object.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(mlpart.ErrorResponse{
		Kind:  mlpart.WireKindError,
		Error: fmt.Sprintf(format, args...),
	})
}
