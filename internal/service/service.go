// Package service implements partitioning-as-a-service: a stdlib-only
// HTTP JSON API over the multilevel engine, designed to run as a
// long-lived daemon (cmd/mlserved) in front of the same deterministic
// pipeline the CLI tools drive.
//
// Endpoints:
//
//	POST /v1/partition    k-way / weighted / direct k-way partition
//	POST /v1/order        multilevel nested-dissection ordering
//	POST /v1/repartition  adaptive repartitioning (minimal migration)
//	GET  /healthz         liveness probe (200 for the process lifetime)
//	GET  /readyz          readiness probe (503 once draining begins)
//	GET  /varz            queue depth, in-flight, cache and latency stats
//
// Request and response bodies are the wire schema of the root package
// (mlpart.PartitionRequest and friends) — the same objects `mlpart -json`
// emits — so clients can switch between the CLI and the daemon without
// remapping fields. See docs/SERVICE.md for the full API reference.
//
// Three properties make the engine serviceable and the server leans on
// each:
//
//   - Cancellation: every V-cycle checks its context at level boundaries
//     (PartitionCtx, NestedDissectionCtx), so per-request deadlines and
//     client disconnects abort computations mid-flight instead of
//     burning a worker.
//   - Determinism: a fixed seed fixes the result bit-for-bit, so results
//     are cacheable; the LRU result cache is keyed by
//     Graph.Fingerprint() plus the canonicalized options and replays
//     byte-identical bodies.
//   - Observability: the internal/trace event layer can be attached per
//     request (?trace=1) to return the engine's per-level events
//     alongside the result.
//
// Load discipline: at most Config.Workers computations run concurrently
// and at most Config.QueueSize more may wait; everything beyond that is
// shed immediately with 429 and a Retry-After hint, so the daemon
// degrades by refusing work, never by queueing without bound.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mlpart"
	"mlpart/internal/faults"
	"mlpart/internal/jobs"
	"mlpart/internal/sessions"
)

// Config sizes the daemon. The zero value is production-safe: GOMAXPROCS
// workers, a 4x admission queue, a 256-entry result cache and a 60s
// compute ceiling.
type Config struct {
	// Workers is the number of concurrent computations (0 means
	// GOMAXPROCS).
	Workers int
	// QueueSize is how many admitted requests may wait for a worker
	// beyond the running ones (0 means 4*Workers, negative means no
	// queue: shed unless a worker is free).
	QueueSize int
	// CacheSize is the result cache capacity in entries (0 means 256,
	// negative disables caching).
	CacheSize int
	// Timeout is the per-request compute ceiling; requests may lower it
	// with timeout_ms but never raise it (0 means 60s).
	Timeout time.Duration
	// MaxBodyBytes bounds request bodies (0 means 64 MiB).
	MaxBodyBytes int64
	// JobCapacity bounds the asynchronous job store: every record — queued,
	// running or retained finished — takes one slot, and submissions beyond
	// it are shed with 429 (0 means 1024, negative disables the job API:
	// every submission sheds).
	JobCapacity int
	// JobTTL is how long a finished job's result is retained for polling
	// before eviction (0 means 10 minutes).
	JobTTL time.Duration
	// MaxBatchJobs caps the entries of one POST /v1/jobs/batch submission
	// (0 means 256, negative means unlimited). Oversized batches are
	// refused with 413 before any entry is decoded, so an unbounded batch
	// can no longer exhaust memory ahead of admission control.
	MaxBatchJobs int

	// StateDir, when non-empty, makes graph sessions durable: each
	// session keeps an append-only delta log plus periodic snapshots
	// under this directory and is recovered on startup. Empty means
	// sessions are memory-only.
	StateDir string
	// MaxSessions bounds resident graph sessions (0 means 64; negative
	// disables the session API entirely — /v1/graphs replies 404).
	MaxSessions int
	// MaxSessionBytes bounds one session's estimated resident bytes
	// (0 means 256 MiB); oversized graphs and batches get 413.
	MaxSessionBytes int64
	// MaxResidentBytes bounds the total across sessions (0 means 1 GiB);
	// exceeding it after idle eviction gets 429.
	MaxResidentBytes int64
	// MaxDeltaOps bounds the ops of one session delta batch (0 means
	// 4096); larger batches get 413.
	MaxDeltaOps int
	// SessionTTL is the idle window after which a session may be evicted
	// to disk (0 means 30m; only durable sessions are evicted).
	SessionTTL time.Duration
	// SnapshotEvery compacts a session's delta log into a snapshot after
	// this many records (0 means 64).
	SnapshotEvery int
	// FaultInjector, when non-nil, is threaded into every computation and
	// consulted at the engine's named sites plus the service worker path.
	// It is server-level (one injector, shared hit counters) so plans like
	// "panic on the 3rd computation" span requests; it is never taken from
	// request bodies — fault injection is an operator capability.
	FaultInjector *faults.Injector
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.QueueSize == 0:
		c.QueueSize = 4 * c.Workers
	case c.QueueSize < 0:
		c.QueueSize = 0
	}
	switch {
	case c.CacheSize == 0:
		c.CacheSize = 256
	case c.CacheSize < 0:
		c.CacheSize = 0
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxBatchJobs == 0 {
		c.MaxBatchJobs = 256
	}
	return c
}

// Server is the partitioning daemon's HTTP handler set. Create one with
// New and mount it on an http.Server (it implements http.Handler).
type Server struct {
	cfg    Config
	pool   *pool
	cache  *resultCache
	met    *metrics
	mux    *http.ServeMux
	inj    *faults.Injector
	bootID string

	jobs  *jobs.Store
	jobWG sync.WaitGroup // runner goroutines of spawned jobs

	// sessions is the resident graph session registry; nil when the
	// session API is disabled (MaxSessions < 0).
	sessions *sessions.Manager

	start        time.Time
	buildVersion string

	draining    atomic.Bool
	incidentSeq atomic.Int64

	// hookCompute, when non-nil, runs inside the worker slot right
	// before the computation starts, with the request's compute context.
	// Tests use it to hold slots open deterministically.
	hookCompute func(ctx context.Context)
}

// New returns a Server with cfg (zero value for defaults). It fails
// only on session-state problems: invalid session options or an
// unusable StateDir.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:          cfg,
		pool:         newPool(cfg.Workers, cfg.QueueSize),
		cache:        newResultCache(cfg.CacheSize),
		met:          newMetrics(epPartition, epOrder, epRepartition, epSessions),
		inj:          cfg.FaultInjector,
		bootID:       fmt.Sprintf("%08x", time.Now().UnixNano()&0xffffffff),
		start:        time.Now(),
		buildVersion: buildVersion(),
	}
	s.jobs = jobs.New(jobs.Config{
		Capacity: cfg.JobCapacity,
		TTL:      cfg.JobTTL,
		Prefix:   s.bootID + "-",
	})
	if cfg.MaxSessions >= 0 {
		mgr, err := sessions.NewManager(sessions.Options{
			StateDir:         cfg.StateDir,
			MaxSessions:      cfg.MaxSessions,
			MaxSessionBytes:  cfg.MaxSessionBytes,
			MaxResidentBytes: cfg.MaxResidentBytes,
			MaxDeltaOps:      cfg.MaxDeltaOps,
			IdleTTL:          cfg.SessionTTL,
			SnapshotEvery:    cfg.SnapshotEvery,
			Injector:         cfg.FaultInjector,
		})
		if err != nil {
			return nil, err
		}
		s.sessions = mgr
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/jobs", s.serveJobSubmit)
	s.mux.HandleFunc("/v1/jobs/batch", s.serveJobBatch)
	s.mux.HandleFunc("/v1/jobs/", s.serveJobByID)
	s.mux.HandleFunc("/v1/graphs", s.serveSessions)
	s.mux.HandleFunc("/v1/graphs/", s.serveSessionByID)
	s.mux.HandleFunc("/v1/partition", func(w http.ResponseWriter, r *http.Request) {
		s.serveCompute(w, r, epPartition, codec{json: decodePartition, binary: decodePartitionBinary})
	})
	s.mux.HandleFunc("/v1/order", func(w http.ResponseWriter, r *http.Request) {
		s.serveCompute(w, r, epOrder, codec{json: decodeOrder, binary: decodeOrderBinary})
	})
	s.mux.HandleFunc("/v1/repartition", func(w http.ResponseWriter, r *http.Request) {
		s.serveCompute(w, r, epRepartition, codec{json: decodeRepartition, binary: decodeRepartitionBinary})
	})
	s.mux.HandleFunc("/v1/capabilities", s.serveCapabilities)
	s.mux.HandleFunc("/healthz", s.serveHealthz)
	s.mux.HandleFunc("/readyz", s.serveReadyz)
	s.mux.HandleFunc("/varz", s.serveVarz)
	return s, nil
}

// SweepSessions evicts idle graph sessions (durable mode); cmd/mlserved
// calls it on a timer. Returns the number evicted.
func (s *Server) SweepSessions() int {
	if s.sessions == nil {
		return 0
	}
	return s.sessions.Sweep()
}

// CloseSessions flushes every dirty session's snapshot and closes the
// delta logs — the final step of drain choreography, after WaitJobs.
func (s *Server) CloseSessions() error {
	if s.sessions == nil {
		return nil
	}
	return s.sessions.Close()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// serveCapabilities answers GET /v1/capabilities with the server's
// supported algorithm names (coarsening schemes with family metadata,
// initial partitioners, refinements, presets, orderings, workloads), built
// from the same registries the engine resolves names against. SDK clients
// discover valid option values here instead of hardcoding strings; the
// document is static for a given build, so clients may cache it per
// connection.
func (s *Server) serveCapabilities(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed; use GET", r.Method)
		return
	}
	b, err := json.Marshal(mlpart.NewCapabilitiesResponse())
	if err != nil {
		// The capabilities object contains nothing unmarshalable; unreachable.
		panic(err)
	}
	writeBody(w, http.StatusOK, append(b, '\n'))
}

// serveHealthz is the liveness probe: 200 for the whole process lifetime,
// including the drain window — a draining daemon is alive, just not
// accepting new traffic. Restart-on-liveness-failure orchestrators must
// never kill a cleanly draining process.
func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// serveReadyz is the readiness probe: 503 once BeginDrain has been called,
// so load balancers stop routing new requests while in-flight ones finish.
func (s *Server) serveReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// BeginDrain flips the readiness probe to 503. Call it on SIGTERM, before
// http.Server.Shutdown, and give load balancers a grace window to observe
// the flip; /healthz and in-flight requests are unaffected. Draining also
// refuses new job submissions (503) — accepted jobs keep running; wait for
// them with WaitJobs after Shutdown returns.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// WaitJobs blocks until every spawned job runner has returned, or ctx
// fires. Asynchronous jobs outlive their submission request, so
// http.Server.Shutdown alone does not cover them: drain choreography is
// BeginDrain (refuse new submissions) → Shutdown (in-flight HTTP) →
// WaitJobs (running jobs). It returns ctx.Err() when the wait was cut
// short, nil when all runners finished.
func (s *Server) WaitJobs(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// buildVersion reports the main module's version as stamped by the build
// ("(devel)" for plain `go build`, a pseudo-version for module builds).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// nextIncident returns a process-unique incident id for a 500 reply; the
// same id goes to the client (X-Incident-Id) and the server log, so one
// grep connects a user report to the recovered stack.
func (s *Server) nextIncident() string {
	return fmt.Sprintf("%s-%06d", s.bootID, s.incidentSeq.Add(1))
}

func (s *Server) serveVarz(w http.ResponseWriter, r *http.Request) {
	m := s.met
	v := varz{
		SchemaVersion:    mlpart.SchemaVersion,
		BuildVersion:     s.buildVersion,
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Workers:          s.pool.workers(),
		QueueCapacity:    s.pool.queueCapacity(),
		QueueDepth:       m.queued.Load(),
		InFlight:         m.inFlight.Load(),
		Admitted:         m.admitted.Load(),
		Rejected:         m.rejected.Load(),
		Started:          m.started.Load(),
		TimedOut:         m.timedOut.Load(),
		Canceled:         m.canceled.Load(),
		BadReqs:          m.badReqs.Load(),
		Errors:           m.errors.Load(),
		PanicsRecovered:  m.panicsRecovered.Load(),
		DegradedResults:  m.degraded.Load(),
		UnsupportedMedia: m.unsupportedMedia.Load(),
		Draining:         s.draining.Load(),
		Endpoints:        make(map[string]endpointVarz, len(m.endpoints)),
	}
	v.Cache.Size = s.cache.len()
	v.Cache.Capacity = s.cfg.CacheSize
	v.Cache.Hits = m.cacheHits.Load()
	v.Cache.Misses = m.cacheMisses.Load()
	v.Presets.Fast = m.presetFast.Load()
	v.Presets.Eco = m.presetEco.Load()
	v.Presets.Strong = m.presetStrong.Load()
	v.Presets.Custom = m.presetCustom.Load()
	jg := s.jobs.Gauges()
	v.Jobs.Capacity = s.jobs.Capacity()
	v.Jobs.TTLMS = s.jobs.TTL().Milliseconds()
	if s.cfg.MaxBatchJobs > 0 {
		v.Jobs.MaxBatchJobs = s.cfg.MaxBatchJobs
	}
	v.Jobs.Submitted = m.jobsSubmitted.Load()
	v.Jobs.Coalesced = m.jobsCoalesced.Load()
	v.Jobs.Shed = m.jobsShed.Load()
	v.Jobs.BatchOversize = m.jobsBatchOversize.Load()
	v.Jobs.Expired = jg.Expired
	v.Jobs.Queued = jg.Queued
	v.Jobs.Running = jg.Running
	v.Jobs.Done = jg.Done
	v.Jobs.Failed = jg.Failed
	v.Jobs.Canceled = jg.Canceled
	v.Jobs.QueueLatency = m.jobQueueLatency.varz()
	v.Jobs.RunLatency = m.jobRunLatency.varz()
	if s.sessions != nil {
		sg := s.sessions.Stats()
		v.Sessions.Enabled = true
		v.Sessions.Count = sg.Sessions
		v.Sessions.MaxSessions = sg.MaxSessions
		v.Sessions.ResidentBytes = sg.ResidentBytes
		v.Sessions.MaxResidentBytes = sg.MaxResidentBytes
		v.Sessions.Created = sg.Created
		v.Sessions.Recovered = sg.Recovered
		v.Sessions.RecoveredDegraded = sg.RecoveredDegraded
		v.Sessions.RecoverFailures = sg.RecoverFailures
		v.Sessions.EvictedIdle = sg.EvictedIdle
		v.Sessions.Deleted = sg.Deleted
		v.Sessions.DeltasApplied = sg.DeltasApplied
		v.Sessions.OpsApplied = sg.OpsApplied
		v.Sessions.ShedBatch = sg.ShedBatch
		v.Sessions.ShedMemory = sg.ShedMemory
		v.Sessions.ApplyFailures = sg.ApplyFailures
		v.Sessions.Repairs.Boundary = sg.RepairsBoundary
		v.Sessions.Repairs.Full = sg.RepairsFull
		v.Sessions.Repairs.VCycle = sg.RepairsVCycle
		v.Sessions.Repairs.Failed = sg.RepairFailures
		v.Sessions.WALErrors = sg.WALErrors
		v.Sessions.WALTruncations = sg.WALTruncations
	}
	for name, ep := range m.endpoints {
		v.Endpoints[name] = endpointVarz{
			Requests:  ep.requests.Load(),
			Completed: ep.completed.Load(),
			Latency:   ep.latency.varz(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody encodes the wire schema's error object, newline-terminated —
// the exact bytes writeError puts on the wire, so stored job outcomes
// replay identically to synchronous error replies.
func errorBody(format string, args ...any) []byte {
	b, err := json.Marshal(mlpart.ErrorResponse{
		Kind:          mlpart.WireKindError,
		SchemaVersion: mlpart.SchemaVersion,
		Error:         fmt.Sprintf(format, args...),
	})
	if err != nil {
		// The error object contains nothing unmarshalable; unreachable.
		panic(err)
	}
	return append(b, '\n')
}

// writeBody writes an already encoded JSON reply with the given status.
func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// writeError emits the wire schema's error object.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeBody(w, status, errorBody(format, args...))
}
