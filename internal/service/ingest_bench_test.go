package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"mlpart"
)

// The service ingest benchmarks isolate the request-path cost of the two
// body encodings. Repartition is the cheapest computation by a wide
// margin (one sweep, no V-cycle), so on a large graph the measured time
// is dominated by decode + validation — exactly the path the binary
// format exists to shrink. Caching is disabled so every request decodes.

func benchServer(b *testing.B) *httptest.Server {
	b.Helper()
	s, err := New(Config{CacheSize: -1})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)
	b.Cleanup(ts.Close)
	return ts
}

func benchGraphAndWhere(b *testing.B) (mlpart.WireGraph, []int) {
	b.Helper()
	wg := gridGraph(200, 200)
	where := make([]int, 200*200)
	for v := range where {
		where[v] = (v % 200) * 8 / 200
	}
	return wg, where
}

func postBench(b *testing.B, client *http.Client, url, ctype string, body []byte) {
	b.Helper()
	resp, err := client.Post(url, ctype, bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	data, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil || resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d err %v: %s", resp.StatusCode, rerr, data)
	}
}

func BenchmarkServiceIngestJSON(b *testing.B) {
	ts := benchServer(b)
	wg, where := benchGraphAndWhere(b)
	body, err := json.Marshal(mlpart.RepartitionRequest{Graph: wg, K: 8, Where: where})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postBench(b, ts.Client(), ts.URL+"/v1/repartition", mlpart.ContentTypeJSON, body)
	}
}

func BenchmarkServiceIngestBinary(b *testing.B) {
	ts := benchServer(b)
	wg, where := benchGraphAndWhere(b)
	g, err := wg.ToGraph()
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mlpart.WriteBinaryGraphPart(&buf, g, where); err != nil {
		b.Fatal(err)
	}
	body := buf.Bytes()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postBench(b, ts.Client(), ts.URL+"/v1/repartition?k=8", mlpart.ContentTypeBinaryCSR, body)
	}
}
