package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"time"

	"mlpart"
	"mlpart/internal/faults"
	"mlpart/internal/jobs"
	"mlpart/internal/trace"
)

// The asynchronous job API. A submission is the same decoded, validated
// compute request the synchronous endpoints take — the identical codec
// runs, the identical job interface executes on the identical worker pool
// — but instead of holding the HTTP connection open for the result, the
// daemon records the job, replies 202 with an id, and lets the client
// poll. Because both paths share decode, execution, error mapping and
// encoding, a finished job's stored body is byte-for-byte what the
// synchronous endpoint would have sent.
//
//	POST   /v1/jobs?type=partition|order|repartition   submit (JSON or csrb body)
//	POST   /v1/jobs/batch                              submit many (JSON only)
//	GET    /v1/jobs/{id}                               poll / fetch result
//	DELETE /v1/jobs/{id}                               cancel
//
// GET's contract: while the job is active the reply is a JobResponse
// with a retry_after_ms hint; once it is done or failed the reply IS the
// stored wire result (or wire error) under its original status code,
// tagged with an X-Job-State header; a canceled job stays a JobResponse.
// Jobs bypass the admission queue — the store's capacity is their
// admission control — but wait for the same worker slots as synchronous
// requests, so the pool's concurrency bound holds across both APIs.

// jobPollHintMS is the polling interval hint sent while a job is active.
const jobPollHintMS = 100

// jobCodec resolves a submission's type parameter to its canonical name
// and request codec.
func jobCodec(typ string) (string, codec, bool) {
	switch typ {
	case "", mlpart.JobTypePartition:
		return mlpart.JobTypePartition, codec{json: decodePartition, binary: decodePartitionBinary}, true
	case mlpart.JobTypeOrder:
		return mlpart.JobTypeOrder, codec{json: decodeOrder, binary: decodeOrderBinary}, true
	case mlpart.JobTypeRepartition:
		return mlpart.JobTypeRepartition, codec{json: decodeRepartition, binary: decodeRepartitionBinary}, true
	}
	return "", codec{}, false
}

// jobWire renders a store snapshot as the wire JobResponse.
func jobWire(snap jobs.Snapshot) mlpart.JobResponse {
	r := mlpart.JobResponse{
		Kind:          mlpart.WireKindJob,
		SchemaVersion: mlpart.SchemaVersion,
		ID:            snap.ID,
		Type:          snap.Type,
		State:         string(snap.State),
		Error:         snap.Error,
	}
	if !snap.State.Terminal() {
		r.RetryAfterMS = jobPollHintMS
	}
	return r
}

// writeJob writes a JobResponse (or BatchResponse) reply.
func writeJob(w http.ResponseWriter, status int, resp any) {
	b, err := json.Marshal(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	writeBody(w, status, append(b, '\n'))
}

// serveJobSubmit is POST /v1/jobs: decode and validate up front (exactly
// like the synchronous path, including the binary CSR encoding), then
// register and return 202 immediately.
func (s *Server) serveJobSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "%s requires POST", r.URL.Path)
		return
	}
	// A draining daemon refuses new jobs: accepted jobs outlive their
	// submission request, so anything admitted now would extend shutdown.
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new jobs")
		return
	}
	typ, c, ok := jobCodec(r.URL.Query().Get("type"))
	if !ok {
		s.met.badReqs.Add(1)
		writeError(w, http.StatusBadRequest, "unknown job type %q (want %q, %q or %q)",
			r.URL.Query().Get("type"), mlpart.JobTypePartition, mlpart.JobTypeOrder, mlpart.JobTypeRepartition)
		return
	}
	isBinary, err := binaryRequest(r)
	if err != nil {
		s.met.unsupportedMedia.Add(1)
		writeError(w, http.StatusUnsupportedMediaType,
			"%v (want %q or %q)", err, mlpart.ContentTypeJSON, mlpart.ContentTypeBinaryCSR)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var j job
	if isBinary {
		data, rerr := io.ReadAll(r.Body)
		if rerr != nil {
			s.met.badReqs.Add(1)
			writeError(w, http.StatusBadRequest, "read body: %v", rerr)
			return
		}
		j, err = c.binary(data, r.URL.Query())
	} else {
		j, err = c.json(json.NewDecoder(r.Body))
	}
	if err != nil {
		s.met.badReqs.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := s.submitDecoded(j, typ, r.URL.Query().Get("trace") == "1")
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"job store full (%d records); retry later", s.jobs.Capacity())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+resp.ID)
	writeJob(w, http.StatusAccepted, resp)
}

// serveJobBatch is POST /v1/jobs/batch: many submissions in one round
// trip, one HTTP request's ingest overhead. Entries are admitted
// independently — a shed or invalid entry carries its error in its reply
// slot without failing the rest of the batch.
func (s *Server) serveJobBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "%s requires POST", r.URL.Path)
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new jobs")
		return
	}
	if isBinary, err := binaryRequest(r); err != nil || isBinary {
		s.met.unsupportedMedia.Add(1)
		writeError(w, http.StatusUnsupportedMediaType,
			"batch submissions are JSON only (want %q)", mlpart.ContentTypeJSON)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req mlpart.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.met.badReqs.Add(1)
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		s.met.badReqs.Add(1)
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	// The cap is enforced before any entry is decoded: an unbounded batch
	// must not buy graph decoding (and job-store slots) ahead of every
	// other client.
	if s.cfg.MaxBatchJobs > 0 && len(req.Jobs) > s.cfg.MaxBatchJobs {
		s.met.jobsBatchOversize.Add(1)
		writeError(w, http.StatusRequestEntityTooLarge,
			"batch of %d entries exceeds the %d-entry limit; split the submission",
			len(req.Jobs), s.cfg.MaxBatchJobs)
		return
	}
	resp := mlpart.BatchResponse{
		Kind:          mlpart.WireKindBatch,
		SchemaVersion: mlpart.SchemaVersion,
		Jobs:          make([]mlpart.JobResponse, len(req.Jobs)),
	}
	for i, bj := range req.Jobs {
		j, typ, err := buildBatchJob(bj)
		if err != nil {
			s.met.badReqs.Add(1)
			resp.Jobs[i] = mlpart.JobResponse{
				Kind:          mlpart.WireKindJob,
				SchemaVersion: mlpart.SchemaVersion,
				Type:          typ,
				Error:         err.Error(),
			}
			continue
		}
		jr, err := s.submitDecoded(j, typ, false)
		if err != nil {
			resp.Jobs[i] = mlpart.JobResponse{
				Kind:          mlpart.WireKindJob,
				SchemaVersion: mlpart.SchemaVersion,
				Type:          typ,
				Error:         "job store full",
			}
			continue
		}
		resp.Jobs[i] = jr
	}
	writeJob(w, http.StatusAccepted, resp)
}

// buildBatchJob decodes and validates one batch entry through the same
// constructors the endpoint codecs use.
func buildBatchJob(bj mlpart.BatchJob) (job, string, error) {
	set := 0
	for _, p := range []bool{bj.Partition != nil, bj.Order != nil, bj.Repartition != nil} {
		if p {
			set++
		}
	}
	typ := bj.Type
	if typ == "" {
		// Infer the type from the one populated field; an explicit
		// mismatched "type" is still an error below.
		switch {
		case bj.Partition != nil:
			typ = mlpart.JobTypePartition
		case bj.Order != nil:
			typ = mlpart.JobTypeOrder
		case bj.Repartition != nil:
			typ = mlpart.JobTypeRepartition
		default:
			typ = mlpart.JobTypePartition
		}
	}
	if set != 1 {
		return nil, typ, errors.New("batch entry must set exactly one of partition, order, repartition")
	}
	switch typ {
	case mlpart.JobTypePartition:
		if bj.Partition == nil {
			return nil, typ, errors.New(`type "partition" requires the partition field`)
		}
		g, err := bj.Partition.Graph.ToGraph()
		if err != nil {
			return nil, typ, errors.New("bad graph: " + err.Error())
		}
		j, err := newPartitionJob(*bj.Partition, g)
		return j, typ, err
	case mlpart.JobTypeOrder:
		if bj.Order == nil {
			return nil, typ, errors.New(`type "order" requires the order field`)
		}
		g, err := bj.Order.Graph.ToGraph()
		if err != nil {
			return nil, typ, errors.New("bad graph: " + err.Error())
		}
		j, err := newOrderJob(*bj.Order, g)
		return j, typ, err
	case mlpart.JobTypeRepartition:
		if bj.Repartition == nil {
			return nil, typ, errors.New(`type "repartition" requires the repartition field`)
		}
		g, err := bj.Repartition.Graph.ToGraph()
		if err != nil {
			return nil, typ, errors.New("bad graph: " + err.Error())
		}
		j, err := newRepartitionJob(*bj.Repartition, g)
		return j, typ, err
	}
	return nil, typ, errors.New("unknown job type " + strings.TrimSpace(typ))
}

// submitDecoded runs the common submission flow for one decoded compute
// request: coalesce onto an identical active job, short-circuit through
// the result cache, shed when the store is full, otherwise record the
// job and spawn its runner. The returned error is jobs.ErrFull or nil.
func (s *Server) submitDecoded(j job, typ string, wantTrace bool) (mlpart.JobResponse, error) {
	key, cacheable := j.key()
	// Tracing makes the execution request-specific: no coalescing with
	// (or into) untraced submissions, no cache in either direction.
	cacheable = cacheable && !wantTrace
	coalesceKey := ""
	if cacheable {
		coalesceKey = key
	}
	jb, fresh, err := s.jobs.Submit(typ, coalesceKey)
	if err != nil {
		s.met.jobsShed.Add(1)
		return mlpart.JobResponse{}, err
	}
	if !fresh {
		s.met.jobsCoalesced.Add(1)
		resp := jobWire(jb.Snapshot())
		resp.Coalesced = true
		return resp, nil
	}
	s.met.jobsSubmitted.Add(1)
	if pj, ok := j.(presetJob); ok {
		s.met.countPreset(pj.preset())
	}
	if cacheable {
		// An already cached result completes the job at submission time:
		// the client still polls, but the first GET replays the body.
		if body, ok := s.cache.get(key); ok {
			s.met.cacheHits.Add(1)
			s.jobs.Start(jb)
			s.jobs.Finish(jb, jobs.StateDone, jobs.Outcome{Code: http.StatusOK, Body: body}, "")
			return jobWire(jb.Snapshot()), nil
		}
		s.met.cacheMisses.Add(1)
	}
	s.jobWG.Add(1)
	go func() {
		defer s.jobWG.Done()
		s.runJob(jb, j, key, cacheable, wantTrace)
	}()
	return jobWire(jb.Snapshot()), nil
}

// serveJobByID is GET/DELETE /v1/jobs/{id}.
func (s *Server) serveJobByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.ContainsRune(id, '/') {
		writeError(w, http.StatusNotFound, "no such resource %q", r.URL.Path)
		return
	}
	switch r.Method {
	case http.MethodGet:
		jb, ok := s.jobs.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job %q (expired or never submitted)", id)
			return
		}
		snap := jb.Snapshot()
		switch snap.State {
		case jobs.StateDone, jobs.StateFailed:
			// The stored reply IS the synchronous endpoint's reply —
			// status code and body bytes alike.
			w.Header().Set("X-Job-State", string(snap.State))
			writeBody(w, snap.Outcome.Code, snap.Outcome.Body)
		case jobs.StateCanceled:
			w.Header().Set("X-Job-State", string(snap.State))
			writeJob(w, http.StatusOK, jobWire(snap))
		default:
			w.Header().Set("Retry-After", "1")
			writeJob(w, http.StatusOK, jobWire(snap))
		}
	case http.MethodDelete:
		if _, ok := s.jobs.Cancel(id); !ok {
			writeError(w, http.StatusNotFound, "unknown job %q (expired or never submitted)", id)
			return
		}
		jb, ok := s.jobs.Get(id)
		if !ok {
			// Evicted between Cancel and Get; report the cancellation.
			writeJob(w, http.StatusOK, mlpart.JobResponse{
				Kind:          mlpart.WireKindJob,
				SchemaVersion: mlpart.SchemaVersion,
				ID:            id,
				State:         mlpart.JobStateCanceled,
			})
			return
		}
		writeJob(w, http.StatusOK, jobWire(jb.Snapshot()))
	default:
		w.Header().Set("Allow", "GET, DELETE")
		writeError(w, http.StatusMethodNotAllowed, "%s requires GET or DELETE", r.URL.Path)
	}
}

// runJob is one job's runner goroutine: wait for a worker slot, execute
// under the same deadline, panic boundary and error mapping as the
// synchronous path, store the outcome. The job's context — canceled by
// DELETE — gates both the wait and the computation.
func (s *Server) runJob(jb *jobs.Job, j job, key string, cacheable, wantTrace bool) {
	jctx := jb.Context()
	if err := s.pool.acquire(jctx); err != nil {
		// Canceled while waiting (the job context carries no deadline, so
		// only Cancel fires it); the store already flipped the state.
		return
	}
	defer s.pool.release()
	if !s.jobs.Start(jb) {
		return // canceled between slot acquisition and start
	}
	snap := jb.Snapshot()
	queueWait := snap.Started.Sub(snap.Submitted)
	s.met.jobQueueLatency.observe(queueWait)
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)
	s.met.started.Add(1)

	// The compute deadline starts when execution starts, not at
	// submission: a job that waited out a long queue still gets its full
	// budget, and the TTL — not the deadline — bounds how long the record
	// lives.
	timeout := s.cfg.Timeout
	if ms := j.timeoutMS(); ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(jctx, timeout)
	defer cancel()
	if s.hookCompute != nil {
		s.hookCompute(ctx)
	}

	var collector *mlpart.TraceCollector
	var tracer mlpart.Tracer
	if wantTrace {
		collector = &mlpart.TraceCollector{}
		tracer = collector
		collector.Event(mlpart.TraceEvent{
			Kind: trace.KindJob, Phase: "started", Job: jb.ID(), ElapsedNS: queueWait.Nanoseconds(),
		})
	}

	computeStart := time.Now()
	resp, err := s.runJobGuarded(ctx, j, tracer)
	computeNS := time.Since(computeStart)
	s.met.jobRunLatency.observe(computeNS)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled) && jctx.Err() != nil:
			s.met.canceled.Add(1)
			return // DELETE flipped the state already
		case errors.Is(err, context.DeadlineExceeded):
			s.met.timedOut.Add(1)
			s.jobs.Finish(jb, jobs.StateFailed, jobs.Outcome{
				Code: http.StatusGatewayTimeout,
				Body: errorBody("deadline exceeded: %v", err),
			}, "deadline exceeded")
			return
		}
		status, _, ebody := s.computeFailure(err)
		s.jobs.Finish(jb, jobs.StateFailed, jobs.Outcome{Code: status, Body: ebody}, err.Error())
		return
	}
	if degradedResponse(resp) {
		s.met.degraded.Add(1)
		cacheable = false
	}
	body, merr := json.Marshal(resp)
	if merr != nil {
		s.met.errors.Add(1)
		s.jobs.Finish(jb, jobs.StateFailed, jobs.Outcome{
			Code: http.StatusInternalServerError,
			Body: errorBody("encode: %v", merr),
		}, "encode failure")
		return
	}
	body = append(body, '\n')
	if cacheable {
		s.cache.put(key, body)
	}
	if wantTrace {
		collector.Event(mlpart.TraceEvent{
			Kind: trace.KindJob, Phase: "done", Job: jb.ID(), ElapsedNS: computeNS.Nanoseconds(),
		})
		env := struct {
			Result json.RawMessage     `json:"result"`
			Trace  []mlpart.TraceEvent `json:"trace"`
		}{
			Result: json.RawMessage(bytes.TrimRight(body, "\n")),
			Trace:  collector.Events(),
		}
		tb, terr := json.Marshal(env)
		if terr != nil {
			s.met.errors.Add(1)
			s.jobs.Finish(jb, jobs.StateFailed, jobs.Outcome{
				Code: http.StatusInternalServerError,
				Body: errorBody("encode trace: %v", terr),
			}, "encode failure")
			return
		}
		body = append(tb, '\n')
	}
	s.jobs.Finish(jb, jobs.StateDone, jobs.Outcome{Code: http.StatusOK, Body: body}, "")
}

// runJobGuarded is the job-path panic boundary, the asynchronous twin of
// runGuarded with its own injection site: plans can fail jobs without
// touching synchronous traffic.
func (s *Server) runJobGuarded(ctx context.Context, j job, tr mlpart.Tracer) (resp any, err error) {
	err = faults.Boundary(faults.SiteJobRun, func() error {
		if ierr := s.inj.Fire(faults.SiteJobRun); ierr != nil {
			return ierr
		}
		var rerr error
		resp, rerr = j.run(ctx, tr, s.inj)
		return rerr
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}
