package graph

import "testing"

// fingerprintFixture is the pinned FNV-1a fingerprint of path(5) with unit
// weights. The value is part of the cache-key contract of
// internal/service: it must never change across runs, platforms, or
// refactors of the hash. TestFingerprintPinnedConstant fails loudly if it
// does (any intentional change of the hash must bump the service cache's
// notion of a key, i.e. is a breaking change).
const fingerprintFixture = 0x01db81f1df45ce85

func TestFingerprintPinnedConstant(t *testing.T) {
	g := path(5)
	if got := g.Fingerprint(); got != fingerprintFixture {
		t.Errorf("Fingerprint(path(5)) = %#x, want %#x", got, fingerprintFixture)
	}
	// Stable across repeated calls on the same graph.
	if a, b := g.Fingerprint(), g.Fingerprint(); a != b {
		t.Errorf("Fingerprint not stable: %#x vs %#x", a, b)
	}
}

func TestFingerprintEqualGraphs(t *testing.T) {
	a := grid(7, 9)
	b := grid(7, 9)
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("structurally equal graphs hash differently: %#x vs %#x",
			a.Fingerprint(), b.Fingerprint())
	}
	c := a.Clone()
	if a.Fingerprint() != c.Fingerprint() {
		t.Errorf("clone hashes differently: %#x vs %#x", a.Fingerprint(), c.Fingerprint())
	}
}

// TestFingerprintPerturbations flips one entry of each CSR array in turn
// and checks that every perturbation moves the hash.
func TestFingerprintPerturbations(t *testing.T) {
	base := randomGraph(64, 256, 8, 42)
	want := base.Fingerprint()

	perturb := []struct {
		name string
		mut  func(g *Graph)
	}{
		{"vwgt", func(g *Graph) { g.Vwgt[13]++ }},
		{"adjwgt", func(g *Graph) { g.Adjwgt[0]++ }},
		{"adjncy", func(g *Graph) { g.Adjncy[1]++ }},
		{"xadj", func(g *Graph) { g.Xadj[5]++ }},
	}
	for _, p := range perturb {
		g := base.Clone()
		p.mut(g)
		if got := g.Fingerprint(); got == want {
			t.Errorf("perturbing %s left fingerprint unchanged (%#x)", p.name, got)
		}
	}
}

// TestFingerprintShapeConfusion checks that graphs whose concatenated
// array streams coincide still hash apart because the lengths are mixed
// in first.
func TestFingerprintShapeConfusion(t *testing.T) {
	a := path(4)
	b := path(5)
	if a.Fingerprint() == b.Fingerprint() {
		t.Errorf("path(4) and path(5) collide: %#x", a.Fingerprint())
	}
	c := cycle(6)
	d := grid(2, 3)
	if c.Fingerprint() == d.Fingerprint() {
		t.Errorf("cycle(6) and grid(2,3) collide: %#x", c.Fingerprint())
	}
}
