package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The METIS graph file format, as read and written here:
//
//	% comment lines start with '%'
//	<n> <m> [fmt [ncon]]
//	<line for vertex 1>
//	...
//
// fmt is a 3-digit flag string: the hundreds digit enables vertex sizes
// (unsupported, rejected), the tens digit enables vertex weights, the ones
// digit enables edge weights. Vertices are 1-indexed in the file and
// 0-indexed in the Graph.

// Write encodes g in METIS graph format. Vertex weights are emitted only
// when some weight differs from 1; likewise for edge weights.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	n := g.NumVertices()
	hasVwgt := false
	for _, vw := range g.Vwgt {
		if vw != 1 {
			hasVwgt = true
			break
		}
	}
	hasEwgt := false
	for _, ew := range g.Adjwgt {
		if ew != 1 {
			hasEwgt = true
			break
		}
	}
	format := ""
	switch {
	case hasVwgt && hasEwgt:
		format = " 011"
	case hasVwgt:
		format = " 010"
	case hasEwgt:
		format = " 001"
	}
	if _, err := fmt.Fprintf(bw, "%d %d%s\n", n, g.NumEdges(), format); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		first := true
		if hasVwgt {
			fmt.Fprintf(bw, "%d", g.Vwgt[v])
			first = false
		}
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		for i, u := range adj {
			if !first {
				bw.WriteByte(' ')
			}
			first = false
			fmt.Fprintf(bw, "%d", u+1)
			if hasEwgt {
				fmt.Fprintf(bw, " %d", wgt[i])
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a graph in METIS graph format.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line, err := nextDataLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: missing header: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields) > 4 {
		return nil, fmt.Errorf("graph: bad header %q", line)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("graph: bad vertex count %q", fields[0])
	}
	m, err := strconv.Atoi(fields[1])
	if err != nil || m < 0 {
		return nil, fmt.Errorf("graph: bad edge count %q", fields[1])
	}
	hasVwgt, hasEwgt := false, false
	if len(fields) >= 3 {
		f := fields[2]
		if len(f) > 3 {
			return nil, fmt.Errorf("graph: bad format field %q", f)
		}
		for len(f) < 3 {
			f = "0" + f
		}
		if f[0] != '0' {
			return nil, fmt.Errorf("graph: vertex sizes (fmt %q) not supported", fields[2])
		}
		hasVwgt = f[1] == '1'
		hasEwgt = f[2] == '1'
	}
	if len(fields) == 4 && fields[3] != "1" {
		return nil, fmt.Errorf("graph: ncon=%s not supported", fields[3])
	}

	// Capacity hints only: clamp so a hostile header cannot force a huge
	// (or, via overflow, negative-cap) allocation before any vertex data
	// has been seen. Growth past the hint is driven by actual input.
	xadj := make([]int, 1, clampCap(n+1))
	adjncy := make([]int, 0, clampCap(2*m))
	adjwgt := make([]int, 0, clampCap(2*m))
	vwgt := make([]int, 0, clampCap(n))
	for v := 0; v < n; v++ {
		line, err := nextVertexLine(sc)
		if err != nil {
			return nil, fmt.Errorf("graph: missing line for vertex %d: %w", v+1, err)
		}
		toks := strings.Fields(line)
		i := 0
		if hasVwgt {
			if len(toks) == 0 {
				return nil, fmt.Errorf("graph: vertex %d: missing weight", v+1)
			}
			w, err := strconv.Atoi(toks[0])
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("graph: vertex %d: bad weight %q", v+1, toks[0])
			}
			vwgt = append(vwgt, w)
			i = 1
		} else {
			vwgt = append(vwgt, 1)
		}
		for i < len(toks) {
			u, err := strconv.Atoi(toks[i])
			if err != nil || u < 1 || u > n {
				return nil, fmt.Errorf("graph: vertex %d: bad neighbor %q", v+1, toks[i])
			}
			i++
			w := 1
			if hasEwgt {
				if i >= len(toks) {
					return nil, fmt.Errorf("graph: vertex %d: missing edge weight", v+1)
				}
				w, err = strconv.Atoi(toks[i])
				if err != nil || w <= 0 {
					return nil, fmt.Errorf("graph: vertex %d: bad edge weight %q", v+1, toks[i])
				}
				i++
			}
			adjncy = append(adjncy, u-1)
			adjwgt = append(adjwgt, w)
		}
		xadj = append(xadj, len(adjncy))
	}
	g := &Graph{Xadj: xadj, Adjncy: adjncy, Adjwgt: adjwgt, Vwgt: vwgt}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.NumEdges() != m {
		return nil, fmt.Errorf("graph: header declares %d edges, found %d", m, g.NumEdges())
	}
	return g, nil
}

// clampCap bounds a header-derived capacity hint. Negative values (from
// integer overflow of e.g. n+1) and absurd counts both collapse to a small
// hint; the slices grow as real data arrives.
func clampCap(c int) int {
	const maxHint = 1 << 20
	if c < 0 || c > maxHint {
		return maxHint
	}
	return c
}

// nextDataLine returns the next non-blank, non-comment line; used for the
// header, where blank lines carry no meaning.
func nextDataLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// nextVertexLine returns the next non-comment line, preserving blank lines,
// which denote vertices with no neighbors.
func nextVertexLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}
