package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that the METIS-format reader never panics and that any
// graph it accepts passes validation and round-trips through Write.
func FuzzRead(f *testing.F) {
	f.Add("3 2\n2\n1 3\n2\n")
	f.Add("2 1 001\n2 5\n1 5\n")
	f.Add("3 2 010\n4 2\n1 1 3\n9 2\n")
	f.Add("% comment\n1 0\n\n")
	f.Add("0 0\n")
	f.Add("2 1\n2\n1\nextra\n")
	f.Add("-1 -1\n")
	f.Add("2 1 11\n2 3\n1 3\n")
	// Overflow / truncation probes: header counts near int64 and int32
	// bounds, truncated adjacency lists, huge weights.
	f.Add("9223372036854775807 1\n2\n1\n")
	f.Add("2 9223372036854775807\n2\n1\n")
	f.Add("4294967296 0\n")
	f.Add("3 3\n2 3\n1 3\n1 2\n") // header claims 3 edges, lists 6 endpoints
	f.Add("2 1\n2\n")             // missing last vertex line
	f.Add("2 1 001\n2 9223372036854775807\n1 9223372036854775807\n")
	f.Add("1 0 010\n9223372036854775807\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := Read(strings.NewReader(in))
		if err != nil {
			return // rejecting is always fine
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted invalid graph: %v\ninput: %q", verr, in)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip read failed: %v\noutput: %q", err, buf.String())
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed size: %v vs %v", g, g2)
		}
	})
}

// FuzzReadMatrixMarket checks the MatrixMarket reader never panics and any
// accepted graph validates.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 -3.5\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n2 3\n")
	f.Add("%%MatrixMarket matrix coordinate integer symmetric\n1 1 1\n1 1 4\n")
	f.Add("garbage")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 9\n")
	// Overflow / truncation probes.
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n9223372036854775807 9223372036854775807 1\n1 2\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n2 2 9223372036854775807\n1 2\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 2 1e308\n2 3 -1e308\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n4294967296 4294967296 0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n1 2\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadMatrixMarket(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted invalid graph: %v\ninput: %q", verr, in)
		}
	})
}
