package graph

import (
	"strings"
	"testing"
)

func TestParseOrdering(t *testing.T) {
	for _, ok := range []string{"", OrderNone, OrderDegree, OrderBFSBlock} {
		if _, err := ParseOrdering(ok); err != nil {
			t.Errorf("ParseOrdering(%q): %v", ok, err)
		}
	}
	if _, err := ParseOrdering("rcm"); err == nil {
		t.Error("ParseOrdering accepted an unknown scheme")
	}
	if s, _ := ParseOrdering(""); s != OrderNone {
		t.Errorf("ParseOrdering(\"\") = %q, want %q", s, OrderNone)
	}
}

// checkPermutation asserts perm is a bijection of 0..n-1.
func checkPermutation(t *testing.T, perm []int, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("len(perm) = %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for old, nw := range perm {
		if nw < 0 || nw >= n || seen[nw] {
			t.Fatalf("perm[%d] = %d is not a fresh label in [0,%d)", old, nw, n)
		}
		seen[nw] = true
	}
}

func TestRelabelPermSchemes(t *testing.T) {
	g := testGraph(t)
	n := g.NumVertices()
	for _, scheme := range []string{OrderDegree, OrderBFSBlock} {
		perm, err := RelabelPerm(g, scheme)
		if err != nil {
			t.Fatal(err)
		}
		checkPermutation(t, perm, n)
		gp := Permute(g, perm)
		if err := gp.Validate(); err != nil {
			t.Fatalf("%s: permuted graph invalid: %v", scheme, err)
		}
		// Structural invariants of a relabeling.
		if gp.TotalVertexWeight() != g.TotalVertexWeight() ||
			gp.TotalEdgeWeight() != g.TotalEdgeWeight() ||
			gp.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: totals changed under relabeling", scheme)
		}
		for old := 0; old < n; old++ {
			if gp.Vwgt[perm[old]] != g.Vwgt[old] || gp.Degree(perm[old]) != g.Degree(old) {
				t.Fatalf("%s: vertex %d not preserved", scheme, old)
			}
		}
		for u := 0; u < n; u++ {
			for i, v := range g.Neighbors(u) {
				if w := gp.EdgeWeight(perm[u], perm[v]); w != g.EdgeWeights(u)[i] {
					t.Fatalf("%s: edge (%d,%d) weight %d after relabel, want %d",
						scheme, u, v, w, g.EdgeWeights(u)[i])
				}
			}
		}
	}
	if perm, err := RelabelPerm(g, OrderNone); err != nil || perm != nil {
		t.Fatalf("OrderNone: perm=%v err=%v, want nil,nil", perm, err)
	}
}

func TestDegreePermSortsByDegree(t *testing.T) {
	// Star graph: center has degree 5, leaves degree 1 — the center must
	// be relabeled last, the leaves stay in id order.
	b := NewBuilder(6)
	for v := 1; v < 6; v++ {
		b.AddEdge(0, v)
	}
	g := b.MustBuild()
	perm := degreePerm(g)
	if perm[0] != 5 {
		t.Fatalf("center relabeled to %d, want 5", perm[0])
	}
	for v := 1; v < 6; v++ {
		if perm[v] != v-1 {
			t.Fatalf("leaf %d relabeled to %d, want %d (stable order)", v, perm[v], v-1)
		}
	}
}

func TestBFSBlockCoversComponents(t *testing.T) {
	// Two disjoint triangles; both must be labeled, contiguously per
	// component.
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 3)
	g := b.MustBuild()
	perm := bfsBlockPerm(g)
	checkPermutation(t, perm, 6)
	// Component of {0,1,2} and {3,4,5} must each occupy a contiguous
	// label block.
	lo1 := min3(perm[0], perm[1], perm[2])
	hi1 := max3(perm[0], perm[1], perm[2])
	if hi1-lo1 != 2 {
		t.Fatalf("component labels not contiguous: %v", perm)
	}
}

func min3(a, b, c int) int { return min(a, min(b, c)) }
func max3(a, b, c int) int { return max(a, max(b, c)) }

func TestPermuteIdentity(t *testing.T) {
	g := testGraph(t)
	n := g.NumVertices()
	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	gp := Permute(g, id)
	if gp.Fingerprint() != g.Fingerprint() {
		t.Fatal("identity permutation changed the graph")
	}
	if Permute(g, nil) != g {
		t.Fatal("nil perm must return the receiver graph")
	}
}

func TestRelabelSingletonAndEmpty(t *testing.T) {
	empty := &Graph{Xadj: []int{0}}
	for _, scheme := range []string{OrderDegree, OrderBFSBlock} {
		perm, err := RelabelPerm(empty, scheme)
		if err != nil || len(perm) != 0 {
			t.Fatalf("%s on empty graph: perm=%v err=%v", scheme, perm, err)
		}
	}
	single, err := Read(strings.NewReader("1 0\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{OrderDegree, OrderBFSBlock} {
		perm, err := RelabelPerm(single, scheme)
		if err != nil {
			t.Fatal(err)
		}
		checkPermutation(t, perm, 1)
	}
}
