//go:build linux

package graph

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// OpenBinaryFile memory-maps a .csrb file and decodes it zero-copy: the
// returned Graph's slices alias the mapping directly, so a multi-hundred-
// megabyte graph "loads" in the time it takes to verify checksums. The
// mapping is MAP_PRIVATE (copy-on-write), so callers that mutate vertex
// weights write private pages, never the file. Close unmaps; the Graph
// must not be used afterwards.
func OpenBinaryFile(path string) (*Graph, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 || size != int64(int(size)) {
		return nil, nil, fmt.Errorf("graph: binary: unmappable file size %d for %s", size, path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
	if err != nil {
		// Mmap can fail on filesystems that do not support it; fall back
		// to a plain read, which still hits the zero-copy decode path.
		buf, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, fmt.Errorf("graph: binary: mmap %s: %v (read fallback: %v)", path, err, rerr)
		}
		g, derr := DecodeBinary(buf)
		if derr != nil {
			return nil, nil, derr
		}
		return g, nopCloser{}, nil
	}
	g, err := DecodeBinary(data)
	if err != nil {
		_ = syscall.Munmap(data)
		return nil, nil, err
	}
	return g, munmapCloser(data), nil
}

type munmapCloser []byte

func (m munmapCloser) Close() error { return syscall.Munmap(m) }
