package graph

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeBinary holds the csrb decoder to the same bar as the text
// readers: arbitrary bytes must produce either a valid graph or an error —
// never a panic, and never an allocation larger than a constant factor of
// the input. Accepted graphs must pass the full multi-pass Validate (the
// ground truth the fused single-pass validation approximates) and must
// round-trip through the encoder bit-compatibly.
func FuzzDecodeBinary(f *testing.F) {
	// Valid encodings, with and without a part section.
	seed := func(g *Graph, part []int) {
		var buf bytes.Buffer
		if err := EncodeBinaryPart(&buf, g, part); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	b := NewBuilder(4)
	b.AddWeightedEdge(0, 1, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	small := b.MustBuild()
	seed(small, nil)
	seed(small, []int{0, 1, 1, 0})
	seed(&Graph{Xadj: []int{0}}, nil)

	// Truncations and corruptions of a valid payload.
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, small); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good[:len(good)-3])
	f.Add(good[:binHeaderSize])
	f.Add(good[:binHeaderSize+4])
	corrupt := append([]byte(nil), good...)
	corrupt[binHeaderSize+9] ^= 0xff // checksum mismatch in xadj
	f.Add(corrupt)

	// Hostile headers: overflowing counts, absurd widths, unknown flags.
	hostile := func(mutate func([]byte)) {
		h := append([]byte(nil), good...)
		mutate(h)
		f.Add(h)
	}
	hostile(func(h []byte) { binary.LittleEndian.PutUint64(h[16:24], ^uint64(0)) })
	hostile(func(h []byte) { binary.LittleEndian.PutUint64(h[24:32], 1<<62) })
	hostile(func(h []byte) { binary.LittleEndian.PutUint32(h[12:16], 0xffffffff) })
	hostile(func(h []byte) { binary.LittleEndian.PutUint32(h[8:12], 2) })
	f.Add([]byte("MLPTCSR1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, part, err := DecodeBinaryPart(data)
		if err != nil {
			return // rejecting is always fine
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails full Validate: %v", verr)
		}
		if part != nil && len(part) != g.NumVertices() {
			t.Fatalf("part length %d for n=%d", len(part), g.NumVertices())
		}
		var out bytes.Buffer
		if err := EncodeBinaryPart(&out, g, part); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		g2, _, err := DecodeBinaryPart(out.Bytes())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if g2.Fingerprint() != g.Fingerprint() {
			t.Fatalf("fingerprint changed across re-encode")
		}
	})
}
