package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT encodes g in Graphviz DOT format for visualization. When
// `where` is non-nil it must assign a part id to every vertex; vertices
// are then colored by part (cycling through a small palette) and cut
// edges drawn dashed. Intended for small graphs and documentation — DOT
// rendering does not scale to the workloads the partitioner targets.
func WriteDOT(w io.Writer, g *Graph, where []int) error {
	if where != nil && len(where) != g.NumVertices() {
		return fmt.Errorf("graph: len(where) = %d, want %d", len(where), g.NumVertices())
	}
	palette := []string{
		"lightblue", "lightcoral", "palegreen", "khaki",
		"plum", "lightsalmon", "paleturquoise", "lightpink",
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph G {")
	fmt.Fprintln(bw, "  node [shape=circle, style=filled];")
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if where != nil {
			fmt.Fprintf(bw, "  %d [fillcolor=%q];\n", v, palette[where[v]%len(palette)])
		} else {
			fmt.Fprintf(bw, "  %d;\n", v)
		}
	}
	for v := 0; v < n; v++ {
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		for i, u := range adj {
			if u < v {
				continue // each undirected edge once
			}
			attrs := ""
			if wgt[i] != 1 {
				attrs = fmt.Sprintf(" [label=%d]", wgt[i])
			}
			if where != nil && where[u] != where[v] {
				if attrs == "" {
					attrs = " [style=dashed]"
				} else {
					attrs = fmt.Sprintf(" [label=%d, style=dashed]", wgt[i])
				}
			}
			fmt.Fprintf(bw, "  %d -- %d%s;\n", v, u, attrs)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
