package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% a 3x3 tridiagonal matrix
3 3 5
1 1 2.0
2 1 -1.0
2 2 2.0
3 2 -1.0
3 3 2.0
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d, want 3, 2", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatal("wrong adjacency")
	}
	if g.EdgeWeight(0, 1) != 1 {
		t.Fatalf("weight %d, want 1 (|-1| rounded)", g.EdgeWeight(0, 1))
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern symmetric\n4 4 3\n2 1\n3 1\n4 3\n"
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("m = %d, want 3", g.NumEdges())
	}
}

func TestReadMatrixMarketGeneralFoldsSymmetric(t *testing.T) {
	// General matrix storing both triangles: structure symmetrized.
	in := "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n"
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || !g.HasEdge(0, 1) {
		t.Fatalf("fold failed: m=%d", g.NumEdges())
	}
}

func TestReadMatrixMarketRejects(t *testing.T) {
	bad := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n", // array format
		"%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 3 0\n",          // non-square
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n9 1 1\n",   // out of range
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 1.0\n", // missing entry
		"not a header\n",
	}
	for i, s := range bad {
		if _, err := ReadMatrixMarket(strings.NewReader(s)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	b := NewBuilder(5)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(1, 2, 3)
	b.AddWeightedEdge(3, 4, 1)
	b.AddWeightedEdge(0, 4, 7)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 5 || g2.NumEdges() != 4 {
		t.Fatalf("round trip: n=%d m=%d", g2.NumVertices(), g2.NumEdges())
	}
	for v := 0; v < 5; v++ {
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		for i, u := range adj {
			if g2.EdgeWeight(v, u) != wgt[i] {
				t.Fatalf("weight of (%d,%d) changed", v, u)
			}
		}
	}
}

func TestReadMatrixMarketIgnoresDiagonal(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 2\n1 1\n2 1\n"
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("m = %d, want 1 (diagonal ignored)", g.NumEdges())
	}
}
