package graph

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unsafe"
)

// testGraph builds a small weighted graph exercising every section.
func testGraph(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder(6)
	b.AddWeightedEdge(0, 1, 3)
	b.AddWeightedEdge(1, 2, 1)
	b.AddWeightedEdge(2, 3, 2)
	b.AddWeightedEdge(3, 4, 1)
	b.AddWeightedEdge(4, 5, 5)
	b.AddWeightedEdge(5, 0, 1)
	b.AddWeightedEdge(0, 3, 2)
	b.SetVertexWeight(2, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBinaryRoundTrip(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := DecodeBinary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if g2.Fingerprint() != g.Fingerprint() {
		t.Fatalf("fingerprint changed across binary round trip: %x vs %x",
			g2.Fingerprint(), g.Fingerprint())
	}
	if err := g2.Validate(); err != nil {
		t.Fatalf("decoded graph fails full Validate: %v", err)
	}
}

func TestBinaryZeroCopyAliases(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if hostWidth != 8 || uintptr(unsafe.Pointer(unsafe.SliceData(data)))%8 != 0 {
		t.Skip("zero-copy aliasing needs a 64-bit host and an aligned buffer")
	}
	g2, err := DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit of the xadj payload in the source buffer; a zero-copy
	// decode must see the change through the aliased slice.
	data[binHeaderSize+8] ^= 0x01 // first word of the xadj payload
	if g2.Xadj[0] == 0 {
		t.Fatalf("expected aliasing: Xadj[0] still 0 after buffer mutation")
	}
	data[binHeaderSize+8] ^= 0x01
	if g2.Xadj[0] != 0 {
		t.Fatalf("buffer restore did not restore the graph")
	}
}

func TestBinaryPartSection(t *testing.T) {
	g := testGraph(t)
	part := []int{0, 1, 1, 0, 2, 2}
	var buf bytes.Buffer
	if err := EncodeBinaryPart(&buf, g, part); err != nil {
		t.Fatal(err)
	}
	g2, part2, err := DecodeBinaryPart(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if g2.Fingerprint() != g.Fingerprint() {
		t.Fatal("fingerprint changed with part section present")
	}
	if len(part2) != len(part) {
		t.Fatalf("part length %d, want %d", len(part2), len(part))
	}
	for i := range part {
		if part2[i] != part[i] {
			t.Fatalf("part[%d] = %d, want %d", i, part2[i], part[i])
		}
	}
	// Plain DecodeBinary must still accept the payload and drop the part.
	if _, err := DecodeBinary(buf.Bytes()); err != nil {
		t.Fatalf("DecodeBinary on part-carrying payload: %v", err)
	}
}

func TestBinaryWidth4Widening(t *testing.T) {
	g := testGraph(t)
	data := encodeWidth4(t, g, nil)
	g2, err := DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Fingerprint() != g.Fingerprint() {
		t.Fatal("fingerprint changed across width-4 round trip")
	}
}

// encodeWidth4 hand-rolls a width-4 encoding (the encoder always writes
// host width) so the widening decode path is covered.
func encodeWidth4(t testing.TB, g *Graph, part []int) []byte {
	t.Helper()
	var buf bytes.Buffer
	flags := uint32(binFlagVwgt|binFlagAdjw) | 4<<8
	if part != nil {
		flags |= binFlagPart
	}
	var hdr [binHeaderSize]byte
	copy(hdr[0:8], binaryMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], BinaryVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], flags)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(g.Adjncy)))
	buf.Write(hdr[:])
	sec := func(xs []int) {
		payload := make([]byte, len(xs)*4)
		for i, x := range xs {
			binary.LittleEndian.PutUint32(payload[i*4:], uint32(x))
		}
		var sum [8]byte
		binary.LittleEndian.PutUint64(sum[:], sectionSum(payload))
		buf.Write(sum[:])
		buf.Write(payload)
		if pad := pad8(len(payload)) - len(payload); pad > 0 {
			buf.Write(make([]byte, pad))
		}
	}
	sec(g.Xadj)
	sec(g.Adjncy)
	sec(g.Adjwgt)
	sec(g.Vwgt)
	if part != nil {
		sec(part)
	}
	return buf.Bytes()
}

func TestBinaryRejects(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"truncated header", func(b []byte) []byte { return b[:20] }, "short header"},
		{"truncated section", func(b []byte) []byte { return b[:len(b)-8] }, "describes"},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0) }, "describes"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "magic"},
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 99)
			return b
		}, "version"},
		{"bad width", func(b []byte) []byte {
			flags := binary.LittleEndian.Uint32(b[12:16])
			binary.LittleEndian.PutUint32(b[12:16], flags&^0xff00|3<<8)
			return b
		}, "width"},
		{"unknown flag", func(b []byte) []byte {
			flags := binary.LittleEndian.Uint32(b[12:16])
			binary.LittleEndian.PutUint32(b[12:16], flags|1<<5)
			return b
		}, "flag"},
		{"reserved nonzero", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[32:40], 7)
			return b
		}, "reserved"},
		{"overflowing n", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:24], 1<<60)
			return b
		}, "implausible"},
		{"overflowing m2", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[24:32], 1<<60)
			return b
		}, "implausible"},
		{"checksum mismatch", func(b []byte) []byte {
			b[binHeaderSize+8] ^= 0xff // xadj payload
			return b
		}, "checksum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), good...))
			_, err := DecodeBinary(b)
			if err == nil {
				t.Fatalf("decode accepted corrupted payload")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestBinaryRejectsAsymmetric(t *testing.T) {
	// A structurally plausible but asymmetric graph: edge 0->1 present,
	// 1->0 missing (vertex 1 lists vertex 2 instead).
	g := &Graph{
		Xadj:   []int{0, 1, 2, 3, 4},
		Adjncy: []int{1, 2, 1, 2},
		Adjwgt: []int{1, 1, 1, 1},
		Vwgt:   []int{1, 1, 1, 1},
	}
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	_, err := DecodeBinary(buf.Bytes())
	if err == nil || !strings.Contains(err.Error(), "symmetric") {
		t.Fatalf("asymmetric graph not rejected: %v", err)
	}
}

func TestBinaryFusedMatchesValidate(t *testing.T) {
	// Every graph the fused validator accepts must also pass the full
	// multi-pass Validate, across the workloads the METIS reader accepts.
	for _, in := range []string{
		"3 2\n2\n1 3\n2\n",
		"2 1 001\n2 5\n1 5\n",
		"3 2 010\n4 2\n1 1 3\n9 2\n",
		"1 0\n\n",
	} {
		g, err := Read(strings.NewReader(in))
		if err != nil {
			t.Fatalf("seed graph %q: %v", in, err)
		}
		if err := g.validateFused(); err != nil {
			t.Errorf("fused validation rejects a Validate-accepted graph %q: %v", in, err)
		}
	}
}

func TestOpenBinaryFile(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), "g.csrb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := EncodeBinary(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g2, closer, err := OpenBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Fingerprint() != g.Fingerprint() {
		t.Fatal("fingerprint changed through file round trip")
	}
	// Mutating vertex weights must hit private pages, never the file
	// (MAP_PRIVATE on the mmap path, a heap buffer on the fallback).
	g2.Vwgt[0] = 99
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	g3, closer3, err := OpenBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer3.Close()
	if g3.Vwgt[0] == 99 {
		t.Fatal("vertex weight mutation leaked into the backing file")
	}
}
