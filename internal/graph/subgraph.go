package graph

// Subgraph extracts the induced subgraph over the vertices v with
// keep[v] == true. It returns the subgraph and the mapping local2global,
// where local2global[i] is the original id of subgraph vertex i. Edges
// with exactly one endpoint inside are dropped (they are the cut edges).
func (g *Graph) Subgraph(keep []bool) (*Graph, []int) {
	n := g.NumVertices()
	local2global := make([]int, 0)
	global2local := make([]int, n)
	for v := 0; v < n; v++ {
		if keep[v] {
			global2local[v] = len(local2global)
			local2global = append(local2global, v)
		} else {
			global2local[v] = -1
		}
	}
	sn := len(local2global)
	xadj := make([]int, sn+1)
	for i, v := range local2global {
		d := 0
		for _, u := range g.Neighbors(v) {
			if keep[u] {
				d++
			}
		}
		xadj[i+1] = xadj[i] + d
	}
	adjncy := make([]int, xadj[sn])
	adjwgt := make([]int, xadj[sn])
	vwgt := make([]int, sn)
	for i, v := range local2global {
		vwgt[i] = g.Vwgt[v]
		p := xadj[i]
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		for j, u := range adj {
			if keep[u] {
				adjncy[p] = global2local[u]
				adjwgt[p] = wgt[j]
				p++
			}
		}
	}
	return &Graph{Xadj: xadj, Adjncy: adjncy, Adjwgt: adjwgt, Vwgt: vwgt}, local2global
}

// PartSubgraph extracts the induced subgraph over vertices with
// where[v] == part. See Subgraph for the return values.
func (g *Graph) PartSubgraph(where []int, part int) (*Graph, []int) {
	n := g.NumVertices()
	keep := make([]bool, n)
	for v := 0; v < n; v++ {
		keep[v] = where[v] == part
	}
	return g.Subgraph(keep)
}
