package graph

// Binary CSR wire format ("csrb"). This is the zero-copy ingest fast path:
// where the METIS text reader and the JSON wire graph re-tokenize every
// number, DecodeBinary aliases the payload buffer directly into the
// Graph's CSR slices when the encoded word width matches the host, and
// validates everything in one fused pass. The same bytes serve as the HTTP
// request body under Content-Type: application/x-mlpart-csr, as the
// `.csrb` file format of the CLI tools (mmap-able), and as the graphgen
// output format. docs/WIRE.md documents the layout byte by byte.
//
// Layout (all integers little-endian):
//
//	header (40 bytes):
//	  [0:8)   magic "MLPTCSR1"
//	  [8:12)  uint32 format version (BinaryVersion; versioned with the
//	          /v1 wire schema — see docs/WIRE.md)
//	  [12:16) uint32 flags: bit 0 has-vwgt, bit 1 has-adjwgt, bit 2
//	          has-part; bits 8..15 word width in bytes (4 or 8)
//	  [16:24) uint64 n  (vertex count)
//	  [24:32) uint64 m2 (directed edge count, = xadj[n] = len(adjncy))
//	  [32:40) uint64 reserved, must be zero
//	sections, in order, each present only when its flag allows:
//	  xadj (n+1 words), adjncy (m2), adjwgt (m2, flag bit 1),
//	  vwgt (n, bit 0), part (n, bit 2)
//	section framing:
//	  uint64 checksum of the payload bytes (sectionSum), then
//	  count*width payload bytes, then zero padding to an 8-byte boundary
//
// Because the header is 40 bytes and every section is padded to 8, each
// payload begins 8-byte aligned relative to the buffer start — the
// property zero-copy aliasing relies on.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"strconv"
	"unsafe"
)

// BinaryVersion is the version number carried in every csrb header. It
// tracks the /v1 wire schema: like mlpart.SchemaVersion it increments only
// on breaking layout changes, and decoders reject versions they do not
// know rather than guessing.
const BinaryVersion = 1

// binaryMagic identifies a csrb payload; it is ASCII so a `file`-style
// sniff of the first bytes reads sensibly.
const binaryMagic = "MLPTCSR1"

const (
	binFlagVwgt   = 1 << 0
	binFlagAdjw   = 1 << 1
	binFlagPart   = 1 << 2
	binFlagsKnown = binFlagVwgt | binFlagAdjw | binFlagPart

	binHeaderSize = 40
	// hostWidth is the word width of []int on this platform (8 on 64-bit
	// hosts); sections encoded at this width are aliased, others widened.
	hostWidth = strconv.IntSize / 8
)

// sectionSum is the per-section checksum: an xor-rotate-multiply over the
// payload interpreted as little-endian 64-bit words (tail zero-padded). It
// processes 8 bytes per step, so verifying it costs one streaming read of
// the payload — cheap enough to run on every decode, strong enough to
// catch truncation, bit rot and reordered sections.
func sectionSum(b []byte) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for len(b) >= 8 {
		h = bits.RotateLeft64((h^binary.LittleEndian.Uint64(b))*0xFF51AFD7ED558CCD, 31)
		b = b[8:]
	}
	if len(b) > 0 {
		var tail [8]byte
		copy(tail[:], b)
		h = bits.RotateLeft64((h^binary.LittleEndian.Uint64(tail[:]))*0xFF51AFD7ED558CCD, 31)
	}
	return h
}

// pad8 returns x rounded up to a multiple of 8.
func pad8(x int) int { return (x + 7) &^ 7 }

// EncodeBinary writes g in csrb form at the host word width, the encoding
// DecodeBinary aliases without copying. All four CSR sections are always
// written — including unit weights — precisely so the decoder never has to
// materialize anything.
func EncodeBinary(w io.Writer, g *Graph) error {
	return EncodeBinaryPart(w, g, nil)
}

// EncodeBinaryPart is EncodeBinary with an optional part vector (length n)
// appended as a fifth section; the repartition endpoint reads the incumbent
// partition from it. A nil part omits the section.
func EncodeBinaryPart(w io.Writer, g *Graph, part []int) error {
	n := g.NumVertices()
	if n < 0 {
		return fmt.Errorf("graph: binary encode: malformed graph (empty Xadj)")
	}
	if part != nil && len(part) != n {
		return fmt.Errorf("graph: binary encode: len(part) = %d, want n = %d", len(part), n)
	}
	flags := uint32(binFlagVwgt|binFlagAdjw) | uint32(hostWidth)<<8
	if part != nil {
		flags |= binFlagPart
	}
	var hdr [binHeaderSize]byte
	copy(hdr[0:8], binaryMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], BinaryVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], flags)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(n))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(g.Adjncy)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, sec := range [][]int{g.Xadj, g.Adjncy, g.Adjwgt, g.Vwgt, part} {
		if sec == nil {
			continue
		}
		if err := writeSection(w, sec); err != nil {
			return err
		}
	}
	return nil
}

// writeSection emits one checksummed, padded section at the host width.
func writeSection(w io.Writer, xs []int) error {
	payload := intsAsBytes(xs)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], sectionSum(payload))
	if _, err := w.Write(sum[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	if padding := pad8(len(payload)) - len(payload); padding > 0 {
		var zero [8]byte
		if _, err := w.Write(zero[:padding]); err != nil {
			return err
		}
	}
	return nil
}

// intsAsBytes views an int slice as its in-memory little-endian bytes.
// Only correct on little-endian hosts, which the encoder assumes (amd64,
// arm64); the format itself is defined little-endian either way.
func intsAsBytes(xs []int) []byte {
	if len(xs) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(xs))), len(xs)*hostWidth)
}

// DecodeBinary decodes a csrb payload. When the encoded width matches the
// host and data is 8-byte aligned (heap buffers and mmap regions both
// are), the returned Graph's slices alias data directly — zero copies, so
// the caller must keep data alive for the Graph's lifetime and must not
// reuse the buffer. Mismatched widths fall back to a single widening pass
// bounded by the input size. Validation is one fused pass (validateFused),
// not the multi-pass Validate.
func DecodeBinary(data []byte) (*Graph, error) {
	g, _, err := DecodeBinaryPart(data)
	return g, err
}

// DecodeBinaryPart is DecodeBinary plus the optional part-vector section;
// part is nil when the payload carries none. Part entries are validated
// non-negative; range-checking against k is the caller's job (k is not in
// the format).
func DecodeBinaryPart(data []byte) (*Graph, []int, error) {
	if len(data) < binHeaderSize {
		return nil, nil, fmt.Errorf("graph: binary: short header: %d bytes, want %d", len(data), binHeaderSize)
	}
	if string(data[0:8]) != binaryMagic {
		return nil, nil, fmt.Errorf("graph: binary: bad magic %q", data[0:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != BinaryVersion {
		return nil, nil, fmt.Errorf("graph: binary: unsupported version %d (want %d)", v, BinaryVersion)
	}
	flags := binary.LittleEndian.Uint32(data[12:16])
	width := int(flags >> 8 & 0xff)
	if width != 4 && width != 8 {
		return nil, nil, fmt.Errorf("graph: binary: unsupported word width %d (want 4 or 8)", width)
	}
	if flags&^(uint32(binFlagsKnown)|0xff00) != 0 {
		return nil, nil, fmt.Errorf("graph: binary: unknown flag bits %#x", flags)
	}
	un := binary.LittleEndian.Uint64(data[16:24])
	um2 := binary.LittleEndian.Uint64(data[24:32])
	if rsv := binary.LittleEndian.Uint64(data[32:40]); rsv != 0 {
		return nil, nil, fmt.Errorf("graph: binary: reserved header word is %#x, want 0", rsv)
	}

	// Size arithmetic happens in uint64 against the actual buffer length
	// before anything is allocated: a hostile header cannot force an
	// allocation larger than a constant factor of the bytes it actually
	// shipped, and overflowing counts fail the exact-size check below.
	const maxCount = uint64(1) << 40
	if un >= maxCount || um2 >= maxCount {
		return nil, nil, fmt.Errorf("graph: binary: implausible counts n=%d m2=%d", un, um2)
	}
	n, m2 := int(un), int(um2)
	if m2%2 != 0 {
		return nil, nil, fmt.Errorf("graph: binary: odd directed edge count %d", m2)
	}
	counts := []int{n + 1, m2}
	if flags&binFlagAdjw != 0 {
		counts = append(counts, m2)
	} else {
		counts = append(counts, -1)
	}
	if flags&binFlagVwgt != 0 {
		counts = append(counts, n)
	} else {
		counts = append(counts, -1)
	}
	if flags&binFlagPart != 0 {
		counts = append(counts, n)
	} else {
		counts = append(counts, -1)
	}
	want := uint64(binHeaderSize)
	for _, c := range counts {
		if c < 0 {
			continue
		}
		want += 8 + uint64(pad8(c*width))
	}
	if want != uint64(len(data)) {
		return nil, nil, fmt.Errorf("graph: binary: payload is %d bytes, header describes %d", len(data), want)
	}

	off := binHeaderSize
	sections := make([][]int, len(counts))
	for i, c := range counts {
		if c < 0 {
			continue
		}
		sec, next, err := readSection(data, off, c, width)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: binary: section %d: %w", i, err)
		}
		sections[i], off = sec, next
	}
	xadj, adjncy, adjwgt, vwgt, part := sections[0], sections[1], sections[2], sections[3], sections[4]
	if adjwgt == nil {
		adjwgt = unitWeights(m2)
	}
	if vwgt == nil {
		vwgt = unitWeights(n)
	}
	g := &Graph{Xadj: xadj, Adjncy: adjncy, Adjwgt: adjwgt, Vwgt: vwgt}
	if err := g.validateFused(); err != nil {
		return nil, nil, err
	}
	if part != nil {
		for i, p := range part {
			if p < 0 {
				return nil, nil, fmt.Errorf("graph: binary: part[%d] = %d, want >= 0", i, p)
			}
		}
	}
	return g, part, nil
}

// readSection verifies one section's checksum and returns its ints —
// aliased from data when the width matches the host and the payload is
// aligned, widened otherwise — plus the offset of the next section.
func readSection(data []byte, off, count, width int) ([]int, int, error) {
	sum := binary.LittleEndian.Uint64(data[off : off+8])
	payload := data[off+8 : off+8+count*width]
	if got := sectionSum(payload); got != sum {
		return nil, 0, fmt.Errorf("checksum mismatch: %#016x on the wire, %#016x computed", sum, got)
	}
	next := off + 8 + pad8(count*width)
	if width == hostWidth && count > 0 &&
		uintptr(unsafe.Pointer(unsafe.SliceData(payload)))%8 == 0 {
		return unsafe.Slice((*int)(unsafe.Pointer(unsafe.SliceData(payload))), count), next, nil
	}
	// Widening (or misaligned) path: one pass, allocation bounded by
	// count, which the exact-size check already tied to len(data).
	out := make([]int, count)
	switch width {
	case 4:
		for i := range out {
			out[i] = int(binary.LittleEndian.Uint32(payload[i*4:]))
		}
	case 8:
		for i := range out {
			v := binary.LittleEndian.Uint64(payload[i*8:])
			if v > uint64(^uint(0)>>1) {
				return nil, 0, fmt.Errorf("word %d overflows host int: %#x", i, v)
			}
			out[i] = int(v)
		}
	}
	return out, next, nil
}

func unitWeights(n int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// asymMix is the direction-sensitive edge hash behind the fused symmetry
// check: a splitmix64-style finalizer over (u, v, w) that does NOT commute
// in u and v.
func asymMix(u, v, w int) uint64 {
	x := uint64(u)*0x9E3779B97F4A7C15 + uint64(v)*0xC2B2AE3D27D4EB4F + uint64(w)*0x165667B19E3779F9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// validateFused checks the Graph invariants in one fused pass over the CSR
// arrays — the ingest-path replacement for the multi-pass Validate, whose
// per-edge symmetry probe costs O(m·d). Structure (Xadj monotone and
// consistent, neighbors in range, no self loops, positive weights) is
// checked exactly; edge symmetry is checked probabilistically: every
// stored edge (u,v,w) contributes asymMix(u,v,w) − asymMix(v,u,w) to a
// running sum, which is zero iff (modulo a vanishing 2^-64-scale collision
// chance) every edge appears in both endpoint lists with equal weight.
func (g *Graph) validateFused() error {
	n := g.NumVertices()
	if n < 0 {
		return fmt.Errorf("graph: Xadj must have length >= 1")
	}
	if g.Xadj[0] != 0 {
		return fmt.Errorf("graph: Xadj[0] = %d, want 0", g.Xadj[0])
	}
	if len(g.Vwgt) != n {
		return fmt.Errorf("graph: len(Vwgt) = %d, want n = %d", len(g.Vwgt), n)
	}
	if len(g.Adjwgt) != len(g.Adjncy) {
		return fmt.Errorf("graph: len(Adjwgt) = %d, want %d", len(g.Adjwgt), len(g.Adjncy))
	}
	if g.Xadj[n] != len(g.Adjncy) {
		return fmt.Errorf("graph: Xadj[n] = %d, want len(Adjncy) = %d", g.Xadj[n], len(g.Adjncy))
	}
	if len(g.Adjncy)%2 != 0 {
		return fmt.Errorf("graph: odd number of directed edges %d", len(g.Adjncy))
	}
	var residue uint64
	for u := 0; u < n; u++ {
		lo, hi := g.Xadj[u], g.Xadj[u+1]
		if hi < lo {
			return fmt.Errorf("graph: Xadj decreasing at %d", u)
		}
		if hi > len(g.Adjncy) {
			return fmt.Errorf("graph: Xadj[%d] = %d exceeds len(Adjncy) = %d", u+1, hi, len(g.Adjncy))
		}
		if g.Vwgt[u] <= 0 {
			return fmt.Errorf("graph: Vwgt[%d] = %d, want > 0", u, g.Vwgt[u])
		}
		for j := lo; j < hi; j++ {
			v, w := g.Adjncy[j], g.Adjwgt[j]
			if v < 0 || v >= n {
				return fmt.Errorf("graph: edge (%d,%d) out of range", u, v)
			}
			if v == u {
				return fmt.Errorf("graph: self loop at %d", u)
			}
			if w <= 0 {
				return fmt.Errorf("graph: edge (%d,%d) weight %d, want > 0", u, v, w)
			}
			residue += asymMix(u, v, w) - asymMix(v, u, w)
		}
	}
	if residue != 0 {
		return fmt.Errorf("graph: adjacency is not symmetric (residue %#016x)", residue)
	}
	return nil
}
