package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ReadMatrixMarket decodes the adjacency structure of a sparse matrix in
// Matrix Market coordinate format ("%%MatrixMarket matrix coordinate ...").
// The matrix must be square; the graph has an edge (i, j) for every
// off-diagonal structural nonzero. Diagonal entries are ignored, explicit
// duplicate entries merge, and for "general" symmetry entries (i, j) and
// (j, i) are folded together (the pattern is symmetrized, as partitioners
// require). Numeric values, when present, are rounded to positive integer
// edge weights (|v| rounded up, minimum 1); pattern files get unit weights.
func ReadMatrixMarket(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("graph: not a MatrixMarket matrix header: %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("graph: only coordinate format supported, got %q", header[2])
	}
	field := header[3]
	switch field {
	case "real", "integer", "pattern":
	case "complex":
		return nil, fmt.Errorf("graph: complex matrices not supported")
	default:
		return nil, fmt.Errorf("graph: unknown field %q", field)
	}
	symmetry := "general"
	if len(header) >= 5 {
		symmetry = header[4]
	}
	switch symmetry {
	case "general", "symmetric", "skew-symmetric":
	case "hermitian":
		return nil, fmt.Errorf("graph: hermitian matrices not supported")
	default:
		return nil, fmt.Errorf("graph: unknown symmetry %q", symmetry)
	}

	line, err := nextDataLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: missing size line: %w", err)
	}
	dims := strings.Fields(line)
	if len(dims) != 3 {
		return nil, fmt.Errorf("graph: bad size line %q", line)
	}
	rows, err1 := strconv.Atoi(dims[0])
	cols, err2 := strconv.Atoi(dims[1])
	nnz, err3 := strconv.Atoi(dims[2])
	if err1 != nil || err2 != nil || err3 != nil || rows < 0 || nnz < 0 {
		return nil, fmt.Errorf("graph: bad size line %q", line)
	}
	if rows != cols {
		return nil, fmt.Errorf("graph: matrix is %dx%d, want square", rows, cols)
	}
	// The builder allocates per-vertex state up front, so bound the
	// declared dimension before trusting it: a hostile header must not be
	// able to force a giant allocation (or an overflowing one) from a
	// few bytes of input.
	const maxMatrixDim = 1 << 27
	if rows > maxMatrixDim {
		return nil, fmt.Errorf("graph: matrix dimension %d exceeds limit %d", rows, maxMatrixDim)
	}

	b := NewBuilder(rows)
	for e := 0; e < nnz; e++ {
		line, err := nextDataLine(sc)
		if err != nil {
			return nil, fmt.Errorf("graph: missing entry %d of %d: %w", e+1, nnz, err)
		}
		toks := strings.Fields(line)
		if len(toks) < 2 {
			return nil, fmt.Errorf("graph: bad entry %q", line)
		}
		i, err1 := strconv.Atoi(toks[0])
		j, err2 := strconv.Atoi(toks[1])
		if err1 != nil || err2 != nil || i < 1 || i > rows || j < 1 || j > rows {
			return nil, fmt.Errorf("graph: bad entry %q", line)
		}
		if i == j {
			continue // diagonal carries no adjacency
		}
		w := 1
		if field != "pattern" && len(toks) >= 3 {
			v, err := strconv.ParseFloat(toks[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: bad value in entry %q", line)
			}
			w = int(math.Ceil(math.Abs(v)))
			if w < 1 {
				w = 1
			}
		}
		b.AddWeightedEdge(i-1, j-1, w)
	}
	// Note: a "general" file storing both triangles folds (i,j) and (j,i)
	// together, which doubles those edge weights; callers wanting exact
	// weights should store one triangle. The structure is correct either way.
	return b.Build()
}

// WriteMatrixMarket encodes g as a symmetric integer MatrixMarket
// coordinate file with unit diagonal entries omitted; only the lower
// triangle is stored, as the symmetric qualifier requires.
func WriteMatrixMarket(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	n := g.NumVertices()
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate integer symmetric\n"); err != nil {
		return err
	}
	fmt.Fprintf(bw, "%d %d %d\n", n, n, g.NumEdges())
	for v := 0; v < n; v++ {
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		for i, u := range adj {
			if u < v { // lower triangle: row index > column index
				fmt.Fprintf(bw, "%d %d %d\n", v+1, u+1, wgt[i])
			}
		}
	}
	return bw.Flush()
}
