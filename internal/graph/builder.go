package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates an edge list and produces a validated CSR Graph.
// Duplicate edges are merged by summing their weights; self loops are
// rejected. The zero value is not usable; call NewBuilder.
type Builder struct {
	n     int
	vwgt  []int
	edges []edge
}

type edge struct {
	u, v, w int
}

// NewBuilder returns a Builder for a graph with n vertices, all with
// vertex weight 1 until SetVertexWeight is called.
func NewBuilder(n int) *Builder {
	vwgt := make([]int, n)
	for i := range vwgt {
		vwgt[i] = 1
	}
	return &Builder{n: n, vwgt: vwgt}
}

// SetVertexWeight sets the weight of vertex v. Weights must be positive.
func (b *Builder) SetVertexWeight(v, w int) {
	b.vwgt[v] = w
}

// AddEdge records an undirected edge (u, v) with weight 1. Adding the same
// pair twice accumulates weight.
func (b *Builder) AddEdge(u, v int) {
	b.AddWeightedEdge(u, v, 1)
}

// AddWeightedEdge records an undirected edge (u, v) with weight w.
func (b *Builder) AddWeightedEdge(u, v, w int) {
	b.edges = append(b.edges, edge{u, v, w})
}

// Build produces the CSR graph. It returns an error for out-of-range
// endpoints, self loops, or non-positive weights.
func (b *Builder) Build() (*Graph, error) {
	for _, e := range b.edges {
		if e.u < 0 || e.u >= b.n || e.v < 0 || e.v >= b.n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.u, e.v, b.n)
		}
		if e.u == e.v {
			return nil, fmt.Errorf("graph: self loop at vertex %d", e.u)
		}
		if e.w <= 0 {
			return nil, fmt.Errorf("graph: edge (%d,%d) has weight %d, want > 0", e.u, e.v, e.w)
		}
	}
	// Canonicalize, sort, and merge duplicates.
	es := make([]edge, len(b.edges))
	for i, e := range b.edges {
		if e.u > e.v {
			e.u, e.v = e.v, e.u
		}
		es[i] = e
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].u != es[j].u {
			return es[i].u < es[j].u
		}
		return es[i].v < es[j].v
	})
	merged := es[:0]
	for _, e := range es {
		if k := len(merged); k > 0 && merged[k-1].u == e.u && merged[k-1].v == e.v {
			merged[k-1].w += e.w
		} else {
			merged = append(merged, e)
		}
	}

	xadj := make([]int, b.n+1)
	for _, e := range merged {
		xadj[e.u+1]++
		xadj[e.v+1]++
	}
	for i := 0; i < b.n; i++ {
		xadj[i+1] += xadj[i]
	}
	adjncy := make([]int, xadj[b.n])
	adjwgt := make([]int, xadj[b.n])
	pos := make([]int, b.n)
	copy(pos, xadj[:b.n])
	for _, e := range merged {
		adjncy[pos[e.u]], adjwgt[pos[e.u]] = e.v, e.w
		pos[e.u]++
		adjncy[pos[e.v]], adjwgt[pos[e.v]] = e.u, e.w
		pos[e.v]++
	}

	g := &Graph{Xadj: xadj, Adjncy: adjncy, Adjwgt: adjwgt, Vwgt: b.vwgt}
	for _, w := range g.Vwgt {
		if w <= 0 {
			return nil, fmt.Errorf("graph: vertex weight %d, want > 0", w)
		}
	}
	return g, nil
}

// MustBuild is Build but panics on error; intended for tests and generators
// whose inputs are correct by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromCSR wraps pre-built CSR arrays in a Graph after validating them.
// The slices are retained, not copied. vwgt may be nil for unit weights,
// and adjwgt may be nil for unit edge weights.
func FromCSR(xadj, adjncy, adjwgt, vwgt []int) (*Graph, error) {
	n := len(xadj) - 1
	if vwgt == nil {
		vwgt = make([]int, n)
		for i := range vwgt {
			vwgt[i] = 1
		}
	}
	if adjwgt == nil {
		adjwgt = make([]int, len(adjncy))
		for i := range adjwgt {
			adjwgt[i] = 1
		}
	}
	g := &Graph{Xadj: xadj, Adjncy: adjncy, Adjwgt: adjwgt, Vwgt: vwgt}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
