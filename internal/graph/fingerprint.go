package graph

// Fingerprint returns a 64-bit FNV-1a content hash of the graph: the
// vertex and directed-edge counts followed by every element of Xadj,
// Adjncy, Vwgt and Adjwgt, each mixed in as 8 little-endian bytes. Two
// graphs with identical CSR arrays hash equal; changing any single entry
// of any array changes the hash with overwhelming probability. The value
// depends only on the arrays (not on pointer identity or capacity), is
// stable across runs and platforms, and is suitable as a cache key for
// deterministic partitioning results (see internal/service).
//
// Fingerprint is O(n + m) and allocates nothing.
func (g *Graph) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	// The array lengths are mixed first so that the element streams of
	// consecutive arrays cannot alias each other across graphs of
	// different shapes.
	mix(uint64(g.NumVertices()))
	mix(uint64(len(g.Adjncy)))
	for _, x := range g.Xadj {
		mix(uint64(x))
	}
	for _, x := range g.Adjncy {
		mix(uint64(x))
	}
	for _, x := range g.Vwgt {
		mix(uint64(x))
	}
	for _, x := range g.Adjwgt {
		mix(uint64(x))
	}
	return h
}
