//go:build !linux

package graph

import (
	"io"
	"os"
)

// OpenBinaryFile reads a .csrb file and decodes it. On platforms without
// the mmap fast path the whole file is read once; the decode itself is
// still zero-copy into the read buffer. The returned closer is a no-op.
func OpenBinaryFile(path string) (*Graph, io.Closer, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	g, err := DecodeBinary(buf)
	if err != nil {
		return nil, nil, err
	}
	return g, nopCloser{}, nil
}
