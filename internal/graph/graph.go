// Package graph provides the weighted undirected graph representation used
// throughout the multilevel partitioner. Graphs are stored in compressed
// sparse row (CSR) form — the same layout the METIS family of partitioners
// uses — with integer vertex and edge weights.
//
// A Graph with n vertices and m undirected edges stores each edge twice
// (once per endpoint), so len(Adjncy) == 2*m. For a vertex v, its adjacency
// list is Adjncy[Xadj[v]:Xadj[v+1]] and the matching edge weights are
// Adjwgt[Xadj[v]:Xadj[v+1]].
package graph

import (
	"fmt"
)

// Graph is a weighted undirected graph in CSR (adjacency structure) form.
//
// Invariants (checked by Validate):
//   - len(Xadj) == NumVertices()+1, Xadj[0] == 0, Xadj nondecreasing.
//   - len(Adjncy) == len(Adjwgt) == Xadj[n].
//   - No self loops; every edge (u,v) appears symmetrically with equal weight.
//   - All vertex and edge weights are positive.
type Graph struct {
	// Xadj is the adjacency-list index array, length n+1.
	Xadj []int
	// Adjncy holds the concatenated adjacency lists, length Xadj[n].
	Adjncy []int
	// Adjwgt holds the edge weight for each entry of Adjncy.
	Adjwgt []int
	// Vwgt holds the vertex weights, length n. Callers may mutate weights
	// (e.g. adaptive workloads); no totals are cached.
	Vwgt []int
}

// NumVertices returns the number of vertices n.
func (g *Graph) NumVertices() int { return len(g.Xadj) - 1 }

// NumEdges returns the number of undirected edges m (each stored twice).
func (g *Graph) NumEdges() int { return len(g.Adjncy) / 2 }

// Degree returns the number of neighbors of vertex v.
func (g *Graph) Degree(v int) int { return g.Xadj[v+1] - g.Xadj[v] }

// Neighbors returns the adjacency list of v as a shared slice; callers must
// not modify it.
func (g *Graph) Neighbors(v int) []int { return g.Adjncy[g.Xadj[v]:g.Xadj[v+1]] }

// EdgeWeights returns the edge weights parallel to Neighbors(v); callers
// must not modify it.
func (g *Graph) EdgeWeights(v int) []int { return g.Adjwgt[g.Xadj[v]:g.Xadj[v+1]] }

// TotalVertexWeight returns the sum of all vertex weights, recomputed on
// every call so that callers may mutate Vwgt between operations.
func (g *Graph) TotalVertexWeight() int {
	s := 0
	for _, w := range g.Vwgt {
		s += w
	}
	return s
}

// TotalEdgeWeight returns the sum of the weights of all undirected edges
// (each edge counted once).
func (g *Graph) TotalEdgeWeight() int {
	s := 0
	for _, w := range g.Adjwgt {
		s += w
	}
	return s / 2
}

// WeightedDegree returns the sum of the weights of the edges incident on v.
func (g *Graph) WeightedDegree(v int) int {
	s := 0
	for _, w := range g.EdgeWeights(v) {
		s += w
	}
	return s
}

// MaxWeightedDegree returns the maximum weighted degree over all vertices,
// which bounds the gain of any single vertex move during refinement.
func (g *Graph) MaxWeightedDegree() int {
	maxd := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.WeightedDegree(v); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// HasEdge reports whether an edge (u, v) exists. O(Degree(u)).
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.Neighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}

// EdgeWeight returns the weight of edge (u, v), or 0 when no such edge
// exists. O(Degree(u)).
func (g *Graph) EdgeWeight(u, v int) int {
	adj := g.Neighbors(u)
	wgt := g.EdgeWeights(u)
	for i, w := range adj {
		if w == v {
			return wgt[i]
		}
	}
	return 0
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	return &Graph{
		Xadj:   append([]int(nil), g.Xadj...),
		Adjncy: append([]int(nil), g.Adjncy...),
		Adjwgt: append([]int(nil), g.Adjwgt...),
		Vwgt:   append([]int(nil), g.Vwgt...),
	}
}

// String returns a short human-readable summary such as
// "graph{n=1024 m=3968 vwgt=1024 ewgt=3968}".
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d vwgt=%d ewgt=%d}",
		g.NumVertices(), g.NumEdges(), g.TotalVertexWeight(), g.TotalEdgeWeight())
}

// Validate checks all structural invariants and returns a descriptive error
// for the first violation found. It is O(n + m·d) due to the symmetry check
// and is intended for tests and input validation, not inner loops.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if n < 0 {
		return fmt.Errorf("graph: Xadj must have length >= 1")
	}
	if g.Xadj[0] != 0 {
		return fmt.Errorf("graph: Xadj[0] = %d, want 0", g.Xadj[0])
	}
	if len(g.Vwgt) != n {
		return fmt.Errorf("graph: len(Vwgt) = %d, want n = %d", len(g.Vwgt), n)
	}
	for i := 0; i < n; i++ {
		if g.Xadj[i+1] < g.Xadj[i] {
			return fmt.Errorf("graph: Xadj decreasing at %d", i)
		}
		if g.Vwgt[i] <= 0 {
			return fmt.Errorf("graph: Vwgt[%d] = %d, want > 0", i, g.Vwgt[i])
		}
	}
	if g.Xadj[n] != len(g.Adjncy) {
		return fmt.Errorf("graph: Xadj[n] = %d, want len(Adjncy) = %d", g.Xadj[n], len(g.Adjncy))
	}
	if len(g.Adjwgt) != len(g.Adjncy) {
		return fmt.Errorf("graph: len(Adjwgt) = %d, want %d", len(g.Adjwgt), len(g.Adjncy))
	}
	if len(g.Adjncy)%2 != 0 {
		return fmt.Errorf("graph: odd number of directed edges %d", len(g.Adjncy))
	}
	for u := 0; u < n; u++ {
		adj := g.Neighbors(u)
		wgt := g.EdgeWeights(u)
		for i, v := range adj {
			if v < 0 || v >= n {
				return fmt.Errorf("graph: edge (%d,%d) out of range", u, v)
			}
			if v == u {
				return fmt.Errorf("graph: self loop at %d", u)
			}
			if wgt[i] <= 0 {
				return fmt.Errorf("graph: edge (%d,%d) weight %d, want > 0", u, v, wgt[i])
			}
			if back := g.EdgeWeight(v, u); back != wgt[i] {
				return fmt.Errorf("graph: asymmetric edge (%d,%d): %d vs %d", u, v, wgt[i], back)
			}
		}
	}
	return nil
}
