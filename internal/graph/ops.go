package graph

// BFS performs a breadth-first traversal from start and returns the order
// in which vertices were discovered. Only the connected component of start
// is visited.
func (g *Graph) BFS(start int) []int {
	n := g.NumVertices()
	order := make([]int, 0, n)
	seen := make([]bool, n)
	queue := make([]int, 0, n)
	queue = append(queue, start)
	seen[start] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, u := range g.Neighbors(v) {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return order
}

// Components labels each vertex with its connected component id, returning
// the label slice and the number of components. Component ids are assigned
// in order of the lowest-numbered vertex they contain.
func (g *Graph) Components() (labels []int, count int) {
	n := g.NumVertices()
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = count
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(v) {
				if labels[u] < 0 {
					labels[u] = count
					queue = append(queue, u)
				}
			}
		}
		count++
	}
	return labels, count
}

// IsConnected reports whether the graph is connected. The empty graph is
// considered connected.
func (g *Graph) IsConnected() bool {
	if g.NumVertices() == 0 {
		return true
	}
	_, c := g.Components()
	return c == 1
}

// PseudoPeripheral returns a vertex that approximately maximizes graph
// eccentricity, found by repeated BFS from the last-discovered vertex.
// It is the standard starting point for graph-growing partitioners and
// profile-reducing orderings. start must be a valid vertex.
func (g *Graph) PseudoPeripheral(start int) int {
	v := start
	prevLen := -1
	for i := 0; i < 8; i++ {
		order := g.BFS(v)
		last := order[len(order)-1]
		if len(order) == prevLen && last == v {
			break
		}
		prevLen = len(order)
		v = last
	}
	return v
}

// Permute returns a new graph with vertices relabeled so that new vertex i
// corresponds to old vertex perm[i]. Vertex and edge weights follow their
// vertices. perm must be a permutation of [0, n).
func (g *Graph) Permute(perm []int) *Graph {
	n := g.NumVertices()
	iperm := make([]int, n) // old -> new
	for newv, oldv := range perm {
		iperm[oldv] = newv
	}
	xadj := make([]int, n+1)
	for newv := 0; newv < n; newv++ {
		xadj[newv+1] = xadj[newv] + g.Degree(perm[newv])
	}
	adjncy := make([]int, xadj[n])
	adjwgt := make([]int, xadj[n])
	vwgt := make([]int, n)
	for newv := 0; newv < n; newv++ {
		oldv := perm[newv]
		vwgt[newv] = g.Vwgt[oldv]
		adj := g.Neighbors(oldv)
		wgt := g.EdgeWeights(oldv)
		base := xadj[newv]
		for i, u := range adj {
			adjncy[base+i] = iperm[u]
			adjwgt[base+i] = wgt[i]
		}
	}
	return &Graph{Xadj: xadj, Adjncy: adjncy, Adjwgt: adjwgt, Vwgt: vwgt}
}

// DegreeHistogram returns counts[d] = number of vertices with degree d,
// up to the maximum degree present.
func (g *Graph) DegreeHistogram() []int {
	maxd := 0
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if d := g.Degree(v); d > maxd {
			maxd = d
		}
	}
	counts := make([]int, maxd+1)
	for v := 0; v < n; v++ {
		counts[g.Degree(v)]++
	}
	return counts
}

// AverageDegree returns 2m/n, or 0 for the empty graph.
func (g *Graph) AverageDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(len(g.Adjncy)) / float64(n)
}
