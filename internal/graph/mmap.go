package graph

// nopCloser is the closer returned when OpenBinaryFile decoded from a
// plain read buffer (non-Linux platforms, or an mmap-refusing filesystem):
// there is nothing to release, the buffer is garbage-collected with the
// Graph.
type nopCloser struct{}

func (nopCloser) Close() error { return nil }
