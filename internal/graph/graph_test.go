package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// path returns the path graph 0-1-2-...-(n-1).
func path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.MustBuild()
}

// cycle returns the n-cycle.
func cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.MustBuild()
}

// grid returns the rows x cols 4-connected grid.
func grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// randomGraph returns a random graph with n vertices and ~m edges,
// weights in [1, maxW], built deterministically from seed.
func randomGraph(n, m, maxW int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		b.AddWeightedEdge(u, v, 1+rng.Intn(maxW))
	}
	return b.MustBuild()
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got n=%d m=%d, want 4, 4", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge (0,1) missing in one direction")
	}
	if g.HasEdge(0, 2) {
		t.Error("unexpected edge (0,2)")
	}
}

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(2)
	b.AddWeightedEdge(0, 1, 3)
	b.AddWeightedEdge(1, 0, 4)
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("got m=%d, want 1", g.NumEdges())
	}
	if w := g.EdgeWeight(0, 1); w != 7 {
		t.Fatalf("merged weight = %d, want 7", w)
	}
}

func TestBuilderRejectsBadInput(t *testing.T) {
	cases := []func(*Builder){
		func(b *Builder) { b.AddEdge(0, 0) },
		func(b *Builder) { b.AddEdge(0, 9) },
		func(b *Builder) { b.AddEdge(-1, 0) },
		func(b *Builder) { b.AddWeightedEdge(0, 1, 0) },
		func(b *Builder) { b.AddWeightedEdge(0, 1, -2) },
	}
	for i, f := range cases {
		b := NewBuilder(3)
		f(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("case %d: Build accepted invalid input", i)
		}
	}
}

func TestBuilderVertexWeights(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.SetVertexWeight(1, 5)
	g := b.MustBuild()
	if g.TotalVertexWeight() != 7 {
		t.Fatalf("total vwgt = %d, want 7", g.TotalVertexWeight())
	}
}

func TestFromCSRNilWeights(t *testing.T) {
	// Triangle.
	g, err := FromCSR([]int{0, 2, 4, 6}, []int{1, 2, 0, 2, 0, 1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || g.TotalEdgeWeight() != 3 || g.TotalVertexWeight() != 3 {
		t.Fatalf("unexpected graph %v", g)
	}
}

func TestFromCSRRejectsAsymmetric(t *testing.T) {
	// Edge 0->1 present, 1->0 missing.
	_, err := FromCSR([]int{0, 1, 1}, []int{1}, nil, nil)
	if err == nil {
		t.Fatal("FromCSR accepted asymmetric graph")
	}
}

func TestValidateCatchesSelfLoop(t *testing.T) {
	g := &Graph{
		Xadj:   []int{0, 1},
		Adjncy: []int{0},
		Adjwgt: []int{1},
		Vwgt:   []int{1},
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted self loop")
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := grid(3, 3)
	// Center vertex 4 has degree 4; corners have degree 2.
	if g.Degree(4) != 4 {
		t.Errorf("degree(center) = %d, want 4", g.Degree(4))
	}
	for _, corner := range []int{0, 2, 6, 8} {
		if g.Degree(corner) != 2 {
			t.Errorf("degree(%d) = %d, want 2", corner, g.Degree(corner))
		}
	}
	if g.MaxWeightedDegree() != 4 {
		t.Errorf("max weighted degree = %d, want 4", g.MaxWeightedDegree())
	}
}

func TestTotalEdgeWeight(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(1, 2, 5)
	g := b.MustBuild()
	if g.TotalEdgeWeight() != 7 {
		t.Fatalf("total ewgt = %d, want 7", g.TotalEdgeWeight())
	}
}

func TestBFSVisitsComponent(t *testing.T) {
	g := path(5)
	order := g.BFS(0)
	if len(order) != 5 {
		t.Fatalf("BFS visited %d vertices, want 5", len(order))
	}
	if order[0] != 0 || order[4] != 4 {
		t.Fatalf("BFS order %v, want start 0 end 4", order)
	}
}

func TestComponents(t *testing.T) {
	// Two triangles, disconnected.
	b := NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.MustBuild()
	labels, count := g.Components()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if labels[0] != labels[1] || labels[0] != labels[2] {
		t.Errorf("first triangle split: %v", labels)
	}
	if labels[3] != labels[4] || labels[3] != labels[5] {
		t.Errorf("second triangle split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Errorf("components merged: %v", labels)
	}
	if g.IsConnected() {
		t.Error("IsConnected = true for disconnected graph")
	}
	if !grid(4, 4).IsConnected() {
		t.Error("IsConnected = false for grid")
	}
}

func TestPseudoPeripheralOnPath(t *testing.T) {
	g := path(10)
	v := g.PseudoPeripheral(5)
	if v != 0 && v != 9 {
		t.Fatalf("pseudo-peripheral of path = %d, want endpoint", v)
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	g := randomGraph(50, 200, 4, 1)
	n := g.NumVertices()
	perm := rand.New(rand.NewSource(2)).Perm(n)
	pg := g.Permute(perm)
	if err := pg.Validate(); err != nil {
		t.Fatal(err)
	}
	if pg.NumEdges() != g.NumEdges() || pg.TotalEdgeWeight() != g.TotalEdgeWeight() {
		t.Fatal("permutation changed edge set size or weight")
	}
	// Edge (perm[i], perm[j]) in g <=> edge (i, j) in pg with same weight.
	for i := 0; i < n; i++ {
		adj := pg.Neighbors(i)
		wgt := pg.EdgeWeights(i)
		for k, j := range adj {
			if w := g.EdgeWeight(perm[i], perm[j]); w != wgt[k] {
				t.Fatalf("edge (%d,%d): weight %d in pg, %d in g", i, j, wgt[k], w)
			}
		}
	}
}

func TestSubgraphExtraction(t *testing.T) {
	g := grid(4, 4)
	keep := make([]bool, 16)
	for v := 0; v < 8; v++ { // top two rows
		keep[v] = true
	}
	sg, l2g := g.Subgraph(keep)
	if err := sg.Validate(); err != nil {
		t.Fatal(err)
	}
	if sg.NumVertices() != 8 {
		t.Fatalf("subgraph n = %d, want 8", sg.NumVertices())
	}
	// 4x4 grid top 2 rows = 2x4 grid: edges = 4*1 + 3*2 = 10.
	if sg.NumEdges() != 10 {
		t.Fatalf("subgraph m = %d, want 10", sg.NumEdges())
	}
	for i, v := range l2g {
		if v != i {
			t.Fatalf("l2g[%d] = %d, want identity for this selection", i, v)
		}
	}
}

func TestPartSubgraph(t *testing.T) {
	g := cycle(6)
	where := []int{0, 0, 0, 1, 1, 1}
	sg0, l2g0 := g.PartSubgraph(where, 0)
	if sg0.NumVertices() != 3 || sg0.NumEdges() != 2 {
		t.Fatalf("part 0: n=%d m=%d, want 3, 2", sg0.NumVertices(), sg0.NumEdges())
	}
	if l2g0[0] != 0 || l2g0[2] != 2 {
		t.Fatalf("l2g0 = %v", l2g0)
	}
}

func TestIORoundTrip(t *testing.T) {
	graphs := map[string]*Graph{
		"path":     path(7),
		"grid":     grid(5, 4),
		"weighted": randomGraph(30, 120, 5, 3),
	}
	// Add a graph with vertex weights.
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.SetVertexWeight(0, 2)
	b.SetVertexWeight(2, 9)
	graphs["vweighted"] = b.MustBuild()

	for name, g := range graphs {
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		rg, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if rg.NumVertices() != g.NumVertices() || rg.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: round trip changed size", name)
		}
		for v := 0; v < g.NumVertices(); v++ {
			if rg.Vwgt[v] != g.Vwgt[v] {
				t.Fatalf("%s: vwgt[%d] changed", name, v)
			}
			adj := g.Neighbors(v)
			wgt := g.EdgeWeights(v)
			for i, u := range adj {
				if rg.EdgeWeight(v, u) != wgt[i] {
					t.Fatalf("%s: edge (%d,%d) weight changed", name, v, u)
				}
			}
		}
	}
}

func TestReadIsolatedVertex(t *testing.T) {
	// Vertex 3 (line three) has no neighbors.
	in := "3 1\n2\n1\n\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 1 {
		t.Fatalf("n=%d m=%d, want 3, 1", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(1) != 0 && g.Degree(2) != 0 {
		t.Fatal("expected an isolated vertex")
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	bad := []string{
		"",                  // empty
		"x y\n",             // non-numeric header
		"2 1\n2\n",          // missing vertex line
		"2 1\n3\n1\n",       // neighbor out of range
		"2 1 100\n1\n2\n",   // vertex sizes unsupported
		"2 2\n2\n1\n",       // header edge count mismatch
		"2 1 011\n2\n1 1\n", // vwgt flag set but weight missing edge weight pairing
	}
	for i, s := range bad {
		if _, err := Read(strings.NewReader(s)); err == nil {
			t.Errorf("case %d (%q): Read accepted invalid input", i, s)
		}
	}
}

func TestReadComments(t *testing.T) {
	in := "% a comment\n3 2\n% another\n2\n1 3\n2\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d, want 3, 2", g.NumVertices(), g.NumEdges())
	}
}

func TestClone(t *testing.T) {
	g := grid(3, 3)
	c := g.Clone()
	c.Vwgt[0] = 42
	c.Adjwgt[0] = 42
	if g.Vwgt[0] == 42 || g.Adjwgt[0] == 42 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestDegreeHistogramAndAverage(t *testing.T) {
	g := grid(3, 3)
	h := g.DegreeHistogram()
	// 4 corners (deg 2), 4 edges (deg 3), 1 center (deg 4).
	if h[2] != 4 || h[3] != 4 || h[4] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	want := float64(2*12) / 9
	if got := g.AverageDegree(); got != want {
		t.Fatalf("avg degree = %v, want %v", got, want)
	}
}

// Property: for any random graph, Permute by a random permutation preserves
// total weights and validates.
func TestPermutePropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		n := 20 + int(uint64(seed)%30)
		g := randomGraph(n, 3*n, 3, seed)
		perm := rand.New(rand.NewSource(seed + 1)).Perm(g.NumVertices())
		pg := g.Permute(perm)
		return pg.Validate() == nil &&
			pg.TotalEdgeWeight() == g.TotalEdgeWeight() &&
			pg.TotalVertexWeight() == g.TotalVertexWeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: subgraph edge weights never exceed the original total, and
// validation always passes.
func TestSubgraphPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(40, 150, 4, seed)
		rng := rand.New(rand.NewSource(seed + 7))
		keep := make([]bool, g.NumVertices())
		for i := range keep {
			keep[i] = rng.Intn(2) == 0
		}
		sg, l2g := g.Subgraph(keep)
		if sg.Validate() != nil {
			return false
		}
		if sg.TotalEdgeWeight() > g.TotalEdgeWeight() {
			return false
		}
		for i, v := range l2g {
			if sg.Vwgt[i] != g.Vwgt[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStringSummary(t *testing.T) {
	g := path(3)
	if s := g.String(); !strings.Contains(s, "n=3") || !strings.Contains(s, "m=2") {
		t.Fatalf("String() = %q", s)
	}
}

func TestWriteDOT(t *testing.T) {
	g := cycle(4)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, []int{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph G {", "0 -- 1", "style=dashed", "lightblue"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	buf.Reset()
	if err := WriteDOT(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "fillcolor") {
		t.Error("uncolored DOT has colors")
	}
	if err := WriteDOT(&buf, g, []int{0}); err == nil {
		t.Error("short where accepted")
	}
}
