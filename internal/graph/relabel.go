package graph

// Locality-aware vertex relabeling. Coarsening and boundary refinement are
// memory-bandwidth-bound traversals of Xadj/Adjncy; relabeling the
// vertices once at ingest so that vertices visited together sit together
// turns scattered reads into streaming ones — the trick behind KaHIP's
// "fast" configurations. The partitioner runs on the permuted graph and
// inverse-maps its outputs, so relabeling never changes what a caller
// sees beyond the cut a different traversal order produces.

import "fmt"

// Ordering scheme names accepted by RelabelPerm (and, one layer up, by
// mlpart.Options.Ordering).
const (
	// OrderNone leaves the labeling untouched.
	OrderNone = "none"
	// OrderDegree relabels by nondecreasing degree (stable in the original
	// ids): vertices of similar degree — which coarsening's matching
	// sweeps visit with similar frequency — become neighbors in memory.
	OrderDegree = "degree"
	// OrderBFSBlock relabels in breadth-first visitation order from the
	// minimum-degree vertex of each component: each BFS frontier is one
	// contiguous cache block, so an adjacency walk touches consecutive
	// memory.
	OrderBFSBlock = "bfs-block"
)

// ParseOrdering normalizes and validates an ordering name; "" means
// OrderNone.
func ParseOrdering(s string) (string, error) {
	switch s {
	case "", OrderNone:
		return OrderNone, nil
	case OrderDegree, OrderBFSBlock:
		return s, nil
	}
	return "", fmt.Errorf("graph: unknown ordering %q (want %q, %q or %q)",
		s, OrderNone, OrderDegree, OrderBFSBlock)
}

// RelabelPerm computes the relabeling permutation for the scheme:
// perm[old] = new. OrderNone (and "") returns nil, meaning "no
// relabeling". The permutation is deterministic for a given graph.
func RelabelPerm(g *Graph, scheme string) ([]int, error) {
	scheme, err := ParseOrdering(scheme)
	if err != nil {
		return nil, err
	}
	switch scheme {
	case OrderNone:
		return nil, nil
	case OrderDegree:
		return degreePerm(g), nil
	default:
		return bfsBlockPerm(g), nil
	}
}

// degreePerm is a counting sort of the vertices by degree, stable in the
// original ids. O(n + maxDegree).
func degreePerm(g *Graph) []int {
	n := g.NumVertices()
	maxd := 0
	for v := 0; v < n; v++ {
		if d := g.Degree(v); d > maxd {
			maxd = d
		}
	}
	count := make([]int, maxd+2)
	for v := 0; v < n; v++ {
		count[g.Degree(v)+1]++
	}
	for d := 1; d < len(count); d++ {
		count[d] += count[d-1]
	}
	perm := make([]int, n)
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		perm[v] = count[d]
		count[d]++
	}
	return perm
}

// bfsBlockPerm labels vertices in BFS visitation order, component by
// component, each BFS rooted at the component's minimum-degree vertex
// (lowest id among ties) and expanding neighbors in adjacency order.
func bfsBlockPerm(g *Graph) []int {
	n := g.NumVertices()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = -1
	}
	queue := make([]int, 0, n)
	next := 0
	// Roots are tried in min-degree-first order so the sweep starts at a
	// peripheral-ish vertex of every component without a separate
	// pseudo-peripheral search.
	byDegree := degreeOrderVertices(g)
	for _, root := range byDegree {
		if perm[root] >= 0 {
			continue
		}
		perm[root] = next
		next++
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if perm[v] < 0 {
					perm[v] = next
					next++
					queue = append(queue, v)
				}
			}
		}
	}
	return perm
}

// degreeOrderVertices returns the vertex ids sorted by nondecreasing
// degree, stable in the original ids (the inverse view of degreePerm).
func degreeOrderVertices(g *Graph) []int {
	perm := degreePerm(g)
	order := make([]int, len(perm))
	for old, nw := range perm {
		order[nw] = old
	}
	return order
}

// Permute returns a new graph with vertex v relabeled to perm[v]. perm
// must be a permutation of 0..n-1; a nil perm returns g itself. Adjacency
// lists of the new graph preserve the source order of the old lists with
// neighbor ids mapped. Cut, balance and all weights are invariant; only
// the labeling (and therefore memory layout) changes. O(n + m).
func Permute(g *Graph, perm []int) *Graph {
	if perm == nil {
		return g
	}
	n := g.NumVertices()
	inv := make([]int, n) // inv[new] = old
	for old, nw := range perm {
		inv[nw] = old
	}
	xadj := make([]int, n+1)
	for nw := 0; nw < n; nw++ {
		xadj[nw+1] = xadj[nw] + g.Degree(inv[nw])
	}
	adjncy := make([]int, len(g.Adjncy))
	adjwgt := make([]int, len(g.Adjwgt))
	vwgt := make([]int, n)
	for nw := 0; nw < n; nw++ {
		old := inv[nw]
		vwgt[nw] = g.Vwgt[old]
		pos := xadj[nw]
		adj := g.Neighbors(old)
		wgt := g.EdgeWeights(old)
		for i, v := range adj {
			adjncy[pos+i] = perm[v]
			adjwgt[pos+i] = wgt[i]
		}
	}
	return &Graph{Xadj: xadj, Adjncy: adjncy, Adjwgt: adjwgt, Vwgt: vwgt}
}
