package sessions

import (
	"testing"

	"mlpart/internal/matgen"
)

// BenchmarkDeltaRepair is the acceptance benchmark for streaming
// repartitioning: on a 125k-vertex FE 3D mesh, a <=1% delta batch
// repaired incrementally (the ladder's boundary rung) must beat
// re-running a full multilevel V-cycle over the whole graph. The
// batches are weight toggles on existing mesh edges, so the topology,
// memory footprint and drift stay constant across iterations and the
// two arms see identical work.
func BenchmarkDeltaRepair(b *testing.B) {
	g := matgen.FE3DTetra(50, 50, 50, 3)
	n := g.NumVertices()
	b.Logf("mesh: %d vertices, %d edges", n, g.NumEdges())

	// ~1% of vertices worth of ops, toggling the weight of existing
	// edges between 1 and 2. Using each vertex's first neighbor
	// guarantees the edge exists.
	batchFor := func(iter int) []Op {
		size := n / 100
		ops := make([]Op, 0, size)
		for i := 0; i < size; i++ {
			u := (i * 97) % n
			v := -1
			for e := g.Xadj[u]; e < g.Xadj[u+1]; e++ {
				v = int(g.Adjncy[e])
				break
			}
			if v < 0 {
				continue
			}
			ops = append(ops, Op{Op: OpAdd, U: u, V: v, W: 1 + (iter % 2)})
		}
		return ops
	}

	for _, arm := range []struct {
		name string
		run  func(b *testing.B, m *Manager, id string, iter int)
	}{
		{"boundary", func(b *testing.B, m *Manager, id string, iter int) {
			st, err := m.Apply(id, batchFor(iter))
			if err != nil {
				b.Fatal(err)
			}
			if st.LastRepair != "boundary" {
				b.Fatalf("ladder escalated to %q; the benchmark premise broke", st.LastRepair)
			}
		}},
		{"vcycle", func(b *testing.B, m *Manager, id string, iter int) {
			if _, err := m.Apply(id, batchFor(iter)); err != nil {
				b.Fatal(err)
			}
			if _, err := m.Repair(id, "vcycle"); err != nil {
				b.Fatal(err)
			}
		}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			m, err := NewManager(Options{MaxSessionBytes: 1 << 31, MaxResidentBytes: 1 << 31})
			if err != nil {
				b.Fatal(err)
			}
			st, err := m.Create(g, Config{K: 32, Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arm.run(b, m, st.ID, i)
			}
			b.StopTimer()
			fin, err := m.Get(st.ID, false)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(fin.Cut), "final-cut")
		})
	}
}
