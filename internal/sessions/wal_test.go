package sessions

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"mlpart/internal/matgen"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []walRecord{
		{Ops: []Op{{Op: OpAdd, U: 1, V: 2, W: 3}}, Tier: TierBoundary, Cut: 12},
		{Ops: []Op{{Op: OpRemove, U: 1, V: 2}, {Op: OpVwgt, U: 0, W: 7}}, Tier: TierFull, Cut: 9},
		{Tier: TierVCycle, Cut: 4},                                    // explicit repair, no ops
		{Ops: []Op{{Op: OpVwgt, U: 5, W: 1}}, Tier: TierNone, Cut: 4}, // failed repair
	}
	var log []byte
	for i, r := range recs {
		buf, err := encodeRecord(uint64(i+1), r)
		if err != nil {
			t.Fatalf("encodeRecord %d: %v", i, err)
		}
		log = append(log, buf...)
	}
	got, good := decodeRecords(log)
	if good != len(log) {
		t.Fatalf("goodLen = %d, want %d (clean log)", good, len(log))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, d := range got {
		if d.Seq != uint64(i+1) {
			t.Errorf("record %d: seq = %d, want %d", i, d.Seq, i+1)
		}
		if d.Rec.Tier != recs[i].Tier || d.Rec.Cut != recs[i].Cut || len(d.Rec.Ops) != len(recs[i].Ops) {
			t.Errorf("record %d: %+v != %+v", i, d.Rec, recs[i])
		}
	}
}

func TestDecodeRecordsTornTail(t *testing.T) {
	whole, err := encodeRecord(1, walRecord{Ops: []Op{{Op: OpAdd, U: 0, V: 1, W: 2}}, Tier: TierBoundary, Cut: 5})
	if err != nil {
		t.Fatal(err)
	}
	torn, err := encodeRecord(2, walRecord{Tier: TierFull, Cut: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point of the second record must decode exactly the
	// first and report the tear at the boundary between them.
	for cut := 0; cut < len(torn); cut++ {
		log := append(append([]byte(nil), whole...), torn[:cut]...)
		recs, good := decodeRecords(log)
		if len(recs) != 1 || recs[0].Seq != 1 {
			t.Fatalf("cut %d: decoded %d records", cut, len(recs))
		}
		if good != len(whole) {
			t.Fatalf("cut %d: goodLen = %d, want %d", cut, good, len(whole))
		}
	}
}

func TestDecodeRecordsChecksumCorruption(t *testing.T) {
	first, err := encodeRecord(1, walRecord{Tier: TierBoundary, Cut: 5})
	if err != nil {
		t.Fatal(err)
	}
	second, err := encodeRecord(2, walRecord{Tier: TierBoundary, Cut: 6})
	if err != nil {
		t.Fatal(err)
	}
	log := append(append([]byte(nil), first...), second...)
	// Flip one payload byte in the second record: decode stops before it.
	log[len(first)+24] ^= 0xff
	recs, good := decodeRecords(log)
	if len(recs) != 1 || good != len(first) {
		t.Fatalf("decoded %d records, goodLen %d; want 1, %d", len(recs), good, len(first))
	}
	// A corrupt length prefix must not make the decoder trust a bogus
	// gigabyte ask.
	binary.LittleEndian.PutUint32(log[len(first)+4:], 1<<30)
	recs, good = decodeRecords(log)
	if len(recs) != 1 || good != len(first) {
		t.Fatalf("after length corruption: %d records, goodLen %d", len(recs), good)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := matgen.Grid2D(6, 7)
	where := make([]int, g.NumVertices())
	for v := range where {
		where[v] = v % 3
	}
	meta := snapshotMeta{Seq: 42, K: 3, Seed: 9, Ubfactor: 1.07, BaselineCut: 17, CreatedUnix: 1_700_000_000}
	data, err := encodeSnapshot(meta, g, where)
	if err != nil {
		t.Fatalf("encodeSnapshot: %v", err)
	}
	gotMeta, gotG, gotWhere, err := decodeSnapshot(data)
	if err != nil {
		t.Fatalf("decodeSnapshot: %v", err)
	}
	if gotMeta != meta {
		t.Fatalf("meta = %+v, want %+v", gotMeta, meta)
	}
	if gotG.NumVertices() != g.NumVertices() || gotG.NumEdges() != g.NumEdges() {
		t.Fatalf("graph %d/%d, want %d/%d", gotG.NumVertices(), gotG.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	if !bytes.Equal(intsToBytes(gotWhere), intsToBytes(where)) {
		t.Fatal("where vector did not round-trip")
	}
}

func intsToBytes(xs []int) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(x))
	}
	return b
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	g := matgen.Grid2D(4, 4)
	where := make([]int, 16)
	data, err := encodeSnapshot(snapshotMeta{Seq: 1, K: 2}, g, where)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXSSNP01"), data[8:]...),
		"truncated":   data[:len(data)/2],
		"bit flip":    flipByte(data, len(data)/2),
		"sum clobber": flipByte(data, len(data)-1),
	}
	for name, d := range cases {
		if _, _, _, err := decodeSnapshot(d); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func flipByte(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0xff
	return out
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	if err := writeFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(path, []byte("v2-longer")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2-longer" {
		t.Fatalf("content = %q", got)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}
