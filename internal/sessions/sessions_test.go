package sessions

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mlpart/internal/faults"
	"mlpart/internal/graph"
	"mlpart/internal/matgen"
	"mlpart/internal/trace"
)

// fakeClock is a mutable test clock for Options.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func mustManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	m, err := NewManager(opts)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func mustCreate(t *testing.T, m *Manager, g *graph.Graph, cfg Config) *State {
	t.Helper()
	st, err := m.Create(g, cfg)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return st
}

// crossPair returns one vertex from part 0 and one from part 1.
func crossPair(t *testing.T, where []int) (int, int) {
	t.Helper()
	u, v := -1, -1
	for i, p := range where {
		if p == 0 && u < 0 {
			u = i
		}
		if p == 1 && v < 0 {
			v = i
		}
		if u >= 0 && v >= 0 {
			return u, v
		}
	}
	t.Fatal("partition has an empty part")
	return 0, 0
}

func TestSessionLifecycle(t *testing.T) {
	m := mustManager(t, Options{})
	g := matgen.Grid2D(12, 12)
	st := mustCreate(t, m, g, Config{K: 2, Seed: 7})
	if st.ID != IDFor(g) {
		t.Fatalf("id = %q, want %q", st.ID, IDFor(g))
	}
	if st.Vertices != 144 || st.K != 2 || st.Cut <= 0 {
		t.Fatalf("bad state: %+v", st)
	}
	if st.BaselineCut != st.Cut {
		t.Fatalf("baseline %d != cut %d at creation", st.BaselineCut, st.Cut)
	}

	// Duplicate graph → ErrExists.
	if _, err := m.Create(g, Config{K: 2, Seed: 7}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: got %v, want ErrExists", err)
	}

	got, err := m.Get(st.ID, true)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if len(got.Where) != 144 {
		t.Fatalf("Get(withWhere) returned %d entries", len(got.Where))
	}
	if list := m.List(); len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("List = %+v", list)
	}

	if err := m.Delete(st.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := m.Get(st.ID, false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: got %v, want ErrNotFound", err)
	}
	if err := m.Delete(st.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: got %v, want ErrNotFound", err)
	}
}

func TestApplyDeltaBoundaryRepair(t *testing.T) {
	m := mustManager(t, Options{})
	g := matgen.Grid2D(12, 12)
	st := mustCreate(t, m, g, Config{K: 2, Seed: 7})

	// A single unit edge cannot drift the cut past the default 1.10
	// ratio, so the ladder stays on its cheapest rung.
	got, err := m.Apply(st.ID, []Op{{Op: OpAdd, U: 0, V: 143, W: 1}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got.LastRepair != "boundary" {
		t.Fatalf("LastRepair = %q, want boundary", got.LastRepair)
	}
	if got.Seq != 1 || got.Deltas != 1 {
		t.Fatalf("seq/deltas = %d/%d, want 1/1", got.Seq, got.Deltas)
	}
	if got.Edges != st.Edges+1 {
		t.Fatalf("edges = %d, want %d", got.Edges, st.Edges+1)
	}
	stats := m.Stats()
	if stats.RepairsBoundary != 1 || stats.DeltasApplied != 1 || stats.OpsApplied != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestLadderEscalatesToFullOnImbalance(t *testing.T) {
	m := mustManager(t, Options{})
	g := matgen.Grid2D(12, 12)
	st := mustCreate(t, m, g, Config{K: 2, Seed: 7})

	// Reweighting one vertex to eclipse the rest leaves the cut alone but
	// blows the balance guard: the ladder must skip straight to a full
	// migration-aware repartition, which also resets the drift baseline.
	got, err := m.Apply(st.ID, []Op{{Op: OpVwgt, U: 0, W: 150}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got.LastRepair != "full" {
		t.Fatalf("LastRepair = %q, want full", got.LastRepair)
	}
	if got.BaselineCut != got.Cut {
		t.Fatalf("full repair must reset baseline: baseline %d, cut %d", got.BaselineCut, got.Cut)
	}
	if m.Stats().RepairsFull != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
	_ = st
}

func TestLadderEscalatesToVCycleOnSevereDrift(t *testing.T) {
	m := mustManager(t, Options{CutDriftRatio: 1.01, VCycleDriftRatio: 1.02})
	g := matgen.Grid2D(12, 12)
	st := mustCreate(t, m, g, Config{K: 2, Seed: 7})
	withWhere, err := m.Get(st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	u, v := crossPair(t, withWhere.Where)

	// A 1000-weight edge straddling the cut drives drift far past the
	// V-cycle threshold.
	got, err := m.Apply(st.ID, []Op{{Op: OpAdd, U: u, V: v, W: 1000}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got.LastRepair != "vcycle" {
		t.Fatalf("LastRepair = %q, want vcycle", got.LastRepair)
	}
	if got.BaselineCut != got.Cut {
		t.Fatalf("vcycle must reset baseline: baseline %d, cut %d", got.BaselineCut, got.Cut)
	}
	if m.Stats().RepairsVCycle != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestExplicitRepairModes(t *testing.T) {
	m := mustManager(t, Options{})
	g := matgen.Grid2D(12, 12)
	st := mustCreate(t, m, g, Config{K: 4, Seed: 3})
	for _, mode := range []string{"auto", "", "boundary", "full", "vcycle"} {
		got, err := m.Repair(st.ID, mode)
		if err != nil {
			t.Fatalf("Repair(%q): %v", mode, err)
		}
		if got.Where == nil {
			t.Fatalf("Repair(%q) returned no partition vector", mode)
		}
	}
	if _, err := m.Repair(st.ID, "nonsense"); err == nil {
		t.Fatal("Repair with unknown mode succeeded")
	}
}

func TestBatchRollbackOnInvalidOp(t *testing.T) {
	m := mustManager(t, Options{})
	g := matgen.Grid2D(8, 8)
	st := mustCreate(t, m, g, Config{K: 2, Seed: 1})

	// Op 0 is valid, op 1 is garbage: the batch must roll back in full.
	_, err := m.Apply(st.ID, []Op{
		{Op: OpAdd, U: 0, V: 63, W: 5},
		{Op: OpRemove, U: 0, V: 62}, // not an edge
	})
	var oe *OpError
	if !errors.As(err, &oe) || oe.Index != 1 {
		t.Fatalf("got %v, want OpError at index 1", err)
	}
	// If the rollback worked, edge (0,63) does not exist and removing it
	// fails; if op 0 leaked, this remove succeeds.
	_, err = m.Apply(st.ID, []Op{{Op: OpRemove, U: 0, V: 63}})
	if !errors.As(err, &oe) {
		t.Fatalf("edge (0,63) survived the rollback: %v", err)
	}
	got, gerr := m.Get(st.ID, false)
	if gerr != nil {
		t.Fatal(gerr)
	}
	if got.Seq != 0 || got.Cut != st.Cut {
		t.Fatalf("state drifted after rolled-back batches: %+v", got)
	}
}

func TestOpValidation(t *testing.T) {
	m := mustManager(t, Options{})
	g := matgen.Grid2D(4, 4)
	st := mustCreate(t, m, g, Config{K: 2, Seed: 1})
	cases := [][]Op{
		{},                  // empty batch
		{{Op: "zap", U: 0}}, // unknown op
		{{Op: OpAdd, U: -1, V: 1, W: 1}},
		{{Op: OpAdd, U: 0, V: 99, W: 1}},
		{{Op: OpAdd, U: 3, V: 3, W: 1}}, // self loop
		{{Op: OpAdd, U: 0, V: 5, W: 0}}, // non-positive weight
		{{Op: OpVwgt, U: 0, W: -2}},
		{{Op: OpRemove, U: 0, V: 9}}, // absent edge
	}
	for i, ops := range cases {
		var oe *OpError
		if _, err := m.Apply(st.ID, ops); !errors.As(err, &oe) {
			t.Errorf("case %d: got %v, want *OpError", i, err)
		}
	}
}

func TestBudgets(t *testing.T) {
	t.Run("batch too large", func(t *testing.T) {
		m := mustManager(t, Options{MaxDeltaOps: 2})
		st := mustCreate(t, m, matgen.Grid2D(6, 6), Config{K: 2, Seed: 1})
		ops := []Op{{Op: OpVwgt, U: 0, W: 2}, {Op: OpVwgt, U: 1, W: 2}, {Op: OpVwgt, U: 2, W: 2}}
		if _, err := m.Apply(st.ID, ops); !errors.Is(err, ErrBatchTooLarge) {
			t.Fatalf("got %v, want ErrBatchTooLarge", err)
		}
		if m.Stats().ShedBatch != 1 {
			t.Fatalf("stats = %+v", m.Stats())
		}
	})
	t.Run("session bytes", func(t *testing.T) {
		m := mustManager(t, Options{MaxSessionBytes: 64 << 10, MaxResidentBytes: 64 << 10})
		if _, err := m.Create(matgen.Grid2D(50, 50), Config{K: 2, Seed: 1}); !errors.Is(err, ErrSessionBytes) {
			t.Fatalf("got %v, want ErrSessionBytes", err)
		}
		if m.Stats().ShedMemory != 1 {
			t.Fatalf("stats = %+v", m.Stats())
		}
	})
	t.Run("resident bytes", func(t *testing.T) {
		m := mustManager(t, Options{MaxSessionBytes: 1 << 20, MaxResidentBytes: 1 << 20})
		mustCreate(t, m, matgen.Grid2D(40, 40), Config{K: 2, Seed: 1})
		if _, err := m.Create(matgen.Grid2D(41, 41), Config{K: 2, Seed: 1}); !errors.Is(err, ErrResidentBytes) {
			t.Fatalf("got %v, want ErrResidentBytes", err)
		}
	})
	t.Run("session count", func(t *testing.T) {
		m := mustManager(t, Options{MaxSessions: 1})
		mustCreate(t, m, matgen.Grid2D(6, 6), Config{K: 2, Seed: 1})
		if _, err := m.Create(matgen.Grid2D(7, 7), Config{K: 2, Seed: 1}); !errors.Is(err, ErrTooManySessions) {
			t.Fatalf("got %v, want ErrTooManySessions", err)
		}
	})
}

func TestConfigAndOptionsValidation(t *testing.T) {
	nan := math.NaN()
	badConfigs := []Config{
		{K: 1},
		{K: 2, Ubfactor: 0.5},
		{K: 2, Ubfactor: nan},
	}
	for i, cfg := range badConfigs {
		if cfg.Validate() == nil {
			t.Errorf("config %d validated", i)
		}
	}
	badOptions := []Options{
		{CutDriftRatio: nan},
		{CutDriftRatio: 0.9},
		{CutDriftRatio: 1.5, VCycleDriftRatio: 1.2}, // inverted ladder
		{MaxImbalance: 1.0},
		{MaxSessionBytes: -1},
		{MaxSessionBytes: 2 << 20, MaxResidentBytes: 1 << 20},
		{MaxDeltaOps: -1},
		{IdleTTL: -time.Second},
		{SnapshotEvery: -1},
	}
	for i, o := range badOptions {
		if _, err := NewManager(o); err == nil {
			t.Errorf("options %d validated", i)
		}
	}
}

func TestChaosApplyFault(t *testing.T) {
	for _, action := range []string{"error", "panic"} {
		t.Run(action, func(t *testing.T) {
			m := mustManager(t, Options{
				Injector: faults.MustParse(fmt.Sprintf("%s=%s@2", faults.SiteSessionApply, action)),
			})
			st := mustCreate(t, m, matgen.Grid2D(8, 8), Config{K: 2, Seed: 1})
			first, err := m.Apply(st.ID, []Op{{Op: OpAdd, U: 0, V: 63, W: 2}})
			if err != nil {
				t.Fatalf("Apply 1: %v", err)
			}
			// Hit 2 fires inside the apply boundary: the batch must leave
			// no trace.
			_, err = m.Apply(st.ID, []Op{{Op: OpVwgt, U: 1, W: 9}, {Op: OpVwgt, U: 2, W: 9}})
			if err == nil {
				t.Fatal("injected fault did not surface")
			}
			var pe *faults.PanicError
			var ie *faults.InjectedError
			if !errors.As(err, &pe) && !errors.As(err, &ie) {
				t.Fatalf("got %v, want injected or panic error", err)
			}
			got, gerr := m.Get(st.ID, false)
			if gerr != nil {
				t.Fatal(gerr)
			}
			if got.Seq != first.Seq || got.Cut != first.Cut {
				t.Fatalf("state drifted across a failed batch: %+v vs %+v", got, first)
			}
			if got.PartWeights[0]+got.PartWeights[1] != first.PartWeights[0]+first.PartWeights[1] {
				t.Fatal("vertex weights leaked from the rolled-back batch")
			}
			if m.Stats().ApplyFailures != 1 {
				t.Fatalf("stats = %+v", m.Stats())
			}
			// The injector plan is exhausted; the session keeps working.
			if _, err := m.Apply(st.ID, []Op{{Op: OpVwgt, U: 1, W: 3}}); err != nil {
				t.Fatalf("Apply after fault: %v", err)
			}
		})
	}
}

func TestChaosRepairFault(t *testing.T) {
	m := mustManager(t, Options{
		Injector: faults.MustParse(faults.SiteSessionRepair + "=error@2"),
	})
	st := mustCreate(t, m, matgen.Grid2D(8, 8), Config{K: 2, Seed: 1})
	// Creation does not fire the repair site, so this explicit repair is
	// hit 1 (passes); its result is the incumbent partition the failing
	// repair must not disturb.
	before, err := m.Repair(st.ID, "boundary")
	if err != nil {
		t.Fatalf("Repair 1: %v", err)
	}
	// Hit 2 fires mid-repair: the delta must stay applied (it is
	// consistent and durable) but the incumbent partition stays untouched
	// and the state reports the failure.
	got, err := m.Apply(st.ID, []Op{{Op: OpAdd, U: 0, V: 63, W: 2}})
	if err != nil {
		t.Fatalf("Apply with failing repair: %v", err)
	}
	if !got.RepairFailed {
		t.Fatal("RepairFailed not reported")
	}
	if got.Seq != before.Seq+1 {
		t.Fatalf("delta was not kept: seq = %d, want %d", got.Seq, before.Seq+1)
	}
	after, err := m.Get(st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before.Where {
		if before.Where[i] != after.Where[i] {
			t.Fatal("failed repair mutated the incumbent partition")
		}
	}
	if m.Stats().RepairFailures != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
	// Next repair succeeds and clears the flag.
	fixed, err := m.Repair(st.ID, "boundary")
	if err != nil {
		t.Fatalf("Repair after fault: %v", err)
	}
	if fixed.RepairFailed {
		t.Fatal("RepairFailed still set after a successful repair")
	}
}

func TestConcurrentSessionTraffic(t *testing.T) {
	m := mustManager(t, Options{})
	g := matgen.Grid2D(16, 16)
	st := mustCreate(t, m, g, Config{K: 4, Seed: 5})
	n := 16 * 16

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				u := (w*37 + i*11) % n
				v := (u + 1 + w) % n
				if u == v {
					v = (v + 1) % n
				}
				ops := []Op{
					{Op: OpAdd, U: u, V: v, W: 1 + (i % 3)},
					{Op: OpVwgt, U: u, W: 1 + (i % 2)},
				}
				if _, err := m.Apply(st.ID, ops); err != nil {
					errs <- fmt.Errorf("apply: %w", err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				if _, err := m.Get(st.ID, i%2 == 0); err != nil {
					errs <- fmt.Errorf("get: %w", err)
					return
				}
				m.List()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if _, err := m.Repair(st.ID, "auto"); err != nil {
				errs <- fmt.Errorf("repair: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Cross-check the incrementally maintained cut against one computed
	// from scratch by a forced V-cycle's bookkeeping.
	got, err := m.Get(st.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Deltas != 32 {
		t.Fatalf("deltas = %d, want 32", got.Deltas)
	}
	if got.Cut < 0 {
		t.Fatalf("negative cut %d", got.Cut)
	}
}

func TestDurableKillAndRecover(t *testing.T) {
	dir := t.TempDir()
	m1 := mustManager(t, Options{StateDir: dir, SnapshotEvery: 100}) // keep replay on the WAL path
	g := matgen.Grid2D(12, 12)
	st := mustCreate(t, m1, g, Config{K: 3, Seed: 11})
	for i := 0; i < 5; i++ {
		ops := []Op{
			{Op: OpAdd, U: i, V: 143 - i, W: 2 + i},
			{Op: OpVwgt, U: 10 + i, W: 2},
		}
		if _, err := m1.Apply(st.ID, ops); err != nil {
			t.Fatalf("Apply %d: %v", i, err)
		}
	}
	if _, err := m1.Apply(st.ID, []Op{{Op: OpRemove, U: 0, V: 143}}); err != nil {
		t.Fatalf("remove: %v", err)
	}
	want, err := m1.Get(st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	// Abandon m1 without Close: the process "crashed" with the WAL tail
	// unflushed to any snapshot.

	m2 := mustManager(t, Options{StateDir: dir})
	got, err := m2.Get(st.ID, true)
	if err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
	if !got.Recovered {
		t.Fatal("Recovered flag not set")
	}
	if got.Degraded {
		t.Fatal("recovery degraded on a clean log")
	}
	if got.Cut != want.Cut || got.Seq != want.Seq {
		t.Fatalf("cut/seq = %d/%d, want %d/%d", got.Cut, got.Seq, want.Cut, want.Seq)
	}
	if len(got.Where) != len(want.Where) {
		t.Fatalf("where length %d, want %d", len(got.Where), len(want.Where))
	}
	for i := range want.Where {
		if got.Where[i] != want.Where[i] {
			t.Fatalf("where[%d] = %d, want %d: recovery is not byte-identical", i, got.Where[i], want.Where[i])
		}
	}
	if m2.Stats().Recovered != 1 {
		t.Fatalf("stats = %+v", m2.Stats())
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	m1 := mustManager(t, Options{StateDir: dir, SnapshotEvery: 100})
	st := mustCreate(t, m1, matgen.Grid2D(10, 10), Config{K: 2, Seed: 3})
	for i := 0; i < 3; i++ {
		if _, err := m1.Apply(st.ID, []Op{{Op: OpAdd, U: i, V: 99 - i, W: 2}}); err != nil {
			t.Fatal(err)
		}
	}
	want, err := m1.Get(st.ID, true)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a SIGKILL mid-append: a record header with no payload.
	logPath := filepath.Join(dir, st.ID, deltaLogFile)
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn, err := encodeRecord(99, walRecord{Ops: []Op{{Op: OpVwgt, U: 0, W: 5}}, Tier: TierBoundary, Cut: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-7]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2 := mustManager(t, Options{StateDir: dir})
	got, err := m2.Get(st.ID, true)
	if err != nil {
		t.Fatalf("Get after torn-tail recovery: %v", err)
	}
	if got.Cut != want.Cut || got.Seq != want.Seq {
		t.Fatalf("cut/seq = %d/%d, want %d/%d", got.Cut, got.Seq, want.Cut, want.Seq)
	}
	for i := range want.Where {
		if got.Where[i] != want.Where[i] {
			t.Fatalf("where[%d] diverged after torn-tail recovery", i)
		}
	}
	if m2.Stats().WALTruncations != 1 {
		t.Fatalf("stats = %+v", m2.Stats())
	}
}

func TestRecoverySkipsCorruptSession(t *testing.T) {
	dir := t.TempDir()
	m1 := mustManager(t, Options{StateDir: dir})
	st := mustCreate(t, m1, matgen.Grid2D(6, 6), Config{K: 2, Seed: 1})
	good := mustCreate(t, m1, matgen.Grid2D(7, 7), Config{K: 2, Seed: 1})
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt one snapshot wholesale.
	if err := os.WriteFile(filepath.Join(dir, st.ID, snapshotFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	m2 := mustManager(t, Options{StateDir: dir})
	if _, err := m2.Get(good.ID, false); err != nil {
		t.Fatalf("healthy session lost: %v", err)
	}
	if m2.Stats().RecoverFailures == 0 {
		t.Fatalf("stats = %+v", m2.Stats())
	}
}

func TestIdleEvictionAndResurrection(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	m := mustManager(t, Options{StateDir: dir, IdleTTL: time.Minute, Now: clock.now})
	st := mustCreate(t, m, matgen.Grid2D(10, 10), Config{K: 2, Seed: 2})
	if _, err := m.Apply(st.ID, []Op{{Op: OpAdd, U: 0, V: 99, W: 3}}); err != nil {
		t.Fatal(err)
	}
	want, err := m.Get(st.ID, true)
	if err != nil {
		t.Fatal(err)
	}

	clock.advance(2 * time.Minute)
	if n := m.Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d, want 1", n)
	}
	if m.Stats().Sessions != 0 || m.Stats().ResidentBytes != 0 {
		t.Fatalf("stats after eviction = %+v", m.Stats())
	}

	// The session resurrects transparently from disk on next touch.
	got, err := m.Get(st.ID, true)
	if err != nil {
		t.Fatalf("Get after eviction: %v", err)
	}
	if !got.Recovered {
		t.Fatal("resurrected session not flagged Recovered")
	}
	if got.Cut != want.Cut || got.Seq != want.Seq {
		t.Fatalf("cut/seq = %d/%d, want %d/%d", got.Cut, got.Seq, want.Cut, want.Seq)
	}
	for i := range want.Where {
		if got.Where[i] != want.Where[i] {
			t.Fatalf("where[%d] diverged across eviction", i)
		}
	}
	s := m.Stats()
	if s.EvictedIdle != 1 || s.Recovered != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMemoryOnlyNeverEvicts(t *testing.T) {
	clock := newFakeClock()
	m := mustManager(t, Options{IdleTTL: time.Minute, Now: clock.now})
	st := mustCreate(t, m, matgen.Grid2D(6, 6), Config{K: 2, Seed: 1})
	clock.advance(time.Hour)
	if n := m.Sweep(); n != 0 {
		t.Fatalf("memory-only manager evicted %d sessions", n)
	}
	if _, err := m.Get(st.ID, false); err != nil {
		t.Fatalf("session vanished: %v", err)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	m := mustManager(t, Options{StateDir: dir, SnapshotEvery: 2})
	st := mustCreate(t, m, matgen.Grid2D(8, 8), Config{K: 2, Seed: 4})
	for i := 0; i < 4; i++ {
		if _, err := m.Apply(st.ID, []Op{{Op: OpVwgt, U: i, W: 2}}); err != nil {
			t.Fatal(err)
		}
	}
	// SnapshotEvery=2 → the log was compacted at least once; after the
	// 4th batch (a fresh compaction) it must be empty.
	info, err := os.Stat(filepath.Join(dir, st.ID, deltaLogFile))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Fatalf("delta log not compacted: %d bytes", info.Size())
	}
}

func TestSessionTraceEvents(t *testing.T) {
	col := &trace.Collector{}
	dir := t.TempDir()
	m := mustManager(t, Options{StateDir: dir, Tracer: col})
	st := mustCreate(t, m, matgen.Grid2D(8, 8), Config{K: 2, Seed: 1})
	if _, err := m.Apply(st.ID, []Op{{Op: OpAdd, U: 0, V: 63, W: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Repair(st.ID, "boundary"); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(st.ID); err != nil {
		t.Fatal(err)
	}
	phases := map[string]bool{}
	for _, e := range col.Events() {
		if e.Kind != trace.KindSession {
			t.Fatalf("event kind %q, want %q", e.Kind, trace.KindSession)
		}
		if e.Session != st.ID {
			t.Fatalf("event session %q, want %q", e.Session, st.ID)
		}
		phases[e.Phase] = true
	}
	for _, want := range []string{"created", "delta", "repair", "deleted"} {
		if !phases[want] {
			t.Fatalf("missing %q event; got %v", want, phases)
		}
	}
}
