package sessions

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"mlpart/internal/graph"
)

// Durability layout, one directory per session under the manager's state
// dir:
//
//	<state-dir>/<session-id>/snapshot.bin   atomic full state (csrb + meta)
//	<state-dir>/<session-id>/deltas.log     append-only checksummed records
//
// A delta record stores the ops of one batch plus the repair tier the
// live run executed and the edge-cut it reached. Replay re-applies the
// ops and re-runs the repair at the recorded tier with the session's
// seed — repairs are deterministic, so the recovered partition is
// byte-identical to the pre-crash one; the recorded cut cross-checks
// that. Records are length-prefixed and FNV-checksummed; a torn tail
// (the one partial record a SIGKILL mid-append can leave) is detected
// and truncated, never fatal.

const (
	recordMagic   = 0x4d4c5344 // "MLSD"
	snapshotMagic = "MLSSNP01"
	// maxRecordLen bounds a record's payload so a corrupt length prefix
	// can't ask the decoder for gigabytes.
	maxRecordLen = 64 << 20

	snapshotFile = "snapshot.bin"
	deltaLogFile = "deltas.log"
)

// walRecord is the JSON payload of one delta-log record.
type walRecord struct {
	// Ops is the delta batch, in application order. Empty for records
	// that log an explicit repartition with no graph change.
	Ops []Op `json:"ops,omitempty"`
	// Tier is the repair tier the live run executed after applying Ops:
	// TierNone (-1) when no repair ran (or the repair failed and left
	// the partition untouched).
	Tier Tier `json:"tier"`
	// Cut is the session's edge-cut after the batch and repair; replay
	// verifies it and degrades to a fresh V-cycle on mismatch.
	Cut int `json:"cut"`
}

// encodeRecord frames one record: magic, payload length, sequence
// number, FNV-64a of the payload, payload.
func encodeRecord(seq uint64, rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write(payload)
	buf := make([]byte, 24+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], recordMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	binary.LittleEndian.PutUint64(buf[16:24], h.Sum64())
	copy(buf[24:], payload)
	return buf, nil
}

// decodedRecord is one successfully decoded delta-log record.
type decodedRecord struct {
	Seq uint64
	Rec walRecord
}

// decodeRecords parses as many whole, checksummed records as data
// holds. It returns the records and the byte offset of the first
// byte it could not account for: offset == len(data) means the log is
// clean; anything shorter marks a torn or corrupt tail the caller
// should truncate away. It never returns an error and never panics on
// arbitrary input (FuzzDeltaLog holds it to that).
func decodeRecords(data []byte) (recs []decodedRecord, goodLen int) {
	off := 0
	for {
		if len(data)-off < 24 {
			return recs, off
		}
		if binary.LittleEndian.Uint32(data[off:off+4]) != recordMagic {
			return recs, off
		}
		plen := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		if plen < 0 || plen > maxRecordLen || len(data)-off-24 < plen {
			return recs, off
		}
		seq := binary.LittleEndian.Uint64(data[off+8 : off+16])
		sum := binary.LittleEndian.Uint64(data[off+16 : off+24])
		payload := data[off+24 : off+24+plen]
		h := fnv.New64a()
		h.Write(payload)
		if h.Sum64() != sum {
			return recs, off
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, off
		}
		recs = append(recs, decodedRecord{Seq: seq, Rec: rec})
		off += 24 + plen
	}
}

// snapshotMeta is the JSON header of a snapshot file.
type snapshotMeta struct {
	// Seq is the delta-log sequence number the snapshot captures; replay
	// skips records with Seq <= this.
	Seq uint64 `json:"seq"`
	K   int    `json:"k"`
	// Seed and Ubfactor reproduce the session's repair configuration.
	Seed     int64   `json:"seed"`
	Ubfactor float64 `json:"ubfactor"`
	// BaselineCut is the drift baseline at snapshot time.
	BaselineCut int `json:"baseline_cut"`
	// CreatedUnix is the session creation time (seconds).
	CreatedUnix int64 `json:"created_unix"`
}

// encodeSnapshot frames a full session state: magic, meta length, meta
// JSON, csrb graph+partition payload, trailing FNV-64a over everything
// before it.
func encodeSnapshot(meta snapshotMeta, g *graph.Graph, where []int) ([]byte, error) {
	mb, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteString(snapshotMagic)
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(mb)))
	buf.Write(lenb[:])
	buf.Write(mb)
	if err := graph.EncodeBinaryPart(&buf, g, where); err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	var sumb [8]byte
	binary.LittleEndian.PutUint64(sumb[:], h.Sum64())
	buf.Write(sumb[:])
	return buf.Bytes(), nil
}

// decodeSnapshot parses a snapshot file body.
func decodeSnapshot(data []byte) (snapshotMeta, *graph.Graph, []int, error) {
	var meta snapshotMeta
	if len(data) < len(snapshotMagic)+4+8 || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return meta, nil, nil, errors.New("sessions: bad snapshot header")
	}
	h := fnv.New64a()
	h.Write(data[:len(data)-8])
	if h.Sum64() != binary.LittleEndian.Uint64(data[len(data)-8:]) {
		return meta, nil, nil, errors.New("sessions: snapshot checksum mismatch")
	}
	off := len(snapshotMagic)
	mlen := int(binary.LittleEndian.Uint32(data[off : off+4]))
	off += 4
	if mlen < 0 || len(data)-off-8 < mlen {
		return meta, nil, nil, errors.New("sessions: snapshot meta truncated")
	}
	if err := json.Unmarshal(data[off:off+mlen], &meta); err != nil {
		return meta, nil, nil, fmt.Errorf("sessions: snapshot meta: %w", err)
	}
	off += mlen
	g, where, err := graph.DecodeBinaryPart(data[off : len(data)-8])
	if err != nil {
		return meta, nil, nil, fmt.Errorf("sessions: snapshot graph: %w", err)
	}
	return meta, g, where, nil
}

// writeFileAtomic writes data to path via a temp file + rename, fsyncing
// the file so the rename publishes durable bytes.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-snap-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
