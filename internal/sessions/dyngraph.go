package sessions

import (
	"sort"

	"mlpart/internal/graph"
)

// dynGraph is the mutable adjacency form of a resident graph. The CSR
// form the engine consumes is immutable by design (slices aliased by
// zero-copy decoders, fingerprints over the raw arrays), so sessions
// keep a map-based undirected adjacency that absorbs delta batches in
// O(1) per edge and lazily re-materializes a deterministic CSR snapshot
// when a repair needs one.
type dynGraph struct {
	vwgt []int
	// adj[u] maps neighbor -> edge weight; every undirected edge appears
	// in both endpoints' maps (the same invariant CSR keeps).
	adj []map[int]int
	// dir is the number of directed adjacency entries (2× the undirected
	// edge count), maintained incrementally.
	dir int
	// totVwgt is the sum of vertex weights, maintained incrementally.
	totVwgt int
	// csr caches the materialized snapshot; nil after any mutation.
	csr *graph.Graph
}

// newDynGraph copies g into mutable form. g is not retained.
func newDynGraph(g *graph.Graph) *dynGraph {
	n := g.NumVertices()
	d := &dynGraph{
		vwgt: make([]int, n),
		adj:  make([]map[int]int, n),
	}
	for u := 0; u < n; u++ {
		w := 1
		if len(g.Vwgt) > 0 {
			w = g.Vwgt[u]
		}
		d.vwgt[u] = w
		d.totVwgt += w
		deg := int(g.Xadj[u+1] - g.Xadj[u])
		m := make(map[int]int, deg)
		for i := g.Xadj[u]; i < g.Xadj[u+1]; i++ {
			ew := 1
			if len(g.Adjwgt) > 0 {
				ew = g.Adjwgt[i]
			}
			m[g.Adjncy[i]] = ew
		}
		d.adj[u] = m
		d.dir += len(m)
	}
	return d
}

func (d *dynGraph) numVertices() int { return len(d.vwgt) }

// edgeWeight returns the weight of edge (u,v) and whether it exists.
func (d *dynGraph) edgeWeight(u, v int) (int, bool) {
	w, ok := d.adj[u][v]
	return w, ok
}

// setEdge inserts or reweights the undirected edge (u,v). Callers
// validate u != v and w > 0.
func (d *dynGraph) setEdge(u, v, w int) {
	if _, ok := d.adj[u][v]; !ok {
		d.dir += 2
	}
	d.adj[u][v] = w
	d.adj[v][u] = w
	d.csr = nil
}

// delEdge removes the undirected edge (u,v). Callers validate it exists.
func (d *dynGraph) delEdge(u, v int) {
	delete(d.adj[u], v)
	delete(d.adj[v], u)
	d.dir -= 2
	d.csr = nil
}

// setVwgt replaces vertex u's weight. Callers validate w > 0.
func (d *dynGraph) setVwgt(u, w int) {
	d.totVwgt += w - d.vwgt[u]
	d.vwgt[u] = w
	// CSR carries vertex weights too.
	d.csr = nil
}

// snapshot materializes (and caches) the CSR form. Neighbor lists are
// emitted in ascending vertex order so the same adjacency state always
// yields the same CSR arrays — the determinism the delta-log replay and
// the fingerprint both rely on.
func (d *dynGraph) snapshot() *graph.Graph {
	if d.csr != nil {
		return d.csr
	}
	n := len(d.vwgt)
	g := &graph.Graph{
		Xadj:   make([]int, n+1),
		Adjncy: make([]int, 0, d.dir),
		Adjwgt: make([]int, 0, d.dir),
		Vwgt:   append([]int(nil), d.vwgt...),
	}
	nbrs := make([]int, 0, 64)
	for u := 0; u < n; u++ {
		nbrs = nbrs[:0]
		for v := range d.adj[u] {
			nbrs = append(nbrs, v)
		}
		sort.Ints(nbrs)
		for _, v := range nbrs {
			g.Adjncy = append(g.Adjncy, v)
			g.Adjwgt = append(g.Adjwgt, d.adj[u][v])
		}
		g.Xadj[u+1] = len(g.Adjncy)
	}
	d.csr = g
	return g
}

// Per-element byte estimates behind the session memory accounting.
// Go maps cost roughly 50 bytes per int->int entry once bucket overhead
// and load factor are amortized; each undirected edge owns two entries.
// The vertex figure covers the map header, the vwgt element and the
// session's where slot. The CSR cache, when materialized, adds its
// array bytes on top.
const (
	bytesPerVertex   = 96
	bytesPerDirEntry = 56
)

// bytes estimates the resident heap footprint of the dynamic form plus
// the cached CSR snapshot (if any).
func (d *dynGraph) bytes() int64 {
	b := int64(len(d.vwgt))*bytesPerVertex + int64(d.dir)*bytesPerDirEntry
	if d.csr != nil {
		b += int64(len(d.csr.Xadj)+len(d.csr.Adjncy)+len(d.csr.Adjwgt)+len(d.csr.Vwgt)) * 8
	}
	return b
}
