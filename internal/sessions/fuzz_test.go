package sessions

import (
	"bytes"
	"testing"
)

// FuzzDeltaLog holds decodeRecords to its contract on arbitrary input:
// it never panics, never claims more bytes than it was given, and the
// prefix it does claim re-decodes to exactly the same records — the
// property crash recovery relies on when it truncates a torn tail and
// replays what is left.
func FuzzDeltaLog(f *testing.F) {
	f.Add([]byte{})
	if rec, err := encodeRecord(1, walRecord{Ops: []Op{{Op: OpAdd, U: 0, V: 1, W: 2}}, Tier: TierBoundary, Cut: 3}); err == nil {
		f.Add(rec)
		f.Add(rec[:len(rec)-5])                         // torn tail
		f.Add(append(append([]byte(nil), rec...), 'x')) // trailing garbage
		two, _ := encodeRecord(2, walRecord{Tier: TierVCycle, Cut: 0})
		f.Add(append(append([]byte(nil), rec...), two...))
	}
	f.Add([]byte("MLSD garbage that only starts like a record"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good := decodeRecords(data)
		if good < 0 || good > len(data) {
			t.Fatalf("goodLen %d out of range [0,%d]", good, len(data))
		}
		// Truncating to the claimed-good prefix must be idempotent: the
		// same records come back and the whole prefix is accounted for.
		again, againGood := decodeRecords(data[:good])
		if againGood != good {
			t.Fatalf("re-decode of good prefix claims %d, want %d", againGood, good)
		}
		if len(again) != len(recs) {
			t.Fatalf("re-decode found %d records, want %d", len(again), len(recs))
		}
		for i := range recs {
			if recs[i].Seq != again[i].Seq || recs[i].Rec.Tier != again[i].Rec.Tier || recs[i].Rec.Cut != again[i].Rec.Cut {
				t.Fatalf("record %d diverged on re-decode", i)
			}
		}
		// Round-tripping the decoded records re-frames to bytes that
		// decode identically (JSON bytes may differ, content may not).
		var rebuilt bytes.Buffer
		for _, r := range recs {
			buf, err := encodeRecord(r.Seq, r.Rec)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			rebuilt.Write(buf)
		}
		third, thirdGood := decodeRecords(rebuilt.Bytes())
		if thirdGood != rebuilt.Len() || len(third) != len(recs) {
			t.Fatalf("re-encoded log does not decode cleanly: %d/%d records, good %d/%d",
				len(third), len(recs), thirdGood, rebuilt.Len())
		}
	})
}
