// Package sessions turns the daemon from a stateless partition function
// into a graph-session service: a fingerprint-addressed registry of
// resident graphs, each carrying an incumbent partition that streaming
// delta batches (edge adds/removes, vertex reweights) mutate in place.
//
// Every batch applies atomically under the session's lock and triggers
// incremental repair through a three-tier degradation ladder — boundary
// -local BKWAY refinement while drift is small, a full migration-aware
// repartition (rebalance + refine) when cut drift or imbalance crosses
// the configured thresholds, and a fresh multilevel V-cycle when drift
// is severe. This is the repartitioning regime "Recent Advances in
// Graph Partitioning" surveys: the incumbent partition is almost right,
// so repair cost should scale with the change, not the graph.
//
// Robustness is the design center:
//
//   - Memory-budget admission: per-session and global resident-byte
//     budgets shed oversized graphs and batches before they allocate,
//     and idle sessions are evicted to disk (durable mode) to make room.
//   - Panic boundaries + fault sites (session/apply, session/repair): a
//     poisoned delta rolls its whole batch back and poisons nothing; a
//     failed repair leaves the incumbent partition untouched with the
//     drift still pending.
//   - Crash safety: an append-only checksummed delta log plus periodic
//     atomic csrb snapshots per session under the state dir. Replay
//     re-applies logged batches and re-runs each repair at its recorded
//     tier with the session's seed — repairs are deterministic, so a
//     SIGKILL'd daemon comes back with byte-identical partitions; the
//     logged cut cross-checks every step and any mismatch degrades to a
//     fresh V-cycle rather than serving silently wrong state.
package sessions

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mlpart/internal/faults"
	"mlpart/internal/graph"
	"mlpart/internal/kway"
	"mlpart/internal/multilevel"
	"mlpart/internal/refine"
	"mlpart/internal/trace"
)

// Delta op names.
const (
	// OpAdd inserts the undirected edge (U,V) with weight W, or updates
	// its weight if it already exists.
	OpAdd = "add"
	// OpRemove deletes the undirected edge (U,V); it must exist.
	OpRemove = "remove"
	// OpVwgt sets vertex U's weight to W — the adaptive-workload case
	// where per-vertex cost changes and imbalance, not cut, drifts.
	OpVwgt = "vwgt"
)

// Op is one graph mutation inside a delta batch.
type Op struct {
	Op string `json:"op"`
	U  int    `json:"u"`
	V  int    `json:"v,omitempty"`
	W  int    `json:"w,omitempty"`
}

// Tier identifies a rung of the repair ladder.
type Tier int

const (
	// TierNone means no repair ran.
	TierNone Tier = -1
	// TierBoundary is incremental boundary-local BKWAY refinement.
	TierBoundary Tier = 0
	// TierFull is a full migration-aware repartition (rebalance+refine).
	TierFull Tier = 1
	// TierVCycle is a fresh multilevel V-cycle from scratch.
	TierVCycle Tier = 2
)

// String names the tier as it appears on the wire and in traces.
func (t Tier) String() string {
	switch t {
	case TierBoundary:
		return "boundary"
	case TierFull:
		return "full"
	case TierVCycle:
		return "vcycle"
	default:
		return "none"
	}
}

// Typed failures the service maps to HTTP statuses.
var (
	// ErrExists rejects creating a session whose graph fingerprint is
	// already resident (409).
	ErrExists = errors.New("session already exists for this graph")
	// ErrNotFound reports an unknown session id (404).
	ErrNotFound = errors.New("no such session")
	// ErrTooManySessions rejects a create when the session count budget
	// is exhausted and nothing idle can be evicted (429).
	ErrTooManySessions = errors.New("session limit reached")
	// ErrSessionBytes rejects a graph or batch that would push one
	// session past its per-session memory budget (413).
	ErrSessionBytes = errors.New("session memory budget exceeded")
	// ErrResidentBytes rejects work that would push the manager past the
	// global resident-byte budget after idle eviction (429).
	ErrResidentBytes = errors.New("resident memory budget exhausted")
	// ErrBatchTooLarge rejects a delta batch with more ops than
	// Options.MaxDeltaOps (413).
	ErrBatchTooLarge = errors.New("delta batch exceeds op limit")
)

// OpError is a client-caused rejection of one op in a delta batch; the
// whole batch was rolled back. The service maps it to a 400.
type OpError struct {
	Index  int
	Reason string
}

func (e *OpError) Error() string {
	return fmt.Sprintf("op %d: %s", e.Index, e.Reason)
}

// Config is the per-session partitioning configuration, fixed at create
// time (and by recovery, from the snapshot meta).
type Config struct {
	// K is the number of parts.
	K int
	// Seed drives every repair deterministically — the property log
	// replay relies on.
	Seed int64
	// Ubfactor is the balance target (0 means 1.05).
	Ubfactor float64
}

// Validate rejects configs the repair ladder cannot honor.
func (c Config) Validate() error {
	if c.K < 2 {
		return fmt.Errorf("sessions: k must be >= 2, got %d", c.K)
	}
	if math.IsNaN(c.Ubfactor) || math.IsInf(c.Ubfactor, 0) {
		return errors.New("sessions: ubfactor must be finite")
	}
	if c.Ubfactor != 0 && c.Ubfactor < 1 {
		return fmt.Errorf("sessions: ubfactor must be >= 1 (or 0 for default), got %v", c.Ubfactor)
	}
	return nil
}

// Options configures a Manager. The zero value is usable: withDefaults
// fills every field.
type Options struct {
	// StateDir, when non-empty, makes sessions durable: one directory
	// per session holding an append-only delta log and periodic
	// snapshots, replayed by NewManager. Empty means memory-only (no
	// recovery, and idle eviction is disabled because evicting would
	// destroy state).
	StateDir string
	// MaxSessions bounds the number of resident sessions (0 means 64).
	MaxSessions int
	// MaxSessionBytes bounds one session's estimated resident bytes
	// (0 means 256 MiB). Oversized creates and batches get 413.
	MaxSessionBytes int64
	// MaxResidentBytes bounds the sum across sessions (0 means 1 GiB).
	// Exceeding it after idle eviction gets 429.
	MaxResidentBytes int64
	// MaxDeltaOps bounds the ops in one delta batch (0 means 4096).
	MaxDeltaOps int
	// IdleTTL is how long a session may go unused before it becomes an
	// eviction candidate (0 means 30m).
	IdleTTL time.Duration
	// SnapshotEvery compacts the delta log into a fresh snapshot after
	// this many records (0 means 64). Ladder tiers >= full also snapshot
	// immediately, because replaying a full repartition costs as much as
	// the snapshot saves.
	SnapshotEvery int

	// CutDriftRatio escalates boundary repair to a full repartition when
	// cut/baseline crosses it (0 means 1.10).
	CutDriftRatio float64
	// VCycleDriftRatio escalates to a fresh V-cycle (0 means 1.5).
	VCycleDriftRatio float64
	// MaxImbalance escalates to a full repartition when k*max(pwgt)/total
	// crosses it regardless of cut drift (0 means 1.15).
	MaxImbalance float64

	// Injector is the fault injector consulted at session/apply and
	// session/repair (nil = faults.Default()).
	Injector *faults.Injector
	// Tracer, when non-nil, receives KindSession events.
	Tracer trace.Tracer
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxSessions == 0 {
		o.MaxSessions = 64
	}
	if o.MaxSessionBytes == 0 {
		o.MaxSessionBytes = 256 << 20
	}
	if o.MaxResidentBytes == 0 {
		o.MaxResidentBytes = 1 << 30
	}
	if o.MaxDeltaOps == 0 {
		o.MaxDeltaOps = 4096
	}
	if o.IdleTTL == 0 {
		o.IdleTTL = 30 * time.Minute
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 64
	}
	if o.CutDriftRatio == 0 {
		o.CutDriftRatio = 1.10
	}
	if o.VCycleDriftRatio == 0 {
		o.VCycleDriftRatio = 1.5
	}
	if o.MaxImbalance == 0 {
		o.MaxImbalance = 1.15
	}
	if o.Injector == nil {
		o.Injector = faults.Default()
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Validate rejects option values the ladder cannot act on coherently:
// non-finite or sub-1 thresholds, an escalation order that would skip
// rungs, and non-positive budgets.
func (o Options) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"cut_drift_ratio", o.CutDriftRatio},
		{"vcycle_drift_ratio", o.VCycleDriftRatio},
		{"max_imbalance", o.MaxImbalance},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("sessions: %s must be finite", f.name)
		}
		if f.v != 0 && f.v <= 1 {
			return fmt.Errorf("sessions: %s must be > 1 (or 0 for default), got %v", f.name, f.v)
		}
	}
	cd, vd := o.CutDriftRatio, o.VCycleDriftRatio
	if cd == 0 {
		cd = 1.10
	}
	if vd == 0 {
		vd = 1.5
	}
	if vd < cd {
		return fmt.Errorf("sessions: vcycle_drift_ratio (%v) must be >= cut_drift_ratio (%v)", vd, cd)
	}
	if o.MaxSessions < 0 {
		return errors.New("sessions: max_sessions must be >= 0")
	}
	if o.MaxSessionBytes < 0 || o.MaxResidentBytes < 0 {
		return errors.New("sessions: memory budgets must be >= 0")
	}
	if o.MaxSessionBytes != 0 && o.MaxResidentBytes != 0 && o.MaxResidentBytes < o.MaxSessionBytes {
		return errors.New("sessions: max_resident_bytes must be >= max_session_bytes")
	}
	if o.MaxDeltaOps < 0 {
		return errors.New("sessions: max_delta_ops must be >= 0")
	}
	if o.IdleTTL < 0 {
		return errors.New("sessions: idle_ttl must be >= 0")
	}
	if o.SnapshotEvery < 0 {
		return errors.New("sessions: snapshot_every must be >= 0")
	}
	return nil
}

// State is a point-in-time snapshot of one session, safe to use after
// the manager moves on.
type State struct {
	ID          string
	Vertices    int
	Edges       int
	K           int
	Cut         int
	BaselineCut int
	Balance     float64
	PartWeights []int
	// Where is the partition vector; nil unless the caller asked for it.
	Where []int
	// Seq is the delta-log sequence number (batches + explicit repairs).
	Seq uint64
	// Deltas is the number of delta batches applied this residency.
	Deltas int64
	// ResidentBytes is the session's estimated heap footprint.
	ResidentBytes int64
	// LastRepair names the tier of the most recent successful repair.
	LastRepair string
	// RepairFailed reports that the most recent repair attempt failed
	// (fault or panic) and its drift is still pending.
	RepairFailed bool
	// Recovered reports the session was rebuilt from disk this process.
	Recovered bool
	// Degraded reports recovery could not verify the logged cuts and
	// fell back to a fresh V-cycle.
	Degraded bool
}

// Stats is the manager-level counter snapshot behind the varz block.
type Stats struct {
	Sessions         int
	ResidentBytes    int64
	MaxSessions      int
	MaxResidentBytes int64

	Created           int64
	Recovered         int64
	RecoveredDegraded int64
	RecoverFailures   int64
	EvictedIdle       int64
	Deleted           int64

	DeltasApplied int64
	OpsApplied    int64
	ShedBatch     int64
	ShedMemory    int64
	ApplyFailures int64

	RepairsBoundary int64
	RepairsFull     int64
	RepairsVCycle   int64
	RepairFailures  int64

	WALErrors      int64
	WALTruncations int64
}

// Manager owns the session registry, budgets and durability.
type Manager struct {
	opts Options

	mu       sync.Mutex
	sessions map[string]*session
	resident atomic.Int64

	created           atomic.Int64
	recovered         atomic.Int64
	recoveredDegraded atomic.Int64
	recoverFailures   atomic.Int64
	evictedIdle       atomic.Int64
	deleted           atomic.Int64
	deltasApplied     atomic.Int64
	opsApplied        atomic.Int64
	shedBatch         atomic.Int64
	shedMemory        atomic.Int64
	applyFailures     atomic.Int64
	repairsBoundary   atomic.Int64
	repairsFull       atomic.Int64
	repairsVCycle     atomic.Int64
	repairFailures    atomic.Int64
	walErrors         atomic.Int64
	walTruncations    atomic.Int64
}

type session struct {
	mu sync.Mutex

	id       string
	dir      string // "" in memory-only mode
	k        int
	seed     int64
	ubfactor float64

	dg    *dynGraph
	where []int
	pwgt  []int
	cut   int

	baselineCut int
	seq         uint64
	deltas      int64
	bytes       int64

	created  time.Time
	lastUsed time.Time

	wal           *os.File
	recsSinceSnap int
	dirty         bool

	lastTier     Tier
	repairFailed bool
	recovered    bool
	degraded     bool
	closed       bool
}

// NewManager validates opts, creates the state dir if configured, and
// eagerly recovers every session found on disk.
func NewManager(opts Options) (*Manager, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	m := &Manager{opts: opts, sessions: make(map[string]*session)}
	if opts.StateDir != "" {
		if err := os.MkdirAll(opts.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("sessions: state dir: %w", err)
		}
		m.recoverAll()
	}
	return m, nil
}

// IDFor returns the session id of a graph: its content fingerprint.
func IDFor(g *graph.Graph) string {
	return fmt.Sprintf("g%016x", g.Fingerprint())
}

func (m *Manager) now() time.Time { return m.opts.Now() }

func (m *Manager) emit(e trace.Event) {
	if m.opts.Tracer != nil {
		e.Kind = trace.KindSession
		m.opts.Tracer.Event(e)
	}
}

// estimateCreateBytes predicts the resident footprint of a graph before
// building the dynamic form, so admission can reject it allocation-free.
func estimateCreateBytes(g *graph.Graph) int64 {
	n := int64(g.NumVertices())
	dir := int64(len(g.Adjncy))
	// dynamic form + cached CSR + where/pwgt.
	return n*bytesPerVertex + dir*bytesPerDirEntry + (n+1+2*dir+n)*8 + n*8
}

// Create admits a new resident graph, computes its initial k-way
// partition with a full multilevel V-cycle, persists the first snapshot
// and returns its state.
func (m *Manager) Create(g *graph.Graph, cfg Config) (*State, error) {
	if err := cfg.Validate(); err != nil {
		return nil, &OpError{Reason: err.Error()}
	}
	if err := g.Validate(); err != nil {
		return nil, &OpError{Reason: err.Error()}
	}
	if g.NumVertices() < cfg.K {
		return nil, &OpError{Reason: fmt.Sprintf("k=%d exceeds vertex count %d", cfg.K, g.NumVertices())}
	}
	est := estimateCreateBytes(g)
	if est > m.opts.MaxSessionBytes {
		m.shedMemory.Add(1)
		return nil, fmt.Errorf("%w: graph needs ~%d bytes, budget %d", ErrSessionBytes, est, m.opts.MaxSessionBytes)
	}
	id := IDFor(g)
	now := m.now()

	m.mu.Lock()
	if _, ok := m.sessions[id]; ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrExists, id)
	}
	if len(m.sessions) >= m.opts.MaxSessions {
		m.mu.Unlock()
		m.evictIdle(now, 0, nil)
		m.mu.Lock()
		if _, ok := m.sessions[id]; ok {
			m.mu.Unlock()
			return nil, fmt.Errorf("%w: %s", ErrExists, id)
		}
		if len(m.sessions) >= m.opts.MaxSessions {
			m.mu.Unlock()
			return nil, ErrTooManySessions
		}
	}
	if m.resident.Load()+est > m.opts.MaxResidentBytes {
		m.mu.Unlock()
		m.evictIdle(now, est, nil)
		m.mu.Lock()
		if _, ok := m.sessions[id]; ok {
			m.mu.Unlock()
			return nil, fmt.Errorf("%w: %s", ErrExists, id)
		}
		if m.resident.Load()+est > m.opts.MaxResidentBytes {
			m.mu.Unlock()
			m.shedMemory.Add(1)
			return nil, ErrResidentBytes
		}
	}
	s := &session{
		id:       id,
		k:        cfg.K,
		seed:     cfg.Seed,
		ubfactor: cfg.Ubfactor,
		created:  now,
		lastUsed: now,
		lastTier: TierNone,
	}
	s.mu.Lock()
	m.sessions[id] = s
	m.mu.Unlock()
	defer s.mu.Unlock()

	fail := func(err error) (*State, error) {
		m.mu.Lock()
		delete(m.sessions, id)
		m.mu.Unlock()
		s.closed = true
		return nil, err
	}

	start := time.Now()
	res, err := multilevel.PartitionKWay(g, cfg.K, multilevel.Options{
		Seed:     cfg.Seed,
		Ubfactor: cfg.Ubfactor,
		Injector: m.opts.Injector,
	}.WithRefinement(refine.BKWAY))
	if err != nil {
		return fail(err)
	}
	s.dg = newDynGraph(g)
	s.where = res.Where
	p := kway.NewPartition(g, cfg.K, res.Where)
	s.pwgt = p.Pwgt
	s.cut = res.EdgeCut
	s.baselineCut = s.cut

	if m.opts.StateDir != "" {
		s.dir = filepath.Join(m.opts.StateDir, id)
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			return fail(fmt.Errorf("sessions: session dir: %w", err))
		}
		if err := s.writeSnapshot(m); err != nil {
			os.RemoveAll(s.dir)
			return fail(fmt.Errorf("sessions: initial snapshot: %w", err))
		}
		if err := s.openWAL(); err != nil {
			os.RemoveAll(s.dir)
			return fail(fmt.Errorf("sessions: delta log: %w", err))
		}
	}
	s.refreshBytes(m)
	m.created.Add(1)
	m.emit(trace.Event{Session: id, Phase: "created", Cut: s.cut, Vertices: g.NumVertices(), Edges: g.NumEdges(), ElapsedNS: time.Since(start).Nanoseconds()})
	return s.state(false), nil
}

// acquire resolves id to a locked session, lazily reloading an evicted
// one from disk. The caller must unlock it.
func (m *Manager) acquire(id string) (*session, error) {
	for {
		m.mu.Lock()
		s, ok := m.sessions[id]
		m.mu.Unlock()
		if ok {
			s.mu.Lock()
			if s.closed {
				// Lost a race with eviction or deletion; retry.
				s.mu.Unlock()
				continue
			}
			return s, nil
		}
		if m.opts.StateDir == "" {
			return nil, ErrNotFound
		}
		dir := filepath.Join(m.opts.StateDir, id)
		if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
			return nil, ErrNotFound
		}
		loaded, err := m.loadFromDisk(id)
		if err != nil {
			m.recoverFailures.Add(1)
			return nil, fmt.Errorf("sessions: reload %s: %w", id, err)
		}
		m.mu.Lock()
		if _, ok := m.sessions[id]; ok {
			// Someone else reloaded it first; discard ours and retry.
			m.mu.Unlock()
			loaded.discard(m)
			continue
		}
		m.sessions[id] = loaded
		m.mu.Unlock()
		m.recovered.Add(1)
		m.emit(trace.Event{Session: id, Phase: "recovered", Cut: loaded.cut})
	}
}

// Get returns a session's state; withWhere includes the partition vector.
func (m *Manager) Get(id string, withWhere bool) (*State, error) {
	s, err := m.acquire(id)
	if err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	s.lastUsed = m.now()
	return s.state(withWhere), nil
}

// List returns the states of all resident sessions, sorted by id.
func (m *Manager) List() []*State {
	m.mu.Lock()
	all := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.Unlock()
	states := make([]*State, 0, len(all))
	for _, s := range all {
		s.mu.Lock()
		if !s.closed {
			states = append(states, s.state(false))
		}
		s.mu.Unlock()
	}
	sort.Slice(states, func(i, j int) bool { return states[i].ID < states[j].ID })
	return states
}

// estimateGrowth bounds the resident-byte growth of a batch (only adds
// grow the graph; reweights and removes do not).
func estimateGrowth(ops []Op) int64 {
	var g int64
	for _, op := range ops {
		if op.Op == OpAdd {
			g += 2 * bytesPerDirEntry
		}
	}
	return g
}

// Apply applies one delta batch atomically, then repairs the partition
// at the tier the drift guards choose. A validation error or injected
// fault mid-batch rolls the applied prefix back — the session is
// exactly as if the batch never arrived. A failed repair keeps the
// applied batch (it is durable and consistent) and reports
// RepairFailed; the drift stays pending for the next batch.
func (m *Manager) Apply(id string, ops []Op) (*State, error) {
	if len(ops) == 0 {
		return nil, &OpError{Reason: "empty delta batch"}
	}
	if len(ops) > m.opts.MaxDeltaOps {
		m.shedBatch.Add(1)
		return nil, fmt.Errorf("%w: %d ops > limit %d", ErrBatchTooLarge, len(ops), m.opts.MaxDeltaOps)
	}
	s, err := m.acquire(id)
	if err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	now := m.now()
	s.lastUsed = now

	growth := estimateGrowth(ops)
	if s.bytes+growth > m.opts.MaxSessionBytes {
		m.shedMemory.Add(1)
		return nil, fmt.Errorf("%w: batch would grow session past %d bytes", ErrSessionBytes, m.opts.MaxSessionBytes)
	}
	if m.resident.Load()+growth > m.opts.MaxResidentBytes {
		m.evictIdle(now, growth, s)
		if m.resident.Load()+growth > m.opts.MaxResidentBytes {
			m.shedMemory.Add(1)
			return nil, ErrResidentBytes
		}
	}

	start := time.Now()
	undo := make([]Op, 0, len(ops))
	ferr := faults.Boundary(faults.SiteSessionApply, func() error {
		if ierr := m.opts.Injector.Fire(faults.SiteSessionApply); ierr != nil {
			return ierr
		}
		for i := range ops {
			inv, aerr := s.applyOp(ops[i])
			if aerr != nil {
				return &OpError{Index: i, Reason: aerr.Error()}
			}
			undo = append(undo, inv)
		}
		return nil
	})
	if ferr != nil {
		// Roll the applied prefix back, newest first. Inverse ops are
		// valid by construction, so rollback cannot fail.
		for i := len(undo) - 1; i >= 0; i-- {
			if _, rerr := s.applyOp(undo[i]); rerr != nil {
				panic(fmt.Sprintf("sessions: rollback failed: %v", rerr))
			}
		}
		var oe *OpError
		if errors.As(ferr, &oe) {
			return nil, oe
		}
		m.applyFailures.Add(1)
		return nil, ferr
	}

	s.seq++
	s.deltas++
	m.deltasApplied.Add(1)
	m.opsApplied.Add(int64(len(ops)))

	tier := s.autoTier(m.opts)
	recorded := tier
	if rerr := s.repair(m, tier, false); rerr != nil {
		recorded = TierNone
		s.repairFailed = true
	} else {
		s.repairFailed = false
		s.lastTier = tier
	}
	s.appendWAL(m, walRecord{Ops: ops, Tier: recorded, Cut: s.cut})
	s.maybeSnapshot(m, recorded >= TierFull)
	s.refreshBytes(m)
	m.emit(trace.Event{Session: id, Phase: "delta", Algorithm: recorded.String(), Cut: s.cut, Moves: len(ops), ElapsedNS: time.Since(start).Nanoseconds()})
	return s.state(false), nil
}

// Repair runs an explicit repartition of a session. Mode is "auto" (or
// empty) for the ladder's choice, or "boundary", "full", "vcycle" to
// force a tier.
func (m *Manager) Repair(id, mode string) (*State, error) {
	var tier Tier
	auto := false
	switch mode {
	case "", "auto":
		auto = true
	case "boundary":
		tier = TierBoundary
	case "full":
		tier = TierFull
	case "vcycle":
		tier = TierVCycle
	default:
		return nil, &OpError{Reason: fmt.Sprintf("unknown repair mode %q", mode)}
	}
	s, err := m.acquire(id)
	if err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	s.lastUsed = m.now()
	if auto {
		tier = s.autoTier(m.opts)
	}
	start := time.Now()
	if rerr := s.repair(m, tier, false); rerr != nil {
		s.repairFailed = true
		return nil, rerr
	}
	s.repairFailed = false
	s.lastTier = tier
	s.seq++
	s.appendWAL(m, walRecord{Tier: tier, Cut: s.cut})
	s.maybeSnapshot(m, tier >= TierFull)
	s.refreshBytes(m)
	m.emit(trace.Event{Session: id, Phase: "repair", Algorithm: tier.String(), Cut: s.cut, ElapsedNS: time.Since(start).Nanoseconds()})
	return s.state(true), nil
}

// Delete removes a session from memory and disk.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	if s != nil {
		s.mu.Lock()
		s.closed = true
		s.closeWAL()
		m.resident.Add(-s.bytes)
		s.bytes = 0
		s.mu.Unlock()
	}
	removed := ok
	if m.opts.StateDir != "" {
		dir := filepath.Join(m.opts.StateDir, id)
		if _, err := os.Stat(dir); err == nil {
			os.RemoveAll(dir)
			removed = true
		}
	}
	if !removed {
		return ErrNotFound
	}
	m.deleted.Add(1)
	m.emit(trace.Event{Session: id, Phase: "deleted"})
	return nil
}

// Sweep evicts every idle session (durable mode); cmd/mlserved calls it
// periodically. Returns the number evicted.
func (m *Manager) Sweep() int {
	return m.evictIdle(m.now(), math.MaxInt64, nil)
}

// evictIdle flushes idle sessions to disk and drops them from memory
// until `need` bytes are free (0 = just enforce MaxSessions headroom,
// MaxInt64 = evict all idle). Memory-only managers never evict: there
// is no disk to flush to, so eviction would destroy state.
func (m *Manager) evictIdle(now time.Time, need int64, exclude *session) int {
	if m.opts.StateDir == "" {
		return 0
	}
	m.mu.Lock()
	candidates := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		if s != exclude {
			candidates = append(candidates, s)
		}
	}
	m.mu.Unlock()

	evicted := 0
	var freed int64
	for _, s := range candidates {
		if need != math.MaxInt64 && freed >= need && evicted > 0 {
			break
		}
		if !s.mu.TryLock() {
			continue // busy session: by definition not idle
		}
		if s.closed || now.Sub(s.lastUsed) < m.opts.IdleTTL {
			s.mu.Unlock()
			continue
		}
		if s.dirty {
			if err := s.writeSnapshot(m); err != nil {
				m.walErrors.Add(1)
				s.mu.Unlock()
				continue // keep it resident rather than lose state
			}
		}
		s.closed = true
		s.closeWAL()
		m.mu.Lock()
		delete(m.sessions, s.id)
		m.mu.Unlock()
		m.resident.Add(-s.bytes)
		freed += s.bytes
		s.bytes = 0
		s.mu.Unlock()
		evicted++
		m.evictedIdle.Add(1)
		m.emit(trace.Event{Session: s.id, Phase: "evicted"})
	}
	return evicted
}

// Close flushes every dirty session's snapshot and closes the delta
// logs. Part of daemon drain.
func (m *Manager) Close() error {
	m.mu.Lock()
	all := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.Unlock()
	var first error
	for _, s := range all {
		s.mu.Lock()
		if !s.closed && s.dirty && s.dir != "" {
			if err := s.writeSnapshot(m); err != nil && first == nil {
				first = err
			}
		}
		s.closeWAL()
		s.mu.Unlock()
	}
	return first
}

// Stats snapshots the manager counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	count := len(m.sessions)
	m.mu.Unlock()
	return Stats{
		Sessions:          count,
		ResidentBytes:     m.resident.Load(),
		MaxSessions:       m.opts.MaxSessions,
		MaxResidentBytes:  m.opts.MaxResidentBytes,
		Created:           m.created.Load(),
		Recovered:         m.recovered.Load(),
		RecoveredDegraded: m.recoveredDegraded.Load(),
		RecoverFailures:   m.recoverFailures.Load(),
		EvictedIdle:       m.evictedIdle.Load(),
		Deleted:           m.deleted.Load(),
		DeltasApplied:     m.deltasApplied.Load(),
		OpsApplied:        m.opsApplied.Load(),
		ShedBatch:         m.shedBatch.Load(),
		ShedMemory:        m.shedMemory.Load(),
		ApplyFailures:     m.applyFailures.Load(),
		RepairsBoundary:   m.repairsBoundary.Load(),
		RepairsFull:       m.repairsFull.Load(),
		RepairsVCycle:     m.repairsVCycle.Load(),
		RepairFailures:    m.repairFailures.Load(),
		WALErrors:         m.walErrors.Load(),
		WALTruncations:    m.walTruncations.Load(),
	}
}

// ---- session internals (caller holds s.mu) ----

// applyOp applies one op and returns its inverse for rollback.
func (s *session) applyOp(op Op) (Op, error) {
	n := s.dg.numVertices()
	if op.U < 0 || op.U >= n {
		return Op{}, fmt.Errorf("vertex u=%d out of range [0,%d)", op.U, n)
	}
	switch op.Op {
	case OpAdd:
		if op.V < 0 || op.V >= n {
			return Op{}, fmt.Errorf("vertex v=%d out of range [0,%d)", op.V, n)
		}
		if op.U == op.V {
			return Op{}, fmt.Errorf("self loop on vertex %d", op.U)
		}
		if op.W <= 0 {
			return Op{}, fmt.Errorf("edge weight must be > 0, got %d", op.W)
		}
		old, had := s.dg.edgeWeight(op.U, op.V)
		s.dg.setEdge(op.U, op.V, op.W)
		if s.where[op.U] != s.where[op.V] {
			s.cut += op.W - old
		}
		if had {
			return Op{Op: OpAdd, U: op.U, V: op.V, W: old}, nil
		}
		return Op{Op: OpRemove, U: op.U, V: op.V}, nil
	case OpRemove:
		if op.V < 0 || op.V >= n {
			return Op{}, fmt.Errorf("vertex v=%d out of range [0,%d)", op.V, n)
		}
		old, had := s.dg.edgeWeight(op.U, op.V)
		if !had {
			return Op{}, fmt.Errorf("edge (%d,%d) does not exist", op.U, op.V)
		}
		s.dg.delEdge(op.U, op.V)
		if s.where[op.U] != s.where[op.V] {
			s.cut -= old
		}
		return Op{Op: OpAdd, U: op.U, V: op.V, W: old}, nil
	case OpVwgt:
		if op.W <= 0 {
			return Op{}, fmt.Errorf("vertex weight must be > 0, got %d", op.W)
		}
		old := s.dg.vwgt[op.U]
		s.dg.setVwgt(op.U, op.W)
		s.pwgt[s.where[op.U]] += op.W - old
		return Op{Op: OpVwgt, U: op.U, W: old}, nil
	default:
		return Op{}, fmt.Errorf("unknown op %q", op.Op)
	}
}

// balance returns k*max(pwgt)/total.
func (s *session) balance() float64 {
	tot, maxw := 0, 0
	for _, w := range s.pwgt {
		tot += w
		if w > maxw {
			maxw = w
		}
	}
	if tot == 0 {
		return 1
	}
	return float64(s.k) * float64(maxw) / float64(tot)
}

// autoTier picks the ladder rung from the drift guards.
func (s *session) autoTier(opts Options) Tier {
	base := s.baselineCut
	if base < 1 {
		base = 1
	}
	drift := float64(s.cut) / float64(base)
	switch {
	case drift >= opts.VCycleDriftRatio:
		return TierVCycle
	case drift >= opts.CutDriftRatio || s.balance() > opts.MaxImbalance:
		return TierFull
	default:
		return TierBoundary
	}
}

// repair runs one ladder tier against the current graph. In replay
// mode the fault injector is bypassed: recovery must reproduce the
// logged run, not re-roll its dice.
func (s *session) repair(m *Manager, tier Tier, replay bool) error {
	if tier == TierNone {
		return nil
	}
	var inj *faults.Injector
	if !replay {
		inj = m.opts.Injector
	}
	err := faults.Boundary(faults.SiteSessionRepair, func() error {
		if ierr := inj.Fire(faults.SiteSessionRepair); ierr != nil {
			return ierr
		}
		g := s.dg.snapshot()
		switch tier {
		case TierBoundary:
			wh := append([]int(nil), s.where...)
			p := kway.NewPartition(g, s.k, wh)
			refine.RefineKWay(p, refine.KWayOptions{Ubfactor: s.ubfactor, Seed: s.seed, Workers: 1, Injector: inj})
			s.adopt(p, false)
		case TierFull:
			wh := append([]int(nil), s.where...)
			p := kway.NewPartition(g, s.k, wh)
			kway.Rebalance(p, s.where, kway.RebalanceOptions{Ubfactor: s.ubfactor, Seed: s.seed})
			kway.Refine(p, kway.Options{Ubfactor: s.ubfactor, Seed: s.seed})
			s.adopt(p, true)
		case TierVCycle:
			res, verr := multilevel.PartitionKWay(g, s.k, multilevel.Options{
				Seed:     s.seed,
				Ubfactor: s.ubfactor,
				Injector: inj,
			}.WithRefinement(refine.BKWAY))
			if verr != nil {
				return verr
			}
			p := kway.NewPartition(g, s.k, res.Where)
			s.adopt(p, true)
		default:
			return fmt.Errorf("sessions: unknown repair tier %d", tier)
		}
		return nil
	})
	if err != nil {
		m.repairFailures.Add(1)
		return err
	}
	switch tier {
	case TierBoundary:
		m.repairsBoundary.Add(1)
	case TierFull:
		m.repairsFull.Add(1)
	case TierVCycle:
		m.repairsVCycle.Add(1)
	}
	return nil
}

// adopt commits a repaired partition; tiers that rebuild globally reset
// the drift baseline.
func (s *session) adopt(p *kway.Partition, resetBaseline bool) {
	s.where = p.Where
	s.pwgt = p.Pwgt
	s.cut = p.Cut
	if resetBaseline {
		s.baselineCut = s.cut
	}
	s.dirty = true
}

// state snapshots the session for callers outside the lock.
func (s *session) state(withWhere bool) *State {
	st := &State{
		ID:            s.id,
		Vertices:      s.dg.numVertices(),
		Edges:         s.dg.dir / 2,
		K:             s.k,
		Cut:           s.cut,
		BaselineCut:   s.baselineCut,
		Balance:       s.balance(),
		PartWeights:   append([]int(nil), s.pwgt...),
		Seq:           s.seq,
		Deltas:        s.deltas,
		ResidentBytes: s.bytes,
		LastRepair:    s.lastTier.String(),
		RepairFailed:  s.repairFailed,
		Recovered:     s.recovered,
		Degraded:      s.degraded,
	}
	if withWhere {
		st.Where = append([]int(nil), s.where...)
	}
	return st
}

// refreshBytes re-derives the session's footprint and settles the
// difference into the manager's resident total.
func (s *session) refreshBytes(m *Manager) {
	nb := s.dg.bytes() + int64(len(s.where)+len(s.pwgt))*8
	m.resident.Add(nb - s.bytes)
	s.bytes = nb
}

// ---- durability (caller holds s.mu) ----

func (s *session) openWAL() error {
	f, err := os.OpenFile(filepath.Join(s.dir, deltaLogFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.wal = f
	return nil
}

func (s *session) closeWAL() {
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
}

// appendWAL logs one record. Append failures shed durability, not
// service: the in-memory state stays authoritative, the failure is
// counted, and the next successful snapshot re-establishes a clean
// recovery point.
func (s *session) appendWAL(m *Manager, rec walRecord) {
	s.dirty = true
	if s.wal == nil {
		return
	}
	buf, err := encodeRecord(s.seq, rec)
	if err == nil {
		_, err = s.wal.Write(buf)
	}
	if err != nil {
		m.walErrors.Add(1)
		return
	}
	s.recsSinceSnap++
}

// writeSnapshot persists the full session state atomically.
func (s *session) writeSnapshot(m *Manager) error {
	if s.dir == "" {
		return nil
	}
	meta := snapshotMeta{
		Seq:         s.seq,
		K:           s.k,
		Seed:        s.seed,
		Ubfactor:    s.ubfactor,
		BaselineCut: s.baselineCut,
		CreatedUnix: s.created.Unix(),
	}
	data, err := encodeSnapshot(meta, s.dg.snapshot(), s.where)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(s.dir, snapshotFile), data); err != nil {
		return err
	}
	// The snapshot supersedes the log: truncate it only after the
	// rename published the new snapshot. A crash between the two just
	// replays records the snapshot already covers (skipped by seq).
	if s.wal != nil {
		if err := s.wal.Truncate(0); err != nil {
			m.walErrors.Add(1)
		} else if _, err := s.wal.Seek(0, 0); err != nil {
			m.walErrors.Add(1)
		}
	}
	s.recsSinceSnap = 0
	s.dirty = false
	return nil
}

func (s *session) maybeSnapshot(m *Manager, force bool) {
	if s.dir == "" {
		return
	}
	if force || s.recsSinceSnap >= m.opts.SnapshotEvery {
		if err := s.writeSnapshot(m); err != nil {
			m.walErrors.Add(1)
		}
	}
}

// discard releases a session that lost an insertion race (never
// published, nothing to persist).
func (s *session) discard(m *Manager) {
	s.mu.Lock()
	s.closed = true
	s.closeWAL()
	s.mu.Unlock()
}

// ---- recovery ----

// recoverAll loads every session directory under the state dir. A
// directory that cannot be recovered is skipped (counted), never fatal:
// one corrupt session must not take the daemon down.
func (m *Manager) recoverAll() {
	entries, err := os.ReadDir(m.opts.StateDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		s, lerr := m.loadFromDisk(id)
		if lerr != nil {
			m.recoverFailures.Add(1)
			continue
		}
		m.mu.Lock()
		m.sessions[id] = s
		m.mu.Unlock()
		m.recovered.Add(1)
		m.emit(trace.Event{Session: id, Phase: "recovered", Cut: s.cut})
	}
}

// loadFromDisk rebuilds a session from its snapshot plus delta-log
// tail. Replay re-runs each record's repair at its recorded tier with
// the session seed and verifies the logged cut; any divergence (or a
// torn op) degrades to a fresh V-cycle instead of trusting drifted
// state. The returned session is not yet registered.
func (m *Manager) loadFromDisk(id string) (*session, error) {
	dir := filepath.Join(m.opts.StateDir, id)
	snapData, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, err
	}
	meta, g, where, err := decodeSnapshot(snapData)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("sessions: snapshot graph invalid: %w", err)
	}
	if meta.K < 2 || len(where) != g.NumVertices() {
		return nil, errors.New("sessions: snapshot meta inconsistent")
	}
	now := m.now()
	s := &session{
		id:          id,
		dir:         dir,
		k:           meta.K,
		seed:        meta.Seed,
		ubfactor:    meta.Ubfactor,
		dg:          newDynGraph(g),
		created:     time.Unix(meta.CreatedUnix, 0),
		lastUsed:    now,
		baselineCut: meta.BaselineCut,
		seq:         meta.Seq,
		lastTier:    TierNone,
		recovered:   true,
	}
	wcopy := append([]int(nil), where...)
	p := kway.NewPartition(g, meta.K, wcopy)
	s.where = wcopy
	s.pwgt = p.Pwgt
	s.cut = p.Cut

	logPath := filepath.Join(dir, deltaLogFile)
	logData, err := os.ReadFile(logPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	recs, good := decodeRecords(logData)
	if good < len(logData) {
		m.walTruncations.Add(1)
		if terr := os.Truncate(logPath, int64(good)); terr != nil {
			m.walErrors.Add(1)
		}
	}
	replayed := 0
	degraded := false
	for _, r := range recs {
		if r.Seq <= meta.Seq {
			continue
		}
		for _, op := range r.Rec.Ops {
			if _, aerr := s.applyOp(op); aerr != nil {
				// The graph diverged from the log; keep applying what
				// fits so the structure is as complete as possible,
				// then repartition from scratch below.
				degraded = true
			}
		}
		s.seq = r.Seq
		replayed++
		if degraded {
			continue
		}
		if r.Rec.Tier != TierNone {
			if rerr := s.repair(m, r.Rec.Tier, true); rerr != nil {
				degraded = true
				continue
			}
		}
		if s.cut != r.Rec.Cut {
			degraded = true
		}
	}
	if degraded {
		if rerr := s.repair(m, TierVCycle, true); rerr != nil {
			return nil, fmt.Errorf("sessions: degraded recovery repartition: %w", rerr)
		}
		s.degraded = true
		m.recoveredDegraded.Add(1)
	}
	if replayed > 0 || good < len(logData) || degraded {
		// Compact what we just proved out into a fresh recovery point.
		if serr := s.writeSnapshot(m); serr != nil {
			m.walErrors.Add(1)
		}
	}
	if err := s.openWAL(); err != nil {
		return nil, err
	}
	s.refreshBytes(m)
	return s, nil
}
