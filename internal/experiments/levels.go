package experiments

import (
	"fmt"
	"io"
	"sort"

	"mlpart/internal/graph"
	"mlpart/internal/multilevel"
	"mlpart/internal/trace"
)

// LevelRow is one hierarchy level of a direct multilevel k-way V-cycle,
// assembled from the partitioner's trace events: the level's size, how
// well matching contracted it, and what refinement did there. It is the
// per-level view behind the aggregate phase times of Table 2.
type LevelRow struct {
	Level     int
	Vertices  int
	Edges     int
	MatchRate float64 // fraction of finer vertices matched to produce this level
	Cut       int     // cut after the last refinement pass at this level
	Passes    int     // refinement passes run at this level
	Moves     int     // vertices moved across all passes
	PosGain   int     // moves with strictly positive gain
	ProjectNS int64   // wall time projecting onto this level
	RefineNS  int64   // wall time refining at this level
}

// Levels partitions g into k parts with the direct multilevel k-way scheme
// (one hierarchy, so every level appears exactly once) and returns one row
// per level, coarsest first, plus the final result. The partition is
// identical to running multilevel.PartitionKWay without observation.
func Levels(g *graph.Graph, k int, opts multilevel.Options) ([]LevelRow, *multilevel.Result, error) {
	var col trace.Collector
	opts.Tracer = &col
	res, err := multilevel.PartitionKWay(g, k, opts)
	if err != nil {
		return nil, nil, err
	}
	byLevel := map[int]*LevelRow{}
	row := func(level int) *LevelRow {
		if byLevel[level] == nil {
			byLevel[level] = &LevelRow{Level: level}
		}
		return byLevel[level]
	}
	for _, ev := range col.Events() {
		switch ev.Kind {
		case trace.KindLevel:
			r := row(ev.Level)
			r.Vertices = ev.Vertices
			r.Edges = ev.Edges
			r.MatchRate = ev.MatchRate
		case trace.KindInitial:
			row(ev.Level).Cut = ev.Cut
		case trace.KindPass:
			r := row(ev.Level)
			r.Passes++
			r.Moves += ev.Moves
			r.PosGain += ev.PositiveGainMoves
			r.Cut = ev.Cut
			r.RefineNS += ev.ElapsedNS
		case trace.KindProject:
			r := row(ev.Level)
			r.Cut = ev.Cut
			r.ProjectNS += ev.ElapsedNS
		}
	}
	rows := make([]LevelRow, 0, len(byLevel))
	for _, r := range byLevel {
		rows = append(rows, *r)
	}
	// Coarsest level first: the order the V-cycle's uncoarsening visits them.
	sort.Slice(rows, func(i, j int) bool { return rows[i].Level > rows[j].Level })
	return rows, res, nil
}

// PrintLevels renders the per-level table.
func PrintLevels(w io.Writer, rows []LevelRow) {
	fmt.Fprintf(w, "%5s %9s %9s %6s | %8s %6s %8s %8s | %9s %9s\n",
		"Level", "Vertices", "Edges", "Match", "Cut", "Passes", "Moves", "PosGain", "ProjMS", "RefMS")
	for _, r := range rows {
		fmt.Fprintf(w, "%5d %9d %9d %5.0f%% | %8d %6d %8d %8d | %9.3f %9.3f\n",
			r.Level, r.Vertices, r.Edges, 100*r.MatchRate,
			r.Cut, r.Passes, r.Moves, r.PosGain,
			float64(r.ProjectNS)/1e6, float64(r.RefineNS)/1e6)
	}
}
