package experiments

import (
	"fmt"
	"io"
	"time"

	"mlpart/internal/coarsen"
	"mlpart/internal/matgen"
	"mlpart/internal/multilevel"
	"mlpart/internal/refine"
)

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Study  string // which knob is being varied
	Config string // the knob's value
	Graph  string
	EC     int
	Time   time.Duration
}

// Ablations sweeps the design choices DESIGN.md calls out, on the given
// workloads at k parts: matching scheme (HEM vs RM), boundary refinement
// (KLR vs BKLR), GGGP trial count, coarsest-graph size, the stop window x,
// direct k-way vs recursive bisection, and k-way post-refinement.
func Ablations(workloads []matgen.Named, k int, seed int64) []AblationRow {
	var rows []AblationRow
	run := func(study, config string, w matgen.Named, f func() int) {
		t0 := time.Now()
		ec := f()
		rows = append(rows, AblationRow{
			Study: study, Config: config, Graph: w.Name,
			EC: ec, Time: time.Since(t0),
		})
	}
	for _, w := range workloads {
		g := w.Graph
		part := func(o multilevel.Options) int {
			res, err := multilevel.Partition(g, k, o)
			if err != nil {
				panic(err)
			}
			return res.EdgeCut
		}
		for _, s := range []coarsen.Scheme{coarsen.RM, coarsen.HEM} {
			s := s
			run("matching", s.String(), w, func() int {
				return part(multilevel.Options{Seed: seed}.WithMatching(s))
			})
		}
		for _, p := range []refine.Policy{refine.KLR, refine.BKLR} {
			p := p
			run("boundary", p.String(), w, func() int {
				return part(multilevel.Options{Seed: seed}.WithRefinement(p))
			})
		}
		for _, trials := range []int{1, 5, 10} {
			trials := trials
			run("gggp-trials", fmt.Sprintf("%d", trials), w, func() int {
				return part(multilevel.Options{Seed: seed, InitTrials: trials})
			})
		}
		for _, ct := range []int{50, 100, 200} {
			ct := ct
			run("coarsen-to", fmt.Sprintf("%d", ct), w, func() int {
				return part(multilevel.Options{Seed: seed, CoarsenTo: ct})
			})
		}
		for _, x := range []int{10, 50, 200} {
			x := x
			run("stop-window", fmt.Sprintf("%d", x), w, func() int {
				return part(multilevel.Options{Seed: seed, StopWindow: x})
			})
		}
		run("kway-scheme", "recursive", w, func() int {
			return part(multilevel.Options{Seed: seed})
		})
		run("kway-scheme", "direct", w, func() int {
			res, err := multilevel.PartitionKWay(g, k, multilevel.Options{Seed: seed})
			if err != nil {
				panic(err)
			}
			return res.EdgeCut
		})
		run("kway-refine", "off", w, func() int {
			return part(multilevel.Options{Seed: seed})
		})
		run("kway-refine", "on", w, func() int {
			return part(multilevel.Options{Seed: seed, KWayRefine: true})
		})
	}
	return rows
}

// PrintAblations writes the ablation sweeps grouped by study.
func PrintAblations(w io.Writer, rows []AblationRow) {
	var studies []string
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Study] {
			seen[r.Study] = true
			studies = append(studies, r.Study)
		}
	}
	for _, study := range studies {
		fmt.Fprintf(w, "\n--- ablation: %s ---\n", study)
		fmt.Fprintf(w, "%-8s %-12s %10s %10s\n", "Graph", "Config", "EC", "Time")
		for _, r := range rows {
			if r.Study != study {
				continue
			}
			fmt.Fprintf(w, "%-8s %-12s %10d %10s\n", r.Graph, r.Config, r.EC, secs(r.Time))
		}
	}
}
