// Package experiments reproduces the evaluation of the paper: one driver
// per table and figure of §4, each running the same sweep the paper reports
// and returning typed rows. The drivers are shared by cmd/mlbench (which
// prints the paper-style tables) and by the repository's benchmark suite.
package experiments

import (
	"math/rand"
	"time"

	"mlpart/internal/chaco"
	"mlpart/internal/coarsen"
	"mlpart/internal/graph"
	"mlpart/internal/matgen"
	"mlpart/internal/multilevel"
	"mlpart/internal/refine"
	"mlpart/internal/spectral"
)

// Table2Names is the 12-matrix subset used in Tables 2, 3 and 4.
func Table2Names() []string {
	return []string{
		"BC31", "BC32", "BRCK", "CANT", "COPT", "CY93",
		"4ELT", "INPR", "ROTR", "SHEL", "TROL", "WAVE",
	}
}

// FigureNames is the 16-matrix subset used in Figures 1-4.
func FigureNames() []string {
	return []string{
		"BC30", "BC32", "BRCK", "CANT", "COPT", "CY93", "FINC", "LHR",
		"MAP", "MEM", "ROTR", "S38", "SHEL", "SHYY", "TROL", "WAVE",
	}
}

// OrderingNames is the 18-matrix subset of Figure 5, in the paper's order
// (increasing number of equations).
func OrderingNames() []string {
	return []string{
		"LS34", "BC28", "BSP10", "BC33", "BC29", "4ELT", "BC30", "BC31",
		"BC32", "CY93", "INPR", "CANT", "COPT", "BRCK", "ROTR", "WAVE",
		"SHEL", "TROL",
	}
}

// TableSchemes returns the coarsening schemes swept by Tables 2 and 3, in
// registry order. The sweep is derived from coarsen.AllSchemes() so a newly
// registered scheme (e.g. the GCLP aggregation scheme) shows up in mlbench
// without touching this package.
func TableSchemes() []coarsen.Scheme {
	var schemes []coarsen.Scheme
	for _, info := range coarsen.AllSchemes() {
		s, err := coarsen.ParseScheme(info.Name)
		if err != nil {
			panic(err)
		}
		schemes = append(schemes, s)
	}
	return schemes
}

// MatchingRow is one (graph, scheme) cell group of Table 2: the edge-cut of
// a 32-way partition plus the coarsening and uncoarsening times.
type MatchingRow struct {
	Graph  string
	Scheme coarsen.Scheme
	EC32   int
	CTime  time.Duration
	UTime  time.Duration
}

// Table2 reproduces Table 2: each matching scheme partitions each workload
// into k=32 parts with GGGP initial partitioning and BKLGR refinement.
func Table2(workloads []matgen.Named, k int, seed int64) []MatchingRow {
	var rows []MatchingRow
	for _, w := range workloads {
		for _, s := range TableSchemes() {
			opts := multilevel.Options{Seed: seed}.WithMatching(s)
			res, err := multilevel.Partition(w.Graph, k, opts)
			if err != nil {
				panic(err)
			}
			rows = append(rows, MatchingRow{
				Graph:  w.Name,
				Scheme: s,
				EC32:   res.EdgeCut,
				CTime:  res.Stats.CoarsenTime,
				UTime:  res.Stats.UncoarsenTime(),
			})
		}
	}
	return rows
}

// Table3 reproduces Table 3: the k-way edge-cut when no refinement is
// performed, isolating the quality of the coarsening itself.
func Table3(workloads []matgen.Named, k int, seed int64) []MatchingRow {
	var rows []MatchingRow
	for _, w := range workloads {
		for _, s := range TableSchemes() {
			opts := multilevel.Options{Seed: seed}.
				WithMatching(s).
				WithRefinement(refine.NoRefine)
			res, err := multilevel.Partition(w.Graph, k, opts)
			if err != nil {
				panic(err)
			}
			rows = append(rows, MatchingRow{Graph: w.Name, Scheme: s, EC32: res.EdgeCut})
		}
	}
	return rows
}

// RefineRow is one (graph, policy) cell group of Table 4.
type RefineRow struct {
	Graph  string
	Policy refine.Policy
	EC32   int
	RTime  time.Duration
}

// Table4 reproduces Table 4: each refinement policy partitions each
// workload into k parts with HEM coarsening and GGGP initial partitioning.
func Table4(workloads []matgen.Named, k int, seed int64) []RefineRow {
	var rows []RefineRow
	for _, w := range workloads {
		for _, p := range []refine.Policy{refine.GR, refine.KLR, refine.BGR, refine.BKLR, refine.BKLGR} {
			opts := multilevel.Options{Seed: seed}.WithRefinement(p)
			res, err := multilevel.Partition(w.Graph, k, opts)
			if err != nil {
				panic(err)
			}
			rows = append(rows, RefineRow{
				Graph:  w.Name,
				Policy: p,
				EC32:   res.EdgeCut,
				RTime:  res.Stats.RefineTime,
			})
		}
	}
	return rows
}

// Baseline identifies a comparison partitioner for Figures 1-4.
type Baseline int

const (
	// MSB is multilevel spectral bisection (Figure 1).
	MSB Baseline = iota
	// MSBKL is MSB followed by Kernighan-Lin refinement (Figure 2).
	MSBKL
	// ChacoML is the Chaco multilevel algorithm (Figure 3).
	ChacoML
)

// String returns the baseline's name as used in the paper.
func (b Baseline) String() string {
	switch b {
	case MSB:
		return "MSB"
	case MSBKL:
		return "MSB-KL"
	case ChacoML:
		return "Chaco-ML"
	}
	return "?"
}

// CutRatioRow is one bar of Figures 1-3: the ratio of our multilevel
// algorithm's k-way edge-cut to the baseline's on the same workload.
type CutRatioRow struct {
	Graph    string
	K        int
	OurCut   int
	BaseCut  int
	Ratio    float64 // OurCut / BaseCut; < 1 means we win
	Baseline Baseline
}

// baselinePartition runs the requested baseline to a k-way partition.
func baselinePartition(g *graph.Graph, k int, b Baseline, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	switch b {
	case MSB:
		return spectral.MSBPartition(g, k, spectral.MSBOptions{}, rng)
	case MSBKL:
		return spectral.MSBPartition(g, k, spectral.MSBOptions{KL: true}, rng)
	case ChacoML:
		return chaco.Partition(g, k, chaco.Options{}, seed)
	}
	panic("experiments: unknown baseline")
}

// CutRatios reproduces Figures 1-3: for every workload and every k in ks,
// the ratio of our edge-cut to the baseline's edge-cut.
func CutRatios(workloads []matgen.Named, ks []int, b Baseline, seed int64) []CutRatioRow {
	var rows []CutRatioRow
	for _, w := range workloads {
		for _, k := range ks {
			res, err := multilevel.Partition(w.Graph, k, multilevel.Options{Seed: seed})
			if err != nil {
				panic(err)
			}
			base := baselinePartition(w.Graph, k, b, seed)
			baseCut := refine.ComputeCut(w.Graph, base)
			ratio := 1.0
			if baseCut > 0 {
				ratio = float64(res.EdgeCut) / float64(baseCut)
			}
			rows = append(rows, CutRatioRow{
				Graph: w.Name, K: k,
				OurCut: res.EdgeCut, BaseCut: baseCut,
				Ratio: ratio, Baseline: b,
			})
		}
	}
	return rows
}

// RuntimeRow is one group of Figure 4: baseline run times relative to ours
// for a k-way partition.
type RuntimeRow struct {
	Graph     string
	K         int
	Our       time.Duration
	MSB       time.Duration
	MSBKL     time.Duration
	ChacoML   time.Duration
	RelMSB    float64
	RelMSBKL  float64
	RelChaco  float64
	OurCut    int
	MSBCut    int
	ChacoMCut int
}

// Runtimes reproduces Figure 4: wall-clock time of each baseline relative
// to our multilevel algorithm for a k-way partition of every workload.
func Runtimes(workloads []matgen.Named, k int, seed int64) []RuntimeRow {
	return RuntimesOpts(workloads, k, multilevel.Options{Seed: seed})
}

// RuntimesOpts is Runtimes with full control over the multilevel options of
// "our" algorithm (NCuts, Parallel, CoarsenWorkers, ...); the baselines
// always run their standard sequential configuration, so speedup knobs show
// up directly in the relative columns.
func RuntimesOpts(workloads []matgen.Named, k int, opts multilevel.Options) []RuntimeRow {
	seed := opts.Seed
	var rows []RuntimeRow
	for _, w := range workloads {
		row := RuntimeRow{Graph: w.Name, K: k}

		t0 := time.Now()
		res, err := multilevel.Partition(w.Graph, k, opts)
		if err != nil {
			panic(err)
		}
		row.Our = time.Since(t0)
		row.OurCut = res.EdgeCut

		t0 = time.Now()
		msb := baselinePartition(w.Graph, k, MSB, seed)
		row.MSB = time.Since(t0)
		row.MSBCut = refine.ComputeCut(w.Graph, msb)

		t0 = time.Now()
		baselinePartition(w.Graph, k, MSBKL, seed)
		row.MSBKL = time.Since(t0)

		t0 = time.Now()
		cm := baselinePartition(w.Graph, k, ChacoML, seed)
		row.ChacoML = time.Since(t0)
		row.ChacoMCut = refine.ComputeCut(w.Graph, cm)

		our := row.Our.Seconds()
		if our > 0 {
			row.RelMSB = row.MSB.Seconds() / our
			row.RelMSBKL = row.MSBKL.Seconds() / our
			row.RelChaco = row.ChacoML.Seconds() / our
		}
		rows = append(rows, row)
	}
	return rows
}
