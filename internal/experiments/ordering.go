package experiments

import (
	"time"

	"mlpart/internal/matgen"
	"mlpart/internal/mmd"
	"mlpart/internal/ordering"
	"mlpart/internal/sparse"
)

// OrderingRow is one group of Figure 5: the factorization operation counts
// of the three orderings on one matrix, with ratios relative to MLND
// (bars above 1.0 mean MLND wins, as in the paper's plot).
type OrderingRow struct {
	Graph      string
	N          int
	MLNDFlops  float64
	MMDFlops   float64
	SNDFlops   float64
	RatioMMD   float64 // MMD / MLND
	RatioSND   float64 // SND / MLND
	MLNDHeight int     // elimination tree heights (concurrency proxy)
	MMDHeight  int
	// Ordering times; the paper reports MMD 2-3x faster than MLND serially
	// and SND substantially slower than MLND.
	MLNDTime time.Duration
	MMDTime  time.Duration
	SNDTime  time.Duration
}

// Ordering reproduces Figure 5: MLND, MMD and SND order every workload and
// the symbolic Cholesky operation counts are compared.
func Ordering(workloads []matgen.Named, seed int64) []OrderingRow {
	var rows []OrderingRow
	for _, w := range workloads {
		g := w.Graph
		row := OrderingRow{Graph: w.Name, N: g.NumVertices()}

		t0 := time.Now()
		mlndPerm := ordering.MLND(g, ordering.Options{Seed: seed})
		row.MLNDTime = time.Since(t0)
		mlnd, err := sparse.Analyze(g, mlndPerm)
		if err != nil {
			panic(err)
		}
		row.MLNDFlops = mlnd.Flops
		row.MLNDHeight = mlnd.Height

		t0 = time.Now()
		mdPerm := mmd.Order(g)
		row.MMDTime = time.Since(t0)
		md, err := sparse.Analyze(g, mdPerm)
		if err != nil {
			panic(err)
		}
		row.MMDFlops = md.Flops
		row.MMDHeight = md.Height

		t0 = time.Now()
		sndPerm := ordering.SND(g, ordering.Options{Seed: seed})
		row.SNDTime = time.Since(t0)
		snd, err := sparse.Analyze(g, sndPerm)
		if err != nil {
			panic(err)
		}
		row.SNDFlops = snd.Flops

		if row.MLNDFlops > 0 {
			row.RatioMMD = row.MMDFlops / row.MLNDFlops
			row.RatioSND = row.SNDFlops / row.MLNDFlops
		}
		rows = append(rows, row)
	}
	return rows
}
