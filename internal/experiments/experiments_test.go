package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mlpart/internal/coarsen"
	"mlpart/internal/matgen"
	"mlpart/internal/refine"
)

// tinySuite returns a 2-graph workload set small enough for unit tests.
func tinySuite() []matgen.Named {
	return matgen.Suite([]string{"4ELT", "BRCK"}, 0.03)
}

func TestTable2Shape(t *testing.T) {
	rows := Table2(tinySuite(), 8, 1)
	if want := 2 * len(TableSchemes()); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.EC32 <= 0 {
			t.Errorf("%s/%v: nonpositive cut %d", r.Graph, r.Scheme, r.EC32)
		}
		if r.CTime <= 0 {
			t.Errorf("%s/%v: no coarsening time recorded", r.Graph, r.Scheme)
		}
	}
}

func TestTable3NoRefinementWorseThanTable2(t *testing.T) {
	ws := tinySuite()
	refined := Table2(ws, 8, 2)
	raw := Table3(ws, 8, 2)
	// Per (graph, scheme), the unrefined cut must be >= the refined cut.
	key := func(r MatchingRow) string { return r.Graph + "/" + r.Scheme.String() }
	ref := map[string]int{}
	for _, r := range refined {
		ref[key(r)] = r.EC32
	}
	for _, r := range raw {
		if r.EC32 < ref[key(r)] {
			t.Errorf("%s: unrefined cut %d < refined %d", key(r), r.EC32, ref[key(r)])
		}
	}
}

func TestTable3LEMWorstUnrefined(t *testing.T) {
	// The paper's Table 3 shows LEM's unrefined cuts far above HEM's.
	// Check in aggregate over the tiny suite.
	rows := Table3(tinySuite(), 8, 3)
	sum := map[coarsen.Scheme]int{}
	for _, r := range rows {
		sum[r.Scheme] += r.EC32
	}
	if sum[coarsen.LEM] <= sum[coarsen.HEM] {
		t.Errorf("LEM unrefined total %d not worse than HEM %d", sum[coarsen.LEM], sum[coarsen.HEM])
	}
}

func TestTable4Shape(t *testing.T) {
	rows := Table4(tinySuite(), 8, 4)
	if len(rows) != 2*5 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	byPolicy := map[refine.Policy][]RefineRow{}
	for _, r := range rows {
		if r.EC32 <= 0 {
			t.Errorf("%s/%v: nonpositive cut", r.Graph, r.Policy)
		}
		byPolicy[r.Policy] = append(byPolicy[r.Policy], r)
	}
	// Every policy produced a row per graph.
	for p, rs := range byPolicy {
		if len(rs) != 2 {
			t.Errorf("%v: %d rows", p, len(rs))
		}
	}
}

func TestCutRatiosAgainstAllBaselines(t *testing.T) {
	ws := matgen.Suite([]string{"4ELT"}, 0.03)
	for _, b := range []Baseline{MSB, MSBKL, ChacoML} {
		rows := CutRatios(ws, []int{4, 8}, b, 5)
		if len(rows) != 2 {
			t.Fatalf("%v: got %d rows", b, len(rows))
		}
		for _, r := range rows {
			if r.Ratio <= 0 || r.OurCut <= 0 || r.BaseCut <= 0 {
				t.Errorf("%v/%s/k=%d: degenerate row %+v", b, r.Graph, r.K, r)
			}
			// The shapes the paper reports: our cuts competitive (allow
			// generous 1.5x headroom at tiny scale).
			if r.Ratio > 1.5 {
				t.Errorf("%v/%s/k=%d: ratio %.2f far above baseline", b, r.Graph, r.K, r.Ratio)
			}
		}
	}
}

func TestRuntimesRecorded(t *testing.T) {
	ws := matgen.Suite([]string{"4ELT"}, 0.03)
	rows := Runtimes(ws, 8, 6)
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.Our <= 0 || r.MSB <= 0 || r.MSBKL <= 0 || r.ChacoML <= 0 {
		t.Fatalf("missing timings: %+v", r)
	}
	if r.RelMSB <= 0 || r.RelMSBKL <= 0 || r.RelChaco <= 0 {
		t.Fatalf("missing ratios: %+v", r)
	}
}

func TestOrderingRows(t *testing.T) {
	ws := matgen.Suite([]string{"LS34", "BC28"}, 0.03)
	rows := Ordering(ws, 7)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.MLNDFlops <= 0 || r.MMDFlops <= 0 || r.SNDFlops <= 0 {
			t.Errorf("%s: nonpositive flops %+v", r.Graph, r)
		}
		if r.RatioMMD <= 0 || r.RatioSND <= 0 {
			t.Errorf("%s: missing ratios", r.Graph)
		}
	}
}

func TestSubsetNamesAreGeneratable(t *testing.T) {
	all := map[string]bool{}
	for _, n := range matgen.AllNames() {
		all[n] = true
	}
	for _, set := range [][]string{Table2Names(), FigureNames(), OrderingNames()} {
		for _, n := range set {
			if !all[n] {
				t.Errorf("subset name %q not generatable", n)
			}
		}
	}
}

func TestPrinters(t *testing.T) {
	ws := tinySuite()
	var buf bytes.Buffer

	PrintTable1(&buf, ws)
	if !strings.Contains(buf.String(), "4ELT") {
		t.Error("Table 1 output missing workload name")
	}

	buf.Reset()
	PrintTable2(&buf, Table2(ws, 4, 8))
	out := buf.String()
	for _, want := range []string{"HEM", "LEM", "32EC", "CTime", "UTime", "BRCK"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q", want)
		}
	}

	buf.Reset()
	PrintTable3(&buf, Table3(ws, 4, 8))
	if !strings.Contains(buf.String(), "HCM") {
		t.Error("Table 3 output missing scheme header")
	}

	buf.Reset()
	PrintTable4(&buf, Table4(ws, 4, 8))
	for _, want := range []string{"BKLGR", "RTime"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 4 output missing %q", want)
		}
	}

	buf.Reset()
	PrintCutRatios(&buf, CutRatios(ws[:1], []int{4}, ChacoML, 8))
	if !strings.Contains(buf.String(), "Chaco-ML") {
		t.Error("cut-ratio output missing baseline name")
	}

	buf.Reset()
	PrintRuntimes(&buf, Runtimes(ws[:1], 4, 8))
	if !strings.Contains(buf.String(), "MSB-KL") {
		t.Error("runtime output missing column")
	}

	buf.Reset()
	PrintOrdering(&buf, Ordering(ws[:1], 8))
	if !strings.Contains(buf.String(), "TOTAL") {
		t.Error("ordering output missing total row")
	}
}

func TestAblations(t *testing.T) {
	ws := matgen.Suite([]string{"4ELT"}, 0.03)
	rows := Ablations(ws, 8, 1)
	studies := map[string]int{}
	for _, r := range rows {
		if r.EC <= 0 {
			t.Errorf("%s/%s: nonpositive cut", r.Study, r.Config)
		}
		studies[r.Study]++
	}
	for _, want := range []string{"matching", "boundary", "gggp-trials", "coarsen-to", "stop-window", "kway-scheme", "kway-refine"} {
		if studies[want] == 0 {
			t.Errorf("study %q missing", want)
		}
	}
	var buf bytes.Buffer
	PrintAblations(&buf, rows)
	if !strings.Contains(buf.String(), "ablation: matching") {
		t.Error("ablation print missing header")
	}
}
