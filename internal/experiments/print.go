package experiments

import (
	"fmt"
	"io"
	"time"

	"mlpart/internal/coarsen"
	"mlpart/internal/matgen"
	"mlpart/internal/refine"
)

func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// PrintTable1 writes the workload characteristics in the layout of the
// paper's Table 1 (name, order, nonzeros, description).
func PrintTable1(w io.Writer, workloads []matgen.Named) {
	fmt.Fprintf(w, "%-8s %9s %10s  %s\n", "Name", "Order", "Nonzeros", "Description")
	for _, wk := range workloads {
		fmt.Fprintf(w, "%-8s %9d %10d  %s\n",
			wk.Name, wk.Graph.NumVertices(), 2*wk.Graph.NumEdges(), wk.Class)
	}
}

// PrintTable2 writes the matching-scheme comparison in the layout of the
// paper's Table 2: one row per graph, one (32EC, CTime, UTime) column group
// per scheme.
func PrintTable2(w io.Writer, rows []MatchingRow) {
	schemes := schemesOf(rows)
	fmt.Fprintf(w, "%-8s", "")
	for _, s := range schemes {
		fmt.Fprintf(w, " | %-26s", s)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s", "Graph")
	for range schemes {
		fmt.Fprintf(w, " | %8s %8s %8s", "32EC", "CTime", "UTime")
	}
	fmt.Fprintln(w)
	byGraph := groupMatching(rows)
	for _, g := range orderOf(rows) {
		fmt.Fprintf(w, "%-8s", g)
		for _, s := range schemes {
			r := byGraph[g][s]
			fmt.Fprintf(w, " | %8d %8s %8s", r.EC32, secs(r.CTime), secs(r.UTime))
		}
		fmt.Fprintln(w)
	}
}

// PrintTable3 writes the no-refinement edge-cuts in the layout of the
// paper's Table 3.
func PrintTable3(w io.Writer, rows []MatchingRow) {
	schemes := schemesOf(rows)
	fmt.Fprintf(w, "%-8s", "Graph")
	for _, s := range schemes {
		fmt.Fprintf(w, " %10s", s)
	}
	fmt.Fprintln(w)
	byGraph := groupMatching(rows)
	for _, g := range orderOf(rows) {
		fmt.Fprintf(w, "%-8s", g)
		for _, s := range schemes {
			fmt.Fprintf(w, " %10d", byGraph[g][s].EC32)
		}
		fmt.Fprintln(w)
	}
}

// PrintTable4 writes the refinement-policy comparison in the layout of the
// paper's Table 4: one (32EC, RTime) column group per policy.
func PrintTable4(w io.Writer, rows []RefineRow) {
	policies := []refine.Policy{refine.GR, refine.KLR, refine.BGR, refine.BKLR, refine.BKLGR}
	fmt.Fprintf(w, "%-8s", "")
	for _, p := range policies {
		fmt.Fprintf(w, " | %-17s", p)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s", "Graph")
	for range policies {
		fmt.Fprintf(w, " | %8s %8s", "32EC", "RTime")
	}
	fmt.Fprintln(w)
	byGraph := map[string]map[refine.Policy]RefineRow{}
	var order []string
	for _, r := range rows {
		if byGraph[r.Graph] == nil {
			byGraph[r.Graph] = map[refine.Policy]RefineRow{}
			order = append(order, r.Graph)
		}
		byGraph[r.Graph][r.Policy] = r
	}
	for _, g := range order {
		fmt.Fprintf(w, "%-8s", g)
		for _, p := range policies {
			r := byGraph[g][p]
			fmt.Fprintf(w, " | %8d %8s", r.EC32, secs(r.RTime))
		}
		fmt.Fprintln(w)
	}
}

// PrintCutRatios writes the data series of Figures 1-3: the ratio of our
// edge-cut to the baseline's, per graph and k (< 1.00 means our multilevel
// algorithm wins, matching bars under the paper's baseline of 1.0).
func PrintCutRatios(w io.Writer, rows []CutRatioRow) {
	if len(rows) == 0 {
		return
	}
	ks := []int{}
	seen := map[int]bool{}
	for _, r := range rows {
		if !seen[r.K] {
			seen[r.K] = true
			ks = append(ks, r.K)
		}
	}
	fmt.Fprintf(w, "Ratio of our edge-cut to %s (baseline 1.00; lower is better)\n", rows[0].Baseline)
	fmt.Fprintf(w, "%-8s", "Graph")
	for _, k := range ks {
		fmt.Fprintf(w, " %14s", fmt.Sprintf("%d parts", k))
	}
	fmt.Fprintln(w)
	byGraph := map[string]map[int]CutRatioRow{}
	var order []string
	for _, r := range rows {
		if byGraph[r.Graph] == nil {
			byGraph[r.Graph] = map[int]CutRatioRow{}
			order = append(order, r.Graph)
		}
		byGraph[r.Graph][r.K] = r
	}
	for _, g := range order {
		fmt.Fprintf(w, "%-8s", g)
		for _, k := range ks {
			fmt.Fprintf(w, " %14.2f", byGraph[g][k].Ratio)
		}
		fmt.Fprintln(w)
	}
}

// PrintRuntimes writes the data series of Figure 4: baseline run times
// relative to ours (higher means the baseline is slower).
func PrintRuntimes(w io.Writer, rows []RuntimeRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "Run time relative to our multilevel algorithm, %d-way partition\n", rows[0].K)
	fmt.Fprintf(w, "%-8s %10s %10s %10s %10s\n", "Graph", "Ours(s)", "Chaco-ML", "MSB", "MSB-KL")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %10.3f %10.2f %10.2f %10.2f\n",
			r.Graph, r.Our.Seconds(), r.RelChaco, r.RelMSB, r.RelMSBKL)
	}
}

// PrintOrdering writes the data series of Figure 5: MMD and SND operation
// counts relative to MLND (> 1.00 means MLND produces the better ordering).
func PrintOrdering(w io.Writer, rows []OrderingRow) {
	fmt.Fprintf(w, "Operation count relative to MLND (baseline 1.00; higher favors MLND)\n")
	fmt.Fprintf(w, "%-8s %9s %14s %9s %9s %8s %8s %8s %8s %8s\n",
		"Graph", "N", "MLND ops", "MMD", "SND", "hML", "hMMD", "tML", "tMMD", "tSND")
	var totML, totMMD, totSND float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %9d %14.4g %9.2f %9.2f %8d %8d %8s %8s %8s\n",
			r.Graph, r.N, r.MLNDFlops, r.RatioMMD, r.RatioSND, r.MLNDHeight, r.MMDHeight,
			secs(r.MLNDTime), secs(r.MMDTime), secs(r.SNDTime))
		totML += r.MLNDFlops
		totMMD += r.MMDFlops
		totSND += r.SNDFlops
	}
	fmt.Fprintf(w, "%-8s %9s %14.4g %9.2f %9.2f\n",
		"TOTAL", "", totML, totMMD/totML, totSND/totML)
}

// schemesOf lists the distinct schemes present in rows, in first-seen order,
// so the table columns follow whatever sweep actually ran.
func schemesOf(rows []MatchingRow) []coarsen.Scheme {
	var schemes []coarsen.Scheme
	seen := map[coarsen.Scheme]bool{}
	for _, r := range rows {
		if !seen[r.Scheme] {
			seen[r.Scheme] = true
			schemes = append(schemes, r.Scheme)
		}
	}
	return schemes
}

func groupMatching(rows []MatchingRow) map[string]map[coarsen.Scheme]MatchingRow {
	byGraph := map[string]map[coarsen.Scheme]MatchingRow{}
	for _, r := range rows {
		if byGraph[r.Graph] == nil {
			byGraph[r.Graph] = map[coarsen.Scheme]MatchingRow{}
		}
		byGraph[r.Graph][r.Scheme] = r
	}
	return byGraph
}

func orderOf(rows []MatchingRow) []string {
	var order []string
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Graph] {
			seen[r.Graph] = true
			order = append(order, r.Graph)
		}
	}
	return order
}
