package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

func TestJSONTracerRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: KindLevel, Level: 0, Vertices: 1000, Edges: 2900},
		{Kind: KindLevel, Level: 1, Vertices: 510, Edges: 1400, MatchRate: 0.98, ElapsedNS: 12345},
		{Kind: KindInitial, Level: 5, Cut: 44, Algorithm: "GGGP", Trials: 5, Seed: 7},
		{Kind: KindPass, Level: 3, Pass: 1, Moves: 120, PositiveGainMoves: 80, Cut: 61},
		{Kind: KindProject, Level: 2, Cut: 61, ElapsedNS: 99},
		{Kind: KindPhase, Level: 0, Phase: "coarsen", ElapsedNS: 1e6},
	}
	var buf bytes.Buffer
	tr := NewJSONTracer(&buf)
	for _, e := range events {
		tr.Event(e)
	}
	sc := bufio.NewScanner(&buf)
	var got []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		got = append(got, e)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip changed events:\n got %+v\nwant %+v", got, events)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Event(Event{Kind: KindPass, Level: w, Pass: i})
			}
		}(w)
	}
	wg.Wait()
	if n := len(c.Events()); n != 800 {
		t.Fatalf("collected %d events, want 800", n)
	}
	c.Reset()
	if n := len(c.Events()); n != 0 {
		t.Fatalf("reset left %d events", n)
	}
}

func TestMultiAndWithSeed(t *testing.T) {
	var a, b Collector
	tr := WithSeed(Multi(&a, nil, &b), 42)
	tr.Event(Event{Kind: KindInitial, Cut: 3})
	for _, c := range []*Collector{&a, &b} {
		evs := c.Events()
		if len(evs) != 1 || evs[0].Seed != 42 || evs[0].Cut != 3 {
			t.Fatalf("bad events %+v", evs)
		}
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi of nils should be nil")
	}
	if WithSeed(nil, 1) != nil {
		t.Fatal("WithSeed(nil) should be nil")
	}
	if Multi(&a) != Tracer(&a) {
		t.Fatal("Multi of one tracer should return it unchanged")
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{RefinePasses: 1, RefineMoves: 2, PositiveGainMoves: 3, Projections: 4}
	b := Counters{RefinePasses: 10, RefineMoves: 20, PositiveGainMoves: 30, Projections: 40}
	a.Add(&b)
	want := Counters{RefinePasses: 11, RefineMoves: 22, PositiveGainMoves: 33, Projections: 44}
	if a != want {
		t.Fatalf("got %+v, want %+v", a, want)
	}
}
