// Package trace defines the observability layer of the multilevel engine:
// typed per-level events emitted during coarsening, initial partitioning,
// refinement and projection, the Tracer contract that receives them, and
// the Counters that aggregate event totals into multilevel.Stats.
//
// The paper's §4 analysis (Figures 2–5, Tables 2–4) reasons about
// per-level behavior — the matching rate of each coarsening step, the cut
// after each projection, the moves of each refinement pass — and this
// package is the channel through which the engine exposes exactly those
// quantities. A nil Tracer costs nothing: every emission site is guarded,
// and results are bit-identical with or without one.
package trace

import (
	"encoding/json"
	"io"
	"sync"
)

// Kind discriminates the event types of the engine's V-cycle.
type Kind string

const (
	// KindLevel reports a hierarchy level: the finest graph (level 0) at
	// the start of coarsening, then one event per contraction with the
	// vertex/edge counts of the new level and the matching rate that
	// produced it.
	KindLevel Kind = "level"
	// KindInitial reports the coarsest-graph partition: the cut, the
	// algorithm and the number of trials.
	KindInitial Kind = "initial"
	// KindPass reports one refinement pass (2-way FM or k-way greedy):
	// moves made, moves with positive gain, and the resulting cut.
	KindPass Kind = "refine_pass"
	// KindProject reports a projection to a finer level and the cut the
	// finer level starts from (unchanged by projection, by the contraction
	// invariant).
	KindProject Kind = "project"
	// KindPhase reports the total wall time of one phase ("coarsen",
	// "initial", "refine", "project") at the end of a V-cycle.
	KindPhase Kind = "phase"
	// KindCycle reports one completed multilevel cycle of an iterated
	// (eco/strong preset) run: the cycle index, the edge-cut it achieved
	// and its wall time. Single-cycle (fast) runs emit no cycle events.
	KindCycle Kind = "cycle"
	// KindDegraded reports a graceful-degradation fallback: a phase
	// algorithm failed (or was failed by the fault injector) and a
	// cheaper substitute produced the result instead — SBP falling back
	// to GGGP, HCM matching retried as HEM, a refinement failure keeping
	// the projected partition. The event carries the same fields as the
	// Degradation record surfaced in Stats.Degradations.
	KindDegraded Kind = "degraded"
	// KindJob reports an asynchronous job lifecycle transition in the
	// service daemon: Phase carries the transition ("submitted",
	// "started", "done", "failed", "canceled"), Job the job id, and
	// ElapsedNS the time spent in the preceding state. Engine-internal
	// events from the job's computation interleave with the job events
	// when the submission requested tracing.
	KindJob Kind = "job"
	// KindSession reports a resident graph session transition in the
	// service daemon: Phase carries the transition ("created",
	// "recovered", "delta", "repair", "evicted", "deleted"), Session the
	// session id, Algorithm the repair tier that ran ("boundary", "full",
	// "vcycle") when one did, Cut the session's edge-cut after the
	// transition and ElapsedNS the wall time of the step.
	KindSession Kind = "session"
)

// Degradation records one graceful fallback taken during a run: which
// phase degraded, what it fell back from and to, at which hierarchy
// level, and why. The engine surfaces these in Stats.Degradations (and
// the wire schema forwards them) so callers can tell a degraded answer
// from a clean one.
type Degradation struct {
	// Phase is the V-cycle phase that degraded: "coarsen", "initpart",
	// "refine" or "kway".
	Phase string `json:"phase"`
	// From is the algorithm that failed ("SBP", "HCM", "BKLGR", ...).
	From string `json:"from"`
	// To is the substitute that produced the result ("GGGP", "HEM",
	// "projected", ...).
	To string `json:"to"`
	// Level is the hierarchy level at which the fallback happened.
	Level int `json:"level"`
	// Reason is the failure that forced the fallback.
	Reason string `json:"reason,omitempty"`
}

// Event is one observation from the engine. Which fields are meaningful
// depends on Kind (see docs/OBSERVABILITY.md for the schema); zero-valued
// optional fields are omitted from the JSON encoding.
type Event struct {
	Kind Kind `json:"kind"`
	// Level is the hierarchy level the event concerns; 0 is the finest
	// (original) graph, higher levels are coarser.
	Level int `json:"level"`
	// Seed identifies the bisection that emitted the event: recursive
	// k-way partitioning runs one V-cycle per bisection, each with its own
	// derived seed, and events from concurrent branches interleave.
	Seed int64 `json:"seed,omitempty"`

	Vertices int `json:"vertices,omitempty"`
	Edges    int `json:"edges,omitempty"`
	// MatchRate is the fraction of the finer level's vertices absorbed
	// into matched pairs by the contraction that built this level.
	MatchRate float64 `json:"match_rate,omitempty"`

	// Cut is the edge-cut after the event (initial partition, refinement
	// pass, or projection).
	Cut int `json:"cut,omitempty"`
	// Pass numbers the refinement passes at one level, starting at 0.
	Pass int `json:"pass,omitempty"`
	// Moves is the number of vertex moves made during a refinement pass
	// (before the losing suffix is undone).
	Moves int `json:"moves,omitempty"`
	// PositiveGainMoves counts the moves whose gain was positive when made.
	PositiveGainMoves int `json:"positive_gain_moves,omitempty"`
	// Boundary is the size of the boundary vertex set at the start of a
	// boundary-restricted refinement pass (BKWAY); 0 for passes that do
	// not track it.
	Boundary int `json:"boundary,omitempty"`

	// Algorithm names the algorithm behind the event ("GGGP", "BKLGR",
	// "KWAY", ...).
	Algorithm string `json:"algorithm,omitempty"`
	// Trials is the number of trials behind an initial partition.
	Trials int `json:"trials,omitempty"`
	// Cycle is the index (0-based) of the multilevel cycle a KindCycle
	// event reports; cycle 0 is the initial full V-cycle.
	Cycle int `json:"cycle,omitempty"`

	// Phase names the phase of a KindPhase event: "coarsen", "initial",
	// "refine" or "project". KindDegraded events reuse it for the
	// degraded phase.
	Phase string `json:"phase,omitempty"`
	// FallbackTo names the substitute algorithm of a KindDegraded event.
	FallbackTo string `json:"fallback_to,omitempty"`
	// Reason is the failure behind a KindDegraded event.
	Reason string `json:"reason,omitempty"`
	// Job is the job id of a KindJob event.
	Job string `json:"job,omitempty"`
	// Session is the session id of a KindSession event.
	Session string `json:"session,omitempty"`
	// ElapsedNS is the wall time of the step in nanoseconds.
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
}

// Tracer receives engine events. Implementations must be safe for
// concurrent use: parallel recursion branches and NCuts trials emit
// concurrently.
type Tracer interface {
	Event(Event)
}

// Counters aggregates the event totals that multilevel.Stats reports even
// when no Tracer is installed. The refinement packages increment it
// directly (it is cheaper than emitting events), and Stats embeds it so
// counts sum across recursion branches exactly like the timers.
type Counters struct {
	// RefinePasses is the number of refinement passes run (2-way FM and
	// k-way greedy sweeps).
	RefinePasses int
	// RefineMoves is the total number of vertex moves made across passes,
	// counting moves later undone by the best-prefix rollback.
	RefineMoves int
	// PositiveGainMoves counts moves whose gain was positive when made.
	PositiveGainMoves int
	// Projections is the number of level-to-level projections performed.
	Projections int
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	c.RefinePasses += o.RefinePasses
	c.RefineMoves += o.RefineMoves
	c.PositiveGainMoves += o.PositiveGainMoves
	c.Projections += o.Projections
}

// Collector is a Tracer that stores events in memory, in arrival order.
// It is safe for concurrent use.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Event implements Tracer.
func (c *Collector) Event(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the collected events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Reset discards the collected events.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.events = nil
	c.mu.Unlock()
}

// JSONTracer is a Tracer that writes one JSON object per line (JSONL) to
// an io.Writer. Writes are serialized with a mutex, so a single JSONTracer
// may back a parallel run.
type JSONTracer struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONTracer returns a JSONTracer writing to w.
func NewJSONTracer(w io.Writer) *JSONTracer {
	return &JSONTracer{enc: json.NewEncoder(w)}
}

// Event implements Tracer.
func (t *JSONTracer) Event(e Event) {
	t.mu.Lock()
	// Encoding errors are unreportable from this interface; observability
	// must never abort the partition itself.
	_ = t.enc.Encode(e)
	t.mu.Unlock()
}

// Multi returns a Tracer forwarding every event to each of the given
// tracers (nils are skipped). A nil result means no non-nil tracer was
// given.
func Multi(tracers ...Tracer) Tracer {
	var live []Tracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiTracer(live)
}

type multiTracer []Tracer

func (m multiTracer) Event(e Event) {
	for _, t := range m {
		t.Event(e)
	}
}

// WithSeed returns a Tracer that stamps Seed on every event before
// forwarding to t, identifying which bisection of a recursive run the
// event belongs to. A nil t yields nil.
func WithSeed(t Tracer, seed int64) Tracer {
	if t == nil {
		return nil
	}
	return seedTracer{t: t, seed: seed}
}

type seedTracer struct {
	t    Tracer
	seed int64
}

func (s seedTracer) Event(e Event) {
	e.Seed = s.seed
	s.t.Event(e)
}
