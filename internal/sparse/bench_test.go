package sparse

import (
	"math/rand"
	"testing"

	"mlpart/internal/matgen"
)

func BenchmarkAnalyze(b *testing.B) {
	b.ReportAllocs()
	g := matgen.FE3DTetra(14, 14, 14, 1)
	perm := rand.New(rand.NewSource(2)).Perm(g.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(g, perm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFactorize(b *testing.B) {
	b.ReportAllocs()
	g := matgen.Mesh2DTri(40, 40, 0, 3)
	m := NewLaplacian(g, 1)
	perm := IdentityPerm(g.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factorize(m, perm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve(b *testing.B) {
	b.ReportAllocs()
	g := matgen.Mesh2DTri(40, 40, 0, 4)
	m := NewLaplacian(g, 1)
	f, err := Factorize(m, IdentityPerm(g.NumVertices()))
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, g.NumVertices())
	for i := range rhs {
		rhs[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Solve(rhs)
	}
}
