package sparse

import (
	"fmt"
	"math"

	"mlpart/internal/graph"
)

// Matrix is a symmetric sparse matrix whose off-diagonal pattern is a
// graph: entry (u, v) holds Offdiag[e] for the adjacency slot e of edge
// (u, v), and entry (v, v) holds Diag[v]. It is the numeric companion of
// the symbolic machinery in this package and the input to Factorize.
type Matrix struct {
	G *graph.Graph
	// Diag[v] is the diagonal entry of row v.
	Diag []float64
	// Offdiag is parallel to G.Adjncy; symmetry requires the two slots of
	// each undirected edge to hold the same value (NewLaplacian guarantees
	// it; Validate checks it).
	Offdiag []float64
}

// NewLaplacian builds the graph Laplacian L = D - W of g shifted by
// +shift on the diagonal. For shift > 0 the result is symmetric positive
// definite — the standard model problem for sparse Cholesky.
func NewLaplacian(g *graph.Graph, shift float64) *Matrix {
	n := g.NumVertices()
	m := &Matrix{
		G:       g,
		Diag:    make([]float64, n),
		Offdiag: make([]float64, len(g.Adjncy)),
	}
	for v := 0; v < n; v++ {
		m.Diag[v] = float64(g.WeightedDegree(v)) + shift
		wgt := g.EdgeWeights(v)
		base := g.Xadj[v]
		for i := range wgt {
			m.Offdiag[base+i] = -float64(wgt[i])
		}
	}
	return m
}

// Validate checks structural symmetry of the off-diagonal values.
func (m *Matrix) Validate() error {
	g := m.G
	n := g.NumVertices()
	if len(m.Diag) != n || len(m.Offdiag) != len(g.Adjncy) {
		return fmt.Errorf("sparse: matrix arrays sized wrong")
	}
	for v := 0; v < n; v++ {
		adj := g.Neighbors(v)
		for i, u := range adj {
			back := m.at(u, v)
			if m.Offdiag[g.Xadj[v]+i] != back {
				return fmt.Errorf("sparse: asymmetric value at (%d,%d)", v, u)
			}
		}
	}
	return nil
}

// at returns the off-diagonal entry (u, v), 0 if absent. O(Degree(u)).
func (m *Matrix) at(u, v int) float64 {
	adj := m.G.Neighbors(u)
	for i, w := range adj {
		if w == v {
			return m.Offdiag[m.G.Xadj[u]+i]
		}
	}
	return 0
}

// MulVec computes y = A x.
func (m *Matrix) MulVec(x, y []float64) {
	g := m.G
	for v := range y {
		s := m.Diag[v] * x[v]
		adj := g.Neighbors(v)
		base := g.Xadj[v]
		for i, u := range adj {
			s += m.Offdiag[base+i] * x[u]
		}
		y[v] = s
	}
}

// Residual returns ||A x - b||_2.
func (m *Matrix) Residual(x, b []float64) float64 {
	y := make([]float64, len(b))
	m.MulVec(x, y)
	s := 0.0
	for i := range y {
		d := y[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
