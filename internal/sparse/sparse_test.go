package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/graph"
	"mlpart/internal/matgen"
)

// completeGraph returns K_n.
func completeGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.MustBuild()
}

// pathGraph returns the path 0-1-...-n-1.
func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.MustBuild()
}

func TestAnalyzeDenseMatrix(t *testing.T) {
	// K_n factors with a completely full L: ColCount[j] = n - j.
	n := 6
	a, err := Analyze(completeGraph(n), IdentityPerm(n))
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		if a.ColCount[j] != n-j {
			t.Fatalf("ColCount[%d] = %d, want %d", j, a.ColCount[j], n-j)
		}
		if j < n-1 && a.Parent[j] != j+1 {
			t.Fatalf("Parent[%d] = %d, want %d", j, a.Parent[j], j+1)
		}
	}
	if a.NnzL != int64(n*(n+1)/2) {
		t.Fatalf("NnzL = %d, want %d", a.NnzL, n*(n+1)/2)
	}
	if a.Height != n-1 {
		t.Fatalf("Height = %d, want %d", a.Height, n-1)
	}
}

func TestAnalyzeTridiagonalNoFill(t *testing.T) {
	// A path in natural order is tridiagonal: no fill at all.
	n := 10
	a, err := Analyze(pathGraph(n), IdentityPerm(n))
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n-1; j++ {
		if a.ColCount[j] != 2 {
			t.Fatalf("ColCount[%d] = %d, want 2", j, a.ColCount[j])
		}
	}
	if a.ColCount[n-1] != 1 {
		t.Fatalf("last column count = %d, want 1", a.ColCount[n-1])
	}
	if a.NnzL != int64(2*n-1) {
		t.Fatalf("NnzL = %d, want %d", a.NnzL, 2*n-1)
	}
}

func TestAnalyzePathBadOrderFills(t *testing.T) {
	// Eliminating the middle of a path first creates fill; the natural
	// order creates none, so it must have strictly smaller flops.
	n := 11
	g := pathGraph(n)
	natural, _ := Analyze(g, IdentityPerm(n))
	// Worst-ish order: middle outward.
	perm := []int{5, 4, 6, 3, 7, 2, 8, 1, 9, 0, 10}
	bad, err := Analyze(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if bad.NnzL < natural.NnzL {
		t.Fatalf("bad order has less fill (%d) than natural (%d)", bad.NnzL, natural.NnzL)
	}
}

func TestAnalyzeStarCenterLast(t *testing.T) {
	// Star with center eliminated last: leaves are independent, no fill.
	k := 8
	b := graph.NewBuilder(k + 1)
	for i := 1; i <= k; i++ {
		b.AddEdge(0, i)
	}
	g := b.MustBuild()
	perm := make([]int, k+1)
	for i := 0; i < k; i++ {
		perm[i] = i + 1 // leaves first
	}
	perm[k] = 0 // center last
	a, err := Analyze(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if a.NnzL != int64(2*k+1) {
		t.Fatalf("NnzL = %d, want %d (no fill)", a.NnzL, 2*k+1)
	}
	if a.Height != 1 {
		t.Fatalf("Height = %d, want 1 (perfectly parallel)", a.Height)
	}
	// Center first: complete fill among leaves.
	perm2 := append([]int{0}, perm[:k]...)
	a2, _ := Analyze(g, perm2)
	if a2.NnzL <= a.NnzL {
		t.Fatalf("center-first fill %d not worse than center-last %d", a2.NnzL, a.NnzL)
	}
}

func TestAnalyzeRejectsBadPerm(t *testing.T) {
	g := pathGraph(4)
	if _, err := Analyze(g, []int{0, 1, 2}); err == nil {
		t.Error("short perm accepted")
	}
	if _, err := Analyze(g, []int{0, 1, 2, 2}); err == nil {
		t.Error("duplicate perm accepted")
	}
	if _, err := Analyze(g, []int{0, 1, 2, 9}); err == nil {
		t.Error("out-of-range perm accepted")
	}
}

func TestInversePerm(t *testing.T) {
	perm := []int{2, 0, 3, 1}
	ip := InversePerm(perm)
	for i, v := range perm {
		if ip[v] != i {
			t.Fatalf("InversePerm wrong at %d", i)
		}
	}
}

// naiveFactorCounts computes column counts by explicit symbolic elimination
// (quadratic, for cross-checking).
func naiveFactorCounts(g *graph.Graph, perm []int) []int {
	n := g.NumVertices()
	iperm := InversePerm(perm)
	// rows[j] = set of ordered indices i > j with L[i][j] != 0.
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			adj[iperm[v]][iperm[u]] = true
		}
	}
	counts := make([]int, n)
	for j := 0; j < n; j++ {
		var lower []int
		for i := range adj[j] {
			if i > j {
				lower = append(lower, i)
			}
		}
		counts[j] = len(lower) + 1
		// Eliminating j connects all its higher neighbors pairwise.
		for a := 0; a < len(lower); a++ {
			for b := a + 1; b < len(lower); b++ {
				adj[lower[a]][lower[b]] = true
				adj[lower[b]][lower[a]] = true
			}
		}
	}
	return counts
}

func TestAnalyzeMatchesNaiveElimination(t *testing.T) {
	g := matgen.Mesh2DTri(6, 6, 0, 1)
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(n)
		a, err := Analyze(g, perm)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveFactorCounts(g, perm)
		for j := 0; j < n; j++ {
			if a.ColCount[j] != want[j] {
				t.Fatalf("trial %d: ColCount[%d] = %d, want %d", trial, j, a.ColCount[j], want[j])
			}
		}
	}
}

// Property: fill is invariant in total under relabeling the same structure,
// and NnzL >= nnz(A)/2 + n always (the factor contains the lower triangle).
func TestAnalyzePropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := matgen.FE3DTetra(4, 4, 3, seed)
		n := g.NumVertices()
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(n)
		a, err := Analyze(g, perm)
		if err != nil {
			return false
		}
		if a.NnzL < int64(g.NumEdges()+n) {
			return false
		}
		// Parent indices always exceed child indices.
		for j, p := range a.Parent {
			if p != -1 && p <= j {
				return false
			}
		}
		return a.Flops >= float64(a.NnzL)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
