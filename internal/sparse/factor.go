package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CholFactor is the sparse Cholesky factor P A Pᵀ = L Lᵀ of a symmetric
// positive definite Matrix under a fill-reducing permutation, stored in
// compressed-column form over the permuted indices.
type CholFactor struct {
	n     int
	perm  []int // perm[i] = original index eliminated i-th
	iperm []int
	// Column j holds rows rowind[colptr[j]:colptr[j+1]] (strictly below the
	// diagonal, ascending) with values lvals; diag[j] is L[j][j].
	colptr []int
	rowind []int
	lvals  []float64
	diag   []float64
}

// NnzL returns the number of stored nonzeros of L, diagonal included.
func (f *CholFactor) NnzL() int64 { return int64(len(f.rowind) + f.n) }

// Factorize computes the simplicial sparse Cholesky factorization of m
// under the elimination order perm (a left-looking column algorithm guided
// by the elimination tree). It fails if m is not positive definite in
// exact terms of the computed pivots.
func Factorize(m *Matrix, perm []int) (*CholFactor, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	g := m.G
	n := g.NumVertices()
	sym, err := Analyze(g, perm)
	if err != nil {
		return nil, err
	}
	iperm := InversePerm(perm)
	f := &CholFactor{
		n:     n,
		perm:  append([]int(nil), perm...),
		iperm: iperm,
		diag:  make([]float64, n),
	}

	// Symbolic column patterns: pattern(j) = rows of A column j below the
	// diagonal, merged with pattern(child)\{child} for every etree child.
	colnz := make([]int, n)
	for j := 0; j < n; j++ {
		colnz[j] = sym.ColCount[j] - 1 // strictly below diagonal
	}
	f.colptr = make([]int, n+1)
	for j := 0; j < n; j++ {
		f.colptr[j+1] = f.colptr[j] + colnz[j]
	}
	f.rowind = make([]int, f.colptr[n])
	f.lvals = make([]float64, f.colptr[n])

	children := make([][]int, n)
	for j := 0; j < n; j++ {
		if p := sym.Parent[j]; p >= 0 {
			children[p] = append(children[p], j)
		}
	}
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	fill := make([]int, n) // next write slot per column
	copy(fill, f.colptr[:n])
	for j := 0; j < n; j++ {
		mark[j] = j
		v := perm[j]
		for _, u := range g.Neighbors(v) {
			if i := iperm[u]; i > j && mark[i] != j {
				mark[i] = j
				f.rowind[fill[j]] = i
				fill[j]++
			}
		}
		for _, c := range children[j] {
			for p := f.colptr[c]; p < f.colptr[c+1]; p++ {
				if i := f.rowind[p]; i > j && mark[i] != j {
					mark[i] = j
					f.rowind[fill[j]] = i
					fill[j]++
				}
			}
		}
		if fill[j] != f.colptr[j+1] {
			return nil, fmt.Errorf("sparse: symbolic pattern mismatch at column %d", j)
		}
		sort.Ints(f.rowind[f.colptr[j]:f.colptr[j+1]])
	}

	// Numeric left-looking factorization with a dense work column.
	work := make([]float64, n)
	for i := range mark {
		mark[i] = -1
	}
	for j := 0; j < n; j++ {
		// Scatter A(:, j) for rows >= j (permuted).
		v := perm[j]
		work[j] = m.Diag[v]
		adj := g.Neighbors(v)
		base := g.Xadj[v]
		for t, u := range adj {
			if i := iperm[u]; i > j {
				work[i] = m.Offdiag[base+t]
			}
		}

		// Contributing columns k < j are the nonzeros of row j of L:
		// the etree row subtree rooted at the below-diagonal A-neighbors.
		for _, u := range adj {
			k := iperm[u]
			for k < j && mark[k] != j {
				mark[k] = j
				applyUpdate(f, k, j, work)
				k = sym.Parent[k]
				if k < 0 {
					break
				}
			}
		}

		// Pivot.
		d := work[j]
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("sparse: non-positive pivot %g at column %d (matrix not SPD?)", d, j)
		}
		f.diag[j] = math.Sqrt(d)
		inv := 1 / f.diag[j]
		for p := f.colptr[j]; p < f.colptr[j+1]; p++ {
			i := f.rowind[p]
			f.lvals[p] = work[i] * inv
			work[i] = 0
		}
		work[j] = 0
	}
	return f, nil
}

// applyUpdate performs the left-looking update of column j by column k:
// work[i] -= L[i][k] * L[j][k] for all stored rows i >= j of column k.
func applyUpdate(f *CholFactor, k, j int, work []float64) {
	lo, hi := f.colptr[k], f.colptr[k+1]
	// Locate row j in column k (present by definition of row structure).
	p := lo + sort.SearchInts(f.rowind[lo:hi], j)
	if p >= hi || f.rowind[p] != j {
		return // row j not in column k (can happen for numerically exact zeros)
	}
	ljk := f.lvals[p]
	work[j] -= ljk * ljk
	for q := p + 1; q < hi; q++ {
		work[f.rowind[q]] -= f.lvals[q] * ljk
	}
}

// Solve solves A x = b using the factorization (forward substitution,
// then the transpose backward pass), returning x in original indexing.
func (f *CholFactor) Solve(b []float64) []float64 {
	n := f.n
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = b[f.perm[i]]
	}
	// L y' = y (column-oriented forward substitution).
	for j := 0; j < n; j++ {
		y[j] /= f.diag[j]
		yj := y[j]
		for p := f.colptr[j]; p < f.colptr[j+1]; p++ {
			y[f.rowind[p]] -= f.lvals[p] * yj
		}
	}
	// Lᵀ x' = y'.
	for j := n - 1; j >= 0; j-- {
		s := y[j]
		for p := f.colptr[j]; p < f.colptr[j+1]; p++ {
			s -= f.lvals[p] * y[f.rowind[p]]
		}
		y[j] = s / f.diag[j]
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[f.perm[i]] = y[i]
	}
	return x
}
