package sparse

import (
	"math/rand"
	"testing"

	"mlpart/internal/graph"
	"mlpart/internal/matgen"
)

func TestPostorderProperties(t *testing.T) {
	g := matgen.Mesh2DTri(8, 8, 0, 1)
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(n)
		a, err := Analyze(g, perm)
		if err != nil {
			t.Fatal(err)
		}
		post := Postorder(a.Parent)
		// Permutation check.
		seen := make([]bool, n)
		pos := make([]int, n)
		for i, j := range post {
			if j < 0 || j >= n || seen[j] {
				t.Fatal("postorder not a permutation")
			}
			seen[j] = true
			pos[j] = i
		}
		// Children precede parents.
		for j := 0; j < n; j++ {
			if p := a.Parent[j]; p >= 0 && pos[j] >= pos[p] {
				t.Fatalf("child %d after parent %d", j, p)
			}
		}
	}
}

func TestPostorderChain(t *testing.T) {
	// Chain etree 0 -> 1 -> 2 -> 3: already postordered.
	post := Postorder([]int{1, 2, 3, -1})
	for i, j := range post {
		if i != j {
			t.Fatalf("chain postorder = %v", post)
		}
	}
}

func TestPostorderForest(t *testing.T) {
	// Two roots: {0->2, 1->2, 2 root}, {3 root}.
	post := Postorder([]int{2, 2, -1, -1})
	if len(post) != 4 {
		t.Fatal("wrong length")
	}
	pos := make([]int, 4)
	for i, j := range post {
		pos[j] = i
	}
	if pos[0] > pos[2] || pos[1] > pos[2] {
		t.Fatalf("children after parent: %v", post)
	}
}

func TestSupernodesDense(t *testing.T) {
	// K_n factors into a single supernode: parent chain with counts n-j.
	n := 6
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	a, err := Analyze(b.MustBuild(), IdentityPerm(n))
	if err != nil {
		t.Fatal(err)
	}
	sn, count := Supernodes(a)
	if count != 1 {
		t.Fatalf("K%d has %d supernodes, want 1 (%v)", n, count, sn)
	}
}

func TestSupernodesDiagonal(t *testing.T) {
	// An edgeless graph: every column is its own supernode.
	g := graph.NewBuilder(5).MustBuild()
	a, err := Analyze(g, IdentityPerm(5))
	if err != nil {
		t.Fatal(err)
	}
	_, count := Supernodes(a)
	if count != 5 {
		t.Fatalf("%d supernodes, want 5", count)
	}
}

func TestSupernodesCoverColumns(t *testing.T) {
	g := matgen.FE3DTetra(6, 6, 6, 3)
	a, err := Analyze(g, IdentityPerm(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	sn, count := Supernodes(a)
	if count < 1 || count > g.NumVertices() {
		t.Fatalf("count = %d", count)
	}
	// Ids are nondecreasing and contiguous 0..count-1.
	for j := 1; j < len(sn); j++ {
		if sn[j] != sn[j-1] && sn[j] != sn[j-1]+1 {
			t.Fatal("supernode ids not contiguous")
		}
	}
	if sn[len(sn)-1] != count-1 {
		t.Fatalf("last id %d, count %d", sn[len(sn)-1], count)
	}
	// A good mesh ordering yields far fewer supernodes than columns.
	if count == g.NumVertices() {
		t.Log("no supernodes found (all singletons) — legal but unusual for meshes")
	}
}
