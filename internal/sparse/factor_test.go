package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/graph"
	"mlpart/internal/matgen"
)

// denseOf expands m to a dense matrix for cross-checking.
func denseOf(m *Matrix) [][]float64 {
	n := m.G.NumVertices()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		d[i][i] = m.Diag[i]
	}
	for v := 0; v < n; v++ {
		adj := m.G.Neighbors(v)
		base := m.G.Xadj[v]
		for t, u := range adj {
			d[v][u] = m.Offdiag[base+t]
		}
	}
	return d
}

// denseCholesky factors a dense SPD matrix in place, returning lower L.
func denseCholesky(a [][]float64) ([][]float64, bool) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		s := a[j][j]
		for k := 0; k < j; k++ {
			s -= l[j][k] * l[j][k]
		}
		if s <= 0 {
			return nil, false
		}
		l[j][j] = math.Sqrt(s)
		for i := j + 1; i < n; i++ {
			t := a[i][j]
			for k := 0; k < j; k++ {
				t -= l[i][k] * l[j][k]
			}
			l[i][j] = t / l[j][j]
		}
	}
	return l, true
}

func TestNewLaplacianSPD(t *testing.T) {
	g := matgen.Grid2D(4, 4)
	m := NewLaplacian(g, 1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Row sums of L are zero, so with shift 1 each row sums to 1.
	n := g.NumVertices()
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, n)
	m.MulVec(x, y)
	for i, v := range y {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("row %d sums to %g, want 1", i, v)
		}
	}
}

func TestFactorizeMatchesDense(t *testing.T) {
	g := matgen.Mesh2DTri(5, 5, 0, 1)
	m := NewLaplacian(g, 2)
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 3; trial++ {
		perm := rng.Perm(n)
		f, err := Factorize(m, perm)
		if err != nil {
			t.Fatal(err)
		}
		// Dense reference on the permuted matrix.
		dm := denseOf(m)
		pd := make([][]float64, n)
		for i := 0; i < n; i++ {
			pd[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				pd[i][j] = dm[perm[i]][perm[j]]
			}
		}
		ref, ok := denseCholesky(pd)
		if !ok {
			t.Fatal("dense reference failed")
		}
		for j := 0; j < n; j++ {
			if math.Abs(f.diag[j]-ref[j][j]) > 1e-9 {
				t.Fatalf("trial %d: diag[%d] = %g, dense %g", trial, j, f.diag[j], ref[j][j])
			}
			for p := f.colptr[j]; p < f.colptr[j+1]; p++ {
				i := f.rowind[p]
				if math.Abs(f.lvals[p]-ref[i][j]) > 1e-9 {
					t.Fatalf("trial %d: L[%d][%d] = %g, dense %g", trial, i, j, f.lvals[p], ref[i][j])
				}
			}
		}
	}
}

func TestFactorizeSolve(t *testing.T) {
	g := matgen.FE3DTetra(5, 5, 5, 3)
	m := NewLaplacian(g, 1)
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(4))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	m.MulVec(xTrue, b)

	for _, perm := range [][]int{IdentityPerm(n), rng.Perm(n)} {
		f, err := Factorize(m, perm)
		if err != nil {
			t.Fatal(err)
		}
		x := f.Solve(b)
		maxErr := 0.0
		for i := range x {
			if e := math.Abs(x[i] - xTrue[i]); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > 1e-8 {
			t.Fatalf("solve error %g", maxErr)
		}
		if r := m.Residual(x, b); r > 1e-8 {
			t.Fatalf("residual %g", r)
		}
	}
}

func TestFactorizeNnzMatchesSymbolic(t *testing.T) {
	g := matgen.Grid2D(8, 8)
	m := NewLaplacian(g, 1)
	perm := rand.New(rand.NewSource(5)).Perm(g.NumVertices())
	f, err := Factorize(m, perm)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Analyze(g, perm)
	if f.NnzL() != a.NnzL {
		t.Fatalf("numeric NnzL %d, symbolic %d", f.NnzL(), a.NnzL)
	}
}

func TestFactorizeRejectsIndefinite(t *testing.T) {
	// Pure Laplacian (shift 0) is singular: last pivot hits zero.
	g := matgen.Grid2D(3, 3)
	m := NewLaplacian(g, 0)
	if _, err := Factorize(m, IdentityPerm(9)); err == nil {
		t.Fatal("singular matrix factorized without error")
	}
	// Negative-definite diagonal.
	m2 := NewLaplacian(g, 1)
	for i := range m2.Diag {
		m2.Diag[i] = -1
	}
	if _, err := Factorize(m2, IdentityPerm(9)); err == nil {
		t.Fatal("indefinite matrix factorized without error")
	}
}

func TestFactorizeRejectsAsymmetricValues(t *testing.T) {
	g := matgen.Grid2D(2, 2)
	m := NewLaplacian(g, 1)
	m.Offdiag[0] = 99 // break symmetry
	if _, err := Factorize(m, IdentityPerm(4)); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
}

func TestMatrixResidualZeroForExactSolution(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	m := NewLaplacian(g, 1) // [[2,-1],[-1,2]]
	x := []float64{1, 1}
	bb := []float64{1, 1}
	if r := m.Residual(x, bb); math.Abs(r) > 1e-12 {
		t.Fatalf("residual %g", r)
	}
}

// Property: Solve returns machine-precision solutions for random SPD
// systems under random fill-reducing orderings.
func TestFactorizeSolvePropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := matgen.Mesh2DTri(6, 6, 0.05, seed)
		n := g.NumVertices()
		m := NewLaplacian(g, 1+float64(uint64(seed)%5))
		rng := rand.New(rand.NewSource(seed))
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.Float64()*2 - 1
		}
		b := make([]float64, n)
		m.MulVec(xTrue, b)
		fac, err := Factorize(m, rng.Perm(n))
		if err != nil {
			return false
		}
		x := fac.Solve(b)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
