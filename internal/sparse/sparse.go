// Package sparse provides the symbolic sparse Cholesky machinery used to
// score fill-reducing orderings (§4.3 of the paper): the elimination tree,
// exact per-column factor counts, total factor nonzeros, and the
// factorization operation count the paper's Figure 5 compares (MMD vs
// MLND vs SND orderings).
package sparse

import (
	"fmt"

	"mlpart/internal/graph"
)

// Analysis is the result of symbolically factoring a symmetric matrix whose
// adjacency structure is a graph, under a given elimination order.
type Analysis struct {
	// Parent is the elimination tree over the *ordered* indices: Parent[j]
	// is the parent of column j, or -1 for roots.
	Parent []int
	// ColCount[j] is the number of nonzeros in column j of the factor L,
	// including the diagonal, in ordered indices.
	ColCount []int
	// NnzL is the total number of nonzeros in L (sum of ColCount).
	NnzL int64
	// Flops is the factorization operation count, the standard measure
	// sum_j ColCount[j]^2 used when comparing orderings.
	Flops float64
	// Height is the height of the elimination tree, a proxy for the
	// critical path (and hence available concurrency) of the parallel
	// factorization: lower is better for parallel solvers.
	Height int
}

// Analyze symbolically factors the matrix whose off-diagonal pattern is g,
// eliminated in the order given by perm: perm[i] is the original vertex
// eliminated i-th. perm must be a permutation of [0, n); Analyze returns an
// error otherwise.
//
// The elimination tree is built with Liu's path-compression algorithm in
// near-linear time; the column counts are exact, obtained by traversing
// each row subtree (total work proportional to nnz(L)).
func Analyze(g *graph.Graph, perm []int) (*Analysis, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("sparse: len(perm) = %d, want %d", len(perm), n)
	}
	iperm := make([]int, n) // original -> ordered
	for i := range iperm {
		iperm[i] = -1
	}
	for i, v := range perm {
		if v < 0 || v >= n || iperm[v] != -1 {
			return nil, fmt.Errorf("sparse: perm is not a permutation at position %d", i)
		}
		iperm[v] = i
	}

	// Elimination tree (Liu). ancestor implements path compression.
	parent := make([]int, n)
	ancestor := make([]int, n)
	for i := range parent {
		parent[i] = -1
		ancestor[i] = -1
	}
	for i := 0; i < n; i++ {
		v := perm[i]
		for _, u := range g.Neighbors(v) {
			k := iperm[u]
			if k >= i {
				continue
			}
			// Walk from k to the current root, compressing.
			for k != -1 && k != i {
				next := ancestor[k]
				ancestor[k] = i
				if next == -1 {
					parent[k] = i
				}
				k = next
			}
		}
	}

	// Exact column counts by row-subtree traversal: row i of L has a
	// nonzero in column j iff j is on the etree path from some k (a
	// below-diagonal neighbor of i) up to i.
	colCount := make([]int, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
		colCount[i] = 1 // diagonal
	}
	for i := 0; i < n; i++ {
		v := perm[i]
		mark[i] = i
		for _, u := range g.Neighbors(v) {
			k := iperm[u]
			if k >= i {
				continue
			}
			for mark[k] != i {
				mark[k] = i
				colCount[k]++
				k = parent[k]
				if k == -1 {
					break // defensive: cannot happen for symmetric input
				}
			}
		}
	}

	a := &Analysis{Parent: parent, ColCount: colCount}
	for _, c := range colCount {
		a.NnzL += int64(c)
		a.Flops += float64(c) * float64(c)
	}
	// Tree height by one forward sweep: every parent has a larger index
	// than its children, so depths are final when reached.
	depth := make([]int, n)
	height := 0
	for j := 0; j < n; j++ {
		if p := parent[j]; p >= 0 {
			if depth[j]+1 > depth[p] {
				depth[p] = depth[j] + 1
			}
		}
		if depth[j] > height {
			height = depth[j]
		}
	}
	a.Height = height
	return a, nil
}

// IdentityPerm returns the natural ordering 0..n-1.
func IdentityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// InversePerm returns iperm with iperm[perm[i]] = i.
func InversePerm(perm []int) []int {
	iperm := make([]int, len(perm))
	for i, v := range perm {
		iperm[v] = i
	}
	return iperm
}
