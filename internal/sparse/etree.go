package sparse

// Postorder returns a postordering of the elimination forest: children
// before parents, each subtree contiguous. Orderings equivalent up to
// etree postorder produce identical fill, so solvers re-label columns this
// way to make supernodes contiguous and subtree parallelism explicit.
// parent[j] is the etree parent (parents always have larger indices), or
// -1 for roots. The result maps new position -> old column.
func Postorder(parent []int) []int {
	n := len(parent)
	// Build child lists; iterate children in ascending order for
	// determinism.
	head := make([]int, n)
	next := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	var roots []int
	for j := n - 1; j >= 0; j-- { // reversed so lists come out ascending
		p := parent[j]
		if p < 0 {
			roots = append(roots, j)
		} else {
			next[j] = head[p]
			head[p] = j
		}
	}
	// roots collected descending; reverse for ascending traversal.
	for i, k := 0, len(roots)-1; i < k; i, k = i+1, k-1 {
		roots[i], roots[k] = roots[k], roots[i]
	}

	post := make([]int, 0, n)
	// Iterative DFS emitting children before parents.
	type frame struct {
		node  int
		child int // next child to visit (linked-list cursor)
	}
	var stack []frame
	for _, r := range roots {
		stack = append(stack[:0], frame{r, head[r]})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.child >= 0 {
				c := f.child
				f.child = next[c]
				stack = append(stack, frame{c, head[c]})
				continue
			}
			post = append(post, f.node)
			stack = stack[:len(stack)-1]
		}
	}
	return post
}

// Supernode groups the columns of the factor into fundamental supernodes:
// maximal runs j, j+1, ..., j+s of columns where each column's parent is
// the next column and the column counts shrink by exactly one — meaning
// the columns share one dense trapezoidal structure. Real solvers factor
// supernodes with dense kernels; the count and size distribution measure
// how "supernodal" an ordering is. It returns, for the given analysis,
// the supervnode id of each column and the number of supernodes.
func Supernodes(a *Analysis) (sn []int, count int) {
	n := len(a.Parent)
	sn = make([]int, n)
	if n == 0 {
		return sn, 0
	}
	// Number of etree children per column: a fundamental supernode can
	// only continue into a column with exactly one child.
	nchild := make([]int, n)
	for j := 0; j < n; j++ {
		if p := a.Parent[j]; p >= 0 {
			nchild[p]++
		}
	}
	count = 0
	sn[0] = 0
	for j := 1; j < n; j++ {
		continues := a.Parent[j-1] == j &&
			a.ColCount[j-1] == a.ColCount[j]+1 &&
			nchild[j] == 1
		if !continues {
			count++
		}
		sn[j] = count
	}
	return sn, count + 1
}
