package faults

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseNilForEmptyPlans(t *testing.T) {
	for _, plan := range []string{"", "   ", ";;", " ; ; "} {
		in, err := Parse(plan)
		if err != nil {
			t.Fatalf("Parse(%q): %v", plan, err)
		}
		if in != nil {
			t.Fatalf("Parse(%q) = %v, want nil", plan, in)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, plan := range []string{
		"nonsense",
		"=panic",
		"site=explode",
		"site=panic@0",
		"site=panic@-1",
		"site=panic@p2",
		"site=panic@p0",
		"site=delay:xyz",
		"site=delay:-1s",
		"seed=abc",
	} {
		if _, err := Parse(plan); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", plan)
		}
	}
}

func TestNilInjectorFireIsNoop(t *testing.T) {
	var in *Injector
	if err := in.Fire("anything"); err != nil {
		t.Fatalf("nil.Fire = %v", err)
	}
	if in.HitCount("anything") != 0 {
		t.Fatal("nil.HitCount != 0")
	}
}

func TestErrorRuleFiresExactlyOnNthHit(t *testing.T) {
	in := MustParse("s=error@3")
	for n := 1; n <= 5; n++ {
		err := in.Fire("s")
		if n == 3 {
			var ie *InjectedError
			if !errors.As(err, &ie) {
				t.Fatalf("hit %d: err = %v, want *InjectedError", n, err)
			}
			if ie.Site != "s" || ie.Hit != 3 {
				t.Fatalf("injected error = %+v", ie)
			}
		} else if err != nil {
			t.Fatalf("hit %d: err = %v, want nil", n, err)
		}
	}
	if got := in.HitCount("s"); got != 5 {
		t.Fatalf("HitCount = %d, want 5", got)
	}
}

func TestFromTriggerFiresOnward(t *testing.T) {
	in := MustParse("s=error@2+")
	fired := 0
	for n := 1; n <= 4; n++ {
		if in.Fire("s") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3 (hits 2,3,4)", fired)
	}
}

func TestStarTriggerFiresAlways(t *testing.T) {
	in := MustParse("s=error@*")
	for n := 1; n <= 3; n++ {
		if in.Fire("s") == nil {
			t.Fatalf("hit %d did not fire", n)
		}
	}
}

func TestPanicRuleRecoveredByBoundary(t *testing.T) {
	in := MustParse("s=panic")
	err := Boundary("outer", func() error {
		_ = in.Fire("s")
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Site != "outer" {
		t.Fatalf("site = %q, want outer", pe.Site)
	}
	if !strings.Contains(fmt.Sprint(pe.Value), "injected panic at s") {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("no stack captured")
	}
}

func TestBoundaryPassesErrorsAndResultsThrough(t *testing.T) {
	if err := Boundary("b", func() error { return nil }); err != nil {
		t.Fatalf("clean fn: %v", err)
	}
	want := errors.New("boom")
	if err := Boundary("b", func() error { return want }); err != want {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestNestedBoundariesKeepInnermostSite(t *testing.T) {
	err := Boundary("outer", func() error {
		return Boundary("inner", func() error {
			panic("ouch")
		})
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Site != "inner" {
		t.Fatalf("site = %q, want inner", pe.Site)
	}
	// Re-panicking a *PanicError through another boundary must not
	// re-wrap it.
	err2 := Boundary("outer2", func() error { panic(pe) })
	var pe2 *PanicError
	if !errors.As(err2, &pe2) || pe2 != pe {
		t.Fatalf("re-wrapped: %v", err2)
	}
}

func TestDelayRuleSleeps(t *testing.T) {
	in := MustParse("s=delay:30ms")
	t0 := time.Now()
	if err := in.Fire("s"); err != nil {
		t.Fatalf("Fire = %v", err)
	}
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("delay rule slept %v, want >= 30ms", d)
	}
}

func TestProbabilisticTriggerIsSeededAndDeterministic(t *testing.T) {
	run := func() []bool {
		in := MustParse("seed=99; s=error@p0.5")
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fire("s") != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs between identical plans", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p0.5 fired %d/%d times", fired, len(a))
	}
}

func TestConcurrentFireIsRaceFree(t *testing.T) {
	in := MustParse("s=error@100")
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if in.Fire("s") != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("exact-hit rule fired %d times across 400 concurrent hits, want 1", fired)
	}
	if got := in.HitCount("s"); got != 400 {
		t.Fatalf("HitCount = %d, want 400", got)
	}
}

func TestMultipleSitesAndRules(t *testing.T) {
	in := MustParse("a=error@1; a=error@3; b=error@2")
	wantErr := []bool{true, false, true}
	for i, want := range wantErr {
		if got := in.Fire("a") != nil; got != want {
			t.Fatalf("site a hit %d: fired=%t, want %t", i+1, got, want)
		}
	}
	if in.Fire("b") != nil {
		t.Fatal("site b fired on hit 1")
	}
	if in.Fire("b") == nil {
		t.Fatal("site b did not fire on hit 2")
	}
}

func TestSitesSortedAndNonEmpty(t *testing.T) {
	s := Sites()
	if len(s) == 0 {
		t.Fatal("no sites")
	}
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			t.Fatalf("sites not sorted: %q >= %q", s[i-1], s[i])
		}
	}
}
