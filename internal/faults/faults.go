// Package faults is the fault-tolerance substrate of the partitioner:
// panic boundaries that convert crashes into typed errors, and a
// deterministic fault injector that can fire panics, errors and delays
// at named sites inside the V-cycle and the service.
//
// The two halves prove each other. The boundaries exist so that one
// poisoned request — a panic in a parallel-bisection trial, a bug tickled
// by a pathological graph — degrades into an error response instead of
// killing the daemon; the injector exists so that tests can force exactly
// those failures, deterministically, and assert the recovery behavior
// under -race. A nil *Injector is the off switch and costs one nil check
// per site, mirroring the nil-Tracer contract of internal/trace.
//
// Fault plans are strings (flag -faults, env MLPART_FAULTS, or
// Options.FaultPlan) of semicolon-separated directives:
//
//	seed=42; engine/bisect=panic@2; initpart/sbp=error@1+; refine/level=delay:5ms@p0.25
//
// Each directive names a site and an action kind — "panic", "error" or
// "delay:<duration>" — plus an optional trigger after "@": "N" fires on
// exactly the Nth hit of the site (the default is 1), "N+" fires on the
// Nth hit and every one after, "pF" fires with probability F per hit
// (using the plan's seed), and "*" fires on every hit.
package faults

import (
	"fmt"
	"math/rand"
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Injection site names. Each is a point where the engine or the service
// consults the injector; docs/RELIABILITY.md documents what firing each
// one exercises.
const (
	// SiteEngineBisect fires at the start of every multilevel bisection
	// V-cycle (including each best-of-NCuts trial, parallel or not).
	SiteEngineBisect = "engine/bisect"
	// SiteCoarsenLevel fires at every coarsening level boundary; an
	// injected error stops coarsening early (a valid, shallower
	// hierarchy), a panic unwinds to the engine boundary.
	SiteCoarsenLevel = "coarsen/level"
	// SiteCoarsenMatch fires after every matching; an injected error
	// forces the "matching stalled" path (and with HCM, the HEM
	// fallback).
	SiteCoarsenMatch = "coarsen/match"
	// SiteInitPart fires right before the coarsest-graph partition.
	SiteInitPart = "initpart/partition"
	// SiteInitSBP fires inside every SBP trial; an injected error forces
	// the Lanczos non-convergence path (the GGGP fallback).
	SiteInitSBP = "initpart/sbp"
	// SiteRefineLevel fires before each level's 2-way refinement; an
	// injected error or a recovered panic keeps the projected partition.
	SiteRefineLevel = "refine/level"
	// SiteKWayLevel fires before each level's k-way refinement pass.
	SiteKWayLevel = "kway/level"
	// SiteKWayPass fires at every pass boundary inside boundary k-way
	// refinement (BKWAY); an injected error abandons the remaining passes
	// of the level, keeping the moves committed so far (always a valid,
	// balanced partition).
	SiteKWayPass = "kway/pass"
	// SiteServiceWorker fires inside the service worker slot right before
	// the computation starts.
	SiteServiceWorker = "service/worker"
	// SiteCycle fires at the start of every extra multilevel cycle of an
	// iterated (eco/strong preset) run; an injected error or panic degrades
	// the run to the best completed cycle's partition — never a hard error.
	SiteCycle = "cycle"
	// SiteJobRun fires inside an asynchronous job's runner right before
	// the computation starts (after the worker slot is acquired); an
	// injected panic or error finishes the job as failed with the same
	// wire error the synchronous endpoint would return.
	SiteJobRun = "jobs/run"
	// SiteSessionApply fires inside a resident graph session right before
	// a delta batch mutates the graph; an injected error or panic rolls
	// the whole batch back — the session's graph, partition and delta log
	// are exactly as if the batch never arrived.
	SiteSessionApply = "session/apply"
	// SiteSessionRepair fires at the start of every session repair (any
	// tier); an injected error or panic leaves the incumbent partition
	// untouched, with the drift that triggered the repair still pending
	// so a later batch or explicit repartition retries it.
	SiteSessionRepair = "session/repair"
)

// Sites lists every known injection site, sorted.
func Sites() []string {
	s := []string{
		SiteEngineBisect,
		SiteCoarsenLevel,
		SiteCoarsenMatch,
		SiteInitPart,
		SiteInitSBP,
		SiteRefineLevel,
		SiteKWayLevel,
		SiteKWayPass,
		SiteServiceWorker,
		SiteCycle,
		SiteJobRun,
		SiteSessionApply,
		SiteSessionRepair,
	}
	sort.Strings(s)
	return s
}

// PanicError is a panic recovered at a Boundary, carrying the site name,
// the original panic value and the goroutine stack at recovery time. It
// is how a crash inside the engine surfaces as a typed error a handler
// can log (with the stack) and map to a 500.
type PanicError struct {
	// Site is the boundary that recovered the panic.
	Site string
	// Value is the original panic value.
	Value any
	// Stack is the formatted stack of the panicking goroutine.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic at %s: %v", e.Site, e.Value)
}

// InjectedError is the error fired by an "error"-kind injection rule.
// Real failures never produce it, so tests can assert an error came from
// the plan and handlers can treat it like an internal fault.
type InjectedError struct {
	// Site is the injection site that fired.
	Site string
	// Hit is the 1-based hit count at which the rule fired.
	Hit int64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected error at %s (hit %d)", e.Site, e.Hit)
}

// injectedPanic is the value thrown by a "panic"-kind rule; Boundary and
// AsPanic preserve it like any other panic value.
type injectedPanic struct {
	site string
	hit  int64
}

func (p injectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic at %s (hit %d)", p.site, p.hit)
}

// AsPanic converts a recovered panic value into a *PanicError attributed
// to site. A value that already is a *PanicError is returned unchanged,
// so nested boundaries attribute the panic to the innermost site.
func AsPanic(site string, r any) *PanicError {
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	return &PanicError{Site: site, Value: r, Stack: debug.Stack()}
}

// Boundary runs fn and converts a panic into a *PanicError attributed to
// site; a normal return passes fn's error through. It is the recovery
// point wrapped around a unit of work whose crash must not take the
// process down (a request handler, a worker body).
func Boundary(site string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = AsPanic(site, r)
		}
	}()
	return fn()
}

// kind discriminates what a rule does when it fires.
type kind int

const (
	kindPanic kind = iota
	kindError
	kindDelay
)

// rule is one parsed plan directive.
type rule struct {
	kind  kind
	delay time.Duration // kindDelay only
	// Exactly one trigger is active: hit (exact), from (onward), or
	// prob (per-hit probability).
	hit  int64
	from int64
	prob float64
}

func (r *rule) fires(n int64, rng *rand.Rand) bool {
	switch {
	case r.prob > 0:
		return rng.Float64() < r.prob
	case r.from > 0:
		return n >= r.from
	default:
		return n == r.hit
	}
}

// Injector fires configured faults at named sites. It is safe for
// concurrent use; per-site hit counters are shared across every
// computation using the injector, which is what lets a server-level plan
// poison exactly the first request that reaches a site and no other.
// The zero-value method set on a nil *Injector does nothing.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	hits  map[string]int64
	rules map[string][]*rule
}

// Parse builds an Injector from a fault plan (see the package comment
// for the grammar). An empty or all-whitespace plan yields a nil
// Injector — the zero-cost off state.
func Parse(plan string) (*Injector, error) {
	var (
		in   *Injector
		seed int64 = 1
	)
	for _, dir := range strings.Split(plan, ";") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		eq := strings.Index(dir, "=")
		if eq <= 0 {
			return nil, fmt.Errorf("faults: directive %q is not site=action", dir)
		}
		name, action := strings.TrimSpace(dir[:eq]), strings.TrimSpace(dir[eq+1:])
		if name == "seed" {
			v, err := strconv.ParseInt(action, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", action, err)
			}
			seed = v
			continue
		}
		r, err := parseRule(action)
		if err != nil {
			return nil, fmt.Errorf("faults: site %s: %v", name, err)
		}
		if in == nil {
			in = &Injector{hits: make(map[string]int64), rules: make(map[string][]*rule)}
		}
		in.rules[name] = append(in.rules[name], r)
	}
	if in != nil {
		in.rng = rand.New(rand.NewSource(seed))
	}
	return in, nil
}

// MustParse is Parse for tests and constants; it panics on a bad plan.
func MustParse(plan string) *Injector {
	in, err := Parse(plan)
	if err != nil {
		panic(err)
	}
	return in
}

func parseRule(action string) (*rule, error) {
	trigger := ""
	if at := strings.LastIndex(action, "@"); at >= 0 {
		action, trigger = action[:at], action[at+1:]
	}
	r := &rule{}
	switch {
	case action == "panic":
		r.kind = kindPanic
	case action == "error":
		r.kind = kindError
	case strings.HasPrefix(action, "delay:"):
		d, err := time.ParseDuration(action[len("delay:"):])
		if err != nil {
			return nil, fmt.Errorf("bad delay %q: %v", action, err)
		}
		if d < 0 {
			return nil, fmt.Errorf("negative delay %q", action)
		}
		r.kind = kindDelay
		r.delay = d
	default:
		return nil, fmt.Errorf("unknown action %q (want panic, error or delay:<duration>)", action)
	}
	switch {
	case trigger == "":
		r.hit = 1
	case trigger == "*":
		r.from = 1
	case strings.HasPrefix(trigger, "p"):
		p, err := strconv.ParseFloat(trigger[1:], 64)
		if err != nil || p <= 0 || p > 1 {
			return nil, fmt.Errorf("bad probability trigger %q (want p0<F<=1)", trigger)
		}
		r.prob = p
	case strings.HasSuffix(trigger, "+"):
		n, err := strconv.ParseInt(trigger[:len(trigger)-1], 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad trigger %q (want N>=1)", trigger)
		}
		r.from = n
	default:
		n, err := strconv.ParseInt(trigger, 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad trigger %q (want N, N+, pF or *)", trigger)
		}
		r.hit = n
	}
	return r, nil
}

// Fire consults the injector at a named site. It returns nil and does
// nothing when no rule fires (always, on a nil receiver); otherwise it
// sleeps (delay rules), returns an *InjectedError (error rules), or
// panics with a value AsPanic attributes to the site (panic rules).
func (in *Injector) Fire(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.hits[site]++
	n := in.hits[site]
	var act *rule
	for _, r := range in.rules[site] {
		if r.fires(n, in.rng) {
			act = r
			break
		}
	}
	in.mu.Unlock()
	if act == nil {
		return nil
	}
	switch act.kind {
	case kindDelay:
		time.Sleep(act.delay)
		return nil
	case kindError:
		return &InjectedError{Site: site, Hit: n}
	default:
		panic(injectedPanic{site: site, hit: n})
	}
}

// HitCount reports how many times Fire has been called for site. Tests
// use it to assert a plan's site was actually reached.
func (in *Injector) HitCount(site string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

var (
	envOnce sync.Once
	envInj  *Injector
)

// Default returns the process-wide injector parsed once from the
// MLPART_FAULTS environment variable, or nil when it is unset or
// invalid (an invalid plan is reported to stderr and ignored — a bad
// fault plan must never take real traffic down).
func Default() *Injector {
	envOnce.Do(func() {
		plan := os.Getenv("MLPART_FAULTS")
		if plan == "" {
			return
		}
		in, err := Parse(plan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlpart: ignoring MLPART_FAULTS: %v\n", err)
			return
		}
		envInj = in
	})
	return envInj
}
