package multilevel

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"mlpart/internal/coarsen"
	"mlpart/internal/faults"
	"mlpart/internal/matgen"
	"mlpart/internal/trace"
)

// TestGoldenPresetMatrix pins the fixed-seed edge-cut of the eco and
// strong presets crossed with both matching schemes on two Table-2
// workloads, next to the fast baseline (which must keep matching
// TestGoldenMatrix's BKLGR column — cycle 0 of an iterated run is the
// plain V-cycle, bit for bit). Extra cycles only ever adopt a strictly
// better partition, so each row must be monotonically non-increasing
// left to right.
func TestGoldenPresetMatrix(t *testing.T) {
	graphs := map[string]*matgen.Named{}
	for _, name := range []string{"BRCK", "WAVE"} {
		w, err := matgen.Generate(name, 0.04)
		if err != nil {
			t.Fatal(err)
		}
		graphs[name] = &w
	}
	cases := []struct {
		workload string
		matching coarsen.Scheme
		fast     int
		eco      int
		strong   int
	}{
		{"BRCK", coarsen.RM, 461, 448, 446},
		{"BRCK", coarsen.HEM, 472, 465, 457},
		{"WAVE", coarsen.RM, 894, 878, 872},
		{"WAVE", coarsen.HEM, 934, 923, 894},
	}
	for _, tc := range cases {
		cuts := map[Preset]int{}
		for _, p := range []Preset{PresetFast, PresetEco, PresetStrong} {
			res, err := Partition(graphs[tc.workload].Graph, 8,
				Options{Seed: 3, Preset: p}.WithMatching(tc.matching))
			if err != nil {
				t.Fatalf("%s/%s/%s: %v", tc.workload, tc.matching, p, err)
			}
			cuts[p] = res.EdgeCut
			if want := p.cycles(); res.Stats.Cycles != want {
				t.Errorf("%s/%s/%s: completed %d cycles, want %d",
					tc.workload, tc.matching, p, res.Stats.Cycles, want)
			}
		}
		if cuts[PresetFast] != tc.fast || cuts[PresetEco] != tc.eco || cuts[PresetStrong] != tc.strong {
			t.Errorf("%s/%s: cuts fast=%d eco=%d strong=%d, want %d/%d/%d",
				tc.workload, tc.matching,
				cuts[PresetFast], cuts[PresetEco], cuts[PresetStrong],
				tc.fast, tc.eco, tc.strong)
		}
		if cuts[PresetEco] > cuts[PresetFast] || cuts[PresetStrong] > cuts[PresetEco] {
			t.Errorf("%s/%s: preset cuts not monotone: fast=%d eco=%d strong=%d",
				tc.workload, tc.matching, cuts[PresetFast], cuts[PresetEco], cuts[PresetStrong])
		}
	}
}

// cycles is a test-only helper mapping a preset to its cycle count.
func (p Preset) cycles() int { return Options{Preset: p}.CycleCount() }

// TestPresetWorkerParity asserts the determinism contract under iterated
// cycles: the partition vector is bit-identical for any RefineWorkers
// count, on both the recursive and the direct k-way paths. Extra cycles
// use the propose-parallel/commit-serial boundary k-way engine, so this
// holds by construction — this test keeps it held.
func TestPresetWorkerParity(t *testing.T) {
	w, err := matgen.Generate("BRCK", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	recSerial, err := Partition(w.Graph, 8, Options{Seed: 3, Preset: PresetStrong})
	if err != nil {
		t.Fatal(err)
	}
	kwSerial, err := PartitionKWay(w.Graph, 16, Options{Seed: 3, Preset: PresetStrong})
	if err != nil {
		t.Fatal(err)
	}
	if kwSerial.EdgeCut != 671 {
		t.Errorf("direct k-way strong: cut=%d, want 671", kwSerial.EdgeCut)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		rec, err := Partition(w.Graph, 8,
			Options{Seed: 3, Preset: PresetStrong, RefineWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rec.Where, recSerial.Where) {
			t.Errorf("recursive RefineWorkers=%d: partition diverges from serial (cut %d vs %d)",
				workers, rec.EdgeCut, recSerial.EdgeCut)
		}
		kw, err := PartitionKWay(w.Graph, 16,
			Options{Seed: 3, Preset: PresetStrong, RefineWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(kw.Where, kwSerial.Where) {
			t.Errorf("direct RefineWorkers=%d: partition diverges from serial (cut %d vs %d)",
				workers, kw.EdgeCut, kwSerial.EdgeCut)
		}
	}
}

// cancelOnCycle is a tracer that cancels a context the moment it sees the
// cycle-completion event for the given cycle index — i.e. exactly at a
// cycle boundary, the only place the iterated driver polls the context.
type cancelOnCycle struct {
	cycle  int
	cancel context.CancelFunc
}

func (c *cancelOnCycle) Event(e trace.Event) {
	if e.Kind == trace.KindCycle && e.Cycle == c.cycle {
		c.cancel()
	}
}

// TestCycleCancelBetweenCycles cancels the context right after the first
// extra cycle completes. The contract: the run succeeds (no error), the
// best completed partition is returned, the abandoned cycles are NOT
// reported as degradations (the caller asked to stop; nothing fell back),
// and Stats.Cycles reports only what actually ran.
func TestCycleCancelBetweenCycles(t *testing.T) {
	w, err := matgen.Generate("BRCK", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	g := w.Graph
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := Partition(g, 8, Options{
		Seed:    3,
		Preset:  PresetStrong,
		Context: ctx,
		Tracer:  &cancelOnCycle{cycle: 1, cancel: cancel},
	})
	if err != nil {
		t.Fatalf("cancel between cycles must not fail the run: %v", err)
	}
	verifyResult(t, res, g.NumVertices(), 8)
	if res.Stats.Cycles != 2 {
		t.Errorf("Stats.Cycles = %d, want 2 (cycle 0 plus the one completed extra cycle)", res.Stats.Cycles)
	}
	if d := findDegradation(res.Stats.Degradations, "cycle", "best-completed"); d != nil {
		t.Errorf("cancellation was misreported as a degradation: %+v", *d)
	}
	// The returned cut must be the best of the completed cycles: no worse
	// than eco's pinned cut for this workload (both completed cycle 1).
	eco, err := Partition(g, 8, Options{Seed: 3, Preset: PresetEco})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut != eco.EdgeCut {
		t.Errorf("cut after cancel = %d, want eco's %d (same two cycles completed)", res.EdgeCut, eco.EdgeCut)
	}
}

// TestChaosCycleError injects a fault into the first extra cycle of an
// eco run and asserts the degradation ladder: the run still succeeds,
// returns exactly the prior (fast) cycle's partition, and records a
// "cycle" degradation instead of surfacing the error.
func TestChaosCycleError(t *testing.T) {
	w, err := matgen.Generate("BRCK", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	g := w.Graph
	fast, err := Partition(g, 8, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range []string{"cycle=error@1", "cycle=panic@1"} {
		tr := &collectTracer{}
		res, err := Partition(g, 8, Options{
			Seed:     3,
			Preset:   PresetEco,
			Injector: faults.MustParse(plan),
			Tracer:   tr,
		})
		if err != nil {
			t.Fatalf("%s: injected cycle fault must degrade, not fail: %v", plan, err)
		}
		verifyResult(t, res, g.NumVertices(), 8)
		if !reflect.DeepEqual(res.Where, fast.Where) {
			t.Errorf("%s: degraded result is not the prior cycle's partition (cut %d, fast %d)",
				plan, res.EdgeCut, fast.EdgeCut)
		}
		if res.Stats.Cycles != 1 {
			t.Errorf("%s: Stats.Cycles = %d, want 1", plan, res.Stats.Cycles)
		}
		d := findDegradation(res.Stats.Degradations, "cycle", "best-completed")
		if d == nil {
			t.Fatalf("%s: no cycle degradation recorded; got %+v", plan, res.Stats.Degradations)
		}
		if d.From != "cycle-1" {
			t.Errorf("%s: degradation From = %q, want cycle-1", plan, d.From)
		}
		if strings.Contains(plan, "panic") && !strings.Contains(d.Reason, "panic") {
			t.Errorf("%s: degradation reason %q does not mention the panic", plan, d.Reason)
		}
		if len(tr.degraded()) == 0 {
			t.Errorf("%s: no degraded trace event emitted", plan)
		}
	}
}

// TestCycleTraceEvents asserts the KindCycle stream: one event per
// completed cycle (including cycle 0's baseline), carrying the cycle
// index and the cut after that cycle, and none at all under fast.
func TestCycleTraceEvents(t *testing.T) {
	w, err := matgen.Generate("BRCK", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	tr := &collectTracer{}
	res, err := Partition(w.Graph, 8, Options{Seed: 3, Preset: PresetStrong, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	var cycles []trace.Event
	for _, e := range tr.events {
		if e.Kind == trace.KindCycle {
			cycles = append(cycles, e)
		}
	}
	if len(cycles) != 4 {
		t.Fatalf("got %d cycle events, want 4", len(cycles))
	}
	best := cycles[0].Cut
	for i, e := range cycles {
		if e.Cycle != i {
			t.Errorf("event %d: Cycle = %d, want %d", i, e.Cycle, i)
		}
		if e.Cut < best {
			best = e.Cut
		}
	}
	if best != res.EdgeCut {
		t.Errorf("best cycle cut %d != result cut %d", best, res.EdgeCut)
	}

	tr = &collectTracer{}
	if _, err := Partition(w.Graph, 8, Options{Seed: 3, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.events {
		if e.Kind == trace.KindCycle {
			t.Fatalf("fast preset emitted a cycle event: %+v", e)
		}
	}
}

// TestCycleCountResolution pins the preset → cycle-count mapping and the
// explicit-override rule, both on Options and end-to-end in Stats.
func TestCycleCountResolution(t *testing.T) {
	for _, tc := range []struct {
		opts Options
		want int
	}{
		{Options{}, 1},
		{Options{Preset: PresetFast}, 1},
		{Options{Preset: PresetEco}, 2},
		{Options{Preset: PresetStrong}, 4},
		{Options{Preset: PresetEco, Cycles: 3}, 3},
		{Options{Cycles: 7}, 7},
	} {
		if got := tc.opts.CycleCount(); got != tc.want {
			t.Errorf("CycleCount(%+v) = %d, want %d", tc.opts, got, tc.want)
		}
	}
	if _, err := ParsePreset("turbo"); err == nil {
		t.Error("ParsePreset accepted an unknown preset name")
	}
	if err := (Options{Cycles: -1}).Validate(); err == nil {
		t.Error("Validate accepted a negative cycle count")
	}

	w, err := matgen.Generate("BRCK", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(w.Graph, 8, Options{Seed: 3, Cycles: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles != 3 {
		t.Errorf("explicit Cycles=3 completed %d cycles", res.Stats.Cycles)
	}
}
