package multilevel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/coarsen"
	"mlpart/internal/initpart"
	"mlpart/internal/matgen"
	"mlpart/internal/refine"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestBisectGridQuality(t *testing.T) {
	// 32x32 grid: optimal bisection cuts 32 edges; the multilevel scheme
	// should land within 2x of optimal.
	g := matgen.Grid2D(32, 32)
	b, stats := Bisect(g, 0, Options{Seed: 1}, rng(1))
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
	if b.Cut > 64 {
		t.Errorf("cut = %d, want <= 64", b.Cut)
	}
	if bal := b.Balance(); bal > 1.06 {
		t.Errorf("balance = %v", bal)
	}
	if stats.Levels < 2 || stats.CoarsestN > 200 {
		t.Errorf("suspicious stats: %+v", stats)
	}
}

func TestBisectAllPhaseCombos(t *testing.T) {
	g := matgen.Mesh2DTri(20, 20, 0.02, 2)
	for _, m := range []coarsen.Scheme{coarsen.RM, coarsen.HEM, coarsen.LEM, coarsen.HCM} {
		for _, ip := range []initpart.Method{initpart.GGGP, initpart.GGP, initpart.SBP} {
			for _, rp := range []refine.Policy{refine.NoRefine, refine.GR, refine.KLR, refine.BGR, refine.BKLR, refine.BKLGR} {
				opts := Options{Seed: 3, InitMethod: ip}.WithMatching(m).WithRefinement(rp)
				b, _ := Bisect(g, 0, opts, rng(3))
				if err := b.Verify(); err != nil {
					t.Fatalf("%v/%v/%v: %v", m, ip, rp, err)
				}
				if b.Cut <= 0 || b.Cut > g.NumEdges() {
					t.Fatalf("%v/%v/%v: cut = %d", m, ip, rp, b.Cut)
				}
			}
		}
	}
}

func TestRefinementImprovesOverNone(t *testing.T) {
	g := matgen.FE3DTetra(10, 10, 10, 4)
	none, _ := Bisect(g, 0, Options{Seed: 5}.WithRefinement(refine.NoRefine), rng(5))
	bklgr, _ := Bisect(g, 0, Options{Seed: 5}.WithRefinement(refine.BKLGR), rng(5))
	if bklgr.Cut >= none.Cut {
		t.Errorf("refined cut %d not better than unrefined %d", bklgr.Cut, none.Cut)
	}
}

func TestPartitionKWay(t *testing.T) {
	g := matgen.Mesh2DTri(30, 30, 0, 6)
	for _, k := range []int{2, 3, 7, 8, 32} {
		res, err := Partition(g, k, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if got := refine.ComputeCut(g, res.Where); got != res.EdgeCut {
			t.Fatalf("k=%d: EdgeCut %d, recomputed %d", k, res.EdgeCut, got)
		}
		for v, p := range res.Where {
			if p < 0 || p >= k {
				t.Fatalf("k=%d: vertex %d in part %d", k, v, p)
			}
		}
		if bal := res.Balance(); bal > 1.35 {
			t.Errorf("k=%d: balance %v", k, bal)
		}
		if res.Stats.Bisections != k-1 {
			t.Errorf("k=%d: %d bisections, want %d", k, res.Stats.Bisections, k-1)
		}
	}
}

func TestPartitionK1(t *testing.T) {
	g := matgen.Grid2D(5, 5)
	res, err := Partition(g, 1, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut != 0 {
		t.Fatalf("k=1 cut = %d", res.EdgeCut)
	}
	for _, p := range res.Where {
		if p != 0 {
			t.Fatal("k=1 assigned nonzero part")
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	g := matgen.Grid2D(3, 3)
	if _, err := Partition(g, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Partition(g, 100, Options{}); err == nil {
		t.Error("k > n accepted")
	}
}

func TestDeterminism(t *testing.T) {
	g := matgen.FE3DTetra(8, 8, 8, 8)
	a, err := Partition(g, 8, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, 8, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Where {
		if a.Where[v] != b.Where[v] {
			t.Fatal("same seed produced different partitions")
		}
	}
	c, _ := Partition(g, 8, Options{Seed: 43})
	same := true
	for v := range a.Where {
		if a.Where[v] != c.Where[v] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical partitions (suspicious)")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	g := matgen.Mesh2DTri(60, 60, 0.01, 9)
	seq, err := Partition(g, 16, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Partition(g, 16, Options{Seed: 11, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.EdgeCut != par.EdgeCut {
		t.Fatalf("parallel cut %d != sequential cut %d", par.EdgeCut, seq.EdgeCut)
	}
	for v := range seq.Where {
		if seq.Where[v] != par.Where[v] {
			t.Fatal("parallel and sequential partitions differ")
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	g := matgen.Grid2D(40, 40)
	res, err := Partition(g, 8, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.CoarsenTime <= 0 || s.UncoarsenTime() <= 0 {
		t.Errorf("timings not recorded: %+v", s)
	}
	if s.Levels == 0 || s.InitialCut == 0 {
		t.Errorf("stats not recorded: %+v", s)
	}
}

func TestKWayQualityVsNaive(t *testing.T) {
	// Multilevel 8-way must beat a striped partition on a mesh with holes.
	g := matgen.Mesh2DTri(40, 40, 0.03, 14)
	n := g.NumVertices()
	naive := make([]int, n)
	for v := 0; v < n; v++ {
		naive[v] = v * 8 / n
	}
	res, err := Partition(g, 8, Options{Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut >= refine.ComputeCut(g, naive) {
		t.Errorf("multilevel cut %d no better than striping %d",
			res.EdgeCut, refine.ComputeCut(g, naive))
	}
}

func TestOptionExplicitZeroValues(t *testing.T) {
	// WithMatching(RM) and WithRefinement(NoRefine) must not be silently
	// replaced by the defaults.
	o := Options{}.WithMatching(coarsen.RM).WithRefinement(refine.NoRefine).withDefaults()
	if o.Matching != coarsen.RM {
		t.Error("explicit RM overridden")
	}
	if o.Refinement != refine.NoRefine {
		t.Error("explicit NoRefine overridden")
	}
	d := Options{}.withDefaults()
	if d.Matching != coarsen.HEM || d.Refinement != refine.BKLGR {
		t.Error("defaults wrong")
	}
}

// Property: partitions are complete (every vertex assigned), weights add
// up, and the cut is consistent, across random graphs and k.
func TestPartitionPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := matgen.FE3DTetra(6, 6, 5, seed)
		k := 2 + int(uint64(seed)%7)
		res, err := Partition(g, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		tot := 0
		for _, w := range res.PartWeights {
			tot += w
		}
		if tot != g.TotalVertexWeight() {
			return false
		}
		return refine.ComputeCut(g, res.Where) == res.EdgeCut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestNCutsImproves(t *testing.T) {
	// Best-of-4 must be no worse than a single run with the same RNG
	// stream start, in aggregate over seeds.
	sum1, sum4 := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		g := matgen.Mesh2DTri(20, 20, 0.03, seed)
		a, _ := Bisect(g, 0, Options{Seed: seed}, rng(seed))
		b, _ := Bisect(g, 0, Options{Seed: seed, NCuts: 4}, rng(seed))
		sum1 += a.Cut
		sum4 += b.Cut
		if err := b.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	if sum4 > sum1 {
		t.Fatalf("NCuts=4 aggregate %d worse than single %d", sum4, sum1)
	}
}

func TestNCutsStatsAccumulate(t *testing.T) {
	g := matgen.Grid2D(20, 20)
	_, s1 := Bisect(g, 0, Options{Seed: 1}, rng(1))
	_, s4 := Bisect(g, 0, Options{Seed: 1, NCuts: 4}, rng(1))
	if s4.CoarsenTime < s1.CoarsenTime {
		t.Error("NCuts stats not accumulated")
	}
	if s4.Bisections != 1 {
		t.Errorf("Bisections = %d, want 1", s4.Bisections)
	}
}

func TestPartitionWeighted(t *testing.T) {
	g := matgen.Mesh2DTri(30, 30, 0, 20)
	tot := g.TotalVertexWeight()
	fractions := []float64{0.5, 0.25, 0.125, 0.125}
	res, err := PartitionWeighted(g, fractions, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for p, f := range fractions {
		want := f * float64(tot)
		got := float64(res.PartWeights[p])
		if got < 0.85*want || got > 1.15*want {
			t.Errorf("part %d weight %v, want ~%v", p, got, want)
		}
	}
	if got := refine.ComputeCut(g, res.Where); got != res.EdgeCut {
		t.Fatalf("cut %d, recomputed %d", res.EdgeCut, got)
	}
}

func TestPartitionWeightedNormalizes(t *testing.T) {
	g := matgen.Grid2D(12, 12)
	a, err := PartitionWeighted(g, []float64{1, 1}, Options{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionWeighted(g, []float64{10, 10}, Options{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if a.EdgeCut != b.EdgeCut {
		t.Fatal("normalization broken")
	}
}

func TestPartitionWeightedErrors(t *testing.T) {
	g := matgen.Grid2D(3, 3)
	if _, err := PartitionWeighted(g, nil, Options{}); err == nil {
		t.Error("empty fractions accepted")
	}
	if _, err := PartitionWeighted(g, []float64{1, -1}, Options{}); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := PartitionWeighted(g, make([]float64, 99), Options{}); err == nil {
		t.Error("k > n accepted")
	}
}

func TestCoarsenWorkersOption(t *testing.T) {
	g := matgen.FE3DTetra(8, 8, 8, 23)
	a, _ := Bisect(g, 0, Options{Seed: 24, CoarsenWorkers: 4}, rng(24))
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	// Deterministic for any worker count.
	b, _ := Bisect(g, 0, Options{Seed: 24, CoarsenWorkers: 2}, rng(24))
	if a.Cut != b.Cut {
		t.Fatalf("worker count changed the result: %d vs %d", a.Cut, b.Cut)
	}
	// Quality comparable to the sequential matching (within 25%).
	c, _ := Bisect(g, 0, Options{Seed: 24}, rng(24))
	if float64(a.Cut) > 1.25*float64(c.Cut)+10 {
		t.Errorf("parallel-coarsened cut %d far above sequential %d", a.Cut, c.Cut)
	}
}
