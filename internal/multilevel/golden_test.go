package multilevel

import (
	"math/rand"
	"reflect"
	"testing"

	"mlpart/internal/matgen"
)

// The engine refactor (engine.go) must not change any fixed-seed result:
// these edge-cuts and part weights were captured from the pre-engine
// drivers (commit 626f8a4) and pin Bisect, Partition, PartitionKWay and
// PartitionWeighted bit-for-bit.

func TestGoldenBisect(t *testing.T) {
	g1 := matgen.Mesh2DTri(30, 30, 0.02, 4)
	g2 := matgen.FE3DTetra(8, 8, 8, 2)

	b, _ := Bisect(g1, 0, Options{Seed: 7}, rand.New(rand.NewSource(7)))
	if b.Cut != 57 || b.Pwgt[0] != 440 || b.Pwgt[1] != 440 {
		t.Errorf("Bisect(g1): cut=%d pwgt=%v, want cut=57 pwgt=[440 440]", b.Cut, b.Pwgt)
	}

	b, _ = Bisect(g2, 0, Options{Seed: 7, NCuts: 3}, rand.New(rand.NewSource(7)))
	if b.Cut != 142 || b.Pwgt[0] != 256 || b.Pwgt[1] != 256 {
		t.Errorf("Bisect(g2, NCuts=3): cut=%d pwgt=%v, want cut=142 pwgt=[256 256]", b.Cut, b.Pwgt)
	}
}

func TestGoldenPartition(t *testing.T) {
	g1 := matgen.Mesh2DTri(30, 30, 0.02, 4)
	g3 := matgen.CircuitPowerLaw(1500, 3, 9)

	cases := []struct {
		name    string
		run     func() (*Result, error)
		wantCut int
		wantPW  []int
	}{
		{"Partition(g1,5)", func() (*Result, error) { return Partition(g1, 5, Options{Seed: 11}) },
			145, []int{175, 176, 175, 177, 177}},
		{"Partition(g1,8)", func() (*Result, error) { return Partition(g1, 8, Options{Seed: 11}) },
			192, []int{110, 110, 110, 110, 109, 110, 110, 111}},
		{"Partition(g3,5,KWayRefine)", func() (*Result, error) { return Partition(g3, 5, Options{Seed: 11, KWayRefine: true}) },
			1862, []int{300, 299, 300, 300, 301}},
		{"Partition(g3,8,KWayRefine)", func() (*Result, error) { return Partition(g3, 8, Options{Seed: 11, KWayRefine: true}) },
			2094, []int{187, 188, 187, 188, 187, 188, 187, 188}},
	}
	for _, tc := range cases {
		res, err := tc.run()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.EdgeCut != tc.wantCut || !reflect.DeepEqual(res.PartWeights, tc.wantPW) {
			t.Errorf("%s: cut=%d pw=%v, want cut=%d pw=%v",
				tc.name, res.EdgeCut, res.PartWeights, tc.wantCut, tc.wantPW)
		}
	}
}

func TestGoldenPartitionKWay(t *testing.T) {
	g2 := matgen.FE3DTetra(8, 8, 8, 2)

	res, err := PartitionKWay(g2, 7, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut != 397 || !reflect.DeepEqual(res.PartWeights, []int{74, 66, 76, 74, 75, 72, 75}) {
		t.Errorf("PartitionKWay(g2,7): cut=%d pw=%v, want cut=397 pw=[74 66 76 74 75 72 75]",
			res.EdgeCut, res.PartWeights)
	}

	res, err = PartitionKWay(g2, 16, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	wantPW := []int{33, 33, 32, 33, 33, 25, 33, 33, 30, 32, 32, 32, 33, 33, 33, 32}
	if res.EdgeCut != 631 || !reflect.DeepEqual(res.PartWeights, wantPW) {
		t.Errorf("PartitionKWay(g2,16): cut=%d pw=%v, want cut=631 pw=%v",
			res.EdgeCut, res.PartWeights, wantPW)
	}
}

func TestGoldenPartitionWeighted(t *testing.T) {
	g1 := matgen.Mesh2DTri(30, 30, 0.02, 4)
	g2 := matgen.FE3DTetra(8, 8, 8, 2)

	res, err := PartitionWeighted(g1, []float64{4, 2, 1, 1}, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut != 104 || !reflect.DeepEqual(res.PartWeights, []int{440, 220, 110, 110}) {
		t.Errorf("PartitionWeighted(g1): cut=%d pw=%v, want cut=104 pw=[440 220 110 110]",
			res.EdgeCut, res.PartWeights)
	}

	res, err = PartitionWeighted(g2, []float64{1, 2, 3}, Options{Seed: 13, NCuts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut != 201 || !reflect.DeepEqual(res.PartWeights, []int{84, 170, 258}) {
		t.Errorf("PartitionWeighted(g2, NCuts=2): cut=%d pw=%v, want cut=201 pw=[84 170 258]",
			res.EdgeCut, res.PartWeights)
	}
}
