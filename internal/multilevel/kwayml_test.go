package multilevel

import (
	"testing"

	"mlpart/internal/matgen"
	"mlpart/internal/refine"
)

func TestPartitionKWayBasics(t *testing.T) {
	g := matgen.Mesh2DTri(30, 30, 0.02, 1)
	for _, k := range []int{2, 8, 32} {
		res, err := PartitionKWay(g, k, Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if got := refine.ComputeCut(g, res.Where); got != res.EdgeCut {
			t.Fatalf("k=%d: cut %d, recomputed %d", k, res.EdgeCut, got)
		}
		tot := 0
		for p, w := range res.PartWeights {
			if w <= 0 {
				t.Errorf("k=%d: part %d weight %d", k, p, w)
			}
			tot += w
		}
		if tot != g.TotalVertexWeight() {
			t.Fatalf("k=%d: weights sum to %d", k, tot)
		}
		if bal := res.Balance(); bal > 1.4 {
			t.Errorf("k=%d: balance %v", k, bal)
		}
	}
}

func TestPartitionKWayK1(t *testing.T) {
	g := matgen.Grid2D(4, 4)
	res, err := PartitionKWay(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut != 0 || res.PartWeights[0] != 16 {
		t.Fatalf("k=1: %+v", res)
	}
}

func TestPartitionKWayErrors(t *testing.T) {
	g := matgen.Grid2D(3, 3)
	if _, err := PartitionKWay(g, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PartitionKWay(g, 99, Options{}); err == nil {
		t.Error("k > n accepted")
	}
}

func TestPartitionKWayQualityNearRecursive(t *testing.T) {
	// Direct k-way should be within ~25% of recursive bisection quality on
	// aggregate (in exchange for a single coarsening pass).
	var direct, recursive int
	for seed := int64(0); seed < 4; seed++ {
		g := matgen.FE3DTetra(9, 9, 9, seed)
		d, err := PartitionKWay(g, 16, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		r, err := Partition(g, 16, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		direct += d.EdgeCut
		recursive += r.EdgeCut
	}
	if float64(direct) > 1.25*float64(recursive) {
		t.Errorf("direct k-way total %d vs recursive %d (> 1.25x)", direct, recursive)
	}
}

func TestPartitionKWayFasterForLargeK(t *testing.T) {
	// The whole point: one hierarchy instead of k-1. Compare coarsening
	// work via stats rather than flaky wall-clock.
	g := matgen.Mesh2DTri(50, 50, 0.01, 5)
	d, err := PartitionKWay(g, 64, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Partition(g, 64, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats.CoarsenTime >= r.Stats.CoarsenTime {
		t.Errorf("direct k-way coarsening %v not below recursive %v",
			d.Stats.CoarsenTime, r.Stats.CoarsenTime)
	}
}

func TestPartitionKWayDeterministic(t *testing.T) {
	g := matgen.FE3DTetra(7, 7, 7, 7)
	a, _ := PartitionKWay(g, 16, Options{Seed: 8})
	b, _ := PartitionKWay(g, 16, Options{Seed: 8})
	for v := range a.Where {
		if a.Where[v] != b.Where[v] {
			t.Fatal("PartitionKWay not deterministic")
		}
	}
}
