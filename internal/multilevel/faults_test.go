package multilevel

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"mlpart/internal/coarsen"
	"mlpart/internal/faults"
	"mlpart/internal/initpart"
	"mlpart/internal/matgen"
	"mlpart/internal/refine"
	"mlpart/internal/trace"
)

// collectTracer records events for assertions; it must be goroutine-safe
// because parallel branches emit concurrently.
type collectTracer struct {
	mu     sync.Mutex
	events []trace.Event
}

func (c *collectTracer) Event(e trace.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collectTracer) degraded() []trace.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []trace.Event
	for _, e := range c.events {
		if e.Kind == trace.KindDegraded {
			out = append(out, e)
		}
	}
	return out
}

// findDegradation returns the first recorded degradation matching phase
// and fallback target, or nil.
func findDegradation(ds []trace.Degradation, phase, to string) *trace.Degradation {
	for i := range ds {
		if ds[i].Phase == phase && ds[i].To == to {
			return &ds[i]
		}
	}
	return nil
}

// verifyResult asserts res is a complete, valid, reasonably balanced
// k-way partition — the contract every degraded run must still honor.
func verifyResult(t *testing.T, res *Result, n, k int) {
	t.Helper()
	if len(res.Where) != n {
		t.Fatalf("len(Where) = %d, want %d", len(res.Where), n)
	}
	for v, p := range res.Where {
		if p < 0 || p >= k {
			t.Fatalf("vertex %d in part %d (k=%d)", v, p, k)
		}
	}
	if bal := res.Balance(); bal > 1.5 {
		t.Errorf("balance = %v after degradation, want <= 1.5", bal)
	}
}

func TestChaosDegradeSBPToGGGP(t *testing.T) {
	g := matgen.Grid2D(24, 24)
	tr := &collectTracer{}
	res, err := Partition(g, 2, Options{
		Seed:       5,
		InitMethod: initpart.SBP,
		Injector:   faults.MustParse("initpart/sbp=error@1"),
		Tracer:     tr,
	})
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	verifyResult(t, res, 24*24, 2)
	d := findDegradation(res.Stats.Degradations, "initpart", "GGGP")
	if d == nil {
		t.Fatalf("no initpart->GGGP degradation recorded: %+v", res.Stats.Degradations)
	}
	if d.From != "SBP" || d.Reason == "" {
		t.Errorf("degradation = %+v, want From=SBP with a reason", d)
	}
	evs := tr.degraded()
	if len(evs) == 0 {
		t.Fatal("no degraded trace event emitted")
	}
	if evs[0].Phase != "initpart" || evs[0].FallbackTo != "GGGP" {
		t.Errorf("trace event = %+v, want initpart fallback to GGGP", evs[0])
	}
}

func TestChaosDegradeHCMToHEM(t *testing.T) {
	g := matgen.Mesh2DTri(24, 24, 0.02, 2)
	tr := &collectTracer{}
	res, err := Partition(g, 2, Options{
		Seed:     3,
		Injector: faults.MustParse("coarsen/match=error@1"),
		Tracer:   tr,
	}.WithMatching(coarsen.HCM))
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	verifyResult(t, res, g.NumVertices(), 2)
	d := findDegradation(res.Stats.Degradations, "coarsen", "HEM")
	if d == nil {
		t.Fatalf("no coarsen->HEM degradation recorded: %+v", res.Stats.Degradations)
	}
	if d.From != "HCM" {
		t.Errorf("degradation From = %q, want HCM", d.From)
	}
	if len(tr.degraded()) == 0 {
		t.Error("no degraded trace event emitted")
	}
}

// TestChaosDegradeGCLPToHEM forces the cluster coarsener off its happy
// path with the same coarsen/match fault the HCM test uses: the whole run
// must complete on HEM with the GCLP->HEM degradation recorded.
func TestChaosDegradeGCLPToHEM(t *testing.T) {
	g := matgen.Mesh2DTri(24, 24, 0.02, 2)
	tr := &collectTracer{}
	res, err := Partition(g, 2, Options{
		Seed:     3,
		Injector: faults.MustParse("coarsen/match=error@1"),
		Tracer:   tr,
	}.WithMatching(coarsen.GCLP))
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	verifyResult(t, res, g.NumVertices(), 2)
	d := findDegradation(res.Stats.Degradations, "coarsen", "HEM")
	if d == nil {
		t.Fatalf("no coarsen->HEM degradation recorded: %+v", res.Stats.Degradations)
	}
	if d.From != "GCLP" {
		t.Errorf("degradation From = %q, want GCLP", d.From)
	}
	if len(tr.degraded()) == 0 {
		t.Error("no degraded trace event emitted")
	}
}

func TestChaosDegradeRefineToProjected(t *testing.T) {
	g := matgen.Grid2D(24, 24)
	tr := &collectTracer{}
	res, err := Partition(g, 2, Options{
		Seed:     7,
		Injector: faults.MustParse("refine/level=error@1"),
		Tracer:   tr,
	})
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	verifyResult(t, res, 24*24, 2)
	d := findDegradation(res.Stats.Degradations, "refine", "projected")
	if d == nil {
		t.Fatalf("no refine->projected degradation recorded: %+v", res.Stats.Degradations)
	}
	if len(tr.degraded()) == 0 {
		t.Error("no degraded trace event emitted")
	}
}

func TestChaosDegradeKWayToProjected(t *testing.T) {
	g := matgen.Mesh2DTri(30, 30, 0, 6)
	tr := &collectTracer{}
	res, err := PartitionKWay(g, 8, Options{
		Seed:     9,
		Injector: faults.MustParse("kway/level=error@1"),
		Tracer:   tr,
	})
	if err != nil {
		t.Fatalf("PartitionKWay: %v", err)
	}
	verifyResult(t, res, g.NumVertices(), 8)
	d := findDegradation(res.Stats.Degradations, "kway", "projected")
	if d == nil {
		t.Fatalf("no kway->projected degradation recorded: %+v", res.Stats.Degradations)
	}
	if len(tr.degraded()) == 0 {
		t.Error("no degraded trace event emitted")
	}
}

func TestChaosCoarsenLevelShallowHierarchy(t *testing.T) {
	// Failing a coarsening level truncates the hierarchy; initial
	// partitioning then runs on a bigger coarsest graph, but the result
	// must still be complete and balanced.
	g := matgen.Grid2D(32, 32)
	res, err := Partition(g, 4, Options{
		Seed:     11,
		Injector: faults.MustParse("coarsen/level=error@2"),
	})
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	verifyResult(t, res, 32*32, 4)
}

// TestChaosNCutsTrialPanicFailsCleanly: a panic inside one parallel
// best-of-NCuts trial goroutine must surface as an error from Partition —
// never a process crash, never a silently partial result.
func TestChaosNCutsTrialPanic(t *testing.T) {
	g := matgen.Grid2D(48, 48)
	_, err := Partition(g, 2, Options{
		Seed:                1,
		Parallel:            true,
		NCuts:               4,
		ParallelMinVertices: 1,
		Injector:            faults.MustParse("engine/bisect=panic@1"),
	})
	if err == nil {
		t.Fatal("Partition succeeded despite an injected panic")
	}
	var pe *faults.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not unwrap to *faults.PanicError", err)
	}
	if pe.Site == "" {
		t.Errorf("recovered panic has no site: %+v", pe)
	}
}

// TestChaosInjectorParity: a plan that only delays (never panics or
// errors) must not change a single bit of the result, and neither must an
// explicitly nil injector — fault handling is free when dormant.
func TestChaosInjectorParity(t *testing.T) {
	g := matgen.FE3DTetra(8, 8, 8, 8)
	clean, err := Partition(g, 8, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := Partition(g, 8, Options{
		Seed:     42,
		Injector: faults.MustParse("refine/level=delay:100us@1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if clean.EdgeCut != delayed.EdgeCut || !reflect.DeepEqual(clean.Where, delayed.Where) {
		t.Errorf("delay-only plan changed the partition: cut %d vs %d", clean.EdgeCut, delayed.EdgeCut)
	}
	if len(delayed.Stats.Degradations) != 0 {
		t.Errorf("delay-only plan recorded degradations: %+v", delayed.Stats.Degradations)
	}
}

func TestValidateRejectsBadEnums(t *testing.T) {
	g := matgen.Grid2D(8, 8)
	if _, err := Partition(g, 2, Options{}.WithMatching(coarsen.Scheme(99))); err == nil {
		t.Error("matching scheme 99 accepted")
	}
	if _, err := Partition(g, 2, Options{InitMethod: initpart.Method(99)}); err == nil {
		t.Error("init method 99 accepted")
	}
	if _, err := Partition(g, 2, Options{}.WithRefinement(refine.Policy(99))); err == nil {
		t.Error("refinement policy 99 accepted")
	}
}
