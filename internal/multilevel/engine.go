package multilevel

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mlpart/internal/coarsen"
	"mlpart/internal/faults"
	"mlpart/internal/graph"
	"mlpart/internal/initpart"
	"mlpart/internal/kway"
	"mlpart/internal/refine"
	"mlpart/internal/trace"
	"mlpart/internal/workspace"
)

// splitSpec is the one thing that differs between uniform k-way recursion
// and weighted-fractions recursion: how many leaf parts a subproblem holds
// and what weight the left half-range targets. Everything else — the
// V-cycle, seed derivation, parallel fan-out, stats, tracing, cancellation
// — is shared by the engine.
//
// The two implementations keep their historical arithmetic exactly
// (integer tw*kl/k for uniform, float64 rounding for weighted) so that
// fixed-seed partitions are bit-identical to the pre-engine drivers.
type splitSpec interface {
	// parts is the number of leaf parts this subproblem produces.
	parts() int
	// target0 is the desired weight of the left half-range given the
	// subgraph's total vertex weight.
	target0(totalVwgt int) int
	// halves splits the spec for the two recursive subproblems.
	halves() (left, right splitSpec)
}

// uniformSplit is k equal parts.
type uniformSplit int

func (s uniformSplit) parts() int { return int(s) }

func (s uniformSplit) target0(tw int) int {
	k := int(s)
	return tw * (k / 2) / k
}

func (s uniformSplit) halves() (splitSpec, splitSpec) {
	kl := int(s) / 2
	return uniformSplit(kl), uniformSplit(int(s) - kl)
}

// weightedSplit holds normalized per-part weight fractions.
type weightedSplit []float64

func (s weightedSplit) parts() int { return len(s) }

func (s weightedSplit) target0(tw int) int {
	kl := len(s) / 2
	fracL := 0.0
	for _, f := range s[:kl] {
		fracL += f
	}
	fracTot := fracL
	for _, f := range s[kl:] {
		fracTot += f
	}
	return int(float64(tw) * fracL / fracTot)
}

func (s weightedSplit) halves() (splitSpec, splitSpec) {
	kl := len(s) / 2
	return s[:kl], s[kl:]
}

// engine is the single V-cycle driver behind Bisect, Partition,
// PartitionKWay and PartitionWeighted. It owns the recursion, the NCuts
// trial selection, derived seeds, workspace pooling, trace emission and
// context cancellation, so every entry point behaves identically.
type engine struct {
	opts   Options // defaults already applied
	ctx    context.Context
	tracer trace.Tracer
	inj    *faults.Injector // never consulted when nil beyond a nil check

	mu  sync.Mutex // guards Result fields and err during parallel recursion
	err error      // first cancellation or failure error observed
}

func newEngine(opts Options) *engine {
	opts = opts.withDefaults()
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return &engine{opts: opts, ctx: ctx, tracer: opts.Tracer, inj: opts.Injector}
}

// fail records the first error; later calls keep the original.
func (e *engine) fail(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

// failed reports whether any branch of the run has already failed; the
// recursion stops descending once it has.
func (e *engine) failed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err != nil
}

// cancelled reports (and records) whether the engine's context is done.
// It is the only cancellation probe: callers check it at level boundaries
// and recursion steps, never inside refinement passes.
func (e *engine) cancelled() bool {
	if err := e.ctx.Err(); err != nil {
		e.fail(err)
		return true
	}
	return false
}

// run builds a k-way partition of g by recursive bisection according to
// sp, optionally finishing with a direct k-way refinement pass (uniform
// targets only; weighted targets would violate kway.Refine's equal-target
// balance model).
func (e *engine) run(g *graph.Graph, sp splitSpec, kwayRefine bool) (res *Result, err error) {
	// A panic escaping the sequential recursion (the parallel branches
	// recover on their own goroutines) surfaces as an error, never as a
	// crashed caller: the engine is the outermost in-process boundary.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("multilevel: %w", faults.AsPanic("engine/run", r))
		}
	}()
	k := sp.parts()
	res = &Result{
		Where:       make([]int, g.NumVertices()),
		PartWeights: make([]int, k),
	}
	ids := make([]int, g.NumVertices())
	for i := range ids {
		ids[i] = i
	}
	e.recurse(g, ids, sp, 0, e.opts.Seed, 0, res)
	if e.err != nil {
		return nil, fmt.Errorf("multilevel: %w", e.err)
	}
	if kwayRefine && k >= 2 {
		ws := workspace.Get()
		t0 := time.Now()
		p := kway.NewPartition(g, k, res.Where)
		e.guardedKWayRefine(p, kway.Options{
			Ubfactor:  e.opts.Ubfactor,
			Seed:      e.opts.Seed,
			Workspace: ws,
			Tracer:    trace.WithSeed(e.tracer, e.opts.Seed),
			Counters:  &res.Stats.Counters,
		}, &res.Stats, trace.WithSeed(e.tracer, e.opts.Seed), e.opts.Refinement == refine.BKWAY)
		res.Stats.RefineTime += time.Since(t0)
		workspace.Put(ws)
	}
	if _, uniform := sp.(uniformSplit); uniform {
		// Extra cycles of the eco/strong presets. Weighted targets are
		// excluded: the k-way refinement kernels assume equal part targets.
		e.iterate(g, k, res)
	} else {
		res.Stats.Cycles = 1
	}
	for v, p := range res.Where {
		res.PartWeights[p] += g.Vwgt[v]
	}
	res.EdgeCut = refine.ComputeCut(g, res.Where)
	return res, nil
}

// recurse bisects g into sp.parts() leaf parts. ids maps local vertices to
// original ids; depth tracks the recursion level for parallel fan-out.
func (e *engine) recurse(g *graph.Graph, ids []int, sp splitSpec, base int, seed int64, depth int, res *Result) {
	if e.cancelled() || e.failed() {
		return
	}
	if sp.parts() <= 1 || g.NumVertices() == 0 {
		e.mu.Lock()
		for _, id := range ids {
			res.Where[id] = base
		}
		e.mu.Unlock()
		return
	}
	target0 := sp.target0(g.TotalVertexWeight())
	if target0 < 1 {
		// Degenerate weights (e.g. all-zero subgraph) must still seed part 0,
		// or the left recursion receives an empty graph forever.
		target0 = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b, stats := e.bisect(g, target0, rng, seed)
	e.mu.Lock()
	res.Stats.add(stats)
	e.mu.Unlock()
	if b == nil {
		// Cancelled mid-bisection; e.err is already set.
		return
	}

	left, l2gL := g.PartSubgraph(b.Where, 0)
	right, l2gR := g.PartSubgraph(b.Where, 1)
	idsL := make([]int, left.NumVertices())
	for i, lv := range l2gL {
		idsL[i] = ids[lv]
	}
	idsR := make([]int, right.NumVertices())
	for i, rv := range l2gR {
		idsR[i] = ids[rv]
	}
	kl := sp.parts() / 2
	spL, spR := sp.halves()
	seedL := deriveSeed(seed, 2)
	seedR := deriveSeed(seed, 3)
	// Fan out the top few levels of the recursion tree; deeper subproblems
	// are small enough that goroutine overhead dominates.
	if e.opts.Parallel && depth < e.opts.ParallelDepth && g.NumVertices() > e.opts.ParallelMinVertices {
		// Both branches run guarded: a panic on either one is captured
		// into e.err rather than unwinding past wg.Wait, which would
		// leak the sibling goroutine (and, on the spawned side, kill the
		// process — recover never runs on a foreign goroutine's stack).
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.recurseGuarded(left, idsL, spL, base, seedL, depth+1, res)
		}()
		e.recurseGuarded(right, idsR, spR, base+kl, seedR, depth+1, res)
		wg.Wait()
	} else {
		e.recurse(left, idsL, spL, base, seedL, depth+1, res)
		e.recurse(right, idsR, spR, base+kl, seedR, depth+1, res)
	}
}

// recurseGuarded is recurse with a panic boundary: any panic in the
// branch is recorded as the engine's failure and the branch abandoned.
func (e *engine) recurseGuarded(g *graph.Graph, ids []int, sp splitSpec, base int, seed int64, depth int, res *Result) {
	defer func() {
		if r := recover(); r != nil {
			e.fail(faults.AsPanic(faults.SiteEngineBisect, r))
		}
	}()
	e.recurse(g, ids, sp, base, seed, depth, res)
}

// bisect dispatches between the single V-cycle and the NCuts best-of-N
// selection. seed identifies this bisection in trace events.
func (e *engine) bisect(g *graph.Graph, target0 int, rng *rand.Rand, seed int64) (*refine.Bisection, *Stats) {
	if e.opts.NCuts > 1 {
		return e.bisectNCuts(g, target0, rng)
	}
	return e.bisectOnce(g, target0, rng, seed)
}

// bisectNCuts repeats the full bisection opts.NCuts times with seeds derived
// from a single draw on rng and keeps the smallest cut (ties to the earliest
// trial). Because each trial owns a derived-seed RNG rather than sharing
// rng's stream, the trials are order-independent: with opts.Parallel they run
// concurrently and still pick the exact bisection the sequential loop picks.
func (e *engine) bisectNCuts(g *graph.Graph, target0 int, rng *rand.Rand) (*refine.Bisection, *Stats) {
	n := e.opts.NCuts
	base := rng.Int63()
	bs := make([]*refine.Bisection, n)
	ss := make([]*Stats, n)
	trial := func(i int) {
		seed := deriveSeed(base, int64(i))
		trng := rand.New(rand.NewSource(seed))
		bs[i], ss[i] = e.bisectOnce(g, target0, trng, seed)
	}
	if e.opts.Parallel {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// Capture trial panics here, on the panicking goroutine:
				// a worker panic must fail this bisection, not the process.
				defer func() {
					if r := recover(); r != nil {
						e.fail(faults.AsPanic(faults.SiteEngineBisect, r))
					}
				}()
				trial(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := 0; i < n; i++ {
			trial(i)
		}
	}
	var best *refine.Bisection
	total := &Stats{}
	for i := 0; i < n; i++ {
		if ss[i] != nil {
			total.add(ss[i])
		}
		if bs[i] != nil && (best == nil || bs[i].Cut < best.Cut) {
			best = bs[i]
		}
	}
	total.Bisections = 1
	if e.failed() {
		// A trial panicked (or hit an injected fault). Sibling trials may
		// have finished, but a poisoned bisection must fail as a whole:
		// the panic marks an invariant violation, not a quality trade.
		return nil, total
	}
	return best, total
}

// bisectOnce is the multilevel V-cycle: coarsen, partition the coarsest
// graph, then project and refine level by level. It returns a nil bisection
// (with the stats gathered so far) when the engine's context is cancelled.
func (e *engine) bisectOnce(g *graph.Graph, target0 int, rng *rand.Rand, seed int64) (*refine.Bisection, *Stats) {
	opts := e.opts
	if target0 <= 0 {
		target0 = g.TotalVertexWeight() / 2
	}
	stats := &Stats{Bisections: 1}
	tr := trace.WithSeed(e.tracer, seed)
	if e.cancelled() {
		return nil, stats
	}
	// All scratch for this bisection — hierarchy arrays, trial bisections,
	// gain buckets — comes from one pooled workspace. Nothing backed by it
	// may escape: the returned Bisection is detached into fresh memory below.
	// On a panic anywhere below, the deferred Put runs during unwinding;
	// buffers still checked out of ws at that moment are simply not
	// re-pooled, which is safe (the pool reallocates on demand).
	ws := workspace.Get()
	defer workspace.Put(ws)
	if ierr := e.inj.Fire(faults.SiteEngineBisect); ierr != nil {
		e.fail(ierr)
		return nil, stats
	}
	ropts := refine.Options{
		StopWindow: opts.StopWindow,
		Ubfactor:   opts.Ubfactor,
		TargetPwgt: [2]int{target0, g.TotalVertexWeight() - target0},
		OrigNvtxs:  g.NumVertices(),
		Workspace:  ws,
		Tracer:     tr,
		Counters:   &stats.Counters,
	}

	t0 := time.Now()
	copts := coarsen.Options{
		Scheme:           opts.Matching,
		CoarsenTo:        opts.CoarsenTo,
		MaxClusterWeight: opts.MaxClusterWeight,
		LPRounds:         opts.LPRounds,
		Workspace:        ws,
		Tracer:           tr,
		Injector:         e.inj,
		Degradations:     &stats.Degradations,
	}
	var h *coarsen.Hierarchy
	if opts.CoarsenWorkers > 1 {
		h = coarsen.ParallelCoarsen(g, copts, rng, opts.CoarsenWorkers)
	} else {
		h = coarsen.Coarsen(g, copts, rng)
	}
	stats.CoarsenTime = time.Since(t0)
	stats.Levels = len(h.Levels)
	stats.CoarsestN = h.Coarsest().NumVertices()
	emitDegraded(tr, stats.Degradations, 0)
	if e.cancelled() {
		h.Release(ws)
		return nil, stats
	}

	if ierr := e.inj.Fire(faults.SiteInitPart); ierr != nil {
		h.Release(ws)
		e.fail(ierr)
		return nil, stats
	}
	degBase := len(stats.Degradations)
	t0 = time.Now()
	b := initpart.Partition(h.Coarsest(), initpart.Options{
		Method:       opts.InitMethod,
		Trials:       opts.InitTrials,
		TargetPwgt0:  target0,
		Workspace:    ws,
		Level:        len(h.Levels) - 1,
		Tracer:       tr,
		Injector:     e.inj,
		Degradations: &stats.Degradations,
	}, rng)
	stats.InitTime = time.Since(t0)
	stats.InitialCut = b.Cut
	emitDegraded(tr, stats.Degradations, degBase)

	// Refine the coarsest partition, then project and refine level by level.
	t0 = time.Now()
	ropts.Level = len(h.Levels) - 1
	refine.ForceBalance(b, ropts)
	e.guardedRefine(b, opts.Refinement, ropts, stats, tr)
	stats.RefineTime += time.Since(t0)
	ok := e.uncoarsen(h, stats, tr, func(li int) int {
		nb := refine.ProjectWS(h.Levels[li].Graph, h.Levels[li].Cmap, b, ws)
		b.Release(ws)
		b = nb
		return b.Cut
	}, func(li int) {
		ropts.Level = li
		e.guardedRefine(b, opts.Refinement, ropts, stats, tr)
	})
	if !ok {
		b.Release(ws)
		h.Release(ws)
		return nil, stats
	}
	b = b.Detach(ws)
	h.Release(ws)
	emitPhases(tr, stats)
	return b, stats
}

// uncoarsen walks the hierarchy from the second-coarsest level to the
// finest, projecting then refining at each level. It is shared by the
// bisection V-cycle and the direct k-way V-cycle, which supply the
// projection (returning the projected cut) and the per-level refinement.
// It returns false as soon as the engine's context is cancelled.
func (e *engine) uncoarsen(h *coarsen.Hierarchy, stats *Stats, tr trace.Tracer, project func(li int) int, refineLevel func(li int)) bool {
	for li := len(h.Levels) - 2; li >= 0; li-- {
		if e.cancelled() {
			return false
		}
		t0 := time.Now()
		cut := project(li)
		stats.ProjectTime += time.Since(t0)
		stats.Projections++
		if tr != nil {
			tr.Event(trace.Event{
				Kind:      trace.KindProject,
				Level:     li,
				Cut:       cut,
				ElapsedNS: time.Since(t0).Nanoseconds(),
			})
		}
		t0 = time.Now()
		refineLevel(li)
		stats.RefineTime += time.Since(t0)
	}
	return true
}

// emitPhases reports the per-phase wall time of one completed V-cycle.
func emitPhases(tr trace.Tracer, stats *Stats) {
	if tr == nil {
		return
	}
	for _, p := range [...]struct {
		name string
		d    time.Duration
	}{
		{"coarsen", stats.CoarsenTime},
		{"initial", stats.InitTime},
		{"refine", stats.RefineTime},
		{"project", stats.ProjectTime},
	} {
		tr.Event(trace.Event{Kind: trace.KindPhase, Phase: p.name, ElapsedNS: p.d.Nanoseconds()})
	}
}

// noteDegradation records a fallback in the run's stats and, when tracing,
// emits the matching KindDegraded event.
func (e *engine) noteDegradation(stats *Stats, tr trace.Tracer, d trace.Degradation) {
	stats.Degradations = append(stats.Degradations, d)
	if tr != nil {
		tr.Event(trace.Event{
			Kind:       trace.KindDegraded,
			Level:      d.Level,
			Phase:      d.Phase,
			Algorithm:  d.From,
			FallbackTo: d.To,
			Reason:     d.Reason,
		})
	}
}

// emitDegraded emits KindDegraded events for ds[from:] — degradations the
// coarsening and initial-partitioning phases recorded without a tracer in
// scope.
func emitDegraded(tr trace.Tracer, ds []trace.Degradation, from int) {
	if tr == nil {
		return
	}
	for _, d := range ds[from:] {
		tr.Event(trace.Event{
			Kind:       trace.KindDegraded,
			Level:      d.Level,
			Phase:      d.Phase,
			Algorithm:  d.From,
			FallbackTo: d.To,
			Reason:     d.Reason,
		})
	}
}

// guardedRefine runs one level's refinement behind a fault boundary: an
// injected error skips the pass, and a panic (injected or organic) abandons
// it. Either way the level keeps its projected partition — refinement is an
// improvement step, never a correctness requirement — with the balance
// invariant restored if the abandoned pass had moved vertices.
func (e *engine) guardedRefine(b *refine.Bisection, policy refine.Policy, ropts refine.Options, stats *Stats, tr trace.Tracer) {
	if ierr := e.inj.Fire(faults.SiteRefineLevel); ierr != nil {
		e.noteDegradation(stats, tr, trace.Degradation{
			Phase: "refine", From: policy.String(), To: "projected",
			Level: ropts.Level, Reason: ierr.Error(),
		})
		return
	}
	defer func() {
		if r := recover(); r != nil {
			pe := faults.AsPanic(faults.SiteRefineLevel, r)
			e.noteDegradation(stats, tr, trace.Degradation{
				Phase: "refine", From: policy.String(), To: "projected",
				Level: ropts.Level, Reason: pe.Error(),
			})
			rebalance(b, ropts)
		}
	}()
	refine.Refine(b, policy, ropts)
}

// rebalance restores the part-weight tolerance after an abandoned
// refinement pass (a mid-pass panic can leave moves half-applied). It runs
// behind its own recover so a bisection corrupted badly enough to break
// ForceBalance degrades to "imbalanced but structurally valid" instead of
// cascading the panic.
func rebalance(b *refine.Bisection, ropts refine.Options) {
	defer func() { _ = recover() }()
	refine.ForceBalance(b, ropts)
}

// guardedKWayRefine is guardedRefine's direct k-way counterpart: a faulted
// or panicking k-way pass leaves the level's projected partition in place.
// useBKWAY selects the kernel — the boundary engine of refine.RefineKWay
// (with RefineWorkers propose-phase fan-out) versus the classic full-sweep
// kway.Refine. First cycles pass the Refinement policy's choice; the extra
// cycles of the eco/strong presets always use BKWAY.
func (e *engine) guardedKWayRefine(p *kway.Partition, kopts kway.Options, stats *Stats, tr trace.Tracer, useBKWAY bool) {
	algo := "KWAY"
	if useBKWAY {
		algo = "BKWAY"
	}
	if ierr := e.inj.Fire(faults.SiteKWayLevel); ierr != nil {
		e.noteDegradation(stats, tr, trace.Degradation{
			Phase: "kway", From: algo, To: "projected",
			Level: kopts.Level, Reason: ierr.Error(),
		})
		return
	}
	defer func() {
		if r := recover(); r != nil {
			pe := faults.AsPanic(faults.SiteKWayLevel, r)
			e.noteDegradation(stats, tr, trace.Degradation{
				Phase: "kway", From: algo, To: "projected",
				Level: kopts.Level, Reason: pe.Error(),
			})
		}
	}()
	if useBKWAY {
		refine.RefineKWay(p, refine.KWayOptions{
			Ubfactor:  kopts.Ubfactor,
			Seed:      kopts.Seed,
			Workers:   e.opts.RefineWorkers,
			Workspace: kopts.Workspace,
			Level:     kopts.Level,
			Tracer:    kopts.Tracer,
			Counters:  kopts.Counters,
			Injector:  e.inj,
		})
		return
	}
	kway.Refine(p, kopts)
}
