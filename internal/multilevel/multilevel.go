// Package multilevel assembles the three phases of the paper's algorithm —
// coarsening (internal/coarsen), initial partitioning (internal/initpart)
// and refinement during uncoarsening (internal/refine) — into the complete
// multilevel bisection of §3, and builds k-way partitions by recursive
// bisection as described in §2.
//
// Every driver — Bisect, Partition, PartitionKWay, PartitionWeighted — is a
// thin parameterization of the single V-cycle engine in engine.go, which
// owns depth-parallel recursion, NCuts trial selection, derived seeds,
// workspace pooling, per-level trace events and context cancellation in
// exactly one place.
package multilevel

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"mlpart/internal/coarsen"
	"mlpart/internal/faults"
	"mlpart/internal/graph"
	"mlpart/internal/initpart"
	"mlpart/internal/refine"
	"mlpart/internal/trace"
)

// Preset selects how many multilevel cycles a partition runs. The first
// cycle is always the full coarsen → initial-partition → refine V-cycle;
// each extra cycle re-coarsens the graph *respecting* the current
// partition (matchings never cross part boundaries, so the partition
// projects onto the coarse graph with exactly the same cut), skips
// initial partitioning, and refines the seeded partition with boundary
// k-way refinement on the way back up. Every cycle derives its own seed,
// so runs stay bit-identical across worker counts, and the best cut of
// any completed cycle wins.
type Preset int

const (
	// PresetFast is today's single V-cycle (the zero value: no behavior
	// change for existing callers).
	PresetFast Preset = iota
	// PresetEco runs one extra V-cycle seeded from the first result.
	PresetEco
	// PresetStrong runs four cycles total, best-of-N with derived
	// per-cycle seeds.
	PresetStrong
)

// Cycle counts behind the presets.
const (
	ecoCycles    = 2
	strongCycles = 4
)

// String returns the preset's name as used in options, flags and wire.
func (p Preset) String() string {
	switch p {
	case PresetFast:
		return "fast"
	case PresetEco:
		return "eco"
	case PresetStrong:
		return "strong"
	}
	return fmt.Sprintf("Preset(%d)", int(p))
}

// Valid reports whether p is one of the defined presets.
func (p Preset) Valid() bool { return p >= PresetFast && p <= PresetStrong }

// ParsePreset converts a preset name ("fast", "eco", "strong") to a
// Preset; the empty string is fast (the default).
func ParsePreset(s string) (Preset, error) {
	switch s {
	case "", "fast":
		return PresetFast, nil
	case "eco":
		return PresetEco, nil
	case "strong":
		return PresetStrong, nil
	}
	return 0, fmt.Errorf("multilevel: unknown preset %q (want fast, eco or strong)", s)
}

// Options selects the algorithm for each phase plus the shared knobs. The
// zero value is the paper's recommended configuration: HEM coarsening to
// 100 vertices, GGGP initial partitioning, BKLGR refinement.
type Options struct {
	// Matching is the coarsening scheme; the zero value selects HEM (the
	// paper's choice), not coarsen.RM.
	Matching coarsen.Scheme
	// matchingSet distinguishes an explicit RM from the zero value.
	// Use WithMatching to set RM explicitly.
	matchingSet bool
	// InitMethod is the coarsest-graph partitioner (zero value: GGGP).
	InitMethod initpart.Method
	// Refinement is the uncoarsening policy; the zero value selects BKLGR
	// (the paper's choice), not refine.NoRefine. Use WithRefinement to
	// disable refinement explicitly.
	Refinement refine.Policy
	// refinementSet distinguishes an explicit NoRefine from the zero value.
	refinementSet bool

	// CoarsenTo is the coarsest-graph size (0 means 100).
	CoarsenTo int
	// InitTrials overrides the number of initial-partitioning trials
	// (0 means the paper's defaults: 10 for GGP, 5 for GGGP).
	InitTrials int
	// StopWindow is the refinement stop parameter x (0 means 50).
	StopWindow int
	// Ubfactor is the allowed part imbalance (0 means 1.05).
	Ubfactor float64
	// Seed makes every run deterministic; the same seed gives the same
	// partition, as the paper's "fixed seed" experiments require.
	Seed int64
	// Parallel partitions independent subgraphs of the recursive k-way
	// decomposition on separate goroutines, and runs the NCuts > 1 trials
	// of each bisection concurrently. Results are identical to the
	// sequential run because every subproblem derives its own seed.
	Parallel bool
	// ParallelDepth bounds how deep the recursion tree fans out onto new
	// goroutines when Parallel is set: subproblems deeper than this run
	// sequentially, because goroutine overhead dominates on the small
	// graphs there. 0 means 4 (at most 2^4 concurrent branches).
	ParallelDepth int
	// ParallelMinVertices is the smallest subgraph that still fans out
	// when Parallel is set; smaller subproblems run sequentially.
	// 0 means 2000.
	ParallelMinVertices int
	// KWayRefine runs a direct k-way greedy refinement pass over the
	// assembled partition after recursive bisection, the natural extension
	// of the paper's scheme (it never worsens the cut).
	KWayRefine bool
	// NCuts runs each full multilevel bisection this many times with
	// independent seeds and keeps the smallest cut (quality for time, the
	// same trade the paper's GGP/GGGP trial counts make); <=1 means once.
	NCuts int
	// CoarsenWorkers > 1 computes each level's matching with the parallel
	// handshake algorithm on that many workers. The matching differs from
	// the sequential one but is deterministic for a fixed seed regardless
	// of the worker count. The paper observes that coarsening is the easy
	// phase to parallelize; this is that observation for shared memory.
	CoarsenWorkers int
	// MaxClusterWeight caps one GCLP cluster's total vertex weight; <= 0
	// derives the cap from the graph (total weight / CoarsenTo). Ignored
	// by the matching schemes.
	MaxClusterWeight int
	// LPRounds bounds GCLP's label-propagation rounds per level (<= 0
	// means the coarsener's default of 8). Ignored by the matching schemes.
	LPRounds int
	// Preset selects the number of multilevel cycles: fast (the zero
	// value) is a single V-cycle, eco adds one partition-seeded extra
	// cycle, strong runs four cycles best-of-N. Extra cycles apply to
	// Partition and PartitionKWay; PartitionWeighted ignores the preset
	// (iterated refinement assumes equal part targets). A failed extra
	// cycle degrades to the best completed partition (recorded in
	// Stats.Degradations), never a hard error.
	Preset Preset
	// Cycles, when > 0, overrides the preset's cycle count directly
	// (1 = fast). 0 defers to Preset.
	Cycles int
	// RefineWorkers > 1 fans the propose phase of boundary k-way refinement
	// (the BKWAY policy on the direct k-way path) out over that many
	// workers. Unlike CoarsenWorkers it never changes the result: proposals
	// are chunk-independent and commits are serial, so the partition is
	// bit-identical for every worker count. <= 1 refines serially.
	RefineWorkers int

	// Context, when non-nil, is checked at every level boundary of the
	// V-cycle and at every recursion step: once it is cancelled or past
	// its deadline, Partition/PartitionKWay/PartitionWeighted return
	// ctx.Err() (wrapped) instead of completing. A nil Context never
	// cancels and costs nothing.
	Context context.Context
	// Tracer, when non-nil, receives typed per-level events (levels built,
	// initial cut, refinement passes, projections, phase times). It must
	// be safe for concurrent use when Parallel is set. Partition results
	// are bit-identical with or without a tracer.
	Tracer trace.Tracer
	// Injector, when non-nil, is the deterministic fault injector consulted
	// at the engine's named sites (see internal/faults). Nil falls back to
	// faults.Default() — the MLPART_FAULTS plan, normally nil — and a nil
	// injector costs one nil check per site, keeping fault-free runs
	// bit-identical and allocation-identical.
	Injector *faults.Injector
}

// WithMatching returns o with the matching scheme set explicitly, allowing
// coarsen.RM (whose value is 0) to be distinguished from "use the default".
func (o Options) WithMatching(s coarsen.Scheme) Options {
	o.Matching = s
	o.matchingSet = true
	return o
}

// WithRefinement returns o with the refinement policy set explicitly,
// allowing refine.NoRefine (whose value is 0) to be distinguished from
// "use the default".
func (o Options) WithRefinement(p refine.Policy) Options {
	o.Refinement = p
	o.refinementSet = true
	return o
}

func (o Options) withDefaults() Options {
	if !o.matchingSet && o.Matching == coarsen.Scheme(0) {
		o.Matching = coarsen.HEM
	}
	if !o.refinementSet && o.Refinement == refine.Policy(0) {
		o.Refinement = refine.BKLGR
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 100
	}
	if o.Ubfactor <= 1 {
		o.Ubfactor = 1.05
	}
	if o.ParallelDepth <= 0 {
		o.ParallelDepth = 4
	}
	if o.ParallelMinVertices <= 0 {
		o.ParallelMinVertices = 2000
	}
	if o.Injector == nil {
		o.Injector = faults.Default()
	}
	return o
}

// Validate rejects option values that would otherwise recurse silently
// into nonsense: unknown phase algorithms, negative trial/worker counts,
// and imbalance factors below 1 (every part may always hold at least its
// target weight). It checks the options alone — constraints that also
// involve the graph or k (k in range, k vs vertex count) live in validate,
// which every entry point runs — so callers like the service can reject a
// malformed request before any graph work happens.
func (o Options) Validate() error {
	if o.NCuts < 0 {
		return fmt.Errorf("multilevel: NCuts = %d, want >= 0", o.NCuts)
	}
	if !o.Matching.Valid() {
		return fmt.Errorf("multilevel: invalid matching scheme %d", int(o.Matching))
	}
	if !o.InitMethod.Valid() {
		return fmt.Errorf("multilevel: invalid initial-partitioning method %d", int(o.InitMethod))
	}
	if !o.Refinement.Valid() {
		return fmt.Errorf("multilevel: invalid refinement policy %d", int(o.Refinement))
	}
	if o.InitTrials < 0 {
		return fmt.Errorf("multilevel: InitTrials = %d, want >= 0", o.InitTrials)
	}
	if o.CoarsenWorkers < 0 {
		return fmt.Errorf("multilevel: CoarsenWorkers = %d, want >= 0", o.CoarsenWorkers)
	}
	if o.RefineWorkers < 0 {
		return fmt.Errorf("multilevel: RefineWorkers = %d, want >= 0", o.RefineWorkers)
	}
	if o.MaxClusterWeight < 0 {
		return fmt.Errorf("multilevel: MaxClusterWeight = %d, want >= 0", o.MaxClusterWeight)
	}
	if o.LPRounds < 0 {
		return fmt.Errorf("multilevel: LPRounds = %d, want >= 0", o.LPRounds)
	}
	if math.IsNaN(o.Ubfactor) || math.IsInf(o.Ubfactor, 0) {
		return fmt.Errorf("multilevel: Ubfactor = %v, want a finite value", o.Ubfactor)
	}
	if o.Ubfactor != 0 && o.Ubfactor < 1 {
		return fmt.Errorf("multilevel: Ubfactor = %v, want >= 1 (or 0 for the default)", o.Ubfactor)
	}
	if o.ParallelDepth < 0 {
		return fmt.Errorf("multilevel: ParallelDepth = %d, want >= 0", o.ParallelDepth)
	}
	if o.ParallelMinVertices < 0 {
		return fmt.Errorf("multilevel: ParallelMinVertices = %d, want >= 0", o.ParallelMinVertices)
	}
	if !o.Preset.Valid() {
		return fmt.Errorf("multilevel: invalid preset %d", int(o.Preset))
	}
	if o.Cycles < 0 {
		return fmt.Errorf("multilevel: Cycles = %d, want >= 0", o.Cycles)
	}
	return nil
}

// CycleCount resolves the preset and the Cycles override into the number
// of multilevel cycles a partition runs: an explicit Cycles wins, else
// fast=1, eco=2, strong=4. The service cache key uses this too, so
// option spellings with the same effective cycle count share entries.
func (o Options) CycleCount() int {
	if o.Cycles > 0 {
		return o.Cycles
	}
	switch o.Preset {
	case PresetEco:
		return ecoCycles
	case PresetStrong:
		return strongCycles
	}
	return 1
}

// validate is the full entry-point check: the option checks of Validate
// plus the constraints that need the graph and k.
func validate(g *graph.Graph, k int, o Options) error {
	if k < 1 {
		return fmt.Errorf("multilevel: k = %d, want >= 1", k)
	}
	if k > g.NumVertices() && g.NumVertices() > 0 {
		return fmt.Errorf("multilevel: k = %d exceeds vertex count %d", k, g.NumVertices())
	}
	return o.Validate()
}

// Stats reports where the time went, matching the columns of the paper's
// Table 2 (CoarsenTime is CTime; the sum of InitTime, RefineTime and
// ProjectTime is UTime), plus the per-level event totals the tracer
// observes — pass counts, moves, positive-gain moves and projections —
// aggregated across every bisection of a recursive run.
type Stats struct {
	CoarsenTime time.Duration // CTime: building the hierarchy
	InitTime    time.Duration // ITime: partitioning the coarsest graph
	RefineTime  time.Duration // RTime: refinement at every level
	ProjectTime time.Duration // PTime: projecting partitions between levels
	Levels      int           // number of hierarchy levels
	CoarsestN   int           // vertices in the coarsest graph
	InitialCut  int           // cut of the coarsest-graph partition
	Bisections  int           // bisections performed (k-1 for k-way)

	// Cycles is the number of multilevel cycles that completed (1 for the
	// fast preset). It is set once per run, never summed across
	// bisections.
	Cycles int

	// Counters aggregates the refinement and projection event totals
	// (RefinePasses, RefineMoves, PositiveGainMoves, Projections).
	trace.Counters

	// Degradations records every graceful-degradation fallback taken during
	// the run — HCM matching stalls falling back to HEM, SBP Lanczos
	// non-convergence falling back to GGGP, abandoned refinement passes
	// leaving a level's projected partition — in the order they occurred.
	Degradations []trace.Degradation
}

// UncoarsenTime is the paper's UTime: ITime + RTime + PTime.
func (s *Stats) UncoarsenTime() time.Duration {
	return s.InitTime + s.RefineTime + s.ProjectTime
}

func (s *Stats) add(o *Stats) {
	s.CoarsenTime += o.CoarsenTime
	s.InitTime += o.InitTime
	s.RefineTime += o.RefineTime
	s.ProjectTime += o.ProjectTime
	s.Levels += o.Levels
	s.InitialCut += o.InitialCut
	s.Bisections += o.Bisections
	if o.CoarsestN > s.CoarsestN {
		s.CoarsestN = o.CoarsestN
	}
	s.Counters.Add(&o.Counters)
	s.Degradations = append(s.Degradations, o.Degradations...)
}

// Bisect runs the full multilevel bisection of g. target0 is the desired
// weight of part 0 (0 means half the total). When opts.NCuts > 1, the
// whole bisection is repeated with independent seeds and the smallest cut
// wins. It returns the refined bisection of g and per-phase timing
// statistics (summed over the NCuts runs). If opts.Context is cancelled
// mid-run, the returned bisection is nil.
func Bisect(g *graph.Graph, target0 int, opts Options, rng *rand.Rand) (*refine.Bisection, *Stats) {
	e := newEngine(opts)
	b, stats := e.bisect(g, target0, rng, opts.Seed)
	if b == nil && e.err != nil && e.ctx.Err() == nil {
		// Bisect's contract is "nil means cancelled" (nested dissection
		// stops recursing on nil and leaves a valid partial ordering). A
		// worker panic or injected fault is not cancellation, so escalate
		// it to the caller's recovery boundary rather than returning a nil
		// that would be silently misread as a clean stop.
		panic(e.err)
	}
	return b, stats
}

// Result is the outcome of a k-way partition.
type Result struct {
	// Where[v] is the part (0..k-1) of vertex v.
	Where []int
	// EdgeCut is the total weight of edges crossing parts.
	EdgeCut int
	// PartWeights[p] is the vertex weight of part p.
	PartWeights []int
	// Stats aggregates timings over all bisections.
	Stats Stats
}

// Balance returns k * max(PartWeights) / total: 1.0 is perfect.
func (r *Result) Balance() float64 {
	tot, maxw := 0, 0
	for _, w := range r.PartWeights {
		tot += w
		if w > maxw {
			maxw = w
		}
	}
	if tot == 0 {
		return 1
	}
	return float64(len(r.PartWeights)) * float64(maxw) / float64(tot)
}

// Partition divides g into k parts by recursive multilevel bisection
// (log k levels of bisection, with target weights proportional to the
// number of leaf parts on each side, so any k >= 1 is supported).
func Partition(g *graph.Graph, k int, opts Options) (*Result, error) {
	if err := validate(g, k, opts); err != nil {
		return nil, err
	}
	e := newEngine(opts)
	return e.run(g, uniformSplit(k), e.opts.KWayRefine)
}

// deriveSeed produces a child RNG seed from the parent seed and the branch
// path, keeping parallel and sequential runs identical.
func deriveSeed(seed int64, branch int64) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(branch)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}
