// Package multilevel assembles the three phases of the paper's algorithm —
// coarsening (internal/coarsen), initial partitioning (internal/initpart)
// and refinement during uncoarsening (internal/refine) — into the complete
// multilevel bisection of §3, and builds k-way partitions by recursive
// bisection as described in §2.
package multilevel

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mlpart/internal/coarsen"
	"mlpart/internal/graph"
	"mlpart/internal/initpart"
	"mlpart/internal/kway"
	"mlpart/internal/refine"
	"mlpart/internal/workspace"
)

// Options selects the algorithm for each phase plus the shared knobs. The
// zero value is the paper's recommended configuration: HEM coarsening to
// 100 vertices, GGGP initial partitioning, BKLGR refinement.
type Options struct {
	// Matching is the coarsening scheme; the zero value selects HEM (the
	// paper's choice), not coarsen.RM.
	Matching coarsen.Scheme
	// matchingSet distinguishes an explicit RM from the zero value.
	// Use WithMatching to set RM explicitly.
	matchingSet bool
	// InitMethod is the coarsest-graph partitioner (zero value: GGGP).
	InitMethod initpart.Method
	// Refinement is the uncoarsening policy; the zero value selects BKLGR
	// (the paper's choice), not refine.NoRefine. Use WithRefinement to
	// disable refinement explicitly.
	Refinement refine.Policy
	// refinementSet distinguishes an explicit NoRefine from the zero value.
	refinementSet bool

	// CoarsenTo is the coarsest-graph size (0 means 100).
	CoarsenTo int
	// InitTrials overrides the number of initial-partitioning trials
	// (0 means the paper's defaults: 10 for GGP, 5 for GGGP).
	InitTrials int
	// StopWindow is the refinement stop parameter x (0 means 50).
	StopWindow int
	// Ubfactor is the allowed part imbalance (0 means 1.05).
	Ubfactor float64
	// Seed makes every run deterministic; the same seed gives the same
	// partition, as the paper's "fixed seed" experiments require.
	Seed int64
	// Parallel partitions independent subgraphs of the recursive k-way
	// decomposition on separate goroutines, and runs the NCuts > 1 trials
	// of each bisection concurrently. Results are identical to the
	// sequential run because every subproblem derives its own seed.
	Parallel bool
	// ParallelDepth bounds how deep the recursion tree fans out onto new
	// goroutines when Parallel is set: subproblems deeper than this run
	// sequentially, because goroutine overhead dominates on the small
	// graphs there. 0 means 4 (at most 2^4 concurrent branches).
	ParallelDepth int
	// ParallelMinVertices is the smallest subgraph that still fans out
	// when Parallel is set; smaller subproblems run sequentially.
	// 0 means 2000.
	ParallelMinVertices int
	// KWayRefine runs a direct k-way greedy refinement pass over the
	// assembled partition after recursive bisection, the natural extension
	// of the paper's scheme (it never worsens the cut).
	KWayRefine bool
	// NCuts runs each full multilevel bisection this many times with
	// independent seeds and keeps the smallest cut (quality for time, the
	// same trade the paper's GGP/GGGP trial counts make); <=1 means once.
	NCuts int
	// CoarsenWorkers > 1 computes each level's matching with the parallel
	// handshake algorithm on that many workers. The matching differs from
	// the sequential one but is deterministic for a fixed seed regardless
	// of the worker count. The paper observes that coarsening is the easy
	// phase to parallelize; this is that observation for shared memory.
	CoarsenWorkers int
}

// WithMatching returns o with the matching scheme set explicitly, allowing
// coarsen.RM (whose value is 0) to be distinguished from "use the default".
func (o Options) WithMatching(s coarsen.Scheme) Options {
	o.Matching = s
	o.matchingSet = true
	return o
}

// WithRefinement returns o with the refinement policy set explicitly,
// allowing refine.NoRefine (whose value is 0) to be distinguished from
// "use the default".
func (o Options) WithRefinement(p refine.Policy) Options {
	o.Refinement = p
	o.refinementSet = true
	return o
}

func (o Options) withDefaults() Options {
	if !o.matchingSet && o.Matching == coarsen.Scheme(0) {
		o.Matching = coarsen.HEM
	}
	if !o.refinementSet && o.Refinement == refine.Policy(0) {
		o.Refinement = refine.BKLGR
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 100
	}
	if o.Ubfactor <= 1 {
		o.Ubfactor = 1.05
	}
	if o.ParallelDepth <= 0 {
		o.ParallelDepth = 4
	}
	if o.ParallelMinVertices <= 0 {
		o.ParallelMinVertices = 2000
	}
	return o
}

// validate rejects option/argument combinations that would otherwise
// recurse silently into nonsense: non-positive or oversized k, negative
// trial counts, and imbalance factors below 1 (every part may always hold
// at least its target weight).
func validate(g *graph.Graph, k int, o Options) error {
	if k < 1 {
		return fmt.Errorf("multilevel: k = %d, want >= 1", k)
	}
	if k > g.NumVertices() && g.NumVertices() > 0 {
		return fmt.Errorf("multilevel: k = %d exceeds vertex count %d", k, g.NumVertices())
	}
	if o.NCuts < 0 {
		return fmt.Errorf("multilevel: NCuts = %d, want >= 0", o.NCuts)
	}
	if o.InitTrials < 0 {
		return fmt.Errorf("multilevel: InitTrials = %d, want >= 0", o.InitTrials)
	}
	if o.CoarsenWorkers < 0 {
		return fmt.Errorf("multilevel: CoarsenWorkers = %d, want >= 0", o.CoarsenWorkers)
	}
	if o.Ubfactor != 0 && o.Ubfactor < 1 {
		return fmt.Errorf("multilevel: Ubfactor = %v, want >= 1 (or 0 for the default)", o.Ubfactor)
	}
	if o.ParallelDepth < 0 {
		return fmt.Errorf("multilevel: ParallelDepth = %d, want >= 0", o.ParallelDepth)
	}
	if o.ParallelMinVertices < 0 {
		return fmt.Errorf("multilevel: ParallelMinVertices = %d, want >= 0", o.ParallelMinVertices)
	}
	return nil
}

// Stats reports where the time went, matching the columns of the paper's
// Table 2: CoarsenTime is CTime; the sum of InitTime, RefineTime and
// ProjectTime is UTime.
type Stats struct {
	CoarsenTime time.Duration // CTime: building the hierarchy
	InitTime    time.Duration // ITime: partitioning the coarsest graph
	RefineTime  time.Duration // RTime: refinement at every level
	ProjectTime time.Duration // PTime: projecting partitions between levels
	Levels      int           // number of hierarchy levels
	CoarsestN   int           // vertices in the coarsest graph
	InitialCut  int           // cut of the coarsest-graph partition
	Bisections  int           // bisections performed (k-1 for k-way)
}

// UncoarsenTime is the paper's UTime: ITime + RTime + PTime.
func (s *Stats) UncoarsenTime() time.Duration {
	return s.InitTime + s.RefineTime + s.ProjectTime
}

func (s *Stats) add(o *Stats) {
	s.CoarsenTime += o.CoarsenTime
	s.InitTime += o.InitTime
	s.RefineTime += o.RefineTime
	s.ProjectTime += o.ProjectTime
	s.Levels += o.Levels
	s.InitialCut += o.InitialCut
	s.Bisections += o.Bisections
	if o.CoarsestN > s.CoarsestN {
		s.CoarsestN = o.CoarsestN
	}
}

// Bisect runs the full multilevel bisection of g. target0 is the desired
// weight of part 0 (0 means half the total). When opts.NCuts > 1, the
// whole bisection is repeated with independent seeds and the smallest cut
// wins. It returns the refined bisection of g and per-phase timing
// statistics (summed over the NCuts runs).
func Bisect(g *graph.Graph, target0 int, opts Options, rng *rand.Rand) (*refine.Bisection, *Stats) {
	if opts.NCuts > 1 {
		return bisectNCuts(g, target0, opts, rng)
	}
	opts = opts.withDefaults()
	if target0 <= 0 {
		target0 = g.TotalVertexWeight() / 2
	}
	stats := &Stats{Bisections: 1}
	// All scratch for this bisection — hierarchy arrays, trial bisections,
	// gain buckets — comes from one pooled workspace. Nothing backed by it
	// may escape: the returned Bisection is detached into fresh memory below.
	ws := workspace.Get()
	defer workspace.Put(ws)
	ropts := refine.Options{
		StopWindow: opts.StopWindow,
		Ubfactor:   opts.Ubfactor,
		TargetPwgt: [2]int{target0, g.TotalVertexWeight() - target0},
		OrigNvtxs:  g.NumVertices(),
		Workspace:  ws,
	}

	t0 := time.Now()
	copts := coarsen.Options{Scheme: opts.Matching, CoarsenTo: opts.CoarsenTo, Workspace: ws}
	var h *coarsen.Hierarchy
	if opts.CoarsenWorkers > 1 {
		h = coarsen.ParallelCoarsen(g, copts, rng, opts.CoarsenWorkers)
	} else {
		h = coarsen.Coarsen(g, copts, rng)
	}
	stats.CoarsenTime = time.Since(t0)
	stats.Levels = len(h.Levels)
	stats.CoarsestN = h.Coarsest().NumVertices()

	t0 = time.Now()
	b := initpart.Partition(h.Coarsest(), initpart.Options{
		Method:      opts.InitMethod,
		Trials:      opts.InitTrials,
		TargetPwgt0: target0,
		Workspace:   ws,
	}, rng)
	stats.InitTime = time.Since(t0)
	stats.InitialCut = b.Cut

	// Refine the coarsest partition, then project and refine level by level.
	t0 = time.Now()
	refine.ForceBalance(b, ropts)
	refine.Refine(b, opts.Refinement, ropts)
	stats.RefineTime += time.Since(t0)
	for li := len(h.Levels) - 2; li >= 0; li-- {
		t0 = time.Now()
		nb := refine.ProjectWS(h.Levels[li].Graph, h.Levels[li].Cmap, b, ws)
		b.Release(ws)
		b = nb
		stats.ProjectTime += time.Since(t0)
		t0 = time.Now()
		refine.Refine(b, opts.Refinement, ropts)
		stats.RefineTime += time.Since(t0)
	}
	b = b.Detach(ws)
	h.Release(ws)
	return b, stats
}

// bisectNCuts repeats the full bisection opts.NCuts times with seeds derived
// from a single draw on rng and keeps the smallest cut (ties to the earliest
// trial). Because each trial owns a derived-seed RNG rather than sharing
// rng's stream, the trials are order-independent: with opts.Parallel they run
// concurrently and still pick the exact bisection the sequential loop picks.
func bisectNCuts(g *graph.Graph, target0 int, opts Options, rng *rand.Rand) (*refine.Bisection, *Stats) {
	n := opts.NCuts
	opts.NCuts = 1
	base := rng.Int63()
	bs := make([]*refine.Bisection, n)
	ss := make([]*Stats, n)
	trial := func(i int) {
		trng := rand.New(rand.NewSource(deriveSeed(base, int64(i))))
		bs[i], ss[i] = Bisect(g, target0, opts, trng)
	}
	if opts.Parallel {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				trial(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := 0; i < n; i++ {
			trial(i)
		}
	}
	var best *refine.Bisection
	total := &Stats{}
	for i := 0; i < n; i++ {
		total.add(ss[i])
		if best == nil || bs[i].Cut < best.Cut {
			best = bs[i]
		}
	}
	total.Bisections = 1
	return best, total
}

// Result is the outcome of a k-way partition.
type Result struct {
	// Where[v] is the part (0..k-1) of vertex v.
	Where []int
	// EdgeCut is the total weight of edges crossing parts.
	EdgeCut int
	// PartWeights[p] is the vertex weight of part p.
	PartWeights []int
	// Stats aggregates timings over all bisections.
	Stats Stats
}

// Balance returns k * max(PartWeights) / total: 1.0 is perfect.
func (r *Result) Balance() float64 {
	tot, maxw := 0, 0
	for _, w := range r.PartWeights {
		tot += w
		if w > maxw {
			maxw = w
		}
	}
	if tot == 0 {
		return 1
	}
	return float64(len(r.PartWeights)) * float64(maxw) / float64(tot)
}

// Partition divides g into k parts by recursive multilevel bisection
// (log k levels of bisection, with target weights proportional to the
// number of leaf parts on each side, so any k >= 1 is supported).
func Partition(g *graph.Graph, k int, opts Options) (*Result, error) {
	if err := validate(g, k, opts); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	res := &Result{
		Where:       make([]int, g.NumVertices()),
		PartWeights: make([]int, k),
	}
	ids := make([]int, g.NumVertices())
	for i := range ids {
		ids[i] = i
	}
	var mu sync.Mutex
	recurse(g, ids, k, 0, opts, opts.Seed, res, &mu, 0)
	if opts.KWayRefine && k >= 2 {
		ws := workspace.Get()
		p := kway.NewPartition(g, k, res.Where)
		kway.Refine(p, kway.Options{Ubfactor: opts.Ubfactor, Seed: opts.Seed, Workspace: ws})
		workspace.Put(ws)
	}
	for v, p := range res.Where {
		res.PartWeights[p] += g.Vwgt[v]
	}
	res.EdgeCut = refine.ComputeCut(g, res.Where)
	return res, nil
}

// deriveSeed produces a child RNG seed from the parent seed and the branch
// path, keeping parallel and sequential runs identical.
func deriveSeed(seed int64, branch int64) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(branch)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// recurse bisects g into kl+kr leaf parts. ids maps local vertices to
// original ids; depth tracks the recursion level for parallel fan-out.
func recurse(g *graph.Graph, ids []int, k, base int, opts Options, seed int64, res *Result, mu *sync.Mutex, depth int) {
	if k <= 1 || g.NumVertices() == 0 {
		mu.Lock()
		for _, id := range ids {
			res.Where[id] = base
		}
		mu.Unlock()
		return
	}
	kl := k / 2
	kr := k - kl
	target0 := g.TotalVertexWeight() * kl / k
	if target0 < 1 {
		// Degenerate weights (e.g. all-zero subgraph) must still seed part 0,
		// or the left recursion receives an empty graph forever.
		target0 = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b, stats := Bisect(g, target0, opts, rng)
	mu.Lock()
	res.Stats.add(stats)
	mu.Unlock()

	left, l2gL := g.PartSubgraph(b.Where, 0)
	right, l2gR := g.PartSubgraph(b.Where, 1)
	idsL := make([]int, left.NumVertices())
	for i, lv := range l2gL {
		idsL[i] = ids[lv]
	}
	idsR := make([]int, right.NumVertices())
	for i, rv := range l2gR {
		idsR[i] = ids[rv]
	}
	seedL := deriveSeed(seed, 2)
	seedR := deriveSeed(seed, 3)
	// Fan out the top few levels of the recursion tree; deeper subproblems
	// are small enough that goroutine overhead dominates.
	if opts.Parallel && depth < opts.ParallelDepth && g.NumVertices() > opts.ParallelMinVertices {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			recurse(left, idsL, kl, base, opts, seedL, res, mu, depth+1)
		}()
		recurse(right, idsR, kr, base+kl, opts, seedR, res, mu, depth+1)
		wg.Wait()
	} else {
		recurse(left, idsL, kl, base, opts, seedL, res, mu, depth+1)
		recurse(right, idsR, kr, base+kl, opts, seedR, res, mu, depth+1)
	}
}
