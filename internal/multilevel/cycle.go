package multilevel

import (
	"fmt"
	"math/rand"
	"time"

	"mlpart/internal/coarsen"
	"mlpart/internal/faults"
	"mlpart/internal/graph"
	"mlpart/internal/kway"
	"mlpart/internal/refine"
	"mlpart/internal/trace"
	"mlpart/internal/workspace"
)

// This file is the composable-cycle pipeline: the V-cycle decomposed into
// re-enterable phases — phaseCoarsen, phaseInitial, phaseSeed,
// phaseUncoarsenKWay — plus the iterated-cycle driver behind the
// eco/strong presets. The first cycle of a run is the classic coarsen →
// initial-partition → refine walk (runKWay composes it from the same
// phases); every extra cycle swaps phaseInitial for phaseSeed: the graph
// is re-coarsened *respecting* the current partition, which therefore
// projects onto the coarsest graph with exactly its fine-level cut (the
// contraction invariant), and boundary k-way refinement improves it at
// every level on the way back up.

// cycleBranch offsets the seed-derivation branch of extra cycles so they
// never collide with the recursion branches (2, 3) of the first cycle.
const cycleBranch int64 = 0x5EED

// phaseCoarsen builds one cycle's hierarchy, keeping at least 15*k coarse
// vertices so the coarsest graph can host k parts. respect, when non-nil,
// makes the coarsening partition-respecting (matchings never cross parts).
func (e *engine) phaseCoarsen(g *graph.Graph, k int, respect []int, rng *rand.Rand, ws *workspace.Workspace, tr trace.Tracer, stats *Stats) *coarsen.Hierarchy {
	coarsenTo := e.opts.CoarsenTo
	if min := 15 * k; coarsenTo < min {
		coarsenTo = min
	}
	t0 := time.Now()
	copts := coarsen.Options{
		Scheme:           e.opts.Matching,
		CoarsenTo:        coarsenTo,
		MaxClusterWeight: e.opts.MaxClusterWeight,
		LPRounds:         e.opts.LPRounds,
		Respect:          respect,
		Workspace:        ws,
		Tracer:           tr,
		Injector:         e.inj,
		Degradations:     &stats.Degradations,
	}
	var h *coarsen.Hierarchy
	if e.opts.CoarsenWorkers > 1 {
		h = coarsen.ParallelCoarsen(g, copts, rng, e.opts.CoarsenWorkers)
	} else {
		h = coarsen.Coarsen(g, copts, rng)
	}
	stats.CoarsenTime += time.Since(t0)
	stats.Levels += len(h.Levels)
	if n := h.Coarsest().NumVertices(); n > stats.CoarsestN {
		stats.CoarsestN = n
	}
	return h
}

// phaseInitial partitions the coarsest graph into k parts by recursive
// bisection (cheap: the coarsest graph is tiny) and returns the coarse
// where-vector. Its inner trace events are suppressed — the cycle reports
// one KindInitial event for the whole step — and its preset is forced to
// fast so the initial partition never recurses into iterated cycles.
func (e *engine) phaseInitial(h *coarsen.Hierarchy, k int, tr trace.Tracer, stats *Stats) ([]int, error) {
	t0 := time.Now()
	initOpts := e.opts
	initOpts.Parallel = false
	initOpts.KWayRefine = false
	initOpts.Tracer = nil
	initOpts.Preset = PresetFast
	initOpts.Cycles = 1
	coarse := h.Coarsest()
	cres, err := Partition(coarse, k, initOpts)
	if err != nil {
		return nil, err
	}
	stats.InitTime += time.Since(t0)
	stats.InitialCut = cres.EdgeCut
	stats.Bisections += k - 1
	if tr != nil {
		tr.Event(trace.Event{
			Kind:      trace.KindInitial,
			Level:     len(h.Levels) - 1,
			Vertices:  coarse.NumVertices(),
			Cut:       cres.EdgeCut,
			Algorithm: "RB",
			ElapsedNS: time.Since(t0).Nanoseconds(),
		})
	}
	return cres.Where, nil
}

// phaseSeed is the skip-initial-partition mode of extra cycles: it
// projects an existing finest-level partition down the hierarchy onto the
// coarsest graph. Because the hierarchy was coarsened respecting that
// partition, every multinode is pure and the projected coarse partition
// has exactly the fine partition's cut. The returned where is pooled.
func (e *engine) phaseSeed(h *coarsen.Hierarchy, where []int, ws *workspace.Workspace) []int {
	cur := ws.Int(h.Levels[0].Graph.NumVertices())
	copy(cur, where)
	for li := 0; li+1 < len(h.Levels); li++ {
		cmap := h.Levels[li].Cmap
		nxt := ws.Int(h.Levels[li+1].Graph.NumVertices())
		for v, c := range cmap {
			nxt[c] = cur[v]
		}
		ws.PutInt(cur)
		cur = nxt
	}
	return cur
}

// phaseUncoarsenKWay refines the coarsest k-way partition, then projects
// and refines level by level up to the finest graph. It takes ownership
// of where (pooled or fresh) and returns the finest-level where (pooled);
// on cancellation it releases where and returns nil, false. The hierarchy
// itself is not released. useBKWAY selects the boundary k-way kernel over
// the classic full-sweep greedy refinement.
func (e *engine) phaseUncoarsenKWay(h *coarsen.Hierarchy, k int, where []int, seed int64, ws *workspace.Workspace, stats *Stats, tr trace.Tracer, useBKWAY bool) ([]int, bool) {
	kopts := kway.Options{Ubfactor: e.opts.Ubfactor, Seed: seed, Workspace: ws, Tracer: tr, Counters: &stats.Counters}
	t0 := time.Now()
	p := kway.NewPartition(h.Coarsest(), k, where)
	kopts.Level = len(h.Levels) - 1
	e.guardedKWayRefine(p, kopts, stats, tr, useBKWAY)
	stats.RefineTime += time.Since(t0)
	ok := e.uncoarsen(h, stats, tr, func(li int) int {
		fine := h.Levels[li].Graph
		cmap := h.Levels[li].Cmap
		fineWhere := ws.Int(fine.NumVertices())
		for v := range fineWhere {
			fineWhere[v] = where[cmap[v]]
		}
		ws.PutInt(where)
		where = fineWhere
		p = kway.NewPartition(fine, k, where)
		return p.Cut
	}, func(li int) {
		kopts.Level = li
		e.guardedKWayRefine(p, kopts, stats, tr, useBKWAY)
	})
	if !ok {
		ws.PutInt(where)
		return nil, false
	}
	return where, true
}

// vCycle runs one extra multilevel cycle seeded from seedWhere: coarsen
// respecting the partition, project it to the coarsest graph, refine with
// BKWAY at every level on the way up. It returns a fresh where-vector and
// its cut. Failures (injected via the "cycle" site or organic panics)
// surface as errors for the caller's degradation ladder; they never
// propagate a panic.
func (e *engine) vCycle(g *graph.Graph, k int, seedWhere []int, seed int64) (where []int, cut int, stats *Stats, err error) {
	stats = &Stats{}
	defer func() {
		if r := recover(); r != nil {
			where, cut, err = nil, 0, faults.AsPanic(faults.SiteCycle, r)
		}
	}()
	if ierr := e.inj.Fire(faults.SiteCycle); ierr != nil {
		return nil, 0, stats, ierr
	}
	tr := trace.WithSeed(e.tracer, seed)
	rng := rand.New(rand.NewSource(seed))
	ws := workspace.Get()
	defer workspace.Put(ws)

	h := e.phaseCoarsen(g, k, seedWhere, rng, ws, tr, stats)
	emitDegraded(tr, stats.Degradations, 0)
	if cerr := e.ctx.Err(); cerr != nil {
		h.Release(ws)
		return nil, 0, stats, cerr
	}
	cw := e.phaseSeed(h, seedWhere, ws)
	fw, ok := e.phaseUncoarsenKWay(h, k, cw, seed, ws, stats, tr, true)
	if !ok {
		h.Release(ws)
		if cerr := e.ctx.Err(); cerr != nil {
			return nil, 0, stats, cerr
		}
		e.mu.Lock()
		ferr := e.err
		e.mu.Unlock()
		return nil, 0, stats, ferr
	}
	where = make([]int, g.NumVertices())
	copy(where, fw)
	ws.PutInt(fw)
	h.Release(ws)
	return where, refine.ComputeCut(g, where), stats, nil
}

// iterate is the cycle driver behind the eco/strong presets: after the
// first cycle has produced res, it runs CycleCount()-1 extra V-cycles,
// each seeded from the best partition so far with its own derived seed,
// and keeps the best cut. Cancellation at a cycle boundary (or mid-cycle)
// returns the best completed partition silently — a full, valid result.
// Any other cycle failure degrades to the best completed partition,
// recorded in Stats.Degradations, never a hard error.
func (e *engine) iterate(g *graph.Graph, k int, res *Result) {
	res.Stats.Cycles = 1
	cycles := e.opts.CycleCount()
	if cycles <= 1 || k < 2 || g.NumVertices() == 0 {
		return
	}
	tr := trace.WithSeed(e.tracer, e.opts.Seed)
	bestCut := refine.ComputeCut(g, res.Where)
	if tr != nil {
		tr.Event(trace.Event{Kind: trace.KindCycle, Cycle: 0, Cut: bestCut})
	}
	for c := 1; c < cycles; c++ {
		if e.ctx.Err() != nil {
			break
		}
		t0 := time.Now()
		where, cut, cstats, err := e.vCycle(g, k, res.Where, deriveSeed(e.opts.Seed, cycleBranch+int64(c)))
		if err != nil {
			if e.ctx.Err() != nil {
				break
			}
			e.noteDegradation(&res.Stats, tr, trace.Degradation{
				Phase:  "cycle",
				From:   fmt.Sprintf("cycle-%d", c),
				To:     "best-completed",
				Reason: err.Error(),
			})
			break
		}
		res.Stats.add(cstats)
		res.Stats.Cycles++
		if tr != nil {
			tr.Event(trace.Event{
				Kind:      trace.KindCycle,
				Cycle:     c,
				Cut:       cut,
				ElapsedNS: time.Since(t0).Nanoseconds(),
			})
		}
		// Refinement never worsens the seed it started from, so the new
		// cut is at most bestCut; adopt strict improvements only to keep
		// the best partition stable under ties.
		if cut < bestCut {
			bestCut = cut
			copy(res.Where, where)
		}
	}
}
