package multilevel

import (
	"fmt"
	"math/rand"
	"time"

	"mlpart/internal/coarsen"
	"mlpart/internal/faults"
	"mlpart/internal/graph"
	"mlpart/internal/kway"
	"mlpart/internal/refine"
	"mlpart/internal/trace"
	"mlpart/internal/workspace"
)

// PartitionKWay computes a k-way partition with the *direct multilevel
// k-way* scheme: the graph is coarsened once, the coarsest graph is split
// into k parts by recursive bisection, and the k-way partition is then
// projected and refined (greedy k-way refinement) at every uncoarsening
// level. Compared with plain recursive bisection — which rebuilds a
// hierarchy for each of the k-1 bisections — this coarsens once, so it is
// substantially faster for large k at comparable quality. This is the
// follow-up direction the paper's authors took after ICPP'95 (k-way
// METIS); it is provided as an extension.
func PartitionKWay(g *graph.Graph, k int, opts Options) (*Result, error) {
	if err := validate(g, k, opts); err != nil {
		return nil, err
	}
	e := newEngine(opts)
	return e.runKWay(g, k)
}

// runKWay is the direct k-way parameterization of the V-cycle: one
// hierarchy, a recursive-bisection initial partition on the coarsest
// graph, and kway.Refine at every level of the shared uncoarsening walk.
func (e *engine) runKWay(g *graph.Graph, k int) (res *Result, err error) {
	// Same outermost panic boundary as run: a poisoned k-way cycle returns
	// an error instead of crashing the caller.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("multilevel: %w", faults.AsPanic("engine/run", r))
		}
	}()
	opts := e.opts
	res = &Result{
		Where:       make([]int, g.NumVertices()),
		PartWeights: make([]int, k),
	}
	if k == 1 || g.NumVertices() == 0 {
		res.EdgeCut = 0
		res.PartWeights[0] = g.TotalVertexWeight()
		return res, nil
	}

	tr := trace.WithSeed(e.tracer, opts.Seed)
	rng := rand.New(rand.NewSource(opts.Seed))
	ws := workspace.Get()
	defer workspace.Put(ws)
	// Coarsen once, but keep enough coarse vertices to host k parts.
	coarsenTo := opts.CoarsenTo
	if min := 15 * k; coarsenTo < min {
		coarsenTo = min
	}
	t0 := time.Now()
	h := coarsen.Coarsen(g, coarsen.Options{
		Scheme:       opts.Matching,
		CoarsenTo:    coarsenTo,
		Workspace:    ws,
		Tracer:       tr,
		Injector:     e.inj,
		Degradations: &res.Stats.Degradations,
	}, rng)
	res.Stats.CoarsenTime = time.Since(t0)
	res.Stats.Levels = len(h.Levels)
	res.Stats.CoarsestN = h.Coarsest().NumVertices()
	emitDegraded(tr, res.Stats.Degradations, 0)
	if e.cancelled() {
		h.Release(ws)
		return nil, fmt.Errorf("multilevel: %w", e.err)
	}

	// Initial k-way partition of the coarsest graph by recursive bisection
	// (cheap: the coarsest graph is tiny). Its trace events are suppressed —
	// the outer V-cycle reports one KindInitial event for the whole step.
	t0 = time.Now()
	initOpts := opts
	initOpts.Parallel = false
	initOpts.KWayRefine = false
	initOpts.Tracer = nil
	coarse := h.Coarsest()
	cres, err := Partition(coarse, k, initOpts)
	if err != nil {
		return nil, err
	}
	res.Stats.InitTime = time.Since(t0)
	res.Stats.InitialCut = cres.EdgeCut
	res.Stats.Bisections = k - 1
	if tr != nil {
		tr.Event(trace.Event{
			Kind:      trace.KindInitial,
			Level:     len(h.Levels) - 1,
			Vertices:  coarse.NumVertices(),
			Cut:       cres.EdgeCut,
			Algorithm: "RB",
			ElapsedNS: res.Stats.InitTime.Nanoseconds(),
		})
	}

	// Uncoarsen: project the k-way partition and refine at every level.
	// Intermediate where-vectors are pooled; only the finest one is copied
	// into the escaping result.
	where := cres.Where
	kopts := kway.Options{Ubfactor: opts.Ubfactor, Seed: opts.Seed, Workspace: ws, Tracer: tr, Counters: &res.Stats.Counters}
	t0 = time.Now()
	p := kway.NewPartition(coarse, k, where)
	kopts.Level = len(h.Levels) - 1
	e.guardedKWayRefine(p, kopts, &res.Stats, tr)
	res.Stats.RefineTime += time.Since(t0)
	ok := e.uncoarsen(h, &res.Stats, tr, func(li int) int {
		fine := h.Levels[li].Graph
		cmap := h.Levels[li].Cmap
		fineWhere := ws.Int(fine.NumVertices())
		for v := range fineWhere {
			fineWhere[v] = where[cmap[v]]
		}
		ws.PutInt(where)
		where = fineWhere
		p = kway.NewPartition(fine, k, where)
		return p.Cut
	}, func(li int) {
		kopts.Level = li
		e.guardedKWayRefine(p, kopts, &res.Stats, tr)
	})
	if !ok {
		ws.PutInt(where)
		h.Release(ws)
		return nil, fmt.Errorf("multilevel: %w", e.err)
	}

	copy(res.Where, where)
	ws.PutInt(where)
	h.Release(ws)
	for v, part := range res.Where {
		res.PartWeights[part] += g.Vwgt[v]
	}
	res.EdgeCut = refine.ComputeCut(g, res.Where)
	emitPhases(tr, &res.Stats)
	return res, nil
}
