package multilevel

import (
	"fmt"
	"math/rand"

	"mlpart/internal/faults"
	"mlpart/internal/graph"
	"mlpart/internal/refine"
	"mlpart/internal/trace"
	"mlpart/internal/workspace"
)

// PartitionKWay computes a k-way partition with the *direct multilevel
// k-way* scheme: the graph is coarsened once, the coarsest graph is split
// into k parts by recursive bisection, and the k-way partition is then
// projected and refined (greedy k-way refinement) at every uncoarsening
// level. Compared with plain recursive bisection — which rebuilds a
// hierarchy for each of the k-1 bisections — this coarsens once, so it is
// substantially faster for large k at comparable quality. This is the
// follow-up direction the paper's authors took after ICPP'95 (k-way
// METIS); it is provided as an extension.
func PartitionKWay(g *graph.Graph, k int, opts Options) (*Result, error) {
	if err := validate(g, k, opts); err != nil {
		return nil, err
	}
	e := newEngine(opts)
	return e.runKWay(g, k)
}

// runKWay is the direct k-way parameterization of the V-cycle, composed
// from the re-enterable phases of cycle.go: one hierarchy (phaseCoarsen),
// a recursive-bisection initial partition on the coarsest graph
// (phaseInitial), and per-level k-way refinement on the shared
// uncoarsening walk (phaseUncoarsenKWay), followed by the extra cycles of
// the eco/strong presets.
func (e *engine) runKWay(g *graph.Graph, k int) (res *Result, err error) {
	// Same outermost panic boundary as run: a poisoned k-way cycle returns
	// an error instead of crashing the caller.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("multilevel: %w", faults.AsPanic("engine/run", r))
		}
	}()
	opts := e.opts
	res = &Result{
		Where:       make([]int, g.NumVertices()),
		PartWeights: make([]int, k),
	}
	if k == 1 || g.NumVertices() == 0 {
		res.EdgeCut = 0
		res.PartWeights[0] = g.TotalVertexWeight()
		res.Stats.Cycles = 1
		return res, nil
	}

	tr := trace.WithSeed(e.tracer, opts.Seed)
	rng := rand.New(rand.NewSource(opts.Seed))
	ws := workspace.Get()
	defer workspace.Put(ws)
	h := e.phaseCoarsen(g, k, nil, rng, ws, tr, &res.Stats)
	emitDegraded(tr, res.Stats.Degradations, 0)
	if e.cancelled() {
		h.Release(ws)
		return nil, fmt.Errorf("multilevel: %w", e.err)
	}

	where, err := e.phaseInitial(h, k, tr, &res.Stats)
	if err != nil {
		h.Release(ws)
		return nil, err
	}

	// Uncoarsen: project the k-way partition and refine at every level.
	// Intermediate where-vectors are pooled; only the finest one is copied
	// into the escaping result.
	where, ok := e.phaseUncoarsenKWay(h, k, where, opts.Seed, ws, &res.Stats, tr, opts.Refinement == refine.BKWAY)
	if !ok {
		h.Release(ws)
		return nil, fmt.Errorf("multilevel: %w", e.err)
	}

	copy(res.Where, where)
	ws.PutInt(where)
	h.Release(ws)
	e.iterate(g, k, res)
	for v, part := range res.Where {
		res.PartWeights[part] += g.Vwgt[v]
	}
	res.EdgeCut = refine.ComputeCut(g, res.Where)
	emitPhases(tr, &res.Stats)
	return res, nil
}
