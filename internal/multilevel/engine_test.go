package multilevel

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"mlpart/internal/matgen"
	"mlpart/internal/trace"
)

// TestWeightedParallelParity pins the engine guarantee that the weighted
// recursion — which historically ran sequential-only — produces identical
// partitions with the parallel fan-out enabled, because every subproblem
// derives its own seed.
func TestWeightedParallelParity(t *testing.T) {
	g := matgen.Mesh2DTri(40, 40, 0.02, 4)
	fractions := []float64{5, 3, 2, 1, 1}
	for _, seed := range []int64{1, 42, 9999} {
		seq, err := PartitionWeighted(g, fractions, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		par, err := PartitionWeighted(g, fractions, Options{
			Seed:                seed,
			Parallel:            true,
			ParallelDepth:       8,
			ParallelMinVertices: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Where, par.Where) {
			t.Errorf("seed %d: parallel weighted partition differs from sequential", seed)
		}
		if seq.EdgeCut != par.EdgeCut {
			t.Errorf("seed %d: cut %d (sequential) != %d (parallel)", seed, seq.EdgeCut, par.EdgeCut)
		}
	}
}

// TestUniformParallelParity does the same for the uniform path, including
// NCuts trials running concurrently.
func TestUniformParallelParity(t *testing.T) {
	g := matgen.FE3DTetra(9, 9, 9, 2)
	seq, err := Partition(g, 6, Options{Seed: 3, NCuts: 3})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Partition(g, 6, Options{
		Seed: 3, NCuts: 3,
		Parallel: true, ParallelDepth: 8, ParallelMinVertices: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Where, par.Where) {
		t.Error("parallel uniform partition differs from sequential")
	}
}

// TestTracerNeutral pins the acceptance criterion that attaching a tracer
// changes nothing about the partition itself.
func TestTracerNeutral(t *testing.T) {
	g := matgen.Mesh2DTri(30, 30, 0.02, 4)
	plain, err := Partition(g, 5, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var col trace.Collector
	traced, err := Partition(g, 5, Options{Seed: 11, Tracer: &col})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Where, traced.Where) || plain.EdgeCut != traced.EdgeCut {
		t.Error("tracer changed the partition result")
	}
	if len(col.Events()) == 0 {
		t.Error("tracer received no events")
	}
}

// TestStatsMatchTraceEvents checks that the counters aggregated into Stats
// across all recursion branches equal the per-event totals the tracer sees:
// the two observation channels must agree.
func TestStatsMatchTraceEvents(t *testing.T) {
	g := matgen.Mesh2DTri(30, 30, 0.02, 4)
	var col trace.Collector
	res, err := Partition(g, 6, Options{Seed: 17, Tracer: &col})
	if err != nil {
		t.Fatal(err)
	}
	passes, moves, posGain, projections := 0, 0, 0, 0
	for _, ev := range col.Events() {
		switch ev.Kind {
		case trace.KindPass:
			passes++
			moves += ev.Moves
			posGain += ev.PositiveGainMoves
		case trace.KindProject:
			projections++
		}
	}
	s := &res.Stats
	if s.RefinePasses != passes {
		t.Errorf("Stats.RefinePasses = %d, trace saw %d pass events", s.RefinePasses, passes)
	}
	if s.RefineMoves != moves {
		t.Errorf("Stats.RefineMoves = %d, trace saw %d moves", s.RefineMoves, moves)
	}
	if s.PositiveGainMoves != posGain {
		t.Errorf("Stats.PositiveGainMoves = %d, trace saw %d", s.PositiveGainMoves, posGain)
	}
	if s.Projections != projections {
		t.Errorf("Stats.Projections = %d, trace saw %d project events", s.Projections, projections)
	}
	if s.RefinePasses == 0 || s.Projections == 0 {
		t.Error("expected nonzero refinement and projection activity")
	}
}

// TestStatsAggregateAcrossParallelBranches repeats the agreement check with
// the parallel fan-out on: counters from concurrent bisections must all
// land in the aggregate (run with -race to catch unsynchronized adds).
func TestStatsAggregateAcrossParallelBranches(t *testing.T) {
	g := matgen.Mesh2DTri(40, 40, 0.02, 4)
	var col trace.Collector
	res, err := Partition(g, 8, Options{
		Seed: 17, Tracer: &col,
		Parallel: true, ParallelDepth: 8, ParallelMinVertices: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	passes := 0
	for _, ev := range col.Events() {
		if ev.Kind == trace.KindPass {
			passes++
		}
	}
	if res.Stats.RefinePasses != passes {
		t.Errorf("parallel Stats.RefinePasses = %d, trace saw %d", res.Stats.RefinePasses, passes)
	}
	if res.Stats.Bisections != 7 {
		t.Errorf("Bisections = %d, want 7", res.Stats.Bisections)
	}
}

// TestKWayTraceEvents checks the direct k-way V-cycle emits the same event
// vocabulary: levels, one initial event, per-level passes and projections.
func TestKWayTraceEvents(t *testing.T) {
	g := matgen.FE3DTetra(8, 8, 8, 2)
	var col trace.Collector
	res, err := PartitionKWay(g, 7, Options{Seed: 5, Tracer: &col})
	if err != nil {
		t.Fatal(err)
	}
	var levels, initials, passes, projects, phases int
	for _, ev := range col.Events() {
		switch ev.Kind {
		case trace.KindLevel:
			levels++
		case trace.KindInitial:
			initials++
		case trace.KindPass:
			passes++
		case trace.KindProject:
			projects++
		case trace.KindPhase:
			phases++
		}
	}
	if levels != res.Stats.Levels {
		t.Errorf("level events = %d, Stats.Levels = %d", levels, res.Stats.Levels)
	}
	if initials != 1 {
		t.Errorf("initial events = %d, want 1 (inner recursion must be suppressed)", initials)
	}
	if projects != res.Stats.Levels-1 || projects != res.Stats.Projections {
		t.Errorf("project events = %d, want %d (Stats has %d)",
			projects, res.Stats.Levels-1, res.Stats.Projections)
	}
	if passes != res.Stats.RefinePasses || passes == 0 {
		t.Errorf("pass events = %d, Stats.RefinePasses = %d", passes, res.Stats.RefinePasses)
	}
	if phases != 4 {
		t.Errorf("phase events = %d, want 4", phases)
	}
}

// TestCancellation checks every driver returns a wrapped context error when
// its context is already cancelled, and that Bisect reports nil.
func TestCancellation(t *testing.T) {
	g := matgen.Mesh2DTri(30, 30, 0.02, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{Seed: 1, Context: ctx}

	if _, err := Partition(g, 4, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("Partition: err = %v, want context.Canceled", err)
	}
	if _, err := PartitionKWay(g, 4, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("PartitionKWay: err = %v, want context.Canceled", err)
	}
	if _, err := PartitionWeighted(g, []float64{1, 2}, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("PartitionWeighted: err = %v, want context.Canceled", err)
	}
	if b, _ := Bisect(g, 0, opts, rand.New(rand.NewSource(1))); b != nil {
		t.Error("Bisect with cancelled context returned a bisection")
	}
}

// TestContextNeutral checks that threading an un-cancelled context changes
// nothing about the result.
func TestContextNeutral(t *testing.T) {
	g := matgen.Mesh2DTri(30, 30, 0.02, 4)
	plain, err := Partition(g, 5, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := Partition(g, 5, Options{Seed: 11, Context: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Where, withCtx.Where) {
		t.Error("context changed the partition result")
	}
}
