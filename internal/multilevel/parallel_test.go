package multilevel

import (
	"slices"
	"testing"

	"mlpart/internal/matgen"
)

// TestNCutsParallelMatchesSerial pins the order-independence of the NCuts
// trials: because every trial derives its own seed, the parallel run must
// pick the exact bisection (cut AND vector) the sequential loop picks.
func TestNCutsParallelMatchesSerial(t *testing.T) {
	g := matgen.FE3DTetra(9, 9, 9, 2)
	serial, _ := Bisect(g, 0, Options{Seed: 7, NCuts: 4}, rng(7))
	par, _ := Bisect(g, 0, Options{Seed: 7, NCuts: 4, Parallel: true}, rng(7))
	if par.Cut != serial.Cut {
		t.Fatalf("parallel NCuts cut %d, serial %d", par.Cut, serial.Cut)
	}
	if !slices.Equal(par.Where, serial.Where) {
		t.Fatal("parallel NCuts picked a different bisection than serial")
	}
}

// TestNCutsParallelPartition is the same contract through the full k-way
// recursion, with the fan-out thresholds forced low so both parallel paths
// (recursion and NCuts trials) actually execute.
func TestNCutsParallelPartition(t *testing.T) {
	g := matgen.Mesh2DTri(25, 25, 0.02, 4)
	serial, err := Partition(g, 8, Options{Seed: 3, NCuts: 3})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Partition(g, 8, Options{
		Seed: 3, NCuts: 3, Parallel: true,
		ParallelDepth: 8, ParallelMinVertices: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if par.EdgeCut != serial.EdgeCut {
		t.Fatalf("parallel edge-cut %d, serial %d", par.EdgeCut, serial.EdgeCut)
	}
	if !slices.Equal(par.Where, serial.Where) {
		t.Fatal("parallel partition differs from serial")
	}
}

// TestValidateOptions: every malformed option combination is rejected with
// an error instead of recursing into nonsense.
func TestValidateOptions(t *testing.T) {
	g := matgen.Grid2D(8, 8) // 64 vertices
	cases := []struct {
		name string
		k    int
		opts Options
	}{
		{"k=0", 0, Options{}},
		{"k<0", -3, Options{}},
		{"k>n", 65, Options{}},
		{"NCuts<0", 2, Options{NCuts: -1}},
		{"InitTrials<0", 2, Options{InitTrials: -2}},
		{"CoarsenWorkers<0", 2, Options{CoarsenWorkers: -1}},
		{"Ubfactor<1", 2, Options{Ubfactor: 0.5}},
		{"ParallelDepth<0", 2, Options{ParallelDepth: -1}},
		{"ParallelMinVertices<0", 2, Options{ParallelMinVertices: -5}},
	}
	for _, tc := range cases {
		if _, err := Partition(g, tc.k, tc.opts); err == nil {
			t.Errorf("Partition %s: no error", tc.name)
		}
		if _, err := PartitionKWay(g, tc.k, tc.opts); err == nil {
			t.Errorf("PartitionKWay %s: no error", tc.name)
		}
		if tc.k >= 1 {
			fr := make([]float64, tc.k)
			for i := range fr {
				fr[i] = 1
			}
			if _, err := PartitionWeighted(g, fr, tc.opts); err == nil {
				t.Errorf("PartitionWeighted %s: no error", tc.name)
			}
		}
	}
}
