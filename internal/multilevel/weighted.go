package multilevel

import (
	"fmt"
	"math/rand"
	"sync"

	"mlpart/internal/graph"
	"mlpart/internal/refine"
)

// PartitionWeighted divides g into len(fractions) parts where part p
// receives (approximately) fractions[p] of the total vertex weight — the
// generalization of Partition to heterogeneous targets (e.g. processors of
// different speeds). Fractions must be positive; they are normalized
// internally. Each recursive bisection splits the remaining fraction mass
// between the two half-ranges of parts.
func PartitionWeighted(g *graph.Graph, fractions []float64, opts Options) (*Result, error) {
	k := len(fractions)
	if k < 1 {
		return nil, fmt.Errorf("multilevel: no fractions given")
	}
	if err := validate(g, k, opts); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	sum := 0.0
	for p, f := range fractions {
		if f <= 0 {
			return nil, fmt.Errorf("multilevel: fractions[%d] = %v, want > 0", p, f)
		}
		sum += f
	}
	norm := make([]float64, k)
	for p, f := range fractions {
		norm[p] = f / sum
	}

	res := &Result{
		Where:       make([]int, g.NumVertices()),
		PartWeights: make([]int, k),
	}
	ids := make([]int, g.NumVertices())
	for i := range ids {
		ids[i] = i
	}
	var mu sync.Mutex
	recurseWeighted(g, ids, norm, 0, opts, opts.Seed, res, &mu)
	for v, p := range res.Where {
		res.PartWeights[p] += g.Vwgt[v]
	}
	res.EdgeCut = refine.ComputeCut(g, res.Where)
	return res, nil
}

func recurseWeighted(g *graph.Graph, ids []int, fractions []float64, base int, opts Options, seed int64, res *Result, mu *sync.Mutex) {
	k := len(fractions)
	if k <= 1 || g.NumVertices() == 0 {
		mu.Lock()
		for _, id := range ids {
			res.Where[id] = base
		}
		mu.Unlock()
		return
	}
	kl := k / 2
	fracL := 0.0
	for _, f := range fractions[:kl] {
		fracL += f
	}
	fracTot := fracL
	for _, f := range fractions[kl:] {
		fracTot += f
	}
	target0 := int(float64(g.TotalVertexWeight()) * fracL / fracTot)
	if target0 < 1 {
		target0 = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b, stats := Bisect(g, target0, opts, rng)
	mu.Lock()
	res.Stats.add(stats)
	mu.Unlock()

	left, l2gL := g.PartSubgraph(b.Where, 0)
	right, l2gR := g.PartSubgraph(b.Where, 1)
	idsL := make([]int, left.NumVertices())
	for i, lv := range l2gL {
		idsL[i] = ids[lv]
	}
	idsR := make([]int, right.NumVertices())
	for i, rv := range l2gR {
		idsR[i] = ids[rv]
	}
	recurseWeighted(left, idsL, fractions[:kl], base, opts, deriveSeed(seed, 2), res, mu)
	recurseWeighted(right, idsR, fractions[kl:], base+kl, opts, deriveSeed(seed, 3), res, mu)
}
