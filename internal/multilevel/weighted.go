package multilevel

import (
	"fmt"

	"mlpart/internal/graph"
)

// PartitionWeighted divides g into len(fractions) parts where part p
// receives (approximately) fractions[p] of the total vertex weight — the
// generalization of Partition to heterogeneous targets (e.g. processors of
// different speeds). Fractions must be positive; they are normalized
// internally. Each recursive bisection splits the remaining fraction mass
// between the two half-ranges of parts.
//
// It is the weightedSplit parameterization of the shared V-cycle engine,
// so Parallel, NCuts, Context and Tracer behave exactly as in Partition.
// KWayRefine is ignored: the direct k-way refinement pass assumes equal
// part targets.
func PartitionWeighted(g *graph.Graph, fractions []float64, opts Options) (*Result, error) {
	k := len(fractions)
	if k < 1 {
		return nil, fmt.Errorf("multilevel: no fractions given")
	}
	if err := validate(g, k, opts); err != nil {
		return nil, err
	}
	sum := 0.0
	for p, f := range fractions {
		if f <= 0 {
			return nil, fmt.Errorf("multilevel: fractions[%d] = %v, want > 0", p, f)
		}
		sum += f
	}
	norm := make(weightedSplit, k)
	for p, f := range fractions {
		norm[p] = f / sum
	}
	e := newEngine(opts)
	return e.run(g, norm, false)
}
