package multilevel

import (
	"reflect"
	"testing"

	"mlpart/internal/coarsen"
	"mlpart/internal/matgen"
	"mlpart/internal/refine"
)

// TestGoldenMatrix pins the fixed-seed edge-cut of every refinement policy
// crossed with both matching schemes on two Table-2 workloads. Any engine
// change that shifts a single cut shows up as a one-cell diff here. BKWAY
// rows must equal their BKLGR counterparts on this recursive path: the
// boundary k-way engine only engages on direct k-way partitions and falls
// back to BKLGR inside bisections by design.
func TestGoldenMatrix(t *testing.T) {
	graphs := map[string]*matgen.Named{}
	for _, name := range []string{"BRCK", "WAVE"} {
		w, err := matgen.Generate(name, 0.04)
		if err != nil {
			t.Fatal(err)
		}
		graphs[name] = &w
	}
	cases := []struct {
		workload string
		matching coarsen.Scheme
		policy   refine.Policy
		wantCut  int
	}{
		{"BRCK", coarsen.RM, refine.GR, 461},
		{"BRCK", coarsen.RM, refine.KLR, 466},
		{"BRCK", coarsen.RM, refine.BGR, 461},
		{"BRCK", coarsen.RM, refine.BKLR, 469},
		{"BRCK", coarsen.RM, refine.BKLGR, 461},
		{"BRCK", coarsen.RM, refine.BKWAY, 461},
		{"BRCK", coarsen.HEM, refine.GR, 464},
		{"BRCK", coarsen.HEM, refine.KLR, 464},
		{"BRCK", coarsen.HEM, refine.BGR, 472},
		{"BRCK", coarsen.HEM, refine.BKLR, 473},
		{"BRCK", coarsen.HEM, refine.BKLGR, 472},
		{"BRCK", coarsen.HEM, refine.BKWAY, 472},
		{"WAVE", coarsen.RM, refine.GR, 894},
		{"WAVE", coarsen.RM, refine.KLR, 887},
		{"WAVE", coarsen.RM, refine.BGR, 894},
		{"WAVE", coarsen.RM, refine.BKLR, 925},
		{"WAVE", coarsen.RM, refine.BKLGR, 894},
		{"WAVE", coarsen.RM, refine.BKWAY, 894},
		{"WAVE", coarsen.HEM, refine.GR, 934},
		{"WAVE", coarsen.HEM, refine.KLR, 884},
		{"WAVE", coarsen.HEM, refine.BGR, 904},
		{"WAVE", coarsen.HEM, refine.BKLR, 890},
		{"WAVE", coarsen.HEM, refine.BKLGR, 934},
		{"WAVE", coarsen.HEM, refine.BKWAY, 934},
	}
	for _, tc := range cases {
		res, err := Partition(graphs[tc.workload].Graph, 8,
			Options{Seed: 3}.WithMatching(tc.matching).WithRefinement(tc.policy))
		if err != nil {
			t.Fatalf("%s/%s/%s: %v", tc.workload, tc.matching, tc.policy, err)
		}
		if res.EdgeCut != tc.wantCut {
			t.Errorf("%s/%s/%s: cut=%d, want %d",
				tc.workload, tc.matching, tc.policy, res.EdgeCut, tc.wantCut)
		}
	}
}

// TestGoldenGCLPMatrix pins the fixed-seed edge-cut of GCLP cluster
// coarsening on the two mesh workloads of TestGoldenMatrix plus a power-law
// social graph — the workload class GCLP exists for. The mesh rows guard
// GCLP's own determinism; TestGoldenMatrix above guards that adding the
// scheme never moved a cut of the matching family.
func TestGoldenGCLPMatrix(t *testing.T) {
	graphs := map[string]*matgen.Named{}
	for _, name := range []string{"BRCK", "WAVE"} {
		w, err := matgen.Generate(name, 0.04)
		if err != nil {
			t.Fatal(err)
		}
		graphs[name] = &w
	}
	soc := matgen.SocialNetwork(4096, 4, 23)
	graphs["SOC"] = &matgen.Named{Name: "SOC", Graph: soc}
	cases := []struct {
		workload string
		policy   refine.Policy
		wantCut  int
	}{
		{"BRCK", refine.GR, 486},
		{"BRCK", refine.BKLGR, 481},
		{"WAVE", refine.GR, 920},
		{"WAVE", refine.BKLGR, 913},
		{"SOC", refine.GR, 9000},
		{"SOC", refine.BKLGR, 9013},
	}
	for _, tc := range cases {
		res, err := Partition(graphs[tc.workload].Graph, 8,
			Options{Seed: 3}.WithMatching(coarsen.GCLP).WithRefinement(tc.policy))
		if err != nil {
			t.Fatalf("%s/GCLP/%s: %v", tc.workload, tc.policy, err)
		}
		if res.EdgeCut != tc.wantCut {
			t.Errorf("%s/GCLP/%s: cut=%d, want %d",
				tc.workload, tc.policy, res.EdgeCut, tc.wantCut)
		}
	}
}

// TestGoldenGCLPRefineWorkersParity asserts the RefineWorkers parity
// contract holds under GCLP coarsening too: the direct k-way BKWAY result
// is identical for every worker count.
func TestGoldenGCLPRefineWorkersParity(t *testing.T) {
	soc := matgen.SocialNetwork(4096, 4, 23)
	serial, err := PartitionKWay(soc, 16,
		Options{Seed: 3}.WithMatching(coarsen.GCLP).WithRefinement(refine.BKWAY))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		par, err := PartitionKWay(soc, 16,
			Options{Seed: 3, RefineWorkers: workers}.
				WithMatching(coarsen.GCLP).WithRefinement(refine.BKWAY))
		if err != nil {
			t.Fatal(err)
		}
		if par.EdgeCut != serial.EdgeCut {
			t.Errorf("RefineWorkers=%d: cut=%d, serial %d", workers, par.EdgeCut, serial.EdgeCut)
		}
		if !reflect.DeepEqual(par.Where, serial.Where) {
			t.Errorf("RefineWorkers=%d: partition vector diverges from serial", workers)
		}
	}
}

// TestGoldenBKWAYDirectParity pins the direct k-way BKWAY result and
// asserts the engine's parity contract end-to-end: RefineWorkers changes
// scheduling only, never the partition.
func TestGoldenBKWAYDirectParity(t *testing.T) {
	w, err := matgen.Generate("BRCK", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := PartitionKWay(w.Graph, 16,
		Options{Seed: 3}.WithRefinement(refine.BKWAY))
	if err != nil {
		t.Fatal(err)
	}
	wantPW := []int{37, 37, 36, 38, 37, 35, 38, 37, 37, 37, 38, 37, 38, 38, 37, 37}
	if serial.EdgeCut != 675 || !reflect.DeepEqual(serial.PartWeights, wantPW) {
		t.Errorf("serial BKWAY: cut=%d pw=%v, want cut=675 pw=%v",
			serial.EdgeCut, serial.PartWeights, wantPW)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		par, err := PartitionKWay(w.Graph, 16,
			Options{Seed: 3, RefineWorkers: workers}.WithRefinement(refine.BKWAY))
		if err != nil {
			t.Fatal(err)
		}
		if par.EdgeCut != serial.EdgeCut {
			t.Errorf("RefineWorkers=%d: cut=%d, serial %d", workers, par.EdgeCut, serial.EdgeCut)
		}
		if !reflect.DeepEqual(par.Where, serial.Where) {
			t.Errorf("RefineWorkers=%d: partition vector diverges from serial", workers)
		}
	}
}
