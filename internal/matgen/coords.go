package matgen

import (
	"math/rand"

	"mlpart/internal/graph"
)

// Point is a vertex coordinate for the geometric partitioners; Z is zero
// for 2D workloads.
type Point struct {
	X, Y, Z float64
}

// GeoMesh2D generates an irregular triangulated 2D mesh together with the
// vertex coordinates, for comparing coordinate-based partitioners against
// the (coordinate-free) multilevel scheme. Coordinates are the grid
// positions with a small deterministic jitter.
func GeoMesh2D(rows, cols int, seed int64) (*graph.Graph, []Point) {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(rows * cols)
	pts := make([]Point, rows*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts[id(r, c)] = Point{
				X: float64(c) + 0.3*(rng.Float64()-0.5),
				Y: float64(r) + 0.3*(rng.Float64()-0.5),
			}
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
			if r+1 < rows && c+1 < cols {
				if rng.Intn(2) == 0 {
					b.AddEdge(id(r, c), id(r+1, c+1))
				} else {
					b.AddEdge(id(r, c+1), id(r+1, c))
				}
			}
		}
	}
	return b.MustBuild(), pts
}

// GeoMesh3D generates a 3D finite-element mesh with coordinates, the 3D
// analog of GeoMesh2D.
func GeoMesh3D(nx, ny, nz int, seed int64) (*graph.Graph, []Point) {
	g := FE3DTetra(nx, ny, nz, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	pts := make([]Point, nx*ny*nz)
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				pts[i] = Point{
					X: float64(x) + 0.2*(rng.Float64()-0.5),
					Y: float64(y) + 0.2*(rng.Float64()-0.5),
					Z: float64(z) + 0.2*(rng.Float64()-0.5),
				}
				i++
			}
		}
	}
	return g, pts
}
