package matgen

import (
	"sort"
	"testing"
	"testing/quick"

	"mlpart/internal/graph"
)

func checkGraph(t *testing.T, g *graph.Graph, name string) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !g.IsConnected() {
		t.Errorf("%s: not connected", name)
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(4, 5)
	checkGraph(t, g, "grid2d")
	if g.NumVertices() != 20 {
		t.Fatalf("n = %d, want 20", g.NumVertices())
	}
	// Edges: 4*4 horizontal + 3*5 vertical = 31.
	if g.NumEdges() != 31 {
		t.Fatalf("m = %d, want 31", g.NumEdges())
	}
}

func TestCFD2DDegrees(t *testing.T) {
	g := CFD2D(10, 10)
	checkGraph(t, g, "cfd2d")
	// Interior vertices of a 9-point stencil have degree 8.
	maxd := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > maxd {
			maxd = d
		}
	}
	if maxd != 8 {
		t.Fatalf("max degree = %d, want 8", maxd)
	}
}

func TestGrid3DSize(t *testing.T) {
	g := Grid3D(3, 4, 5)
	checkGraph(t, g, "grid3d")
	if g.NumVertices() != 60 {
		t.Fatalf("n = %d, want 60", g.NumVertices())
	}
	// Edges: 2*4*5 + 3*3*5 + 3*4*4 = 40+45+48 = 133.
	if g.NumEdges() != 133 {
		t.Fatalf("m = %d, want 133", g.NumEdges())
	}
}

func TestStiffness3DDegree(t *testing.T) {
	g := Stiffness3D(5, 5, 5)
	checkGraph(t, g, "stiffness3d")
	// Fully interior vertex has 26 neighbors.
	maxd := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > maxd {
			maxd = d
		}
	}
	if maxd != 26 {
		t.Fatalf("max degree = %d, want 26", maxd)
	}
}

func TestMesh2DTriConnectedWithHoles(t *testing.T) {
	g := Mesh2DTri(40, 40, 0.05, 7)
	checkGraph(t, g, "mesh2dtri")
	if g.NumVertices() < 1000 {
		t.Fatalf("n = %d, too small", g.NumVertices())
	}
	avg := g.AverageDegree()
	if avg < 3 || avg > 8 {
		t.Fatalf("avg degree = %v, want FE-like (3..8)", avg)
	}
}

func TestLShapeQuadrantRemoved(t *testing.T) {
	g := LShape(8)
	checkGraph(t, g, "lshape")
	want := 3 * 8 * 8 // three quadrants of a 16x16 grid
	if g.NumVertices() != want {
		t.Fatalf("n = %d, want %d", g.NumVertices(), want)
	}
}

func TestPowerNetworkSparse(t *testing.T) {
	g := PowerNetwork(2000, 1)
	checkGraph(t, g, "power")
	if avg := g.AverageDegree(); avg > 4 {
		t.Fatalf("avg degree = %v, want sparse (<4)", avg)
	}
}

func TestFinanceLPBlockStructure(t *testing.T) {
	g := FinanceLP(16, 24, 2)
	checkGraph(t, g, "finance")
	if g.NumVertices() != 16*24+16 {
		t.Fatalf("n = %d", g.NumVertices())
	}
}

func TestRoadNetworkDegree(t *testing.T) {
	g := RoadNetwork(3000, 3)
	checkGraph(t, g, "road")
	if g.NumVertices() < 2500 {
		t.Fatalf("lost too many vertices to disconnection: n = %d", g.NumVertices())
	}
	if avg := g.AverageDegree(); avg < 2.5 || avg > 8 {
		t.Fatalf("avg degree = %v, want road-like", avg)
	}
}

func TestCircuitPowerLawSkew(t *testing.T) {
	g := CircuitPowerLaw(5000, 3, 4)
	checkGraph(t, g, "circuit")
	h := g.DegreeHistogram()
	maxd := len(h) - 1
	// Preferential attachment must produce hubs far above the average.
	if float64(maxd) < 4*g.AverageDegree() {
		t.Fatalf("max degree %d not skewed vs avg %v", maxd, g.AverageDegree())
	}
}

func TestSocialNetworkSkew(t *testing.T) {
	g := SocialNetwork(5000, 4, 4)
	checkGraph(t, g, "social")
	h := g.DegreeHistogram()
	maxd := len(h) - 1
	avg := g.AverageDegree()
	// Reinforced preferential attachment must produce dominant hubs: far
	// heavier skew than the circuit generator's 4x bound.
	if float64(maxd) < 20*avg {
		t.Fatalf("max degree %d not heavy-tailed vs avg %v", maxd, avg)
	}
	// The top 1%% of vertices by degree should hold an outsized share of
	// all edge endpoints — the signature of a power-law tail.
	degs := make([]int, g.NumVertices())
	total := 0
	for v := range degs {
		degs[v] = g.Degree(v)
		total += degs[v]
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	top := len(degs) / 100
	topSum := 0
	for _, d := range degs[:top] {
		topSum += d
	}
	if share := float64(topSum) / float64(total); share < 0.10 {
		t.Fatalf("top 1%% endpoint share = %.3f, want >= 0.10", share)
	}
}

func TestSocialNetworkVsMeshShape(t *testing.T) {
	soc := SocialNetwork(2500, 4, 9)
	mesh := Grid2D(50, 50)
	socMax := len(soc.DegreeHistogram()) - 1
	meshMax := len(mesh.DegreeHistogram()) - 1
	// A mesh has bounded degree; the social graph's hubs should dwarf it.
	if socMax < 10*meshMax {
		t.Fatalf("social max degree %d not >> mesh max %d", socMax, meshMax)
	}
	socRatio := float64(socMax) / soc.AverageDegree()
	meshRatio := float64(meshMax) / mesh.AverageDegree()
	if socRatio < 5*meshRatio {
		t.Fatalf("skew ratio %.1f not >> mesh ratio %.1f", socRatio, meshRatio)
	}
}

func TestChemicalBanded(t *testing.T) {
	g := Chemical(3000, 5)
	checkGraph(t, g, "chemical")
	if avg := g.AverageDegree(); avg < 6 || avg > 20 {
		t.Fatalf("avg degree = %v, want banded (~6-20)", avg)
	}
}

func TestGenerateAllNames(t *testing.T) {
	for _, name := range AllNames() {
		w, err := Generate(name, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.Name != name {
			t.Fatalf("name mismatch: %q vs %q", w.Name, name)
		}
		checkGraph(t, w.Graph, name)
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("NOPE", 1); err == nil {
		t.Fatal("Generate accepted unknown name")
	}
	if _, err := Generate("BC28", 0); err == nil {
		t.Fatal("Generate accepted zero scale")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate("BRCK", 0.05)
	b, _ := Generate("BRCK", 0.05)
	if a.Graph.NumVertices() != b.Graph.NumVertices() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("Generate is not deterministic")
	}
	for v := 0; v < a.Graph.NumVertices(); v++ {
		av, bv := a.Graph.Neighbors(v), b.Graph.Neighbors(v)
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("adjacency differs at vertex %d", v)
			}
		}
	}
}

func TestSuite(t *testing.T) {
	ws := Suite([]string{"4ELT", "BSP10"}, 0.05)
	if len(ws) != 2 || ws[0].Name != "4ELT" || ws[1].Name != "BSP10" {
		t.Fatalf("Suite returned %v", ws)
	}
}

// Property: every generator yields a valid connected graph across seeds.
func TestGeneratorsPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		gs := []*graph.Graph{
			Mesh2DTri(15, 15, 0.05, seed),
			FE3DTetra(6, 6, 6, seed),
			PowerNetwork(300, seed),
			FinanceLP(5, 12, seed),
			CircuitPowerLaw(300, 3, seed),
			Chemical(400, seed),
			RoadNetwork(400, seed),
		}
		for _, g := range gs {
			if g.Validate() != nil || !g.IsConnected() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
