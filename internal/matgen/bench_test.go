package matgen

import "testing"

func BenchmarkDelaunay(b *testing.B) {
	b.ReportAllocs()
	xs, ys := randomPoints(5000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Delaunay(xs, ys)
	}
}

func BenchmarkStiffness3D(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stiffness3D(20, 20, 20)
	}
}

func BenchmarkCircuitPowerLaw(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CircuitPowerLaw(20000, 3, 1)
	}
}
