// Package matgen generates the synthetic graph workloads used by the
// experiment harness. Each generator reproduces the structural class of one
// or more matrices from Table 1 of Karypis & Kumar, "Multilevel Graph
// Partitioning Schemes" (ICPP 1995): 2D/3D finite-element meshes, 3D
// stiffness matrices, power and road networks, linear-programming block
// graphs, and circuit graphs with skewed degree distributions.
//
// The original Harwell-Boeing files are not redistributable, so these
// generators stand in for them; what the paper's experiments exercise is
// the degree structure and separator structure of each class, which the
// generators preserve. All generators are deterministic given their seed.
package matgen

import (
	"fmt"
	"math"
	"math/rand"

	"mlpart/internal/graph"
)

// Grid2D returns the rows x cols 4-connected (5-point stencil) grid.
func Grid2D(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// CFD2D returns a rows x cols 8-connected (9-point stencil) grid, the
// connectivity of structured CFD discretizations such as SHYY161.
func CFD2D(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
				if c+1 < cols {
					b.AddEdge(id(r, c), id(r+1, c+1))
				}
				if c > 0 {
					b.AddEdge(id(r, c), id(r+1, c-1))
				}
			}
		}
	}
	return b.MustBuild()
}

// Mesh2DTri returns an irregular 2D triangulated mesh in the style of 4ELT:
// a rows x cols grid where each cell is split along a randomly chosen
// diagonal, with a fraction of vertices removed to create holes.
func Mesh2DTri(rows, cols int, holes float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	alive := make([]bool, rows*cols)
	for i := range alive {
		alive[i] = rng.Float64() >= holes
	}
	id := func(r, c int) int { return r*cols + c }
	b := graph.NewBuilder(rows * cols)
	add := func(u, v int) {
		if alive[u] && alive[v] {
			b.AddEdge(u, v)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				add(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				add(id(r, c), id(r+1, c))
			}
			if r+1 < rows && c+1 < cols {
				if rng.Intn(2) == 0 {
					add(id(r, c), id(r+1, c+1))
				} else {
					add(id(r, c+1), id(r+1, c))
				}
			}
		}
	}
	g := b.MustBuild()
	return largestComponent(g)
}

// LShape returns a graded L-shaped triangulated mesh in the style of
// LSHP3466: a (2k x 2k) grid with one quadrant removed, refined (denser)
// toward the re-entrant corner by doubling connectivity there.
func LShape(k int) *graph.Graph {
	side := 2 * k
	id := make([]int, side*side)
	for i := range id {
		id[i] = -1
	}
	n := 0
	inShape := func(r, c int) bool {
		// Remove the upper-right quadrant.
		return !(r < k && c >= k)
	}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if inShape(r, c) {
				id[r*side+c] = n
				n++
			}
		}
	}
	b := graph.NewBuilder(n)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			u := id[r*side+c]
			if u < 0 {
				continue
			}
			if c+1 < side && id[r*side+c+1] >= 0 {
				b.AddEdge(u, id[r*side+c+1])
			}
			if r+1 < side && id[(r+1)*side+c] >= 0 {
				b.AddEdge(u, id[(r+1)*side+c])
			}
			// Triangulating diagonal, denser near the re-entrant corner (k,k).
			if r+1 < side && c+1 < side && id[(r+1)*side+c+1] >= 0 {
				dist := math.Hypot(float64(r-k), float64(c-k))
				if dist < float64(k)/2 || (r+c)%2 == 0 {
					b.AddEdge(u, id[(r+1)*side+c+1])
				}
			}
		}
	}
	return b.MustBuild()
}

// Grid3D returns the nx x ny x nz 6-connected (7-point stencil) grid.
func Grid3D(nx, ny, nz int) *graph.Graph {
	b := graph.NewBuilder(nx * ny * nz)
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if x+1 < nx {
					b.AddEdge(id(x, y, z), id(x+1, y, z))
				}
				if y+1 < ny {
					b.AddEdge(id(x, y, z), id(x, y+1, z))
				}
				if z+1 < nz {
					b.AddEdge(id(x, y, z), id(x, y, z+1))
				}
			}
		}
	}
	return b.MustBuild()
}

// Stiffness3D returns an nx x ny x nz grid with full 26-neighbor (27-point
// stencil) connectivity — the graph of a 3D hexahedral stiffness matrix in
// the style of BCSSTK30-33, CANT, SHELL93, and TROLL. Average degree ~26.
func Stiffness3D(nx, ny, nz int) *graph.Graph {
	b := graph.NewBuilder(nx * ny * nz)
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				u := id(x, y, z)
				for dz := 0; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							if dz == 0 && (dy < 0 || (dy == 0 && dx <= 0)) {
								continue // enumerate each pair once
							}
							X, Y, Z := x+dx, y+dy, z+dz
							if X < 0 || X >= nx || Y < 0 || Y >= ny || Z < 0 || Z >= nz {
								continue
							}
							b.AddEdge(u, id(X, Y, Z))
						}
					}
				}
			}
		}
	}
	return b.MustBuild()
}

// FE3DTetra returns an irregular 3D finite-element mesh in the style of
// BRACK2, COPTER2, ROTOR and WAVE: a 3D grid where each cell contributes a
// random subset of its diagonals, giving average degree ~10-14 with
// irregular local structure.
func FE3DTetra(nx, ny, nz int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(nx * ny * nz)
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				u := id(x, y, z)
				if x+1 < nx {
					b.AddEdge(u, id(x+1, y, z))
				}
				if y+1 < ny {
					b.AddEdge(u, id(x, y+1, z))
				}
				if z+1 < nz {
					b.AddEdge(u, id(x, y, z+1))
				}
				// Face diagonals chosen at random, as a tetrahedralization
				// of each cell would produce.
				if x+1 < nx && y+1 < ny && rng.Intn(2) == 0 {
					b.AddEdge(u, id(x+1, y+1, z))
				}
				if x+1 < nx && z+1 < nz && rng.Intn(2) == 0 {
					b.AddEdge(u, id(x+1, y, z+1))
				}
				if y+1 < ny && z+1 < nz && rng.Intn(2) == 0 {
					b.AddEdge(u, id(x, y+1, z+1))
				}
				if x+1 < nx && y+1 < ny && z+1 < nz && rng.Intn(3) == 0 {
					b.AddEdge(u, id(x+1, y+1, z+1))
				}
			}
		}
	}
	return b.MustBuild()
}

// PowerNetwork returns a sparse, tree-like network in the style of
// BCSPWR10 (eastern US power grid): a random spanning tree over locally
// clustered vertices plus a small fraction of chord edges. Average degree
// is ~2-3 and separators are tiny.
func PowerNetwork(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// Random tree with locality: attach each vertex to a recent ancestor.
	for v := 1; v < n; v++ {
		window := 50
		lo := v - window
		if lo < 0 {
			lo = 0
		}
		p := lo + rng.Intn(v-lo)
		b.AddEdge(v, p)
	}
	// Sparse chords (about 20% extra edges), also local.
	chords := n / 5
	for i := 0; i < chords; i++ {
		u := rng.Intn(n)
		span := 1 + rng.Intn(200)
		v := u + span
		if v >= n {
			v = u - span
		}
		if v < 0 || v == u {
			continue
		}
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// FinanceLP returns a linear-programming block graph in the style of
// FINAN512: `blocks` dense blocks of `blockSize` vertices arranged on a
// ring, with sparse random coupling between adjacent blocks and a few
// global linking vertices. There is no geometric embedding, which is why
// the paper cites this class as out of reach of geometric partitioners.
func FinanceLP(blocks, blockSize int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := blocks*blockSize + blocks // plus one linking vertex per block
	b := graph.NewBuilder(n)
	vid := func(blk, i int) int { return blk*blockSize + i }
	link := func(blk int) int { return blocks*blockSize + blk }
	for blk := 0; blk < blocks; blk++ {
		// Near-clique inside the block: each vertex connects to ~6 others.
		for i := 0; i < blockSize; i++ {
			for t := 0; t < 6; t++ {
				j := rng.Intn(blockSize)
				if j != i {
					b.AddEdge(vid(blk, i), vid(blk, j))
				}
			}
			// Local chain to guarantee block connectivity.
			if i+1 < blockSize {
				b.AddEdge(vid(blk, i), vid(blk, i+1))
			}
		}
		// Couple to the next block on the ring.
		next := (blk + 1) % blocks
		for t := 0; t < blockSize/4+1; t++ {
			b.AddEdge(vid(blk, rng.Intn(blockSize)), vid(next, rng.Intn(blockSize)))
		}
		// Linking vertex touches several block members and the next link.
		for t := 0; t < 4; t++ {
			b.AddEdge(link(blk), vid(blk, rng.Intn(blockSize)))
		}
		b.AddEdge(link(blk), link(next))
	}
	return b.MustBuild()
}

// RoadNetwork returns a sparse planar-style network in the style of MAP
// (highway network): random points in the unit square, each connected to
// its nearest neighbors through a uniform cell grid. Average degree ~3-4.
func RoadNetwork(n int, seed int64) *graph.Graph {
	return geometricKNN(n, 3, seed)
}

// CircuitPowerLaw returns a circuit-style graph in the style of MEMPLUS and
// S38584.1: preferential attachment produces the skewed degree distribution
// (a few very high degree nets, many degree-2/3 cells) characteristic of
// VLSI netlist graphs.
func CircuitPowerLaw(n, edgesPer int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// Endpoint pool for preferential attachment: every edge endpoint is
	// appended, so sampling from the pool is degree-proportional.
	pool := make([]int, 0, 2*n*edgesPer)
	start := edgesPer + 1
	if start > n {
		start = n
	}
	for v := 1; v < start; v++ {
		b.AddEdge(v, v-1)
		pool = append(pool, v, v-1)
	}
	for v := start; v < n; v++ {
		attached := map[int]bool{}
		for t := 0; t < edgesPer; t++ {
			u := pool[rng.Intn(len(pool))]
			if u == v || attached[u] {
				continue
			}
			attached[u] = true
			b.AddEdge(v, u)
			pool = append(pool, v, u)
		}
		if len(attached) == 0 {
			b.AddEdge(v, v-1)
			pool = append(pool, v, v-1)
		}
	}
	return b.MustBuild()
}

// SocialNetwork returns a heavily skewed power-law graph in the style of a
// follower network: preferential attachment with reinforced endpoint
// weighting, so the rich-get-richer feedback is stronger than in
// CircuitPowerLaw and a handful of hub vertices end up holding a large
// share of all edge endpoints. The resulting degree distribution has a
// much heavier tail than any mesh workload (max degree tens to hundreds of
// times the mean), which is exactly the shape that stresses coarsening
// matchings built for bounded-degree meshes.
func SocialNetwork(n, edgesPer int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// Degree-proportional endpoint pool, as in CircuitPowerLaw — but the
	// chosen (older, already popular) endpoint is appended twice per edge
	// while the newcomer is appended once. Sampling probability then grows
	// superlinearly with popularity over time, steepening the tail.
	pool := make([]int, 0, 3*n*edgesPer)
	start := edgesPer + 1
	if start > n {
		start = n
	}
	for v := 1; v < start; v++ {
		b.AddEdge(v, v-1)
		pool = append(pool, v, v-1, v-1)
	}
	for v := start; v < n; v++ {
		attached := map[int]bool{}
		for t := 0; t < edgesPer; t++ {
			u := pool[rng.Intn(len(pool))]
			if u == v || attached[u] {
				continue
			}
			attached[u] = true
			b.AddEdge(v, u)
			pool = append(pool, v, u, u)
		}
		if len(attached) == 0 {
			b.AddEdge(v, v-1)
			pool = append(pool, v, v-1, v-1)
		}
	}
	return b.MustBuild()
}

// Chemical returns an irregular banded matrix graph in the style of LHR71
// (light hydrocarbon recovery): a block-banded chain of process units with
// dense local coupling and occasional recycle streams back to earlier units.
func Chemical(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		// Dense local band.
		for d := 1; d <= 8; d++ {
			if v+d < n && rng.Intn(3) > 0 {
				b.AddEdge(v, v+d)
			}
		}
		if v+1 < n {
			b.AddEdge(v, v+1) // guarantee the chain
		}
		// Recycle stream: long-range edge back toward an earlier unit.
		if rng.Intn(10) == 0 && v > 100 {
			b.AddEdge(v, rng.Intn(v-50))
		}
	}
	return b.MustBuild()
}

// geometricKNN builds a symmetric k-nearest-neighbor graph over n random
// points in the unit square using a uniform cell grid, then keeps the
// largest connected component.
func geometricKNN(n, k int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	side := int(math.Sqrt(float64(n)))
	if side < 1 {
		side = 1
	}
	cells := make([][]int, side*side)
	cellOf := func(i int) int {
		cx := int(xs[i] * float64(side))
		cy := int(ys[i] * float64(side))
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		return cy*side + cx
	}
	for i := 0; i < n; i++ {
		c := cellOf(i)
		cells[c] = append(cells[c], i)
	}
	b := graph.NewBuilder(n)
	type cand struct {
		id   int
		dist float64
	}
	for i := 0; i < n; i++ {
		cx := int(xs[i] * float64(side))
		cy := int(ys[i] * float64(side))
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		var best []cand
		for r := 1; r <= 3 && len(best) < 3*k; r++ {
			best = best[:0]
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					X, Y := cx+dx, cy+dy
					if X < 0 || X >= side || Y < 0 || Y >= side {
						continue
					}
					for _, j := range cells[Y*side+X] {
						if j == i {
							continue
						}
						d := (xs[i]-xs[j])*(xs[i]-xs[j]) + (ys[i]-ys[j])*(ys[i]-ys[j])
						best = append(best, cand{j, d})
					}
				}
			}
		}
		// Partial selection of the k nearest.
		for t := 0; t < k && t < len(best); t++ {
			min := t
			for s := t + 1; s < len(best); s++ {
				if best[s].dist < best[min].dist {
					min = s
				}
			}
			best[t], best[min] = best[min], best[t]
			b.AddEdge(i, best[t].id)
		}
	}
	return largestComponent(b.MustBuild())
}

// largestComponent returns the induced subgraph over the largest connected
// component of g. If g is connected it is returned unchanged.
func largestComponent(g *graph.Graph) *graph.Graph {
	labels, count := g.Components()
	if count <= 1 {
		return g
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	bestl := 0
	for l, s := range sizes {
		if s > sizes[bestl] {
			bestl = l
		}
	}
	keep := make([]bool, g.NumVertices())
	for v, l := range labels {
		keep[v] = l == bestl
	}
	sg, _ := g.Subgraph(keep)
	return sg
}

// Named is a generated workload with the name of the Table 1 matrix class
// it stands in for.
type Named struct {
	// Name is the short identifier used in the paper's tables (e.g. "BC31").
	Name string
	// Class describes the structural family, mirroring Table 1's
	// description column.
	Class string
	// Graph is the generated workload.
	Graph *graph.Graph
}

// Generate builds the named workload at the given scale. Scale 1.0 produces
// graphs of roughly 3k-80k vertices (about a quarter of the paper's sizes,
// sized for a laptop); smaller scales shrink every dimension proportionally.
// Unknown names produce an error.
func Generate(name string, scale float64) (Named, error) {
	if scale <= 0 {
		return Named{}, fmt.Errorf("matgen: scale must be positive, got %v", scale)
	}
	d := func(base int) int { // scale a linear mesh dimension
		v := int(math.Round(float64(base) * math.Cbrt(scale)))
		if v < 3 {
			v = 3
		}
		return v
	}
	d2 := func(base int) int { // scale a 2D mesh dimension
		v := int(math.Round(float64(base) * math.Sqrt(scale)))
		if v < 3 {
			v = 3
		}
		return v
	}
	c := func(base int) int { // scale a vertex count
		v := int(math.Round(float64(base) * scale))
		if v < 30 {
			v = 30
		}
		return v
	}
	switch name {
	case "BC28":
		return Named{name, "3D solid element model", Stiffness3D(d(11), d(11), d(11))}, nil
	case "BC29":
		return Named{name, "3D stiffness matrix", Stiffness3D(d(24), d(16), d(10))}, nil
	case "BC30":
		return Named{name, "3D stiffness matrix", Stiffness3D(d(30), d(20), d(12))}, nil
	case "BC31":
		return Named{name, "3D stiffness matrix", Stiffness3D(d(32), d(22), d(13))}, nil
	case "BC32":
		return Named{name, "3D stiffness matrix", Stiffness3D(d(35), d(24), d(14))}, nil
	case "BC33":
		return Named{name, "3D stiffness matrix", Stiffness3D(d(15), d(13), d(11))}, nil
	case "BSP10":
		return Named{name, "Eastern US power network", PowerNetwork(c(5300), 10)}, nil
	case "BRCK":
		return Named{name, "3D finite element mesh", FE3DTetra(d(33), d(25), d(19), 11)}, nil
	case "CANT":
		return Named{name, "3D stiffness matrix", Stiffness3D(d(38), d(25), d(15))}, nil
	case "COPT":
		return Named{name, "3D finite element mesh", FE3DTetra(d(31), d(25), d(18), 12)}, nil
	case "CY93":
		return Named{name, "3D stiffness matrix", Stiffness3D(d(40), d(22), d(15))}, nil
	case "FINC":
		return Named{name, "Linear programming", FinanceLP(c(128), 36, 13)}, nil
	case "4ELT":
		return Named{name, "2D finite element mesh", Mesh2DTri(d2(125), d2(125), 0.02, 14)}, nil
	case "INPR":
		return Named{name, "3D stiffness matrix", Stiffness3D(d(33), d(27), d(13))}, nil
	case "LHR":
		return Named{name, "3D coefficient matrix", Chemical(c(17576), 15)}, nil
	case "LS34":
		return Named{name, "Graded L-shape pattern", LShape(d2(30))}, nil
	case "MAP":
		return Named{name, "Highway network", RoadNetwork(c(40000), 16)}, nil
	case "MEM":
		return Named{name, "Memory circuit", CircuitPowerLaw(c(8879), 3, 17)}, nil
	case "ROTR":
		return Named{name, "3D finite element mesh", FE3DTetra(d(40), d(31), d(20), 18)}, nil
	case "S38":
		return Named{name, "Sequential circuit", CircuitPowerLaw(c(11071), 2, 19)}, nil
	case "SOC":
		return Named{name, "Social follower network", SocialNetwork(c(16384), 4, 23)}, nil
	case "SHEL":
		return Named{name, "3D stiffness matrix", Stiffness3D(d(45), d(32), d(16))}, nil
	case "SHYY":
		return Named{name, "CFD/Navier-Stokes", CFD2D(d2(195), d2(98))}, nil
	case "TROL":
		return Named{name, "3D stiffness matrix", Stiffness3D(d(48), d(34), d(16))}, nil
	case "WAVE":
		return Named{name, "3D finite element mesh", FE3DTetra(d(47), d(36), d(23), 20)}, nil
	}
	return Named{}, fmt.Errorf("matgen: unknown workload %q", name)
}

// AllNames lists every workload name from Table 1, in the paper's order,
// plus the synthetic extensions (SOC, a power-law follower network beyond
// the paper's matrix suite).
func AllNames() []string {
	return []string{
		"BC28", "BC29", "BC30", "BC31", "BC32", "BC33", "BSP10", "BRCK",
		"CANT", "COPT", "CY93", "FINC", "4ELT", "INPR", "LHR", "LS34",
		"MAP", "MEM", "ROTR", "S38", "SHEL", "SHYY", "SOC", "TROL", "WAVE",
	}
}

// Suite generates the named subset of workloads at the given scale,
// panicking on unknown names; it is the convenience entry point for the
// experiment drivers, whose name lists are compile-time constants.
func Suite(names []string, scale float64) []Named {
	out := make([]Named, 0, len(names))
	for _, name := range names {
		w, err := Generate(name, scale)
		if err != nil {
			panic(err)
		}
		out = append(out, w)
	}
	return out
}
