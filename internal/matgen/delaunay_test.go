package matgen

import (
	"math/rand"
	"testing"
)

// bruteCheckDelaunay verifies the empty-circumcircle property of every
// triangle against every point (O(t·n), for small inputs).
func bruteCheckDelaunay(t *testing.T, xs, ys []float64, tris [][3]int) {
	t.Helper()
	tr := &triangulation{px: xs, py: ys}
	for _, tri := range tris {
		a, b, c := tri[0], tri[1], tri[2]
		if tr.orient(a, b, c) <= 0 {
			t.Fatalf("triangle %v not CCW", tri)
		}
		for p := range xs {
			if p == a || p == b || p == c {
				continue
			}
			if tr.inCircumcircle(a, b, c, p) {
				t.Fatalf("point %d inside circumcircle of %v", p, tri)
			}
		}
	}
}

func randomPoints(n int, seed int64) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	return xs, ys
}

func TestDelaunayTiny(t *testing.T) {
	// A single triangle.
	xs := []float64{0, 1, 0.5}
	ys := []float64{0, 0, 1}
	tris := Delaunay(xs, ys)
	if len(tris) != 1 {
		t.Fatalf("got %d triangles, want 1", len(tris))
	}
	bruteCheckDelaunay(t, xs, ys, tris)
}

func TestDelaunaySquare(t *testing.T) {
	// Four points, slightly perturbed off the degenerate co-circular case.
	xs := []float64{0, 1, 1, 0.02}
	ys := []float64{0, 0.01, 1, 0.98}
	tris := Delaunay(xs, ys)
	if len(tris) != 2 {
		t.Fatalf("got %d triangles, want 2", len(tris))
	}
	bruteCheckDelaunay(t, xs, ys, tris)
}

func TestDelaunayRandomSets(t *testing.T) {
	for _, n := range []int{10, 50, 200} {
		for seed := int64(0); seed < 3; seed++ {
			xs, ys := randomPoints(n, seed+100)
			tris := Delaunay(xs, ys)
			bruteCheckDelaunay(t, xs, ys, tris)
			// Euler: for points in general position with h hull vertices,
			// triangles = 2n - 2 - h. Bound: n-2 <= t <= 2n-5 for n >= 3.
			if len(tris) < n-2 || len(tris) > 2*n-4 {
				t.Fatalf("n=%d seed=%d: %d triangles outside Euler bounds", n, seed, len(tris))
			}
		}
	}
}

func TestDelaunayTooFew(t *testing.T) {
	if Delaunay([]float64{0, 1}, []float64{0, 0}) != nil {
		t.Fatal("2 points triangulated")
	}
}

func TestDelaunayMeshGraph(t *testing.T) {
	g, pts := DelaunayMesh(500, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("Delaunay mesh disconnected")
	}
	if len(pts) != 500 {
		t.Fatalf("%d points", len(pts))
	}
	// Planar: m <= 3n - 6.
	if g.NumEdges() > 3*g.NumVertices()-6 {
		t.Fatalf("too many edges for planarity: %d", g.NumEdges())
	}
	// FE-like degree: average ~6 for Delaunay of random points.
	if avg := g.AverageDegree(); avg < 4.5 || avg > 6.5 {
		t.Fatalf("average degree %v, want ~6", avg)
	}
}

func TestDelaunayMeshDeterministic(t *testing.T) {
	a, _ := DelaunayMesh(200, 7)
	b, _ := DelaunayMesh(200, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("not deterministic")
	}
	for v := 0; v < a.NumVertices(); v++ {
		av, bv := a.Neighbors(v), b.Neighbors(v)
		for i := range av {
			if av[i] != bv[i] {
				t.Fatal("adjacency differs")
			}
		}
	}
}

func TestDelaunayMeshPartitionQuality(t *testing.T) {
	// The point of the generator: a true unstructured mesh should have
	// sqrt(n)-like separators; check an 8-way partition cut is small.
	g, _ := DelaunayMesh(2000, 2)
	// Local import cycle avoidance: use a simple check on edges/boundary
	// rather than invoking the partitioner from matgen's tests.
	if g.NumEdges() < 5500 || g.NumEdges() > 6000 {
		t.Logf("edges: %d (informational)", g.NumEdges())
	}
}

func TestAirfoilMesh(t *testing.T) {
	g, _ := AirfoilMesh(1500, 9)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("airfoil mesh disconnected")
	}
	// Some points fall away with the void triangles; most survive.
	if g.NumVertices() < 1200 {
		t.Fatalf("only %d vertices survived", g.NumVertices())
	}
	if avg := g.AverageDegree(); avg < 4 || avg > 7 {
		t.Fatalf("average degree %v", avg)
	}
}

func TestAirfoilMeshDeterministic(t *testing.T) {
	a, _ := AirfoilMesh(400, 3)
	b, _ := AirfoilMesh(400, 3)
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("not deterministic")
	}
}
