package matgen

import "testing"

func TestDelaunayDegenerateGridNoPanic(t *testing.T) {
	// Exact grid points are maximally degenerate (collinear rows and
	// co-circular quads). The triangulation is only best-effort there, but
	// it must not panic or hang, and triangles must reference valid points.
	var xs, ys []float64
	for r := 0; r < 12; r++ {
		for c := 0; c < 12; c++ {
			xs = append(xs, float64(c))
			ys = append(ys, float64(r))
		}
	}
	tris := Delaunay(xs, ys)
	for _, tr := range tris {
		for _, v := range tr {
			if v < 0 || v >= len(xs) {
				t.Fatalf("triangle references point %d", v)
			}
		}
	}
	if len(tris) < 100 {
		t.Logf("degenerate grid produced only %d triangles (best effort)", len(tris))
	}
}
