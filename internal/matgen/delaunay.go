package matgen

import (
	"math"
	"math/rand"

	"mlpart/internal/graph"
)

// Delaunay computes the Delaunay triangulation of a 2D point set with the
// Bowyer-Watson incremental algorithm (walk-based point location, cavity
// retriangulation), returning the triangles as vertex-index triples in
// counterclockwise order. Points should be in general position; the
// generators in this package jitter their points, which makes exact
// degeneracies vanishingly rare, and the predicates include a small
// tolerance. Duplicate points must not be passed.
//
// The triangulation of a mesh generator's point set gives the true
// unstructured-FE edge structure (the class of the paper's 4ELT airfoil
// mesh), unlike stencil-based grids.
func Delaunay(xs, ys []float64) [][3]int {
	n := len(xs)
	if n < 3 {
		return nil
	}
	// Bounding super-triangle, far enough out that its circumcircles
	// always contain the data points' region.
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := 1; i < n; i++ {
		minX = math.Min(minX, xs[i])
		maxX = math.Max(maxX, xs[i])
		minY = math.Min(minY, ys[i])
		maxY = math.Max(maxY, ys[i])
	}
	cx, cy := (minX+maxX)/2, (minY+maxY)/2
	d := math.Max(maxX-minX, maxY-minY)
	if d == 0 {
		d = 1
	}
	d *= 16
	px := append(append([]float64(nil), xs...), cx-d, cx+d, cx)
	py := append(append([]float64(nil), ys...), cy-d, cy-d, cy+d)
	s0, s1, s2 := n, n+1, n+2

	t := &triangulation{px: px, py: py}
	t.add([3]int{s0, s1, s2}, [3]int{-1, -1, -1})

	// Insert points in random (but deterministic) order: randomized
	// insertion gives the expected near-linear behavior.
	order := rand.New(rand.NewSource(0x9E3779B9)).Perm(n)
	last := 0
	for _, p := range order {
		last = t.insert(p, last)
	}

	// Collect live triangles that avoid the super-triangle corners.
	var out [][3]int
	for i, tri := range t.tv {
		if !t.alive[i] {
			continue
		}
		if tri[0] >= n || tri[1] >= n || tri[2] >= n {
			continue
		}
		out = append(out, tri)
	}
	return out
}

// triangulation is the Bowyer-Watson working state.
type triangulation struct {
	px, py []float64
	tv     [][3]int // triangle vertices, CCW
	tn     [][3]int // tn[t][i] = neighbor across the edge opposite tv[t][i]
	alive  []bool
	free   []int // recycled triangle slots
}

func (t *triangulation) add(v [3]int, nb [3]int) int {
	if k := len(t.free); k > 0 {
		id := t.free[k-1]
		t.free = t.free[:k-1]
		t.tv[id] = v
		t.tn[id] = nb
		t.alive[id] = true
		return id
	}
	t.tv = append(t.tv, v)
	t.tn = append(t.tn, nb)
	t.alive = append(t.alive, true)
	return len(t.tv) - 1
}

func (t *triangulation) kill(id int) {
	t.alive[id] = false
	t.free = append(t.free, id)
}

// orient returns > 0 if (a,b,c) is counterclockwise.
func (t *triangulation) orient(a, b, c int) float64 {
	return (t.px[b]-t.px[a])*(t.py[c]-t.py[a]) - (t.py[b]-t.py[a])*(t.px[c]-t.px[a])
}

// inCircumcircle reports whether point p lies inside the circumcircle of
// the CCW triangle (a, b, c).
func (t *triangulation) inCircumcircle(a, b, c, p int) bool {
	ax, ay := t.px[a]-t.px[p], t.py[a]-t.py[p]
	bx, by := t.px[b]-t.px[p], t.py[b]-t.py[p]
	cx, cy := t.px[c]-t.px[p], t.py[c]-t.py[p]
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	return det > 1e-12
}

// locate walks from triangle `start` to a triangle containing point p.
func (t *triangulation) locate(p, start int) int {
	cur := start
	if cur < 0 || !t.alive[cur] {
		for i := range t.alive {
			if t.alive[i] {
				cur = i
				break
			}
		}
	}
	for steps := 0; steps < 4*len(t.tv)+16; steps++ {
		v := t.tv[cur]
		moved := false
		for i := 0; i < 3; i++ {
			// Edge opposite v[i] is (v[(i+1)%3], v[(i+2)%3]).
			a, b := v[(i+1)%3], v[(i+2)%3]
			if t.orient(a, b, p) < -1e-12 {
				next := t.tn[cur][i]
				if next >= 0 {
					cur = next
					moved = true
					break
				}
			}
		}
		if !moved {
			return cur
		}
	}
	return cur // walk failed to settle (degenerate input); best effort
}

// insert adds point p (an index into px/py) and returns a triangle id near
// the insertion for the next walk to start from.
func (t *triangulation) insert(p, hint int) int {
	seed := t.locate(p, hint)

	// Grow the cavity: all triangles whose circumcircle contains p.
	inCavity := map[int]bool{seed: true}
	stack := []int{seed}
	var cavity []int
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cavity = append(cavity, cur)
		for i := 0; i < 3; i++ {
			nb := t.tn[cur][i]
			if nb < 0 || inCavity[nb] {
				continue
			}
			v := t.tv[nb]
			if t.inCircumcircle(v[0], v[1], v[2], p) {
				inCavity[nb] = true
				stack = append(stack, nb)
			}
		}
	}

	// Boundary edges of the cavity, each with the outside neighbor.
	type bedge struct {
		a, b    int // directed so that (a, b, p) is CCW
		outside int
	}
	var boundary []bedge
	for _, cur := range cavity {
		v := t.tv[cur]
		for i := 0; i < 3; i++ {
			nb := t.tn[cur][i]
			if nb >= 0 && inCavity[nb] {
				continue
			}
			a, b := v[(i+1)%3], v[(i+2)%3]
			boundary = append(boundary, bedge{a, b, nb})
		}
	}
	for _, cur := range cavity {
		t.kill(cur)
	}

	// Fan of new triangles; link fan neighbors through the shared p-edges.
	// fanBy[x] = triangle whose boundary edge starts (or ends) at vertex x.
	newTri := make([]int, len(boundary))
	fanByA := make(map[int]int, len(boundary))
	for i, e := range boundary {
		id := t.add([3]int{e.a, e.b, p}, [3]int{-1, -1, e.outside})
		// tn[id][2] is across edge (a, b) = the outside triangle; fix the
		// outside triangle's back pointer.
		if e.outside >= 0 {
			ov := t.tv[e.outside]
			for j := 0; j < 3; j++ {
				x, y := ov[(j+1)%3], ov[(j+2)%3]
				if (x == e.b && y == e.a) || (x == e.a && y == e.b) {
					t.tn[e.outside][j] = id
				}
			}
		}
		newTri[i] = id
		fanByA[e.a] = id
	}
	// Neighbor across edge (b, p) of triangle (a, b, p) is the fan
	// triangle whose boundary edge starts at b; that edge is opposite
	// vertex a (index 0). Symmetrically the (p, a) edge is opposite b.
	for i, e := range boundary {
		id := newTri[i]
		if nb, ok := fanByA[e.b]; ok {
			t.tn[id][0] = nb // across (b, p)
		}
		// Find the fan triangle whose edge *ends* at a: its b == our a.
		// That triangle's (b, p) edge is our (p, a) edge.
		for j, e2 := range boundary {
			if e2.b == e.a {
				t.tn[id][1] = newTri[j] // across (p, a)
				break
			}
		}
	}
	return newTri[0]
}

// DelaunayMesh generates n random points in the unit square (deterministic
// in seed), triangulates them, and returns the triangulation's edge graph
// plus the points — a true unstructured 2D FE mesh in the style of 4ELT.
func DelaunayMesh(n int, seed int64) (*graph.Graph, []Point) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
		pts[i] = Point{X: xs[i], Y: ys[i]}
	}
	tris := Delaunay(xs, ys)
	b := graph.NewBuilder(n)
	seen := make(map[[2]int]bool)
	addEdge := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		if !seen[[2]int{u, v}] {
			seen[[2]int{u, v}] = true
			b.AddEdge(u, v)
		}
	}
	for _, tr := range tris {
		addEdge(tr[0], tr[1])
		addEdge(tr[1], tr[2])
		addEdge(tr[2], tr[0])
	}
	return largestComponent(b.MustBuild()), pts
}

// AirfoilMesh generates a 2D unstructured mesh in the style of the actual
// 4ELT matrix (a multi-element airfoil triangulation): random points in
// the unit square with a void where the airfoil sits, graded so that
// density increases toward the void's boundary, then Delaunay
// triangulated with the void's interior triangles removed.
func AirfoilMesh(n int, seed int64) (*graph.Graph, []Point) {
	rng := rand.New(rand.NewSource(seed))
	const (
		cx, cy = 0.45, 0.5  // airfoil center
		rx, ry = 0.18, 0.05 // elliptic void
	)
	inVoid := func(x, y float64) bool {
		dx := (x - cx) / rx
		dy := (y - cy) / ry
		return dx*dx+dy*dy < 1
	}
	xs := make([]float64, 0, n)
	ys := make([]float64, 0, n)
	for len(xs) < n {
		x, y := rng.Float64(), rng.Float64()
		// Grade density: keep far-field points with lower probability.
		dx := (x - cx) / rx
		dy := (y - cy) / ry
		d := math.Sqrt(dx*dx+dy*dy) - 1 // 0 at the surface
		if d < 0 {
			continue // inside the airfoil
		}
		keep := 1.0 / (1 + d) // denser near the surface
		if rng.Float64() > keep {
			continue
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	tris := Delaunay(xs, ys)
	b := graph.NewBuilder(n)
	seen := make(map[[2]int]bool)
	addEdge := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		if !seen[[2]int{u, v}] {
			seen[[2]int{u, v}] = true
			b.AddEdge(u, v)
		}
	}
	for _, tr := range tris {
		// Drop triangles spanning the void (centroid inside).
		mx := (xs[tr[0]] + xs[tr[1]] + xs[tr[2]]) / 3
		my := (ys[tr[0]] + ys[tr[1]] + ys[tr[2]]) / 3
		if inVoid(mx, my) {
			continue
		}
		addEdge(tr[0], tr[1])
		addEdge(tr[1], tr[2])
		addEdge(tr[2], tr[0])
	}
	g := largestComponent(b.MustBuild())
	pts := make([]Point, len(xs))
	for i := range xs {
		pts[i] = Point{X: xs[i], Y: ys[i]}
	}
	return g, pts
}
