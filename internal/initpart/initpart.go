// Package initpart implements the partitioning phase of the multilevel
// scheme (§3.2 of the paper): computing a bisection of the small coarsest
// graph. Three algorithms are provided — spectral bisection (SBP), graph
// growing (GGP) and greedy graph growing (GGGP) — plus a random split used
// as a control. GGP and GGGP are randomized and run multiple trials,
// keeping the best; the paper uses 10 trials for GGP and 5 for GGGP.
package initpart

import (
	"fmt"
	"math/rand"
	"time"

	"mlpart/internal/faults"
	"mlpart/internal/graph"
	"mlpart/internal/refine"
	"mlpart/internal/spectral"
	"mlpart/internal/trace"
	"mlpart/internal/workspace"
)

// Method selects the coarse-graph bisection algorithm.
type Method int

const (
	// GGGP grows a region from a random vertex, always absorbing the
	// boundary vertex that least increases the edge-cut. The paper finds
	// it consistently best and selects it for all experiments.
	GGGP Method = iota
	// GGP grows a region breadth-first from a random vertex until half the
	// vertex weight is absorbed.
	GGP
	// SBP computes the Fiedler vector of the coarse graph by Lanczos and
	// splits at the weighted median.
	SBP
	// RandomPart assigns vertices randomly subject to the weight target
	// (control only).
	RandomPart
)

// String returns the method's abbreviation as used in the paper.
func (m Method) String() string {
	switch m {
	case GGGP:
		return "GGGP"
	case GGP:
		return "GGP"
	case SBP:
		return "SBP"
	case RandomPart:
		return "RAND"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Valid reports whether m is one of the defined methods; Partition panics
// on anything else, so user-reachable entry points must gate on this.
func (m Method) Valid() bool { return m >= GGGP && m <= RandomPart }

// ParseMethod converts an abbreviation to a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "GGGP":
		return GGGP, nil
	case "GGP":
		return GGP, nil
	case "SBP":
		return SBP, nil
	case "RAND":
		return RandomPart, nil
	}
	return 0, fmt.Errorf("initpart: unknown method %q", s)
}

// Options configures the initial partitioning.
type Options struct {
	Method Method
	// Trials is the number of random starts for GGP/GGGP; 0 means the
	// paper's defaults (10 for GGP, 5 for GGGP, 1 otherwise).
	Trials int
	// TargetPwgt0 is the desired weight of part 0; 0 means half the total.
	TargetPwgt0 int
	// Workspace, when non-nil, supplies pooled buffers for the trial
	// bisections and their scratch; the winning bisection is itself
	// workspace-backed, so the caller must Release or Detach it. Results
	// are identical either way.
	Workspace *workspace.Workspace
	// Level is the hierarchy level reported in trace events (engine-set).
	Level int
	// Tracer, when non-nil, receives one KindInitial event with the
	// winning trial's cut. Results are bit-identical with or without.
	Tracer trace.Tracer
	// Injector, when non-nil, is consulted at faults.SiteInitSBP inside
	// every SBP trial; an injected error forces the Lanczos
	// non-convergence path, i.e. the GGGP fallback. A nil Injector costs
	// one nil check.
	Injector *faults.Injector
	// Degradations, when non-nil, receives a record for every SBP trial
	// that fell back to GGGP.
	Degradations *[]trace.Degradation
}

func (o Options) withDefaults(g *graph.Graph) Options {
	if o.Trials <= 0 {
		switch o.Method {
		case GGP:
			o.Trials = 10
		case GGGP:
			o.Trials = 5
		default:
			o.Trials = 1
		}
	}
	if o.TargetPwgt0 <= 0 {
		o.TargetPwgt0 = g.TotalVertexWeight() / 2
	}
	return o
}

// Partition bisects g, returning refinement-ready state. Multiple trials
// are run per Options and the smallest cut wins (ties broken by balance).
func Partition(g *graph.Graph, opts Options, rng *rand.Rand) *refine.Bisection {
	opts = opts.withDefaults(g)
	ws := opts.Workspace
	n := g.NumVertices()
	if n == 0 {
		return refine.NewBisection(g, nil)
	}
	var t0 time.Time
	if opts.Tracer != nil {
		t0 = time.Now()
	}
	var best *refine.Bisection
	for trial := 0; trial < opts.Trials; trial++ {
		var b *refine.Bisection
		switch opts.Method {
		case GGP:
			b = growBFS(g, opts.TargetPwgt0, rng, ws)
		case GGGP:
			b = growGreedy(g, opts.TargetPwgt0, rng, ws)
		case SBP:
			vec, converged := spectral.FiedlerChecked(g, n-1, nil, rng)
			reason := "Lanczos did not converge"
			if ierr := opts.Injector.Fire(faults.SiteInitSBP); ierr != nil {
				converged = false
				reason = ierr.Error()
			}
			if !converged {
				// Spectral bisection has nothing usable; GGGP is the
				// paper's recommended partitioner anyway (§3.2: same
				// quality as SBP at far lower cost), so it is the natural
				// degraded-mode substitute.
				if opts.Degradations != nil {
					*opts.Degradations = append(*opts.Degradations, trace.Degradation{
						Phase:  "initpart",
						From:   SBP.String(),
						To:     GGGP.String(),
						Level:  opts.Level,
						Reason: reason,
					})
				}
				b = growGreedy(g, opts.TargetPwgt0, rng, ws)
			} else {
				b = refine.NewBisectionWS(g, spectral.SplitAtMedian(g, vec, opts.TargetPwgt0), ws)
			}
		case RandomPart:
			b = randomSplit(g, opts.TargetPwgt0, rng, ws)
		default:
			panic(fmt.Sprintf("initpart: invalid method %d", opts.Method))
		}
		if best == nil || b.Cut < best.Cut ||
			(b.Cut == best.Cut && absInt(b.Pwgt[0]-opts.TargetPwgt0) < absInt(best.Pwgt[0]-opts.TargetPwgt0)) {
			if best != nil {
				best.Release(ws)
			}
			best = b
		} else {
			b.Release(ws)
		}
	}
	if opts.Tracer != nil {
		opts.Tracer.Event(trace.Event{
			Kind:      trace.KindInitial,
			Level:     opts.Level,
			Vertices:  n,
			Cut:       best.Cut,
			Algorithm: opts.Method.String(),
			Trials:    opts.Trials,
			ElapsedNS: time.Since(t0).Nanoseconds(),
		})
	}
	return best
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// growBFS is GGP: breadth-first region growing from a random seed until
// part 0 reaches the target weight. Disconnected remainders are handled by
// reseeding from an unvisited vertex.
func growBFS(g *graph.Graph, target0 int, rng *rand.Rand, ws *workspace.Workspace) *refine.Bisection {
	n := g.NumVertices()
	where := ws.IntFilled(n, 1)
	visited := ws.Bool(n)
	queueBuf := ws.Int(n)
	queue := queueBuf[:0]
	acc := 0
	seed := rng.Intn(n)
	visited[seed] = true
	queue = append(queue, seed)
	nextProbe := 0
	for acc < target0 {
		if len(queue) == 0 {
			// Component exhausted; reseed deterministically.
			for nextProbe < n && visited[nextProbe] {
				nextProbe++
			}
			if nextProbe >= n {
				break
			}
			visited[nextProbe] = true
			queue = append(queue, nextProbe)
		}
		v := queue[0]
		queue = queue[1:]
		where[v] = 0
		acc += g.Vwgt[v]
		for _, u := range g.Neighbors(v) {
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
	}
	ws.PutBool(visited)
	ws.PutInt(queueBuf)
	return refine.NewBisectionWS(g, where, ws)
}

// growGreedy is GGGP: region growing where the next vertex absorbed is the
// frontier vertex whose move into the region least increases the cut
// (equivalently, has maximum gain). Implemented directly on the refinement
// state: all vertices start in part 1, and the frontier is the set of
// part-1 vertices adjacent to part 0.
func growGreedy(g *graph.Graph, target0 int, rng *rand.Rand, ws *workspace.Workspace) *refine.Bisection {
	n := g.NumVertices()
	where := ws.IntFilled(n, 1)
	b := refine.NewBisectionWS(g, where, ws)
	var bk refine.GainBuckets
	bk.Init(n, g.MaxWeightedDegree(), ws)
	onGainChange := func(u int) {
		if b.Where[u] != 1 {
			return
		}
		if bk.Contains(u) {
			bk.Update(u, b.Gain(u))
		} else if b.IsBoundary(u) {
			bk.Insert(u, b.Gain(u))
		}
	}
	seed := rng.Intn(n)
	nextProbe := 0
	b.Move(seed, onGainChange)
	for b.Pwgt[0] < target0 {
		v, ok := bk.PopMax()
		if !ok {
			// Frontier exhausted (disconnected graph); reseed.
			for nextProbe < n && b.Where[nextProbe] != 1 {
				nextProbe++
			}
			if nextProbe >= n {
				break
			}
			b.Move(nextProbe, onGainChange)
			continue
		}
		b.Move(v, onGainChange)
	}
	bk.Free(ws)
	return b
}

// randomSplit assigns random vertices to part 0 until the target is met.
func randomSplit(g *graph.Graph, target0 int, rng *rand.Rand, ws *workspace.Workspace) *refine.Bisection {
	n := g.NumVertices()
	where := ws.IntFilled(n, 1)
	perm := workspace.PermInto(rng, n, ws.Int(n))
	acc := 0
	for _, v := range perm {
		if acc >= target0 {
			break
		}
		where[v] = 0
		acc += g.Vwgt[v]
	}
	ws.PutInt(perm)
	return refine.NewBisectionWS(g, where, ws)
}
