package initpart

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/graph"
	"mlpart/internal/matgen"
	"mlpart/internal/refine"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func allMethods() []Method { return []Method{GGGP, GGP, SBP, RandomPart} }

func TestPartitionBalance(t *testing.T) {
	g := matgen.Mesh2DTri(15, 15, 0, 1)
	tot := g.TotalVertexWeight()
	for _, m := range allMethods() {
		b := Partition(g, Options{Method: m}, rng(2))
		if err := b.Verify(); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		// Balance within one max vertex weight of half.
		if b.Pwgt[0] < tot/2-2 || b.Pwgt[0] > tot/2+2 {
			t.Errorf("%v: pwgt0 = %d, want ~%d", m, b.Pwgt[0], tot/2)
		}
	}
}

func TestGrowingBeatsRandomOnMesh(t *testing.T) {
	g := matgen.Grid2D(20, 20)
	rcut := Partition(g, Options{Method: RandomPart}, rng(3)).Cut
	for _, m := range []Method{GGGP, GGP, SBP} {
		cut := Partition(g, Options{Method: m}, rng(3)).Cut
		if cut >= rcut {
			t.Errorf("%v cut %d not better than random %d", m, cut, rcut)
		}
	}
}

func TestGGGPBeatsGGPOnAverage(t *testing.T) {
	// The paper reports GGGP consistently better; test in aggregate with
	// equal trial counts to compare the heuristics themselves.
	g := matgen.FE3DTetra(8, 8, 8, 4)
	sumGGP, sumGGGP := 0, 0
	for seed := int64(0); seed < 8; seed++ {
		sumGGP += Partition(g, Options{Method: GGP, Trials: 5}, rng(seed)).Cut
		sumGGGP += Partition(g, Options{Method: GGGP, Trials: 5}, rng(seed)).Cut
	}
	if sumGGGP > sumGGP {
		t.Errorf("GGGP total %d worse than GGP total %d", sumGGGP, sumGGP)
	}
}

func TestPartitionTargetWeights(t *testing.T) {
	g := matgen.Grid2D(16, 16)
	tot := g.TotalVertexWeight()
	target := tot / 4
	for _, m := range allMethods() {
		b := Partition(g, Options{Method: m, TargetPwgt0: target}, rng(5))
		if b.Pwgt[0] < target-2 || b.Pwgt[0] > target+2 {
			t.Errorf("%v: pwgt0 = %d, want ~%d", m, b.Pwgt[0], target)
		}
	}
}

func TestPartitionDisconnectedGraph(t *testing.T) {
	// Two separate 4x4 grids: growing must reseed across components.
	b := graph.NewBuilder(32)
	id := func(block, r, c int) int { return block*16 + r*4 + c }
	for blk := 0; blk < 2; blk++ {
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				if c+1 < 4 {
					b.AddEdge(id(blk, r, c), id(blk, r, c+1))
				}
				if r+1 < 4 {
					b.AddEdge(id(blk, r, c), id(blk, r+1, c))
				}
			}
		}
	}
	g := b.MustBuild()
	for _, m := range []Method{GGP, GGGP} {
		bis := Partition(g, Options{Method: m}, rng(6))
		if bis.Pwgt[0] < 14 || bis.Pwgt[0] > 18 {
			t.Errorf("%v: pwgt0 = %d on disconnected graph", m, bis.Pwgt[0])
		}
	}
}

func TestPartitionWeightedVertices(t *testing.T) {
	// A star with a heavy center: target weight respected by weight, not count.
	b := graph.NewBuilder(9)
	for i := 1; i < 9; i++ {
		b.AddEdge(0, i)
	}
	b.SetVertexWeight(0, 8)
	g := b.MustBuild() // total weight 16
	for _, m := range allMethods() {
		bis := Partition(g, Options{Method: m}, rng(7))
		if bis.Pwgt[0]+bis.Pwgt[1] != 16 {
			t.Fatalf("%v: weights lost", m)
		}
		if bis.Pwgt[0] == 0 || bis.Pwgt[1] == 0 {
			t.Errorf("%v: empty part", m)
		}
	}
}

func TestMoreTrialsNeverWorse(t *testing.T) {
	// With nested seeds the trial sets differ, so compare statistically:
	// over several graphs, 10-trial GGGP should on aggregate match or beat
	// 1-trial GGGP.
	sum1, sum10 := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		g := matgen.Mesh2DTri(12, 12, 0.02, seed)
		sum1 += Partition(g, Options{Method: GGGP, Trials: 1}, rng(seed)).Cut
		sum10 += Partition(g, Options{Method: GGGP, Trials: 10}, rng(seed)).Cut
	}
	if sum10 > sum1 {
		t.Errorf("10 trials (%d) worse than 1 trial (%d) in aggregate", sum10, sum1)
	}
}

func TestMethodStringRoundTrip(t *testing.T) {
	for _, m := range allMethods() {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip failed for %v", m)
		}
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Fatal("ParseMethod accepted bogus input")
	}
}

// Property: every method yields a verified bisection whose cut matches a
// from-scratch recomputation, on random graphs.
func TestPartitionPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := matgen.FE3DTetra(4, 4, 4, seed)
		for _, m := range allMethods() {
			b := Partition(g, Options{Method: m}, rng(seed+1))
			if b.Verify() != nil {
				return false
			}
			if refine.ComputeCut(g, b.Where) != b.Cut {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
