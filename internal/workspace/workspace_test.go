package workspace

import "testing"

func TestIntReuse(t *testing.T) {
	ws := &Workspace{}
	a := ws.Int(100)
	if len(a) != 100 {
		t.Fatalf("len = %d, want 100", len(a))
	}
	pa := &a[0]
	ws.PutInt(a)
	b := ws.Int(50)
	if &b[0] != pa {
		t.Error("expected the freed buffer to be reused for a smaller request")
	}
	if len(b) != 50 {
		t.Fatalf("len = %d, want 50", len(b))
	}
}

func TestIntBestFit(t *testing.T) {
	ws := &Workspace{}
	big := make([]int, 1000)
	small := make([]int, 60)
	ws.PutInt(big)
	ws.PutInt(small)
	got := ws.Int(50)
	if cap(got) != cap(small) {
		t.Errorf("best fit picked cap %d, want %d (the smaller buffer)", cap(got), cap(small))
	}
}

func TestIntFilled(t *testing.T) {
	ws := &Workspace{}
	a := ws.Int(10)
	for i := range a {
		a[i] = 7
	}
	ws.PutInt(a)
	b := ws.IntFilled(10, -1)
	for i, v := range b {
		if v != -1 {
			t.Fatalf("b[%d] = %d, want -1", i, v)
		}
	}
}

func TestBoolCleared(t *testing.T) {
	ws := &Workspace{}
	a := ws.Bool(8)
	for i := range a {
		a[i] = true
	}
	ws.PutBool(a)
	b := ws.Bool(8)
	for i, v := range b {
		if v {
			t.Fatalf("b[%d] = true, want false (Bool must clear)", i)
		}
	}
}

func TestInt64Reuse(t *testing.T) {
	ws := &Workspace{}
	a := ws.Int64(32)
	pa := &a[0]
	ws.PutInt64(a)
	b := ws.Int64(16)
	if &b[0] != pa {
		t.Error("expected int64 buffer reuse")
	}
}

func TestNilWorkspace(t *testing.T) {
	var ws *Workspace
	if got := ws.Int(5); len(got) != 5 {
		t.Fatalf("nil ws Int len = %d", len(got))
	}
	if got := ws.IntFilled(3, 9); got[0] != 9 || got[2] != 9 {
		t.Fatal("nil ws IntFilled wrong contents")
	}
	if got := ws.Bool(4); len(got) != 4 || got[0] {
		t.Fatal("nil ws Bool wrong")
	}
	if got := ws.Int64(2); len(got) != 2 {
		t.Fatal("nil ws Int64 wrong")
	}
	// Puts on a nil workspace are no-ops, not panics.
	ws.PutInt([]int{1})
	ws.PutInt64([]int64{1})
	ws.PutBool([]bool{true})
}

func TestPutCap(t *testing.T) {
	ws := &Workspace{}
	a := make([]int, 10, 64)
	ws.PutInt(a[:0]) // a zero-length view still contributes its full capacity
	b := ws.Int(60)
	if len(b) != 60 {
		t.Fatalf("len = %d, want 60", len(b))
	}
}

func TestMaxFreeBound(t *testing.T) {
	ws := &Workspace{}
	for i := 0; i < 2*maxFree; i++ {
		ws.PutInt(make([]int, 4))
	}
	if len(ws.ints) > maxFree {
		t.Fatalf("free list grew to %d, bound is %d", len(ws.ints), maxFree)
	}
}

func TestGetPut(t *testing.T) {
	ws := Get()
	if ws == nil {
		t.Fatal("Get returned nil")
	}
	ws.PutInt(ws.Int(10))
	Put(ws)
	Put(nil) // must not panic
}
