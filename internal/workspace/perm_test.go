package workspace

import (
	"math/rand"
	"slices"
	"testing"
)

// TestPermIntoMatchesRandPerm pins the RNG-stream contract: PermInto must
// produce rng.Perm's exact permutation AND leave the RNG in the exact same
// state, so pooled and allocating code paths stay bit-identical.
func TestPermIntoMatchesRandPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100} {
		a := rand.New(rand.NewSource(42))
		b := rand.New(rand.NewSource(42))
		want := a.Perm(n)
		got := PermInto(b, n, make([]int, n))
		if !slices.Equal(got, want) {
			t.Fatalf("n=%d: PermInto = %v, rng.Perm = %v", n, got, want)
		}
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("n=%d: RNG streams diverged after permutation (%d vs %d)", n, x, y)
		}
	}
}
