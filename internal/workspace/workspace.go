// Package workspace provides a sync.Pool-backed arena of reusable scratch
// buffers for the hot path of the multilevel pipeline, in the spirit of
// METIS's wspace. Every coarsening level, refinement pass and initial
// partitioning trial needs a handful of vertex-sized integer and boolean
// arrays whose lifetime is bounded by a single call; allocating them fresh
// dominates the constant factor the paper's 10-35x speedup claim depends
// on. A Workspace keeps those buffers alive between calls so a whole
// V-cycle (and the next one, via the global pool) runs allocation-free in
// steady state.
//
// Invariants:
//
//   - A buffer obtained from a Workspace must be returned (PutInt etc.) or
//     abandoned to the garbage collector — never both retained by a caller
//     AND returned. No pooled buffer may escape the call tree that obtained
//     it; results that outlive a call are copied into fresh allocations
//     (see refine.(*Bisection).Detach).
//   - Buffers come back with arbitrary contents unless the getter says
//     otherwise (IntFilled, Bool); callers must fully initialize whatever
//     they read.
//   - A Workspace is NOT safe for concurrent use. Each goroutine gets its
//     own via Get/Put; the global pool makes that cheap.
package workspace

import (
	"math/rand"
	"sync"
)

// maxFree bounds the number of idle buffers retained per type so a
// pathological size mix cannot pin unbounded memory.
const maxFree = 32

// Workspace is a per-goroutine free list of scratch buffers.
type Workspace struct {
	ints   [][]int
	int64s [][]int64
	bools  [][]bool
}

var pool = sync.Pool{New: func() any { return new(Workspace) }}

// Get borrows a Workspace from the global pool.
func Get() *Workspace { return pool.Get().(*Workspace) }

// Put returns ws (and every buffer it holds) to the global pool. ws must
// not be used afterwards.
func Put(ws *Workspace) {
	if ws != nil {
		pool.Put(ws)
	}
}

// Int returns a length-n []int with arbitrary contents. A nil Workspace
// falls back to plain allocation, so ws-threaded code paths need no nil
// checks.
func (ws *Workspace) Int(n int) []int {
	if ws == nil {
		return make([]int, n)
	}
	if s, ok := takeInt(&ws.ints, n); ok {
		return s[:n]
	}
	// Headroom so a slightly larger request later in the V-cycle can still
	// reuse this buffer.
	return make([]int, n, n+n/4+8)
}

// IntFilled returns a length-n []int with every element set to v.
func (ws *Workspace) IntFilled(n, v int) []int {
	s := ws.Int(n)
	for i := range s {
		s[i] = v
	}
	return s
}

// PutInt returns a buffer obtained from Int/IntFilled to the free list.
// Passing a slice that was never pooled is allowed (it simply joins the
// list); passing one still referenced elsewhere is not.
func (ws *Workspace) PutInt(s []int) {
	if ws == nil || cap(s) == 0 || len(ws.ints) >= maxFree {
		return
	}
	ws.ints = append(ws.ints, s[:cap(s)])
}

// Int64 returns a length-n []int64 with arbitrary contents.
func (ws *Workspace) Int64(n int) []int64 {
	if ws == nil {
		return make([]int64, n)
	}
	if s, ok := takeInt64(&ws.int64s, n); ok {
		return s[:n]
	}
	return make([]int64, n, n+n/4+8)
}

// PutInt64 returns a buffer obtained from Int64 to the free list.
func (ws *Workspace) PutInt64(s []int64) {
	if ws == nil || cap(s) == 0 || len(ws.int64s) >= maxFree {
		return
	}
	ws.int64s = append(ws.int64s, s[:cap(s)])
}

// Bool returns a length-n []bool cleared to false.
func (ws *Workspace) Bool(n int) []bool {
	if ws == nil {
		return make([]bool, n)
	}
	if s, ok := takeBool(&ws.bools, n); ok {
		s = s[:n]
		for i := range s {
			s[i] = false
		}
		return s
	}
	return make([]bool, n, n+n/4+8)
}

// PutBool returns a buffer obtained from Bool to the free list.
func (ws *Workspace) PutBool(s []bool) {
	if ws == nil || cap(s) == 0 || len(ws.bools) >= maxFree {
		return
	}
	ws.bools = append(ws.bools, s[:cap(s)])
}

// PermInto writes a random permutation of [0,n) into p (typically a pooled
// buffer) and returns p[:n]. It consumes the RNG exactly like rng.Perm(n) —
// including the i = 0 draw — so pooled and allocating code paths produce
// bit-identical results for the same seed.
func PermInto(rng *rand.Rand, n int, p []int) []int {
	p = p[:n]
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// takeInt removes and returns the smallest free buffer with capacity >= n.
// Best-fit keeps the big finest-level buffers available for the requests
// that actually need them instead of burning them on tiny coarse levels.
func takeInt(free *[][]int, n int) ([]int, bool) {
	best := -1
	for i, s := range *free {
		if cap(s) >= n && (best < 0 || cap(s) < cap((*free)[best])) {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	s := (*free)[best]
	last := len(*free) - 1
	(*free)[best] = (*free)[last]
	(*free)[last] = nil
	*free = (*free)[:last]
	return s, true
}

func takeInt64(free *[][]int64, n int) ([]int64, bool) {
	best := -1
	for i, s := range *free {
		if cap(s) >= n && (best < 0 || cap(s) < cap((*free)[best])) {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	s := (*free)[best]
	last := len(*free) - 1
	(*free)[best] = (*free)[last]
	(*free)[last] = nil
	*free = (*free)[:last]
	return s, true
}

func takeBool(free *[][]bool, n int) ([]bool, bool) {
	best := -1
	for i, s := range *free {
		if cap(s) >= n && (best < 0 || cap(s) < cap((*free)[best])) {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	s := (*free)[best]
	last := len(*free) - 1
	(*free)[best] = (*free)[last]
	(*free)[last] = nil
	*free = (*free)[:last]
	return s, true
}
