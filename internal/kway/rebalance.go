package kway

import (
	"math/rand"
)

// RebalanceOptions configures Rebalance.
type RebalanceOptions struct {
	// Ubfactor is the balance target (0 means 1.05).
	Ubfactor float64
	// MigrationWeight trades cut quality against data movement: the
	// penalty per unit of vertex weight that ends up away from its
	// incumbent part. 0 means 1.0; larger values keep more vertices home.
	MigrationWeight float64
	// MaxPasses bounds the sweeps (0 means 8).
	MaxPasses int
	// Seed orders the sweeps deterministically.
	Seed int64
}

func (o RebalanceOptions) withDefaults() RebalanceOptions {
	if o.Ubfactor <= 1 {
		o.Ubfactor = 1.05
	}
	if o.MigrationWeight == 0 {
		o.MigrationWeight = 1.0
	}
	if o.MaxPasses <= 0 {
		o.MaxPasses = 32
	}
	return o
}

// Rebalance adapts the partition p to its graph's current vertex weights —
// the dynamic repartitioning problem of adaptive computations, where the
// mesh (or the per-vertex work) changed after an initial placement. It
// moves vertices out of overweight parts into adjacent lighter parts,
// choosing moves by edge-cut gain minus a migration penalty against the
// incumbent placement `orig` (vertices prefer to stay, or return, home).
// It returns the total vertex weight that ended up away from `orig`.
//
// The loop terminates when every part is within the tolerance or no
// admissible move remains; each pass strictly reduces total overweight.
func Rebalance(p *Partition, orig []int, opts RebalanceOptions) (migrated int) {
	opts = opts.withDefaults()
	g := p.G
	n := g.NumVertices()
	if n == 0 || p.K < 2 {
		return migratedWeight(p, orig)
	}
	tot := g.TotalVertexWeight()
	target := tot / p.K
	limit := int(opts.Ubfactor * float64(target))
	if limit < target+1 {
		limit = target + 1
	}

	order := rand.New(rand.NewSource(opts.Seed)).Perm(n)
	ed := make([]int, p.K)
	seen := make([]int, p.K)
	stamp := 0

	for pass := 0; pass < opts.MaxPasses; pass++ {
		over := 0
		for _, w := range p.Pwgt {
			if w > limit {
				over += w - limit
			}
		}
		if over == 0 {
			break
		}
		moves := 0
		for _, v := range order {
			from := p.Where[v]
			if p.Pwgt[from] <= limit {
				continue // only drain overweight parts
			}
			adj := g.Neighbors(v)
			wgt := g.EdgeWeights(v)
			stamp++
			for i, u := range adj {
				pu := p.Where[u]
				if seen[pu] != stamp {
					seen[pu] = stamp
					ed[pu] = 0
				}
				ed[pu] += wgt[i]
			}
			id := 0
			if seen[from] == stamp {
				id = ed[from]
			}
			// Score candidate destinations: cut gain minus migration
			// delta, requiring the destination to have room.
			best := -1
			bestScore := 0.0
			migNow := 0
			if from != orig[v] {
				migNow = g.Vwgt[v]
			}
			for i := range adj {
				to := p.Where[adj[i]]
				if to == from || seen[to] != stamp {
					continue
				}
				// Admissible when the destination has room, or — so that
				// weight can cascade through saturated neighbor parts —
				// when the move strictly lowers the heavier of the pair.
				if p.Pwgt[to]+g.Vwgt[v] > limit &&
					p.Pwgt[to]+g.Vwgt[v] >= p.Pwgt[from] {
					continue
				}
				migAfter := 0
				if to != orig[v] {
					migAfter = g.Vwgt[v]
				}
				score := float64(ed[to]-id) - opts.MigrationWeight*float64(migAfter-migNow)
				if best < 0 || score > bestScore ||
					(score == bestScore && p.Pwgt[to] < p.Pwgt[best]) {
					best = to
					bestScore = score
				}
			}
			if best < 0 {
				continue
			}
			p.Where[v] = best
			p.Pwgt[from] -= g.Vwgt[v]
			p.Pwgt[best] += g.Vwgt[v]
			p.Cut -= ed[best] - id
			moves++
		}
		if moves == 0 {
			break
		}
	}
	return migratedWeight(p, orig)
}

func migratedWeight(p *Partition, orig []int) int {
	m := 0
	for v, w := range p.Where {
		if w != orig[v] {
			m += p.G.Vwgt[v]
		}
	}
	return m
}
