package kway_test

import (
	"testing"

	"mlpart/internal/graph"
	"mlpart/internal/kway"
	"mlpart/internal/matgen"
	"mlpart/internal/multilevel"
	"mlpart/internal/refine"
)

// adapt returns a copy of g with vertex weights increased in one corner,
// simulating adaptive mesh refinement concentrating work.
func adapt(g *graph.Graph, hotFraction int) *graph.Graph {
	ng := g.Clone()
	n := ng.NumVertices()
	for v := 0; v < n/hotFraction; v++ {
		ng.Vwgt[v] = 5
	}
	return ng
}

func TestRebalanceRestoresBalance(t *testing.T) {
	base := matgen.Mesh2DTri(25, 25, 0, 1)
	res, err := multilevel.Partition(base, 8, multilevel.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The computation adapts: one region becomes 5x heavier.
	g := adapt(base, 4)
	p := kway.NewPartition(g, 8, append([]int(nil), res.Where...))
	if p.Balance() < 1.2 {
		t.Fatalf("test premise broken: balance %v should be bad", p.Balance())
	}
	orig := append([]int(nil), res.Where...)
	migrated := kway.Rebalance(p, orig, kway.RebalanceOptions{Seed: 3})
	if b := p.Balance(); b > 1.12 {
		t.Errorf("balance %v after rebalance", b)
	}
	if migrated <= 0 {
		t.Error("no migration despite imbalance")
	}
	// The hot quarter holds ~62% of the weight, so heavy migration is
	// unavoidable; just bound it away from "everything moved".
	if migrated > g.TotalVertexWeight()*3/4 {
		t.Errorf("migrated %d of %d: too much movement", migrated, g.TotalVertexWeight())
	}
	if got := refine.ComputeCut(g, p.Where); got != p.Cut {
		t.Fatalf("incremental cut %d, recomputed %d", p.Cut, got)
	}
}

func TestRebalanceNoopWhenBalanced(t *testing.T) {
	g := matgen.Grid2D(16, 16)
	res, err := multilevel.Partition(g, 4, multilevel.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := kway.NewPartition(g, 4, append([]int(nil), res.Where...))
	orig := append([]int(nil), res.Where...)
	migrated := kway.Rebalance(p, orig, kway.RebalanceOptions{Seed: 5})
	if migrated != 0 {
		t.Fatalf("migrated %d from a balanced partition", migrated)
	}
}

func TestRebalanceMigrationWeightTrade(t *testing.T) {
	// Higher migration weight must not migrate more, in aggregate.
	totLow, totHigh := 0, 0
	for seed := int64(0); seed < 4; seed++ {
		base := matgen.Mesh2DTri(20, 20, 0, seed)
		res, err := multilevel.Partition(base, 8, multilevel.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		g := adapt(base, 3)
		orig := append([]int(nil), res.Where...)
		pl := kway.NewPartition(g, 8, append([]int(nil), res.Where...))
		totLow += kway.Rebalance(pl, orig, kway.RebalanceOptions{Seed: seed, MigrationWeight: 0.1})
		ph := kway.NewPartition(g, 8, append([]int(nil), res.Where...))
		totHigh += kway.Rebalance(ph, orig, kway.RebalanceOptions{Seed: seed, MigrationWeight: 10})
	}
	if totHigh > totLow*3/2 {
		t.Errorf("high migration weight moved more: %d vs %d", totHigh, totLow)
	}
}

func TestRebalanceBetterThanRepartitionOnMigration(t *testing.T) {
	// Rebalancing an incumbent partition must move far less data than
	// partitioning from scratch (whose parts land anywhere).
	base := matgen.Mesh2DTri(30, 30, 0, 6)
	res, err := multilevel.Partition(base, 8, multilevel.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g := adapt(base, 4)
	orig := append([]int(nil), res.Where...)

	p := kway.NewPartition(g, 8, append([]int(nil), res.Where...))
	migRebalance := kway.Rebalance(p, orig, kway.RebalanceOptions{Seed: 8})

	fresh, err := multilevel.Partition(g, 8, multilevel.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	migFresh := 0
	for v := range fresh.Where {
		if fresh.Where[v] != orig[v] {
			migFresh += g.Vwgt[v]
		}
	}
	if migRebalance >= migFresh {
		t.Errorf("rebalance migrated %d, fresh partition %d: want less", migRebalance, migFresh)
	}
}

func TestRebalanceDeterministic(t *testing.T) {
	base := matgen.Grid2D(14, 14)
	res, _ := multilevel.Partition(base, 4, multilevel.Options{Seed: 10})
	g := adapt(base, 3)
	orig := append([]int(nil), res.Where...)
	a := kway.NewPartition(g, 4, append([]int(nil), res.Where...))
	b := kway.NewPartition(g, 4, append([]int(nil), res.Where...))
	kway.Rebalance(a, orig, kway.RebalanceOptions{Seed: 11})
	kway.Rebalance(b, orig, kway.RebalanceOptions{Seed: 11})
	for v := range a.Where {
		if a.Where[v] != b.Where[v] {
			t.Fatal("Rebalance not deterministic")
		}
	}
}

func TestRebalanceHotVertexHeavierThanLimit(t *testing.T) {
	// A single vertex heavier than the per-part limit cannot be placed
	// within tolerance; Rebalance must terminate anyway.
	b := graph.NewBuilder(6)
	for i := 0; i+1 < 6; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.MustBuild()
	g.Vwgt[0] = 100
	where := []int{0, 0, 0, 1, 1, 1}
	p := kway.NewPartition(g, 2, where)
	kway.Rebalance(p, append([]int(nil), where...), kway.RebalanceOptions{Seed: 12})
	// Terminated; partition still valid.
	if refine.ComputeCut(g, p.Where) != p.Cut {
		t.Fatal("state corrupted")
	}
}
