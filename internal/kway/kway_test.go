package kway_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/kway"
	"mlpart/internal/matgen"
	"mlpart/internal/multilevel"
	"mlpart/internal/refine"
)

func TestNewPartitionState(t *testing.T) {
	g := matgen.Grid2D(4, 4)
	where := make([]int, 16)
	for v := range where {
		where[v] = v % 4
	}
	p := kway.NewPartition(g, 4, where)
	if p.Cut != refine.ComputeCut(g, where) {
		t.Fatalf("cut %d, want %d", p.Cut, refine.ComputeCut(g, where))
	}
	tot := 0
	for _, w := range p.Pwgt {
		tot += w
	}
	if tot != g.TotalVertexWeight() {
		t.Fatal("part weights do not sum to total")
	}
}

func TestRefineImprovesRandomKWay(t *testing.T) {
	g := matgen.Mesh2DTri(25, 25, 0, 1)
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(2))
	where := make([]int, n)
	for v := range where {
		where[v] = rng.Intn(8)
	}
	p := kway.NewPartition(g, 8, where)
	before := p.Cut
	after := kway.Refine(p, kway.Options{Seed: 3})
	if after >= before {
		t.Fatalf("no improvement: %d -> %d", before, after)
	}
	if got := refine.ComputeCut(g, p.Where); got != after {
		t.Fatalf("incremental cut %d, recomputed %d", after, got)
	}
}

func TestRefineNeverWorsens(t *testing.T) {
	g := matgen.FE3DTetra(7, 7, 7, 4)
	res, err := multilevel.Partition(g, 16, multilevel.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := kway.NewPartition(g, 16, append([]int(nil), res.Where...))
	before := p.Cut
	after := kway.Refine(p, kway.Options{Seed: 6})
	if after > before {
		t.Fatalf("worsened: %d -> %d", before, after)
	}
}

func TestRefineImprovesRecursiveBisection(t *testing.T) {
	// Direct k-way refinement on top of recursive bisection should help on
	// aggregate (this is its reason to exist).
	improvedTotal, baseTotal := 0, 0
	for seed := int64(0); seed < 5; seed++ {
		g := matgen.Mesh2DTri(30, 30, 0.02, seed)
		res, err := multilevel.Partition(g, 16, multilevel.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		baseTotal += res.EdgeCut
		p := kway.NewPartition(g, 16, append([]int(nil), res.Where...))
		improvedTotal += kway.Refine(p, kway.Options{Seed: seed})
	}
	if improvedTotal > baseTotal {
		t.Fatalf("k-way refinement worsened aggregate: %d -> %d", baseTotal, improvedTotal)
	}
}

func TestRefineRespectsBalance(t *testing.T) {
	g := matgen.Grid2D(24, 24)
	res, err := multilevel.Partition(g, 8, multilevel.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := kway.NewPartition(g, 8, res.Where)
	kway.Refine(p, kway.Options{Seed: 8, Ubfactor: 1.05})
	if b := p.Balance(); b > 1.1 {
		t.Fatalf("balance %v after refinement", b)
	}
	for _, w := range p.Pwgt {
		if w <= 0 {
			t.Fatal("a part was emptied")
		}
	}
}

func TestRefineK1AndEmpty(t *testing.T) {
	g := matgen.Grid2D(3, 3)
	p := kway.NewPartition(g, 1, make([]int, 9))
	if kway.Refine(p, kway.Options{}) != 0 {
		t.Fatal("k=1 cut nonzero")
	}
}

func TestRefineDeterministic(t *testing.T) {
	g := matgen.FE3DTetra(6, 6, 6, 9)
	res, _ := multilevel.Partition(g, 8, multilevel.Options{Seed: 10})
	a := kway.NewPartition(g, 8, append([]int(nil), res.Where...))
	b := kway.NewPartition(g, 8, append([]int(nil), res.Where...))
	kway.Refine(a, kway.Options{Seed: 11})
	kway.Refine(b, kway.Options{Seed: 11})
	for v := range a.Where {
		if a.Where[v] != b.Where[v] {
			t.Fatal("not deterministic")
		}
	}
}

// Property: refinement preserves weights, keeps parts in range, and the
// incremental cut matches a recomputation.
func TestRefinePropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := matgen.FE3DTetra(5, 5, 4, seed)
		n := g.NumVertices()
		k := 2 + int(uint64(seed)%6)
		rng := rand.New(rand.NewSource(seed))
		where := make([]int, n)
		for v := range where {
			where[v] = rng.Intn(k)
		}
		p := kway.NewPartition(g, k, where)
		before := p.Cut
		after := kway.Refine(p, kway.Options{Seed: seed})
		if after > before {
			return false
		}
		tot := 0
		for _, w := range p.Pwgt {
			if w < 0 {
				return false
			}
			tot += w
		}
		if tot != g.TotalVertexWeight() {
			return false
		}
		for _, part := range p.Where {
			if part < 0 || part >= k {
				return false
			}
		}
		return refine.ComputeCut(g, p.Where) == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
