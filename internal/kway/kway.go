// Package kway implements direct k-way partition refinement: a greedy
// Kernighan-Lin-style pass over the boundary vertices of a k-way partition
// that moves vertices between adjacent parts when that decreases the
// edge-cut (or keeps it equal while improving balance). The paper produces
// k-way partitions by recursive bisection (§2); refining the assembled
// k-way partition directly afterwards is the natural extension the authors
// pursued in the follow-up METIS work, and it is exposed here through
// multilevel.Options.
package kway

import (
	"math/rand"
	"time"

	"mlpart/internal/graph"
	"mlpart/internal/trace"
	"mlpart/internal/workspace"
)

// Options configures k-way refinement.
type Options struct {
	// MaxPasses bounds the number of full sweeps (0 means 8).
	MaxPasses int
	// Ubfactor is the allowed imbalance per part (0 means 1.05).
	Ubfactor float64
	// Seed orders the sweep deterministically.
	Seed int64
	// Workspace, when non-nil, supplies pooled scratch for the sweep order
	// and per-part degree arrays. Results are identical either way.
	Workspace *workspace.Workspace
	// Level is the hierarchy level reported in trace events (engine-set).
	Level int
	// Tracer, when non-nil, receives one KindPass event per greedy sweep.
	// Results are bit-identical with or without a tracer.
	Tracer trace.Tracer
	// Counters, when non-nil, accumulates pass and move totals.
	Counters *trace.Counters
}

func (o Options) withDefaults() Options {
	if o.MaxPasses <= 0 {
		o.MaxPasses = 8
	}
	if o.Ubfactor <= 1 {
		o.Ubfactor = 1.05
	}
	return o
}

// Partition is k-way partition state with incremental part weights and cut.
type Partition struct {
	G     *graph.Graph
	K     int
	Where []int
	Pwgt  []int
	Cut   int
}

// NewPartition builds refinement state for an existing partition vector.
// where is retained, not copied.
func NewPartition(g *graph.Graph, k int, where []int) *Partition {
	p := &Partition{G: g, K: k, Where: where, Pwgt: make([]int, k)}
	for v := 0; v < g.NumVertices(); v++ {
		p.Pwgt[where[v]] += g.Vwgt[v]
	}
	for v := 0; v < g.NumVertices(); v++ {
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		for i, u := range adj {
			if where[u] != where[v] {
				p.Cut += wgt[i]
			}
		}
	}
	p.Cut /= 2
	return p
}

// Balance returns k*max(Pwgt)/total; 1.0 is perfect.
func (p *Partition) Balance() float64 {
	tot, maxw := 0, 0
	for _, w := range p.Pwgt {
		tot += w
		if w > maxw {
			maxw = w
		}
	}
	if tot == 0 {
		return 1
	}
	return float64(p.K) * float64(maxw) / float64(tot)
}

// Refine runs greedy k-way refinement in place and returns the final cut.
// Each pass visits the vertices in a fixed random order; for every boundary
// vertex the best admissible move to an adjacent part is applied when it
// reduces the cut, or keeps the cut while strictly improving the weight
// spread. Passes repeat until none makes a move, or MaxPasses.
func Refine(p *Partition, opts Options) int {
	opts = opts.withDefaults()
	n := p.G.NumVertices()
	if n == 0 || p.K < 2 {
		return p.Cut
	}
	tot := p.G.TotalVertexWeight()
	target := tot / p.K
	maxVwgt := 0
	for _, w := range p.G.Vwgt {
		if w > maxVwgt {
			maxVwgt = w
		}
	}
	limit := int(opts.Ubfactor * float64(target))
	if lim2 := target + maxVwgt; lim2 > limit {
		limit = lim2
	}

	ws := opts.Workspace
	order := workspace.PermInto(rand.New(rand.NewSource(opts.Seed)), n, ws.Int(n))
	// Scratch arrays for per-part external degrees of the current vertex.
	// seen must start clean: a stale entry equal to a future stamp would
	// corrupt the degree collection.
	ed := ws.Int(p.K)
	seen := ws.IntFilled(p.K, 0)
	stamp := 0

	for pass := 0; pass < opts.MaxPasses; pass++ {
		var t0 time.Time
		if opts.Tracer != nil {
			t0 = time.Now()
		}
		moves := 0
		posGain := 0
		for _, v := range order {
			from := p.Where[v]
			adj := p.G.Neighbors(v)
			wgt := p.G.EdgeWeights(v)
			// Collect degrees to each adjacent part.
			stamp++
			boundary := false
			for i, u := range adj {
				pu := p.Where[u]
				if seen[pu] != stamp {
					seen[pu] = stamp
					ed[pu] = 0
				}
				ed[pu] += wgt[i]
				if pu != from {
					boundary = true
				}
			}
			if !boundary {
				continue
			}
			id := 0
			if seen[from] == stamp {
				id = ed[from]
			}
			// Best admissible destination among adjacent parts.
			best, bestGain := -1, 0
			for i := range adj {
				to := p.Where[adj[i]]
				if to == from || seen[to] != stamp {
					continue
				}
				if p.Pwgt[to]+p.G.Vwgt[v] > limit {
					continue
				}
				gain := ed[to] - id
				better := gain > bestGain
				if gain == bestGain && gain >= 0 && best != -1 && p.Pwgt[to] < p.Pwgt[best] {
					better = true
				}
				if gain == 0 && best == -1 && p.Pwgt[to]+p.G.Vwgt[v] < p.Pwgt[from] {
					// Zero-gain move that strictly improves spread.
					better = true
				}
				if better {
					best, bestGain = to, gain
				}
			}
			if best < 0 {
				continue
			}
			// Never empty a part.
			if p.Pwgt[from]-p.G.Vwgt[v] <= 0 {
				continue
			}
			p.Where[v] = best
			p.Pwgt[from] -= p.G.Vwgt[v]
			p.Pwgt[best] += p.G.Vwgt[v]
			p.Cut -= bestGain
			moves++
			if bestGain > 0 {
				posGain++
			}
		}
		if opts.Counters != nil {
			opts.Counters.RefinePasses++
			opts.Counters.RefineMoves += moves
			opts.Counters.PositiveGainMoves += posGain
		}
		if opts.Tracer != nil {
			opts.Tracer.Event(trace.Event{
				Kind:              trace.KindPass,
				Level:             opts.Level,
				Pass:              pass,
				Moves:             moves,
				PositiveGainMoves: posGain,
				Cut:               p.Cut,
				Algorithm:         "KWAY",
				ElapsedNS:         time.Since(t0).Nanoseconds(),
			})
		}
		if moves == 0 {
			break
		}
	}
	ws.PutInt(order)
	ws.PutInt(ed)
	ws.PutInt(seen)
	return p.Cut
}
