package geom

import (
	"testing"
	"testing/quick"

	"mlpart/internal/graph"
	"mlpart/internal/matgen"
	"mlpart/internal/multilevel"
	"mlpart/internal/refine"
)

func checkPartition(t *testing.T, where []int, k, n int) {
	t.Helper()
	if len(where) != n {
		t.Fatalf("len(where) = %d, want %d", len(where), n)
	}
	counts := make([]int, k)
	for _, p := range where {
		if p < 0 || p >= k {
			t.Fatalf("part %d out of range", p)
		}
		counts[p]++
	}
	avg := n / k
	for p, c := range counts {
		if c < avg/2 || c > avg*2 {
			t.Errorf("part %d has %d vertices, avg %d", p, c, avg)
		}
	}
}

func TestRCBOnMesh(t *testing.T) {
	g, pts := matgen.GeoMesh2D(24, 24, 1)
	where, err := RCB(g, pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, where, 8, g.NumVertices())
	// Geometric bisection of a mesh must beat a random partition by far.
	cut := refine.ComputeCut(g, where)
	if cut > g.NumEdges()/4 {
		t.Errorf("RCB cut %d of %d edges", cut, g.NumEdges())
	}
}

func TestInertialOnMesh(t *testing.T) {
	g, pts := matgen.GeoMesh2D(24, 24, 2)
	where, err := Inertial(g, pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, where, 8, g.NumVertices())
	cut := refine.ComputeCut(g, where)
	if cut > g.NumEdges()/4 {
		t.Errorf("inertial cut %d of %d edges", cut, g.NumEdges())
	}
}

func TestGeo3D(t *testing.T) {
	g, pts := matgen.GeoMesh3D(8, 8, 8, 3)
	whereRCB, err := RCB(g, pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, whereRCB, 4, g.NumVertices())
	whereIn, err := Inertial(g, pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, whereIn, 4, g.NumVertices())
}

func TestMultilevelBeatsGeometric(t *testing.T) {
	// The paper's §1 claim: geometric partitioners are fast but "often
	// yield partitions that are worse than those obtained by spectral
	// methods" — and worse than the multilevel scheme. Check in aggregate.
	geoTotal, mlTotal := 0, 0
	for seed := int64(0); seed < 4; seed++ {
		g, pts := matgen.GeoMesh2D(30, 30, seed)
		where, err := RCB(g, pts, 16)
		if err != nil {
			t.Fatal(err)
		}
		geoTotal += refine.ComputeCut(g, where)
		res, err := multilevel.Partition(g, 16, multilevel.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		mlTotal += res.EdgeCut
	}
	if mlTotal >= geoTotal {
		t.Errorf("multilevel total %d not better than RCB total %d", mlTotal, geoTotal)
	}
}

func TestGeomErrors(t *testing.T) {
	g, pts := matgen.GeoMesh2D(4, 4, 4)
	if _, err := RCB(g, pts[:3], 2); err == nil {
		t.Error("point/vertex mismatch accepted")
	}
	if _, err := RCB(g, pts, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestRCBDeterministic(t *testing.T) {
	g, pts := matgen.GeoMesh2D(10, 10, 5)
	a, _ := RCB(g, pts, 8)
	b, _ := RCB(g, pts, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RCB not deterministic")
		}
	}
}

// Property: both geometric methods always produce complete partitions with
// every part nonempty on meshes.
func TestGeomPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		g, pts := matgen.GeoMesh2D(12, 12, seed)
		for _, k := range []int{2, 3, 5, 8} {
			for _, fn := range []func(*graph.Graph, []matgen.Point, int) ([]int, error){RCB, Inertial} {
				where, err := fn(g, pts, k)
				if err != nil {
					return false
				}
				counts := make([]int, k)
				for _, p := range where {
					if p < 0 || p >= k {
						return false
					}
					counts[p]++
				}
				for _, c := range counts {
					if c == 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricOnTrueDelaunayMesh(t *testing.T) {
	// A true unstructured Delaunay mesh (the paper's 4ELT class): both
	// geometric methods and the multilevel scheme should find sqrt(n)-like
	// cuts; multilevel should win or tie.
	g, pts := matgen.DelaunayMesh(1500, 4)
	rcb, err := RCB(g, pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := multilevel.Partition(g, 8, multilevel.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rcbCut := refine.ComputeCut(g, rcb)
	if res.EdgeCut > rcbCut {
		t.Errorf("multilevel cut %d worse than RCB %d on a Delaunay mesh", res.EdgeCut, rcbCut)
	}
	// Both should be far below a random partition's ~ (7/8)m expectation.
	if rcbCut > g.NumEdges()/3 {
		t.Errorf("RCB cut %d of %d edges", rcbCut, g.NumEdges())
	}
}
