// Package geom implements the coordinate-based partitioning algorithms the
// paper discusses as the fast-but-lower-quality alternative to spectral
// methods (§1): recursive coordinate bisection (RCB) and inertial
// bisection. They only apply when vertex coordinates exist — the paper's
// point being that linear-programming and circuit graphs have none, which
// is exactly where the multilevel scheme is needed. Here they serve as
// baselines on the mesh workloads.
package geom

import (
	"fmt"
	"math"
	"sort"

	"mlpart/internal/graph"
	"mlpart/internal/matgen"
)

// RCB partitions g into k parts by recursive coordinate bisection: at each
// step the current set of vertices is split at the weighted median of its
// widest coordinate. pts must have one entry per vertex.
func RCB(g *graph.Graph, pts []matgen.Point, k int) ([]int, error) {
	return recurseGeo(g, pts, k, splitWidestDim)
}

// Inertial partitions g into k parts by recursive inertial bisection: each
// set is split at the weighted median of the projection onto its principal
// axis (the dominant eigenvector of the coordinate covariance), which
// adapts to geometries not aligned with the axes.
func Inertial(g *graph.Graph, pts []matgen.Point, k int) ([]int, error) {
	return recurseGeo(g, pts, k, splitPrincipalAxis)
}

// splitter orders the index subset ids so that a prefix forms one side.
type splitter func(pts []matgen.Point, ids []int)

func recurseGeo(g *graph.Graph, pts []matgen.Point, k int, split splitter) ([]int, error) {
	n := g.NumVertices()
	if len(pts) != n {
		return nil, fmt.Errorf("geom: %d points for %d vertices", len(pts), n)
	}
	if k < 1 {
		return nil, fmt.Errorf("geom: k = %d", k)
	}
	where := make([]int, n)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	var rec func(ids []int, k, base int)
	rec = func(ids []int, k, base int) {
		if k <= 1 || len(ids) == 0 {
			for _, v := range ids {
				where[v] = base
			}
			return
		}
		kl := k / 2
		split(pts, ids)
		// Weighted prefix of kl/k of the total goes left.
		tot := 0
		for _, v := range ids {
			tot += g.Vwgt[v]
		}
		target := tot * kl / k
		acc, cut := 0, 0
		for cut < len(ids) && acc < target {
			acc += g.Vwgt[ids[cut]]
			cut++
		}
		rec(ids[:cut], kl, base)
		rec(ids[cut:], k-kl, base+kl)
	}
	rec(ids, k, 0)
	return where, nil
}

// splitWidestDim sorts ids by the coordinate with the largest extent.
func splitWidestDim(pts []matgen.Point, ids []int) {
	min := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	max := [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	for _, v := range ids {
		c := coords(pts[v])
		for d := 0; d < 3; d++ {
			if c[d] < min[d] {
				min[d] = c[d]
			}
			if c[d] > max[d] {
				max[d] = c[d]
			}
		}
	}
	dim := 0
	for d := 1; d < 3; d++ {
		if max[d]-min[d] > max[dim]-min[dim] {
			dim = d
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := coords(pts[ids[i]]), coords(pts[ids[j]])
		if a[dim] != b[dim] {
			return a[dim] < b[dim]
		}
		return ids[i] < ids[j]
	})
}

// splitPrincipalAxis sorts ids by their projection onto the dominant
// eigenvector of the coordinate covariance matrix (found by power
// iteration, which is exact enough for a median split).
func splitPrincipalAxis(pts []matgen.Point, ids []int) {
	var mean [3]float64
	for _, v := range ids {
		c := coords(pts[v])
		for d := 0; d < 3; d++ {
			mean[d] += c[d]
		}
	}
	for d := 0; d < 3; d++ {
		mean[d] /= float64(len(ids))
	}
	var cov [3][3]float64
	for _, v := range ids {
		c := coords(pts[v])
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				cov[a][b] += (c[a] - mean[a]) * (c[b] - mean[b])
			}
		}
	}
	// Power iteration with a deterministic start.
	dir := [3]float64{1, 0.7, 0.4}
	for it := 0; it < 30; it++ {
		var next [3]float64
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				next[a] += cov[a][b] * dir[b]
			}
		}
		nrm := math.Sqrt(next[0]*next[0] + next[1]*next[1] + next[2]*next[2])
		if nrm < 1e-12 {
			break // degenerate geometry; keep previous direction
		}
		for d := 0; d < 3; d++ {
			dir[d] = next[d] / nrm
		}
	}
	proj := func(v int) float64 {
		c := coords(pts[v])
		return c[0]*dir[0] + c[1]*dir[1] + c[2]*dir[2]
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := proj(ids[i]), proj(ids[j])
		if a != b {
			return a < b
		}
		return ids[i] < ids[j]
	})
}

func coords(p matgen.Point) [3]float64 { return [3]float64{p.X, p.Y, p.Z} }
