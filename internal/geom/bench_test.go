package geom

import (
	"testing"

	"mlpart/internal/matgen"
)

func BenchmarkRCB(b *testing.B) {
	b.ReportAllocs()
	g, pts := matgen.GeoMesh2D(60, 60, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RCB(g, pts, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInertial(b *testing.B) {
	b.ReportAllocs()
	g, pts := matgen.GeoMesh2D(60, 60, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Inertial(g, pts, 16); err != nil {
			b.Fatal(err)
		}
	}
}
