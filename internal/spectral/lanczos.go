// Package spectral implements the eigenvector machinery the paper's
// baselines rely on: Lanczos iteration with full reorthogonalization for
// the Fiedler vector of a weighted graph Laplacian, and the multilevel
// spectral bisection (MSB) algorithm of Barnard & Simon used as the main
// comparison partitioner (Figures 1, 2 and 4 of the paper).
package spectral

import (
	"math"
	"math/rand"
	"sort"

	"mlpart/internal/graph"
)

// Fiedler approximates the eigenvector of the second-smallest eigenvalue
// of the weighted Laplacian L = D - W of g. seed, when non-nil, is the
// starting vector (the multilevel interpolation trick: a seed close to the
// answer converges in a handful of iterations); otherwise a random start
// from rng is used. maxIter bounds the Lanczos steps; min(maxIter, n-1)
// steps are run with full reorthogonalization, which is robust for the
// coarse graphs (hundreds of vertices) and short polish runs this package
// performs. For n < 2 a zero vector is returned.
func Fiedler(g *graph.Graph, maxIter int, seed []float64, rng *rand.Rand) []float64 {
	out, _ := FiedlerChecked(g, maxIter, seed, rng)
	return out
}

// FiedlerChecked is Fiedler reporting whether the iteration produced a
// usable vector: converged is false when the Lanczos recurrence failed
// to produce a finite, nonzero embedding (a breakdown the caller should
// treat as non-convergence and handle by falling back to a combinatorial
// partitioner). The returned vector is bit-identical to Fiedler's, and
// for the well-conditioned coarse graphs this package targets, converged
// is true in practice — the check exists so degraded-mode callers never
// round a garbage vector into a partition.
func FiedlerChecked(g *graph.Graph, maxIter int, seed []float64, rng *rand.Rand) (vec []float64, converged bool) {
	n := g.NumVertices()
	out := make([]float64, n)
	if n < 2 {
		return out, true
	}
	if maxIter > n-1 {
		maxIter = n - 1
	}
	if maxIter < 1 {
		maxIter = 1
	}

	wdeg := make([]float64, n)
	for v := 0; v < n; v++ {
		wdeg[v] = float64(g.WeightedDegree(v))
	}

	q := make([]float64, n)
	if seed != nil {
		copy(q, seed)
	} else {
		for i := range q {
			q[i] = rng.Float64() - 0.5
		}
	}
	deflateConstant(q)
	if nrm := norm(q); nrm < 1e-12 {
		// Degenerate seed; fall back to a deterministic ramp.
		for i := range q {
			q[i] = float64(i) - float64(n-1)/2
		}
		deflateConstant(q)
	}
	scale(q, 1/norm(q))

	var basis [][]float64
	var alpha, beta []float64
	z := make([]float64, n)
	var prev []float64
	for j := 0; j < maxIter; j++ {
		basis = append(basis, append([]float64(nil), q...))
		applyLaplacian(g, wdeg, q, z)
		a := dot(z, q)
		alpha = append(alpha, a)
		for i := range z {
			z[i] -= a * q[i]
		}
		if prev != nil {
			b := beta[len(beta)-1]
			for i := range z {
				z[i] -= b * prev[i]
			}
		}
		// Full reorthogonalization keeps the basis numerically orthogonal
		// and deflates the constant null vector.
		deflateConstant(z)
		for _, qi := range basis {
			d := dot(z, qi)
			for i := range z {
				z[i] -= d * qi[i]
			}
		}
		b := norm(z)
		if b < 1e-10 {
			break
		}
		beta = append(beta, b)
		prev = q
		q = append(q[:0], z...)
		scale(q, 1/b)
	}

	m := len(alpha)
	if m == 0 {
		return out, false
	}
	evals, evecs := tql2(alpha, beta[:m-1])
	// Smallest Ritz value of the deflated operator is the Fiedler value.
	best := 0
	for i := 1; i < m; i++ {
		if evals[i] < evals[best] {
			best = i
		}
	}
	for i := 0; i < m; i++ {
		c := evecs[i][best]
		for v := 0; v < n; v++ {
			out[v] += c * basis[i][v]
		}
	}
	nonzero := false
	for _, x := range out {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return out, false
		}
		if x != 0 {
			nonzero = true
		}
	}
	return out, nonzero
}

// applyLaplacian computes y = (D - W) x.
func applyLaplacian(g *graph.Graph, wdeg, x, y []float64) {
	for v := range y {
		s := wdeg[v] * x[v]
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		for i, u := range adj {
			s -= float64(wgt[i]) * x[u]
		}
		y[v] = s
	}
}

// deflateConstant removes the component along the all-ones vector.
func deflateConstant(x []float64) {
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

func scale(a []float64, c float64) {
	for i := range a {
		a[i] *= c
	}
}

// SplitAtMedian converts an embedding vector into a bisection by splitting
// at the weighted median: vertices are sorted by vec value and assigned to
// part 0 until its weight reaches target0, the rest to part 1. This is the
// standard spectral-bisection rounding and guarantees balance up to one
// vertex weight.
func SplitAtMedian(g *graph.Graph, vec []float64, target0 int) []int {
	n := g.NumVertices()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if vec[a] != vec[b] {
			return vec[a] < vec[b]
		}
		return a < b
	})
	where := make([]int, n)
	for i := range where {
		where[i] = 1
	}
	acc := 0
	for _, v := range order {
		if acc >= target0 {
			break
		}
		where[v] = 0
		acc += g.Vwgt[v]
	}
	return where
}
