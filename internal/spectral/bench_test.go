package spectral

import (
	"math/rand"
	"testing"

	"mlpart/internal/matgen"
)

func BenchmarkFiedlerCoarse(b *testing.B) {
	b.ReportAllocs()
	// The per-bisection cost of the spectral initial partitioner: an exact
	// Lanczos solve on a ~100-vertex coarse graph.
	g := matgen.Mesh2DTri(10, 10, 0, 1)
	r := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fiedler(g, g.NumVertices()-1, nil, r)
	}
}

func BenchmarkMSBisect(b *testing.B) {
	b.ReportAllocs()
	g := matgen.FE3DTetra(12, 12, 12, 3)
	r := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MSBisect(g, MSBOptions{}, r)
	}
}
