package spectral

import (
	"math"
	"math/rand"
	"testing"

	"mlpart/internal/matgen"
	"mlpart/internal/refine"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestTql2Diagonal(t *testing.T) {
	d, z := tql2([]float64{3, 1, 2}, []float64{0, 0})
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Fatalf("eigenvalues %v, want %v", d, want)
		}
	}
	// Eigenvector for eigenvalue 1 is e_1 (original position of value 1).
	if math.Abs(math.Abs(z[1][0])-1) > 1e-12 {
		t.Fatalf("eigenvector wrong: %v", z)
	}
}

func TestTql2KnownTridiagonal(t *testing.T) {
	// Laplacian of the path graph P3: diag {1,2,1}, sub {-1,-1}.
	// Eigenvalues are 0, 1, 3.
	d, z := tql2([]float64{1, 2, 1}, []float64{-1, -1})
	want := []float64{0, 1, 3}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-10 {
			t.Fatalf("eigenvalues %v, want %v", d, want)
		}
	}
	// Check residual ||Tv - λv|| for each eigenpair.
	T := [][]float64{{1, -1, 0}, {-1, 2, -1}, {0, -1, 1}}
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += T[i][k] * z[k][j]
			}
			if math.Abs(s-d[j]*z[i][j]) > 1e-10 {
				t.Fatalf("residual too large for eigenpair %d", j)
			}
		}
	}
}

func TestTql2RandomResiduals(t *testing.T) {
	r := rng(5)
	n := 30
	alpha := make([]float64, n)
	beta := make([]float64, n-1)
	for i := range alpha {
		alpha[i] = r.Float64() * 10
	}
	for i := range beta {
		beta[i] = r.Float64()*2 - 1
	}
	d, z := tql2(alpha, beta)
	for j := 0; j < n; j++ {
		if j > 0 && d[j] < d[j-1] {
			t.Fatal("eigenvalues not sorted")
		}
		// Residual of (T - d[j] I) z[:,j].
		res := 0.0
		for i := 0; i < n; i++ {
			s := alpha[i] * z[i][j]
			if i > 0 {
				s += beta[i-1] * z[i-1][j]
			}
			if i < n-1 {
				s += beta[i] * z[i+1][j]
			}
			res += (s - d[j]*z[i][j]) * (s - d[j]*z[i][j])
		}
		if math.Sqrt(res) > 1e-8 {
			t.Fatalf("eigenpair %d residual %g", j, math.Sqrt(res))
		}
	}
}

func TestFiedlerPathGraph(t *testing.T) {
	// The Fiedler vector of a path is monotone along the path, so sorting
	// by it recovers the path order (up to reversal).
	g := matgen.Grid2D(1, 20) // path with 20 vertices
	vec := Fiedler(g, 19, nil, rng(1))
	inc, dec := true, true
	for i := 1; i < len(vec); i++ {
		if vec[i] < vec[i-1] {
			inc = false
		}
		if vec[i] > vec[i-1] {
			dec = false
		}
	}
	if !inc && !dec {
		t.Fatalf("Fiedler vector of path not monotone: %v", vec)
	}
}

func TestFiedlerEigenResidual(t *testing.T) {
	g := matgen.Mesh2DTri(8, 8, 0, 2)
	n := g.NumVertices()
	vec := Fiedler(g, n-1, nil, rng(3))
	// Rayleigh quotient and residual of the computed vector.
	wdeg := make([]float64, n)
	for v := 0; v < n; v++ {
		wdeg[v] = float64(g.WeightedDegree(v))
	}
	y := make([]float64, n)
	applyLaplacian(g, wdeg, vec, y)
	lambda := dot(y, vec) / dot(vec, vec)
	if lambda <= 1e-8 {
		t.Fatalf("Fiedler value %g not positive (picked the null vector?)", lambda)
	}
	res := 0.0
	for i := range y {
		d := y[i] - lambda*vec[i]
		res += d * d
	}
	res = math.Sqrt(res) / norm(vec)
	if res > 1e-6 {
		t.Fatalf("residual %g too large", res)
	}
	// Orthogonal to the constant vector.
	s := 0.0
	for _, v := range vec {
		s += v
	}
	if math.Abs(s) > 1e-6*float64(n) {
		t.Fatalf("not deflated: sum %g", s)
	}
}

func TestFiedlerSeparatesDumbbell(t *testing.T) {
	// Two dense clusters joined by a single edge: the Fiedler vector's sign
	// separates the clusters.
	g := matgen.FinanceLP(2, 20, 4)
	n := g.NumVertices()
	vec := Fiedler(g, n-1, nil, rng(5))
	where := SplitAtMedian(g, vec, g.TotalVertexWeight()/2)
	cut := refine.ComputeCut(g, where)
	if cut > g.NumEdges()/8 {
		t.Fatalf("spectral split of clustered graph cut %d of %d edges", cut, g.NumEdges())
	}
}

func TestSplitAtMedianBalance(t *testing.T) {
	g := matgen.Grid2D(10, 10)
	vec := Fiedler(g, 60, nil, rng(6))
	where := SplitAtMedian(g, vec, 50)
	w0 := 0
	for v, p := range where {
		if p == 0 {
			w0 += g.Vwgt[v]
		}
	}
	if w0 < 45 || w0 > 55 {
		t.Fatalf("part 0 weight %d, want ~50", w0)
	}
}

func TestFiedlerTinyGraphs(t *testing.T) {
	g1 := matgen.Grid2D(1, 1)
	if v := Fiedler(g1, 5, nil, rng(1)); len(v) != 1 {
		t.Fatal("n=1 Fiedler wrong length")
	}
	g2 := matgen.Grid2D(1, 2)
	v := Fiedler(g2, 5, nil, rng(1))
	if len(v) != 2 || math.Abs(v[0]+v[1]) > 1e-9 {
		t.Fatalf("n=2 Fiedler = %v, want antisymmetric", v)
	}
}

func TestMSBisectQualityOnGrid(t *testing.T) {
	// A 24x24 grid has optimal bisection 24; MSB should be close.
	g := matgen.Grid2D(24, 24)
	where := MSBisect(g, MSBOptions{}, rng(7))
	cut := refine.ComputeCut(g, where)
	if cut > 2*24 {
		t.Fatalf("MSB cut %d on 24x24 grid, want <= 48", cut)
	}
	w0 := 0
	for v, p := range where {
		if p == 0 {
			w0 += g.Vwgt[v]
		}
	}
	if w0 != g.TotalVertexWeight()/2 {
		t.Fatalf("MSB unbalanced: %d", w0)
	}
}

func TestMSBKLImproves(t *testing.T) {
	g := matgen.Mesh2DTri(30, 30, 0.02, 8)
	plain := MSBisect(g, MSBOptions{}, rng(9))
	kl := MSBisect(g, MSBOptions{KL: true}, rng(9))
	if refine.ComputeCut(g, kl) > refine.ComputeCut(g, plain) {
		t.Fatalf("MSB-KL (%d) worse than MSB (%d)",
			refine.ComputeCut(g, kl), refine.ComputeCut(g, plain))
	}
}

func TestMSBPartitionKWay(t *testing.T) {
	g := matgen.Mesh2DTri(20, 20, 0, 10)
	k := 8
	where := MSBPartition(g, k, MSBOptions{}, rng(11))
	counts := make([]int, k)
	for _, p := range where {
		if p < 0 || p >= k {
			t.Fatalf("part %d out of range", p)
		}
		counts[p]++
	}
	avg := g.NumVertices() / k
	for p, c := range counts {
		if c < avg/2 || c > avg*2 {
			t.Fatalf("part %d has %d vertices, avg %d", p, c, avg)
		}
	}
}
