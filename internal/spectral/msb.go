package spectral

import (
	"math/rand"

	"mlpart/internal/coarsen"
	"mlpart/internal/graph"
	"mlpart/internal/refine"
)

// MSBOptions configures multilevel spectral bisection.
type MSBOptions struct {
	// CoarsenTo is the coarsest-graph size at which the Fiedler vector is
	// computed exactly; 0 means 100 (as in Barnard & Simon).
	CoarsenTo int
	// PolishIter bounds the seeded Lanczos steps run at each finer level
	// to refine the interpolated Fiedler vector (the stand-in for the
	// SYMMLQ polish of the original algorithm). 0 selects the default
	// max(30, 2*sqrt(n)) for a level with n vertices — iterative
	// eigensolvers need more iterations as the spectral gap shrinks with
	// problem size, which is what makes MSB increasingly expensive on
	// large graphs (the effect Figure 4 of the paper measures).
	PolishIter int
	// KL, when true, runs Kernighan-Lin refinement on the final bisection
	// (the MSB-KL variant of Figure 2).
	KL bool
	// TargetPwgt0 is the desired weight of part 0; 0 means half the total.
	TargetPwgt0 int
}

func (o MSBOptions) withDefaults(g *graph.Graph) MSBOptions {
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 100
	}

	if o.TargetPwgt0 <= 0 {
		o.TargetPwgt0 = g.TotalVertexWeight() / 2
	}
	return o
}

// defaultPolishIter models the convergence cost of the iterative Fiedler
// polish: the spectral gap of mesh-like graphs shrinks with n, so the
// iteration count grows like sqrt(n), bounded below by a useful minimum.
func defaultPolishIter(n int) int {
	it := 30
	for s := 30; s*s < 4*n; s++ { // it = max(30, 2*sqrt(n))
		it = s + 1
	}
	return it
}

// MSBisect bisects g with multilevel spectral bisection (Barnard & Simon):
// the graph is coarsened with random matching, the Fiedler vector of the
// coarsest graph is computed exactly, and during uncoarsening the vector is
// interpolated to each finer graph and polished with a short seeded Lanczos
// run. The final vector is rounded at the weighted median. It returns the
// partition vector.
func MSBisect(g *graph.Graph, opts MSBOptions, rng *rand.Rand) []int {
	opts = opts.withDefaults(g)
	n := g.NumVertices()
	if n < 2 {
		return make([]int, n)
	}
	h := coarsen.Coarsen(g, coarsen.Options{Scheme: coarsen.RM, CoarsenTo: opts.CoarsenTo}, rng)
	levels := h.Levels
	coarsest := levels[len(levels)-1].Graph
	// Exact (full-dimension) Lanczos on the coarsest graph.
	vec := Fiedler(coarsest, coarsest.NumVertices(), nil, rng)
	for li := len(levels) - 2; li >= 0; li-- {
		fine := levels[li].Graph
		cmap := levels[li].Cmap
		fvec := make([]float64, fine.NumVertices())
		for v := range fvec {
			fvec[v] = vec[cmap[v]]
		}
		iters := opts.PolishIter
		if iters <= 0 {
			iters = defaultPolishIter(fine.NumVertices())
		}
		vec = Fiedler(fine, iters, fvec, rng)
	}
	where := SplitAtMedian(g, vec, opts.TargetPwgt0)
	if opts.KL {
		b := refine.NewBisection(g, where)
		refine.Refine(b, refine.KLR, refine.Options{
			TargetPwgt: [2]int{opts.TargetPwgt0, g.TotalVertexWeight() - opts.TargetPwgt0},
		})
		where = b.Where
	}
	return where
}

// MSBPartition recursively applies MSBisect to produce a k-way partition,
// mirroring how the paper's baseline produces 64/128/256-way partitions.
// It returns the k-way partition vector.
func MSBPartition(g *graph.Graph, k int, opts MSBOptions, rng *rand.Rand) []int {
	where := make([]int, g.NumVertices())
	ids := make([]int, g.NumVertices())
	for i := range ids {
		ids[i] = i
	}
	msbRecurse(g, ids, k, 0, opts, rng, where)
	return where
}

func msbRecurse(g *graph.Graph, ids []int, k, base int, opts MSBOptions, rng *rand.Rand, out []int) {
	if k <= 1 || g.NumVertices() == 0 {
		for _, id := range ids {
			out[id] = base
		}
		return
	}
	kl := k / 2
	kr := k - kl
	o := opts
	o.TargetPwgt0 = g.TotalVertexWeight() * kl / k
	where := MSBisect(g, o, rng)
	left, l2gL := g.PartSubgraph(where, 0)
	right, l2gR := g.PartSubgraph(where, 1)
	idsL := make([]int, left.NumVertices())
	for i, lv := range l2gL {
		idsL[i] = ids[lv]
	}
	idsR := make([]int, right.NumVertices())
	for i, rv := range l2gR {
		idsR[i] = ids[rv]
	}
	msbRecurse(left, idsL, kl, base, opts, rng, out)
	msbRecurse(right, idsR, kr, base+kl, opts, rng, out)
}
