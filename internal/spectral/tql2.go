package spectral

import "math"

// tql2 computes all eigenvalues and eigenvectors of a symmetric tridiagonal
// matrix with diagonal alpha (length n) and subdiagonal beta (length n-1),
// using the implicit QL method (a translation of the EISPACK routine of the
// same name). It returns the eigenvalues in ascending order and the matrix
// z with z[i][j] = component i of the eigenvector for eigenvalue j.
func tql2(alpha, beta []float64) ([]float64, [][]float64) {
	n := len(alpha)
	d := append([]float64(nil), alpha...)
	e := make([]float64, n)
	copy(e, beta)
	z := make([][]float64, n)
	for i := range z {
		z[i] = make([]float64, n)
		z[i][i] = 1
	}
	if n == 1 {
		return d, z
	}

	const eps = 2.22e-16
	f, tst1 := 0.0, 0.0
	for l := 0; l < n; l++ {
		// Find a small subdiagonal element.
		tst1 = math.Max(tst1, math.Abs(d[l])+math.Abs(e[l]))
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		// If m == l, d[l] is an eigenvalue; otherwise iterate.
		if m > l {
			for iter := 0; ; iter++ {
				// Compute implicit shift.
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				// Implicit QL transformation.
				p = d[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					// Accumulate transformation.
					for k := 0; k < n; k++ {
						h = z[k][i+1]
						z[k][i+1] = s*z[k][i] + c*h
						z[k][i] = c*z[k][i] - s*h
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
				if iter > 60 {
					break // convergence failure; accept current values
				}
			}
		}
		d[l] += f
		e[l] = 0
	}

	// Sort eigenvalues and corresponding vectors ascending.
	for i := 0; i < n-1; i++ {
		k := i
		for j := i + 1; j < n; j++ {
			if d[j] < d[k] {
				k = j
			}
		}
		if k != i {
			d[i], d[k] = d[k], d[i]
			for r := 0; r < n; r++ {
				z[r][i], z[r][k] = z[r][k], z[r][i]
			}
		}
	}
	return d, z
}
