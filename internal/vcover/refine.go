package vcover

import (
	"mlpart/internal/graph"
)

// RefineSeparator improves a vertex separator in place by greedy node-FM
// moves: a separator vertex s can move into side A when none of its
// neighbors lies in B — otherwise those B-neighbors must enter the
// separator in its place, so the move's gain is
//
//	gain_A(s) = w(s) - Σ w(u) for u ∈ N(s) ∩ B,
//
// and symmetrically for side B. Positive-gain moves strictly shrink the
// separator weight; zero-gain moves are taken only when they improve the
// A/B balance, so the procedure terminates. It returns the refined
// separator list (the where3 labels are updated in place).
//
// maxImbalance bounds max(wA, wB)/((wA+wB)/2); 0 means 1.2, loose enough
// that separator minimization dominates, as nested dissection prefers.
func RefineSeparator(g *graph.Graph, where3 []int, maxImbalance float64) []int {
	if maxImbalance <= 1 {
		maxImbalance = 1.2
	}
	n := g.NumVertices()
	var wgt [3]int
	for v := 0; v < n; v++ {
		wgt[where3[v]] += g.Vwgt[v]
	}

	// gain[side][v] for v in the separator.
	gainTo := func(v, side int) int {
		other := 1 - side
		gain := g.Vwgt[v]
		for _, u := range g.Neighbors(v) {
			if where3[u] == other {
				gain -= g.Vwgt[u]
			}
		}
		return gain
	}
	balancedAfter := func(v, side int) bool {
		// Weights after moving v to side and pulling its other-side
		// neighbors into the separator.
		other := 1 - side
		wA, wB := wgt[0], wgt[1]
		if side == 0 {
			wA += g.Vwgt[v]
		} else {
			wB += g.Vwgt[v]
		}
		pulled := 0
		for _, u := range g.Neighbors(v) {
			if where3[u] == other {
				pulled += g.Vwgt[u]
			}
		}
		if other == 0 {
			wA -= pulled
		} else {
			wB -= pulled
		}
		maxw := wA
		if wB > maxw {
			maxw = wB
		}
		// Measure against half the total graph weight (separator included):
		// separator vertices will eventually land on one side or the other,
		// and this keeps progress possible when one side is still empty.
		half := float64(wgt[0]+wgt[1]+wgt[PartSep]) / 2
		if half <= 0 {
			return true
		}
		return float64(maxw) <= maxImbalance*half
	}

	apply := func(v, side int) {
		other := 1 - side
		where3[v] = side
		wgt[PartSep] -= g.Vwgt[v]
		wgt[side] += g.Vwgt[v]
		for _, u := range g.Neighbors(v) {
			if where3[u] == other {
				where3[u] = PartSep
				wgt[other] -= g.Vwgt[u]
				wgt[PartSep] += g.Vwgt[u]
			}
		}
	}

	for {
		moved := false
		for v := 0; v < n; v++ {
			if where3[v] != PartSep {
				continue
			}
			// Prefer the lighter side on ties.
			sides := [2]int{0, 1}
			if wgt[1] < wgt[0] {
				sides = [2]int{1, 0}
			}
			for _, side := range sides {
				gain := gainTo(v, side)
				if gain < 0 {
					continue
				}
				if gain == 0 {
					// Zero-gain moves must strictly reduce the imbalance,
					// which guarantees termination.
					before := absInt(wgt[0] - wgt[1])
					delta := 2 * g.Vwgt[v] // weight v adds to side, pulls from other
					var after int
					if side == 0 {
						after = absInt(wgt[0] - wgt[1] + delta)
					} else {
						after = absInt(wgt[0] - wgt[1] - delta)
					}
					if after >= before {
						continue
					}
				}
				if !balancedAfter(v, side) {
					continue
				}
				apply(v, side)
				moved = true
				break
			}
		}
		if !moved {
			break
		}
	}

	var sep []int
	for v := 0; v < n; v++ {
		if where3[v] == PartSep {
			sep = append(sep, v)
		}
	}
	return sep
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
