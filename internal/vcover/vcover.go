// Package vcover turns the edge separator produced by a graph bisection
// into a small vertex separator, as required by nested dissection ordering
// (§4.3 of the paper). Following Pothen & Fan, the minimum vertex cover of
// the bipartite graph induced by the cut edges is computed exactly via
// Hopcroft-Karp maximum matching and König's theorem; that cover is a
// minimum vertex separator among subsets of the boundary.
package vcover

import (
	"mlpart/internal/graph"
)

// PartA, PartB and PartSep label the three-way output of Separator.
const (
	PartA   = 0
	PartB   = 1
	PartSep = 2
)

// Separator computes a vertex separator from a two-way partition. It
// returns the separator vertices and a labeling where3 with values PartA,
// PartB and PartSep such that no edge joins PartA and PartB directly.
func Separator(g *graph.Graph, where []int) (sep []int, where3 []int) {
	n := g.NumVertices()
	// Collect the bipartite boundary graph: left = part-0 endpoints of cut
	// edges, right = part-1 endpoints.
	leftID := make(map[int]int)  // original -> left index
	rightID := make(map[int]int) // original -> right index
	var left, right []int
	for v := 0; v < n; v++ {
		if where[v] != 0 {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if where[u] == 1 {
				if _, ok := leftID[v]; !ok {
					leftID[v] = len(left)
					left = append(left, v)
				}
				if _, ok := rightID[u]; !ok {
					rightID[u] = len(right)
					right = append(right, u)
				}
			}
		}
	}
	// Bipartite adjacency, left to right.
	adj := make([][]int, len(left))
	for i, v := range left {
		for _, u := range g.Neighbors(v) {
			if where[u] == 1 {
				adj[i] = append(adj[i], rightID[u])
			}
		}
	}

	matchL, matchR := hopcroftKarp(adj, len(right))

	// König: alternate from unmatched left vertices. Z = visited set.
	visL := make([]bool, len(left))
	visR := make([]bool, len(right))
	var queue []int
	for i := range left {
		if matchL[i] < 0 {
			visL[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, j := range adj[i] {
			if visR[j] {
				continue
			}
			visR[j] = true
			// Follow the matched edge back to the left.
			if i2 := matchR[j]; i2 >= 0 && !visL[i2] {
				visL[i2] = true
				queue = append(queue, i2)
			}
		}
	}
	// Cover = (L \ Z) ∪ (R ∩ Z).
	where3 = make([]int, n)
	copy(where3, where)
	for i, v := range left {
		if !visL[i] {
			where3[v] = PartSep
			sep = append(sep, v)
		}
	}
	for j, v := range right {
		if visR[j] {
			where3[v] = PartSep
			sep = append(sep, v)
		}
	}
	return sep, where3
}

// hopcroftKarp computes a maximum matching of a bipartite graph given as
// left-side adjacency lists into [0, nRight). It returns matchL and matchR
// (partner indices, -1 if unmatched) in O(E sqrt(V)).
func hopcroftKarp(adj [][]int, nRight int) (matchL, matchR []int) {
	nLeft := len(adj)
	matchL = make([]int, nLeft)
	matchR = make([]int, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for j := range matchR {
		matchR[j] = -1
	}
	const inf = int(^uint(0) >> 1)
	dist := make([]int, nLeft)
	queue := make([]int, 0, nLeft)

	bfs := func() bool {
		queue = queue[:0]
		for i := 0; i < nLeft; i++ {
			if matchL[i] < 0 {
				dist[i] = 0
				queue = append(queue, i)
			} else {
				dist[i] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			i := queue[qi]
			for _, j := range adj[i] {
				i2 := matchR[j]
				if i2 < 0 {
					found = true
				} else if dist[i2] == inf {
					dist[i2] = dist[i] + 1
					queue = append(queue, i2)
				}
			}
		}
		return found
	}

	var dfs func(i int) bool
	dfs = func(i int) bool {
		for _, j := range adj[i] {
			i2 := matchR[j]
			if i2 < 0 || (dist[i2] == dist[i]+1 && dfs(i2)) {
				matchL[i] = j
				matchR[j] = i
				return true
			}
		}
		dist[i] = inf
		return false
	}

	for bfs() {
		for i := 0; i < nLeft; i++ {
			if matchL[i] < 0 {
				dfs(i)
			}
		}
	}
	return matchL, matchR
}
