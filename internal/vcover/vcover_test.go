package vcover

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/graph"
	"mlpart/internal/matgen"
	"mlpart/internal/multilevel"
)

// checkSeparator verifies that where3 is a valid vertex separator: no edge
// connects PartA directly to PartB, and sep lists exactly the PartSep set.
func checkSeparator(t *testing.T, g *graph.Graph, sep []int, where3 []int) {
	t.Helper()
	inSep := make(map[int]bool, len(sep))
	for _, v := range sep {
		if where3[v] != PartSep {
			t.Fatalf("separator vertex %d labeled %d", v, where3[v])
		}
		if inSep[v] {
			t.Fatalf("separator lists %d twice", v)
		}
		inSep[v] = true
	}
	for v := 0; v < g.NumVertices(); v++ {
		if where3[v] == PartSep && !inSep[v] {
			t.Fatalf("vertex %d labeled separator but missing from list", v)
		}
		if where3[v] != PartA {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if where3[u] == PartB {
				t.Fatalf("edge (%d,%d) crosses A-B after separation", v, u)
			}
		}
	}
}

func TestSeparatorOnPath(t *testing.T) {
	// Path 0-1-2-3 split {0,1} | {2,3}: one cut edge, separator size 1.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	sep, where3 := Separator(g, []int{0, 0, 1, 1})
	checkSeparator(t, g, sep, where3)
	if len(sep) != 1 {
		t.Fatalf("separator size %d, want 1", len(sep))
	}
	if sep[0] != 1 && sep[0] != 2 {
		t.Fatalf("separator = %v, want {1} or {2}", sep)
	}
}

func TestSeparatorSmallerThanEdgeCut(t *testing.T) {
	// Star from one part-0 vertex to many part-1 vertices: edge cut is
	// large but the vertex cover is the single center.
	k := 10
	b := graph.NewBuilder(k + 1)
	for i := 1; i <= k; i++ {
		b.AddEdge(0, i)
	}
	g := b.MustBuild()
	where := make([]int, k+1)
	for i := 1; i <= k; i++ {
		where[i] = 1
	}
	sep, where3 := Separator(g, where)
	checkSeparator(t, g, sep, where3)
	if len(sep) != 1 || sep[0] != 0 {
		t.Fatalf("separator = %v, want {0}", sep)
	}
}

func TestSeparatorGrid(t *testing.T) {
	// 8x8 grid split into left/right halves: minimum vertex separator is
	// one column (8 vertices), matching the matching size.
	g := matgen.Grid2D(8, 8)
	where := make([]int, 64)
	for v := 0; v < 64; v++ {
		if v%8 >= 4 {
			where[v] = 1
		}
	}
	sep, where3 := Separator(g, where)
	checkSeparator(t, g, sep, where3)
	if len(sep) != 8 {
		t.Fatalf("separator size %d, want 8", len(sep))
	}
}

func TestSeparatorNoCut(t *testing.T) {
	// Already-disconnected parts: empty separator.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	sep, where3 := Separator(g, []int{0, 0, 1, 1})
	checkSeparator(t, g, sep, where3)
	if len(sep) != 0 {
		t.Fatalf("separator = %v, want empty", sep)
	}
}

func TestHopcroftKarpPerfectMatching(t *testing.T) {
	// Complete bipartite K3,3 has a perfect matching.
	adj := [][]int{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}
	mL, mR := hopcroftKarp(adj, 3)
	for i, j := range mL {
		if j < 0 || mR[j] != i {
			t.Fatalf("imperfect matching: %v %v", mL, mR)
		}
	}
}

func TestHopcroftKarpKnownSize(t *testing.T) {
	// Left 0 -> {0}, left 1 -> {0}: maximum matching 1.
	adj := [][]int{{0}, {0}}
	mL, _ := hopcroftKarp(adj, 1)
	cnt := 0
	for _, j := range mL {
		if j >= 0 {
			cnt++
		}
	}
	if cnt != 1 {
		t.Fatalf("matching size %d, want 1", cnt)
	}
}

// Property: on multilevel bisections of random meshes the separator is
// valid and never larger than the boundary of the smaller side.
func TestSeparatorPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := matgen.Mesh2DTri(12, 12, 0.02, seed)
		res, err := multilevel.Partition(g, 2, multilevel.Options{Seed: seed})
		if err != nil {
			return false
		}
		sep, where3 := Separator(g, res.Where)
		// Validity.
		for v := 0; v < g.NumVertices(); v++ {
			if where3[v] == PartA {
				for _, u := range g.Neighbors(v) {
					if where3[u] == PartB {
						return false
					}
				}
			}
		}
		// König: separator size equals the bipartite matching size, which
		// is at most the number of cut edges and at most either boundary.
		bA, bB := 0, 0
		seen := make(map[int]bool)
		for v := 0; v < g.NumVertices(); v++ {
			for _, u := range g.Neighbors(v) {
				if res.Where[v] == 0 && res.Where[u] == 1 {
					if !seen[v] {
						seen[v] = true
						bA++
					}
					if !seen[u+g.NumVertices()] {
						seen[u+g.NumVertices()] = true
						bB++
					}
				}
			}
		}
		min := bA
		if bB < bA {
			min = bB
		}
		return len(sep) <= min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSeparatorDeterministicAcrossRuns(t *testing.T) {
	g := matgen.Mesh2DTri(10, 10, 0, 3)
	where := make([]int, g.NumVertices())
	r := rand.New(rand.NewSource(4))
	for i := range where {
		where[i] = r.Intn(2)
	}
	s1, _ := Separator(g, where)
	s2, _ := Separator(g, where)
	if len(s1) != len(s2) {
		t.Fatal("separator not deterministic")
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("separator order not deterministic")
		}
	}
}

// checkValidSeparator verifies no A-B edge exists under where3.
func checkValidSeparator(t *testing.T, g *graph.Graph, where3 []int) {
	t.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		if where3[v] != PartA {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if where3[u] == PartB {
				t.Fatalf("edge (%d,%d) crosses A-B", v, u)
			}
		}
	}
}

func TestRefineSeparatorNeverGrows(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := matgen.Mesh2DTri(14, 14, 0.02, seed)
		res, err := multilevel.Partition(g, 2, multilevel.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sep, where3 := Separator(g, res.Where)
		before := len(sep)
		refined := RefineSeparator(g, where3, 0)
		checkValidSeparator(t, g, where3)
		if len(refined) > before {
			t.Fatalf("seed %d: separator grew %d -> %d", seed, before, len(refined))
		}
	}
}

func TestRefineSeparatorShrinksBloated(t *testing.T) {
	// Put an entire column band of a grid into the separator; refinement
	// must shrink it back toward a single column.
	g := matgen.Grid2D(10, 10)
	where3 := make([]int, 100)
	for v := 0; v < 100; v++ {
		switch c := v % 10; {
		case c < 4:
			where3[v] = PartA
		case c < 7:
			where3[v] = PartSep
		default:
			where3[v] = PartB
		}
	}
	sep := RefineSeparator(g, where3, 0)
	checkValidSeparator(t, g, where3)
	if len(sep) > 12 {
		t.Fatalf("separator still has %d vertices, want near 10", len(sep))
	}
}

func TestRefineSeparatorEmptyAndTrivial(t *testing.T) {
	g := matgen.Grid2D(3, 3)
	where3 := make([]int, 9) // everything in A, no separator
	sep := RefineSeparator(g, where3, 0)
	if len(sep) != 0 {
		t.Fatalf("invented separator %v", sep)
	}
}

func TestRefineSeparatorTerminates(t *testing.T) {
	// Pathological: everything in the separator. Must terminate and leave
	// a valid (possibly empty-side) labeling.
	g := matgen.Mesh2DTri(8, 8, 0, 7)
	where3 := make([]int, g.NumVertices())
	for i := range where3 {
		where3[i] = PartSep
	}
	sep := RefineSeparator(g, where3, 0)
	checkValidSeparator(t, g, where3)
	if len(sep) == g.NumVertices() {
		t.Fatal("no progress from all-separator state")
	}
}
