package mmd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/graph"
	"mlpart/internal/matgen"
	"mlpart/internal/sparse"
)

func checkPerm(t *testing.T, perm []int, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("perm length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("perm is not a permutation: %v", perm)
		}
		seen[v] = true
	}
}

func TestOrderPathNoFill(t *testing.T) {
	// Minimum degree on a path always eliminates endpoints (degree 1), so
	// the factorization has zero fill.
	b := graph.NewBuilder(20)
	for i := 0; i+1 < 20; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.MustBuild()
	perm := Order(g)
	checkPerm(t, perm, 20)
	a, err := sparse.Analyze(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if a.NnzL != int64(2*20-1) {
		t.Fatalf("path fill: NnzL = %d, want %d", a.NnzL, 2*20-1)
	}
}

func TestOrderTreeNoFill(t *testing.T) {
	// Any tree admits a no-fill elimination (leaves first); minimum degree
	// finds it.
	rng := rand.New(rand.NewSource(1))
	n := 200
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, rng.Intn(v))
	}
	g := b.MustBuild()
	perm := Order(g)
	checkPerm(t, perm, n)
	a, err := sparse.Analyze(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if a.NnzL != int64(2*n-1) {
		t.Fatalf("tree fill: NnzL = %d, want %d", a.NnzL, 2*n-1)
	}
}

func TestOrderStar(t *testing.T) {
	// Star: all leaves are degree 1 and mutually indistinguishable after
	// the first elimination; the center must be last.
	k := 12
	b := graph.NewBuilder(k + 1)
	for i := 1; i <= k; i++ {
		b.AddEdge(0, i)
	}
	g := b.MustBuild()
	perm := Order(g)
	checkPerm(t, perm, k+1)
	if perm[k] != 0 {
		t.Fatalf("center ordered at %d, want last", sparse.InversePerm(perm)[0])
	}
}

func TestOrderCompleteGraph(t *testing.T) {
	// K_n: every order is equivalent; just verify a valid permutation and
	// full fill.
	n := 8
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	g := b.MustBuild()
	perm := Order(g)
	checkPerm(t, perm, n)
	a, _ := sparse.Analyze(g, perm)
	if a.NnzL != int64(n*(n+1)/2) {
		t.Fatalf("K%d NnzL = %d, want %d", n, a.NnzL, n*(n+1)/2)
	}
}

func TestOrderGridBeatsNaturalAndRandom(t *testing.T) {
	g := matgen.Grid2D(20, 20)
	n := g.NumVertices()
	perm := Order(g)
	checkPerm(t, perm, n)
	m, err := sparse.Analyze(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	nat, _ := sparse.Analyze(g, sparse.IdentityPerm(n))
	rnd, _ := sparse.Analyze(g, rand.New(rand.NewSource(2)).Perm(n))
	if m.Flops >= nat.Flops {
		t.Errorf("MMD flops %.0f not better than natural %.0f", m.Flops, nat.Flops)
	}
	if m.Flops >= rnd.Flops {
		t.Errorf("MMD flops %.0f not better than random %.0f", m.Flops, rnd.Flops)
	}
}

func TestOrderDisconnected(t *testing.T) {
	b := graph.NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	// vertices 5, 6 isolated
	g := b.MustBuild()
	perm := Order(g)
	checkPerm(t, perm, 7)
}

func TestOrderSingleVertexAndEmpty(t *testing.T) {
	g1 := graph.NewBuilder(1).MustBuild()
	checkPerm(t, Order(g1), 1)
	g0 := graph.NewBuilder(0).MustBuild()
	if len(Order(g0)) != 0 {
		t.Fatal("empty graph gave nonempty order")
	}
}

func TestOrderDeterministic(t *testing.T) {
	g := matgen.Mesh2DTri(15, 15, 0.02, 3)
	a := Order(g)
	b := Order(g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MMD not deterministic")
		}
	}
}

func TestOrderQualityOn3DMesh(t *testing.T) {
	// Sanity on a 3D problem: MMD should cut the random-order opcount by
	// a large factor.
	g := matgen.FE3DTetra(8, 8, 8, 4)
	n := g.NumVertices()
	m, err := sparse.Analyze(g, Order(g))
	if err != nil {
		t.Fatal(err)
	}
	rnd, _ := sparse.Analyze(g, rand.New(rand.NewSource(5)).Perm(n))
	if m.Flops*2 >= rnd.Flops {
		t.Errorf("MMD flops %.3g vs random %.3g: expected >= 2x improvement", m.Flops, rnd.Flops)
	}
}

// Property: MMD always emits a permutation, and its fill never exceeds the
// worst of a few random orders on small random graphs.
func TestOrderPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := matgen.FE3DTetra(4, 4, 3, seed)
		n := g.NumVertices()
		perm := Order(g)
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		m, err := sparse.Analyze(g, perm)
		if err != nil {
			return false
		}
		worst := 0.0
		rng := rand.New(rand.NewSource(seed))
		for t := 0; t < 3; t++ {
			r, _ := sparse.Analyze(g, rng.Perm(n))
			if r.Flops > worst {
				worst = r.Flops
			}
		}
		return m.Flops <= worst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestMinBuckets(t *testing.T) {
	b := newMinBuckets(10, 20)
	b.insert(3, 5)
	b.insert(1, 2)
	b.insert(7, 2)
	if d, ok := b.minDegree(); !ok || d != 2 {
		t.Fatalf("minDegree = %d, want 2", d)
	}
	got := b.takeDegree(2)
	if len(got) != 2 || got[0] != 1 || got[1] != 7 {
		t.Fatalf("takeDegree = %v, want [1 7]", got)
	}
	b.update(3, 1)
	if d, _ := b.minDegree(); d != 1 {
		t.Fatalf("minDegree after update = %d, want 1", d)
	}
	b.remove(3)
	if _, ok := b.minDegree(); ok {
		t.Fatal("minDegree on empty structure succeeded")
	}
}
