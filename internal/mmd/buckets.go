package mmd

// minBuckets is a degree-indexed bucket structure with O(1) insert, remove
// and update, and amortized O(1) minimum retrieval, used to drive minimum
// degree elimination. Within a bucket, vertices come out in ascending index
// order when extracted with takeDegree, making runs deterministic.
type minBuckets struct {
	heads  []int
	next   []int
	prev   []int
	deg    []int
	in     []bool
	minPtr int
	n      int
}

func newMinBuckets(nvtxs, maxDeg int) *minBuckets {
	b := &minBuckets{
		heads: make([]int, maxDeg+1),
		next:  make([]int, nvtxs),
		prev:  make([]int, nvtxs),
		deg:   make([]int, nvtxs),
		in:    make([]bool, nvtxs),
	}
	for i := range b.heads {
		b.heads[i] = -1
	}
	return b
}

func (b *minBuckets) insert(v, d int) {
	if d >= len(b.heads) {
		d = len(b.heads) - 1
	}
	if d < 0 {
		d = 0
	}
	b.deg[v] = d
	b.prev[v] = -1
	b.next[v] = b.heads[d]
	if b.heads[d] >= 0 {
		b.prev[b.heads[d]] = v
	}
	b.heads[d] = v
	b.in[v] = true
	if d < b.minPtr {
		b.minPtr = d
	}
	b.n++
}

func (b *minBuckets) remove(v int) {
	if !b.in[v] {
		return
	}
	d := b.deg[v]
	if b.prev[v] >= 0 {
		b.next[b.prev[v]] = b.next[v]
	} else {
		b.heads[d] = b.next[v]
	}
	if b.next[v] >= 0 {
		b.prev[b.next[v]] = b.prev[v]
	}
	b.in[v] = false
	b.n--
}

func (b *minBuckets) update(v, d int) {
	b.remove(v)
	b.insert(v, d)
}

// minDegree returns the smallest degree with a live vertex.
func (b *minBuckets) minDegree() (int, bool) {
	if b.n == 0 {
		return 0, false
	}
	for b.minPtr < len(b.heads) && b.heads[b.minPtr] < 0 {
		b.minPtr++
	}
	if b.minPtr >= len(b.heads) {
		// Cannot happen while n > 0 unless minPtr overshot after removals;
		// rescan defensively.
		for i := range b.heads {
			if b.heads[i] >= 0 {
				b.minPtr = i
				return i, true
			}
		}
		return 0, false
	}
	return b.minPtr, true
}

// takeDegree removes and returns all vertices currently at degree d, in
// ascending vertex order.
func (b *minBuckets) takeDegree(d int) []int {
	var out []int
	for v := b.heads[d]; v >= 0; v = b.heads[d] {
		b.remove(v)
		out = append(out, v)
	}
	// Bucket lists are LIFO; sort ascending for deterministic tie-breaks.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
