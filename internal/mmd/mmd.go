// Package mmd implements the multiple minimum degree ordering algorithm of
// Liu — the fill-reducing ordering the paper's Figure 5 uses as the main
// baseline for the multilevel nested dissection ordering. The
// implementation uses the standard quotient-graph (generalized element)
// model with exact external degrees, element absorption, supernode merging
// of indistinguishable variables (mass elimination), and multiple
// elimination of an independent set of minimum-degree variables per stage
// with delayed degree update.
package mmd

import (
	"mlpart/internal/graph"
)

const (
	stLive byte = iota // live variable
	stElem             // eliminated: now an element (or absorbed element)
	stMerged
)

type state struct {
	n       int
	adjN    [][]int // variable -> adjacent variables (may contain stale entries)
	adjE    [][]int // variable -> adjacent elements (may contain absorbed ids)
	elemB   [][]int // element -> boundary variables (may contain stale entries)
	st      []byte
	elemTo  []int // absorbed element -> absorbing element (union-find style)
	supSize []int
	snHead  []int // first member of v's supernode chain (v itself)
	snTail  []int
	snNext  []int // next member, -1 at end
	degree  []int
	stamp   []int
	stampV  int
	buckets *minBuckets
	order   []int
}

// Order computes the multiple-minimum-degree elimination order of g. The
// result perm satisfies: perm[i] is the vertex eliminated i-th. The run is
// deterministic: ties are broken by vertex index via the bucket structure.
func Order(g *graph.Graph) []int {
	n := g.NumVertices()
	s := &state{
		n:       n,
		adjN:    make([][]int, n),
		adjE:    make([][]int, n),
		elemB:   make([][]int, n),
		st:      make([]byte, n),
		elemTo:  make([]int, n),
		supSize: make([]int, n),
		snHead:  make([]int, n),
		snTail:  make([]int, n),
		snNext:  make([]int, n),
		degree:  make([]int, n),
		stamp:   make([]int, n),
		buckets: newMinBuckets(n, g.TotalVertexWeight()),
		order:   make([]int, 0, n),
	}
	for v := 0; v < n; v++ {
		s.adjN[v] = append([]int(nil), g.Neighbors(v)...)
		s.elemTo[v] = -1
		// Vertex weights act as initial supernode sizes, so graphs
		// compressed by indistinguishable-vertex merging (see
		// internal/ordering.Compress) get weight-aware external degrees.
		s.supSize[v] = g.Vwgt[v]
		s.snHead[v] = v
		s.snTail[v] = v
		s.snNext[v] = -1
		d := 0
		for _, u := range g.Neighbors(v) {
			d += g.Vwgt[u]
		}
		s.degree[v] = d
	}
	for v := 0; v < n; v++ {
		s.buckets.insert(v, s.degree[v])
	}

	touched := make([]int, 0, 64)
	touchStamp := make([]int, n)
	round := 0
	for len(s.order) < n {
		round++
		mind, ok := s.buckets.minDegree()
		if !ok {
			break
		}
		// Multiple elimination: pull every variable currently at the
		// minimum degree, skipping those touched by an elimination earlier
		// in this round (they may no longer be independent or min-degree).
		cands := s.buckets.takeDegree(mind)
		touched = touched[:0]
		for _, v := range cands {
			if s.st[v] != stLive {
				continue
			}
			if touchStamp[v] == round {
				// Re-insert for the next round with its (stale) degree;
				// the update pass below recomputes it.
				s.buckets.insert(v, s.degree[v])
				continue
			}
			bnd := s.eliminate(v)
			for _, u := range bnd {
				if touchStamp[u] != round {
					touchStamp[u] = round
					touched = append(touched, u)
				}
			}
		}
		// Delayed degree update for all variables touched this round.
		for _, u := range touched {
			if s.st[u] != stLive {
				continue
			}
			s.updateDegree(u)
		}
	}
	return s.order
}

// findElem resolves element absorption chains with path compression.
func (s *state) findElem(e int) int {
	root := e
	for s.elemTo[root] >= 0 {
		root = s.elemTo[root]
	}
	for s.elemTo[e] >= 0 {
		next := s.elemTo[e]
		s.elemTo[e] = root
		e = next
	}
	return root
}

// eliminate turns live variable v into an element, numbers its supernode,
// absorbs its adjacent elements, updates the quotient-graph adjacency of
// its boundary, and merges newly indistinguishable boundary variables.
// It returns the boundary variables (whose degrees are now stale).
func (s *state) eliminate(v int) []int {
	// Gather the element boundary: live neighbors of v plus live boundary
	// variables of every adjacent element.
	s.stampV++
	stamp := s.stampV
	s.stamp[v] = stamp
	var bnd []int
	for _, u := range s.adjN[v] {
		if s.st[u] == stLive && s.stamp[u] != stamp {
			s.stamp[u] = stamp
			bnd = append(bnd, u)
		}
	}
	for _, e0 := range s.adjE[v] {
		e := s.findElem(e0)
		for _, u := range s.elemB[e] {
			if s.st[u] == stLive && s.stamp[u] != stamp {
				s.stamp[u] = stamp
				bnd = append(bnd, u)
			}
		}
		// Absorb e into the new element v.
		if e != v {
			s.elemTo[e] = v
			s.elemB[e] = nil // free the memory of absorbed boundaries
		}
	}

	// Number the supernode members consecutively.
	for m := s.snHead[v]; m != -1; m = s.snNext[m] {
		s.order = append(s.order, m)
	}
	s.st[v] = stElem
	s.elemB[v] = bnd
	s.adjN[v] = nil
	s.adjE[v] = nil

	// Fix the boundary variables' adjacency: drop v and pruned entries,
	// collapse element lists onto the new element.
	for _, u := range bnd {
		// adjE[u]: resolve, dedupe, all elements absorbed into v collapse.
		s.stampV++
		es := s.adjE[u][:0]
		seenV := false
		for _, e0 := range s.adjE[u] {
			e := s.findElem(e0)
			if e == v {
				if !seenV {
					seenV = true
					es = append(es, v)
				}
				continue
			}
			if s.stamp[e] != s.stampV {
				s.stamp[e] = s.stampV
				es = append(es, e)
			}
		}
		if !seenV {
			es = append(es, v)
		}
		s.adjE[u] = es
		// adjN[u]: drop dead, merged and covered-by-element entries. All
		// members of bnd are covered by element v, so variable-variable
		// edges inside the boundary are redundant.
		ns := s.adjN[u][:0]
		for _, w := range s.adjN[u] {
			if w == v || s.st[w] != stLive {
				continue
			}
			if s.stamp[w] == stamp { // stamped: w is in bnd, covered by v
				continue
			}
			ns = append(ns, w)
		}
		s.adjN[u] = ns
	}

	// Mass elimination / indistinguishability: boundary variables whose
	// entire adjacency is the new element are mutually indistinguishable;
	// merge them into one supernode so they are eliminated together.
	rep := -1
	for _, u := range bnd {
		if len(s.adjN[u]) != 0 || len(s.adjE[u]) != 1 {
			continue
		}
		if rep < 0 {
			rep = u
			continue
		}
		s.mergeInto(rep, u)
	}
	if rep >= 0 {
		// Compact the merged members out of the element boundary.
		nb := s.elemB[v][:0]
		for _, u := range s.elemB[v] {
			if s.st[u] == stLive {
				nb = append(nb, u)
			}
		}
		s.elemB[v] = nb
	}
	return s.elemB[v]
}

// mergeInto merges variable u into representative rep.
func (s *state) mergeInto(rep, u int) {
	s.st[u] = stMerged
	s.buckets.remove(u)
	s.supSize[rep] += s.supSize[u]
	s.snNext[s.snTail[rep]] = s.snHead[u]
	s.snTail[rep] = s.snTail[u]
	s.adjN[u] = nil
	s.adjE[u] = nil
}

// updateDegree recomputes the exact external degree of live variable u
// (the number of original vertices it would connect to if eliminated now,
// counted by supernode size) and repositions it in the degree buckets.
func (s *state) updateDegree(u int) {
	s.stampV++
	stamp := s.stampV
	s.stamp[u] = stamp
	d := 0
	ns := s.adjN[u][:0]
	for _, w := range s.adjN[u] {
		if s.st[w] != stLive {
			continue
		}
		ns = append(ns, w)
		if s.stamp[w] != stamp {
			s.stamp[w] = stamp
			d += s.supSize[w]
		}
	}
	s.adjN[u] = ns
	es := s.adjE[u][:0]
	s.stampV++
	estamp := s.stampV
	for _, e0 := range s.adjE[u] {
		e := s.findElem(e0)
		if s.stamp[e] == estamp {
			continue
		}
		s.stamp[e] = estamp
		es = append(es, e)
		for _, w := range s.elemB[e] {
			if s.st[w] != stLive || w == u {
				continue
			}
			if s.stamp[w] != stamp {
				s.stamp[w] = stamp
				d += s.supSize[w]
			}
		}
	}
	s.adjE[u] = es
	s.degree[u] = d
	s.buckets.update(u, d)
}
