package mmd

import (
	"testing"

	"mlpart/internal/matgen"
)

func BenchmarkOrder(b *testing.B) {
	b.ReportAllocs()
	for _, size := range []int{8, 12, 16} {
		g := matgen.FE3DTetra(size, size, size, 1)
		b.Run(g.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Order(g)
			}
		})
	}
}
